//===- examples/analyze_file.cpp - A granularity-analysis CLI -------------===//
//
// Reads a Prolog program from a file (or one of the built-in benchmarks),
// runs the full analysis and prints the report plus the transformed
// program — i.e. the compiler pass a parallel logic programming system
// would embed.
//
// Usage:
//   analyze_file <file.pl | benchmark-name> [overhead-W] [metric]
//   metric: resolutions | unifications | instructions
//
//===----------------------------------------------------------------------===//

#include "core/GranularityAnalyzer.h"
#include "core/Transform.h"
#include "corpus/Corpus.h"
#include "term/TermWriter.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace granlog;

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::printf("usage: %s <file.pl | benchmark-name> [W] [metric]\n",
                Argv[0]);
    std::printf("built-in benchmarks:");
    for (const BenchmarkDef &B : benchmarkCorpus())
      std::printf(" %s", B.Name.c_str());
    std::printf("\n");
    return 1;
  }

  std::string Source;
  if (const BenchmarkDef *B = findBenchmark(Argv[1])) {
    Source = B->Source;
  } else {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::printf("error: cannot open %s\n", Argv[1]);
      return 1;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  }

  double W = Argc > 2 ? std::atof(Argv[2]) : 65.0;
  CostMetric Metric = CostMetric::resolutions();
  if (Argc > 3) {
    std::string M = Argv[3];
    if (M == "unifications")
      Metric = CostMetric::unifications();
    else if (M == "instructions")
      Metric = CostMetric::instructions();
  }

  TermArena Arena;
  Diagnostics Diags;
  std::optional<Program> P = loadProgram(Source, Arena, Diags);
  if (!P) {
    std::printf("errors:\n%s\n", Diags.str().c_str());
    return 1;
  }
  for (const Diagnostic &D : Diags.all())
    std::printf("%s\n", D.str().c_str());

  GranularityAnalyzer GA(*P, {Metric, W});
  GA.run();
  std::printf("%s\n", GA.report().c_str());

  TransformStats Stats;
  Program T = applyGranularityControl(*P, GA, &Stats);
  std::printf("== transformed program ==\n%s", programText(T).c_str());
  std::printf("\n%% %u parallel sites: %u sequentialized, %u guarded, "
              "%u kept parallel\n",
              Stats.ParallelSites, Stats.Sequentialized, Stats.Guarded,
              Stats.KeptParallel);
  return 0;
}
