//===- examples/analyze_file.cpp - A granularity-analysis CLI -------------===//
//
// Reads a Prolog program from a file (or one of the built-in benchmarks),
// runs the full analysis and prints the report plus the transformed
// program — i.e. the compiler pass a parallel logic programming system
// would embed.
//
// Usage:
//   analyze_file [options] <file.pl | benchmark-name> [overhead-W] [metric]
//   metric: resolutions | unifications | instructions
// Options:
//   --stats              print per-phase timings and domain counters
//   --stats-json=FILE    write stats + per-predicate provenance as JSON
//                        (schema version: StatsJsonVersion)
//   --explain            print the provenance report for every predicate
//   --explain=NAME       ... for predicates named NAME only
//   --trace-out=FILE     write a Chrome trace (Perfetto / chrome://tracing)
//                        of the analyzer's own spans (SCC > phase > solve
//                        > cache probe, wall time, pid 1); for built-in
//                        benchmarks the file also carries the simulated
//                        execution on its own track (abstract units,
//                        pid 0)
//   --profile            print the analyzer profile: self time by phase,
//                        solver-cache hit attribution, per-SCC latency
//                        percentiles, and the critical path through the
//                        SCC dependency DAG
//   --input=N            input parameter for the simulated run under
//                        --trace-out (default: the paper's)
//   --machine=M          rolog | andprolog simulated machine for
//                        --trace-out (default: rolog)
//   --jobs=N             analyze with N worker threads (SCC-parallel
//                        pipeline; output is identical for any N)
//   --bounds=upper|both  which resource bounds to compute.  upper (the
//                        default) is the classic pipeline with unchanged
//                        output; both adds the dual lower-bound passes,
//                        printing [lo, hi] cost intervals and the
//                        conservative-spawn threshold (spawn only when
//                        even the minimal work repays W)
//   --budget             analyze under the default resource budget
//                        (generous per-SCC work limits; pathological
//                        programs degrade to Infinity instead of hanging)
//   --budget-expr-nodes=N --budget-solver-steps=N
//   --budget-normalize-steps=N --budget-parse-tokens=N --budget-clauses=N
//                        individual deterministic meter limits (0 = off)
//   --timeout-ms=N       cooperative wall-clock deadline for load +
//                        analysis (opt-in; not deterministic, unlike the
//                        counter meters)
//   --cache-dir=DIR      persist the recurrence solver cache to
//                        DIR/solver-cache.json: loaded before the run,
//                        saved after, so repeated invocations skip
//                        already-solved equations ("incremental.disk.hits"
//                        in --stats counts the reuse).  A corrupt file is
//                        reported and replaced, never trusted.
//   --only=NAME/ARITY    demand-driven entry point: analyze only the
//                        named predicate and its transitive callees; the
//                        rest of the program is skipped entirely (absent
//                        from the report, not classified).  Exits
//                        nonzero when no such predicate exists.  The
//                        transformed-program section is skipped (the
//                        transform needs whole-program classifications).
//   --session-demo       treat the input as a sequence of program
//                        revisions separated by '%% ---' lines and feed
//                        them through one incremental AnalysisSession,
//                        reporting how many SCCs each edit re-analyzed
//   --generate=INDEX     analyze program INDEX of the generated corpus
//                        instead of a file (see program/Generator.h); no
//                        positional input is needed, and any positionals
//                        given are read as [overhead-W] [metric]
//   --seed=S             corpus seed for --generate (default 1)
//   --dump-generated     with --generate: print the program's source and
//                        metadata and exit without analyzing — the way to
//                        inspect a corpus program a test names
//
//===----------------------------------------------------------------------===//

#include "core/AnalysisSession.h"
#include "core/GranularityAnalyzer.h"
#include "core/Transform.h"
#include "corpus/Corpus.h"
#include "corpus/Harness.h"
#include "expr/ExprInterner.h"
#include "interp/Interpreter.h"
#include "program/Generator.h"
#include "runtime/Scheduler.h"
#include "support/Io.h"
#include "support/Json.h"
#include "support/Profile.h"
#include "support/Stats.h"
#include "support/TraceEvent.h"
#include "support/Tracer.h"
#include "term/TermWriter.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

using namespace granlog;

namespace {

void usage(const char *Prog) {
  std::printf("usage: %s [options] <file.pl | benchmark-name> [W] "
              "[metric]\n",
              Prog);
  std::printf("options: --stats --stats-json=FILE --explain[=NAME] "
              "--trace-out=FILE --profile --input=N "
              "--machine=rolog|andprolog --jobs=N --bounds=upper|both\n");
  std::printf("         --budget --budget-expr-nodes=N "
              "--budget-solver-steps=N --budget-normalize-steps=N\n"
              "         --budget-parse-tokens=N --budget-clauses=N "
              "--timeout-ms=N\n");
  std::printf("         --cache-dir=DIR --only=NAME/ARITY --session-demo\n");
  std::printf("         --generate=INDEX --seed=S --dump-generated\n");
  std::printf("built-in benchmarks:");
  for (const BenchmarkDef &B : benchmarkCorpus())
    std::printf(" %s", B.Name.c_str());
  std::printf("\n");
}

/// --flag=value style option; returns nullptr when \p Arg is not \p Name.
const char *optValue(const char *Arg, const char *Name) {
  size_t Len = std::strlen(Name);
  if (std::strncmp(Arg, Name, Len) == 0 && Arg[Len] == '=')
    return Arg + Len + 1;
  return nullptr;
}

/// Splits a --session-demo input into revisions at lines beginning with
/// "%% ---" (the marker line itself belongs to neither side).
std::vector<std::string> splitRevisions(const std::string &Source) {
  std::vector<std::string> Revisions(1);
  std::istringstream In(Source);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.rfind("%% ---", 0) == 0)
      Revisions.emplace_back();
    else
      Revisions.back() += Line + '\n';
  }
  return Revisions;
}

} // namespace

int main(int Argc, char **Argv) {
  bool PrintStats = false;
  bool Explain = false;
  std::string ExplainName;
  std::string StatsJsonPath;
  std::string TraceOutPath;
  bool Profile = false;
  std::string MachineName = "rolog";
  int TraceInput = -1;
  unsigned Jobs = 1;
  BoundsMode Bounds = BoundsMode::Upper;
  BudgetLimits Limits;
  std::string CacheDir;
  std::string OnlySpec;
  bool SessionDemo = false;
  long GenerateIndex = -1;
  uint64_t GenerateSeed = 1;
  bool DumpGenerated = false;
  std::vector<const char *> Positional;

  auto ParseLimit = [](const char *V) {
    long long N = std::atoll(V);
    return N > 0 ? static_cast<uint64_t>(N) : 0;
  };

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--stats") == 0) {
      PrintStats = true;
    } else if (std::strcmp(Arg, "--explain") == 0) {
      Explain = true;
    } else if (const char *V = optValue(Arg, "--explain")) {
      Explain = true;
      ExplainName = V;
    } else if (const char *V = optValue(Arg, "--stats-json")) {
      StatsJsonPath = V;
    } else if (const char *V = optValue(Arg, "--trace-out")) {
      TraceOutPath = V;
    } else if (std::strcmp(Arg, "--profile") == 0) {
      Profile = true;
    } else if (const char *V = optValue(Arg, "--input")) {
      TraceInput = std::atoi(V);
    } else if (const char *V = optValue(Arg, "--machine")) {
      MachineName = V;
    } else if (const char *V = optValue(Arg, "--jobs")) {
      int N = std::atoi(V);
      Jobs = N > 0 ? static_cast<unsigned>(N) : 1;
    } else if (const char *V = optValue(Arg, "--bounds")) {
      if (std::strcmp(V, "both") == 0) {
        Bounds = BoundsMode::Both;
      } else if (std::strcmp(V, "upper") == 0) {
        Bounds = BoundsMode::Upper;
      } else {
        std::printf("error: --bounds must be 'upper' or 'both'\n");
        return 1;
      }
    } else if (std::strcmp(Arg, "--budget") == 0) {
      Limits = BudgetLimits::defaults();
    } else if (const char *V = optValue(Arg, "--budget-expr-nodes")) {
      Limits.ExprNodes = ParseLimit(V);
    } else if (const char *V = optValue(Arg, "--budget-solver-steps")) {
      Limits.SolverSteps = ParseLimit(V);
    } else if (const char *V = optValue(Arg, "--budget-normalize-steps")) {
      Limits.NormalizeSteps = ParseLimit(V);
    } else if (const char *V = optValue(Arg, "--budget-parse-tokens")) {
      Limits.ParseTokens = ParseLimit(V);
    } else if (const char *V = optValue(Arg, "--budget-clauses")) {
      Limits.Clauses = ParseLimit(V);
    } else if (const char *V = optValue(Arg, "--timeout-ms")) {
      int N = std::atoi(V);
      Limits.TimeoutMs = N > 0 ? static_cast<unsigned>(N) : 0;
    } else if (const char *V = optValue(Arg, "--cache-dir")) {
      CacheDir = V;
    } else if (const char *V = optValue(Arg, "--only")) {
      OnlySpec = V;
    } else if (std::strcmp(Arg, "--session-demo") == 0) {
      SessionDemo = true;
    } else if (const char *V = optValue(Arg, "--generate")) {
      GenerateIndex = std::atol(V);
    } else if (const char *V = optValue(Arg, "--seed")) {
      GenerateSeed = std::strtoull(V, nullptr, 10);
    } else if (std::strcmp(Arg, "--dump-generated") == 0) {
      DumpGenerated = true;
    } else if (Arg[0] == '-' && Arg[1] == '-') {
      std::printf("error: unknown option %s\n", Arg);
      usage(Argv[0]);
      return 1;
    } else {
      Positional.push_back(Arg);
    }
  }
  if (DumpGenerated && GenerateIndex < 0) {
    std::printf("error: --dump-generated needs --generate=INDEX\n");
    return 1;
  }
  if (GenerateIndex < 0 && Positional.empty()) {
    usage(Argv[0]);
    return 1;
  }

  // Generated-corpus input: the program comes from the deterministic
  // generator, not a file, and the positionals shift to [W] [metric].
  std::optional<GeneratedProgram> Gen;
  if (GenerateIndex >= 0)
    Gen = generateProgram(GenerateSeed,
                          static_cast<unsigned>(GenerateIndex));
  std::string InputName = Gen ? Gen->Name : Positional[0];
  if (DumpGenerated) {
    std::printf("%% %s: seed=%llu index=%u family=%s depth=%u "
                "entry=%s/%u rec=%s/%u recarg=%d input=%d\n%s",
                Gen->Name.c_str(),
                static_cast<unsigned long long>(Gen->Seed), Gen->Index,
                schemaFamilyName(Gen->Family), Gen->Depth,
                Gen->EntryPred.c_str(), Gen->EntryArity,
                Gen->RecPred.c_str(), Gen->RecArity, Gen->RecArgPos,
                Gen->DefaultInput, Gen->Source.c_str());
    return 0;
  }

  const BenchmarkDef *Bench = Gen ? nullptr : findBenchmark(Positional[0]);
  std::string Source;
  if (Gen) {
    Source = Gen->Source;
  } else if (Bench) {
    Source = Bench->Source;
  } else {
    std::ifstream In(Positional[0]);
    if (!In) {
      std::printf("error: cannot open %s\n", Positional[0]);
      return 1;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  }

  size_t ArgBase = Gen ? 0 : 1;
  double W = Positional.size() > ArgBase ? std::atof(Positional[ArgBase])
                                         : 65.0;
  CostMetric Metric = CostMetric::resolutions();
  if (Positional.size() > ArgBase + 1) {
    std::string M = Positional[ArgBase + 1];
    if (M == "unifications")
      Metric = CostMetric::unifications();
    else if (M == "instructions")
      Metric = CostMetric::instructions();
  }

  StatsRegistry Stats;
  bool WantStats =
      PrintStats || !StatsJsonPath.empty() || !TraceOutPath.empty();

  // Analyzer span tracing backs both --trace-out (export) and --profile
  // (aggregation); absent both, every span site costs one branch.
  std::optional<Tracer> AnalyzerTrace;
  uint32_t TraceProg = Tracer::None;
  if (!TraceOutPath.empty() || Profile) {
    AnalyzerTrace.emplace();
    TraceProg = AnalyzerTrace->registerProgram(InputName);
  }
  auto WriteAnalyzerTrace = [&](TraceWriter &Out) {
    AnalyzerTrace->exportTo(Out);
    if (!Out.writeFile(TraceOutPath)) {
      std::printf("error: cannot write %s\n", TraceOutPath.c_str());
      return false;
    }
    std::printf("trace written to %s (open in Perfetto or "
                "chrome://tracing)\n",
                TraceOutPath.c_str());
    return true;
  };

  if (SessionDemo) {
    SessionOptions SO;
    SO.Metric = Metric;
    SO.Overhead = W;
    SO.Jobs = Jobs;
    SO.Limits = Limits;
    SO.CacheDir = CacheDir;
    SO.Bounds = Bounds;
    if (AnalyzerTrace) {
      SO.Trace = &*AnalyzerTrace;
      SO.TraceProgram = TraceProg;
    }
    AnalysisSession Session(SO);
    if (!Session.cacheLoadWarning().empty())
      std::printf("warning: %s\n", Session.cacheLoadWarning().c_str());

    std::vector<std::string> Revisions = splitRevisions(Source);
    for (size_t R = 0; R != Revisions.size(); ++R) {
      TermArena RevArena;
      Diagnostics RevDiags;
      std::optional<Program> RevP =
          loadProgram(Revisions[R], RevArena, RevDiags);
      if (!RevP || RevP->predicates().empty()) {
        std::printf("revision %zu: errors:\n%s\n", R + 1,
                    RevDiags.str().c_str());
        return 1;
      }
      const SessionUpdate &U =
          Session.update(*RevP, WantStats ? &Stats : nullptr);
      std::printf("== revision %zu: %u of %u SCCs analyzed, %u reused ==\n",
                  R + 1, U.AnalyzedSCCs, U.TotalSCCs, U.ReusedSCCs);
      for (const Degradation &D : U.Degradations)
        std::printf("degraded: %s\n", D.str().c_str());
      std::printf("%s\n", U.Report.c_str());
    }
    if (WantStats)
      Session.recordIncrementalStats(&Stats);
    // Process-global interner/memo/arena traffic (not per-run
    // deterministic) — snapshotted once, for --stats and stats-JSON alike.
    if (PrintStats || !StatsJsonPath.empty())
      snapshotExprCounters(Stats);
    if (PrintStats)
      std::printf("== stats ==\n%s", Stats.str().c_str());
    std::optional<TraceProfile> Prof;
    if (AnalyzerTrace) {
      Prof = buildProfile(AnalyzerTrace->snapshot(), TraceProg);
      if (Profile && Session.analyzer())
        std::printf("== profile ==\n%s",
                    profileReport(*Prof,
                                  Session.analyzer()->sccDependencies(),
                                  Session.analyzer()->sccLabels())
                        .c_str());
      if (!TraceOutPath.empty()) {
        TraceWriter TraceOut;
        if (!WriteAnalyzerTrace(TraceOut))
          return 1;
      }
    }
    if (!StatsJsonPath.empty() && Session.analyzer()) {
      JsonWriter Writer;
      Session.analyzer()->writeJson(Writer,
                                    Prof ? &Prof->SccLatency : nullptr);
      std::string WriteError;
      if (!writeFileAtomic(StatsJsonPath, Writer.str() + '\n',
                           &WriteError)) {
        std::printf("error: %s\n", WriteError.c_str());
        return 1;
      }
    }
    std::string SaveError;
    if (!Session.save(&SaveError))
      std::printf("warning: %s\n", SaveError.c_str());
    return 0;
  }

  TermArena Arena;
  Diagnostics Diags;
  std::optional<Budget> RunBudget;
  if (Limits.any())
    RunBudget.emplace(Limits);
  std::optional<Program> P =
      loadProgram(Source, Arena, Diags, RunBudget ? &*RunBudget : nullptr);
  if (!P) {
    std::printf("errors:\n%s\n", Diags.str().c_str());
    return 1;
  }
  if (P->predicates().empty()) {
    std::printf("error: %s defines no predicates (empty program)\n",
                InputName.c_str());
    return 1;
  }
  for (const Diagnostic &D : Diags.all())
    std::printf("%s\n", D.str().c_str());

  AnalyzerOptions Options{Metric, W};
  Options.Jobs = Jobs;
  Options.Bounds = Bounds;
  if (AnalyzerTrace) {
    Options.Trace = &*AnalyzerTrace;
    Options.TraceProgram = TraceProg;
  }
  if (WantStats)
    Options.Stats = &Stats;
  if (RunBudget)
    Options.Budget = &*RunBudget;

  // Persistent solver cache: load before the run, save after.
  std::optional<SolverCache> DiskCache;
  std::string CachePath;
  if (!CacheDir.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(CacheDir, EC);
    CachePath =
        (std::filesystem::path(CacheDir) / "solver-cache.json").string();
    DiskCache.emplace();
    std::string LoadError;
    if (!DiskCache->loadFromFile(CachePath, &LoadError))
      std::printf("warning: %s\n", LoadError.c_str());
    Options.Cache = &*DiskCache;
  }

  GranularityAnalyzer GA(*P, Options);

  if (!OnlySpec.empty()) {
    // Demand-driven entry: skip every SCC not reachable from the named
    // predicate.  prepare() switches run() to the planned driver.
    size_t Slash = OnlySpec.rfind('/');
    Symbol S = Slash == std::string::npos
                   ? Symbol()
                   : P->symbols().lookup(OnlySpec.substr(0, Slash));
    Functor Target{S, Slash == std::string::npos
                          ? 0u
                          : static_cast<unsigned>(std::atoi(
                                OnlySpec.c_str() + Slash + 1))};
    if (!S.isValid() || !P->lookup(Target)) {
      std::printf("error: --only: no predicate %s\n", OnlySpec.c_str());
      return 1;
    }
    GA.prepare();
    const CallGraph &CG = GA.callGraph();
    for (unsigned Id = 0; Id != CG.numSCCs(); ++Id)
      GA.setSccAction(Id, GranularityAnalyzer::SccAction::Skip);
    for (unsigned Id : CG.reachableSCCs(Target))
      GA.setSccAction(Id, GranularityAnalyzer::SccAction::Analyze);
  }

  {
    TraceSpan ProgSpan(Options.Trace, SpanKind::Program, TraceProg);
    GA.run();
  }
  if (DiskCache) {
    if (WantStats)
      Stats.add("incremental.disk.hits", DiskCache->diskHits());
    std::string SaveError;
    if (!DiskCache->saveToFile(CachePath, &SaveError))
      std::printf("warning: %s\n", SaveError.c_str());
  }
  if (RunBudget && RunBudget->degraded()) {
    Diagnostics BudgetDiags;
    RunBudget->reportTo(BudgetDiags);
    std::printf("%s\n", BudgetDiags.str().c_str());
  }
  std::printf("%s\n", GA.report().c_str());

  if (Explain) {
    std::printf("== provenance ==\n");
    if (ExplainName.empty()) {
      std::printf("%s\n", GA.explainAll().c_str());
    } else {
      bool Found = false;
      for (const auto &Pred : P->predicates()) {
        Functor F = Pred->functor();
        if (P->symbols().text(F.Name) == ExplainName) {
          std::printf("%s", GA.explain(F).c_str());
          Found = true;
        }
      }
      if (!Found)
        std::printf("no predicate named '%s'\n", ExplainName.c_str());
      std::printf("\n");
    }
  }

  if (OnlySpec.empty()) {
  TransformStats TStats;
  Program T = applyGranularityControl(*P, GA, &TStats);
  std::printf("== transformed program ==\n%s", programText(T).c_str());
  std::printf("\n%% %u parallel sites: %u sequentialized, %u guarded, "
              "%u kept parallel\n",
              TStats.ParallelSites, TStats.Sequentialized, TStats.Guarded,
              TStats.KeptParallel);

  // The simulated-execution track (pid 0, abstract units).  File inputs
  // have no goal to run, so their trace carries analyzer spans only.
  if (!TraceOutPath.empty() && Bench) {
    MachineConfig Machine = MachineName == "andprolog"
                                ? MachineConfig::andProlog()
                                : MachineConfig::rolog();
    InterpOptions IOpts = interpOptionsFor(Machine);
    IOpts.Stats = WantStats ? &Stats : nullptr;
    Interpreter Interp(T, Arena, IOpts);
    int Input = TraceInput >= 0 ? TraceInput : Bench->DefaultInput;
    if (!Interp.solve(Bench->BuildGoal(Arena, Input))) {
      std::printf("error: goal %s failed\n", Bench->label(Input).c_str());
      return 1;
    }
    std::unique_ptr<CostNode> Tree = Interp.takeTree();
    if (!Tree) {
      std::printf("error: no execution trace captured\n");
      return 1;
    }
    TraceWriter Trace;
    SimResult Sim = simulate(*Tree, Machine, &Trace);
    if (!WriteAnalyzerTrace(Trace))
      return 1;
    TraceOutPath.clear(); // the analyzer track is in this file already
    std::printf("== simulation (%s, %s, P=%u) ==\n",
                Bench->label(Input).c_str(), Machine.Name.c_str(),
                Machine.Processors);
    std::printf("  T = %.1f  Tseq = %.1f  speedup = %.2fx  tasks = %u  "
                "overhead = %.1f\n",
                Sim.ParallelTime, Sim.SequentialTime, Sim.speedup(),
                Sim.TasksSpawned, Sim.OverheadUnits);
    for (size_t I = 0; I != Sim.WorkerBusy.size(); ++I)
      std::printf("  worker %zu: busy %.1f (%.0f%%)\n", I,
                  Sim.WorkerBusy[I],
                  Sim.utilization(static_cast<unsigned>(I)) * 100.0);
  }
  } // OnlySpec.empty()

  std::optional<TraceProfile> Prof;
  if (AnalyzerTrace) {
    Prof = buildProfile(AnalyzerTrace->snapshot(), TraceProg);
    if (Profile)
      std::printf("== profile ==\n%s",
                  profileReport(*Prof, GA.sccDependencies(),
                                GA.sccLabels())
                      .c_str());
    if (!TraceOutPath.empty()) {
      // Analyzer-only trace (file input, or a --only run that skipped the
      // simulated execution).
      TraceWriter TraceOut;
      if (!WriteAnalyzerTrace(TraceOut))
        return 1;
    }
  }

  // Process-global interner/memo/arena traffic (not per-run deterministic:
  // the unique table is shared by everything this process analyzed) —
  // snapshotted once, for --stats and stats-JSON alike.
  if (PrintStats || !StatsJsonPath.empty())
    snapshotExprCounters(Stats);
  if (PrintStats)
    std::printf("== stats ==\n%s", Stats.str().c_str());

  if (!StatsJsonPath.empty()) {
    JsonWriter Writer;
    GA.writeJson(Writer, Prof ? &Prof->SccLatency : nullptr);
    std::string WriteError;
    if (!writeFileAtomic(StatsJsonPath, Writer.str() + '\n', &WriteError)) {
      std::printf("error: %s\n", WriteError.c_str());
      return 1;
    }
  }
  return 0;
}
