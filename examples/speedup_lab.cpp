//===- examples/speedup_lab.cpp - Experiment with one benchmark -----------===//
//
// Runs one benchmark on both simulated systems, at a chosen input size and
// processor count, and reports everything the paper's evaluation reports:
// T0, T1, speedup, spawned task counts, sequential time, critical path.
//
// Usage:
//   speedup_lab [benchmark] [input] [processors]
//
//===----------------------------------------------------------------------===//

#include "corpus/Harness.h"

#include <cstdio>
#include <cstdlib>

using namespace granlog;

static void report(const char *Label, const BenchmarkRun &Run) {
  std::printf("%s:\n", Label);
  std::printf("  T0 (no control)    %10.0f units, %u tasks spawned\n",
              Run.Sim0.ParallelTime, Run.Sim0.TasksSpawned);
  std::printf("  T1 (with control)  %10.0f units, %u tasks spawned\n",
              Run.Sim1.ParallelTime, Run.Sim1.TasksSpawned);
  std::printf("  speedup            %9.1f%%\n", Run.speedupPercent());
  std::printf("  sequential time    %10.0f units\n",
              Run.Sim0.SequentialTime);
  std::printf("  critical path      %10.0f units\n", Run.Sim0.CriticalPath);
  std::printf("  transform: %u sites -> %u seq, %u guarded, %u parallel\n",
              Run.Stats.ParallelSites, Run.Stats.Sequentialized,
              Run.Stats.Guarded, Run.Stats.KeptParallel);
}

int main(int Argc, char **Argv) {
  const char *Name = Argc > 1 ? Argv[1] : "quick_sort";
  const BenchmarkDef *B = findBenchmark(Name);
  if (!B) {
    std::printf("unknown benchmark '%s'; available:", Name);
    for (const BenchmarkDef &Def : benchmarkCorpus())
      std::printf(" %s", Def.Name.c_str());
    std::printf("\n");
    return 1;
  }
  int Input = Argc > 2 ? std::atoi(Argv[2]) : B->DefaultInput;
  unsigned Procs = Argc > 3 ? std::atoi(Argv[3]) : 4;

  std::printf("=== %s on %u processors ===\n\n", B->label(Input).c_str(),
              Procs);

  HarnessConfig Rolog;
  Rolog.Machine = MachineConfig::rolog(Procs);
  BenchmarkRun R1 = runBenchmark(*B, Input, Rolog);
  report("ROLOG (high task overhead)", R1);
  std::printf("\n");

  HarnessConfig AndP;
  AndP.Machine = MachineConfig::andProlog(Procs);
  BenchmarkRun R2 = runBenchmark(*B, Input, AndP);
  report("&-Prolog (low task overhead)", R2);

  std::printf("\n== analysis ==\n%s", R1.AnalysisReport.c_str());
  return 0;
}
