//===- examples/wam_listing.cpp - Show compiled WAM code ------------------===//
//
// Compiles a program (a file or a built-in benchmark) with the WAM-style
// clause compiler and prints the instruction listings plus the per-clause
// counts the instructions cost metric uses.
//
// Usage:  wam_listing [file.pl | benchmark-name]
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "term/TermWriter.h"
#include "wam/WamCompiler.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace granlog;

int main(int Argc, char **Argv) {
  std::string Source;
  if (Argc > 1) {
    if (const BenchmarkDef *B = findBenchmark(Argv[1])) {
      Source = B->Source;
    } else {
      std::ifstream In(Argv[1]);
      if (!In) {
        std::printf("error: cannot open %s\n", Argv[1]);
        return 1;
      }
      std::stringstream Buffer;
      Buffer << In.rdbuf();
      Source = Buffer.str();
    }
  } else {
    // The appendix example: naive reverse.
    Source = R"(
      nrev([], []).
      nrev([H|L], R) :- nrev(L, R1), append(R1, [H], R).
      append([], L, L).
      append([H|L1], L2, [H|L3]) :- append(L1, L2, L3).
    )";
  }

  TermArena Arena;
  Diagnostics Diags;
  std::optional<Program> P = loadProgram(Source, Arena, Diags);
  if (!P) {
    std::printf("errors:\n%s\n", Diags.str().c_str());
    return 1;
  }

  WamCompiler Wam(*P);
  const SymbolTable &Symbols = P->symbols();
  for (const auto &Pred : P->predicates()) {
    std::printf("%% %s\n", Symbols.text(Pred->functor()).c_str());
    for (unsigned I = 0; I != Pred->clauses().size(); ++I) {
      const Clause &C = Pred->clauses()[I];
      const CompiledClause *CC = Wam.clause(Pred->functor(), I);
      std::printf("%s :- ...   %% head %u instrs, total %u\n",
                  termText(C.head(), Symbols).c_str(), CC->HeadCount,
                  CC->totalCount());
      std::printf("%s", CC->listing(Symbols).c_str());
    }
    std::printf("\n");
  }
  std::printf("%% program total: %u instructions\n", Wam.programSize());
  return 0;
}
