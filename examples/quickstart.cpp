//===- examples/quickstart.cpp - The README quickstart --------------------===//
//
// Analyzes the paper's running example (naive reverse) and prints every
// artifact of the pipeline: argument-size functions, cost functions,
// thresholds, and the transformed program.
//
//===----------------------------------------------------------------------===//

#include "core/GranularityAnalyzer.h"
#include "core/Transform.h"
#include "term/TermWriter.h"

#include <cstdio>

using namespace granlog;

static const char *Source = R"(
% Naive reverse, annotated for parallel execution: the recursive call and
% (once it is available) the append can be independent goals in a suitable
% parallelization; here we parallelize two reverses of independent lists.
:- mode(nrev(i, o)).
:- mode(append(i, i, o)).
:- mode(rev_both(i, i, o, o)).

nrev([], []).
nrev([H|L], R) :- nrev(L, R1), append(R1, [H], R).

append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

rev_both(A, B, RA, RB) :- ( nrev(A, RA) & nrev(B, RB) ).
)";

int main() {
  TermArena Arena;
  Diagnostics Diags;
  std::optional<Program> P = loadProgram(Source, Arena, Diags);
  if (!P) {
    std::printf("parse error:\n%s\n", Diags.str().c_str());
    return 1;
  }

  // W = 48 units of computation for creating a task: the paper's own
  // Section 2 example value.
  GranularityAnalyzer GA(*P, {CostMetric::resolutions(), 48.0});
  GA.run();

  std::printf("== analysis results ==\n%s\n", GA.report().c_str());

  const PredicateGranularity *Nrev = GA.lookup("nrev", 2);
  const PredicateGranularity *Append = GA.lookup("append", 3);
  std::printf("Cost_append(n)  = %s   (paper: n + 1)\n",
              exprText(Append->CostFn).c_str());
  std::printf("Cost_nrev(n)    = %s   (paper: 0.5 n^2 + 1.5 n + 1)\n",
              exprText(Nrev->CostFn).c_str());
  if (Nrev->Threshold.Class == GrainClass::RuntimeTest)
    std::printf("threshold: run nrev in parallel when its input is longer "
                "than %lld elements\n",
                static_cast<long long>(Nrev->Threshold.Threshold));

  TransformStats Stats;
  Program T = applyGranularityControl(*P, GA, &Stats);
  std::printf("\n== transformed rev_both/4 ==\n");
  const Predicate *RevBoth = T.lookup("rev_both", 4);
  for (const Clause &C : RevBoth->clauses())
    std::printf("%s :-\n    %s.\n",
                termText(C.head(), T.symbols()).c_str(),
                termText(C.body(), T.symbols()).c_str());
  std::printf("\n(%u parallel sites: %u sequentialized, %u guarded, "
              "%u kept parallel)\n",
              Stats.ParallelSites, Stats.Sequentialized, Stats.Guarded,
              Stats.KeptParallel);
  return 0;
}
