//===- tests/cost_test.cpp - Cost analysis tests --------------------------===//
//
// Validates the end-to-end cost analysis against Appendix A of the paper:
//   Cost_append(n, y) = n + 1
//   Cost_nrev(n)      = 0.5 n^2 + 1.5 n + 1
//   Cost_fib(n)      <= 2^{n+1} - 1  (with builtins at cost 0, Section 5)
//
//===----------------------------------------------------------------------===//

#include "cost/CostAnalysis.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace granlog;

namespace {

class CostTest : public ::testing::Test {
protected:
  void analyze(std::string_view Source,
               CostMetric Metric = CostMetric::resolutions()) {
    Prog = loadProgram(Source, Arena, Diags);
    ASSERT_TRUE(Prog.has_value()) << Diags.str();
    CG.emplace(*Prog);
    Modes.emplace(*Prog, *CG);
    Det.emplace(*Prog, *Modes);
    SA.emplace(*Prog, *CG, *Modes);
    SA->run();
    CA.emplace(*Prog, *CG, *Modes, *Det, *SA, Metric);
    CA->run();
  }

  Functor functor(std::string_view Name, unsigned Arity) {
    return Functor{Arena.symbols().intern(Name), Arity};
  }

  double costAt(std::string_view Name, unsigned Arity,
                std::vector<double> Sizes) {
    auto V = CA->costAt(functor(Name, Arity), Sizes);
    EXPECT_TRUE(V.has_value());
    return V.value_or(-1);
  }

  TermArena Arena;
  Diagnostics Diags;
  std::optional<Program> Prog;
  std::optional<CallGraph> CG;
  std::optional<ModeTable> Modes;
  std::optional<Determinacy> Det;
  std::optional<SizeAnalysis> SA;
  std::optional<CostAnalysis> CA;
};

const char *NrevSource = R"(
:- mode(nrev(i, o)).
:- mode(append(i, i, o)).

nrev([], []).
nrev([H|L], R) :- nrev(L, R1), append(R1, [H], R).

append([], L, L).
append([H|L1], L2, [H|L3]) :- append(L1, L2, L3).
)";

const char *FibSource = R"(
:- mode(fib(i, o)).
:- measure(fib(value, value)).
fib(0, 0).
fib(1, 1).
fib(M, N) :- M > 1, M1 is M - 1, M2 is M - 2,
             fib(M1, N1), fib(M2, N2), N is N1 + N2.
)";

TEST_F(CostTest, AppendCostMatchesPaper) {
  analyze(NrevSource);
  const PredicateCostInfo &CI = CA->info(functor("append", 3));
  ASSERT_TRUE(CI.Cost.Hi);
  // Cost_append(n1, n2) = n1 + 1 (paper Appendix A).
  EXPECT_EQ(exprText(CI.Cost.Hi), "1 + n1");
  EXPECT_TRUE(CI.Exact);
}

TEST_F(CostTest, NrevCostMatchesPaper) {
  analyze(NrevSource);
  const PredicateCostInfo &CI = CA->info(functor("nrev", 2));
  ASSERT_TRUE(CI.Cost.Hi);
  // Cost_nrev(n) = 0.5 n^2 + 1.5 n + 1 (paper Appendix A).
  EXPECT_EQ(exprText(CI.Cost.Hi), "1 + 3/2*n1 + 1/2*n1^2");
  EXPECT_TRUE(CI.Exact);
  EXPECT_DOUBLE_EQ(costAt("nrev", 2, {30}), 0.5 * 900 + 1.5 * 30 + 1);
}

TEST_F(CostTest, FibCostMatchesPaper) {
  analyze(FibSource);
  const PredicateCostInfo &CI = CA->info(functor("fib", 2));
  ASSERT_TRUE(CI.Cost.Hi);
  // Cost_fib(n) <= 2^{n+1} - 1 (paper Section 5).
  EXPECT_DOUBLE_EQ(costAt("fib", 2, {10}), std::pow(2, 11) - 1);
  EXPECT_EQ(CI.Schema, "geometric");
}

TEST_F(CostTest, FibCostIsUpperBoundOnTrueResolutions) {
  analyze(FibSource);
  // True resolution counts: R(0)=R(1)=1, R(n)=1+R(n-1)+R(n-2).
  double R[16];
  R[0] = R[1] = 1;
  for (int I = 2; I <= 15; ++I)
    R[I] = 1 + R[I - 1] + R[I - 2];
  for (int I = 0; I <= 15; ++I)
    EXPECT_GE(costAt("fib", 2, {static_cast<double>(I)}), R[I]);
}

TEST_F(CostTest, HanoiCostExponential) {
  analyze(R"(
    :- mode(hanoi(i, i, i, i, o)).
    :- measure(hanoi(value, void, void, void, length)).
    hanoi(0, _, _, _, []).
    hanoi(N, A, B, C, M) :-
      N > 0, N1 is N - 1,
      hanoi(N1, A, C, B, M1),
      hanoi(N1, B, A, C, M2),
      append(M1, [m(A, C)|M2], M).
    :- mode(append(i, i, o)).
    append([], L, L).
    append([H|T], L, [H|R]) :- append(T, L, R).
  )");
  // 2^n doubling recursion: cost roughly doubles per disc.
  double C5 = costAt("hanoi", 5, {5, 1, 1, 1});
  double C6 = costAt("hanoi", 5, {6, 1, 1, 1});
  EXPECT_GT(C6, 1.8 * C5);
  EXPECT_FALSE(std::isinf(C6));
}

TEST_F(CostTest, QuicksortGetsExponentialUpperBound) {
  // The sizes of part/4's outputs are each bounded only by the input
  // length, so the analysis (soundly) derives an exponential bound —
  // this is the known imprecision the paper accepts for quicksort-style
  // programs (cf. the discussion of Kaplan's work in Section 8).
  analyze(R"(
    :- mode(qsort(i, o)).
    :- mode(part(i, i, o, o)).
    :- mode(append(i, i, o)).
    qsort([], []).
    qsort([H|T], S) :-
      part(T, H, L, G),
      qsort(L, SL), qsort(G, SG),
      append(SL, [H|SG], S).
    part([], _, [], []).
    part([E|L], M, [E|U1], U2) :- E > M, part(L, M, U1, U2).
    part([E|L], M, U1, [E|U2]) :- E =< M, part(L, M, U1, U2).
    append([], L, L).
    append([H|T], L, [H|R]) :- append(T, L, R).
  )");
  double C10 = costAt("qsort", 2, {10});
  double C11 = costAt("qsort", 2, {11});
  EXPECT_FALSE(std::isinf(C10));
  EXPECT_GT(C11 / C10, 1.5); // exponential growth
  // Still an upper bound on the true quadratic worst case.
  EXPECT_GE(C10, 10 * 10 / 2.0);
}

TEST_F(CostTest, UnificationsMetricCountsArity) {
  analyze(NrevSource, CostMetric::unifications());
  // append/3: Cost(n) = 3 + Cost(n-1), Cost(0) = 3 => 3n + 3.
  EXPECT_DOUBLE_EQ(costAt("append", 3, {4, 1}), 3 * 4 + 3);
}

TEST_F(CostTest, InstructionsMetricLarger) {
  analyze(NrevSource, CostMetric::instructions());
  double I = costAt("append", 3, {4, 1});
  analyze(NrevSource, CostMetric::resolutions());
  double R = costAt("append", 3, {4, 1});
  EXPECT_GT(I, R);
}

TEST_F(CostTest, MutualRecursionEvenOdd) {
  analyze(R"(
    :- mode(ev(i)).
    :- mode(od(i)).
    :- measure(ev(value)).
    :- measure(od(value)).
    ev(0).
    ev(N) :- N > 0, M is N - 1, od(M).
    od(1).
    od(N) :- N > 1, M is N - 1, ev(M).
  )");
  const PredicateCostInfo &CI = CA->info(functor("ev", 1));
  ASSERT_TRUE(CI.Cost.Hi);
  EXPECT_FALSE(CI.Cost.Hi->isInfinity()) << exprText(CI.Cost.Hi);
  // True cost is about n resolutions; bound must cover it and stay
  // polynomial (the n/2-step recursion of depth 2 solves linearly).
  EXPECT_GE(costAt("ev", 1, {10}), 10.0 / 2);
  EXPECT_LE(costAt("ev", 1, {10}), 100.0);
}

TEST_F(CostTest, NonTerminatingPredicateIsInfinity) {
  analyze(R"(
    :- mode(loop(i)).
    loop(N) :- loop(N).
  )");
  const PredicateCostInfo &CI = CA->info(functor("loop", 1));
  ASSERT_TRUE(CI.Cost.Hi);
  EXPECT_TRUE(CI.Cost.Hi->isInfinity());
}

TEST_F(CostTest, GrowingRecursionIsInfinity) {
  analyze(R"(
    :- mode(up(i)).
    :- measure(up(value)).
    up(100).
    up(N) :- N < 100, M is N + 1, up(M).
  )");
  // The recursion argument increases: no downward difference equation.
  EXPECT_TRUE(CA->info(functor("up", 1)).Cost.Hi->isInfinity());
}

TEST_F(CostTest, NondeterministicClausesSummed) {
  analyze(R"(
    :- mode(both(i)).
    both(X) :- p(X).
    both(X) :- q(X).
    p(_).
    q(_).
    :- mode(p(i)).
    :- mode(q(i)).
  )");
  // Not mutually exclusive: costs add (1 + 1) + (1 + 1) = 4 resolutions.
  EXPECT_DOUBLE_EQ(costAt("both", 1, {1}), 4.0);
}

TEST_F(CostTest, ExclusiveClausesTakeMax) {
  analyze(R"(
    :- mode(pick(i)).
    :- measure(pick(value)).
    pick(0) :- cheap(0).
    pick(N) :- N > 0, expensive(N).
    cheap(_).
    expensive(N) :- helper(N), helper(N), helper(N).
    helper(_).
    :- mode(cheap(i)).
    :- mode(expensive(i)).
    :- mode(helper(i)).
  )");
  // Exclusive: max(1+1, 1+(1+3)) = 5, not 7.
  EXPECT_DOUBLE_EQ(costAt("pick", 1, {5}), 5.0);
}

TEST_F(CostTest, CostUsesCalleeSizes) {
  // doublerev reverses a doubled list: cost depends on Psi_dup = 2n.
  analyze(R"(
    :- mode(doublerev(i, o)).
    :- mode(dup(i, o)).
    :- mode(nrev(i, o)).
    :- mode(append(i, i, o)).
    doublerev(L, R) :- dup(L, D), nrev(D, R).
    dup([], []).
    dup([H|T], [H,H|T1]) :- dup(T, T1).
    nrev([], []).
    nrev([H|L], R) :- nrev(L, R1), append(R1, [H], R).
    append([], L, L).
    append([H|L1], L2, [H|L3]) :- append(L1, L2, L3).
  )");
  // Cost = 1 + Cost_dup(n) + Cost_nrev(2n)
  //      = 1 + (n+1) + (0.5(2n)^2 + 1.5(2n) + 1) = 2n^2 + 4n + 3.
  EXPECT_DOUBLE_EQ(costAt("doublerev", 2, {5}), 2 * 25 + 4 * 5 + 3);
}

TEST_F(CostTest, CostOfZeroArityPredicate) {
  analyze("main :- t1, t2.\nt1.\nt2.");
  EXPECT_DOUBLE_EQ(costAt("main", 0, {}), 3.0);
}

TEST_F(CostTest, IfThenElseCostsMaxOfBranches) {
  // Section 4: "H Test -> Alt1 ; Alt2 ... CostH + CostTest +
  // max(CostAlt1, CostAlt2)".
  analyze(R"(
    :- mode(choose(i)).
    :- measure(choose(value)).
    choose(N) :- ( N > 0 -> big(N) ; small(N) ).
    big(_) :- w, w, w, w, w.
    small(_) :- w.
    w.
    :- mode(big(i)).
    :- mode(small(i)).
  )");
  // 1 (head) + max(big = 1+5 = 6, small = 1+1 = 2) = 7.
  EXPECT_DOUBLE_EQ(costAt("choose", 1, {5}), 7.0);
}

TEST_F(CostTest, PlainDisjunctionCostsSum) {
  // Without the committed test, both branches may be executed on
  // backtracking: the sound bound is the sum.
  analyze(R"(
    :- mode(either(i)).
    either(N) :- ( a(N) ; b(N) ).
    a(_).
    b(_).
    :- mode(a(i)).
    :- mode(b(i)).
  )");
  // 1 (head) + (1 + 1) = 3.
  EXPECT_DOUBLE_EQ(costAt("either", 1, {0}), 3.0);
}

TEST_F(CostTest, NegationCostsInnerGoal) {
  analyze(R"(
    :- mode(no(i)).
    no(N) :- \+ p(N).
    p(_) :- q, q.
    q.
    :- mode(p(i)).
  )");
  // 1 + (1 + 2) = 4.
  EXPECT_DOUBLE_EQ(costAt("no", 1, {0}), 4.0);
}

TEST_F(CostTest, TrustCostOverridesInference) {
  analyze(R"(
    :- mode(merge(i, i, o)).
    :- measure(merge(length, length, length)).
    :- trust_cost(merge/3, n1 + n2 + 1).
    :- trust_size(merge/3, 3, n1 + n2).
    merge([], L, L).
    merge([H|T], [], [H|T]).
    merge([H1|T1], [H2|T2], [H1|R]) :- H1 =< H2, merge(T1, [H2|T2], R).
    merge([H1|T1], [H2|T2], [H2|R]) :- H1 > H2, merge([H1|T1], T2, R).
  )");
  EXPECT_DOUBLE_EQ(costAt("merge", 3, {4, 5}), 10.0);
  const PredicateCostInfo &CI = CA->info(functor("merge", 3));
  EXPECT_EQ(CI.Schema, "trusted");
  EXPECT_FALSE(CI.Exact);
}

TEST_F(CostTest, UndefinedCalleeGivesInfinity) {
  analyze(":- mode(p(i)).\np(X) :- undefined_thing(X).");
  EXPECT_TRUE(CA->info(functor("p", 1)).Cost.Hi->isInfinity());
}

} // namespace
