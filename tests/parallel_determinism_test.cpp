//===- tests/parallel_determinism_test.cpp - Jobs-invariance lockdown -----===//
//
// The parallel SCC-scheduled pipeline's hard requirement: for every corpus
// benchmark, the analysis report, the full provenance (explain) text and
// the stats JSON — modulo wall-clock timer values — are byte-identical
// between --jobs 1 and --jobs 8, across repeated runs.  Any data race or
// schedule-dependent code path in the parallel driver shows up here as a
// flaky diff.
//
//===----------------------------------------------------------------------===//

#include "core/AnalysisSession.h"
#include "core/GranularityAnalyzer.h"
#include "corpus/Corpus.h"
#include "corpus/Harness.h"
#include "support/Json.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

using namespace granlog;

namespace {

struct AnalysisSnapshot {
  std::string Report;
  std::string ExplainAll;
  std::map<std::string, uint64_t, std::less<>> Counters; // no timers here
  std::string Json;                         // stats JSON, timers stripped
};

/// Strips the "values" member (wall-clock timers, the only legitimately
/// schedule-dependent data) from a stats JSON document.
std::string stripTimers(std::string S) {
  size_t Pos = S.find("\"values\":{");
  if (Pos == std::string::npos)
    return S;
  // The timer map holds flat string->number pairs: the object ends at the
  // first '}' after its start.  Swallow the separating comma on whichever
  // side it appears so the remainder stays valid JSON.
  size_t End = S.find('}', Pos);
  if (End + 1 < S.size() && S[End + 1] == ',') {
    ++End;
  } else if (Pos > 0 && S[Pos - 1] == ',') {
    --Pos;
  }
  S.erase(Pos, End - Pos + 1);
  return S;
}

std::string strippedJson(const GranularityAnalyzer &GA) {
  JsonWriter W;
  GA.writeJson(W);
  return stripTimers(W.take());
}

AnalysisSnapshot analyze(const BenchmarkDef &B, unsigned Jobs,
                         const BudgetLimits &Limits = BudgetLimits{}) {
  TermArena Arena;
  Diagnostics Diags;
  std::optional<Program> P = loadProgram(B.Source, Arena, Diags);
  EXPECT_TRUE(P) << B.Name << ": " << Diags.str();
  AnalysisSnapshot Snap;
  if (!P)
    return Snap;
  StatsRegistry Stats;
  std::optional<Budget> RunBudget;
  if (Limits.any())
    RunBudget.emplace(Limits);
  AnalyzerOptions Options{CostMetric::resolutions(), 48.0};
  Options.Jobs = Jobs;
  Options.Stats = &Stats;
  if (RunBudget)
    Options.Budget = &*RunBudget;
  GranularityAnalyzer GA(*P, Options);
  GA.run();
  Snap.Report = GA.report();
  Snap.ExplainAll = GA.explainAll();
  Snap.Counters = Stats.counters();
  Snap.Json = strippedJson(GA);
  EXPECT_TRUE(jsonValidate(Snap.Json)) << B.Name << ": " << Snap.Json;
  return Snap;
}

class ParallelDeterminism
    : public ::testing::TestWithParam<const BenchmarkDef *> {};

TEST_P(ParallelDeterminism, Jobs8MatchesJobs1Repeatedly) {
  const BenchmarkDef &B = *GetParam();
  AnalysisSnapshot Want = analyze(B, /*Jobs=*/1);
  for (int Repeat = 0; Repeat != 10; ++Repeat) {
    AnalysisSnapshot Got = analyze(B, /*Jobs=*/8);
    EXPECT_EQ(Got.Report, Want.Report) << B.Name << " repeat " << Repeat;
    EXPECT_EQ(Got.ExplainAll, Want.ExplainAll)
        << B.Name << " repeat " << Repeat;
    EXPECT_EQ(Got.Counters, Want.Counters)
        << B.Name << " repeat " << Repeat;
    EXPECT_EQ(Got.Json, Want.Json) << B.Name << " repeat " << Repeat;
  }
}

TEST_P(ParallelDeterminism, TightCounterBudgetsStayDeterministic) {
  // Counter budgets are metered per SCC (never against wall clock or the
  // shared solver cache), so even budgets tight enough to degrade results
  // must keep --jobs invariance byte-exact — including the recorded
  // degradations, which land in the report/JSON.
  const BenchmarkDef &B = *GetParam();
  BudgetLimits Tight;
  Tight.ExprNodes = 400;
  Tight.SolverSteps = 6;
  Tight.NormalizeSteps = 4;
  AnalysisSnapshot Want = analyze(B, /*Jobs=*/1, Tight);
  for (int Repeat = 0; Repeat != 5; ++Repeat) {
    AnalysisSnapshot Got = analyze(B, /*Jobs=*/8, Tight);
    EXPECT_EQ(Got.Report, Want.Report) << B.Name << " repeat " << Repeat;
    EXPECT_EQ(Got.ExplainAll, Want.ExplainAll)
        << B.Name << " repeat " << Repeat;
    EXPECT_EQ(Got.Counters, Want.Counters)
        << B.Name << " repeat " << Repeat;
    EXPECT_EQ(Got.Json, Want.Json) << B.Name << " repeat " << Repeat;
  }
}

TEST_P(ParallelDeterminism, OddJobCountsMatchToo) {
  // 2 and 3 workers hit different steal patterns than 8; one round each.
  const BenchmarkDef &B = *GetParam();
  AnalysisSnapshot Want = analyze(B, /*Jobs=*/1);
  for (unsigned Jobs : {2u, 3u}) {
    AnalysisSnapshot Got = analyze(B, Jobs);
    EXPECT_EQ(Got.Report, Want.Report) << B.Name << " jobs " << Jobs;
    EXPECT_EQ(Got.ExplainAll, Want.ExplainAll) << B.Name << " jobs " << Jobs;
    EXPECT_EQ(Got.Counters, Want.Counters) << B.Name << " jobs " << Jobs;
  }
}

/// A cold full analysis with an *external* fresh solver cache — the
/// comparator for incremental sessions, which never own their cache (and
/// so never report solver.cache.* traffic).
AnalysisSnapshot analyzeExternalCache(const Program &P) {
  AnalysisSnapshot Snap;
  StatsRegistry Stats;
  SolverCache FreshCache;
  AnalyzerOptions Options{CostMetric::resolutions(), 48.0};
  Options.Stats = &Stats;
  Options.Cache = &FreshCache;
  GranularityAnalyzer GA(P, Options);
  GA.run();
  Snap.Report = GA.report();
  Snap.ExplainAll = GA.explainAll();
  Snap.Counters = Stats.counters();
  Snap.Json = strippedJson(GA);
  return Snap;
}

TEST_P(ParallelDeterminism, SessionMatchesColdAtAnyJobCount) {
  // The incremental engine's warm == cold contract, pinned at both ends
  // of the job-count range: after a scripted edit sequence (base, append
  // a fresh fact, append a clause to an existing predicate), every
  // revision's session output is byte-identical to a cold full analysis
  // of that revision — report, provenance, stats counters and stats JSON
  // (timers aside) — at --jobs=1 and --jobs=8.
  const BenchmarkDef &B = *GetParam();
  const std::string Base = B.Source;
  const std::vector<std::string> Revisions = {
      Base,
      Base + "\nzzz_probe(0).\n",
      Base + "\nzzz_probe(0).\nzzz_probe(1).\n",
  };
  for (unsigned Jobs : {1u, 8u}) {
    SessionOptions SO;
    SO.Overhead = 48.0;
    SO.Jobs = Jobs;
    AnalysisSession Session(SO);
    for (size_t Rev = 0; Rev != Revisions.size(); ++Rev) {
      TermArena Arena;
      Diagnostics Diags;
      std::optional<Program> P = loadProgram(Revisions[Rev], Arena, Diags);
      ASSERT_TRUE(P) << B.Name << ": " << Diags.str();
      StatsRegistry Stats;
      const SessionUpdate &U = Session.update(*P, &Stats);
      if (Rev > 0)
        EXPECT_GT(U.ReusedSCCs, 0u) << B.Name << " revision " << Rev;
      AnalysisSnapshot Want = analyzeExternalCache(*P);
      std::string Tag =
          B.Name + std::string(" revision ") + std::to_string(Rev) +
          " jobs " + std::to_string(Jobs);
      EXPECT_EQ(U.Report, Want.Report) << Tag;
      EXPECT_EQ(U.ExplainAll, Want.ExplainAll) << Tag;
      EXPECT_EQ(Stats.counters(), Want.Counters) << Tag;
      JsonWriter W;
      Session.analyzer()->writeJson(W);
      EXPECT_EQ(stripTimers(W.take()), Want.Json) << Tag;
    }
  }
}

std::vector<const BenchmarkDef *> allBenchmarks() {
  std::vector<const BenchmarkDef *> Out;
  for (const BenchmarkDef &B : benchmarkCorpus())
    Out.push_back(&B);
  return Out;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ParallelDeterminism, ::testing::ValuesIn(allBenchmarks()),
    [](const ::testing::TestParamInfo<const BenchmarkDef *> &Info) {
      return Info.param->Name;
    });

TEST(BatchDeterminism, BatchJobs8MatchesBatchJobs1) {
  // The whole-corpus batch driver: per-benchmark outputs must not depend
  // on the batch job count or on shared-cache warm-up order.
  BatchConfig Config;
  Config.Jobs = 1;
  BatchResult Want = analyzeCorpusBatch(Config);
  for (int Repeat = 0; Repeat != 3; ++Repeat) {
    Config.Jobs = 8;
    BatchResult Got = analyzeCorpusBatch(Config);
    ASSERT_EQ(Got.Results.size(), Want.Results.size());
    for (size_t I = 0; I != Want.Results.size(); ++I) {
      EXPECT_EQ(Got.Results[I].Name, Want.Results[I].Name);
      EXPECT_EQ(Got.Results[I].Ok, Want.Results[I].Ok);
      EXPECT_EQ(Got.Results[I].Report, Want.Results[I].Report)
          << Want.Results[I].Name;
      EXPECT_EQ(Got.Results[I].ExplainAll, Want.Results[I].ExplainAll)
          << Want.Results[I].Name;
      EXPECT_EQ(stripTimers(Got.Results[I].StatsJson),
                stripTimers(Want.Results[I].StatsJson))
          << Want.Results[I].Name;
    }
    // The shared cache solves each distinct equation exactly once, so the
    // entry and miss totals are schedule-independent as well.
    EXPECT_EQ(Got.CacheEntries, Want.CacheEntries);
    EXPECT_EQ(Got.CacheMisses, Want.CacheMisses);
    EXPECT_EQ(Got.CacheHits, Want.CacheHits);
  }
}

TEST(BatchDeterminism, SharedCacheNeverPollutesPerBenchmarkStats) {
  // A run reports solver.cache.* traffic only for a cache it owns: with
  // the shared batch cache those counters would depend on which other
  // benchmarks warmed the cache first, so they must be absent — while the
  // analysis results themselves are identical either way.
  BatchConfig Shared;
  Shared.Jobs = 8;
  BatchConfig Private;
  Private.Jobs = 1;
  Private.ShareCache = false;
  BatchResult A = analyzeCorpusBatch(Shared);
  BatchResult B = analyzeCorpusBatch(Private);
  ASSERT_EQ(A.Results.size(), B.Results.size());
  for (size_t I = 0; I != A.Results.size(); ++I) {
    EXPECT_EQ(A.Results[I].StatsJson.find("solver.cache."),
              std::string::npos)
        << A.Results[I].Name << ": shared-cache traffic leaked into stats";
    EXPECT_NE(B.Results[I].StatsJson.find("solver.cache."),
              std::string::npos)
        << B.Results[I].Name << ": run-owned cache traffic missing";
    EXPECT_EQ(A.Results[I].Report, B.Results[I].Report)
        << A.Results[I].Name;
    EXPECT_EQ(A.Results[I].ExplainAll, B.Results[I].ExplainAll)
        << A.Results[I].Name;
  }
  EXPECT_EQ(B.CacheEntries, 0u) << "no shared cache, no shared traffic";
}

} // namespace
