//===- tests/trace_test.cpp - Chrome-trace emission tests -----------------===//
//
// Golden-file and invariant checks of the scheduler's trace output: the
// emitted document is valid JSON in the Chrome Trace Event Format, spans
// on one worker track are monotone and non-overlapping, busy accounting
// matches the simulation result, and tracing never changes timing.
//
//===----------------------------------------------------------------------===//

#include "runtime/Scheduler.h"
#include "support/Json.h"
#include "support/TraceEvent.h"

#include <gtest/gtest.h>

#include <map>

using namespace granlog;

namespace {

MachineConfig machine(unsigned P, double Spawn, double Sched, double Join) {
  MachineConfig M;
  M.Processors = P;
  M.SpawnOverhead = Spawn;
  M.SchedOverhead = Sched;
  M.JoinOverhead = Join;
  return M;
}

/// par(Left, Right) with nothing before or after.
std::unique_ptr<CostNode> twoBranchTree(double Left, double Right) {
  CostTreeBuilder B;
  B.beginPar();
  B.beginBranch();
  B.addWork(Left);
  B.endBranch();
  B.beginBranch();
  B.addWork(Right);
  B.endBranch();
  B.endPar();
  return B.finish();
}

/// A deeper deterministic tree: work, then a par whose first branch itself
/// forks (nested parallelism), then trailing work.
std::unique_ptr<CostNode> nestedTree() {
  CostTreeBuilder B;
  B.addWork(5);
  B.beginPar();
  B.beginBranch();
  B.beginPar();
  B.beginBranch();
  B.addWork(8);
  B.endBranch();
  B.beginBranch();
  B.addWork(12);
  B.endBranch();
  B.endPar();
  B.endBranch();
  B.beginBranch();
  B.addWork(30);
  B.endBranch();
  B.beginBranch();
  B.addWork(7);
  B.endBranch();
  B.endPar();
  B.addWork(3);
  return B.finish();
}

} // namespace

TEST(TraceTest, GoldenTwoWorkerTrace) {
  // Two branches (10 and 20 units) on two workers; spawn 4, sched 3,
  // join 2.  Worker 0 pays the spawn, runs branch 1 inline (10 units) and
  // blocks at the join; worker 1 picks up the forked branch (sched 3,
  // then 20 units) and, being the free worker at join time, also runs the
  // parent's join segment.  All constants are integers, so the document
  // is byte-stable.
  std::unique_ptr<CostNode> T = twoBranchTree(10, 20);
  TraceWriter Trace;
  SimResult R = simulate(*T, machine(2, 4, 3, 2), &Trace);
  EXPECT_DOUBLE_EQ(R.ParallelTime, 29.0);
  EXPECT_DOUBLE_EQ(R.SequentialTime, 30.0);
  EXPECT_DOUBLE_EQ(R.OverheadUnits, 9.0);
  EXPECT_EQ(R.TasksSpawned, 1u);

  const char *Golden =
      "{\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"simulated multiprocessor (abstract "
      "units)\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"worker 0\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,"
      "\"args\":{\"name\":\"worker 1\"}},"
      "{\"name\":\"spawn\",\"cat\":\"overhead\",\"ph\":\"X\",\"pid\":0,"
      "\"tid\":0,\"ts\":0,\"dur\":4},"
      "{\"name\":\"spawn\",\"cat\":\"overhead\",\"ph\":\"i\",\"pid\":0,"
      "\"tid\":0,\"ts\":0,\"s\":\"t\"},"
      "{\"name\":\"task0\",\"cat\":\"task\",\"ph\":\"X\",\"pid\":0,"
      "\"tid\":0,\"ts\":4,\"dur\":10},"
      "{\"name\":\"sched\",\"cat\":\"overhead\",\"ph\":\"X\",\"pid\":0,"
      "\"tid\":1,\"ts\":4,\"dur\":3},"
      "{\"name\":\"sched\",\"cat\":\"overhead\",\"ph\":\"i\",\"pid\":0,"
      "\"tid\":1,\"ts\":4,\"s\":\"t\"},"
      "{\"name\":\"task1\",\"cat\":\"task\",\"ph\":\"X\",\"pid\":0,"
      "\"tid\":1,\"ts\":7,\"dur\":20},"
      "{\"name\":\"join\",\"cat\":\"overhead\",\"ph\":\"X\",\"pid\":0,"
      "\"tid\":1,\"ts\":27,\"dur\":2},"
      "{\"name\":\"join\",\"cat\":\"overhead\",\"ph\":\"i\",\"pid\":0,"
      "\"tid\":1,\"ts\":27,\"s\":\"t\"}"
      "],\"displayTimeUnit\":\"ms\"}";
  EXPECT_EQ(Trace.json(), Golden);
  EXPECT_TRUE(jsonValidate(Trace.json()));
}

TEST(TraceTest, PerWorkerSpansMonotoneAndNonOverlapping) {
  std::unique_ptr<CostNode> T = nestedTree();
  TraceWriter Trace;
  SimResult R = simulate(*T, MachineConfig::rolog(3), &Trace);
  EXPECT_TRUE(jsonValidate(Trace.json()));

  // Group complete spans by worker track; within one track, spans must be
  // time-ordered and must not overlap (one simulated worker does one
  // thing at a time).
  std::map<unsigned, double> LastEnd;
  unsigned Spans = 0;
  for (const TraceEvent &E : Trace.events()) {
    if (E.Phase != 'X')
      continue;
    ++Spans;
    EXPECT_GE(E.Dur, 0.0);
    auto It = LastEnd.find(E.Tid);
    if (It != LastEnd.end()) {
      EXPECT_GE(E.Ts, It->second) << "overlap on worker " << E.Tid;
    }
    LastEnd[E.Tid] = E.Ts + E.Dur;
    EXPECT_LE(E.Ts + E.Dur, R.ParallelTime);
  }
  EXPECT_GT(Spans, 0u);
}

TEST(TraceTest, InstantEventsPairWithOverheadSpans) {
  std::unique_ptr<CostNode> T = nestedTree();
  TraceWriter Trace;
  simulate(*T, MachineConfig::andProlog(2), &Trace);
  // Every instant marker is emitted at the start of the overhead span
  // just before it, on the same track with the same name.
  const std::vector<TraceEvent> &Events = Trace.events();
  unsigned Instants = 0;
  for (size_t I = 0; I != Events.size(); ++I) {
    if (Events[I].Phase != 'i')
      continue;
    ++Instants;
    ASSERT_GT(I, 0u);
    const TraceEvent &Span = Events[I - 1];
    EXPECT_EQ(Span.Phase, 'X');
    EXPECT_EQ(Span.Category, "overhead");
    EXPECT_EQ(Span.Name, Events[I].Name);
    EXPECT_EQ(Span.Tid, Events[I].Tid);
    EXPECT_DOUBLE_EQ(Span.Ts, Events[I].Ts);
  }
  EXPECT_GT(Instants, 0u);
}

TEST(TraceTest, WorkerBusyMatchesWorkPlusOverhead) {
  std::unique_ptr<CostNode> T = nestedTree();
  SimResult R = simulate(*T, MachineConfig::rolog(4));
  ASSERT_EQ(R.WorkerBusy.size(), 4u);
  double Busy = 0;
  for (double B : R.WorkerBusy) {
    EXPECT_GE(B, 0.0);
    EXPECT_LE(B, R.ParallelTime + 1e-9);
    Busy += B;
  }
  // Every executed segment is either tree work or overhead.
  EXPECT_DOUBLE_EQ(Busy, R.SequentialTime + R.OverheadUnits);
  EXPECT_GE(R.utilization(), 0.0);
  EXPECT_LE(R.utilization(), 1.0);
  for (unsigned W = 0; W != 4; ++W)
    EXPECT_DOUBLE_EQ(R.utilization(W), R.WorkerBusy[W] / R.ParallelTime);
}

TEST(TraceTest, TracingDoesNotChangeTiming) {
  std::unique_ptr<CostNode> T = nestedTree();
  MachineConfig M = MachineConfig::rolog(3);
  SimResult Plain = simulate(*T, M);
  TraceWriter Trace;
  SimResult Traced = simulate(*T, M, &Trace);
  EXPECT_DOUBLE_EQ(Plain.ParallelTime, Traced.ParallelTime);
  EXPECT_DOUBLE_EQ(Plain.OverheadUnits, Traced.OverheadUnits);
  EXPECT_EQ(Plain.TasksSpawned, Traced.TasksSpawned);
  ASSERT_EQ(Plain.WorkerBusy.size(), Traced.WorkerBusy.size());
  for (size_t W = 0; W != Plain.WorkerBusy.size(); ++W)
    EXPECT_DOUBLE_EQ(Plain.WorkerBusy[W], Traced.WorkerBusy[W]);
}

TEST(TraceTest, EmptyTreeHasUnitSpeedup) {
  CostTreeBuilder B;
  std::unique_ptr<CostNode> T = B.finish();
  SimResult R = simulate(*T, MachineConfig::rolog(4));
  EXPECT_DOUBLE_EQ(R.ParallelTime, 0.0);
  EXPECT_DOUBLE_EQ(R.speedup(), 1.0);
  EXPECT_DOUBLE_EQ(R.utilization(), 0.0);
}

TEST(TraceTest, TraceSpanWorkSumsToBusy) {
  std::unique_ptr<CostNode> T = nestedTree();
  TraceWriter Trace;
  SimResult R = simulate(*T, MachineConfig::rolog(2), &Trace);
  std::map<unsigned, double> SpanWork;
  for (const TraceEvent &E : Trace.events())
    if (E.Phase == 'X')
      SpanWork[E.Tid] += E.Dur;
  for (unsigned W = 0; W != R.WorkerBusy.size(); ++W)
    EXPECT_DOUBLE_EQ(SpanWork[W], R.WorkerBusy[W]) << "worker " << W;
}
