//===- tests/solutions_test.cpp - Number-of-solutions analysis tests ------===//
//
// The Sols factors of the paper's equation (2): tests of the conservative
// constant-bound analysis and of its effect on the cost analysis.
//
//===----------------------------------------------------------------------===//

#include "analysis/Solutions.h"
#include "cost/CostAnalysis.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace granlog;

namespace {

class SolutionsTest : public ::testing::Test {
protected:
  void analyze(std::string_view Source) {
    Prog = loadProgram(Source, Arena, Diags);
    ASSERT_TRUE(Prog.has_value()) << Diags.str();
    CG.emplace(*Prog);
    Modes.emplace(*Prog, *CG);
    Det.emplace(*Prog, *Modes);
    Sols = std::make_unique<SolutionsAnalysis>(*Prog, *CG, *Det);
  }

  std::optional<int64_t> solsOf(std::string_view Name, unsigned Arity) {
    Symbol S = Arena.symbols().lookup(Name);
    EXPECT_TRUE(S.isValid());
    return Sols->solutions(Functor{S, Arity});
  }

  TermArena Arena;
  Diagnostics Diags;
  std::optional<Program> Prog;
  std::optional<CallGraph> CG;
  std::optional<ModeTable> Modes;
  std::optional<Determinacy> Det;
  std::unique_ptr<SolutionsAnalysis> Sols;
};

TEST_F(SolutionsTest, FactsCountClauses) {
  analyze(R"(
    :- mode(color(o)).
    color(red).
    color(green).
    color(blue).
  )");
  EXPECT_EQ(solsOf("color", 1), 3);
}

TEST_F(SolutionsTest, ConjunctionMultiplies) {
  analyze(R"(
    :- mode(color(o)).
    :- mode(size(o)).
    :- mode(pair(o, o)).
    color(red).
    color(green).
    size(big).
    size(small).
    pair(C, S) :- color(C), size(S).
  )");
  EXPECT_EQ(solsOf("pair", 2), 4);
}

TEST_F(SolutionsTest, DisjunctionAdds) {
  analyze(R"(
    :- mode(color(o)).
    :- mode(size(o)).
    :- mode(thing(o)).
    color(red).
    color(green).
    size(big).
    thing(X) :- ( color(X) ; size(X) ).
  )");
  EXPECT_EQ(solsOf("thing", 1), 3);
}

TEST_F(SolutionsTest, IfThenElseTakesMax) {
  analyze(R"(
    :- mode(color(o)).
    :- mode(size(o)).
    color(red).
    color(green).
    size(big).
    choose(N, X) :- ( N > 0 -> color(X) ; size(X) ).
    :- mode(choose(i, o)).
    :- measure(choose(value, void)).
  )");
  EXPECT_EQ(solsOf("choose", 2), 2);
}

TEST_F(SolutionsTest, DeterminateIsOne) {
  analyze(R"(
    :- mode(append(i, i, o)).
    append([], L, L).
    append([H|T], L, [H|R]) :- append(T, L, R).
  )");
  EXPECT_EQ(solsOf("append", 3), 1);
}

TEST_F(SolutionsTest, NondetRecursionUnbounded) {
  analyze(R"(
    :- mode(member(o, i)).
    member(X, [X|_]).
    member(X, [_|T]) :- member(X, T).
  )");
  EXPECT_FALSE(solsOf("member", 2).has_value());
}

TEST_F(SolutionsTest, NegationIsOne) {
  analyze(R"(
    :- mode(color(o)).
    :- mode(nocolor(i)).
    color(red).
    color(green).
    nocolor(X) :- \+ color(X).
  )");
  EXPECT_EQ(solsOf("nocolor", 1), 1);
}

TEST_F(SolutionsTest, BuiltinsAreDeterminate) {
  analyze("calc(X, Y) :- Y is X + 1.\n:- mode(calc(i, o)).");
  EXPECT_EQ(solsOf("calc", 2), 1);
}

// --- Equation (2) effects on the cost analysis ---

class Eq2CostTest : public ::testing::Test {
protected:
  void analyze(std::string_view Source) {
    Prog = loadProgram(Source, Arena, Diags);
    ASSERT_TRUE(Prog.has_value()) << Diags.str();
    CG.emplace(*Prog);
    Modes.emplace(*Prog, *CG);
    Det.emplace(*Prog, *Modes);
    SA.emplace(*Prog, *CG, *Modes);
    SA->run();
    CA.emplace(*Prog, *CG, *Modes, *Det, *SA, CostMetric::resolutions());
    CA->run();
  }

  double costAt(std::string_view Name, unsigned Arity,
                std::vector<double> Sizes) {
    Symbol S = Arena.symbols().lookup(Name);
    auto V = CA->costAt(Functor{S, Arity}, Sizes);
    EXPECT_TRUE(V.has_value());
    return V.value_or(-1);
  }

  TermArena Arena;
  Diagnostics Diags;
  std::optional<Program> Prog;
  std::optional<CallGraph> CG;
  std::optional<ModeTable> Modes;
  std::optional<Determinacy> Det;
  std::optional<SizeAnalysis> SA;
  std::optional<CostAnalysis> CA;
};

TEST_F(Eq2CostTest, GeneratorMultipliesDownstreamCost) {
  // gen/1 has 3 solutions; expensive/1 runs once per solution on
  // backtracking: Cost <= 1 + (gen-cost) + 3 * (expensive-cost).
  analyze(R"(
    gen(1).
    gen(2).
    gen(3).
    expensive(_) :- w, w, w, w.
    w.
    test(X) :- gen(X), expensive(X).
    :- mode(gen(o)).
    :- mode(expensive(i)).
    :- mode(test(o)).
  )");
  // gen costs 3 resolutions total (all clauses tried, non-exclusive);
  // expensive costs 1 + 4 = 5; eq (2): 1 + 3 + 3*5 = 19.
  EXPECT_DOUBLE_EQ(costAt("test", 1, {}), 19.0);
}

TEST_F(Eq2CostTest, DeterminatePrefixKeepsFactorOne) {
  analyze(R"(
    one(1).
    expensive(_) :- w, w, w, w.
    w.
    test(X) :- one(X), expensive(X).
    :- mode(one(o)).
    :- mode(expensive(i)).
    :- mode(test(o)).
  )");
  // 1 + 1 + 1*5 = 7.
  EXPECT_DOUBLE_EQ(costAt("test", 1, {}), 7.0);
}

TEST_F(Eq2CostTest, UnboundedGeneratorGivesInfinity) {
  analyze(R"(
    :- mode(member(o, i)).
    member(X, [X|_]).
    member(X, [_|T]) :- member(X, T).
    test(L) :- member(X, L), expensive(X).
    expensive(_) :- w.
    w.
    :- mode(test(i)).
    :- mode(expensive(i)).
  )");
  EXPECT_TRUE(std::isinf(costAt("test", 1, {3})));
}

TEST_F(Eq2CostTest, SolutionsOfTrailingGoalDoNotMatter) {
  // The nondeterministic goal is *last*: nothing downstream multiplies.
  analyze(R"(
    gen(1).
    gen(2).
    gen(3).
    cheap(_).
    test(X) :- cheap(X), gen(X).
    :- mode(gen(o)).
    :- mode(cheap(i)).
    :- mode(test(o)).
  )");
  // 1 + 1 + 1*3 = 5 (gen itself costs 3 resolutions, counted once).
  EXPECT_DOUBLE_EQ(costAt("test", 1, {}), 5.0);
}

} // namespace
