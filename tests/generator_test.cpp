//===- tests/generator_test.cpp - Generator determinism properties --------===//
//
// The generated corpus is only usable as a test oracle if it is perfectly
// reproducible: for a fixed (seed, index) the program text and metadata
// must be byte-identical across calls, runs, shard assignments and
// platforms.  These property tests pin that contract down, lock the
// seed-1 corpus to a golden fingerprint (so an accidental generator
// change cannot silently invalidate recorded baselines), and check that
// analysis results over the generated corpus are invariant to the job
// count and to a warm solver cache.
//
//===----------------------------------------------------------------------===//

#include "corpus/ShardRunner.h"
#include "program/Generator.h"
#include "program/Program.h"
#include "support/Io.h"

#include <filesystem>
#include <set>
#include <gtest/gtest.h>

using namespace granlog;

namespace {

/// Everything a GeneratedProgram carries, flattened for comparison.
std::string describe(const GeneratedProgram &G) {
  return G.Name + '\0' + G.Source + '\0' + std::to_string(G.Seed) + ' ' +
         std::to_string(G.Index) + ' ' + schemaFamilyName(G.Family) + ' ' +
         std::to_string(G.Depth) + ' ' + G.EntryPred + '/' +
         std::to_string(G.EntryArity) + ' ' + G.RecPred + '/' +
         std::to_string(G.RecArity) + '@' + std::to_string(G.RecArgPos) +
         ' ' + std::to_string(G.DefaultInput) + ' ' +
         std::to_string(G.GoalSeed);
}

TEST(Generator, ByteStableAcrossCalls) {
  for (unsigned I = 0; I != 500; ++I) {
    GeneratedProgram A = generateProgram(1, I);
    GeneratedProgram B = generateProgram(1, I);
    ASSERT_EQ(describe(A), describe(B)) << "index " << I;
  }
}

TEST(Generator, IndexIndependentOfCorpusSize) {
  // Program I must not depend on how many other programs were generated:
  // shard slicing and --generate=N choices cannot perturb the corpus.
  std::vector<GeneratedProgram> Small = generateCorpus({1, 50});
  std::vector<GeneratedProgram> Large = generateCorpus({1, 500});
  ASSERT_EQ(Small.size(), 50u);
  ASSERT_EQ(Large.size(), 500u);
  for (unsigned I = 0; I != 50; ++I)
    EXPECT_EQ(describe(Small[I]), describe(Large[I])) << "index " << I;
}

TEST(Generator, DistinctSeedsProduceDistinctCorpora) {
  std::vector<GeneratedProgram> A = generateCorpus({1, 100});
  std::vector<GeneratedProgram> B = generateCorpus({2, 100});
  size_t Differ = 0;
  for (unsigned I = 0; I != 100; ++I)
    Differ += A[I].Source != B[I].Source;
  EXPECT_GE(Differ, 90u);
}

TEST(Generator, GoldenCorpusFingerprint) {
  // Locks the seed-1 corpus byte-for-byte.  fnv1a64 is pure integer
  // arithmetic, so a changed value means the generator's *output*
  // changed — on any platform.  If you changed the generator on purpose,
  // regenerate: the failure message prints the new fingerprint.
  std::string Blob;
  for (const GeneratedProgram &G : generateCorpus({1, 100}))
    Blob += describe(G) + '\n';
  EXPECT_EQ(hex64(fnv1a64(Blob)), "edd55bd68bd834f7")
      << "generator output changed; update the golden fingerprint";
}

TEST(Generator, AllFamiliesAndDepthsCovered) {
  std::set<SchemaFamily> Families;
  std::set<unsigned> Depths;
  for (const GeneratedProgram &G : generateCorpus({1, 500})) {
    Families.insert(G.Family);
    Depths.insert(G.Depth);
  }
  EXPECT_EQ(Families.size(), NumSchemaFamilies);
  EXPECT_GE(Depths.size(), 2u);
}

TEST(Generator, ProgramsLoadAndGoalsBuild) {
  for (const GeneratedProgram &G : generateCorpus({1, 100})) {
    TermArena Arena;
    Diagnostics Diags;
    std::optional<Program> P = loadProgram(G.Source, Arena, Diags);
    ASSERT_TRUE(P) << G.Name << ":\n" << G.Source << Diags.str();
    EXPECT_FALSE(P->predicates().empty()) << G.Name;
    const Term *Goal = buildGeneratedGoal(G, Arena, G.DefaultInput);
    ASSERT_NE(Goal, nullptr) << G.Name;
    const StructTerm *S = dynCast<StructTerm>(deref(Goal));
    ASSERT_NE(S, nullptr) << G.Name;
    EXPECT_EQ(S->functor().Arity, G.EntryArity) << G.Name;
  }
}

TEST(Generator, AnalysisInvariantUnderJobCount) {
  // The deterministic corpus report must be byte-identical between the
  // sequential and the 8-thread batch.
  std::vector<GeneratedProgram> Corpus = generateCorpus({1, 40});
  std::vector<BenchmarkDef> Defs = generatedBenchmarks(Corpus);
  ShardConfig C1;
  C1.Jobs = 1;
  ShardBatchResult R1 = runShardedBatch(Defs, C1);
  ShardConfig C8;
  C8.Jobs = 8;
  ShardBatchResult R8 = runShardedBatch(Defs, C8);
  EXPECT_EQ(R1.Failures, 0u);
  EXPECT_EQ(corpusReportText(R1.Programs), corpusReportText(R8.Programs));
}

TEST(Generator, AnalysisInvariantUnderWarmCache) {
  // A warm persistent solver cache changes timings, never results.
  std::filesystem::path Dir =
      std::filesystem::temp_directory_path() / "granlog-generator-warm";
  std::filesystem::remove_all(Dir);
  std::vector<GeneratedProgram> Corpus = generateCorpus({3, 40});
  std::vector<BenchmarkDef> Defs = generatedBenchmarks(Corpus);
  ShardConfig C;
  C.Jobs = 4;
  C.CacheDir = Dir.string();
  ShardBatchResult Cold = runShardedBatch(Defs, C);
  ShardBatchResult Warm = runShardedBatch(Defs, C);
  EXPECT_EQ(Cold.Failures, 0u);
  EXPECT_EQ(Cold.Warning, "");
  EXPECT_EQ(Warm.Warning, "");
  EXPECT_GT(Warm.DiskHits, 0u);
  EXPECT_EQ(corpusReportText(Cold.Programs),
            corpusReportText(Warm.Programs));
  std::filesystem::remove_all(Dir);
}

} // namespace
