//===- tests/expr_intern_test.cpp - Hash-consing invariants ---------------===//
//
// The properties the interned expression representation rests on:
//
//  1. structural equality <=> pointer identity: compareExpr(A, B) == 0
//     exactly when A and B are the same node, over randomized expressions.
//  2. build-order independence: the same mathematical expression built
//     through different factory-call orders (permuted operands, different
//     nesting) interns to the identical node.
//  3. thread safety: many threads constructing the same expressions
//     concurrently all receive the same nodes (run under TSan in CI).
//  4. metadata consistency: the precomputed Bloom filters and hasCall()
//     agree with the actual traversals.
//
//===----------------------------------------------------------------------===//

#include "expr/Expr.h"
#include "expr/ExprInterner.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

using namespace granlog;

namespace {

/// Deterministic 64-bit LCG (tests must not depend on global random state).
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 33;
  }
  int64_t range(int64_t Lo, int64_t Hi) { // inclusive
    return Lo + static_cast<int64_t>(next() % (Hi - Lo + 1));
  }
};

const char *const VarNames[] = {"n", "m", "k", "n1", "n2"};
const char *const CallNames[] = {"psi:f/1", "cost:g/2"};

/// A random canonical expression of bounded depth over a small vocabulary
/// (so independently drawn expressions collide often — the interesting
/// case for interning).  Constants are non-negative: expressions denote
/// values in [0, oo] and the lattice simplifications (max(0, x) = x)
/// assume it.
ExprRef randomExpr(Lcg &Rng, int Depth) {
  if (Depth <= 0 || Rng.range(0, 3) == 0) {
    if (Rng.range(0, 1))
      return makeNumber(Rng.range(0, 9));
    return makeVar(VarNames[Rng.range(0, 4)]);
  }
  switch (Rng.range(0, 5)) {
  case 0:
    return makeAdd(randomExpr(Rng, Depth - 1), randomExpr(Rng, Depth - 1));
  case 1:
    return makeMul(randomExpr(Rng, Depth - 1), randomExpr(Rng, Depth - 1));
  case 2:
    return makePow(randomExpr(Rng, Depth - 1),
                   makeNumber(Rng.range(0, 3)));
  case 3:
    return makeLog2(randomExpr(Rng, Depth - 1));
  case 4:
    return makeMax(randomExpr(Rng, Depth - 1), randomExpr(Rng, Depth - 1));
  default:
    return makeCall(CallNames[Rng.range(0, 1)],
                    {randomExpr(Rng, Depth - 1)});
  }
}

TEST(ExprInternTest, StructuralEqualityIsPointerIdentity) {
  Lcg Rng(20260806);
  std::vector<ExprRef> Pool;
  for (int I = 0; I != 300; ++I)
    Pool.push_back(randomExpr(Rng, 4));
  for (size_t I = 0; I != Pool.size(); ++I)
    for (size_t J = I; J != Pool.size(); ++J) {
      bool StructurallyEqual = compareExpr(*Pool[I], *Pool[J]) == 0;
      bool SameNode = Pool[I].get() == Pool[J].get();
      EXPECT_EQ(StructurallyEqual, SameNode)
          << exprText(Pool[I]) << " vs " << exprText(Pool[J]);
      EXPECT_EQ(exprEqual(Pool[I], Pool[J]), SameNode);
    }
}

TEST(ExprInternTest, EqualNodesHaveEqualHashes) {
  // Trivial given identity, but pins down that hash() is usable as a
  // cache-key component: same node => same hash, and distinct nodes
  // rarely collide (not asserted — just equality here).
  Lcg Rng(7);
  for (int I = 0; I != 200; ++I) {
    ExprRef A = randomExpr(Rng, 4);
    ExprRef B = randomExpr(Rng, 4);
    if (A == B)
      EXPECT_EQ(A->hash(), B->hash());
  }
}

TEST(ExprInternTest, BuildOrderIndependence) {
  Lcg Rng(42);
  for (int I = 0; I != 200; ++I) {
    ExprRef A = randomExpr(Rng, 3);
    ExprRef B = randomExpr(Rng, 3);
    ExprRef C = randomExpr(Rng, 3);
    // Commutativity/associativity of the canonicalizing factories must
    // land on the identical node, not merely a structurally equal one.
    EXPECT_EQ(makeAdd({A, B, C}).get(), makeAdd({C, B, A}).get());
    EXPECT_EQ(makeAdd(makeAdd(A, B), C).get(),
              makeAdd(A, makeAdd(B, C)).get());
    EXPECT_EQ(makeMul({A, B, C}).get(), makeMul({C, A, B}).get());
    EXPECT_EQ(makeMax(A, makeMax(B, C)).get(),
              makeMax(makeMax(A, B), C).get());
    // Rebuilding an already-canonical expression is a no-op node-wise.
    if (A->kind() == ExprKind::Add)
      EXPECT_EQ(makeAdd(A->operands()).get(), A.get());
  }
}

TEST(ExprInternTest, SmallIntegersAndVarsAreCached) {
  EXPECT_EQ(makeNumber(3).get(), makeNumber(3).get());
  EXPECT_EQ(makeNumber(-64).get(), makeNumber(-64).get());
  EXPECT_EQ(makeNumber(Rational(1, 2)).get(),
            makeNumber(Rational(1, 2)).get());
  EXPECT_EQ(makeVar("n").get(), makeVar("n").get());
  EXPECT_EQ(makeInfinity().get(), makeInfinity().get());
  EXPECT_NE(makeVar("n").get(), makeVar("m").get());
}

TEST(ExprInternTest, BloomFiltersAgreeWithTraversals) {
  Lcg Rng(99);
  for (int I = 0; I != 300; ++I) {
    ExprRef E = randomExpr(Rng, 4);
    EXPECT_EQ(E->hasCall(), containsAnyCall(E)) << exprText(E);
    for (const char *V : VarNames) {
      // A clear Bloom bit proves absence; containsVar must agree with a
      // bloom-free structural check.
      if (!(E->varBloom() & exprNameBloomBit(V)))
        EXPECT_FALSE(containsVar(E, V)) << exprText(E) << " var " << V;
    }
    for (const char *Cn : CallNames)
      if (!(E->callBloom() & exprNameBloomBit(Cn)))
        EXPECT_FALSE(containsCall(E, Cn)) << exprText(E) << " call " << Cn;
  }
}

TEST(ExprInternTest, ConcurrentInterningYieldsIdenticalNodes) {
  // 8 threads build the same 200 random expressions from the same seed;
  // every thread must end up holding the same node pointers.  This is the
  // TSan workout for the sharded unique table.
  constexpr int Threads = 8, Exprs = 200;
  std::vector<std::vector<const Expr *>> Got(Threads);
  {
    ThreadPool Pool(Threads);
    for (int T = 0; T != Threads; ++T)
      Pool.submit([T, &Got] {
        Lcg Rng(1234567);
        Got[T].reserve(Exprs);
        for (int I = 0; I != Exprs; ++I)
          Got[T].push_back(randomExpr(Rng, 4).get());
      });
    Pool.wait();
  }
  for (int T = 1; T != Threads; ++T)
    EXPECT_EQ(Got[T], Got[0]) << "thread " << T;
}

TEST(ExprInternTest, CountersAreMonotonicAndConsistent) {
  ExprInterner::Counters Before = ExprInterner::global().counters();
  Lcg Rng(5);
  for (int I = 0; I != 50; ++I)
    (void)randomExpr(Rng, 4);
  ExprInterner::Counters After = ExprInterner::global().counters();
  EXPECT_GE(After.InternHits, Before.InternHits);
  EXPECT_GE(After.InternMisses, Before.InternMisses);
  EXPECT_GE(After.Entries, Before.Entries);
  // Every miss creates exactly one entry (plus the eagerly seeded leaves).
  EXPECT_EQ(After.Entries - Before.Entries,
            After.InternMisses - Before.InternMisses);
}

} // namespace
