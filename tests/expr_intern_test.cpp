//===- tests/expr_intern_test.cpp - Hash-consing invariants ---------------===//
//
// The properties the interned expression representation rests on:
//
//  1. structural equality <=> index identity: compareExpr(A, B) == 0
//     exactly when A and B are the same node, over randomized expressions.
//  2. build-order independence: the same mathematical expression built
//     through different factory-call orders (permuted operands, different
//     nesting) interns to the identical node.
//  3. thread safety: many threads constructing the same expressions
//     concurrently all receive the same nodes (run under TSan in CI).
//  4. metadata consistency: the precomputed Bloom filters and hasCall()
//     agree with the actual traversals.
//
//===----------------------------------------------------------------------===//

#include "expr/Expr.h"
#include "expr/ExprInterner.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

using namespace granlog;

namespace {

/// Deterministic 64-bit LCG (tests must not depend on global random state).
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 33;
  }
  int64_t range(int64_t Lo, int64_t Hi) { // inclusive
    return Lo + static_cast<int64_t>(next() % (Hi - Lo + 1));
  }
};

const char *const VarNames[] = {"n", "m", "k", "n1", "n2"};
const char *const CallNames[] = {"psi:f/1", "cost:g/2"};

/// A random canonical expression of bounded depth over a small vocabulary
/// (so independently drawn expressions collide often — the interesting
/// case for interning).  Constants are non-negative: expressions denote
/// values in [0, oo] and the lattice simplifications (max(0, x) = x)
/// assume it.
ExprRef randomExpr(Lcg &Rng, int Depth) {
  if (Depth <= 0 || Rng.range(0, 3) == 0) {
    if (Rng.range(0, 1))
      return makeNumber(Rng.range(0, 9));
    return makeVar(VarNames[Rng.range(0, 4)]);
  }
  switch (Rng.range(0, 5)) {
  case 0:
    return makeAdd(randomExpr(Rng, Depth - 1), randomExpr(Rng, Depth - 1));
  case 1:
    return makeMul(randomExpr(Rng, Depth - 1), randomExpr(Rng, Depth - 1));
  case 2:
    return makePow(randomExpr(Rng, Depth - 1),
                   makeNumber(Rng.range(0, 3)));
  case 3:
    return makeLog2(randomExpr(Rng, Depth - 1));
  case 4:
    return makeMax(randomExpr(Rng, Depth - 1), randomExpr(Rng, Depth - 1));
  default:
    return makeCall(CallNames[Rng.range(0, 1)],
                    {randomExpr(Rng, Depth - 1)});
  }
}

TEST(ExprInternTest, StructuralEqualityIsPointerIdentity) {
  Lcg Rng(20260806);
  std::vector<ExprRef> Pool;
  for (int I = 0; I != 300; ++I)
    Pool.push_back(randomExpr(Rng, 4));
  for (size_t I = 0; I != Pool.size(); ++I)
    for (size_t J = I; J != Pool.size(); ++J) {
      bool StructurallyEqual = compareExpr(*Pool[I], *Pool[J]) == 0;
      bool SameNode = Pool[I].get() == Pool[J].get();
      EXPECT_EQ(StructurallyEqual, SameNode)
          << exprText(Pool[I]) << " vs " << exprText(Pool[J]);
      EXPECT_EQ(exprEqual(Pool[I], Pool[J]), SameNode);
    }
}

TEST(ExprInternTest, EqualNodesHaveEqualHashes) {
  // Trivial given identity, but pins down that hash() is usable as a
  // cache-key component: same node => same hash, and distinct nodes
  // rarely collide (not asserted — just equality here).
  Lcg Rng(7);
  for (int I = 0; I != 200; ++I) {
    ExprRef A = randomExpr(Rng, 4);
    ExprRef B = randomExpr(Rng, 4);
    if (A == B)
      EXPECT_EQ(A->hash(), B->hash());
  }
}

TEST(ExprInternTest, BuildOrderIndependence) {
  Lcg Rng(42);
  for (int I = 0; I != 200; ++I) {
    ExprRef A = randomExpr(Rng, 3);
    ExprRef B = randomExpr(Rng, 3);
    ExprRef C = randomExpr(Rng, 3);
    // Commutativity/associativity of the canonicalizing factories must
    // land on the identical node, not merely a structurally equal one.
    EXPECT_EQ(makeAdd({A, B, C}).get(), makeAdd({C, B, A}).get());
    EXPECT_EQ(makeAdd(makeAdd(A, B), C).get(),
              makeAdd(A, makeAdd(B, C)).get());
    EXPECT_EQ(makeMul({A, B, C}).get(), makeMul({C, A, B}).get());
    EXPECT_EQ(makeMax(A, makeMax(B, C)).get(),
              makeMax(makeMax(A, B), C).get());
    // Rebuilding an already-canonical expression is a no-op node-wise.
    if (A->kind() == ExprKind::Add)
      EXPECT_EQ(makeAdd(A->operands()).get(), A.get());
  }
}

TEST(ExprInternTest, SmallIntegersAndVarsAreCached) {
  EXPECT_EQ(makeNumber(3).get(), makeNumber(3).get());
  EXPECT_EQ(makeNumber(-64).get(), makeNumber(-64).get());
  EXPECT_EQ(makeNumber(Rational(1, 2)).get(),
            makeNumber(Rational(1, 2)).get());
  EXPECT_EQ(makeVar("n").get(), makeVar("n").get());
  EXPECT_EQ(makeInfinity().get(), makeInfinity().get());
  EXPECT_NE(makeVar("n").get(), makeVar("m").get());
}

TEST(ExprInternTest, BloomFiltersAgreeWithTraversals) {
  Lcg Rng(99);
  for (int I = 0; I != 300; ++I) {
    ExprRef E = randomExpr(Rng, 4);
    EXPECT_EQ(E->hasCall(), containsAnyCall(E)) << exprText(E);
    for (const char *V : VarNames) {
      // A clear Bloom bit proves absence; containsVar must agree with a
      // bloom-free structural check.
      if (!(E->varBloom() & exprNameBloomBit(V)))
        EXPECT_FALSE(containsVar(E, V)) << exprText(E) << " var " << V;
    }
    for (const char *Cn : CallNames)
      if (!(E->callBloom() & exprNameBloomBit(Cn)))
        EXPECT_FALSE(containsCall(E, Cn)) << exprText(E) << " call " << Cn;
  }
}

TEST(ExprInternTest, ConcurrentInterningYieldsIdenticalNodes) {
  // 8 threads build the same 200 random expressions from the same seed;
  // every thread must end up holding the same node pointers.  This is the
  // TSan workout for the sharded unique table.
  constexpr int Threads = 8, Exprs = 200;
  std::vector<std::vector<const Expr *>> Got(Threads);
  {
    ThreadPool Pool(Threads);
    for (int T = 0; T != Threads; ++T)
      Pool.submit([T, &Got] {
        Lcg Rng(1234567);
        Got[T].reserve(Exprs);
        for (int I = 0; I != Exprs; ++I)
          Got[T].push_back(randomExpr(Rng, 4).get());
      });
    Pool.wait();
  }
  for (int T = 1; T != Threads; ++T)
    EXPECT_EQ(Got[T], Got[0]) << "thread " << T;
}

TEST(ExprInternTest, GoldenHashesArePlatformStable) {
  // Node hashes and name Bloom bits are seeded FNV-1a — fully specified
  // byte-wise, so the exact values below must reproduce on every
  // platform, compiler, and standard library (the CI matrix runs this
  // under gcc/libstdc++ and clang/libc++).  Goldens were computed with an
  // independent FNV-1a implementation; everything keyed on these values
  // (Bloom pruning, interner bucketing, shard choice) is stable iff they
  // hold.
  EXPECT_EQ(exprNameHash("n"), 0x52e89f43e3bbc405ULL);
  EXPECT_EQ(exprNameBloomBit("n"), uint64_t(1) << 5);
  EXPECT_EQ(exprNameBloomBit("psi:f/1"), uint64_t(1) << 11);

  ExprRef N = makeVar("n");
  EXPECT_EQ(N->hash(), 0xce6a3c385c1f825bULL);
  EXPECT_EQ(makeNumber(1)->hash(), 0xb269d744ba3b0969ULL);
  EXPECT_EQ(makeAdd(N, makeNumber(1))->hash(), 0x8326579df19ea4f2ULL);
  EXPECT_EQ(makeCall("psi:f/1", {N})->hash(), 0xfda1f806a3ab95faULL);
  EXPECT_EQ(makeNumber(Rational(355, 113))->hash(), 0x004fce06f50e7714ULL);
  EXPECT_EQ(makeLog2(N)->hash(), 0xc79c54bfc1ddc93bULL);
  EXPECT_EQ(makePow(N, makeNumber(2))->hash(), 0x28af79714bbc2273ULL);
}

TEST(ExprInternTest, ArenaGrowthKeepsOutstandingRefsStable) {
  // The arena grows by whole chunks and never moves or frees one, so an
  // ExprRef (and the `const Expr *` behind it) observed before heavy
  // interning must stay valid — same address, same metadata, same text —
  // while 8 threads force multiple new chunks into existence.  The
  // readers deref the old refs *during* growth: the TSan workout for the
  // lock-free chunk-directory loads in ExprRef::get().
  struct Recorded {
    ExprRef Ref;
    const Expr *Ptr;
    uint64_t Hash;
    std::string Text;
  };
  Lcg Rng(20260809);
  std::vector<Recorded> Old;
  for (int I = 0; I != 100; ++I) {
    ExprRef E = randomExpr(Rng, 4);
    Old.push_back({E, E.get(), E->hash(), exprText(E)});
  }

  constexpr int Threads = 8, PerThread = 10000;
  std::atomic<uint64_t> Mismatches{0};
  {
    ThreadPool Pool(Threads);
    for (int T = 0; T != Threads; ++T)
      Pool.submit([T, &Old, &Mismatches] {
        ExprRef V = makeVar("growth");
        for (int I = 0; I != PerThread; ++I) {
          // Disjoint constant ranges per thread, all above the small-int
          // cache: every iteration interns a fresh Number and a fresh Add
          // node, pushing the arena across chunk boundaries.
          int64_t K = 1000000 + int64_t(T) * PerThread + I;
          ExprRef E = makeAdd(V, makeNumber(K));
          if (!E)
            Mismatches.fetch_add(1, std::memory_order_relaxed);
          // Re-validate an earlier node mid-growth.
          const Recorded &R = Old[static_cast<size_t>(I) % Old.size()];
          if (R.Ref.get() != R.Ptr || R.Ptr->hash() != R.Hash)
            Mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      });
    Pool.wait();
  }
  EXPECT_EQ(Mismatches.load(), 0u);

  ExprInterner::Counters C = ExprInterner::global().counters();
  EXPECT_GT(C.ArenaNodes, uint64_t(Threads) * PerThread);
  // More node bytes than one chunk (2 MiB) proves growth actually crossed
  // chunk boundaries in this process.
  EXPECT_GT(C.ArenaBytes, uint64_t(2) << 20);
  for (const Recorded &R : Old) {
    EXPECT_EQ(R.Ref.get(), R.Ptr);
    EXPECT_EQ(R.Ptr->hash(), R.Hash);
    EXPECT_EQ(exprText(R.Ref), R.Text);
  }
}

TEST(ExprInternTest, ArenaExhaustionRaisesStructuredDiagnostic) {
  ExprInterner &In = ExprInterner::global();
  // Intern the probe node first so it is present regardless of whether
  // this case runs alone or after other cases in the same process.
  ExprRef N = makeVar("n");
  // Clamp the arena to its current fill: the next novel node cannot fit.
  In.setArenaCapacityForTesting(1);
  // Existing nodes are served from the table without allocating.
  EXPECT_EQ(makeVar("n").get(), N.get());
  bool Threw = false;
  try {
    (void)makeNumber(Rational(982451653, 7919)); // novel: must allocate
  } catch (const ExprArenaExhausted &E) {
    Threw = true;
    EXPECT_NE(std::string(E.what()).find("expression arena exhausted"),
              std::string::npos)
        << E.what();
    EXPECT_GT(E.limit(), 0u);
  }
  EXPECT_TRUE(Threw);
  // Restore the full index space; interning must work again and the
  // failed intern must not have corrupted any table.
  In.setArenaCapacityForTesting(0);
  ExprRef E = makeNumber(Rational(982451653, 7919));
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E->number(), Rational(982451653, 7919));
  EXPECT_EQ(E.get(), makeNumber(Rational(982451653, 7919)).get());
}

TEST(ExprInternTest, CountersAreMonotonicAndConsistent) {
  ExprInterner::Counters Before = ExprInterner::global().counters();
  Lcg Rng(5);
  for (int I = 0; I != 50; ++I)
    (void)randomExpr(Rng, 4);
  ExprInterner::Counters After = ExprInterner::global().counters();
  EXPECT_GE(After.InternHits, Before.InternHits);
  EXPECT_GE(After.InternMisses, Before.InternMisses);
  EXPECT_GE(After.Entries, Before.Entries);
  // Every miss creates exactly one entry (plus the eagerly seeded leaves).
  EXPECT_EQ(After.Entries - Before.Entries,
            After.InternMisses - Before.InternMisses);
}

} // namespace
