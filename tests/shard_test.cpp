//===- tests/shard_test.cpp - Multi-process sharded batch stress ----------===//
//
// The sharded batch runner's contract: forked shards produce exactly the
// results of the in-process batch, and a solver-cache directory shared by
// concurrent writer processes is never corrupted — every load succeeds,
// the live-wins read-merge-write converges on the union of entries, and a
// warm rerun is served from disk.  Overlap mode turns the runner into a
// stress harness: every shard analyzes the full corpus, maximizing
// simultaneous flushes of the same cache file.
//
//===----------------------------------------------------------------------===//

#include "corpus/ShardRunner.h"
#include "diffeq/SolverCache.h"
#include "support/FaultInject.h"
#include "support/Io.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <gtest/gtest.h>

using namespace granlog;

namespace {

std::filesystem::path freshDir(const char *Name) {
  std::filesystem::path Dir = std::filesystem::temp_directory_path() / Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

std::string slurp(const std::filesystem::path &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

TEST(ShardRunner, ForkedShardsMatchInProcessBatch) {
  std::vector<GeneratedProgram> Corpus = generateCorpus({5, 48});
  std::vector<BenchmarkDef> Defs = generatedBenchmarks(Corpus);

  ShardConfig InProc;
  InProc.Jobs = 2;
  ShardBatchResult Reference = runShardedBatch(Defs, InProc);
  ASSERT_EQ(Reference.Programs.size(), Defs.size());
  EXPECT_EQ(Reference.Failures, 0u);
  EXPECT_FALSE(Reference.Forked);

  ShardConfig Sharded = InProc;
  Sharded.Shards = 4;
  ShardBatchResult Forked = runShardedBatch(Defs, Sharded);
  EXPECT_EQ(Forked.Failures, 0u);
  EXPECT_EQ(Forked.Warning, "");
#ifndef _WIN32
  EXPECT_TRUE(Forked.Forked);
#endif
  // Same programs, same fingerprints, corpus order — byte-identical
  // deterministic report.
  EXPECT_EQ(corpusReportText(Reference.Programs),
            corpusReportText(Forked.Programs));
  EXPECT_EQ(Forked.Latency.count(), Defs.size());
}

TEST(ShardRunner, OverlappingShardsNeverCorruptSharedCache) {
  std::filesystem::path Dir = freshDir("granlog-shard-stress");
  std::string CachePath = (Dir / "solver-cache.json").string();

  std::vector<GeneratedProgram> Corpus = generateCorpus({11, 24});
  std::vector<BenchmarkDef> Defs = generatedBenchmarks(Corpus);
  ShardConfig Config;
  Config.Shards = 4;
  Config.Jobs = 2;
  Config.CacheDir = Dir.string();
  Config.Overlap = true; // every shard analyzes the full corpus

  size_t PrevEntries = 0;
  for (int Round = 0; Round != 3; ++Round) {
    ShardBatchResult R = runShardedBatch(Defs, Config);
    EXPECT_EQ(R.Failures, 0u) << "round " << Round;
    EXPECT_EQ(R.Warning, "") << "round " << Round;

    // All overlapping shards agree on the whole corpus.
    ASSERT_EQ(R.ShardFingerprints.size(), Config.Shards) << "round "
                                                         << Round;
    for (const std::string &F : R.ShardFingerprints)
      EXPECT_EQ(F, R.ShardFingerprints[0]) << "round " << Round;

    // After four processes flushed concurrently, the file must parse.
    SolverCache Probe;
    std::string LoadError;
    ASSERT_TRUE(Probe.loadFromFile(CachePath, &LoadError))
        << "round " << Round << ": " << LoadError;
    // Live-wins merge converges: the entry set can only grow, and after
    // the first round there is nothing new to add.
    EXPECT_GE(Probe.entries(), PrevEntries) << "round " << Round;
    if (Round > 0)
      EXPECT_EQ(Probe.entries(), PrevEntries) << "round " << Round;
    PrevEntries = Probe.entries();

    if (Round > 0)
      EXPECT_GT(R.DiskHits, 0u) << "round " << Round;
  }
  std::filesystem::remove_all(Dir);
}

TEST(ShardRunner, AtomicWritesNeverTearUnderContention) {
  // writeFileAtomic's contract under concurrent writers to one path:
  // readers always observe one writer's *complete* document, never a
  // mix or a truncation.  Distinct pid/counter temp names plus rename
  // make this hold across processes too; threads exercise the same code.
  std::filesystem::path Dir = freshDir("granlog-atomic-stress");
  std::filesystem::create_directories(Dir);
  std::string Path = (Dir / "contended.txt").string();

  constexpr int Writers = 4, Rounds = 40;
  std::vector<std::string> Payloads;
  for (int W = 0; W != Writers; ++W)
    Payloads.push_back(std::string(4096, static_cast<char>('A' + W)) +
                       "\n");

  std::atomic<bool> Stop{false};
  std::atomic<int> Torn{0};
  std::thread Reader([&] {
    while (!Stop.load()) {
      std::string Seen = slurp(Path);
      if (Seen.empty())
        continue; // not yet created
      bool Complete = false;
      for (const std::string &P : Payloads)
        Complete |= Seen == P;
      if (!Complete)
        Torn.fetch_add(1);
    }
  });
  std::vector<std::thread> Threads;
  for (int W = 0; W != Writers; ++W)
    Threads.emplace_back([&, W] {
      for (int R = 0; R != Rounds; ++R)
        EXPECT_TRUE(writeFileAtomic(Path, Payloads[W]));
    });
  for (std::thread &T : Threads)
    T.join();
  Stop.store(true);
  Reader.join();

  EXPECT_EQ(Torn.load(), 0);
  std::filesystem::remove_all(Dir);
}

#ifndef _WIN32
TEST(ShardRunner, CrashedWorkersAreRetriedInProcess) {
  // Fault-injected worker crashes: every shard child exits before
  // reporting (rate=1, keyed per shard so inherited occurrence counters
  // cannot skew the decision).  The parent must retry each slice
  // in-process exactly once — a crashed worker costs latency, never
  // coverage or determinism.
  std::vector<GeneratedProgram> Corpus = generateCorpus({5, 24});
  std::vector<BenchmarkDef> Defs = generatedBenchmarks(Corpus);

  ShardConfig Config;
  Config.Shards = 3;
  Config.Jobs = 2;
  ShardBatchResult Clean = runShardedBatch(Defs, Config);
  ASSERT_EQ(Clean.Failures, 0u);
  ASSERT_TRUE(Clean.ShardFailures.empty());

  std::string SpecError;
  std::unique_ptr<FaultInjector> Inject = FaultInjector::fromSpec(
      "seed=1,rate=1,sites=shard.crash", &SpecError);
  ASSERT_TRUE(Inject) << SpecError;
  setFaultInjector(Inject.get());
  ShardBatchResult Crashed = runShardedBatch(Defs, Config);
  setFaultInjector(nullptr);

  // One failure record per shard, each retried; no coverage lost.
  ASSERT_EQ(Crashed.ShardFailures.size(), Config.Shards);
  std::vector<bool> SeenShard(Config.Shards, false);
  for (const ShardFailure &F : Crashed.ShardFailures) {
    ASSERT_LT(F.Shard, Config.Shards);
    EXPECT_FALSE(SeenShard[F.Shard]) << "duplicate record for shard "
                                     << F.Shard;
    SeenShard[F.Shard] = true;
    EXPECT_TRUE(F.Retried);
    EXPECT_NE(F.Reason, "");
  }
  EXPECT_EQ(Crashed.Failures, 0u);
  EXPECT_EQ(corpusReportText(Crashed.Programs),
            corpusReportText(Clean.Programs));
  EXPECT_EQ(Crashed.Latency.count(), Defs.size());
}
#endif // !_WIN32

TEST(ShardRunner, CorpusReportTextIsTimingFree) {
  // The deterministic report must not leak timings: two runs of the same
  // corpus at different shard counts are byte-identical even though their
  // Seconds fields differ.
  std::vector<GeneratedProgram> Corpus = generateCorpus({7, 12});
  std::vector<BenchmarkDef> Defs = generatedBenchmarks(Corpus);
  ShardConfig A;
  A.Jobs = 1;
  ShardConfig B;
  B.Shards = 3;
  B.Jobs = 2;
  ShardBatchResult RA = runShardedBatch(Defs, A);
  ShardBatchResult RB = runShardedBatch(Defs, B);
  std::string Text = corpusReportText(RA.Programs);
  EXPECT_EQ(Text, corpusReportText(RB.Programs));
  // One line per program plus the combined corpus fingerprint.
  EXPECT_EQ(static_cast<size_t>(std::count(Text.begin(), Text.end(), '\n')),
            Defs.size() + 1);
  EXPECT_NE(Text.find("corpus "), std::string::npos);
}

} // namespace
