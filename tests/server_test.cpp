//===- tests/server_test.cpp - granlogd protocol, lifecycle, faults -------===//
//
// The analysis server's robustness contract, tested at three layers:
//
//  - wire protocol: strict encode/decode round-trips, every malformed
//    shape rejected, frame reassembly across arbitrary read boundaries;
//  - session lifecycle: pinned LRU eviction under caps, and the
//    evict-then-readmit byte-identity guarantee (a client whose session
//    was evicted and re-warmed from its persistent cache sees exactly
//    the reports a never-evicted session would have produced, at any
//    --jobs setting);
//  - the server itself, over a real AF_UNIX socket: per-client
//    isolation, protocol-error handling, fault-injected worker
//    exceptions surfacing as Fault responses (never a dead server),
//    graceful drain, and startup crash recovery.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "program/Generator.h"
#include "program/Program.h"
#include "support/Diagnostics.h"
#include "support/FaultInject.h"
#include "support/Json.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

#if !defined(_WIN32)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define GRANLOG_TEST_SOCKETS 1
#endif

using namespace granlog;

namespace {

/// Installs a fault injector for one test scope and always uninstalls.
struct ScopedInjector {
  explicit ScopedInjector(std::unique_ptr<FaultInjector> F)
      : Injector(std::move(F)) {
    setFaultInjector(Injector.get());
  }
  ~ScopedInjector() { setFaultInjector(nullptr); }
  std::unique_ptr<FaultInjector> Injector;
};

std::filesystem::path freshDir(const char *Name) {
  std::filesystem::path Dir =
      std::filesystem::temp_directory_path() /
      (std::string(Name) + "-" + std::to_string(::getpid()));
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

/// Strips the length prefix off a full frame, returning the payload.
std::string payloadOf(const std::string &Frame) {
  EXPECT_GE(Frame.size(), 4u);
  return Frame.substr(4);
}

//===----------------------------------------------------------------------===//
// Wire protocol
//===----------------------------------------------------------------------===//

TEST(Protocol, RequestRoundTripsEveryOp) {
  Request Hello;
  Hello.Kind = Op::Hello;
  Hello.Id = 7;
  Hello.Name = "client-a";
  Request Update;
  Update.Kind = Op::Update;
  Update.Id = 8;
  Update.Source = "p(0).\np(s(X)) :- p(X).\n";
  Request Explain;
  Explain.Kind = Op::Explain;
  Explain.Id = 9;
  Explain.Pred = "p";
  Request Only;
  Only.Kind = Op::Only;
  Only.Id = 10;
  Only.Pred = "p/1";
  Only.Source = "p(0).\n";
  Request Stats;
  Stats.Kind = Op::Stats;
  Stats.Id = 11;
  Request Close;
  Close.Kind = Op::Close;
  Close.Id = 12;

  for (const Request *R : {&Hello, &Update, &Explain, &Only, &Stats,
                           &Close}) {
    std::optional<Request> Decoded = decodeRequest(payloadOf(encodeRequest(*R)));
    ASSERT_TRUE(Decoded.has_value());
    EXPECT_EQ(static_cast<int>(Decoded->Kind), static_cast<int>(R->Kind));
    EXPECT_EQ(Decoded->Id, R->Id);
    EXPECT_EQ(Decoded->Name, R->Name);
    EXPECT_EQ(Decoded->Pred, R->Pred);
    EXPECT_EQ(Decoded->Source, R->Source);
  }
}

TEST(Protocol, ResponseRoundTrips) {
  Response R;
  R.St = Status::LoadError;
  R.Id = 0xdeadbeef;
  R.Degradations = 3;
  R.Body = std::string("diag\0with nul", 13);
  std::optional<Response> D = decodeResponse(payloadOf(encodeResponse(R)));
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(static_cast<int>(D->St), static_cast<int>(R.St));
  EXPECT_EQ(D->Id, R.Id);
  EXPECT_EQ(D->Degradations, R.Degradations);
  EXPECT_EQ(D->Body, R.Body);
}

TEST(Protocol, MalformedPayloadsRejected) {
  EXPECT_FALSE(decodeRequest("").has_value());
  EXPECT_FALSE(decodeRequest("\x01").has_value()); // truncated id
  EXPECT_FALSE(decodeRequest(std::string("\x63\0\0\0\0", 5))
                   .has_value()); // unknown opcode
  // Stats with trailing garbage: strict decode, not an extension point.
  Request Stats;
  Stats.Kind = Op::Stats;
  std::string P = payloadOf(encodeRequest(Stats)) + "x";
  EXPECT_FALSE(decodeRequest(P).has_value());
  // String length overrunning the payload.
  std::string Hello("\x01\0\0\0\0\xff\xff\xff\x7f", 9);
  EXPECT_FALSE(decodeRequest(Hello).has_value());
  // Response with an out-of-range status byte.
  Response R;
  std::string RP = payloadOf(encodeResponse(R));
  RP[0] = 0x7f;
  EXPECT_FALSE(decodeResponse(RP).has_value());
}

TEST(Protocol, FrameReaderReassemblesByteAtATime) {
  Request A;
  A.Kind = Op::Hello;
  A.Id = 1;
  A.Name = "x";
  Request B;
  B.Kind = Op::Update;
  B.Id = 2;
  B.Source = "p(0).";
  std::string Stream = encodeRequest(A) + encodeRequest(B);

  FrameReader Reader;
  std::vector<std::string> Payloads;
  for (char C : Stream) {
    Reader.append(&C, 1);
    while (std::optional<std::string> P = Reader.next())
      Payloads.push_back(std::move(*P));
  }
  ASSERT_EQ(Payloads.size(), 2u);
  EXPECT_EQ(decodeRequest(Payloads[0])->Name, "x");
  EXPECT_EQ(decodeRequest(Payloads[1])->Source, "p(0).");
  EXPECT_FALSE(Reader.overflowed());
  EXPECT_EQ(Reader.buffered(), 0u);
}

TEST(Protocol, FrameReaderPoisonsOnBadLength) {
  FrameReader Zero;
  Zero.append("\0\0\0\0", 4); // zero-length frame
  EXPECT_FALSE(Zero.next().has_value());
  EXPECT_TRUE(Zero.overflowed());

  FrameReader Huge(/*MaxFrame=*/64);
  uint32_t Len = 65;
  Huge.append(&Len, 4);
  EXPECT_FALSE(Huge.next().has_value());
  EXPECT_TRUE(Huge.overflowed());
  // A poisoned reader stays poisoned: appends are ignored.
  Huge.append("abcd", 4);
  EXPECT_FALSE(Huge.next().has_value());
}

//===----------------------------------------------------------------------===//
// Fault injector
//===----------------------------------------------------------------------===//

TEST(FaultInjector, DeterministicPerSeedSiteOccurrence) {
  FaultInjector A(42, 3), B(42, 3);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.shouldFail("io.write.short"), B.shouldFail("io.write.short"));
  EXPECT_GT(A.totalInjected(), 0u);
  EXPECT_EQ(A.totalInjected(), B.totalInjected());
  // A different seed gives a different decision sequence (with rate 3
  // over 100 draws, identical sequences would be astonishing).
  FaultInjector C(43, 3);
  bool Differs = false;
  FaultInjector A2(42, 3);
  for (int I = 0; I != 100; ++I)
    Differs |= (A2.shouldFail("io.write.short") !=
                C.shouldFail("io.write.short"));
  EXPECT_TRUE(Differs);
}

TEST(FaultInjector, KeyedDecisionsIgnoreCallOrder) {
  FaultInjector A(7, 2), B(7, 2);
  bool Forward[32], Backward[32];
  for (uint64_t K = 0; K != 32; ++K)
    Forward[K] = A.shouldFail("shard.crash", K);
  for (uint64_t K = 32; K-- != 0;)
    Backward[K] = B.shouldFail("shard.crash", K);
  for (uint64_t K = 0; K != 32; ++K)
    EXPECT_EQ(Forward[K], Backward[K]) << "key " << K;
}

TEST(FaultInjector, SpecParsesArmsAndRendersBack) {
  std::string Error;
  std::unique_ptr<FaultInjector> F = FaultInjector::fromSpec(
      "seed=9,rate=4,sites=io.write.short|net.read.short", &Error);
  ASSERT_TRUE(F) << Error;
  EXPECT_EQ(Error, "");
  EXPECT_EQ(F->seed(), 9u);
  EXPECT_EQ(F->rate(), 4u);
  // Unarmed sites never fire; armed ones follow the hash.
  for (int I = 0; I != 50; ++I)
    EXPECT_FALSE(F->shouldFail("server.worker.throw"));
  // The rendered spec re-parses to the same configuration.
  std::unique_ptr<FaultInjector> G =
      FaultInjector::fromSpec(F->spec(), &Error);
  ASSERT_TRUE(G) << Error;
  EXPECT_EQ(G->seed(), F->seed());
  EXPECT_EQ(G->rate(), F->rate());
  EXPECT_EQ(G->spec(), F->spec());

  EXPECT_FALSE(FaultInjector::fromSpec("off", &Error));
  EXPECT_EQ(Error, "");
  EXPECT_FALSE(FaultInjector::fromSpec("rate=banana", &Error));
  EXPECT_NE(Error, "");
}

TEST(FaultInjector, NoInjectorMeansNoFaults) {
  setFaultInjector(nullptr);
  EXPECT_FALSE(faultPoint("io.write.short"));
  EXPECT_FALSE(faultPointKeyed("shard.crash", 1));
}

//===----------------------------------------------------------------------===//
// Session lifecycle
//===----------------------------------------------------------------------===//

SessionManagerConfig managerConfig(size_t MaxSessions,
                                   const std::string &CacheRoot,
                                   unsigned Jobs = 1) {
  SessionManagerConfig C;
  C.Template.Jobs = Jobs;
  C.MaxSessions = MaxSessions;
  C.CacheRoot = CacheRoot;
  return C;
}

const SessionUpdate &updateWith(AnalysisSession &S, const std::string &Src) {
  TermArena Arena;
  Diagnostics Diags;
  std::optional<Program> P = loadProgram(Src, Arena, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  return S.update(*P);
}

TEST(SessionManager, LruEvictsColdestUnpinned) {
  SessionManager Mgr(managerConfig(2, ""));
  { SessionLease A = Mgr.lease("a"); }
  { SessionLease B = Mgr.lease("b"); }
  EXPECT_EQ(Mgr.liveSessions(), 2u);
  { SessionLease C = Mgr.lease("c"); } // evicts "a", the coldest
  EXPECT_EQ(Mgr.liveSessions(), 2u);
  EXPECT_EQ(Mgr.evictions(), 1u);
  EXPECT_EQ(Mgr.admissions(), 3u);
  // Touching "b" then admitting "d" evicts "c", not "b".
  { SessionLease B = Mgr.lease("b"); }
  { SessionLease D = Mgr.lease("d"); }
  EXPECT_EQ(Mgr.evictions(), 2u);
  { SessionLease B = Mgr.lease("b"); }
  EXPECT_EQ(Mgr.admissions(), 4u); // "b" survived: no re-admission
}

TEST(SessionManager, PinnedSessionsAreNotEvicted) {
  SessionManager Mgr(managerConfig(1, ""));
  SessionLease A = Mgr.lease("a"); // held: pinned
  {
    SessionLease B = Mgr.lease("b"); // cap says evict, but "a" is pinned
    EXPECT_EQ(Mgr.liveSessions(), 2u);
    EXPECT_GE(Mgr.evictionsBlocked(), 1u);
  }
  // "b" released and unpinned: the cap re-applies on release.
  EXPECT_EQ(Mgr.liveSessions(), 1u);
}

TEST(SessionManager, AdversarialClientNamesGetDistinctCacheDirs) {
  auto Root = freshDir("granlog-cachedirs");
  SessionManager Mgr(managerConfig(4, Root.string()));
  std::string A = Mgr.cacheDirFor("../x");
  std::string B = Mgr.cacheDirFor(".._x");
  EXPECT_NE(A, B);
  // Sanitization keeps the directory inside the root.
  EXPECT_EQ(A.rfind(Root.string(), 0), 0u);
  std::filesystem::remove_all(Root);
}

/// Satellite 3: a session evicted under memory pressure and re-admitted
/// (re-warming from its persistent cache) must produce byte-identical
/// reports to a session that was never evicted — at any jobs setting.
void evictReadmitByteIdentity(unsigned Jobs) {
  auto Root = freshDir(Jobs == 1 ? "granlog-evict-j1" : "granlog-evict-j8");
  GeneratedProgram G0 = generateProgram(11, 0);
  GeneratedProgram G1 = generateProgram(11, 1);
  std::string Rev0 = G0.Source;
  std::string Rev1 = G0.Source + "\n" + G1.Source;

  // Reference: one session, never evicted, no persistence.
  SessionOptions SO;
  SO.Jobs = Jobs;
  AnalysisSession Reference(SO);
  std::string Ref0 = updateWith(Reference, Rev0).Report;
  std::string Ref1 = updateWith(Reference, Rev1).Report;
  std::string Ref0Again = updateWith(Reference, Rev0).Report;
  std::string RefExplain = Reference.last().ExplainAll;

  // Managed: cap 1 session, so leasing "other" evicts "client" in
  // between every step, flushing its solver cache to disk.
  SessionManager Mgr(managerConfig(1, Root.string(), Jobs));
  uint64_t DiskHits = 0;
  {
    SessionLease L = Mgr.lease("client");
    EXPECT_EQ(L.cacheWarning(), "");
    EXPECT_EQ(updateWith(L.session(), Rev0).Report, Ref0);
  }
  { SessionLease Other = Mgr.lease("other"); } // evicts "client"
  EXPECT_GE(Mgr.evictions(), 1u);
  {
    SessionLease L = Mgr.lease("client"); // re-admitted from disk
    EXPECT_EQ(L.cacheWarning(), "");
    EXPECT_EQ(updateWith(L.session(), Rev1).Report, Ref1);
    DiskHits = L.session().solverCache().diskHits();
  }
  { SessionLease Other = Mgr.lease("other"); } // evicts "client" again
  {
    SessionLease L = Mgr.lease("client");
    const SessionUpdate &U = updateWith(L.session(), Rev0);
    EXPECT_EQ(U.Report, Ref0Again);
    EXPECT_EQ(L.session().last().ExplainAll, RefExplain);
  }
  // The re-warm actually came from the persistent cache, not a re-solve.
  EXPECT_GT(DiskHits, 0u);
  std::filesystem::remove_all(Root);
}

TEST(SessionManager, EvictReadmitByteIdenticalJobs1) {
  evictReadmitByteIdentity(1);
}

TEST(SessionManager, EvictReadmitByteIdenticalJobs8) {
  evictReadmitByteIdentity(8);
}

#if GRANLOG_TEST_SOCKETS

//===----------------------------------------------------------------------===//
// The server over a real socket
//===----------------------------------------------------------------------===//

/// A minimal blocking test client.
struct TestClient {
  int Fd = -1;
  FrameReader Reader;

  bool connect(const std::string &Path) {
    sockaddr_un Addr{};
    if (Path.size() >= sizeof(Addr.sun_path))
      return false;
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    return Fd >= 0 && ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                                sizeof(Addr)) == 0;
  }

  bool sendRaw(std::string_view Bytes) {
    size_t Off = 0;
    while (Off < Bytes.size()) {
#if defined(MSG_NOSIGNAL)
      ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                         MSG_NOSIGNAL);
#else
      ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off, 0);
#endif
      if (N <= 0)
        return false;
      Off += static_cast<size_t>(N);
    }
    return true;
  }

  std::optional<Response> exchange(const Request &R) {
    if (!sendRaw(encodeRequest(R)))
      return std::nullopt;
    return recv();
  }

  std::optional<Response> recv() {
    while (true) {
      if (std::optional<std::string> P = Reader.next())
        return decodeResponse(*P);
      if (Reader.overflowed())
        return std::nullopt;
      char Buf[65536];
      ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
      if (N <= 0)
        return std::nullopt;
      Reader.append(Buf, static_cast<size_t>(N));
    }
  }

  /// True when the server closed the connection (EOF).
  bool eofReached() {
    char Buf[16];
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    return N == 0;
  }

  ~TestClient() {
    if (Fd >= 0)
      ::close(Fd);
  }
};

std::string shortSocketPath(const char *Tag) {
  return "/tmp/gl-" + std::to_string(::getpid()) + "-" + Tag + ".sock";
}

Request makeHello(const std::string &Name, uint32_t Id = 1) {
  Request R;
  R.Kind = Op::Hello;
  R.Id = Id;
  R.Name = Name;
  return R;
}

Request makeUpdate(const std::string &Source, uint32_t Id) {
  Request R;
  R.Kind = Op::Update;
  R.Id = Id;
  R.Source = Source;
  return R;
}

TEST(AnalysisServer, EndToEndSessionOverSocket) {
  GeneratedProgram G = generateProgram(21, 0);
  ServerConfig Config;
  Config.SocketPath = shortSocketPath("e2e");
  Config.Workers = 2;
  AnalysisServer Server(Config);
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  // The expected bodies, from a direct library session.
  SessionOptions SO;
  AnalysisSession Direct(SO);
  std::string WantReport = updateWith(Direct, G.Source).Report;
  std::string WantExplain = Direct.last().ExplainAll;

  TestClient C;
  ASSERT_TRUE(C.connect(Config.SocketPath));
  std::optional<Response> R = C.exchange(makeHello("e2e-client"));
  ASSERT_TRUE(R);
  EXPECT_EQ(R->St, Status::Ok);
  EXPECT_EQ(R->Body, "granlogd/1");

  R = C.exchange(makeUpdate(G.Source, 2));
  ASSERT_TRUE(R);
  EXPECT_EQ(R->St, Status::Ok);
  EXPECT_EQ(R->Id, 2u);
  EXPECT_EQ(R->Body, WantReport);

  Request Explain;
  Explain.Kind = Op::Explain;
  Explain.Id = 3;
  R = C.exchange(Explain);
  ASSERT_TRUE(R);
  EXPECT_EQ(R->St, Status::Ok);
  EXPECT_EQ(R->Body, WantExplain);

  // A named explain returns exactly that predicate's block.
  Explain.Id = 4;
  Explain.Pred = G.EntryPred;
  R = C.exchange(Explain);
  ASSERT_TRUE(R);
  EXPECT_EQ(R->St, Status::Ok);
  EXPECT_NE(R->Body, "");
  EXPECT_EQ(R->Body.rfind(G.EntryPred + "/", 0), 0u);
  EXPECT_NE(WantExplain.find(R->Body.substr(0, R->Body.find('\n'))),
            std::string::npos);

  Request Only;
  Only.Kind = Op::Only;
  Only.Id = 5;
  Only.Pred = G.EntryPred + "/" + std::to_string(G.EntryArity);
  Only.Source = G.Source;
  R = C.exchange(Only);
  ASSERT_TRUE(R);
  EXPECT_EQ(R->St, Status::Ok);
  EXPECT_NE(R->Body.find(G.EntryPred), std::string::npos);

  Request Stats;
  Stats.Kind = Op::Stats;
  Stats.Id = 6;
  R = C.exchange(Stats);
  ASSERT_TRUE(R);
  EXPECT_EQ(R->St, Status::Ok);
  EXPECT_TRUE(jsonValidate(R->Body)) << R->Body;

  Request Close;
  Close.Kind = Op::Close;
  Close.Id = 7;
  R = C.exchange(Close);
  ASSERT_TRUE(R);
  EXPECT_EQ(R->St, Status::Ok);
  EXPECT_TRUE(C.eofReached());

  Server.requestStop();
  EXPECT_EQ(Server.waitForDrain(), 0);
  EXPECT_FALSE(std::filesystem::exists(Config.SocketPath));
}

TEST(AnalysisServer, IntervalModeSessionMatchesDirectLibrary) {
  // A daemon started with --bounds=both serves interval reports: the
  // response body is byte-identical to a direct Both-mode library
  // session and actually carries the [lo, hi] rendering.
  GeneratedProgram G = generateProgram(21, 0);
  ServerConfig Config;
  Config.SocketPath = shortSocketPath("ivl");
  Config.Session.Bounds = BoundsMode::Both;
  AnalysisServer Server(Config);
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  SessionOptions SO;
  SO.Bounds = BoundsMode::Both;
  AnalysisSession Direct(SO);
  std::string WantReport = updateWith(Direct, G.Source).Report;

  TestClient C;
  ASSERT_TRUE(C.connect(Config.SocketPath));
  std::optional<Response> R = C.exchange(makeHello("ivl-client"));
  ASSERT_TRUE(R);
  R = C.exchange(makeUpdate(G.Source, 2));
  ASSERT_TRUE(R);
  EXPECT_EQ(R->St, Status::Ok);
  EXPECT_EQ(R->Body, WantReport);
  EXPECT_NE(R->Body.find("cost = ["), std::string::npos) << R->Body;

  Server.requestStop();
  EXPECT_EQ(Server.waitForDrain(), 0);
}

TEST(AnalysisServer, IsolationAndProtocolErrors) {
  ServerConfig Config;
  Config.SocketPath = shortSocketPath("iso");
  AnalysisServer Server(Config);
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  // Request before Hello: NoSession.
  {
    TestClient C;
    ASSERT_TRUE(C.connect(Config.SocketPath));
    std::optional<Response> R = C.exchange(makeUpdate("p(0).", 1));
    ASSERT_TRUE(R);
    EXPECT_EQ(R->St, Status::NoSession);
  }
  // Duplicate client name: second connection rejected, first unaffected.
  {
    TestClient A, B;
    ASSERT_TRUE(A.connect(Config.SocketPath));
    ASSERT_TRUE(B.connect(Config.SocketPath));
    EXPECT_EQ(A.exchange(makeHello("dup"))->St, Status::Ok);
    EXPECT_EQ(B.exchange(makeHello("dup"))->St, Status::NoSession);
    EXPECT_EQ(A.exchange(makeUpdate("p(0).", 2))->St, Status::Ok);
  }
  // Explain before any update: Stale, with guidance.
  {
    TestClient C;
    ASSERT_TRUE(C.connect(Config.SocketPath));
    EXPECT_EQ(C.exchange(makeHello("fresh"))->St, Status::Ok);
    Request Explain;
    Explain.Kind = Op::Explain;
    Explain.Id = 2;
    std::optional<Response> R = C.exchange(Explain);
    ASSERT_TRUE(R);
    EXPECT_EQ(R->St, Status::Stale);
  }
  // Unparseable program: LoadError with the reader's diagnostics.
  {
    TestClient C;
    ASSERT_TRUE(C.connect(Config.SocketPath));
    EXPECT_EQ(C.exchange(makeHello("loader"))->St, Status::Ok);
    std::optional<Response> R = C.exchange(makeUpdate(":-(((", 2));
    ASSERT_TRUE(R);
    EXPECT_EQ(R->St, Status::LoadError);
    EXPECT_NE(R->Body, "");
  }
  // Malformed frame: structured error response, then the connection is
  // closed (no resynchronization after a framing error).
  {
    TestClient C;
    ASSERT_TRUE(C.connect(Config.SocketPath));
    std::string Garbage("\x09\0\0\0\x63garbage!", 13);
    ASSERT_TRUE(C.sendRaw(Garbage));
    std::optional<Response> R = C.recv();
    ASSERT_TRUE(R);
    EXPECT_EQ(R->St, Status::Malformed);
    EXPECT_TRUE(C.eofReached());
  }
  // Oversized frame length: TooLarge, then closed.
  {
    TestClient C;
    ASSERT_TRUE(C.connect(Config.SocketPath));
    uint32_t Huge = 0x7fffffff;
    ASSERT_TRUE(C.sendRaw(std::string_view(
        reinterpret_cast<const char *>(&Huge), 4)));
    std::optional<Response> R = C.recv();
    ASSERT_TRUE(R);
    EXPECT_EQ(R->St, Status::TooLarge);
    EXPECT_TRUE(C.eofReached());
  }

  Server.requestStop();
  EXPECT_EQ(Server.waitForDrain(), 0);
}

TEST(AnalysisServer, WorkerFaultBecomesResponseNotCrash) {
  ScopedInjector Inject(FaultInjector::fromSpec(
      "seed=5,rate=1,sites=server.worker.throw", nullptr));
  ServerConfig Config;
  Config.SocketPath = shortSocketPath("fault");
  AnalysisServer Server(Config);
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  TestClient C;
  ASSERT_TRUE(C.connect(Config.SocketPath));
  std::optional<Response> R = C.exchange(makeHello("faulty"));
  ASSERT_TRUE(R);
  EXPECT_EQ(R->St, Status::Fault);
  EXPECT_GE(Server.counters().Faults.load(), 1u);

  // Injection off: the same server keeps serving the same connection.
  setFaultInjector(nullptr);
  R = C.exchange(makeHello("faulty"));
  ASSERT_TRUE(R);
  EXPECT_EQ(R->St, Status::Ok);
  R = C.exchange(makeUpdate("p(0).", 2));
  ASSERT_TRUE(R);
  EXPECT_EQ(R->St, Status::Ok);

  Server.requestStop();
  EXPECT_EQ(Server.waitForDrain(), 0);
}

TEST(AnalysisServer, StartupSweepsStaleCacheTemps) {
  auto Root = freshDir("granlog-recovery");
  // A crashed predecessor's residue: per-client cache dirs holding temp
  // files whose writer pid is long dead (1 is pid 1's, never ours; use a
  // absurdly high dead pid) plus one unparseable name.
  auto ClientDir = Root / "client-abc123";
  std::filesystem::create_directories(ClientDir);
  std::ofstream(ClientDir / "solver-cache.json.tmp.999999999.0") << "junk";
  std::ofstream(ClientDir / "solver-cache.json.tmp.notapid") << "junk";

  ServerConfig Config;
  Config.SocketPath = shortSocketPath("rec");
  Config.CacheRoot = Root.string();
  AnalysisServer Server(Config);
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;
  EXPECT_EQ(Server.counters().SweptTemps.load(), 2u);
  EXPECT_FALSE(std::filesystem::exists(
      ClientDir / "solver-cache.json.tmp.999999999.0"));
  Server.requestStop();
  EXPECT_EQ(Server.waitForDrain(), 0);
  std::filesystem::remove_all(Root);
}

TEST(AnalysisServer, DrainRespondsShuttingDownToLateRequests) {
  ServerConfig Config;
  Config.SocketPath = shortSocketPath("drain");
  AnalysisServer Server(Config);
  std::string Error;
  ASSERT_TRUE(Server.start(&Error)) << Error;

  TestClient C;
  ASSERT_TRUE(C.connect(Config.SocketPath));
  ASSERT_EQ(C.exchange(makeHello("late"))->St, Status::Ok);

  // Queue a request and immediately stop: the server either ran it (Ok)
  // or answered ShuttingDown — never silence, never a hang.
  ASSERT_TRUE(C.sendRaw(encodeRequest(makeUpdate("p(0).", 2))));
  Server.requestStop();
  std::optional<Response> R = C.recv();
  ASSERT_TRUE(R);
  EXPECT_TRUE(R->St == Status::Ok || R->St == Status::ShuttingDown)
      << statusName(R->St);
  EXPECT_EQ(Server.waitForDrain(), 0);
}

#endif // GRANLOG_TEST_SOCKETS

} // namespace
