//===- tests/interval_test.cpp - Two-sided bound invariants ---------------===//
//
// Interval-mode (AnalyzerOptions::Bounds == Both) lockdown:
//  * the pointwise invariant Lo <= Hi, for cost intervals and size
//    intervals alike, over the whole corpus and a generated-program
//    sweep — sampled at concrete input sizes, since the bounds are
//    symbolic closed forms;
//  * interval reports are --jobs invariant and warm == cold through an
//    incremental session, byte for byte (the interval rendering must not
//    break the determinism contracts the upper-only pipeline pins);
//  * upper-only mode computes no lower bounds at all — the interval
//    machinery must be invisible unless opted into.
//
//===----------------------------------------------------------------------===//

#include "core/AnalysisSession.h"
#include "core/GranularityAnalyzer.h"
#include "corpus/Corpus.h"
#include "program/Generator.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace granlog;

namespace {

/// One Both-mode analysis with everything it borrows kept alive.
struct BothRun {
  TermArena Arena;
  Diagnostics Diags;
  std::optional<Program> P;
  std::unique_ptr<GranularityAnalyzer> GA;
};

std::unique_ptr<BothRun> analyzeBoth(const std::string &Source,
                                     unsigned Jobs = 1) {
  auto Run = std::make_unique<BothRun>();
  Run->P = loadProgram(Source, Run->Arena, Run->Diags);
  if (!Run->P)
    return Run;
  AnalyzerOptions Options{CostMetric::resolutions(), 48.0};
  Options.Jobs = Jobs;
  Options.Bounds = BoundsMode::Both;
  Run->GA = std::make_unique<GranularityAnalyzer>(*Run->P, Options);
  Run->GA->run();
  return Run;
}

constexpr double SampleSizes[] = {0, 1, 2, 3, 5, 10, 17};

/// Checks Lo <= Hi for every predicate of \p Run at the sampled input
/// sizes: the cost interval via costAt/costLoAt, the size interval of
/// every output position by direct evaluation over the "n1".."nk"
/// parameters.  Hi may be +inf (unknown upper bound) — the invariant
/// holds trivially there; a null or unevaluable bound is skipped (no
/// claim is made, so there is nothing to compare).
void expectIntervalsHold(const BothRun &Run, const std::string &Tag) {
  ASSERT_TRUE(Run.GA) << Tag;
  const GranularityAnalyzer &GA = *Run.GA;
  for (const auto &Pred : Run.P->predicates()) {
    Functor F = Pred->functor();
    std::string Name(Run.P->symbols().text(F.Name));

    size_t NumInputs = GA.modes().inputPositions(F).size();
    for (double V : SampleSizes) {
      std::vector<double> Sizes(NumInputs, V);
      std::optional<double> Hi = GA.costs().costAt(F, Sizes);
      std::optional<double> Lo = GA.costs().costLoAt(F, Sizes);
      if (!Hi || !Lo)
        continue;
      EXPECT_LE(*Lo, *Hi * (1 + 1e-9) + 1e-6)
          << Tag << ": cost interval of " << Name << "/" << F.Arity
          << " inverted at size " << V;
    }

    const PredicateSizeInfo &SI = GA.sizes().info(F);
    for (size_t O = 0; O != SI.OutputSize.size(); ++O) {
      const BoundInterval &B = SI.OutputSize[O];
      if (!B.Hi || !B.Lo)
        continue;
      for (double V : SampleSizes) {
        std::map<std::string, double> Env;
        for (unsigned A = 0; A != F.Arity; ++A)
          Env[SizeAnalysis::paramName(A)] = V;
        std::optional<double> Hi = evaluate(B.Hi, Env);
        std::optional<double> Lo = evaluate(B.Lo, Env);
        if (!Hi || !Lo)
          continue;
        EXPECT_LE(*Lo, *Hi * (1 + 1e-9) + 1e-6)
            << Tag << ": size interval of " << Name << "/" << F.Arity
            << " output " << O << " inverted at size " << V;
      }
    }
  }
}

class CorpusIntervals : public ::testing::TestWithParam<const BenchmarkDef *> {
};

TEST_P(CorpusIntervals, LoNeverExceedsHi) {
  const BenchmarkDef &B = *GetParam();
  auto Run = analyzeBoth(B.Source);
  ASSERT_TRUE(Run->P) << B.Name << ": " << Run->Diags.str();
  expectIntervalsHold(*Run, B.Name);
}

TEST_P(CorpusIntervals, Jobs8IntervalReportMatchesJobs1) {
  const BenchmarkDef &B = *GetParam();
  auto Want = analyzeBoth(B.Source, /*Jobs=*/1);
  ASSERT_TRUE(Want->GA) << B.Name;
  for (int Repeat = 0; Repeat != 3; ++Repeat) {
    auto Got = analyzeBoth(B.Source, /*Jobs=*/8);
    ASSERT_TRUE(Got->GA) << B.Name;
    EXPECT_EQ(Got->GA->report(), Want->GA->report())
        << B.Name << " repeat " << Repeat;
    EXPECT_EQ(Got->GA->explainAll(), Want->GA->explainAll())
        << B.Name << " repeat " << Repeat;
  }
}

TEST_P(CorpusIntervals, WarmSessionMatchesColdInBothMode) {
  // The incremental warm == cold contract must extend to interval mode:
  // replaying a stored SCC replays its lower bounds too.  Revision 2
  // appends an unrelated fact so the second update actually reuses SCCs
  // instead of re-analyzing everything.
  const BenchmarkDef &B = *GetParam();
  SessionOptions SO;
  SO.Overhead = 48.0;
  SO.Bounds = BoundsMode::Both;
  AnalysisSession Session(SO);
  const std::string Base = B.Source;
  const std::vector<std::string> Revisions = {
      Base,
      Base + "\nzzz_probe(0).\n",
  };
  for (size_t Rev = 0; Rev != Revisions.size(); ++Rev) {
    TermArena Arena;
    Diagnostics Diags;
    std::optional<Program> P = loadProgram(Revisions[Rev], Arena, Diags);
    ASSERT_TRUE(P) << B.Name << ": " << Diags.str();
    const SessionUpdate &U = Session.update(*P);
    if (Rev > 0)
      EXPECT_GT(U.ReusedSCCs, 0u) << B.Name;

    auto Cold = analyzeBoth(Revisions[Rev]);
    ASSERT_TRUE(Cold->GA) << B.Name;
    EXPECT_EQ(U.Report, Cold->GA->report())
        << B.Name << " revision " << Rev;
    EXPECT_EQ(U.ExplainAll, Cold->GA->explainAll())
        << B.Name << " revision " << Rev;
  }
}

TEST_P(CorpusIntervals, UpperModeComputesNoLowerBounds) {
  // The default pipeline must not even produce lower bounds, let alone
  // print them: null CostLo, nullopt costLoAt, and no interval bracket in
  // the report.
  const BenchmarkDef &B = *GetParam();
  TermArena Arena;
  Diagnostics Diags;
  std::optional<Program> P = loadProgram(B.Source, Arena, Diags);
  ASSERT_TRUE(P) << B.Name << ": " << Diags.str();
  GranularityAnalyzer GA(*P, {CostMetric::resolutions(), 48.0});
  GA.run();
  for (const auto &Pred : P->predicates()) {
    Functor F = Pred->functor();
    EXPECT_FALSE(GA.info(F).CostLo);
    EXPECT_FALSE(GA.costs().costLoAt(F, std::vector<double>(
        GA.modes().inputPositions(F).size(), 4.0)));
    EXPECT_FALSE(GA.costs().info(F).Cost.Lo);
    for (const BoundInterval &B2 : GA.sizes().info(F).OutputSize)
      EXPECT_FALSE(B2.Lo);
  }
  EXPECT_EQ(GA.report().find("cost = ["), std::string::npos) << B.Name;
}

std::vector<const BenchmarkDef *> allBenchmarks() {
  std::vector<const BenchmarkDef *> Out;
  for (const BenchmarkDef &B : benchmarkCorpus())
    Out.push_back(&B);
  return Out;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CorpusIntervals, ::testing::ValuesIn(allBenchmarks()),
    [](const ::testing::TestParamInfo<const BenchmarkDef *> &Info) {
      return Info.param->Name;
    });

/// The generated corpus exercises schema shapes the hand-written corpus
/// misses; one 50-program slice per ctest shard.
class GeneratedIntervals : public ::testing::TestWithParam<unsigned> {};

TEST_P(GeneratedIntervals, LoNeverExceedsHi) {
  constexpr unsigned SliceSize = 50;
  unsigned Begin = GetParam() * SliceSize;
  for (unsigned I = Begin; I != Begin + SliceSize; ++I) {
    GeneratedProgram G = generateProgram(1, I);
    auto Run = analyzeBoth(G.Source);
    ASSERT_TRUE(Run->P) << G.Name << ":\n"
                        << G.Source << Run->Diags.str();
    expectIntervalsHold(*Run, G.Name);
  }
}

INSTANTIATE_TEST_SUITE_P(Seed1, GeneratedIntervals,
                         ::testing::Range(0u, 4u),
                         [](const ::testing::TestParamInfo<unsigned> &Info) {
                           return "Slice" + std::to_string(Info.param);
                         });

} // namespace
