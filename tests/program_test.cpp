//===- tests/program_test.cpp - Program loading and call graph tests ------===//

#include "program/CallGraph.h"
#include "program/Program.h"

#include <gtest/gtest.h>

using namespace granlog;

namespace {

const char *NrevSource = R"(
:- mode(nrev(i, o)).
:- mode(append(i, i, o)).

nrev([], []).
nrev([H|L], R) :- nrev(L, R1), append(R1, [H], R).

append([], L, L).
append([H|L1], L2, [H|L3]) :- append(L1, L2, L3).
)";

class ProgramTest : public ::testing::Test {
protected:
  std::optional<Program> load(std::string_view Source) {
    return loadProgram(Source, Arena, Diags);
  }

  Functor functor(std::string_view Name, unsigned Arity) {
    return Functor{Arena.symbols().intern(Name), Arity};
  }

  TermArena Arena;
  Diagnostics Diags;
};

TEST_F(ProgramTest, LoadsClausesAndFacts) {
  auto P = load(NrevSource);
  ASSERT_TRUE(P) << Diags.str();
  const Predicate *Nrev = P->lookup("nrev", 2);
  ASSERT_NE(Nrev, nullptr);
  EXPECT_EQ(Nrev->clauses().size(), 2u);
  // Fact bodies are 'true' with no body literals.
  EXPECT_TRUE(Nrev->clauses()[0].bodyLiterals().empty());
  EXPECT_EQ(Nrev->clauses()[1].bodyLiterals().size(), 2u);
}

TEST_F(ProgramTest, ModeDirectiveTemplateForm) {
  auto P = load(NrevSource);
  ASSERT_TRUE(P) << Diags.str();
  const Predicate *Nrev = P->lookup("nrev", 2);
  ASSERT_TRUE(Nrev->hasDeclaredModes());
  EXPECT_EQ(Nrev->declaredModes()[0], ArgMode::In);
  EXPECT_EQ(Nrev->declaredModes()[1], ArgMode::Out);
}

TEST_F(ProgramTest, ModeDirectiveIndicatorForm) {
  auto P = load(":- mode(p/3, [i, o, i]).\np(1, 2, 3).");
  ASSERT_TRUE(P) << Diags.str();
  const Predicate *Pred = P->lookup("p", 3);
  ASSERT_TRUE(Pred->hasDeclaredModes());
  EXPECT_EQ(Pred->declaredModes()[1], ArgMode::Out);
  EXPECT_EQ(Pred->declaredModes()[2], ArgMode::In);
}

TEST_F(ProgramTest, MeasureDirective) {
  auto P = load(":- measure(p(length, value)).\np([], 0).");
  ASSERT_TRUE(P) << Diags.str();
  const Predicate *Pred = P->lookup("p", 2);
  ASSERT_TRUE(Pred->hasDeclaredMeasures());
  EXPECT_EQ(Pred->declaredMeasures()[0], MeasureKind::ListLength);
  EXPECT_EQ(Pred->declaredMeasures()[1], MeasureKind::IntValue);
}

TEST_F(ProgramTest, ParallelSequentialDirectives) {
  auto P = load(":- parallel(p/1).\n:- sequential(q/1).\np(1).\nq(2).");
  ASSERT_TRUE(P) << Diags.str();
  EXPECT_EQ(P->lookup("p", 1)->parallelDecl(), ParallelDecl::Parallel);
  EXPECT_EQ(P->lookup("q", 1)->parallelDecl(), ParallelDecl::Sequential);
}

TEST_F(ProgramTest, EntryDirective) {
  auto P = load(":- entry(main(10)).\nmain(N) :- N > 1.");
  ASSERT_TRUE(P) << Diags.str();
  ASSERT_EQ(P->entryPoints().size(), 1u);
}

TEST_F(ProgramTest, ModeArityMismatchIsError) {
  auto P = load(":- mode(p/2, [i]).\np(1, 2).");
  EXPECT_FALSE(P);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(ProgramTest, InvalidClauseHeadIsError) {
  auto P = load("42 :- true.");
  EXPECT_FALSE(P);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(ProgramTest, FlattenLooksThroughControl) {
  auto P = load("p(X) :- (a(X) -> b(X) ; c(X)), d(X) & e(X), \\+ f(X).");
  ASSERT_TRUE(P) << Diags.str();
  const Clause &C = P->lookup("p", 1)->clauses()[0];
  ASSERT_EQ(C.bodyLiterals().size(), 6u);
}

TEST_F(ProgramTest, BuiltinsRecognized) {
  SymbolTable &Symbols = Arena.symbols();
  auto F = [&](const char *Name, unsigned Arity) {
    return Functor{Symbols.intern(Name), Arity};
  };
  EXPECT_TRUE(isBuiltinFunctor(F("is", 2), Symbols));
  EXPECT_TRUE(isBuiltinFunctor(F(">", 2), Symbols));
  EXPECT_TRUE(isBuiltinFunctor(F("true", 0), Symbols));
  EXPECT_TRUE(isBuiltinFunctor(F("!", 0), Symbols));
  EXPECT_FALSE(isBuiltinFunctor(F("append", 3), Symbols));
  EXPECT_TRUE(isControlFunctor(F(",", 2), Symbols));
  EXPECT_TRUE(isControlFunctor(F("&", 2), Symbols));
  EXPECT_FALSE(isControlFunctor(F("f", 2), Symbols));
}

TEST_F(ProgramTest, CallGraphEdges) {
  auto P = load(NrevSource);
  ASSERT_TRUE(P) << Diags.str();
  CallGraph CG(*P);
  Functor Nrev = functor("nrev", 2);
  Functor Append = functor("append", 3);
  const std::vector<Functor> &Out = CG.callees(Nrev);
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0], Nrev);
  EXPECT_EQ(Out[1], Append);
  EXPECT_EQ(CG.callees(Append).size(), 1u);
}

TEST_F(ProgramTest, SCCAndRecursion) {
  auto P = load(NrevSource);
  ASSERT_TRUE(P) << Diags.str();
  CallGraph CG(*P);
  Functor Nrev = functor("nrev", 2);
  Functor Append = functor("append", 3);
  EXPECT_TRUE(CG.isRecursive(Nrev));
  EXPECT_TRUE(CG.isRecursive(Append));
  EXPECT_NE(CG.sccId(Nrev), CG.sccId(Append));
  // Callee-first: append's SCC must come before nrev's.
  EXPECT_LT(CG.sccId(Append), CG.sccId(Nrev));
}

TEST_F(ProgramTest, TopologicalOrderCalleesFirst) {
  auto P = load(NrevSource);
  ASSERT_TRUE(P) << Diags.str();
  CallGraph CG(*P);
  const std::vector<Functor> &Order = CG.topologicalOrder();
  ASSERT_EQ(Order.size(), 2u);
  EXPECT_EQ(Order[0], functor("append", 3));
  EXPECT_EQ(Order[1], functor("nrev", 2));
}

TEST_F(ProgramTest, MutualRecursionSCC) {
  auto P = load(R"(
    even(0).
    even(N) :- N > 0, M is N - 1, odd(M).
    odd(N) :- N > 0, M is N - 1, even(M).
  )");
  ASSERT_TRUE(P) << Diags.str();
  CallGraph CG(*P);
  Functor Even = functor("even", 1);
  Functor Odd = functor("odd", 1);
  EXPECT_EQ(CG.sccId(Even), CG.sccId(Odd));
  EXPECT_TRUE(CG.isRecursive(Even));
  EXPECT_EQ(CG.sccMembers(CG.sccId(Even)).size(), 2u);
}

TEST_F(ProgramTest, ClauseClassification) {
  auto P = load(R"(
    even(0).
    even(N) :- N > 0, M is N - 1, odd(M).
    odd(N) :- N > 0, M is N - 1, even(M).
    nrev([], []).
    nrev([H|L], R) :- nrev(L, R1), append(R1, [H], R).
    append([], L, L).
    append([H|L1], L2, [H|L3]) :- append(L1, L2, L3).
  )");
  ASSERT_TRUE(P) << Diags.str();
  CallGraph CG(*P);
  Functor Even = functor("even", 1);
  Functor Nrev = functor("nrev", 2);
  EXPECT_EQ(CG.classifyClause(Even, P->lookup("even", 1)->clauses()[0]),
            ClauseRecursion::Nonrecursive);
  EXPECT_EQ(CG.classifyClause(Even, P->lookup("even", 1)->clauses()[1]),
            ClauseRecursion::Mutual);
  EXPECT_EQ(CG.classifyClause(Nrev, P->lookup("nrev", 2)->clauses()[1]),
            ClauseRecursion::Simple);
}

TEST_F(ProgramTest, NonRecursivePredicateNotRecursive) {
  auto P = load("p(X) :- q(X).\nq(1).");
  ASSERT_TRUE(P) << Diags.str();
  CallGraph CG(*P);
  EXPECT_FALSE(CG.isRecursive(functor("p", 1)));
  EXPECT_FALSE(CG.isRecursive(functor("q", 1)));
  // q defined before use still must come first topologically.
  EXPECT_LT(CG.sccId(functor("q", 1)), CG.sccId(functor("p", 1)));
}

TEST_F(ProgramTest, UndefinedCalleeIgnored) {
  auto P = load("p(X) :- undefined_pred(X).");
  ASSERT_TRUE(P) << Diags.str();
  CallGraph CG(*P);
  EXPECT_TRUE(CG.callees(functor("p", 1)).empty());
}

} // namespace
