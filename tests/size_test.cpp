//===- tests/size_test.cpp - Argument size analysis tests -----------------===//
//
// Validates Section 3 / Appendix A of the paper:
//   Psi_append(x, y) = x + y
//   Psi_nrev(n)      = n
//   part/4: both output lists bounded by the input list length
//
//===----------------------------------------------------------------------===//

#include "analysis/DepGraph.h"
#include "analysis/Determinacy.h"
#include "analysis/Modes.h"
#include "size/SizeAnalysis.h"

#include <gtest/gtest.h>

using namespace granlog;

namespace {

class SizeTest : public ::testing::Test {
protected:
  /// Loads a program and runs the size analysis.
  void analyze(std::string_view Source) {
    Prog = loadProgram(Source, Arena, Diags);
    ASSERT_TRUE(Prog.has_value()) << Diags.str();
    CG.emplace(*Prog);
    Modes.emplace(*Prog, *CG);
    SA.emplace(*Prog, *CG, *Modes);
    SA->run();
  }

  Functor functor(std::string_view Name, unsigned Arity) {
    return Functor{Arena.symbols().intern(Name), Arity};
  }

  /// Evaluates the output size function of \p F at \p InputSizes.
  double psiAt(Functor F, unsigned OutPos,
               const std::map<std::string, double> &Env) {
    const PredicateSizeInfo &PI = SA->info(F);
    EXPECT_LT(OutPos, PI.OutputSize.size());
    EXPECT_TRUE(PI.OutputSize[OutPos].Hi) << "no size function";
    auto V = evaluate(PI.OutputSize[OutPos].Hi, Env);
    EXPECT_TRUE(V.has_value())
        << "unevaluable: " << exprText(PI.OutputSize[OutPos].Hi);
    return V.value_or(-1);
  }

  TermArena Arena;
  Diagnostics Diags;
  std::optional<Program> Prog;
  std::optional<CallGraph> CG;
  std::optional<ModeTable> Modes;
  std::optional<SizeAnalysis> SA;
};

const char *NrevSource = R"(
:- mode(nrev(i, o)).
:- mode(append(i, i, o)).
:- measure(nrev(length, length)).
:- measure(append(length, length, length)).

nrev([], []).
nrev([H|L], R) :- nrev(L, R1), append(R1, [H], R).

append([], L, L).
append([H|L1], L2, [H|L3]) :- append(L1, L2, L3).
)";

TEST_F(SizeTest, AppendOutputIsSumOfInputs) {
  analyze(NrevSource);
  Functor Append = functor("append", 3);
  const PredicateSizeInfo &PI = SA->info(Append);
  ASSERT_EQ(PI.OutputSize.size(), 3u);
  // Psi_append(n1, n2) = n1 + n2 (paper Appendix A).
  EXPECT_EQ(exprText(PI.OutputSize[2].Hi), "n1 + n2");
  EXPECT_TRUE(PI.Exact);
  EXPECT_EQ(PI.RecArgPos, 0);
}

TEST_F(SizeTest, NrevOutputEqualsInput) {
  analyze(NrevSource);
  Functor Nrev = functor("nrev", 2);
  const PredicateSizeInfo &PI = SA->info(Nrev);
  // Psi_nrev(n1) = n1 (paper Appendix A).
  EXPECT_EQ(exprText(PI.OutputSize[1].Hi), "n1");
  EXPECT_TRUE(PI.Exact);
}

TEST_F(SizeTest, ModesAndMeasuresRecorded) {
  analyze(NrevSource);
  const PredicateSizeInfo &PI = SA->info(functor("nrev", 2));
  ASSERT_EQ(PI.Modes.size(), 2u);
  EXPECT_EQ(PI.Modes[0], ArgMode::In);
  EXPECT_EQ(PI.Modes[1], ArgMode::Out);
  EXPECT_EQ(PI.Measures[0], MeasureKind::ListLength);
}

TEST_F(SizeTest, PartitionOutputsBoundedByInput) {
  analyze(R"(
    :- mode(part(i, i, o, o)).
    :- measure(part(length, value, length, length)).
    part([], _, [], []).
    part([E|L], M, [E|U1], U2) :- E > M, part(L, M, U1, U2).
    part([E|L], M, U1, [E|U2]) :- E =< M, part(L, M, U1, U2).
  )");
  Functor Part = functor("part", 4);
  const PredicateSizeInfo &PI = SA->info(Part);
  // Upper bound: every element may land in either list => Psi = n1 each.
  ASSERT_TRUE(PI.OutputSize[2].Hi);
  ASSERT_TRUE(PI.OutputSize[3].Hi);
  EXPECT_EQ(exprText(PI.OutputSize[2].Hi), "n1");
  EXPECT_EQ(exprText(PI.OutputSize[3].Hi), "n1");
}

TEST_F(SizeTest, IntegerMeasureThroughIs) {
  // double(N, M) with M = 2 * N.
  analyze(R"(
    :- mode(double(i, o)).
    :- measure(double(value, value)).
    double(N, M) :- M is 2 * N.
  )");
  EXPECT_DOUBLE_EQ(psiAt(functor("double", 2), 1, {{"n1", 21.0}}), 42.0);
}

TEST_F(SizeTest, MeasureInferenceListAndInt) {
  analyze(R"(
    len([], 0).
    len([_|T], N) :- len(T, M), N is M + 1.
    :- mode(len(i, o)).
  )");
  const PredicateSizeInfo &PI = SA->info(functor("len", 2));
  EXPECT_EQ(PI.Measures[0], MeasureKind::ListLength);
  EXPECT_EQ(PI.Measures[1], MeasureKind::IntValue);
  // Psi_len(n) = n.
  EXPECT_DOUBLE_EQ(psiAt(functor("len", 2), 1, {{"n1", 9.0}}), 9.0);
}

TEST_F(SizeTest, CopyListIdentity) {
  analyze(R"(
    :- mode(copy(i, o)).
    copy([], []).
    copy([H|T], [H|T1]) :- copy(T, T1).
  )");
  EXPECT_DOUBLE_EQ(psiAt(functor("copy", 2), 1, {{"n1", 5.0}}), 5.0);
}

TEST_F(SizeTest, DoubleListOutput) {
  // Each element duplicated: output length 2n.
  analyze(R"(
    :- mode(dup(i, o)).
    dup([], []).
    dup([H|T], [H,H|T1]) :- dup(T, T1).
  )");
  EXPECT_DOUBLE_EQ(psiAt(functor("dup", 2), 1, {{"n1", 6.0}}), 12.0);
}

TEST_F(SizeTest, HalvingViaArithmetic) {
  analyze(R"(
    :- mode(halve(i, o)).
    :- measure(halve(value, value)).
    halve(0, 0).
    halve(N, M) :- N > 0, M is N // 2.
  )");
  EXPECT_DOUBLE_EQ(psiAt(functor("halve", 2), 1, {{"n1", 10.0}}), 5.0);
}

TEST_F(SizeTest, MutualRecursionEvenOdd) {
  analyze(R"(
    :- mode(ev(i, o)).
    :- mode(od(i, o)).
    :- measure(ev(value, value)).
    :- measure(od(value, value)).
    ev(0, 0).
    ev(N, R) :- N > 0, M is N - 1, od(M, R1), R is R1 + 1.
    od(N, R) :- N > 0, M is N - 1, ev(M, R1), R is R1 + 1.
  )");
  // ev counts down: output = n.
  Functor Ev = functor("ev", 2);
  const PredicateSizeInfo &PI = SA->info(Ev);
  ASSERT_TRUE(PI.OutputSize[1].Hi);
  EXPECT_FALSE(PI.OutputSize[1].Hi->isInfinity())
      << exprText(PI.OutputSize[1].Hi);
  EXPECT_GE(psiAt(Ev, 1, {{"n1", 8.0}}), 8.0);
}

TEST_F(SizeTest, UnboundedOutputIsInfinity) {
  // The output is a fresh variable: no bound exists.
  analyze(R"(
    :- mode(mystery(i, o)).
    mystery(_, _).
  )");
  const PredicateSizeInfo &PI = SA->info(functor("mystery", 2));
  ASSERT_TRUE(PI.OutputSize[1].Hi);
  EXPECT_TRUE(PI.OutputSize[1].Hi->isInfinity());
}

TEST_F(SizeTest, NonRecursivePredicateClosedForm) {
  analyze(R"(
    :- mode(wrap(i, o)).
    wrap(X, [X]).
  )");
  // Output is a one-element list.
  EXPECT_DOUBLE_EQ(psiAt(functor("wrap", 2), 1, {{"n1", 3.0}}), 1.0);
}

TEST_F(SizeTest, RecursionArgDetected) {
  analyze(NrevSource);
  EXPECT_EQ(SA->recursionArg(functor("nrev", 2)), 0);
  EXPECT_EQ(SA->recursionArg(functor("append", 3)), 0);
}

TEST_F(SizeTest, RecursionOnSecondArgument) {
  analyze(R"(
    :- mode(countdown(i, i, o)).
    :- measure(countdown(void, value, value)).
    countdown(_, 0, 0).
    countdown(X, N, R) :- N > 0, M is N - 1, countdown(X, M, R1), R is R1 + 1.
  )");
  EXPECT_EQ(SA->recursionArg(functor("countdown", 3)), 1);
  EXPECT_DOUBLE_EQ(psiAt(functor("countdown", 3), 2, {{"n2", 4.0}}), 4.0);
}

TEST_F(SizeTest, ClauseFactsExposeLiteralInputSizes) {
  analyze(NrevSource);
  Functor Nrev = functor("nrev", 2);
  const Predicate *Pred = Prog->lookup("nrev", 2);
  const Clause &Rec = Pred->clauses()[1];
  ClauseFacts Facts = SA->analyzeClause(Nrev, Rec, /*KeepSCCCalls=*/false);
  ASSERT_EQ(Facts.Literals.size(), 2u);
  // First literal: nrev(L, R1) with |L| = n1 - 1.
  ASSERT_TRUE(Facts.Literals[0].InputSizes[0]);
  EXPECT_EQ(exprText(Facts.Literals[0].InputSizes[0]), "-1 + n1");
  // Second literal: append(R1, [H], R) with |R1| = n1 - 1, |[H]| = 1.
  ASSERT_TRUE(Facts.Literals[1].InputSizes[0]);
  EXPECT_EQ(exprText(Facts.Literals[1].InputSizes[0]), "-1 + n1");
  EXPECT_EQ(exprText(Facts.Literals[1].InputSizes[1]), "1");
}

// --- DepGraph tests (Figure 1 of the paper) ---

TEST_F(SizeTest, DepGraphForNrevMatchesFigure1) {
  analyze(NrevSource);
  Functor Nrev = functor("nrev", 2);
  const Predicate *Pred = Prog->lookup("nrev", 2);
  const Clause &Rec = Pred->clauses()[1];
  DepGraph G(Rec, Nrev, *Modes, Prog->symbols());
  ASSERT_EQ(G.numLiterals(), 2u);
  // start -> nrev(L,R1): L comes from the head input.
  EXPECT_TRUE(G.hasEdge(DepGraph::StartNode, G.literalNode(0)));
  // start -> append(R1,[H],R): H comes from the head input.
  EXPECT_TRUE(G.hasEdge(DepGraph::StartNode, G.literalNode(1)));
  // nrev -> append: R1.
  EXPECT_TRUE(G.hasEdge(G.literalNode(0), G.literalNode(1)));
  // append -> end: R.
  EXPECT_TRUE(G.hasEdge(G.literalNode(1), G.endNode()));
  // No direct edge nrev -> end.
  EXPECT_FALSE(G.hasEdge(G.literalNode(0), G.endNode()));
  EXPECT_TRUE(G.isRangeRestricted());
  EXPECT_EQ(G.height(), 3u);
}

TEST_F(SizeTest, DepGraphFactClause) {
  analyze(NrevSource);
  Functor Nrev = functor("nrev", 2);
  const Clause &Base = Prog->lookup("nrev", 2)->clauses()[0];
  DepGraph G(Base, Nrev, *Modes, Prog->symbols());
  EXPECT_EQ(G.numLiterals(), 0u);
  EXPECT_TRUE(G.isRangeRestricted());
}

TEST_F(SizeTest, DepGraphNotRangeRestricted) {
  analyze(R"(
    :- mode(bad(i, o)).
    bad(X, Y) :- p(Z, Y).
    p(1, 2).
    :- mode(p(i, o)).
  )");
  Functor Bad = functor("bad", 2);
  const Clause &C = Prog->lookup("bad", 2)->clauses()[0];
  DepGraph G(C, Bad, *Modes, Prog->symbols());
  // Z is consumed by p but produced by nothing.
  EXPECT_FALSE(G.isRangeRestricted());
}

// --- Mode inference tests ---

TEST_F(SizeTest, ModeInferenceFromEntry) {
  analyze(R"(
    :- entry(main(5)).
    main(N) :- helper(N, R), use(R).
    helper(N, R) :- R is N + 1.
    use(_).
  )");
  Functor Helper = functor("helper", 2);
  EXPECT_TRUE(Modes->isInput(Helper, 0));
  EXPECT_TRUE(Modes->isOutput(Helper, 1));
  // use/1 receives the grounded result.
  EXPECT_TRUE(Modes->isInput(functor("use", 1), 0));
}

// --- Determinacy tests ---

TEST_F(SizeTest, DeterminacyByIndexing) {
  analyze(NrevSource);
  Determinacy Det(*Prog, *Modes);
  EXPECT_TRUE(Det.isDeterminate(functor("nrev", 2)));
  EXPECT_TRUE(Det.isDeterminate(functor("append", 3)));
  EXPECT_TRUE(Det.hasExclusiveClauses(functor("append", 3)));
}

TEST_F(SizeTest, DeterminacyByGuards) {
  analyze(R"(
    :- mode(fib(i, o)).
    :- measure(fib(value, value)).
    fib(0, 0).
    fib(1, 1).
    fib(M, N) :- M > 1, M1 is M - 1, M2 is M - 2,
                 fib(M1, N1), fib(M2, N2), N is N1 + N2.
  )");
  Determinacy Det(*Prog, *Modes);
  EXPECT_TRUE(Det.hasExclusiveClauses(functor("fib", 2)));
  EXPECT_TRUE(Det.isDeterminate(functor("fib", 2)));
}

TEST_F(SizeTest, NondeterminacyDetected) {
  analyze(R"(
    :- mode(pick(i, o)).
    pick([H|_], H).
    pick([_|T], X) :- pick(T, X).
  )");
  Determinacy Det(*Prog, *Modes);
  // Both clauses match any nonempty list: not exclusive.
  EXPECT_FALSE(Det.hasExclusiveClauses(functor("pick", 2)));
  EXPECT_FALSE(Det.isDeterminate(functor("pick", 2)));
}

TEST_F(SizeTest, NondeterminacyPropagatesToCallers) {
  analyze(R"(
    :- mode(pick(i, o)).
    :- mode(user(i, o)).
    pick([H|_], H).
    pick([_|T], X) :- pick(T, X).
    user(L, X) :- pick(L, X).
  )");
  Determinacy Det(*Prog, *Modes);
  EXPECT_FALSE(Det.isDeterminate(functor("user", 2)));
}

} // namespace
