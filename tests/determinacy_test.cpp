//===- tests/determinacy_test.cpp - Determinacy analysis unit tests -------===//
//
// Focused tests of the mutual-exclusion machinery that licenses the
// paper's Sols = 1 simplification and the max-vs-+ clause combination:
// indexing on principal functors, list-spine discrimination, constant and
// variable-variable arithmetic guards.
//
//===----------------------------------------------------------------------===//

#include "analysis/Determinacy.h"

#include <gtest/gtest.h>

using namespace granlog;

namespace {

class DeterminacyTest : public ::testing::Test {
protected:
  void analyze(std::string_view Source) {
    Prog = loadProgram(Source, Arena, Diags);
    ASSERT_TRUE(Prog.has_value()) << Diags.str();
    CG.emplace(*Prog);
    Modes.emplace(*Prog, *CG);
    Det = std::make_unique<Determinacy>(*Prog, *Modes);
  }

  Functor functor(std::string_view Name, unsigned Arity) {
    return Functor{Arena.symbols().intern(Name), Arity};
  }

  TermArena Arena;
  Diagnostics Diags;
  std::optional<Program> Prog;
  std::optional<CallGraph> CG;
  std::optional<ModeTable> Modes;
  std::unique_ptr<Determinacy> Det;
};

TEST_F(DeterminacyTest, DistinctConstantsExclusive) {
  analyze(":- mode(p(i)).\np(0).\np(1).\np(2).");
  EXPECT_TRUE(Det->hasExclusiveClauses(functor("p", 1)));
  EXPECT_TRUE(Det->clausesExclusive(functor("p", 1), 0, 2));
}

TEST_F(DeterminacyTest, DistinctFunctorsExclusive) {
  analyze(":- mode(p(i)).\np(leaf(_)).\np(node(_, _)).");
  EXPECT_TRUE(Det->hasExclusiveClauses(functor("p", 1)));
}

TEST_F(DeterminacyTest, NilVsConsExclusive) {
  analyze(":- mode(p(i)).\np([]).\np([_|_]).");
  EXPECT_TRUE(Det->hasExclusiveClauses(functor("p", 1)));
}

TEST_F(DeterminacyTest, ListSpineDiscrimination) {
  // [X] matches exactly one element; [A,B|T] at least two.
  analyze(":- mode(p(i)).\np([_]).\np([_,_|_]).");
  EXPECT_TRUE(Det->hasExclusiveClauses(functor("p", 1)));
}

TEST_F(DeterminacyTest, OverlappingSpinesNotExclusive) {
  // [X|T] (>=1) overlaps [A,B|T] (>=2).
  analyze(":- mode(p(i)).\np([_|_]).\np([_,_|_]).");
  EXPECT_FALSE(Det->hasExclusiveClauses(functor("p", 1)));
}

TEST_F(DeterminacyTest, ClosedSpineLengthsExclusive) {
  analyze(":- mode(p(i)).\np([_]).\np([_,_]).");
  EXPECT_TRUE(Det->hasExclusiveClauses(functor("p", 1)));
}

TEST_F(DeterminacyTest, ConstantGuardExcludesConstantHead) {
  // fib-style: fib(0,...) vs fib(M,...) :- M > 1.
  analyze(R"(
    :- mode(p(i)).
    :- measure(p(value)).
    p(0).
    p(N) :- N > 1, q(N).
    q(_).
  )");
  EXPECT_TRUE(Det->hasExclusiveClauses(functor("p", 1)));
}

TEST_F(DeterminacyTest, GuardAdmittingConstantNotExclusive) {
  // p(1) vs p(N) :- N > 0: N = 1 satisfies the guard.
  analyze(R"(
    :- mode(p(i)).
    :- measure(p(value)).
    p(1).
    p(N) :- N > 0.
  )");
  EXPECT_FALSE(Det->hasExclusiveClauses(functor("p", 1)));
}

TEST_F(DeterminacyTest, ComplementaryConstantGuards) {
  analyze(R"(
    :- mode(p(i)).
    :- measure(p(value)).
    p(N) :- N =< 5, small(N).
    p(N) :- N > 5, large(N).
    small(_).
    large(_).
  )");
  EXPECT_TRUE(Det->hasExclusiveClauses(functor("p", 1)));
}

TEST_F(DeterminacyTest, VariableVariableGuards) {
  // The paper's part/4: E =< M in one clause, E > M in the other, same
  // head positions.
  analyze(R"(
    :- mode(part(i, i, o, o)).
    part([], _, [], []).
    part([E|L], M, [E|U1], U2) :- E =< M, part(L, M, U1, U2).
    part([E|L], M, U1, [E|U2]) :- E > M, part(L, M, U1, U2).
  )");
  EXPECT_TRUE(Det->hasExclusiveClauses(functor("part", 4)));
  EXPECT_TRUE(Det->isDeterminate(functor("part", 4)));
}

TEST_F(DeterminacyTest, VariableGuardsFlippedOrientation) {
  // "X < Y" vs. "Y =< X": same pair, flipped writing.
  analyze(R"(
    :- mode(m(i, i, o)).
    m(X, Y, X) :- X < Y.
    m(X, Y, Y) :- Y =< X.
  )");
  EXPECT_TRUE(Det->hasExclusiveClauses(functor("m", 3)));
}

TEST_F(DeterminacyTest, CompatibleVarGuardsNotExclusive) {
  analyze(R"(
    :- mode(m(i, i)).
    m(X, Y) :- X =< Y.
    m(X, Y) :- X < Y.
  )");
  EXPECT_FALSE(Det->hasExclusiveClauses(functor("m", 2)));
}

TEST_F(DeterminacyTest, GuardsAtDifferentPositionsNotExclusive) {
  // The guards compare different head arguments: no conclusion.
  analyze(R"(
    :- mode(m(i, i, i)).
    m(X, Y, _) :- X =< Y.
    m(_, Y, Z) :- Y > Z.
  )");
  EXPECT_FALSE(Det->hasExclusiveClauses(functor("m", 3)));
}

TEST_F(DeterminacyTest, OutputPositionsDoNotDiscriminate) {
  // Distinct constants in an *output* position mean nothing at call time.
  analyze(":- mode(p(o)).\np(1).\np(2).");
  EXPECT_FALSE(Det->hasExclusiveClauses(functor("p", 1)));
}

TEST_F(DeterminacyTest, DeterminacyRequiresDeterminateCallees) {
  analyze(R"(
    :- mode(top(i)).
    :- mode(gen(o)).
    top(X) :- gen(X).
    gen(1).
    gen(2).
  )");
  EXPECT_TRUE(Det->hasExclusiveClauses(functor("top", 1)));
  EXPECT_FALSE(Det->isDeterminate(functor("top", 1)));
}

} // namespace
