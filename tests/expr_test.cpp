//===- tests/expr_test.cpp - Symbolic expression tests --------------------===//

#include "expr/Expr.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace granlog;

namespace {

ExprRef n() { return makeVar("n"); }

TEST(ExprTest, NumberBasics) {
  ExprRef E = makeNumber(Rational(3, 2));
  EXPECT_TRUE(E->isNumber());
  EXPECT_EQ(E->number(), Rational(3, 2));
  EXPECT_EQ(exprText(E), "3/2");
}

TEST(ExprTest, AddFoldsConstants) {
  ExprRef E = makeAdd({makeNumber(1), makeNumber(2), makeNumber(3)});
  ASSERT_TRUE(E->isNumber());
  EXPECT_EQ(E->number(), Rational(6));
}

TEST(ExprTest, AddCollectsLikeTerms) {
  // n + n + 1 = 2n + 1
  ExprRef E = makeAdd({n(), n(), makeNumber(1)});
  EXPECT_EQ(exprText(E), "1 + 2*n");
}

TEST(ExprTest, AddFlattensNested) {
  ExprRef E = makeAdd(makeAdd(n(), makeNumber(1)), makeNumber(2));
  EXPECT_EQ(exprText(E), "3 + n");
}

TEST(ExprTest, SubCancels) {
  ExprRef E = makeSub(makeAdd(n(), makeNumber(5)), n());
  ASSERT_TRUE(E->isNumber());
  EXPECT_EQ(E->number(), Rational(5));
}

TEST(ExprTest, MulFoldsAndMergesPowers) {
  ExprRef E = makeMul({makeNumber(2), n(), n(), makeNumber(3)});
  EXPECT_EQ(exprText(E), "6*n^2");
}

TEST(ExprTest, MulByZeroIsZero) {
  ExprRef E = makeMul(makeNumber(0), n());
  EXPECT_TRUE(E->isZero());
}

TEST(ExprTest, InfinityAbsorbsAddAndMul) {
  EXPECT_TRUE(makeAdd(n(), makeInfinity())->isInfinity());
  EXPECT_TRUE(makeMul(makeNumber(2), makeInfinity())->isInfinity());
  EXPECT_TRUE(makeMax(n(), makeInfinity())->isInfinity());
}

TEST(ExprTest, PowSimplifications) {
  EXPECT_TRUE(makePow(n(), makeNumber(0))->isOne());
  EXPECT_TRUE(exprEqual(makePow(n(), makeNumber(1)), n()));
  ExprRef C = makePow(makeNumber(2), makeNumber(10));
  ASSERT_TRUE(C->isNumber());
  EXPECT_EQ(C->number(), Rational(1024));
}

TEST(ExprTest, PowOfPowMergesExponents) {
  ExprRef E = makePow(makePow(n(), makeNumber(2)), makeNumber(3));
  EXPECT_EQ(exprText(E), "n^6");
}

TEST(ExprTest, Log2Folds) {
  EXPECT_EQ(makeLog2(makeNumber(8))->number(), Rational(3));
  EXPECT_EQ(makeLog2(makeNumber(1))->number(), Rational(0));
  EXPECT_EQ(makeLog2(makeNumber(0))->number(), Rational(0)); // clamped
  EXPECT_EQ(exprText(makeLog2(n())), "log2(n)");
}

TEST(ExprTest, MaxSimplifies) {
  ExprRef E = makeMax({makeNumber(3), makeNumber(7), n(), n()});
  EXPECT_EQ(exprText(E), "max(7, n)");
  // max(0, x) = x in our non-negative domain.
  EXPECT_TRUE(exprEqual(makeMax(makeNumber(0), n()), n()));
}

TEST(ExprTest, CompareIsTotalOrder) {
  ExprRef A = makeAdd(n(), makeNumber(1));
  ExprRef B = makeAdd(n(), makeNumber(1));
  ExprRef C = makeAdd(n(), makeNumber(2));
  EXPECT_TRUE(exprEqual(A, B));
  EXPECT_FALSE(exprEqual(A, C));
  EXPECT_NE(compareExpr(*A, *C), 0);
  EXPECT_EQ(compareExpr(*A, *C), -compareExpr(*C, *A));
}

TEST(ExprTest, ContainsVarAndCall) {
  ExprRef E = makeAdd(makeCall("psi", {n()}), makeVar("y"));
  EXPECT_TRUE(containsVar(E, "n"));
  EXPECT_TRUE(containsVar(E, "y"));
  EXPECT_FALSE(containsVar(E, "z"));
  EXPECT_TRUE(containsCall(E, "psi"));
  EXPECT_FALSE(containsCall(E, "phi"));
  EXPECT_TRUE(containsAnyCall(E));
  EXPECT_FALSE(containsAnyCall(n()));
}

TEST(ExprTest, SubstituteVar) {
  // (n + 1)^2 with n := m - 1 becomes m^2.
  ExprRef E = makePow(makeAdd(n(), makeNumber(1)), makeNumber(2));
  ExprRef R = substituteVar(E, "n", makeSub(makeVar("m"), makeNumber(1)));
  EXPECT_EQ(exprText(R), "m^2");
}

TEST(ExprTest, SubstituteCallUnfolds) {
  // psi(n - 1) with psi(x) = x + 1 becomes n.
  ExprRef E = makeCall("psi", {makeSub(n(), makeNumber(1))});
  ExprRef R = substituteCall(E, "psi", [](const std::vector<ExprRef> &Args) {
    return makeAdd(Args[0], makeNumber(1));
  });
  EXPECT_EQ(R, nullptr ? R : R); // silence unused warnings pattern
  EXPECT_EQ(exprText(R), "n");
}

TEST(ExprTest, EvaluateBasics) {
  ExprRef E = makeAdd(makeMul(makeNumber(Rational(1, 2)),
                              makePow(n(), makeNumber(2))),
                      makeNumber(1));
  auto V = evaluate(E, {{"n", 4.0}});
  ASSERT_TRUE(V.has_value());
  EXPECT_DOUBLE_EQ(*V, 9.0);
}

TEST(ExprTest, EvaluateMissingVarFails) {
  EXPECT_FALSE(evaluate(n(), {}).has_value());
  EXPECT_FALSE(evaluate(makeCall("f", {makeNumber(1)}), {}).has_value());
}

TEST(ExprTest, EvaluateInfinity) {
  auto V = evaluate(makeInfinity(), {});
  ASSERT_TRUE(V.has_value());
  EXPECT_TRUE(std::isinf(*V));
}

TEST(ExprTest, EvaluateLogClamped) {
  auto V = evaluate(makeLog2(n()), {{"n", 0.5}});
  ASSERT_TRUE(V.has_value());
  EXPECT_DOUBLE_EQ(*V, 0.0);
}

TEST(ExprTest, PolynomialExtraction) {
  // 3n^2 + n*y + 2: polynomial in n with coefficients [2, y, 3].
  ExprRef E = makeAdd({makeScale(Rational(3), makePow(n(), makeNumber(2))),
                       makeMul(n(), makeVar("y")), makeNumber(2)});
  auto P = polynomialIn(E, "n");
  ASSERT_TRUE(P.has_value());
  ASSERT_EQ(P->size(), 3u);
  EXPECT_EQ(exprText((*P)[0]), "2");
  EXPECT_EQ(exprText((*P)[1]), "y");
  EXPECT_EQ(exprText((*P)[2]), "3");
}

TEST(ExprTest, PolynomialRejectsLogAndCalls) {
  EXPECT_FALSE(polynomialIn(makeLog2(n()), "n").has_value());
  EXPECT_FALSE(polynomialIn(makeCall("f", {n()}), "n").has_value());
  EXPECT_FALSE(
      polynomialIn(makePow(makeNumber(2), n()), "n").has_value());
}

TEST(ExprTest, PolynomialOfVarFreeExprIsDegreeZero) {
  auto P = polynomialIn(makeCall("f", {makeVar("y")}), "n");
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->size(), 1u);
}

TEST(ExprTest, PolynomialRoundTrip) {
  ExprRef E = makeAdd({makePow(n(), makeNumber(3)), makeScale(Rational(2), n()),
                       makeNumber(5)});
  auto P = polynomialIn(E, "n");
  ASSERT_TRUE(P.has_value());
  EXPECT_TRUE(exprEqual(polynomialExpr(*P, "n"), E));
}

TEST(ExprTest, PowerSums) {
  // S_1(n) = n(n+1)/2; S_2(n) = n(n+1)(2n+1)/6.
  const std::vector<Rational> &S1 = powerSumPolynomial(1);
  ASSERT_EQ(S1.size(), 3u);
  EXPECT_EQ(S1[1], Rational(1, 2));
  EXPECT_EQ(S1[2], Rational(1, 2));
  const std::vector<Rational> &S2 = powerSumPolynomial(2);
  ASSERT_EQ(S2.size(), 4u);
  EXPECT_EQ(S2[1], Rational(1, 6));
  EXPECT_EQ(S2[2], Rational(1, 2));
  EXPECT_EQ(S2[3], Rational(1, 3));
}

TEST(ExprTest, PowerSumsMatchDirectSummation) {
  for (unsigned P = 0; P <= 5; ++P) {
    const std::vector<Rational> &S = powerSumPolynomial(P);
    for (int64_t N = 0; N <= 8; ++N) {
      Rational Direct(0);
      for (int64_t J = 1; J <= N; ++J)
        Direct += Rational(J).pow(P);
      Rational FromPoly(0);
      for (size_t I = 0; I != S.size(); ++I)
        FromPoly += S[I] * Rational(N).pow(static_cast<int64_t>(I));
      EXPECT_EQ(Direct, FromPoly) << "P=" << P << " N=" << N;
    }
  }
}

TEST(ExprTest, SumPolynomial) {
  // sum_{j=1}^{n} (j + 1) = n(n+1)/2 + n = 1/2 n^2 + 3/2 n.
  ExprRef Sum = sumPolynomial({makeNumber(1), makeNumber(1)}, "n");
  auto V = evaluate(Sum, {{"n", 4.0}});
  ASSERT_TRUE(V.has_value());
  EXPECT_DOUBLE_EQ(*V, 2 + 3 + 4 + 5);
}

TEST(ExprTest, TextRendering) {
  ExprRef E = makeAdd({makeScale(Rational(1, 2), makePow(n(), makeNumber(2))),
                       makeScale(Rational(3, 2), n()), makeNumber(1)});
  EXPECT_EQ(exprText(E), "1 + 3/2*n + 1/2*n^2");
}

// compareExpr defines the canonical operand order, so it must be a total
// order: the axioms are checked on randomized triples.

/// Deterministic 64-bit LCG (tests must not depend on global random state).
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 33;
  }
  int64_t range(int64_t Lo, int64_t Hi) { // inclusive
    return Lo + static_cast<int64_t>(next() % (Hi - Lo + 1));
  }
};

ExprRef randomOrderExpr(Lcg &Rng, int Depth) {
  if (Depth <= 0 || Rng.range(0, 3) == 0) {
    if (Rng.range(0, 1))
      return makeNumber(Rational(Rng.range(-4, 8), Rng.range(1, 3)));
    return makeVar(std::string(1, static_cast<char>('k' + Rng.range(0, 3))));
  }
  switch (Rng.range(0, 4)) {
  case 0:
    return makeAdd(randomOrderExpr(Rng, Depth - 1),
                   randomOrderExpr(Rng, Depth - 1));
  case 1:
    return makeMul(randomOrderExpr(Rng, Depth - 1),
                   randomOrderExpr(Rng, Depth - 1));
  case 2:
    return makePow(randomOrderExpr(Rng, Depth - 1),
                   makeNumber(Rng.range(0, 3)));
  case 3:
    return makeMax(randomOrderExpr(Rng, Depth - 1),
                   randomOrderExpr(Rng, Depth - 1));
  default:
    return makeCall("f", {randomOrderExpr(Rng, Depth - 1)});
  }
}

int sign(int C) { return C < 0 ? -1 : C > 0 ? 1 : 0; }

TEST(ExprTest, CompareExprIsAntisymmetric) {
  Lcg Rng(20260806);
  for (int I = 0; I != 500; ++I) {
    ExprRef A = randomOrderExpr(Rng, 4);
    ExprRef B = randomOrderExpr(Rng, 4);
    EXPECT_EQ(sign(compareExpr(*A, *B)), -sign(compareExpr(*B, *A)))
        << exprText(A) << " vs " << exprText(B);
    EXPECT_EQ(compareExpr(*A, *A), 0) << exprText(A);
  }
}

TEST(ExprTest, CompareExprIsTransitive) {
  Lcg Rng(31337);
  for (int I = 0; I != 500; ++I) {
    ExprRef A = randomOrderExpr(Rng, 3);
    ExprRef B = randomOrderExpr(Rng, 3);
    ExprRef C = randomOrderExpr(Rng, 3);
    // Check transitivity of <= on every ordering of the triple.
    ExprRef T[3] = {A, B, C};
    for (int X = 0; X != 3; ++X)
      for (int Y = 0; Y != 3; ++Y)
        for (int Z = 0; Z != 3; ++Z)
          if (compareExpr(*T[X], *T[Y]) <= 0 &&
              compareExpr(*T[Y], *T[Z]) <= 0)
            EXPECT_LE(compareExpr(*T[X], *T[Z]), 0)
                << exprText(T[X]) << " / " << exprText(T[Y]) << " / "
                << exprText(T[Z]);
  }
}

TEST(ExprTest, CompareExprZeroIffIdentical) {
  // Under interning, compareExpr(A, B) == 0 must coincide with A and B
  // being the same node.
  Lcg Rng(271828);
  std::vector<ExprRef> Pool;
  for (int I = 0; I != 120; ++I)
    Pool.push_back(randomOrderExpr(Rng, 3));
  for (const ExprRef &A : Pool)
    for (const ExprRef &B : Pool)
      EXPECT_EQ(compareExpr(*A, *B) == 0, A.get() == B.get())
          << exprText(A) << " vs " << exprText(B);
}

} // namespace
