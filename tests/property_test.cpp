//===- tests/property_test.cpp - Randomized property tests ----------------===//
//
// Properties over randomly generated structures:
//  - expression simplification preserves numeric semantics;
//  - polynomial extraction round-trips;
//  - the scheduler's makespan respects the fundamental bounds
//      max(critical path, work/P) <= T <= work + overheads
//    and is monotone in the processor count;
//  - the lexer/parser never crash on arbitrary input and report errors
//    through Diagnostics.
//
//===----------------------------------------------------------------------===//

#include "expr/Expr.h"
#include "program/Program.h"
#include "reader/Parser.h"
#include "runtime/Scheduler.h"

#include <cmath>
#include <gtest/gtest.h>
#include <random>

using namespace granlog;

namespace {

//===----------------------------------------------------------------------===//
// Expression properties
//===----------------------------------------------------------------------===//

/// Builds a random expression over variables x, y with small rational
/// constants.  Returns both the expression and a parallel "reference
/// evaluator" tree is unnecessary: we compare the *same* expression before
/// and after an extra normalization pass.
ExprRef randomExpr(std::mt19937 &Rng, int Depth) {
  std::uniform_int_distribution<int> Pick(0, Depth <= 0 ? 2 : 7);
  switch (Pick(Rng)) {
  case 0:
    return makeNumber(Rational(static_cast<int64_t>(Rng() % 7),
                               1 + static_cast<int64_t>(Rng() % 3)));
  case 1:
    return makeVar("x");
  case 2:
    return makeVar("y");
  case 3:
    return makeAdd(randomExpr(Rng, Depth - 1), randomExpr(Rng, Depth - 1));
  case 4:
    return makeMul(randomExpr(Rng, Depth - 1), randomExpr(Rng, Depth - 1));
  case 5:
    return makeMax(randomExpr(Rng, Depth - 1), randomExpr(Rng, Depth - 1));
  case 6:
    return makePow(randomExpr(Rng, Depth - 1),
                   makeNumber(static_cast<int64_t>(Rng() % 3)));
  default:
    return makeLog2(randomExpr(Rng, Depth - 1));
  }
}

/// Re-normalizes an expression by rebuilding it through the factories.
ExprRef renormalize(const ExprRef &E) {
  switch (E->kind()) {
  case ExprKind::Add: {
    std::vector<ExprRef> Ops;
    for (const ExprRef &Op : E->operands())
      Ops.push_back(renormalize(Op));
    return makeAdd(std::move(Ops));
  }
  case ExprKind::Mul: {
    std::vector<ExprRef> Ops;
    for (const ExprRef &Op : E->operands())
      Ops.push_back(renormalize(Op));
    return makeMul(std::move(Ops));
  }
  case ExprKind::Max: {
    std::vector<ExprRef> Ops;
    for (const ExprRef &Op : E->operands())
      Ops.push_back(renormalize(Op));
    return makeMax(std::move(Ops));
  }
  case ExprKind::Min: {
    std::vector<ExprRef> Ops;
    for (const ExprRef &Op : E->operands())
      Ops.push_back(renormalize(Op));
    return makeMin(std::move(Ops));
  }
  case ExprKind::Pow:
    return makePow(renormalize(E->base()), renormalize(E->exponent()));
  case ExprKind::Log2:
    return makeLog2(renormalize(E->base()));
  default:
    return E;
  }
}

class ExprProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ExprProperty, RenormalizationPreservesValue) {
  std::mt19937 Rng(GetParam());
  for (int Trial = 0; Trial != 50; ++Trial) {
    ExprRef E = randomExpr(Rng, 4);
    ExprRef R = renormalize(E);
    for (double X : {0.0, 1.0, 2.5}) {
      for (double Y : {0.5, 3.0}) {
        std::map<std::string, double> Env{{"x", X}, {"y", Y}};
        std::optional<double> V1 = evaluate(E, Env);
        std::optional<double> V2 = evaluate(R, Env);
        ASSERT_EQ(V1.has_value(), V2.has_value());
        if (V1 && std::isfinite(*V1)) {
          EXPECT_NEAR(*V1, *V2, 1e-9 + std::fabs(*V1) * 1e-12)
              << exprText(E) << "  vs  " << exprText(R);
        }
      }
    }
  }
}

TEST_P(ExprProperty, SubstituteVarThenEvaluateCommutes) {
  std::mt19937 Rng(GetParam() + 100);
  for (int Trial = 0; Trial != 50; ++Trial) {
    ExprRef E = randomExpr(Rng, 3);
    // Substitute x := y + 1 and compare against direct evaluation.
    ExprRef S = substituteVar(E, "x", makeAdd(makeVar("y"), makeNumber(1)));
    for (double Y : {0.0, 1.5, 4.0}) {
      std::optional<double> Direct =
          evaluate(E, {{"x", Y + 1.0}, {"y", Y}});
      std::optional<double> Subst = evaluate(S, {{"y", Y}});
      ASSERT_EQ(Direct.has_value(), Subst.has_value());
      if (Direct && std::isfinite(*Direct)) {
        EXPECT_NEAR(*Direct, *Subst, 1e-9 + std::fabs(*Direct) * 1e-12);
      }
    }
  }
}

TEST_P(ExprProperty, PolynomialRoundTripPreservesValue) {
  std::mt19937 Rng(GetParam() + 200);
  for (int Trial = 0; Trial != 50; ++Trial) {
    ExprRef E = randomExpr(Rng, 3);
    std::optional<std::vector<ExprRef>> Poly = polynomialIn(E, "x");
    if (!Poly)
      continue; // not polynomial in x: nothing to check
    ExprRef Back = polynomialExpr(*Poly, "x");
    for (double X : {0.0, 1.0, 3.0}) {
      std::optional<double> V1 = evaluate(E, {{"x", X}, {"y", 2.0}});
      std::optional<double> V2 = evaluate(Back, {{"x", X}, {"y", 2.0}});
      ASSERT_EQ(V1.has_value(), V2.has_value());
      if (V1 && std::isfinite(*V1)) {
        EXPECT_NEAR(*V1, *V2, 1e-9 + std::fabs(*V1) * 1e-12)
            << exprText(E);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

//===----------------------------------------------------------------------===//
// Scheduler properties
//===----------------------------------------------------------------------===//

void buildRandomTree(CostTreeBuilder &B, std::mt19937 &Rng, int Depth) {
  std::uniform_int_distribution<int> Work(1, 20);
  B.addWork(Work(Rng));
  if (Depth <= 0)
    return;
  std::uniform_int_distribution<int> Branches(0, 3);
  int K = Branches(Rng);
  if (K >= 2) {
    B.beginPar();
    for (int I = 0; I != K; ++I) {
      B.beginBranch();
      buildRandomTree(B, Rng, Depth - 1);
      B.endBranch();
    }
    B.endPar();
  }
  B.addWork(Work(Rng));
}

class SchedulerProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SchedulerProperty, MakespanBounds) {
  std::mt19937 Rng(GetParam());
  for (int Trial = 0; Trial != 20; ++Trial) {
    CostTreeBuilder B;
    buildRandomTree(B, Rng, 4);
    std::unique_ptr<CostNode> T = B.finish();
    for (unsigned P : {1u, 2u, 4u, 8u}) {
      MachineConfig M;
      M.Processors = P;
      M.SpawnOverhead = 2;
      M.SchedOverhead = 3;
      M.JoinOverhead = 1;
      SimResult R = simulate(*T, M);
      // Lower bounds: critical path; total work / P.
      EXPECT_GE(R.ParallelTime + 1e-9, R.CriticalPath);
      EXPECT_GE(R.ParallelTime * P + 1e-9, R.SequentialTime);
      // Upper bound: everything serialized including all overheads.
      EXPECT_LE(R.ParallelTime,
                R.SequentialTime + R.OverheadUnits + 1e-9);
    }
  }
}

TEST_P(SchedulerProperty, DeterministicReplay) {
  std::mt19937 Rng(GetParam() + 50);
  CostTreeBuilder B;
  buildRandomTree(B, Rng, 5);
  std::unique_ptr<CostNode> T = B.finish();
  SimResult R1 = simulate(*T, MachineConfig::rolog());
  SimResult R2 = simulate(*T, MachineConfig::rolog());
  EXPECT_DOUBLE_EQ(R1.ParallelTime, R2.ParallelTime);
  EXPECT_EQ(R1.TasksSpawned, R2.TasksSpawned);
}

TEST_P(SchedulerProperty, ZeroOverheadMonotoneInProcessors) {
  // With zero overheads, adding workers can only help (greedy scheduling
  // of a fixed task set; our FIFO order is processor-count independent).
  std::mt19937 Rng(GetParam() + 99);
  for (int Trial = 0; Trial != 10; ++Trial) {
    CostTreeBuilder B;
    buildRandomTree(B, Rng, 4);
    std::unique_ptr<CostNode> T = B.finish();
    MachineConfig M;
    M.SpawnOverhead = M.SchedOverhead = M.JoinOverhead = 0;
    double Prev = HUGE_VAL;
    for (unsigned P : {1u, 2u, 4u, 8u, 16u}) {
      M.Processors = P;
      double Time = simulate(*T, M).ParallelTime;
      EXPECT_LE(Time, Prev * 1.01 + 1e-9) << "P=" << P;
      Prev = Time;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Values(11u, 22u, 33u));

//===----------------------------------------------------------------------===//
// Reader robustness
//===----------------------------------------------------------------------===//

class ReaderRobustness : public ::testing::TestWithParam<unsigned> {};

TEST_P(ReaderRobustness, ArbitraryInputNeverCrashes) {
  std::mt19937 Rng(GetParam());
  const char Alphabet[] =
      "abcXYZ012 ._,()[]|&;:-+*/\\'\"<>=!?\n\t%";
  for (int Trial = 0; Trial != 200; ++Trial) {
    std::string Input;
    std::uniform_int_distribution<int> Len(0, 60);
    std::uniform_int_distribution<size_t> Ch(0, sizeof(Alphabet) - 2);
    int N = Len(Rng);
    for (int I = 0; I != N; ++I)
      Input += Alphabet[Ch(Rng)];
    TermArena Arena;
    Diagnostics Diags;
    Parser P(Input, Arena, Diags);
    // Reading all clauses must terminate without crashing.
    int Guard = 0;
    while (!P.atEnd() && Guard++ < 1000)
      P.readClause();
    EXPECT_LT(Guard, 1000) << Input;
  }
}

TEST_P(ReaderRobustness, LoadProgramHandlesGarbage) {
  std::mt19937 Rng(GetParam() + 7);
  for (int Trial = 0; Trial != 100; ++Trial) {
    std::string Input = "p(X) :- q(X).\n";
    std::uniform_int_distribution<int> Ch(32, 126);
    for (int I = 0; I != 40; ++I)
      Input += static_cast<char>(Ch(Rng));
    TermArena Arena;
    Diagnostics Diags;
    // Must either load or report errors — never crash.
    std::optional<Program> P = loadProgram(Input, Arena, Diags);
    if (!P) {
      EXPECT_TRUE(Diags.hasErrors());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReaderRobustness,
                         ::testing::Values(101u, 202u));

} // namespace
