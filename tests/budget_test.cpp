//===- tests/budget_test.cpp - Resource governance lockdown ---------------===//
//
// Drives every budget meter to exhaustion and checks the degradation
// contract: results fall to sound Infinity/unknown values (never a crash,
// hang or partial program), every degradation is recorded with its phase
// and meter, budget-disabled runs are byte-identical to generous-budget
// runs, and the batch driver isolates per-benchmark faults.
//
//===----------------------------------------------------------------------===//

#include "core/GranularityAnalyzer.h"
#include "corpus/Corpus.h"
#include "corpus/Harness.h"
#include "support/Budget.h"
#include "support/Json.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace granlog;

namespace {

/// An exponential-size-expression program.  d0's two clauses give it the
/// interclause output size max(2n+1, n+5), which mentions its parameter
/// twice and cannot be folded; each d<k> then composes d<k-1> with
/// itself, so instantiating the closed form doubles the *tree* of the
/// solved size (and cost) expression per level while hash-consing keeps
/// the DAG linear.  Rendering such a tree (exprText, reports) is
/// exponential work; the tree-size guard must degrade the oversized
/// levels to Infinity long before that.
std::string doublingChain(unsigned Levels) {
  std::string Out = ":- mode(append(i, i, o)).\n"
                    ":- measure(append(length, length, length)).\n"
                    "append([], L, L).\n"
                    "append([H|T], L, [H|R]) :- append(T, L, R).\n"
                    ":- mode(d0(i, o)).\n"
                    ":- measure(d0(length, length)).\n"
                    "d0(X, [a|Y]) :- append(X, X, Y).\n"
                    "d0(X, [a,a,a,a,a|X]).\n";
  for (unsigned K = 1; K <= Levels; ++K) {
    std::string P = "d" + std::to_string(K);
    std::string Q = "d" + std::to_string(K - 1);
    Out += ":- mode(" + P + "(i, o)).\n";
    Out += ":- measure(" + P + "(length, length)).\n";
    Out += P + "(X, Y) :- " + Q + "(X, A), " + Q + "(A, Y).\n";
  }
  return Out;
}

/// Unsolvable mutual recursion (neither predicate reduces to a single
/// difference equation the schema table knows) plus deep self-recursion
/// with a divide-and-conquer shape: the classic "completes with Infinity"
/// adversarial mix of the acceptance criteria.
const char AdversarialSource[] = R"(
:- mode(ping(i, o)).
:- mode(pong(i, o)).
ping(0, 0).
ping(N, R) :- N > 0, M is N - 1, pong(M, S), pong(S, R).
pong(0, 0).
pong(N, R) :- N > 0, M is N - 2, ping(M, S), ping(S, R).

:- mode(deep(i, o)).
deep(0, 0).
deep(N, R) :-
    N > 0,
    A is N - 1, B is N / 2,
    ( deep(A, RA) & deep(B, RB) ),
    R is RA + RB.
)";

struct RunResult {
  bool Loaded = false;
  std::string Report;
  std::string ExplainAll;
  std::string Json;
  std::string LoadErrors;
  std::vector<Degradation> Degradations;
};

RunResult analyzeWith(const std::string &Source, const BudgetLimits &Limits,
                      unsigned Jobs = 1, StatsRegistry *Stats = nullptr) {
  RunResult R;
  TermArena Arena;
  Diagnostics Diags;
  std::optional<Budget> B;
  if (Limits.any())
    B.emplace(Limits);
  std::optional<Program> P =
      loadProgram(Source, Arena, Diags, B ? &*B : nullptr);
  if (!P) {
    R.LoadErrors = Diags.str();
    if (B)
      R.Degradations = B->degradations();
    return R;
  }
  R.Loaded = true;
  AnalyzerOptions Options{CostMetric::resolutions(), 48.0};
  Options.Jobs = Jobs;
  Options.Stats = Stats;
  if (B)
    Options.Budget = &*B;
  GranularityAnalyzer GA(*P, Options);
  GA.run();
  R.Report = GA.report();
  R.ExplainAll = GA.explainAll();
  JsonWriter W;
  GA.writeJson(W);
  R.Json = W.take();
  if (B)
    R.Degradations = B->degradations();
  return R;
}

bool hasMeter(const std::vector<Degradation> &Ds, MeterKind K) {
  for (const Degradation &D : Ds)
    if (D.Meter == K)
      return true;
  return false;
}

TEST(ReaderBudget, ParseTokenExhaustionAbortsLoad) {
  BudgetLimits L;
  L.ParseTokens = 8; // the fib source has hundreds of tokens
  RunResult R = analyzeWith(findBenchmark("fib")->Source, L);
  EXPECT_FALSE(R.Loaded);
  EXPECT_NE(R.LoadErrors.find("parse-tokens"), std::string::npos)
      << R.LoadErrors;
  ASSERT_EQ(R.Degradations.size(), 1u);
  EXPECT_EQ(R.Degradations[0].Phase, "reader");
  EXPECT_EQ(R.Degradations[0].Meter, MeterKind::ParseTokens);
}

TEST(ReaderBudget, ClauseLimitAbortsLoad) {
  BudgetLimits L;
  L.Clauses = 2; // fib alone has 3 clauses
  RunResult R = analyzeWith(findBenchmark("fib")->Source, L);
  EXPECT_FALSE(R.Loaded);
  EXPECT_NE(R.LoadErrors.find("clauses"), std::string::npos) << R.LoadErrors;
  EXPECT_TRUE(hasMeter(R.Degradations, MeterKind::Clauses));
}

TEST(ReaderBudget, GenerousLimitsLoadEverything) {
  for (const BenchmarkDef &B : benchmarkCorpus()) {
    RunResult R = analyzeWith(B.Source, BudgetLimits::defaults());
    EXPECT_TRUE(R.Loaded) << B.Name << ": " << R.LoadErrors;
  }
}

TEST(Budget, GenerousBudgetByteIdenticalToNoBudget) {
  // The budget machinery must be invisible while within budget: same
  // report, same provenance, same JSON (no "degradations" key), for every
  // corpus benchmark.
  for (const BenchmarkDef &B : benchmarkCorpus()) {
    RunResult Plain = analyzeWith(B.Source, BudgetLimits{});
    RunResult Budgeted = analyzeWith(B.Source, BudgetLimits::defaults());
    EXPECT_EQ(Budgeted.Report, Plain.Report) << B.Name;
    EXPECT_EQ(Budgeted.ExplainAll, Plain.ExplainAll) << B.Name;
    EXPECT_EQ(Budgeted.Json, Plain.Json) << B.Name;
    EXPECT_TRUE(Budgeted.Degradations.empty()) << B.Name;
  }
}

TEST(Budget, ExprNodeExhaustionDegradesSoundly) {
  BudgetLimits L;
  L.ExprNodes = 512;
  RunResult R = analyzeWith(doublingChain(14), L);
  ASSERT_TRUE(R.Loaded) << R.LoadErrors;
  EXPECT_TRUE(hasMeter(R.Degradations, MeterKind::ExprNodes))
      << R.Report;
  EXPECT_NE(R.Report.find("degradations (resource budget):"),
            std::string::npos)
      << R.Report;
  EXPECT_NE(R.ExplainAll.find("resource budget exhausted (expr-nodes"),
            std::string::npos)
      << R.ExplainAll;
  EXPECT_NE(R.Json.find("\"degradations\""), std::string::npos);
  EXPECT_TRUE(jsonValidate(R.Json)) << R.Json;
}

TEST(Budget, SolverStepExhaustionDegradesSoundly) {
  BudgetLimits L;
  L.SolverSteps = 1; // the first solve exhausts the meter
  RunResult R = analyzeWith(findBenchmark("fib")->Source, L);
  ASSERT_TRUE(R.Loaded) << R.LoadErrors;
  EXPECT_TRUE(hasMeter(R.Degradations, MeterKind::SolverSteps)) << R.Report;
  EXPECT_NE(R.ExplainAll.find("resource budget exhausted (solver-steps"),
            std::string::npos)
      << R.ExplainAll;
}

TEST(Budget, NormalizeStepExhaustionDegradesSoundly) {
  BudgetLimits L;
  L.NormalizeSteps = 1; // the first inlineCalls round exhausts the meter
  RunResult R = analyzeWith(AdversarialSource, L);
  ASSERT_TRUE(R.Loaded) << R.LoadErrors;
  EXPECT_TRUE(hasMeter(R.Degradations, MeterKind::NormalizeSteps))
      << R.Report;
}

TEST(Budget, TerminatorDegradesEverythingFast) {
  BudgetLimits L;
  L.Terminator = [] { return true; };
  TermArena Arena;
  Diagnostics Diags;
  // The terminator is polled during the read too, so load under a
  // separate, un-fired budget and only attach the firing one to the run.
  std::optional<Program> P =
      loadProgram(findBenchmark("quick_sort")->Source, Arena, Diags);
  ASSERT_TRUE(P) << Diags.str();
  Budget B(L);
  AnalyzerOptions Options{CostMetric::resolutions(), 48.0};
  Options.Budget = &B;
  GranularityAnalyzer GA(*P, Options);
  GA.run();
  EXPECT_TRUE(B.degraded());
  EXPECT_TRUE(hasMeter(B.degradations(), MeterKind::Deadline));
  // Every predicate degraded to the sound "always parallel" answer.
  for (const auto &Pred : P->predicates()) {
    const PredicateGranularity &G = GA.info(Pred->functor());
    EXPECT_TRUE(G.CostFn->isInfinity())
        << P->symbols().text(Pred->functor());
  }
}

TEST(Budget, TerminatorAbortsLoadToo) {
  BudgetLimits L;
  L.Terminator = [] { return true; };
  RunResult R = analyzeWith(findBenchmark("fib")->Source, L);
  EXPECT_FALSE(R.Loaded);
  EXPECT_NE(R.LoadErrors.find("deadline"), std::string::npos)
      << R.LoadErrors;
}

TEST(Budget, AdversarialProgramBoundedUnderDefaults) {
  // Deep recursion, exponential-size expressions and unsolvable mutual
  // recursion all complete under the default budget, with Infinity bounds
  // and structured provenance instead of a hang.
  std::string Source = std::string(AdversarialSource) + doublingChain(24);
  RunResult R = analyzeWith(Source, BudgetLimits::defaults());
  ASSERT_TRUE(R.Loaded) << R.LoadErrors;
  EXPECT_TRUE(jsonValidate(R.Json)) << R.Json;
  // The doubling chain must have tripped the tree guard...
  EXPECT_TRUE(hasMeter(R.Degradations, MeterKind::ExprNodes)) << R.Report;
  // ...and the mutual recursion reports Infinity with a reason (either
  // the classic unsolvable-equation provenance or a budget meter).
  EXPECT_NE(R.ExplainAll.find("infinity because:"), std::string::npos);
}

TEST(Budget, DegradedRunsAreDeterministicAcrossJobs) {
  BudgetLimits L;
  L.ExprNodes = 512;
  std::string Source = std::string(AdversarialSource) + doublingChain(14);
  RunResult Want = analyzeWith(Source, L, /*Jobs=*/1);
  for (int Repeat = 0; Repeat != 5; ++Repeat) {
    RunResult Got = analyzeWith(Source, L, /*Jobs=*/8);
    EXPECT_EQ(Got.Report, Want.Report) << "repeat " << Repeat;
    EXPECT_EQ(Got.ExplainAll, Want.ExplainAll) << "repeat " << Repeat;
    ASSERT_EQ(Got.Degradations.size(), Want.Degradations.size());
    for (size_t I = 0; I != Want.Degradations.size(); ++I)
      EXPECT_EQ(Got.Degradations[I], Want.Degradations[I]);
  }
}

TEST(Budget, StatsRecordDegradations) {
  BudgetLimits L;
  L.ExprNodes = 512;
  StatsRegistry Stats;
  RunResult R = analyzeWith(doublingChain(14), L, 1, &Stats);
  ASSERT_TRUE(R.Loaded);
  ASSERT_FALSE(R.Degradations.empty());
  auto Counters = Stats.counters();
  EXPECT_EQ(Counters["budget.degradations"], R.Degradations.size());
  EXPECT_GT(Counters["budget.exhausted.expr-nodes"], 0u);
}

TEST(Budget, DiagnosticsMirrorDegradations) {
  BudgetLimits L;
  L.SolverSteps = 1;
  TermArena Arena;
  Diagnostics Diags;
  std::optional<Program> P =
      loadProgram(findBenchmark("fib")->Source, Arena, Diags);
  ASSERT_TRUE(P);
  Budget B(L);
  AnalyzerOptions Options{CostMetric::resolutions(), 48.0};
  Options.Budget = &B;
  GranularityAnalyzer GA(*P, Options);
  GA.run();
  Diagnostics Out;
  B.reportTo(Out);
  EXPECT_FALSE(Out.all().empty());
  EXPECT_NE(Out.str().find("resource budget exhausted"), std::string::npos)
      << Out.str();
}

TEST(WorkMeterUnit, FixedExhaustionOrderAndScopes) {
  Budget B([] {
    BudgetLimits L;
    L.ExprNodes = 2;
    L.SolverSteps = 1;
    return L;
  }());
  WorkMeter M(&B);
  EXPECT_FALSE(M.over().has_value());
  M.chargeSolver(5);
  ASSERT_TRUE(M.over().has_value());
  EXPECT_EQ(*M.over(), MeterKind::SolverSteps);
  M.chargeExpr(5); // ExprNodes precedes SolverSteps in the fixed order
  EXPECT_EQ(*M.over(), MeterKind::ExprNodes);

  // MeterScope installs/suspends/restores the thread-local meter.
  EXPECT_EQ(currentWorkMeter(), nullptr);
  {
    MeterScope Scope(&M);
    EXPECT_EQ(currentWorkMeter(), &M);
    {
      MeterScope Suspend(nullptr);
      EXPECT_EQ(currentWorkMeter(), nullptr);
    }
    EXPECT_EQ(currentWorkMeter(), &M);
  }
  EXPECT_EQ(currentWorkMeter(), nullptr);

  // A meter with no budget is inert and never installed.
  WorkMeter Inert(nullptr);
  MeterScope Scope(&Inert);
  EXPECT_EQ(currentWorkMeter(), nullptr);
}

TEST(WorkMeterUnit, TreeGuardTripsExprMeter) {
  Budget B([] {
    BudgetLimits L;
    L.ExprNodes = 100;
    return L;
  }());
  WorkMeter M(&B);
  M.noteTreeSize(99);
  EXPECT_FALSE(M.over().has_value());
  M.noteTreeSize(101);
  ASSERT_TRUE(M.over().has_value());
  EXPECT_EQ(*M.over(), MeterKind::ExprNodes);
}

TEST(BatchFaultIsolation, MalformedFileDoesNotSinkTheBatch) {
  std::vector<BenchmarkDef> Corpus;
  Corpus.push_back(*findBenchmark("fib"));
  BenchmarkDef Bad = *findBenchmark("fib");
  Bad.Name = "malformed";
  Bad.Source = "this is not prolog ::- ( [ .";
  Corpus.push_back(Bad);
  Corpus.push_back(*findBenchmark("quick_sort"));

  BatchConfig Config;
  Config.Corpus = &Corpus;
  BatchResult Batch = analyzeCorpusBatch(Config);
  ASSERT_EQ(Batch.Results.size(), 3u);
  EXPECT_TRUE(Batch.Results[0].Ok) << Batch.Results[0].Error;
  EXPECT_FALSE(Batch.Results[1].Ok);
  EXPECT_NE(Batch.Results[1].Error.find("load failed"), std::string::npos)
      << Batch.Results[1].Error;
  EXPECT_TRUE(Batch.Results[2].Ok) << Batch.Results[2].Error;
}

TEST(BatchFaultIsolation, BudgetedBatchRecordsPerFileDegradations) {
  std::vector<BenchmarkDef> Corpus;
  Corpus.push_back(*findBenchmark("fib"));
  std::string ChainSource = doublingChain(14);
  BenchmarkDef Adversarial = *findBenchmark("fib");
  Adversarial.Name = "doubling_chain";
  Adversarial.Source = ChainSource.c_str();
  Corpus.push_back(Adversarial);

  BatchConfig Config;
  Config.Corpus = &Corpus;
  Config.Budget.ExprNodes = 512;
  BatchResult Batch = analyzeCorpusBatch(Config);
  ASSERT_EQ(Batch.Results.size(), 2u);
  EXPECT_TRUE(Batch.Results[0].Ok);
  EXPECT_TRUE(Batch.Results[1].Ok);
  // Budgets are per benchmark: the chain degrades, fib is untouched.
  EXPECT_GT(Batch.Results[1].Degradations, 0u);
  EXPECT_NE(Batch.Results[1].Report.find("degradations (resource budget)"),
            std::string::npos)
      << Batch.Results[1].Report;
}

} // namespace
