% Three revisions of one editing session (analyze_file --session-demo):
% revision 2 is a pure reorder/rename (everything reused), revision 3
% edits len's recursive clause (len and its caller re-analyzed).
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
len([], 0).
len([_|T], N) :- len(T, M), N is M + 1.
main(X, Y, N) :- app(X, Y, Z), len(Z, N).
%% --- revision 2: clauses reordered, variables renamed
app([A|B], C, [A|D]) :- app(B, C, D).
app([], Q, Q).
len([], 0).
len([_|T], N) :- len(T, M), N is M + 1.
main(X, Y, N) :- app(X, Y, Z), len(Z, N).
%% --- revision 3: len's recursive body edited
app([A|B], C, [A|D]) :- app(B, C, D).
app([], Q, Q).
len([], 0).
len([_|T], N) :- len(T, M), N is M + 2.
main(X, Y, N) :- app(X, Y, Z), len(Z, N).
