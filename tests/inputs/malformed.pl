this is not prolog ::- ( [ .
