% A syntactically valid file that defines no predicates (comments only).
% analyze_file must reject it with a clear diagnostic and nonzero exit.
