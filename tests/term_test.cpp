//===- tests/term_test.cpp - Term, unification, writer tests --------------===//

#include "term/Term.h"
#include "term/TermWriter.h"
#include "term/Unify.h"

#include <gtest/gtest.h>

using namespace granlog;

namespace {

class TermTest : public ::testing::Test {
protected:
  TermArena Arena;
  BindingEnv Env;
};

TEST_F(TermTest, Kinds) {
  const Term *V = Arena.makeVariable("X");
  const Term *A = Arena.makeAtom("foo");
  const Term *I = Arena.makeInt(42);
  const Term *F = Arena.makeFloat(2.5);
  const Term *S = Arena.makeStruct("f", {A, I});
  EXPECT_TRUE(V->isVariable());
  EXPECT_TRUE(A->isAtom());
  EXPECT_TRUE(I->isInt());
  EXPECT_TRUE(F->isFloat());
  EXPECT_TRUE(S->isStruct());
  EXPECT_TRUE(I->isNumber());
  EXPECT_TRUE(A->isAtomic());
  EXPECT_FALSE(V->isAtomic());
}

TEST_F(TermTest, SymbolInterning) {
  const AtomTerm *A1 = Arena.makeAtom("foo");
  const AtomTerm *A2 = Arena.makeAtom("foo");
  EXPECT_EQ(A1->name(), A2->name());
  EXPECT_EQ(Arena.symbols().text(A1->name()), "foo");
  EXPECT_NE(Arena.makeAtom("bar")->name(), A1->name());
}

TEST_F(TermTest, Groundness) {
  const Term *V = Arena.makeVariable("X");
  const Term *G = Arena.makeStruct("f", {Arena.makeInt(1), Arena.makeAtom("a")});
  const Term *NG = Arena.makeStruct("f", {Arena.makeInt(1), V});
  EXPECT_TRUE(G->isGround());
  EXPECT_FALSE(NG->isGround());
  EXPECT_FALSE(V->isGround());
}

TEST_F(TermTest, ListHelpers) {
  const Term *L = Arena.makeIntList({1, 2, 3});
  EXPECT_TRUE(isCons(L, Arena.symbols()));
  std::vector<const Term *> Elements;
  ASSERT_TRUE(collectListElements(L, Arena.symbols(), Elements));
  ASSERT_EQ(Elements.size(), 3u);
  EXPECT_EQ(cast<IntTerm>(Elements[1])->value(), 2);
  EXPECT_TRUE(isNil(Arena.makeNil(), Arena.symbols()));
}

TEST_F(TermTest, ImproperListDetected) {
  const Term *L = Arena.makeCons(Arena.makeInt(1), Arena.makeInt(2));
  std::vector<const Term *> Elements;
  EXPECT_FALSE(collectListElements(L, Arena.symbols(), Elements));
}

TEST_F(TermTest, UnifyAtomsAndNumbers) {
  EXPECT_TRUE(unify(Arena.makeAtom("a"), Arena.makeAtom("a"), Env));
  EXPECT_FALSE(unify(Arena.makeAtom("a"), Arena.makeAtom("b"), Env));
  EXPECT_TRUE(unify(Arena.makeInt(1), Arena.makeInt(1), Env));
  EXPECT_FALSE(unify(Arena.makeInt(1), Arena.makeInt(2), Env));
  EXPECT_FALSE(unify(Arena.makeInt(1), Arena.makeFloat(1.0), Env));
  EXPECT_FALSE(unify(Arena.makeInt(1), Arena.makeAtom("1"), Env));
}

TEST_F(TermTest, UnifyBindsVariables) {
  const VarTerm *X = Arena.makeVariable("X");
  const Term *A = Arena.makeAtom("a");
  EXPECT_TRUE(unify(X, A, Env));
  EXPECT_EQ(deref(X), A);
}

TEST_F(TermTest, UnifyStructsRecursively) {
  const VarTerm *X = Arena.makeVariable("X");
  const VarTerm *Y = Arena.makeVariable("Y");
  const Term *T1 = Arena.makeStruct("f", {X, Arena.makeInt(2)});
  const Term *T2 = Arena.makeStruct("f", {Arena.makeInt(1), Y});
  ASSERT_TRUE(unify(T1, T2, Env));
  EXPECT_EQ(cast<IntTerm>(deref(X))->value(), 1);
  EXPECT_EQ(cast<IntTerm>(deref(Y))->value(), 2);
}

TEST_F(TermTest, UnifyArityMismatch) {
  const Term *T1 = Arena.makeStruct("f", {Arena.makeInt(1)});
  const Term *T2 = Arena.makeStruct("f", {Arena.makeInt(1), Arena.makeInt(2)});
  EXPECT_FALSE(unify(T1, T2, Env));
}

TEST_F(TermTest, TrailUndo) {
  const VarTerm *X = Arena.makeVariable("X");
  BindingEnv::Mark M = Env.mark();
  ASSERT_TRUE(unify(X, Arena.makeAtom("a"), Env));
  EXPECT_TRUE(X->isBound());
  Env.undoTo(M);
  EXPECT_FALSE(X->isBound());
}

TEST_F(TermTest, VarVarUnification) {
  const VarTerm *X = Arena.makeVariable("X");
  const VarTerm *Y = Arena.makeVariable("Y");
  ASSERT_TRUE(unify(X, Y, Env));
  ASSERT_TRUE(unify(Y, Arena.makeInt(7), Env));
  EXPECT_EQ(cast<IntTerm>(deref(X))->value(), 7);
}

TEST_F(TermTest, UnifyStatsCounted) {
  UnifyStats Stats;
  const Term *T1 = Arena.makeStruct("f", {Arena.makeVariable("X"),
                                          Arena.makeInt(2)});
  const Term *T2 =
      Arena.makeStruct("f", {Arena.makeInt(1), Arena.makeInt(2)});
  ASSERT_TRUE(unify(T1, T2, Env, &Stats));
  EXPECT_GE(Stats.Unifications, 3u); // f pair + two argument pairs
  EXPECT_EQ(Stats.Bindings, 1u);
}

TEST_F(TermTest, RenamerSharesRenamedVariables) {
  const VarTerm *X = Arena.makeVariable("X");
  const Term *T = Arena.makeStruct("f", {X, X});
  TermRenamer Renamer(Arena);
  const StructTerm *R = cast<StructTerm>(Renamer.rename(T));
  EXPECT_NE(deref(R->arg(0)), static_cast<const Term *>(X));
  EXPECT_EQ(deref(R->arg(0)), deref(R->arg(1)));
}

TEST_F(TermTest, RenamerSharesGroundSubterms) {
  const Term *G = Arena.makeStruct("g", {Arena.makeInt(1)});
  TermRenamer Renamer(Arena);
  EXPECT_EQ(Renamer.rename(G), G);
}

TEST_F(TermTest, ResolveRebuildsBoundStructs) {
  const VarTerm *X = Arena.makeVariable("X");
  const Term *T = Arena.makeStruct("f", {X});
  ASSERT_TRUE(unify(X, Arena.makeInt(5), Env));
  const Term *R = resolve(T, Arena);
  Env.undoTo(0);
  const StructTerm *S = cast<StructTerm>(R);
  EXPECT_EQ(cast<IntTerm>(deref(S->arg(0)))->value(), 5);
}

TEST_F(TermTest, TermsEqualStructural) {
  const Term *A = Arena.makeStruct("f", {Arena.makeInt(1), Arena.makeAtom("a")});
  const Term *B = Arena.makeStruct("f", {Arena.makeInt(1), Arena.makeAtom("a")});
  const Term *C = Arena.makeStruct("f", {Arena.makeInt(2), Arena.makeAtom("a")});
  EXPECT_TRUE(termsEqual(A, B));
  EXPECT_FALSE(termsEqual(A, C));
  const VarTerm *X = Arena.makeVariable("X");
  EXPECT_FALSE(termsEqual(X, Arena.makeVariable("Y")));
  EXPECT_TRUE(termsEqual(X, X));
}

TEST_F(TermTest, WriterBasics) {
  TermWriter W(Arena.symbols());
  EXPECT_EQ(W.str(Arena.makeAtom("foo")), "foo");
  EXPECT_EQ(W.str(Arena.makeInt(-3)), "-3");
  EXPECT_EQ(W.str(Arena.makeIntList({1, 2})), "[1,2]");
  EXPECT_EQ(W.str(Arena.makeStruct("f", {Arena.makeInt(1)})), "f(1)");
}

TEST_F(TermTest, WriterPartialList) {
  TermWriter W(Arena.symbols());
  const Term *T = Arena.makeCons(Arena.makeInt(1), Arena.makeVariable("T"));
  EXPECT_EQ(W.str(T), "[1|T]");
}

TEST_F(TermTest, WriterInfixOperators) {
  TermWriter W(Arena.symbols());
  const Term *Plus =
      Arena.makeStruct("+", {Arena.makeInt(1), Arena.makeInt(2)});
  const Term *Is = Arena.makeStruct("is", {Arena.makeVariable("X"), Plus});
  EXPECT_EQ(W.str(Is), "X is 1 + 2");
}

TEST_F(TermTest, WriterParenthesizesByPriority) {
  TermWriter W(Arena.symbols());
  // (1 + 2) * 3 — the '+' (500) under '*' (400) needs parentheses.
  const Term *Plus =
      Arena.makeStruct("+", {Arena.makeInt(1), Arena.makeInt(2)});
  const Term *Mul = Arena.makeStruct("*", {Plus, Arena.makeInt(3)});
  EXPECT_EQ(W.str(Mul), "(1 + 2) * 3");
}

} // namespace
