//===- tests/tracer_test.cpp - Analyzer tracing subsystem tests -----------===//
//
// The tracing contract, end to end: a null tracer changes nothing (batch
// outputs byte-identical at any job count), a live tracer's exported
// Chrome trace is valid JSON on its own process track and covers every
// analyzed SCC, the span hot path never allocates, the ring buffer drops
// oldest-first with an honest dropped() count, the latency histogram's
// percentiles are deterministic under splitting/merging, the critical
// path follows the SCC dependency DAG, and the atomic file writer leaves
// no temp residue.
//
//===----------------------------------------------------------------------===//

#include "core/AnalysisSession.h"
#include "corpus/Corpus.h"
#include "corpus/Harness.h"
#include "support/Histogram.h"
#include "support/Io.h"
#include "support/Json.h"
#include "support/Profile.h"
#include "support/TraceEvent.h"
#include "support/Tracer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <thread>

using namespace granlog;

// Counting global allocator: proves the span hot path stays allocation-
// free once a thread's ring exists.  Delegates to malloc; the nothrow
// variants fall through to these replaced throwing forms.
static std::atomic<uint64_t> GAllocCount{0};

void *operator new(std::size_t Size) {
  GAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t Size) { return ::operator new(Size); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

namespace {

BatchResult runBatch(unsigned Jobs, Tracer *Trace) {
  BatchConfig Config;
  Config.Jobs = Jobs;
  Config.Trace = Trace;
  return analyzeCorpusBatch(Config);
}

/// Drops the stats-JSON "values" member (wall-clock phase timings, never
/// reproducible run-to-run); everything else must be byte-identical.
std::string stripTimings(std::string Json) {
  size_t Pos = Json.find("\"values\":{");
  if (Pos == std::string::npos)
    return Json;
  size_t End = Json.find('}', Pos);
  return Json.erase(Pos, End - Pos + 1);
}

} // namespace

// A traced batch must produce byte-identical analysis output to an
// untraced one, sequential or parallel: tracing is observation only.
TEST(TracerTest, TracingOffBatchOutputsByteIdentical) {
  BatchResult Base = runBatch(1, nullptr);
  Tracer T1, T8;
  BatchResult Configs[] = {runBatch(8, nullptr), runBatch(1, &T1),
                           runBatch(8, &T8)};
  ASSERT_FALSE(Base.Results.empty());
  for (const BatchResult &Other : Configs) {
    ASSERT_EQ(Base.Results.size(), Other.Results.size());
    for (size_t I = 0; I != Base.Results.size(); ++I) {
      EXPECT_EQ(Base.Results[I].Report, Other.Results[I].Report);
      EXPECT_EQ(Base.Results[I].ExplainAll, Other.Results[I].ExplainAll);
      EXPECT_EQ(stripTimings(Base.Results[I].StatsJson),
                stripTimings(Other.Results[I].StatsJson));
    }
    EXPECT_EQ(Base.CacheHits, Other.CacheHits);
    EXPECT_EQ(Base.CacheMisses, Other.CacheMisses);
    EXPECT_EQ(Base.CacheEntries, Other.CacheEntries);
  }
}

// The exported trace round-trips through the JSON parser, lands on its
// own process track (pid 1, named clock domain), and carries a size and
// a cost span for every SCC of every benchmark.
TEST(TracerTest, ExportedTraceIsValidAndCoversEverySCC) {
  Tracer T;
  BatchResult Batch = runBatch(4, &T);

  for (const BatchAnalysis &A : Batch.Results) {
    ASSERT_TRUE(A.Ok) << A.Name << ": " << A.Error;
    EXPECT_EQ(A.SccSpans, A.SccDeps.size()) << A.Name;
    EXPECT_GT(A.SccSpans, 0u) << A.Name;
    EXPECT_NE(A.Profile.find("critical path:"), std::string::npos);
  }

  TraceWriter W;
  T.exportTo(W);
  std::optional<JsonValue> Doc = jsonParse(W.json());
  ASSERT_TRUE(Doc);
  const JsonValue *Events = Doc->find("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());

  bool NamedProcess = false;
  size_t AnalyzerSpans = 0;
  for (const JsonValue &E : Events->array()) {
    std::optional<int64_t> Pid = E.intMember("pid");
    ASSERT_TRUE(Pid);
    EXPECT_EQ(*Pid, 1); // analyzer spans never share the simulator track
    std::optional<std::string> Ph = E.stringMember("ph");
    ASSERT_TRUE(Ph);
    if (*Ph == "M" && E.stringMember("name") == "process_name")
      NamedProcess = true;
    if (*Ph == "X")
      ++AnalyzerSpans;
  }
  EXPECT_TRUE(NamedProcess);
  EXPECT_EQ(AnalyzerSpans, T.snapshot().size());
  EXPECT_EQ(T.dropped(), 0u);
}

// Once a thread has recorded its first span (which may allocate its
// ring), further spans must not allocate at all.
TEST(TracerTest, SpanHotPathDoesNotAllocate) {
  Tracer T;
  { TraceSpan Warmup(&T, SpanKind::Program, 0); } // ring exists now
  uint64_t Before = GAllocCount.load(std::memory_order_relaxed);
  for (int I = 0; I != 1000; ++I) {
    TraceSpan Scc(&T, SpanKind::Scc, Tracer::None,
                  static_cast<uint32_t>(I));
    TraceSpan Solve(&T, SpanKind::Solve);
    Solve.setDetail(TraceCacheHit);
  }
  uint64_t After = GAllocCount.load(std::memory_order_relaxed);
  EXPECT_EQ(Before, After);
  EXPECT_EQ(T.snapshot().size(), 2001u);
}

// A full ring overwrites the oldest records and owns up to it.
TEST(TracerTest, RingOverflowDropsOldestAndCounts) {
  Tracer T(/*CapacityPerThread=*/4);
  EXPECT_EQ(T.capacity(), 4u);
  for (uint32_t I = 0; I != 10; ++I)
    TraceSpan(&T, SpanKind::Scc, Tracer::None, I);
  std::vector<SpanRecord> Spans = T.snapshot();
  ASSERT_EQ(Spans.size(), 4u);
  EXPECT_EQ(T.dropped(), 6u);
  // The retained spans are the newest four, still in recording order.
  for (size_t I = 0; I != Spans.size(); ++I)
    EXPECT_EQ(Spans[I].Scc, 6u + I);
}

// Null-tracer spans are inert: no logs, no snapshot, no surprises.
TEST(TracerTest, NullTracerSpansAreInert) {
  TraceSpan Outer(nullptr, SpanKind::Program, 7);
  TraceSpan Inner(nullptr, SpanKind::Solve);
  Inner.setDetail(TraceCacheMiss);
  Tracer T;
  EXPECT_TRUE(T.snapshot().empty());
  EXPECT_EQ(T.dropped(), 0u);
}

// Nested spans inherit the enclosing program/SCC context within a thread,
// and sibling threads keep independent contexts.
TEST(TracerTest, SpansInheritContextPerThread) {
  Tracer T;
  uint32_t P0 = T.registerProgram("alpha");
  uint32_t P1 = T.registerProgram("beta");
  auto Work = [&](uint32_t Prog, uint32_t Scc) {
    TraceSpan Program(&T, SpanKind::Program, Prog);
    TraceSpan SccSpan(&T, SpanKind::Scc, Tracer::None, Scc);
    TraceSpan Solve(&T, SpanKind::Solve); // inherits Prog and Scc
  };
  std::thread A(Work, P0, 11u), B(Work, P1, 22u);
  A.join();
  B.join();
  std::vector<SpanRecord> Spans = T.snapshot();
  ASSERT_EQ(Spans.size(), 6u);
  for (const SpanRecord &R : Spans) {
    if (R.Prog == P0)
      EXPECT_TRUE(R.Kind == SpanKind::Program || R.Scc == 11u);
    else if (R.Prog == P1)
      EXPECT_TRUE(R.Kind == SpanKind::Program || R.Scc == 22u);
    else
      ADD_FAILURE() << "span with unregistered program " << R.Prog;
  }
  EXPECT_EQ(T.programName(P0), "alpha");
  EXPECT_EQ(T.programName(P1), "beta");
}

// Percentiles are a pure function of the inserted multiset: any split of
// the samples across histograms, in any order, merges to the same result.
TEST(TracerTest, HistogramPercentilesDeterministicUnderMerge) {
  std::vector<uint64_t> Samples;
  for (int I = 0; I != 50; ++I)
    Samples.push_back(1000);
  for (int I = 0; I != 40; ++I)
    Samples.push_back(100000);
  for (int I = 0; I != 10; ++I)
    Samples.push_back(10000000);

  LatencyHistogram Whole;
  for (uint64_t S : Samples)
    Whole.addNs(S);

  LatencyHistogram Parts[4];
  for (size_t I = 0; I != Samples.size(); ++I)
    Parts[(Samples.size() - 1 - I) % 4].addNs(Samples[I]);
  LatencyHistogram Merged;
  for (LatencyHistogram &Part : Parts)
    Merged.merge(Part);

  EXPECT_EQ(Whole.count(), 100u);
  EXPECT_EQ(Merged.count(), 100u);
  for (double P : {0.50, 0.90, 0.99, 1.0})
    EXPECT_EQ(Whole.percentileNs(P), Merged.percentileNs(P)) << P;
  // Bucket upper bounds: 1000 -> 1024, 100000 -> 2^17, 10000000 -> 2^24.
  EXPECT_EQ(Whole.percentileNs(0.50), 1024u);
  EXPECT_EQ(Whole.percentileNs(0.90), uint64_t(1) << 17);
  EXPECT_EQ(Whole.percentileNs(0.99), uint64_t(1) << 24);
}

// The critical path is the heaviest dependency chain, not the heaviest
// node set, and ties break deterministically toward smaller ids.
TEST(TracerTest, CriticalPathFollowsDependencyChain) {
  // Synthesize measured spans: SCC 0 depends on 1 and 2; 1 depends on 3.
  auto SizeSpan = [](uint32_t Scc, uint64_t Start, uint64_t Dur) {
    SpanRecord R;
    R.Kind = SpanKind::Size;
    R.Scc = Scc;
    R.Prog = 0;
    R.StartNs = Start;
    R.DurNs = Dur;
    return R;
  };
  std::vector<SpanRecord> Spans = {
      SizeSpan(3, 0, 100), SizeSpan(1, 200, 50), SizeSpan(2, 300, 120),
      SizeSpan(0, 500, 10)};
  TraceProfile P = buildProfile(Spans);
  EXPECT_EQ(P.SccNs.size(), 4u);
  std::vector<std::vector<unsigned>> Deps = {{1, 2}, {3}, {}, {}};
  uint64_t PathNs = 0;
  std::vector<unsigned> Path = criticalPath(P, Deps, &PathNs);
  // 0->1->3 weighs 160; 0->2 weighs 130.
  EXPECT_EQ(Path, (std::vector<unsigned>{0, 1, 3}));
  EXPECT_EQ(PathNs, 160u);
  std::string Report = profileReport(P, Deps, {"top", "mid", "", "leaf"});
  EXPECT_NE(Report.find("critical path: 3 SCCs"), std::string::npos);
  EXPECT_NE(Report.find("[leaf]"), std::string::npos);
}

// Self time subtracts same-thread children only; cache outcomes aggregate
// by detail code.
TEST(TracerTest, ProfileSelfTimeAndCacheAttribution) {
  Tracer T;
  {
    TraceSpan Size(&T, SpanKind::Size, 0, 5);
    {
      TraceSpan Solve(&T, SpanKind::Solve);
      TraceSpan Probe(&T, SpanKind::CacheProbe);
      Probe.setDetail(TraceCacheMiss);
    }
    {
      TraceSpan Solve(&T, SpanKind::Solve);
      TraceSpan Probe(&T, SpanKind::CacheProbe);
      Probe.setDetail(TraceCacheDiskHit);
    }
  }
  TraceProfile P = buildProfile(T.snapshot());
  EXPECT_EQ(P.Spans, 5u);
  const auto &Size = P.ByKind[static_cast<unsigned>(SpanKind::Size)];
  const auto &Solve = P.ByKind[static_cast<unsigned>(SpanKind::Solve)];
  EXPECT_EQ(Size.Count, 1u);
  EXPECT_EQ(Solve.Count, 2u);
  EXPECT_LE(Size.SelfNs + Solve.TotalNs, Size.TotalNs + Solve.TotalNs);
  EXPECT_GE(Size.TotalNs, Solve.TotalNs); // children nest inside
  EXPECT_EQ(P.CacheOutcomes[TraceCacheMiss].Count, 1u);
  EXPECT_EQ(P.CacheOutcomes[TraceCacheDiskHit].Count, 1u);
  EXPECT_EQ(P.CacheOutcomes[TraceCacheHit].Count, 0u);
  EXPECT_EQ(P.SccNs.count(5), 1u);
}

// An incremental session tags every revision with a session.update span;
// reused SCCs don't re-record size/cost spans.
TEST(TracerTest, SessionUpdatesEmitSpans) {
  Tracer T;
  SessionOptions SO;
  SO.Trace = &T;
  SO.TraceProgram = T.registerProgram("session");
  AnalysisSession Session(SO);

  TermArena Arena;
  Diagnostics Diags;
  std::optional<Program> P =
      loadProgram(findBenchmark("fib")->Source, Arena, Diags);
  ASSERT_TRUE(P);
  Session.update(*P);
  const SessionUpdate &U2 = Session.update(*P); // all SCCs reused
  EXPECT_EQ(U2.AnalyzedSCCs, 0u);

  size_t Updates = 0, SizeSpans = 0;
  for (const SpanRecord &R : T.snapshot()) {
    EXPECT_EQ(R.Prog, SO.TraceProgram);
    Updates += R.Kind == SpanKind::SessionUpdate;
    SizeSpans += R.Kind == SpanKind::Size;
  }
  EXPECT_EQ(Updates, 2u);
  EXPECT_EQ(SizeSpans, 1u); // only the first revision analyzed anything
}

// writeFileAtomic: publishes the full contents, cleans up its temp file,
// and fails without leaving residue when the rename cannot happen.
TEST(TracerTest, WriteFileAtomicLeavesNoResidue) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "granlog-io-test";
  fs::create_directories(Dir);
  fs::path Target = Dir / "out.json";

  ASSERT_TRUE(writeFileAtomic(Target.string(), "{\"ok\":true}\n"));
  std::ifstream In(Target);
  std::string Contents((std::istreambuf_iterator<char>(In)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(Contents, "{\"ok\":true}\n");
  EXPECT_FALSE(fs::exists(Target.string() + ".tmp"));

  std::string Error;
  fs::path Bad = Dir / "no" / "such" / "dir" / "out.json";
  EXPECT_FALSE(writeFileAtomic(Bad.string(), "x", &Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(fs::exists(Bad.string() + ".tmp"));
  fs::remove_all(Dir);
}

// TraceWriter keeps distinct process tracks distinct: pid-0 (simulator)
// and pid-1 (analyzer) events coexist with their own metadata.
TEST(TracerTest, TraceWriterSeparatesProcessTracks) {
  TraceWriter W;
  W.processName(0, "sim");
  W.complete("task0", "task", 0, 1.0, 2.0); // legacy pid-0 path
  W.processName(1, "analyzer");
  W.completeOn(1, "solve", "solve", 3, 10.0, 5.0);
  W.threadNameOn(1, 3, "analyzer thread 3");

  std::optional<JsonValue> Doc = jsonParse(W.json());
  ASSERT_TRUE(Doc);
  const JsonValue *Events = Doc->find("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());
  ASSERT_EQ(Events->array().size(), 5u);
  EXPECT_EQ(Events->array()[1].intMember("pid"), 0);
  EXPECT_EQ(Events->array()[3].intMember("pid"), 1);
  EXPECT_EQ(Events->array()[3].intMember("tid"), 3);
}
