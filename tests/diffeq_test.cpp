//===- tests/diffeq_test.cpp - Difference equation solver tests -----------===//
//
// Validates the solver against the closed forms the paper derives:
//   append:  Cost(n)   = n + 1
//   nrev:    Cost(n)   = 0.5 n^2 + 1.5 n + 1          (Appendix A)
//   fib:     Cost(n)  <= 2^{n+1} - 1                   (Section 5)
//
//===----------------------------------------------------------------------===//

#include "diffeq/Recurrence.h"
#include "diffeq/Solver.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace granlog;

namespace {

ExprRef n() { return makeVar("n"); }

double evalAt(const ExprRef &E, double N) {
  auto V = evaluate(E, {{"n", N}});
  EXPECT_TRUE(V.has_value()) << exprText(E);
  return V.value_or(-1);
}

class DiffEqTest : public ::testing::Test {
protected:
  DiffEqSolver Solver;
};

TEST_F(DiffEqTest, ExtractSimpleShift) {
  // f(n) = f(n-1) + n + 1
  ExprRef Rhs = makeAdd({makeCall("f", {makeSub(n(), makeNumber(1))}), n(),
                         makeNumber(1)});
  auto R = extractRecurrence("f", {"n"}, 0, Rhs);
  ASSERT_TRUE(R.has_value());
  ASSERT_EQ(R->ShiftTerms.size(), 1u);
  EXPECT_EQ(R->ShiftTerms[0].Coeff, Rational(1));
  EXPECT_EQ(R->ShiftTerms[0].Shift, Rational(1));
  EXPECT_EQ(exprText(R->Additive), "1 + n");
}

TEST_F(DiffEqTest, ExtractMergesEqualShifts) {
  // f(n-1) + f(n-1) canonicalizes to 2 f(n-1).
  ExprRef Self = makeCall("f", {makeSub(n(), makeNumber(1))});
  ExprRef Rhs = makeAdd({Self, Self, makeNumber(1)});
  auto R = extractRecurrence("f", {"n"}, 0, Rhs);
  ASSERT_TRUE(R.has_value());
  ASSERT_EQ(R->ShiftTerms.size(), 1u);
  EXPECT_EQ(R->ShiftTerms[0].Coeff, Rational(2));
}

TEST_F(DiffEqTest, ExtractFibonacciShape) {
  // f(n) = f(n-1) + f(n-2) + 1
  ExprRef Rhs = makeAdd({makeCall("f", {makeSub(n(), makeNumber(1))}),
                         makeCall("f", {makeSub(n(), makeNumber(2))}),
                         makeNumber(1)});
  auto R = extractRecurrence("f", {"n"}, 0, Rhs);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->ShiftTerms.size(), 2u);
}

TEST_F(DiffEqTest, ExtractDivideTerm) {
  // f(n) = 2 f(n/2) + n
  ExprRef Rhs = makeAdd(
      makeScale(Rational(2),
                makeCall("f", {makeScale(Rational(1, 2), n())})),
      n());
  auto R = extractRecurrence("f", {"n"}, 0, Rhs);
  ASSERT_TRUE(R.has_value());
  ASSERT_EQ(R->DivideTerms.size(), 1u);
  EXPECT_EQ(R->DivideTerms[0].Coeff, Rational(2));
  EXPECT_EQ(R->DivideTerms[0].Divisor, Rational(2));
}

TEST_F(DiffEqTest, ExtractParametricPassThrough) {
  // f(n, y) = f(n-1, y) + 1 — parameter y carried through unchanged.
  ExprRef Rhs = makeAdd(
      makeCall("f", {makeSub(n(), makeNumber(1)), makeVar("y")}),
      makeNumber(1));
  auto R = extractRecurrence("f", {"n", "y"}, 0, Rhs);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->ShiftTerms.size(), 1u);
}

TEST_F(DiffEqTest, ExtractRejectsChangedParameter) {
  // f(n, y) = f(n-1, y+1) + 1 — the second parameter changes: reject.
  ExprRef Rhs = makeAdd(
      makeCall("f", {makeSub(n(), makeNumber(1)),
                     makeAdd(makeVar("y"), makeNumber(1))}),
      makeNumber(1));
  EXPECT_FALSE(extractRecurrence("f", {"n", "y"}, 0, Rhs).has_value());
}

TEST_F(DiffEqTest, ExtractRejectsNonlinearSelf) {
  // n * f(n-1) has a non-constant coefficient: reject.
  ExprRef Rhs = makeMul(n(), makeCall("f", {makeSub(n(), makeNumber(1))}));
  EXPECT_FALSE(extractRecurrence("f", {"n"}, 0, Rhs).has_value());
}

TEST_F(DiffEqTest, ExtractRejectsGrowingArgument) {
  // f(n+1) never terminates downward: reject.
  ExprRef Rhs = makeCall("f", {makeAdd(n(), makeNumber(1))});
  EXPECT_FALSE(extractRecurrence("f", {"n"}, 0, Rhs).has_value());
}

TEST_F(DiffEqTest, ExtractRelaxesMaxOverSelfCalls) {
  // max(f(n-1), n) becomes f(n-1) + n (sound upper bound).
  ExprRef Rhs = makeMax(makeCall("f", {makeSub(n(), makeNumber(1))}), n());
  auto R = extractRecurrence("f", {"n"}, 0, Rhs);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->ShiftTerms.size(), 1u);
  EXPECT_EQ(exprText(R->Additive), "n");
}

// --- Solving ---

TEST_F(DiffEqTest, AppendCostClosedForm) {
  // Cost(n) = Cost(n-1) + 1, Cost(0) = 1  =>  n + 1  (paper Appendix A).
  Recurrence R;
  R.Function = "cost:append";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(1), Rational(1)});
  R.Additive = makeNumber(1);
  R.Boundaries.push_back({Rational(0), makeNumber(1)});
  SolveResult S = Solver.solve(R);
  ASSERT_FALSE(S.failed());
  EXPECT_EQ(S.SchemaName, "first-order-sum");
  EXPECT_TRUE(S.Exact);
  EXPECT_EQ(exprText(S.Closed), "1 + n");
}

TEST_F(DiffEqTest, NrevCostClosedForm) {
  // Cost(n) = Cost(n-1) + n + 1, Cost(0) = 1 => 0.5 n^2 + 1.5 n + 1.
  Recurrence R;
  R.Function = "cost:nrev";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(1), Rational(1)});
  R.Additive = makeAdd(n(), makeNumber(1));
  R.Boundaries.push_back({Rational(0), makeNumber(1)});
  SolveResult S = Solver.solve(R);
  ASSERT_FALSE(S.failed());
  EXPECT_TRUE(S.Exact);
  EXPECT_EQ(exprText(S.Closed), "1 + 3/2*n + 1/2*n^2");
}

TEST_F(DiffEqTest, FibCostUpperBound) {
  // Cost(n) = Cost(n-1) + Cost(n-2) + 1, Cost(0)=Cost(1)=1.
  // Simplified by monotonicity to 2 Cost(n-1) + 1 => 2^{n+1} - 1.
  Recurrence R;
  R.Function = "cost:fib";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(1), Rational(1)});
  R.ShiftTerms.push_back({Rational(1), Rational(2)});
  R.Additive = makeNumber(1);
  R.Boundaries.push_back({Rational(0), makeNumber(1)});
  R.Boundaries.push_back({Rational(1), makeNumber(1)});
  SolveResult S = Solver.solve(R);
  ASSERT_FALSE(S.failed());
  EXPECT_EQ(S.SchemaName, "geometric");
  EXPECT_FALSE(S.Exact); // the collapse is an upper-bound step
  EXPECT_DOUBLE_EQ(evalAt(S.Closed, 10), 2048.0 - 1.0); // 2^{11} - 1
}

TEST_F(DiffEqTest, HanoiExactGeometric) {
  // f(n) = 2 f(n-1) + 1, f(0) = 1 => 2^{n+1} - 1, exact.
  Recurrence R;
  R.Function = "cost:hanoi";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(2), Rational(1)});
  R.Additive = makeNumber(1);
  R.Boundaries.push_back({Rational(0), makeNumber(1)});
  SolveResult S = Solver.solve(R);
  ASSERT_FALSE(S.failed());
  EXPECT_TRUE(S.Exact);
  EXPECT_DOUBLE_EQ(evalAt(S.Closed, 6), 127.0);
}

TEST_F(DiffEqTest, GeometricSolutionIsUpperBoundOnFibonacci) {
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(1), Rational(1)});
  R.ShiftTerms.push_back({Rational(1), Rational(2)});
  R.Additive = makeNumber(1);
  R.Boundaries.push_back({Rational(0), makeNumber(1)});
  R.Boundaries.push_back({Rational(1), makeNumber(1)});
  SolveResult S = Solver.solve(R);
  ASSERT_FALSE(S.failed());
  // Direct evaluation of the true recurrence.
  double F[21];
  F[0] = F[1] = 1;
  for (int I = 2; I <= 20; ++I)
    F[I] = F[I - 1] + F[I - 2] + 1;
  for (int I = 0; I <= 20; ++I)
    EXPECT_GE(evalAt(S.Closed, I), F[I]) << "at n=" << I;
}

TEST_F(DiffEqTest, SummationUpperBoundNonUnitShift) {
  // f(n) = f(n-2) + n, f(0) = 0.  True value: n/2 terms of ~n: about n^2/4.
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(1), Rational(2)});
  R.Additive = n();
  R.Boundaries.push_back({Rational(0), makeNumber(0)});
  SolveResult S = Solver.solve(R);
  ASSERT_FALSE(S.failed());
  double True = 0;
  for (int I = 10; I > 0; I -= 2)
    True += I;
  EXPECT_GE(evalAt(S.Closed, 10), True);
}

TEST_F(DiffEqTest, MergeSortDivideAndConquer) {
  // f(n) = 2 f(n/2) + n, f(1) = 1 => n (log2 n + 1) + n.
  Recurrence R;
  R.Function = "cost:msort";
  R.Var = "n";
  R.DivideTerms.push_back({Rational(2), Rational(2)});
  R.Additive = n();
  R.Boundaries.push_back({Rational(1), makeNumber(1)});
  SolveResult S = Solver.solve(R);
  ASSERT_FALSE(S.failed());
  EXPECT_EQ(S.SchemaName, "divide-and-conquer");
  // Upper bound at n = 1024: true cost is 1024*10 + extras ~ 11264.
  double True;
  {
    auto F = [](auto &&Self, double N) -> double {
      if (N <= 1)
        return 1;
      return 2 * Self(Self, N / 2) + N;
    };
    True = F(F, 1024);
  }
  EXPECT_GE(evalAt(S.Closed, 1024), True);
  // And not grossly loose: within a small constant factor.
  EXPECT_LE(evalAt(S.Closed, 1024), 4 * True);
}

TEST_F(DiffEqTest, DivideAndConquerRootHeavy) {
  // f(n) = 2 f(n/2) + n^2, f(1) = 1: a < b^d, so f(n) = O(n^2).
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.DivideTerms.push_back({Rational(2), Rational(2)});
  R.Additive = makePow(n(), makeNumber(2));
  R.Boundaries.push_back({Rational(1), makeNumber(1)});
  SolveResult S = Solver.solve(R);
  ASSERT_FALSE(S.failed());
  EXPECT_GE(evalAt(S.Closed, 64), 2.0 * 64 * 64); // true ~ 2 n^2
  EXPECT_LE(evalAt(S.Closed, 64), 16.0 * 64 * 64);
}

TEST_F(DiffEqTest, DivideAndConquerLeafHeavy) {
  // f(n) = 3 f(n/2) + n, f(1) = 1: a > b^d, f(n) = O(n^{log2 3}).
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.DivideTerms.push_back({Rational(3), Rational(2)});
  R.Additive = n();
  R.Boundaries.push_back({Rational(1), makeNumber(1)});
  SolveResult S = Solver.solve(R);
  ASSERT_FALSE(S.failed());
  auto F = [](auto &&Self, double N) -> double {
    if (N <= 1)
      return 1;
    return 3 * Self(Self, N / 2) + N;
  };
  EXPECT_GE(evalAt(S.Closed, 256), F(F, 256));
}

TEST_F(DiffEqTest, NoBoundaryMeansInfinity) {
  // No base case: a non-terminating branch; the paper maps this to
  // "infinite work" so the goal is always parallelized.
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(1), Rational(1)});
  R.Additive = makeNumber(1);
  SolveResult S = Solver.solve(R);
  EXPECT_TRUE(S.failed());
}

TEST_F(DiffEqTest, MixedShiftAndDivideFails) {
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(1), Rational(1)});
  R.DivideTerms.push_back({Rational(1), Rational(2)});
  R.Additive = makeNumber(1);
  R.Boundaries.push_back({Rational(0), makeNumber(1)});
  EXPECT_TRUE(Solver.solve(R).failed());
}

TEST_F(DiffEqTest, UnresolvedCalleeFails) {
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(1), Rational(1)});
  R.Additive = makeCall("unknown", {n()});
  R.Boundaries.push_back({Rational(0), makeNumber(1)});
  EXPECT_TRUE(Solver.solve(R).failed());
}

TEST_F(DiffEqTest, ParametricBoundaryValue) {
  // Psi_append(x, y): f(x) = f(x-1) + 1, f(0) = y  =>  x + y.
  Recurrence R;
  R.Function = "psi:append";
  R.Var = "x";
  R.ShiftTerms.push_back({Rational(1), Rational(1)});
  R.Additive = makeNumber(1);
  R.Boundaries.push_back({Rational(0), makeVar("y")});
  SolveResult S = Solver.solve(R);
  ASSERT_FALSE(S.failed());
  auto V = evaluate(S.Closed, {{"x", 5}, {"y", 3}});
  ASSERT_TRUE(V.has_value());
  EXPECT_DOUBLE_EQ(*V, 8.0);
}

TEST_F(DiffEqTest, MultipleBoundariesTakeMax) {
  // f(n) = f(n-1) + 1 with f(0) = 1 and f(1) = 5: base must use the max
  // value for soundness.
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(1), Rational(1)});
  R.Additive = makeNumber(1);
  R.Boundaries.push_back({Rational(0), makeNumber(1)});
  R.Boundaries.push_back({Rational(1), makeNumber(5)});
  SolveResult S = Solver.solve(R);
  ASSERT_FALSE(S.failed());
  EXPECT_FALSE(S.Exact);
  // f(2) truly is 6 (via f(1) = 5); bound must be >= 6.
  EXPECT_GE(evalAt(S.Closed, 2), 6.0);
}

TEST_F(DiffEqTest, DisableSchemaFallsThrough) {
  DiffEqSolver S2;
  S2.disableSchema("geometric");
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(2), Rational(1)});
  R.Additive = makeNumber(1);
  R.Boundaries.push_back({Rational(0), makeNumber(1)});
  EXPECT_TRUE(S2.solve(R).failed());
  EXPECT_FALSE(Solver.solve(R).failed());
}

TEST_F(DiffEqTest, InlineCallsEliminatesMutualRecursion) {
  // even(n) = odd(n-1) + 1; odd(n) = even(n-1) + 1.
  // After inlining odd into even: even(n) = even(n-2) + 2.
  std::map<std::string, EquationDef> Defs;
  Defs["odd"] = EquationDef{
      {"n"},
      makeAdd(makeCall("even", {makeSub(n(), makeNumber(1))}), makeNumber(1))};
  ExprRef EvenRhs =
      makeAdd(makeCall("odd", {makeSub(n(), makeNumber(1))}), makeNumber(1));
  ExprRef Reduced = inlineCalls(EvenRhs, Defs, 3);
  EXPECT_FALSE(containsCall(Reduced, "odd"));
  auto R = extractRecurrence("even", {"n"}, 0, Reduced);
  ASSERT_TRUE(R.has_value());
  ASSERT_EQ(R->ShiftTerms.size(), 1u);
  EXPECT_EQ(R->ShiftTerms[0].Shift, Rational(2));
  EXPECT_EQ(exprText(R->Additive), "2");
}

TEST_F(DiffEqTest, RecurrenceStr) {
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(2), Rational(1)});
  R.Additive = makeNumber(1);
  R.Boundaries.push_back({Rational(0), makeNumber(1)});
  EXPECT_EQ(R.str(), "f(n) = 2*f(n - 1) + 1; f(0) = 1");
}

TEST_F(DiffEqTest, RecurrenceStrPrintsDivideOffsets) {
  // Divide terms with a nonzero offset (e.g. the ceil(n/2) half of a
  // divide-and-conquer split, f(n/2 + 1/2)) must show the offset; it is
  // part of the equation's identity.
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.DivideTerms.push_back({Rational(1), Rational(2), Rational(1, 2)});
  R.DivideTerms.push_back({Rational(2), Rational(2), Rational(0)});
  R.Additive = makeNumber(1);
  R.Boundaries.push_back({Rational(1), makeNumber(0)});
  EXPECT_EQ(R.str(), "f(n) = f(n/2 + 1/2) + 2*f(n/2) + 1; f(1) = 0");
}

// --- Lower-bound (dual) reading ---

TEST_F(DiffEqTest, ExactSchemasHaveLoEqualHi) {
  // An exact solve is its own minimal solution, so the lower reading
  // coincides with the closed form.  Append, nrev and hanoi all solve
  // exactly (single shift term, single boundary, no relaxation).
  auto Check = [&](Recurrence R) {
    SolveResult S = Solver.solve(R);
    ASSERT_FALSE(S.failed()) << R.str();
    ASSERT_TRUE(S.Exact) << R.str();
    ASSERT_TRUE(S.Lo) << R.str();
    EXPECT_EQ(exprText(S.Lo), exprText(S.Closed)) << R.str();
  };
  Recurrence Append;
  Append.Function = "cost:append";
  Append.Var = "n";
  Append.ShiftTerms.push_back({Rational(1), Rational(1)});
  Append.Additive = makeNumber(1);
  Append.Boundaries.push_back({Rational(0), makeNumber(1)});
  Check(Append);

  Recurrence Nrev = Append;
  Nrev.Function = "cost:nrev";
  Nrev.Additive = makeAdd(n(), makeNumber(1));
  Check(Nrev);

  Recurrence Hanoi = Append;
  Hanoi.Function = "cost:hanoi";
  Hanoi.ShiftTerms[0] = {Rational(2), Rational(1)};
  Check(Hanoi);
}

TEST_F(DiffEqTest, LowerBoundIsSoundOnFibonacci) {
  // The geometric collapse of fib's two shift terms relaxes in both
  // directions: Closed over-approximates, Lo under-approximates.  The
  // true iterates must sit in between, and Lo must not be trivially 0
  // (the schema promises a growing floor).
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(1), Rational(1)});
  R.ShiftTerms.push_back({Rational(1), Rational(2)});
  R.Additive = makeNumber(1);
  R.Boundaries.push_back({Rational(0), makeNumber(1)});
  R.Boundaries.push_back({Rational(1), makeNumber(1)});
  SolveResult S = Solver.solve(R);
  ASSERT_FALSE(S.failed());
  EXPECT_FALSE(S.Exact);
  ASSERT_TRUE(S.Lo);
  double F[21];
  F[0] = F[1] = 1;
  for (int I = 2; I <= 20; ++I)
    F[I] = F[I - 1] + F[I - 2] + 1;
  for (int I = 0; I <= 20; ++I) {
    auto Lo = evaluate(S.Lo, {{"n", static_cast<double>(I)}});
    ASSERT_TRUE(Lo.has_value()) << exprText(S.Lo);
    EXPECT_LE(*Lo, F[I] + 1e-9) << "at n=" << I;
    EXPECT_LE(*Lo, evalAt(S.Closed, I) + 1e-9) << "at n=" << I;
  }
  EXPECT_GT(evaluate(S.Lo, {{"n", 20.0}}).value_or(0), 100.0)
      << "lower bound should grow: " << exprText(S.Lo);
}

TEST_F(DiffEqTest, MultipleBoundariesLowerUsesMinValue) {
  // f(n) = f(n-1) + 1 with f(0) = 1 and f(1) = 5.  The upper reading
  // bases on the max boundary value; the lower reading must base on the
  // min, staying below every actual trajectory (f(2) = 6 via f(1) = 5,
  // but f(1) itself can be as small as 2 via f(0) = 1).
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(1), Rational(1)});
  R.Additive = makeNumber(1);
  R.Boundaries.push_back({Rational(0), makeNumber(1)});
  R.Boundaries.push_back({Rational(1), makeNumber(5)});
  SolveResult S = Solver.solve(R);
  ASSERT_FALSE(S.failed());
  EXPECT_FALSE(S.Exact);
  ASSERT_TRUE(S.Lo);
  for (int I = 0; I <= 12; ++I) {
    auto Lo = evaluate(S.Lo, {{"n", static_cast<double>(I)}});
    ASSERT_TRUE(Lo.has_value());
    // Minimal trajectory: f(0)=1, f(1) >= 2 (recurrence from f(0)), so
    // f(n) >= n + 1.  Lo must be below that and below Closed.
    EXPECT_LE(*Lo, I + 1.0 + 1e-9) << "at n=" << I;
    EXPECT_LE(*Lo, evalAt(S.Closed, I) + 1e-9) << "at n=" << I;
  }
}

TEST_F(DiffEqTest, DivideAndConquerLowerBelowTrueValue) {
  // Mergesort shape: f(n) = 2 f(n/2) + n, f(1) = 1.  Lo must bound the
  // true iterates from below at power-of-two sizes.
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.DivideTerms.push_back({Rational(2), Rational(2)});
  R.Additive = n();
  R.Boundaries.push_back({Rational(1), makeNumber(1)});
  SolveResult S = Solver.solve(R);
  ASSERT_FALSE(S.failed());
  ASSERT_TRUE(S.Lo);
  auto F = [](auto &&Self, double N) -> double {
    if (N <= 1)
      return 1;
    return 2 * Self(Self, N / 2) + N;
  };
  for (double N : {1.0, 2.0, 4.0, 16.0, 256.0, 1024.0}) {
    auto Lo = evaluate(S.Lo, {{"n", N}});
    ASSERT_TRUE(Lo.has_value());
    EXPECT_LE(*Lo, F(F, N) + 1e-6) << "at n=" << N;
  }
}

TEST_F(DiffEqTest, FailedSolveHasZeroLo) {
  // Failure leaves no information in either direction: Closed is
  // Infinity (no upper bound), Lo is 0 (no promised minimum).
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(1), Rational(1)});
  R.Additive = makeNumber(1);
  SolveResult S = Solver.solve(R);
  ASSERT_TRUE(S.failed());
  ASSERT_TRUE(S.Lo);
  EXPECT_EQ(exprText(S.Lo), "0");
}

// Property sweep: the first-order-sum schema is exact for k=1 polynomial
// additive parts — compare against direct iteration.
class SumSchemaProperty : public ::testing::TestWithParam<int> {};

TEST_P(SumSchemaProperty, MatchesDirectIteration) {
  int Degree = GetParam();
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(1), Rational(1)});
  std::vector<ExprRef> Coeffs;
  for (int I = 0; I <= Degree; ++I)
    Coeffs.push_back(makeNumber(I + 1));
  R.Additive = polynomialExpr(Coeffs, "n");
  R.Boundaries.push_back({Rational(0), makeNumber(7)});
  DiffEqSolver Solver;
  SolveResult S = Solver.solve(R);
  ASSERT_FALSE(S.failed());
  EXPECT_TRUE(S.Exact);
  EXPECT_EQ(exprText(S.Lo), exprText(S.Closed)); // exact => Lo == Hi
  double F = 7;
  for (int N = 1; N <= 12; ++N) {
    double G = 0;
    for (int I = 0; I <= Degree; ++I)
      G += (I + 1) * std::pow(N, I);
    F += G;
    auto V = evaluate(S.Closed, {{"n", static_cast<double>(N)}});
    ASSERT_TRUE(V.has_value());
    EXPECT_NEAR(*V, F, 1e-6) << "n=" << N;
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, SumSchemaProperty,
                         ::testing::Values(0, 1, 2, 3, 4));

} // namespace
