//===- tests/soundness_test.cpp - Static bounds vs. dynamic counts --------===//
//
// The paper's soundness theorem (Section 6): the inferred cost function is
// an upper bound on the actual runtime cost, and the inferred output size
// functions bound the actual output sizes.  These property tests check
// both claims *dynamically*: for each benchmark and a sweep of input
// sizes, the statically derived bound must dominate the interpreter's
// exact resolution count (resolutions metric, so the two are in the same
// unit).
//
//===----------------------------------------------------------------------===//

#include "core/GranularityAnalyzer.h"
#include "corpus/Corpus.h"
#include "interp/Interpreter.h"
#include "reader/Parser.h"
#include "size/Measures.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace granlog;

namespace {

struct SoundnessCase {
  const char *Benchmark; ///< corpus program to load
  const char *Pred;      ///< predicate whose bound is checked
  unsigned Arity;
  std::vector<int> Sizes; ///< input parameters to sweep
};

class CostSoundness : public ::testing::TestWithParam<SoundnessCase> {};

TEST_P(CostSoundness, StaticBoundDominatesDynamicCount) {
  const SoundnessCase &C = GetParam();
  const BenchmarkDef *B = findBenchmark(C.Benchmark);
  ASSERT_NE(B, nullptr);

  TermArena Arena;
  Diagnostics Diags;
  std::optional<Program> P = loadProgram(B->Source, Arena, Diags);
  ASSERT_TRUE(P) << Diags.str();

  // Sequential reference pipeline and the SCC-parallel driver: both must
  // produce a sound bound, and the same one.
  AnalyzerOptions Options{CostMetric::resolutions(), 48.0};
  GranularityAnalyzer GA(*P, Options);
  GA.run();
  Options.Jobs = 8;
  GranularityAnalyzer GA8(*P, Options);
  GA8.run();
  const CostAnalysis &Costs = GA.costs();
  Symbol S = Arena.symbols().lookup(C.Pred);
  ASSERT_TRUE(S.isValid());
  Functor F{S, C.Arity};

  for (int N : C.Sizes) {
    // Execute the benchmark goal and count actual resolutions.
    const Term *Goal = B->BuildGoal(Arena, N);
    InterpOptions Options;
    Options.CaptureTree = false;
    Interpreter I(*P, Arena, Options);
    ASSERT_TRUE(I.solve(Goal)) << B->label(N);
    double Actual = static_cast<double>(I.counters().Resolutions);

    // Evaluate the static bound at the sizes of the goal's input
    // arguments (measured with the predicate's own measures).
    const PredicateSizeInfo &SI = GA.sizes().info(F);
    const StructTerm *G = cast<StructTerm>(deref(Goal));
    std::vector<double> InputSizes;
    for (unsigned Pos : GA.modes().inputPositions(F)) {
      MeasureKind M = Pos < SI.Measures.size() ? SI.Measures[Pos]
                                               : MeasureKind::TermSize;
      std::optional<int64_t> Size =
          groundSize(G->arg(Pos), M, Arena.symbols());
      InputSizes.push_back(Size ? static_cast<double>(*Size) : 0.0);
    }
    std::optional<double> Bound = Costs.costAt(F, InputSizes);
    ASSERT_TRUE(Bound.has_value());
    EXPECT_GE(*Bound, Actual)
        << B->label(N) << ": bound " << *Bound << " < actual " << Actual;

    std::optional<double> Bound8 = GA8.costs().costAt(F, InputSizes);
    ASSERT_TRUE(Bound8.has_value());
    EXPECT_EQ(*Bound8, *Bound)
        << B->label(N) << ": parallel driver derived a different bound";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, CostSoundness,
    ::testing::Values(
        SoundnessCase{"fib", "fib", 2, {0, 1, 2, 5, 8, 12, 15}},
        SoundnessCase{"hanoi", "hanoi", 5, {0, 1, 3, 5, 7}},
        SoundnessCase{"quick_sort", "qsort", 2, {0, 1, 5, 20, 75}},
        SoundnessCase{"merge_sort", "msort", 2, {0, 1, 2, 9, 33, 128}},
        SoundnessCase{"double_sum", "dsum", 2, {1, 2, 8, 64, 2048}},
        SoundnessCase{"consistency", "consistency", 1, {0, 1, 2, 7, 100}},
        SoundnessCase{"fft", "fft", 2, {1, 2, 8, 64, 256}},
        SoundnessCase{"flatten", "flatten", 2, {1, 2, 9, 60, 536}},
        SoundnessCase{"tree_traversal", "tsum", 2, {0, 1, 4, 8}},
        SoundnessCase{"lr1_set", "lr1_set", 2, {0, 1, 3, 6}},
        SoundnessCase{"matrix_multi", "mmul", 3, {0, 1, 2, 5, 8}},
        SoundnessCase{"poly_inclusion", "poly_inclusion", 3,
                      {1, 2, 8, 30}}),
    [](const ::testing::TestParamInfo<SoundnessCase> &Info) {
      return Info.param.Benchmark;
    });

/// Output-size soundness: Psi bounds the measured output size.
class SizeSoundness : public ::testing::Test {
protected:
  /// Runs Goal (text) in the context of benchmark \p Bench, then checks
  /// the size of the term bound to the output position against Psi.
  void checkOutput(const char *Bench, const char *Pred, unsigned Arity,
                   const std::vector<int64_t> &InputSizes,
                   const std::string &GoalText, unsigned OutPos) {
    const BenchmarkDef *B = findBenchmark(Bench);
    ASSERT_NE(B, nullptr);
    TermArena Arena;
    Diagnostics Diags;
    std::optional<Program> P = loadProgram(B->Source, Arena, Diags);
    ASSERT_TRUE(P) << Diags.str();
    GranularityAnalyzer GA(*P, {CostMetric::resolutions(), 48.0});
    GA.run();

    const Term *Goal = parseTermText(GoalText, Arena, Diags);
    ASSERT_NE(Goal, nullptr) << Diags.str();
    Interpreter I(*P, Arena);
    ASSERT_TRUE(I.solve(Goal));

    Functor F{Arena.symbols().lookup(Pred), Arity};
    const PredicateSizeInfo &SI = GA.sizes().info(F);
    ASSERT_LT(OutPos, SI.OutputSize.size());
    ASSERT_TRUE(SI.OutputSize[OutPos].Hi);

    std::map<std::string, double> Env;
    std::vector<unsigned> Inputs = GA.modes().inputPositions(F);
    ASSERT_EQ(Inputs.size(), InputSizes.size());
    for (size_t J = 0; J != Inputs.size(); ++J)
      Env[SizeAnalysis::paramName(Inputs[J])] =
          static_cast<double>(InputSizes[J]);
    std::optional<double> Bound = evaluate(SI.OutputSize[OutPos].Hi, Env);
    ASSERT_TRUE(Bound.has_value());

    const StructTerm *G = cast<StructTerm>(deref(Goal));
    MeasureKind M = SI.Measures[OutPos];
    std::optional<int64_t> Actual =
        groundSize(G->arg(OutPos), M, Arena.symbols());
    ASSERT_TRUE(Actual.has_value());
    EXPECT_GE(*Bound + 1e-9, static_cast<double>(*Actual))
        << GoalText << " output measured " << *Actual << " bound "
        << *Bound;
  }
};

TEST_F(SizeSoundness, HanoiMoveList) {
  // Psi bounds the 2^n - 1 move list.
  checkOutput("hanoi", "hanoi", 5, {6, 0, 0, 0}, "hanoi(6, a, b, c, M)", 4);
}

TEST_F(SizeSoundness, QuicksortOutput) {
  checkOutput("quick_sort", "qsort", 2, {6},
              "qsort([3,1,4,1,5,9], S)", 1);
}

TEST_F(SizeSoundness, MergeSortOutput) {
  checkOutput("merge_sort", "msort", 2, {6},
              "msort([3,1,4,1,5,9], S)", 1);
}

TEST_F(SizeSoundness, FlattenOutput) {
  // term_size of the input tree is 11; Psi bounds the 4-element list.
  checkOutput("flatten", "flatten", 2, {11},
              "flatten(node(node(leaf(1), leaf(2)), node(leaf(3), "
              "leaf(4))), F)",
              1);
}

TEST_F(SizeSoundness, Lr1SetOutput) {
  checkOutput("lr1_set", "lr1_set", 2, {3}, "lr1_set(3, S)", 1);
}

} // namespace
