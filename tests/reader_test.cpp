//===- tests/reader_test.cpp - Lexer and parser tests ---------------------===//

#include "reader/Lexer.h"
#include "reader/Parser.h"
#include "term/TermWriter.h"

#include <gtest/gtest.h>

using namespace granlog;

namespace {

class ReaderTest : public ::testing::Test {
protected:
  /// Parses one term and renders it back; "" on error.
  std::string roundTrip(std::string_view Text) {
    TermArena Arena;
    Diagnostics Diags;
    const Term *T = parseTermText(Text, Arena, Diags);
    if (!T)
      return std::string();
    return termText(T, Arena.symbols());
  }

  /// Parses one term and renders it in canonical functor form.
  std::string canonical(std::string_view Text) {
    TermArena Arena;
    Diagnostics Diags;
    const Term *T = parseTermText(Text, Arena, Diags);
    if (!T)
      return std::string();
    return canonicalize(T, Arena.symbols());
  }

  static std::string canonicalize(const Term *T, const SymbolTable &Symbols) {
    T = deref(T);
    switch (T->kind()) {
    case TermKind::Variable: {
      const VarTerm *V = cast<VarTerm>(T);
      return V->name().isValid() ? Symbols.text(V->name()) : "_";
    }
    case TermKind::Atom:
      return Symbols.text(cast<AtomTerm>(T)->name());
    case TermKind::Int:
      return std::to_string(cast<IntTerm>(T)->value());
    case TermKind::Float:
      return std::to_string(cast<FloatTerm>(T)->value());
    case TermKind::Struct: {
      const StructTerm *S = cast<StructTerm>(T);
      std::string R = Symbols.text(S->name());
      R += '(';
      for (unsigned I = 0; I != S->arity(); ++I) {
        if (I)
          R += ',';
        R += canonicalize(S->arg(I), Symbols);
      }
      R += ')';
      return R;
    }
    }
    return "?";
  }
};

TEST_F(ReaderTest, LexerTokenKinds) {
  Diagnostics Diags;
  Lexer Lex("foo Bar 42 3.14 ( ) [ ] , | .", Diags);
  EXPECT_EQ(Lex.next().Kind, TokenKind::Atom);
  EXPECT_EQ(Lex.next().Kind, TokenKind::Variable);
  EXPECT_EQ(Lex.next().Kind, TokenKind::Int);
  EXPECT_EQ(Lex.next().Kind, TokenKind::Float);
  EXPECT_EQ(Lex.next().Kind, TokenKind::LParen);
  EXPECT_EQ(Lex.next().Kind, TokenKind::RParen);
  EXPECT_EQ(Lex.next().Kind, TokenKind::LBracket);
  EXPECT_EQ(Lex.next().Kind, TokenKind::RBracket);
  EXPECT_EQ(Lex.next().Kind, TokenKind::Comma);
  EXPECT_EQ(Lex.next().Kind, TokenKind::Bar);
  EXPECT_EQ(Lex.next().Kind, TokenKind::EndClause);
  EXPECT_EQ(Lex.next().Kind, TokenKind::EndOfFile);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST_F(ReaderTest, LexerSymbolicAtoms) {
  Diagnostics Diags;
  Lexer Lex(":- --> =< \\== .", Diags);
  EXPECT_EQ(Lex.next().Text, ":-");
  EXPECT_EQ(Lex.next().Text, "-->");
  EXPECT_EQ(Lex.next().Text, "=<");
  EXPECT_EQ(Lex.next().Text, "\\==");
}

TEST_F(ReaderTest, LexerClauseEndVsCons) {
  Diagnostics Diags;
  // ".(a,b)" is the cons functor; "." followed by layout ends the clause.
  Lexer Lex("a. b .c", Diags);
  EXPECT_EQ(Lex.next().Text, "a");
  EXPECT_EQ(Lex.next().Kind, TokenKind::EndClause);
  EXPECT_EQ(Lex.next().Text, "b");
  // ".c" is the symbolic atom "." (not a clause end: no layout follows)
  // and then the atom "c".
  Token Dot = Lex.next();
  EXPECT_EQ(Dot.Kind, TokenKind::Atom);
  EXPECT_EQ(Dot.Text, ".");
  EXPECT_EQ(Lex.next().Text, "c");
}

TEST_F(ReaderTest, LexerComments) {
  Diagnostics Diags;
  Lexer Lex("% line comment\nfoo /* block */ bar", Diags);
  EXPECT_EQ(Lex.next().Text, "foo");
  EXPECT_EQ(Lex.next().Text, "bar");
  EXPECT_FALSE(Diags.hasErrors());
}

TEST_F(ReaderTest, LexerUnterminatedBlockComment) {
  Diagnostics Diags;
  Lexer Lex("/* oops", Diags);
  EXPECT_EQ(Lex.next().Kind, TokenKind::Error);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(ReaderTest, LexerQuotedAtom) {
  Diagnostics Diags;
  Lexer Lex("'hello world' 'it''s'", Diags);
  EXPECT_EQ(Lex.next().Text, "hello world");
  EXPECT_EQ(Lex.next().Text, "it's");
}

TEST_F(ReaderTest, LexerNegativeExponentFloat) {
  Diagnostics Diags;
  Lexer Lex("1.5e-3", Diags);
  Token T = Lex.next();
  EXPECT_EQ(T.Kind, TokenKind::Float);
  EXPECT_DOUBLE_EQ(T.FloatValue, 1.5e-3);
}

TEST_F(ReaderTest, ParseSimpleStruct) {
  EXPECT_EQ(canonical("f(a, B, 3)"), "f(a,B,3)");
}

TEST_F(ReaderTest, ParseLists) {
  EXPECT_EQ(canonical("[]"), "[]");
  EXPECT_EQ(canonical("[1,2]"), ".(1,.(2,[]))");
  EXPECT_EQ(canonical("[H|T]"), ".(H,T)");
  EXPECT_EQ(canonical("[a,b|T]"), ".(a,.(b,T))");
}

TEST_F(ReaderTest, ParseClauseOperator) {
  EXPECT_EQ(canonical("p :- q, r"), ":-(p,,(q,r))");
}

TEST_F(ReaderTest, CommaIsRightAssociative) {
  EXPECT_EQ(canonical("a, b, c"), ",(a,,(b,c))");
}

TEST_F(ReaderTest, ParallelConjunctionBindsLooserThanComma) {
  // "a, b & c, d" must read as (a, b) & (c, d).
  EXPECT_EQ(canonical("a, b & c, d"), "&(,(a,b),,(c,d))");
}

TEST_F(ReaderTest, ArithmeticPrecedence) {
  EXPECT_EQ(canonical("1 + 2 * 3"), "+(1,*(2,3))");
  EXPECT_EQ(canonical("1 * 2 + 3"), "+(*(1,2),3)");
  EXPECT_EQ(canonical("1 - 2 - 3"), "-(-(1,2),3)"); // yfx: left assoc
  EXPECT_EQ(canonical("(1 + 2) * 3"), "*(+(1,2),3)");
}

TEST_F(ReaderTest, ComparisonOperators) {
  EXPECT_EQ(canonical("X is Y - 1"), "is(X,-(Y,1))");
  EXPECT_EQ(canonical("E > M"), ">(E,M)");
  EXPECT_EQ(canonical("X =< 3"), "=<(X,3)");
}

TEST_F(ReaderTest, NegativeNumberLiteral) {
  EXPECT_EQ(canonical("-5"), "-5");
  EXPECT_EQ(canonical("X is -5 + 1"), "is(X,+(-5,1))");
}

TEST_F(ReaderTest, PrefixMinusOnVariable) {
  EXPECT_EQ(canonical("-X"), "-(X)");
}

TEST_F(ReaderTest, IfThenElse) {
  EXPECT_EQ(canonical("( a -> b ; c )"), ";(->(a,b),c)");
}

TEST_F(ReaderTest, DirectiveTerm) {
  EXPECT_EQ(canonical(":- mode(p(i,o))"), ":-(mode(p(i,o)))");
}

TEST_F(ReaderTest, SharedVariablesAreIdentical) {
  TermArena Arena;
  Diagnostics Diags;
  const Term *T = parseTermText("f(X, X, Y)", Arena, Diags);
  ASSERT_NE(T, nullptr);
  const StructTerm *S = cast<StructTerm>(T);
  EXPECT_EQ(S->arg(0), S->arg(1));
  EXPECT_NE(S->arg(0), S->arg(2));
}

TEST_F(ReaderTest, UnderscoreAlwaysFresh) {
  TermArena Arena;
  Diagnostics Diags;
  const Term *T = parseTermText("f(_, _)", Arena, Diags);
  ASSERT_NE(T, nullptr);
  const StructTerm *S = cast<StructTerm>(T);
  EXPECT_NE(S->arg(0), S->arg(1));
}

TEST_F(ReaderTest, VariablesScopedPerClause) {
  TermArena Arena;
  Diagnostics Diags;
  Parser P("f(X). g(X).", Arena, Diags);
  const StructTerm *C1 = cast<StructTerm>(P.readClause());
  const StructTerm *C2 = cast<StructTerm>(P.readClause());
  EXPECT_NE(C1->arg(0), C2->arg(0));
}

TEST_F(ReaderTest, ReadMultipleClauses) {
  TermArena Arena;
  Diagnostics Diags;
  Parser P("p(0).\np(N) :- N > 0.\n", Arena, Diags);
  EXPECT_NE(P.readClause(), nullptr);
  EXPECT_NE(P.readClause(), nullptr);
  EXPECT_EQ(P.readClause(), nullptr);
  EXPECT_TRUE(P.atEnd());
  EXPECT_FALSE(Diags.hasErrors());
}

TEST_F(ReaderTest, ErrorOnMissingTerminator) {
  TermArena Arena;
  Diagnostics Diags;
  Parser P("p(1) q", Arena, Diags);
  EXPECT_EQ(P.readClause(), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(ReaderTest, ErrorRecoverySkipsToNextClause) {
  TermArena Arena;
  Diagnostics Diags;
  Parser P("p(] . q(1).", Arena, Diags);
  EXPECT_EQ(P.readClause(), nullptr);
  const Term *Second = P.readClause();
  ASSERT_NE(Second, nullptr);
  EXPECT_EQ(canonicalize(Second, Arena.symbols()), "q(1)");
}

TEST_F(ReaderTest, AtomThenParenWithSpaceIsNotCall) {
  // "f (a)" is the atom f followed by a parenthesized term — in our subset
  // that is a syntax error at the '(' when used as a clause, but inside an
  // operator expression "f" stands alone.  We just check it does not parse
  // as f(a).
  EXPECT_NE(canonical("foo (a)"), "foo(a)");
}

TEST_F(ReaderTest, NestedStructs) {
  EXPECT_EQ(canonical("f(g(h(1)), [a|[b]])"), "f(g(h(1)),.(a,.(b,[])))");
}

TEST_F(ReaderTest, PaperPartitionClause) {
  // The clause from the paper's introduction.
  EXPECT_EQ(canonical("part([E|L], M, U1, [E|U2]) :- E > M, part(L, M, U1, U2)"),
            ":-(part(.(E,L),M,U1,.(E,U2)),,(>(E,M),part(L,M,U1,U2)))");
}

TEST_F(ReaderTest, RoundTripKeepsOperators) {
  EXPECT_EQ(roundTrip("X is Y - 1"), "X is Y - 1");
  EXPECT_EQ(roundTrip("[1,2,3]"), "[1,2,3]");
}

TEST_F(ReaderTest, PathologicallyDeepNestingIsRejectedNotACrash) {
  // Found by fuzzing: 50k-deep nesting overflowed the recursive-descent
  // parser's stack.  Anything deeper than the depth guard must come back
  // as a diagnostic, and the parser must still read the next clause.
  for (const char *Brackets : {"[]", "()"}) {
    std::string Deep = "a(";
    Deep.append(50000, Brackets[0]);
    if (Brackets[0] == '[')
      Deep.append(50000, ']');
    else
      Deep += "0" + std::string(50000, ')');
    Deep += "). next(1).";
    TermArena Arena;
    Diagnostics Diags;
    Parser P(Deep, Arena, Diags);
    EXPECT_EQ(P.readClause(), nullptr);
    EXPECT_TRUE(Diags.hasErrors());
    const Term *Next = P.readClause();
    ASSERT_NE(Next, nullptr);
    EXPECT_EQ(canonicalize(Next, Arena.symbols()), "next(1)");
  }
}

TEST_F(ReaderTest, DepthGuardLeavesRealisticNestingAlone) {
  // 200 levels is far beyond real programs and far below the guard.
  std::string T = std::string(200, '[') + std::string(200, ']');
  EXPECT_EQ(canonical("f(" + T + ")").empty(), false);
}

} // namespace
