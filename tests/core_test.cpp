//===- tests/core_test.cpp - Threshold, analyzer and transform tests ------===//
//
// Validates the granularity-control pipeline end to end, including the
// paper's Section 2 example: a predicate of cost 3n^2 against an overhead
// of 48 units yields the threshold test "size =< 4" (3*4^2 = 48 <= 48,
// 3*5^2 = 75 > 48).
//
//===----------------------------------------------------------------------===//

#include "core/GranularityAnalyzer.h"
#include "core/Transform.h"
#include "term/TermWriter.h"

#include <gtest/gtest.h>

using namespace granlog;

namespace {

TEST(ThresholdTest, PaperSection2Example) {
  // Cost q(n) = 3 n^2, overhead W = 48: threshold K = 4.
  ExprRef Cost = makeScale(Rational(3), makePow(makeVar("n"), makeNumber(2)));
  ThresholdInfo T = computeThreshold(Cost, "n", 48.0);
  EXPECT_EQ(T.Class, GrainClass::RuntimeTest);
  EXPECT_EQ(T.Threshold, 4);
}

TEST(ThresholdTest, InfinityIsAlwaysParallel) {
  ThresholdInfo T = computeThreshold(makeInfinity(), "n", 48.0);
  EXPECT_EQ(T.Class, GrainClass::AlwaysParallel);
}

TEST(ThresholdTest, ConstantBelowOverheadIsAlwaysSequential) {
  ThresholdInfo T = computeThreshold(makeNumber(7), "n", 48.0);
  EXPECT_EQ(T.Class, GrainClass::AlwaysSequential);
}

TEST(ThresholdTest, CostAboveOverheadAtZeroIsAlwaysParallel) {
  ThresholdInfo T = computeThreshold(makeNumber(100), "n", 48.0);
  EXPECT_EQ(T.Class, GrainClass::AlwaysParallel);
}

TEST(ThresholdTest, MultiVariableCostIsAlwaysParallel) {
  ExprRef Cost = makeAdd(makeVar("n1"), makeVar("n2"));
  ThresholdInfo T = computeThreshold(Cost, "n1", 48.0);
  EXPECT_EQ(T.Class, GrainClass::AlwaysParallel);
}

TEST(ThresholdTest, ExponentialCostSmallThreshold) {
  // 2^{n+1} - 1 > 48 iff n >= 5 (2^6-1=63); threshold 4.
  ExprRef Cost =
      makeSub(makePow(makeNumber(2), makeAdd(makeVar("n"), makeNumber(1))),
              makeNumber(1));
  ThresholdInfo T = computeThreshold(Cost, "n", 48.0);
  EXPECT_EQ(T.Class, GrainClass::RuntimeTest);
  EXPECT_EQ(T.Threshold, 4);
}

TEST(ThresholdTest, LinearCostThresholdScalesWithOverhead) {
  ExprRef Cost = makeAdd(makeVar("n"), makeNumber(1)); // n + 1
  EXPECT_EQ(computeThreshold(Cost, "n", 10.0).Threshold, 9);
  EXPECT_EQ(computeThreshold(Cost, "n", 100.0).Threshold, 99);
}

class AnalyzerTest : public ::testing::Test {
protected:
  void analyze(std::string_view Source, double W = 48.0,
               CostMetric Metric = CostMetric::resolutions()) {
    Prog = loadProgram(Source, Arena, Diags);
    ASSERT_TRUE(Prog.has_value()) << Diags.str();
    GA = std::make_unique<GranularityAnalyzer>(*Prog,
                                               AnalyzerOptions{Metric, W});
    GA->run();
  }

  TermArena Arena;
  Diagnostics Diags;
  std::optional<Program> Prog;
  std::unique_ptr<GranularityAnalyzer> GA;
};

const char *FibParSource = R"(
:- mode(fib(i, o)).
:- measure(fib(value, value)).
fib(0, 0).
fib(1, 1).
fib(M, N) :- M > 1, M1 is M - 1, M2 is M - 2,
             fib(M1, N1) & fib(M2, N2), N is N1 + N2.
)";

TEST_F(AnalyzerTest, FibGetsRuntimeTest) {
  analyze(FibParSource, 48.0);
  const PredicateGranularity *G = GA->lookup("fib", 2);
  ASSERT_NE(G, nullptr);
  EXPECT_EQ(G->Threshold.Class, GrainClass::RuntimeTest);
  // Cost(n) = 2^{n+1} - 1 > 48 iff n > 4.
  EXPECT_EQ(G->Threshold.Threshold, 4);
  EXPECT_EQ(G->Threshold.ArgPos, 0);
  EXPECT_EQ(G->TestMeasure, MeasureKind::IntValue);
}

TEST_F(AnalyzerTest, TinyPredicateAlwaysSequential) {
  analyze(R"(
    :- mode(tiny(i)).
    tiny(_).
  )");
  EXPECT_EQ(GA->lookup("tiny", 1)->Threshold.Class,
            GrainClass::AlwaysSequential);
}

TEST_F(AnalyzerTest, UnboundedPredicateAlwaysParallel) {
  analyze(R"(
    :- mode(loop(i)).
    loop(X) :- loop(X).
  )");
  EXPECT_EQ(GA->lookup("loop", 1)->Threshold.Class,
            GrainClass::AlwaysParallel);
}

TEST_F(AnalyzerTest, DirectivesOverrideInference) {
  analyze(R"(
    :- parallel(p/1).
    :- sequential(q/1).
    p(_).
    q(X) :- q(X).
  )");
  EXPECT_EQ(GA->lookup("p", 1)->Threshold.Class, GrainClass::AlwaysParallel);
  EXPECT_EQ(GA->lookup("q", 1)->Threshold.Class,
            GrainClass::AlwaysSequential);
}

TEST_F(AnalyzerTest, ReportMentionsEveryPredicate) {
  analyze(FibParSource);
  std::string R = GA->report();
  EXPECT_NE(R.find("fib/2"), std::string::npos);
  EXPECT_NE(R.find("test:"), std::string::npos);
}

TEST_F(AnalyzerTest, HigherOverheadRaisesThreshold) {
  analyze(FibParSource, 48.0);
  int64_t K48 = GA->lookup("fib", 2)->Threshold.Threshold;
  analyze(FibParSource, 10000.0);
  int64_t K10k = GA->lookup("fib", 2)->Threshold.Threshold;
  EXPECT_GT(K10k, K48);
}

class TransformTest : public AnalyzerTest {
protected:
  std::string bodyOf(const Program &P, std::string_view Name, unsigned Arity,
                     unsigned ClauseIdx) {
    const Predicate *Pred = P.lookup(Name, Arity);
    EXPECT_NE(Pred, nullptr);
    return termText(Pred->clauses()[ClauseIdx].body(), P.symbols());
  }
};

TEST_F(TransformTest, GuardsRecursiveParallelCalls) {
  analyze(FibParSource, 48.0);
  TransformStats Stats;
  Program T = applyGranularityControl(*Prog, *GA, &Stats);
  EXPECT_EQ(Stats.ParallelSites, 1u);
  EXPECT_EQ(Stats.Guarded, 1u);
  std::string Body = bodyOf(T, "fib", 2, 2);
  // The guard tests the first tested goal's input M1 against 4.
  EXPECT_NE(Body.find("$grain_leq(M1,4,value)"), std::string::npos) << Body;
  EXPECT_NE(Body.find("&"), std::string::npos) << Body;
}

TEST_F(TransformTest, SequentializesTinyGoals) {
  // The paper's introduction: a comparison E > M in parallel with a
  // recursive call is never worth a task... here both conjuncts are
  // trivially small predicates.
  analyze(R"(
    :- mode(p(i)).
    p(X) :- a(X) & b(X).
    a(_).
    b(_).
    :- mode(a(i)).
    :- mode(b(i)).
  )");
  TransformStats Stats;
  Program T = applyGranularityControl(*Prog, *GA, &Stats);
  EXPECT_EQ(Stats.Sequentialized, 1u);
  std::string Body = bodyOf(T, "p", 1, 0);
  EXPECT_EQ(Body.find("&"), std::string::npos) << Body;
}

TEST_F(TransformTest, KeepsUnboundedGoalsParallel) {
  analyze(R"(
    :- mode(p(i)).
    :- mode(mystery(i)).
    p(X) :- mystery(X) & mystery(X).
    mystery(X) :- mystery(X).
  )");
  TransformStats Stats;
  Program T = applyGranularityControl(*Prog, *GA, &Stats);
  EXPECT_EQ(Stats.KeptParallel, 1u);
  std::string Body = bodyOf(T, "p", 1, 0);
  EXPECT_NE(Body.find("&"), std::string::npos);
  EXPECT_EQ(Body.find("$grain_leq"), std::string::npos);
}

TEST_F(TransformTest, NestedParallelConjunctions) {
  analyze(R"(
    :- mode(p(i)).
    p(X) :- (a(X) & b(X)), c(X).
    a(_).
    b(_).
    c(_).
    :- mode(a(i)).
    :- mode(b(i)).
    :- mode(c(i)).
  )");
  TransformStats Stats;
  Program T = applyGranularityControl(*Prog, *GA, &Stats);
  EXPECT_EQ(Stats.ParallelSites, 1u);
  EXPECT_EQ(Stats.Sequentialized, 1u);
  std::string Body = bodyOf(T, "p", 1, 0);
  EXPECT_EQ(Body.find("&"), std::string::npos) << Body;
}

TEST_F(TransformTest, ThreeWayConjunctionFlattened) {
  analyze(FibParSource, 48.0);
  // Build a program with a three-goal chain to check '&' flattening.
  TermArena Arena2;
  Diagnostics Diags2;
  auto P2 = loadProgram(R"(
    :- mode(t(i, o)).
    :- measure(t(value, value)).
    t(0, 0).
    t(N, R) :- N > 0, M is N - 1,
               t(M, A) & t(M, B) & t(M, C),
               R is A + B + C.
  )",
                        Arena2, Diags2);
  ASSERT_TRUE(P2) << Diags2.str();
  GranularityAnalyzer GA2(*P2, {CostMetric::resolutions(), 48.0});
  GA2.run();
  TransformStats Stats;
  Program T = applyGranularityControl(*P2, GA2, &Stats);
  EXPECT_EQ(Stats.ParallelSites, 1u); // one flattened site, not two
}

TEST_F(TransformTest, SequentialSpecializationCreatesClones) {
  analyze(FibParSource, 48.0);
  TransformStats Stats;
  TransformOptions Options;
  Options.SequentialSpecialization = true;
  Program T = applyGranularityControl(*Prog, *GA, &Stats, Options);
  EXPECT_EQ(Stats.SeqSpecializations, 1u);
  const Predicate *Clone = T.lookup("fib$seq", 2);
  ASSERT_NE(Clone, nullptr);
  ASSERT_EQ(Clone->clauses().size(), 3u);
  // The clone's recursive clause has no '&', no '$grain_leq', and calls
  // itself (fib$seq), not fib.
  std::string Body =
      termText(Clone->clauses()[2].body(), T.symbols());
  EXPECT_EQ(Body.find("&"), std::string::npos) << Body;
  EXPECT_EQ(Body.find("$grain_leq"), std::string::npos) << Body;
  EXPECT_NE(Body.find("fib$seq"), std::string::npos) << Body;
}

TEST_F(TransformTest, SpecializedGuardEntersCloneWorld) {
  analyze(FibParSource, 48.0);
  TransformStats Stats;
  TransformOptions Options;
  Options.SequentialSpecialization = true;
  Program T = applyGranularityControl(*Prog, *GA, &Stats, Options);
  std::string Body = bodyOf(T, "fib", 2, 2);
  // The sequential branch of the guard calls fib$seq.
  EXPECT_NE(Body.find("fib$seq"), std::string::npos) << Body;
  // The parallel branch still spawns plain fib.
  EXPECT_NE(Body.find("&"), std::string::npos) << Body;
}

TEST_F(TransformTest, SpecializationOnlyClonesParallelReachable) {
  analyze(R"(
    :- mode(top(i, o)).
    :- measure(top(value, value)).
    top(0, 0).
    top(N, R) :- N > 0, M is N - 1,
                 ( top(M, A) & top(M, B) ),
                 helper(A, B, R).
    helper(A, B, R) :- R is A + B.
    :- mode(helper(i, i, o)).
  )");
  TransformStats Stats;
  TransformOptions Options;
  Options.SequentialSpecialization = true;
  Program T = applyGranularityControl(*Prog, *GA, &Stats, Options);
  // helper/3 has no '&' anywhere below it: no clone needed.
  EXPECT_NE(T.lookup("top$seq", 2), nullptr);
  EXPECT_EQ(T.lookup("helper$seq", 3), nullptr);
}

TEST_F(TransformTest, SchemaAblationDisablesControl) {
  // Without the geometric schema, fib's cost equation has no solution:
  // the predicate classifies AlwaysParallel and no guard is inserted.
  TermArena Arena2;
  Diagnostics Diags2;
  auto P2 = loadProgram(FibParSource, Arena2, Diags2);
  ASSERT_TRUE(P2) << Diags2.str();
  AnalyzerOptions Opts{CostMetric::resolutions(), 48.0, {"geometric"}};
  GranularityAnalyzer GA2(*P2, Opts);
  GA2.run();
  EXPECT_TRUE(GA2.lookup("fib", 2)->CostFn->isInfinity());
  EXPECT_EQ(GA2.lookup("fib", 2)->Threshold.Class,
            GrainClass::AlwaysParallel);
  TransformStats Stats;
  Program T = applyGranularityControl(*P2, GA2, &Stats);
  EXPECT_EQ(Stats.Guarded, 0u);
  EXPECT_EQ(Stats.KeptParallel, 1u);
}

TEST_F(TransformTest, TransformPreservesDeclarations) {
  analyze(FibParSource);
  Program T = applyGranularityControl(*Prog, *GA, nullptr);
  const Predicate *Fib = T.lookup("fib", 2);
  ASSERT_NE(Fib, nullptr);
  EXPECT_TRUE(Fib->hasDeclaredModes());
  EXPECT_TRUE(Fib->hasDeclaredMeasures());
  EXPECT_EQ(Fib->clauses().size(), 3u);
}

} // namespace
