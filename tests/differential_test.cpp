//===- tests/differential_test.cpp - Generated corpus vs. interpreter -----===//
//
// Differential soundness over the generated corpus: every generated
// program is executed on the interpreter and its measured resolution
// count compared against the statically inferred cost bound, evaluated at
// the goal's actual input sizes.  The generator's schema templates are
// independent of the analyzer's schema table, so this catches unsound
// closed forms the hand-written corpus misses (it is how the
// divide-and-conquer monomial bug was found).
//
// The bound is an exact rational closed form evaluated in double
// arithmetic, so the comparison allows a relative epsilon (~1e-9) for
// float rounding — e.g. 468.99999999999994 vs an actual count of 469 is
// rounding, not unsoundness.  Programs whose bound degrades to Infinity
// or is unavailable are exempt but counted: the test also asserts that a
// healthy fraction of the corpus yields finite, checkable bounds, so the
// exemption cannot silently swallow the whole test.
//
//===----------------------------------------------------------------------===//

#include "core/GranularityAnalyzer.h"
#include "interp/Interpreter.h"
#include "program/Generator.h"
#include "size/Measures.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace granlog;

namespace {

/// One 50-program slice of the seed-1 corpus (split so ctest runs the
/// slices in parallel and a failure names its neighborhood).
class GeneratedDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(GeneratedDifferential, MeasuredCostNeverExceedsBound) {
  constexpr unsigned SliceSize = 50;
  unsigned Begin = GetParam() * SliceSize;
  unsigned Checked = 0, Exempt = 0;

  for (unsigned I = Begin; I != Begin + SliceSize; ++I) {
    GeneratedProgram G = generateProgram(1, I);
    TermArena Arena;
    Diagnostics Diags;
    std::optional<Program> P = loadProgram(G.Source, Arena, Diags);
    ASSERT_TRUE(P) << G.Name << ":\n" << G.Source << Diags.str();

    GranularityAnalyzer GA(*P, {CostMetric::resolutions(), 48.0});
    GA.run();

    // Execute the generated goal and count actual resolutions.
    const Term *Goal = buildGeneratedGoal(G, Arena, G.DefaultInput);
    InterpOptions IOpts;
    IOpts.CaptureTree = false;
    Interpreter Interp(*P, Arena, IOpts);
    ASSERT_TRUE(Interp.solve(Goal)) << G.Name << ":\n" << G.Source;
    double Actual = static_cast<double>(Interp.counters().Resolutions);

    // Evaluate the entry predicate's bound at the goal's input sizes,
    // measured with the predicate's own measures.
    Symbol S = Arena.symbols().lookup(G.EntryPred);
    ASSERT_TRUE(S.isValid()) << G.Name;
    Functor F{S, G.EntryArity};
    const PredicateSizeInfo &SI = GA.sizes().info(F);
    const StructTerm *GT = cast<StructTerm>(deref(Goal));
    std::vector<double> InputSizes;
    bool Unmeasured = false;
    for (unsigned Pos : GA.modes().inputPositions(F)) {
      MeasureKind M = Pos < SI.Measures.size() ? SI.Measures[Pos]
                                               : MeasureKind::TermSize;
      std::optional<int64_t> Size =
          groundSize(GT->arg(Pos), M, Arena.symbols());
      if (!Size)
        Unmeasured = true;
      InputSizes.push_back(Size ? static_cast<double>(*Size) : 0.0);
    }
    std::optional<double> Bound = GA.costs().costAt(F, InputSizes);
    if (Unmeasured || !Bound || !std::isfinite(*Bound)) {
      ++Exempt; // degraded / unbounded / unmeasurable: exempt but counted
      continue;
    }
    ++Checked;
    EXPECT_LE(Actual, *Bound * (1 + 1e-9) + 1e-6)
        << G.Name << " (input " << G.DefaultInput << ", family "
        << schemaFamilyName(G.Family) << "): bound " << *Bound
        << " < actual " << Actual << "\n"
        << G.Source;
  }

  // The exemption must stay the exception: most of the slice has to
  // produce a finite, checkable bound.
  EXPECT_GE(Checked, SliceSize / 2)
      << "only " << Checked << " of " << SliceSize
      << " programs checkable (" << Exempt << " exempt)";
}

INSTANTIATE_TEST_SUITE_P(Seed1, GeneratedDifferential,
                         ::testing::Range(0u, 4u),
                         [](const ::testing::TestParamInfo<unsigned> &Info) {
                           return "Slice" + std::to_string(Info.param);
                         });

/// The lower-bound mirror: in interval mode every measured execution
/// must do at least the statically promised minimum of work.  A
/// generated goal always succeeds on its first solution (the generator
/// emits deterministic programs), so the failure-free assumption of the
/// lower analysis holds and the measured resolution count is a genuine
/// witness for Lo(sizes) <= actual.
class GeneratedLowerDifferential : public ::testing::TestWithParam<unsigned> {
};

TEST_P(GeneratedLowerDifferential, MeasuredCostNeverBelowLowerBound) {
  constexpr unsigned SliceSize = 50;
  unsigned Begin = GetParam() * SliceSize;
  unsigned Checked = 0, Exempt = 0;

  for (unsigned I = Begin; I != Begin + SliceSize; ++I) {
    GeneratedProgram G = generateProgram(1, I);
    TermArena Arena;
    Diagnostics Diags;
    std::optional<Program> P = loadProgram(G.Source, Arena, Diags);
    ASSERT_TRUE(P) << G.Name << ":\n" << G.Source << Diags.str();

    AnalyzerOptions Opts{CostMetric::resolutions(), 48.0};
    Opts.Bounds = BoundsMode::Both;
    GranularityAnalyzer GA(*P, Opts);
    GA.run();

    const Term *Goal = buildGeneratedGoal(G, Arena, G.DefaultInput);
    InterpOptions IOpts;
    IOpts.CaptureTree = false;
    Interpreter Interp(*P, Arena, IOpts);
    ASSERT_TRUE(Interp.solve(Goal)) << G.Name << ":\n" << G.Source;
    double Actual = static_cast<double>(Interp.counters().Resolutions);

    Symbol S = Arena.symbols().lookup(G.EntryPred);
    ASSERT_TRUE(S.isValid()) << G.Name;
    Functor F{S, G.EntryArity};
    const PredicateSizeInfo &SI = GA.sizes().info(F);
    const StructTerm *GT = cast<StructTerm>(deref(Goal));
    std::vector<double> InputSizes;
    bool Unmeasured = false;
    for (unsigned Pos : GA.modes().inputPositions(F)) {
      MeasureKind M = Pos < SI.Measures.size() ? SI.Measures[Pos]
                                               : MeasureKind::TermSize;
      std::optional<int64_t> Size =
          groundSize(GT->arg(Pos), M, Arena.symbols());
      if (!Size)
        Unmeasured = true;
      InputSizes.push_back(Size ? static_cast<double>(*Size) : 0.0);
    }
    std::optional<double> Lo = GA.costs().costLoAt(F, InputSizes);
    if (Unmeasured || !Lo || !std::isfinite(*Lo)) {
      ++Exempt;
      continue;
    }
    ++Checked;
    EXPECT_GE(Actual, *Lo * (1 - 1e-9) - 1e-6)
        << G.Name << " (input " << G.DefaultInput << ", family "
        << schemaFamilyName(G.Family) << "): lower bound " << *Lo
        << " > actual " << Actual << "\n"
        << G.Source;
  }

  // Lo floors to 0 rather than degrading to Infinity, so nearly the
  // whole slice should be checkable.
  EXPECT_GE(Checked, SliceSize / 2)
      << "only " << Checked << " of " << SliceSize
      << " programs checkable (" << Exempt << " exempt)";
}

INSTANTIATE_TEST_SUITE_P(Seed1, GeneratedLowerDifferential,
                         ::testing::Range(0u, 4u),
                         [](const ::testing::TestParamInfo<unsigned> &Info) {
                           return "Slice" + std::to_string(Info.param);
                         });

} // namespace
