//===- tests/program_print_test.cpp - Printer and misc API tests ----------===//

#include "program/CallGraph.h"
#include "program/Program.h"
#include "reader/Parser.h"

#include <gtest/gtest.h>

using namespace granlog;

namespace {

TEST(ProgramPrintTest, FactsAndRules) {
  TermArena Arena;
  Diagnostics Diags;
  auto P = loadProgram("p(1).\nq(X) :- p(X), p(X).", Arena, Diags);
  ASSERT_TRUE(P) << Diags.str();
  std::string Text = programText(*P);
  EXPECT_NE(Text.find("p(1)."), std::string::npos);
  EXPECT_NE(Text.find("q(X) :-"), std::string::npos);
  EXPECT_NE(Text.find("p(X),p(X)."), std::string::npos);
}

TEST(ProgramPrintTest, RoundTripThroughLoader) {
  // programText output must itself load (clauses only; no directives).
  TermArena Arena;
  Diagnostics Diags;
  auto P = loadProgram(R"(
    app([], L, L).
    app([H|T], L, [H|R]) :- app(T, L, R).
    rev([], []).
    rev([H|T], R) :- rev(T, R1), app(R1, [H], R).
  )",
                       Arena, Diags);
  ASSERT_TRUE(P) << Diags.str();
  std::string Text = programText(*P);

  TermArena Arena2;
  Diagnostics Diags2;
  auto P2 = loadProgram(Text, Arena2, Diags2);
  ASSERT_TRUE(P2) << Diags2.str() << "\nsource was:\n" << Text;
  EXPECT_EQ(P2->lookup("app", 3)->clauses().size(), 2u);
  EXPECT_EQ(P2->lookup("rev", 2)->clauses().size(), 2u);
}

TEST(ProgramPrintTest, GuardedBodyRoundTrips) {
  TermArena Arena;
  Diagnostics Diags;
  auto P = loadProgram(
      "p(X) :- ( '$grain_leq'(X, 4, length) -> q(X), r(X) ; q(X) & r(X) )."
      "\nq(_).\nr(_).",
      Arena, Diags);
  ASSERT_TRUE(P) << Diags.str();
  std::string Text = programText(*P);
  TermArena Arena2;
  Diagnostics Diags2;
  auto P2 = loadProgram(Text, Arena2, Diags2);
  ASSERT_TRUE(P2) << Diags2.str() << "\nsource was:\n" << Text;
}

TEST(SymbolTableTest, InternAndLookup) {
  SymbolTable Symbols;
  Symbol A = Symbols.intern("foo");
  Symbol B = Symbols.intern("foo");
  EXPECT_EQ(A, B);
  EXPECT_EQ(Symbols.text(A), "foo");
  EXPECT_FALSE(Symbols.lookup("bar").isValid());
  EXPECT_TRUE(Symbols.lookup("foo").isValid());
  EXPECT_EQ(Symbols.size(), 1u);
  Functor F{A, 3};
  EXPECT_EQ(Symbols.text(F), "foo/3");
}

TEST(CallGraphTest, SelfRecursionWithoutSelfCallNotRecursive) {
  TermArena Arena;
  Diagnostics Diags;
  auto P = loadProgram("p(X) :- q(X).\nq(X) :- r(X).\nr(1).", Arena, Diags);
  ASSERT_TRUE(P) << Diags.str();
  CallGraph CG(*P);
  Functor Q{Arena.symbols().intern("q"), 1};
  EXPECT_FALSE(CG.isRecursive(Q));
  EXPECT_EQ(CG.numSCCs(), 3u);
}

TEST(CallGraphTest, DiamondTopologicalOrder) {
  TermArena Arena;
  Diagnostics Diags;
  auto P = loadProgram(R"(
    top(X) :- left(X), right(X).
    left(X) :- bottom(X).
    right(X) :- bottom(X).
    bottom(_).
  )",
                       Arena, Diags);
  ASSERT_TRUE(P) << Diags.str();
  CallGraph CG(*P);
  auto Id = [&](const char *N, unsigned A) {
    return CG.sccId(Functor{Arena.symbols().intern(N), A});
  };
  EXPECT_LT(Id("bottom", 1), Id("left", 1));
  EXPECT_LT(Id("bottom", 1), Id("right", 1));
  EXPECT_LT(Id("left", 1), Id("top", 1));
  EXPECT_LT(Id("right", 1), Id("top", 1));
}

TEST(ClauseTextTest, FactHasNoBody) {
  TermArena Arena;
  Diagnostics Diags;
  auto P = loadProgram("f(a, b).", Arena, Diags);
  ASSERT_TRUE(P) << Diags.str();
  EXPECT_EQ(clauseText(P->lookup("f", 2)->clauses()[0], P->symbols()),
            "f(a,b).");
}

} // namespace
