//===- tests/interp_test.cpp - Interpreter tests --------------------------===//

#include "interp/Interpreter.h"
#include "term/TermWriter.h"

#include <gtest/gtest.h>

using namespace granlog;

namespace {

class InterpTest : public ::testing::Test {
protected:
  /// Loads a program and proves a goal; returns success.
  bool prove(std::string_view Source, std::string_view Goal,
             InterpOptions Options = InterpOptions()) {
    Prog.reset();
    Arena = std::make_unique<TermArena>();
    Diagnostics Diags;
    auto P = loadProgram(Source, *Arena, Diags);
    EXPECT_TRUE(P.has_value()) << Diags.str();
    if (!P)
      return false;
    Prog = std::make_unique<Program>(std::move(*P));
    Interp = std::make_unique<Interpreter>(*Prog, *Arena, Options);
    Diagnostics GoalDiags;
    bool Ok = Interp->solveText(Goal, GoalDiags);
    EXPECT_FALSE(GoalDiags.hasErrors()) << GoalDiags.str();
    return Ok;
  }

  std::unique_ptr<TermArena> Arena;
  std::unique_ptr<Program> Prog;
  std::unique_ptr<Interpreter> Interp;
};

const char *ListLib = R"(
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
nrev([], []).
nrev([H|L], R) :- nrev(L, R1), append(R1, [H], R).
len([], 0).
len([_|T], N) :- len(T, M), N is M + 1.
)";

TEST_F(InterpTest, FactsAndFailure) {
  EXPECT_TRUE(prove("p(1).", "p(1)"));
  EXPECT_FALSE(prove("p(1).", "p(2)"));
  EXPECT_FALSE(prove("p(1).", "q(1)")); // undefined predicate fails
}

TEST_F(InterpTest, UnificationBindsOutput) {
  EXPECT_TRUE(prove(ListLib, "append([1,2], [3], [1,2,3])"));
  EXPECT_FALSE(prove(ListLib, "append([1,2], [3], [1,2])"));
  EXPECT_TRUE(prove(ListLib, "append([1,2], [3], X), X == [1,2,3]"));
}

TEST_F(InterpTest, NaiveReverse) {
  EXPECT_TRUE(prove(ListLib, "nrev([1,2,3,4], [4,3,2,1])"));
  EXPECT_TRUE(prove(ListLib, "nrev([1,2,3], R), R == [3,2,1]"));
}

TEST_F(InterpTest, NrevResolutionCountMatchesPaperFormula) {
  // Cost_nrev(n) = 0.5 n^2 + 1.5 n + 1 resolutions, exactly, for the
  // indexed (first-solution) execution.
  for (int N : {0, 1, 5, 10}) {
    std::string List = "[";
    for (int I = 0; I < N; ++I)
      List += (I ? "," : "") + std::to_string(I);
    List += "]";
    ASSERT_TRUE(prove(ListLib, "nrev(" + List + ", _)"));
    uint64_t Expected = N * N / 2 + (3 * N) / 2 + 1 + (N % 2 ? 1 : 0);
    // 0.5n^2 + 1.5n + 1 is an integer for all n; compute exactly:
    Expected = (N * N + 3 * N + 2) / 2;
    EXPECT_EQ(Interp->counters().Resolutions, Expected) << "n=" << N;
  }
}

TEST_F(InterpTest, ArithmeticEvaluation) {
  EXPECT_TRUE(prove("", "X is 2 + 3 * 4, X =:= 14"));
  EXPECT_TRUE(prove("", "X is 10 // 3, X =:= 3"));
  EXPECT_TRUE(prove("", "X is 10 mod 3, X =:= 1"));
  EXPECT_TRUE(prove("", "X is -7, X < 0"));
  EXPECT_TRUE(prove("", "X is min(3, 5), X =:= 3"));
  EXPECT_TRUE(prove("", "X is 2.5 + 1.5, X =:= 4.0"));
  EXPECT_FALSE(prove("", "_ is 1 / 0"));
}

TEST_F(InterpTest, FloatFunctions) {
  EXPECT_TRUE(prove("", "X is sin(0.0), X =:= 0.0"));
  EXPECT_TRUE(prove("", "X is cos(0.0), X =:= 1.0"));
  EXPECT_TRUE(prove("", "X is sqrt(16.0), X =:= 4.0"));
  EXPECT_TRUE(prove("", "X is pi, X > 3.14, X < 3.15"));
}

TEST_F(InterpTest, ComparisonBuiltins) {
  EXPECT_TRUE(prove("", "1 < 2, 2 =< 2, 3 > 2, 3 >= 3, 1 =:= 1, 1 =\\= 2"));
  EXPECT_FALSE(prove("", "2 < 1"));
}

TEST_F(InterpTest, CutCommitsToFirstClause) {
  const char *Src = R"(
    max(X, Y, X) :- X >= Y, !.
    max(_, Y, Y).
  )";
  EXPECT_TRUE(prove(Src, "max(3, 2, M), M == 3"));
  EXPECT_TRUE(prove(Src, "max(2, 3, M), M == 3"));
  // Without the cut, max(3,2,2) would succeed through clause 2; the cut
  // does not block it here because clause 1's head binds M=3 first and
  // fails the continuation... but a direct check:
  EXPECT_TRUE(prove(Src, "max(3, 2, 2)")); // clause 2 still reachable
}

TEST_F(InterpTest, CutPrunesAlternatives) {
  const char *Src = R"(
    first([X|_], X) :- !.
    first(_, none).
    test(R) :- first([a,b], R).
  )";
  EXPECT_TRUE(prove(Src, "test(a)"));
  // With an unbound output, clause 1 commits via the cut; when the
  // continuation then fails, the cut forbids falling back to clause 2.
  EXPECT_FALSE(prove(Src, "first([a,b], R), R == none"));
  // A call whose head fails before reaching the cut still tries clause 2.
  EXPECT_TRUE(prove(Src, "first([a,b], none)"));
}

TEST_F(InterpTest, IfThenElse) {
  const char *Src = R"(
    classify(N, small) :- (N < 10 -> true ; fail).
    sign(N, pos) :- (N > 0 -> true ; fail).
    sign(N, nonpos) :- (N > 0 -> fail ; true).
  )";
  EXPECT_TRUE(prove(Src, "classify(5, small)"));
  EXPECT_FALSE(prove(Src, "classify(50, small)"));
  EXPECT_TRUE(prove(Src, "sign(3, pos)"));
  EXPECT_TRUE(prove(Src, "sign(-3, nonpos)"));
  EXPECT_FALSE(prove(Src, "sign(-3, pos)"));
}

TEST_F(InterpTest, NegationAsFailure) {
  EXPECT_TRUE(prove("p(1).", "\\+ p(2)"));
  EXPECT_FALSE(prove("p(1).", "\\+ p(1)"));
}

TEST_F(InterpTest, Disjunction) {
  EXPECT_TRUE(prove("", "(fail ; true)"));
  EXPECT_TRUE(prove("p(2).", "(p(1) ; p(2))"));
  EXPECT_FALSE(prove("", "(fail ; fail)"));
}

TEST_F(InterpTest, BacktrackingAcrossClauses) {
  const char *Src = R"(
    color(red).
    color(green).
    color(blue).
    likes(green).
  )";
  EXPECT_TRUE(prove(Src, "color(X), likes(X)"));
}

TEST_F(InterpTest, TypeTests) {
  EXPECT_TRUE(prove("", "atom(foo), number(1), integer(2), float(1.5)"));
  EXPECT_TRUE(prove("", "var(_), nonvar(foo), atomic(1)"));
  EXPECT_TRUE(prove("", "is_list([1,2]), \\+ is_list([1|_])"));
}

TEST_F(InterpTest, LengthBuiltin) {
  EXPECT_TRUE(prove("", "length([a,b,c], N), N =:= 3"));
  EXPECT_TRUE(prove("", "length(L, 3), L = [1,2,3]"));
  EXPECT_FALSE(prove("", "length([a|_], _)")); // partial list
}

TEST_F(InterpTest, FunctorAndArg) {
  EXPECT_TRUE(prove("", "functor(f(a,b), F, A), F == f, A =:= 2"));
  EXPECT_TRUE(prove("", "arg(2, f(a,b), X), X == b"));
  EXPECT_FALSE(prove("", "arg(3, f(a,b), _)"));
}

TEST_F(InterpTest, GrainTestBuiltin) {
  EXPECT_TRUE(prove("", "'$grain_leq'([a,b,c], 5, length)"));
  EXPECT_FALSE(prove("", "'$grain_leq'([a,b,c], 2, length)"));
  EXPECT_TRUE(prove("", "'$grain_leq'(7, 10, value)"));
  EXPECT_FALSE(prove("", "'$grain_leq'(12, 10, value)"));
  EXPECT_GE(Interp->counters().GrainTests, 1u);
}

TEST_F(InterpTest, ParallelConjunctionSemanticsEqualSequential) {
  const char *Src = R"(
    p(X, Y) :- q(X) & r(Y).
    q(1).
    r(2).
  )";
  EXPECT_TRUE(prove(Src, "p(1, 2)"));
  EXPECT_FALSE(prove(Src, "p(2, 1)"));
}

TEST_F(InterpTest, ParallelConjunctionBuildsParNode) {
  const char *Src = R"(
    p :- q & r.
    q.
    r.
  )";
  ASSERT_TRUE(prove(Src, "p"));
  std::unique_ptr<CostNode> Tree = Interp->takeTree();
  ASSERT_NE(Tree, nullptr);
  EXPECT_EQ(Tree->parCount(), 1u);
  EXPECT_GT(Tree->totalWork(), 0.0);
}

TEST_F(InterpTest, NestedParallelNodes) {
  const char *Src = R"(
    p :- (a & b) & c.
    a. b. c.
  )";
  ASSERT_TRUE(prove(Src, "p"));
  std::unique_ptr<CostNode> Tree = Interp->takeTree();
  // '&' chains are flattened: one Par with three branches.
  ASSERT_NE(Tree, nullptr);
  EXPECT_EQ(Tree->parCount(), 1u);
}

TEST_F(InterpTest, BetweenGeneratesAndChecks) {
  EXPECT_TRUE(prove("", "between(1, 5, 3)"));
  EXPECT_FALSE(prove("", "between(1, 5, 9)"));
  EXPECT_TRUE(prove("", "between(1, 5, X), X =:= 1"));
  // Backtracks through the range to find a value satisfying the filter.
  EXPECT_TRUE(prove("", "between(1, 10, X), X mod 7 =:= 0, X > 1"));
  EXPECT_FALSE(prove("", "between(3, 2, _)")); // empty range
}

TEST_F(InterpTest, FindallCollectsAllSolutions) {
  const char *Src = R"(
    color(red).
    color(green).
    color(blue).
  )";
  EXPECT_TRUE(prove(Src, "findall(C, color(C), [red, green, blue])"));
  EXPECT_TRUE(prove(Src, "findall(C, color(C), L), length(L, 3)"));
  EXPECT_TRUE(prove("", "findall(X, fail, [])"));
}

TEST_F(InterpTest, FindallWithTemplate) {
  EXPECT_TRUE(prove("", "findall(p(X, Y), (between(1, 2, X), "
                        "between(1, 2, Y)), L), length(L, 4)"));
}

TEST_F(InterpTest, FindallDoesNotLeakBindings) {
  EXPECT_TRUE(
      prove("p(1).", "findall(X, p(X), _), var(Y), Y = 2, Y =:= 2"));
}

TEST_F(InterpTest, DeepRecursionOnLargeStack) {
  // 100k-deep recursion exercises the dedicated large-stack thread.
  const char *Src = R"(
    count(0).
    count(N) :- N > 0, M is N - 1, count(M).
  )";
  EXPECT_TRUE(prove(Src, "count(100000)"));
  EXPECT_EQ(Interp->counters().Resolutions, 100001u);
}

TEST_F(InterpTest, StepLimitAborts) {
  InterpOptions Options;
  Options.StepLimit = 1000;
  EXPECT_FALSE(prove("loop :- loop.", "loop", Options));
  EXPECT_TRUE(Interp->aborted());
}

TEST_F(InterpTest, CountersTrackWork) {
  ASSERT_TRUE(prove(ListLib, "nrev([1,2,3], _)"));
  const InterpCounters &C = Interp->counters();
  EXPECT_GT(C.Resolutions, 0u);
  EXPECT_GT(C.Unifications, 0u);
  EXPECT_GT(C.WorkUnits, 0.0);
  EXPECT_GE(C.Attempts, C.Resolutions);
}

} // namespace
