//===- tests/observability_test.cpp - Stats and provenance tests ----------===//
//
// End-to-end checks of the instrumentation subsystem: phase timers and
// domain counters recorded by GranularityAnalyzer::run(), the explain()
// provenance report (which schema matched, why a bound fell to Infinity,
// how the threshold was derived), and the JSON export.
//
//===----------------------------------------------------------------------===//

#include "core/GranularityAnalyzer.h"
#include "corpus/Corpus.h"
#include "support/Json.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace granlog;

namespace {

struct Analyzed {
  TermArena Arena;
  Diagnostics Diags;
  std::optional<Program> P;
  StatsRegistry Stats;
  std::unique_ptr<GranularityAnalyzer> GA;
};

std::unique_ptr<Analyzed> analyze(const std::string &Source,
                                  double W = 65.0) {
  auto A = std::make_unique<Analyzed>();
  A->P = loadProgram(Source, A->Arena, A->Diags);
  if (!A->P)
    return nullptr;
  AnalyzerOptions Options{CostMetric::resolutions(), W};
  Options.Stats = &A->Stats;
  A->GA = std::make_unique<GranularityAnalyzer>(*A->P, Options);
  A->GA->run();
  return A;
}

} // namespace

TEST(ObservabilityTest, PhaseTimersRecorded) {
  auto A = analyze(findBenchmark("fib")->Source);
  ASSERT_TRUE(A);
  const char *Phases[] = {"phase.total",       "phase.callgraph",
                          "phase.modes",       "phase.determinacy",
                          "phase.size",        "phase.cost",
                          "phase.threshold"};
  for (const char *Phase : Phases) {
    EXPECT_EQ(A->Stats.values().count(Phase), 1u) << Phase;
    EXPECT_GE(A->Stats.value(Phase), 0.0) << Phase;
  }
  // The enclosing total covers each phase.
  EXPECT_GE(A->Stats.value("phase.total"), A->Stats.value("phase.size"));
  // The WAM phase only runs under the Instructions metric.
  EXPECT_EQ(A->Stats.values().count("phase.wam"), 0u);
}

TEST(ObservabilityTest, FibHitsGeometricSchema) {
  auto A = analyze(findBenchmark("fib")->Source);
  ASSERT_TRUE(A);
  EXPECT_EQ(A->Stats.counter("cost.solver.hit.geometric"), 1u);
  EXPECT_EQ(A->Stats.counter("cost.solver.infinity"), 0u);
  EXPECT_EQ(A->Stats.counter("cost.recurrences"), 1u);
  EXPECT_GE(A->Stats.counter("size.solver.solve"), 1u);
}

TEST(ObservabilityTest, ClassCountersSumToPredicates) {
  auto A = analyze(findBenchmark("quick_sort")->Source);
  ASSERT_TRUE(A);
  uint64_t Total = A->Stats.counter("analyzer.predicates");
  EXPECT_GT(Total, 0u);
  EXPECT_EQ(A->Stats.counter("classify.always_sequential") +
                A->Stats.counter("classify.always_parallel") +
                A->Stats.counter("classify.runtime_test"),
            Total);
}

TEST(ObservabilityTest, ExplainNamesSchemaAndThreshold) {
  auto A = analyze(findBenchmark("fib")->Source);
  ASSERT_TRUE(A);
  const PredicateGranularity *G = A->GA->lookup("fib", 2);
  ASSERT_NE(G, nullptr);
  ASSERT_EQ(G->Threshold.Class, GrainClass::RuntimeTest);

  std::string Text = A->GA->explainAll();
  EXPECT_NE(Text.find("fib/2"), std::string::npos);
  EXPECT_NE(Text.find("matched schema: geometric"), std::string::npos);
  EXPECT_NE(Text.find("classification: runtime test"), std::string::npos);
  EXPECT_NE(Text.find("threshold K = " +
                      std::to_string(G->Threshold.Threshold)),
            std::string::npos);
  EXPECT_NE(Text.find("recursion on arg 1"), std::string::npos);
}

TEST(ObservabilityTest, ExplainReportsInfinityReason) {
  // last/2 recurses on a list but calls an undefined predicate, so its
  // cost cannot be bounded: the report must say why, and the analyzer
  // must count the infinity fallback.
  auto A = analyze("last([X], X).\n"
                   "last([_|T], X) :- mystery(T, T1), last(T1, X).\n");
  ASSERT_TRUE(A);
  EXPECT_GE(A->Stats.counter("cost.infinity"), 1u);
  std::string Text = A->GA->explainAll();
  EXPECT_NE(Text.find("infinity because:"), std::string::npos);
  EXPECT_NE(Text.find("always parallel"), std::string::npos);
}

TEST(ObservabilityTest, DirectiveOverrideCounted) {
  auto A = analyze(":- sequential(fib/2).\n"
                   "fib(0, 0).\nfib(1, 1).\n"
                   "fib(M, N) :- M > 1, M1 is M - 1, M2 is M - 2,\n"
                   "    fib(M1, N1) & fib(M2, N2), N is N1 + N2.\n");
  ASSERT_TRUE(A);
  EXPECT_EQ(A->Stats.counter("classify.directive_override"), 1u);
  EXPECT_NE(A->GA->explainAll().find("directive override"),
            std::string::npos);
}

TEST(ObservabilityTest, JsonExportIsValidAndVersioned) {
  auto A = analyze(findBenchmark("fib")->Source);
  ASSERT_TRUE(A);
  JsonWriter W;
  A->GA->writeJson(W);
  const std::string &Doc = W.str();
  EXPECT_TRUE(jsonValidate(Doc));
  EXPECT_NE(Doc.find("\"version\":" + std::to_string(StatsJsonVersion)),
            std::string::npos);
  EXPECT_NE(Doc.find("\"schema\":\"geometric\""), std::string::npos);
  EXPECT_NE(Doc.find("\"class\":\"runtime test\""), std::string::npos);
  EXPECT_NE(Doc.find("\"stats\":"), std::string::npos);
  EXPECT_NE(Doc.find("phase.total"), std::string::npos);
}

TEST(ObservabilityTest, StatsOffLeavesRegistryUntouched) {
  // A null Stats pointer must keep the pipeline silent (the zero-cost
  // contract): analysis runs identically and records nothing anywhere.
  TermArena Arena;
  Diagnostics Diags;
  auto P = loadProgram(findBenchmark("fib")->Source, Arena, Diags);
  ASSERT_TRUE(P);
  GranularityAnalyzer GA(*P, {CostMetric::resolutions(), 65.0});
  GA.run();
  const PredicateGranularity *G = GA.lookup("fib", 2);
  ASSERT_NE(G, nullptr);
  EXPECT_EQ(G->Threshold.Class, GrainClass::RuntimeTest);
  // explain() still works without stats attached.
  EXPECT_NE(GA.explainAll().find("matched schema: geometric"),
            std::string::npos);
}

TEST(ObservabilityTest, RegistryAggregatesAcrossRuns) {
  // One registry attached to two analyses accumulates (CI aggregates a
  // whole corpus into one document).
  StatsRegistry Stats;
  for (int I = 0; I != 2; ++I) {
    TermArena Arena;
    Diagnostics Diags;
    auto P = loadProgram(findBenchmark("fib")->Source, Arena, Diags);
    ASSERT_TRUE(P);
    AnalyzerOptions Options{CostMetric::resolutions(), 65.0};
    Options.Stats = &Stats;
    GranularityAnalyzer GA(*P, Options);
    GA.run();
  }
  EXPECT_EQ(Stats.counter("analyzer.predicates"), 2u);
  EXPECT_EQ(Stats.counter("cost.solver.hit.geometric"), 2u);
}
