//===- tests/runtime_test.cpp - Cost tree and scheduler tests -------------===//

#include "runtime/Scheduler.h"

#include <gtest/gtest.h>

using namespace granlog;

namespace {

/// Convenience: a machine with uniform overhead X.
MachineConfig machine(unsigned P, double Spawn, double Sched, double Join) {
  MachineConfig M;
  M.Processors = P;
  M.SpawnOverhead = Spawn;
  M.SchedOverhead = Sched;
  M.JoinOverhead = Join;
  return M;
}

MachineConfig freeMachine(unsigned P) { return machine(P, 0, 0, 0); }

TEST(CostTreeTest, BuilderAccumulatesWork) {
  CostTreeBuilder B;
  B.addWork(3);
  B.addWork(4);
  std::unique_ptr<CostNode> T = B.finish();
  EXPECT_DOUBLE_EQ(T->totalWork(), 7.0);
  // Adjacent work merges into one leaf.
  ASSERT_EQ(T->Children.size(), 1u);
}

TEST(CostTreeTest, ParStructure) {
  CostTreeBuilder B;
  B.addWork(1);
  B.beginPar();
  B.beginBranch();
  B.addWork(10);
  B.endBranch();
  B.beginBranch();
  B.addWork(20);
  B.endBranch();
  B.endPar();
  B.addWork(2);
  std::unique_ptr<CostNode> T = B.finish();
  EXPECT_DOUBLE_EQ(T->totalWork(), 33.0);
  EXPECT_DOUBLE_EQ(T->criticalPath(), 23.0); // 1 + max(10,20) + 2
  EXPECT_EQ(T->parCount(), 1u);
}

TEST(CostTreeTest, UnwindClosesOpenNodes) {
  CostTreeBuilder B;
  size_t M = B.mark();
  B.beginPar();
  B.beginBranch();
  B.addWork(5);
  B.unwindTo(M);
  B.addWork(1); // lands after the par node, at the root
  std::unique_ptr<CostNode> T = B.finish();
  EXPECT_DOUBLE_EQ(T->totalWork(), 6.0);
}

TEST(SchedulerTest, SequentialTreeIgnoresProcessors) {
  CostTreeBuilder B;
  B.addWork(100);
  std::unique_ptr<CostNode> T = B.finish();
  SimResult R = simulate(*T, freeMachine(4));
  EXPECT_DOUBLE_EQ(R.ParallelTime, 100.0);
  EXPECT_DOUBLE_EQ(R.SequentialTime, 100.0);
  EXPECT_EQ(R.TasksSpawned, 0u);
}

TEST(SchedulerTest, PerfectSplitOnTwoProcessors) {
  CostTreeBuilder B;
  B.beginPar();
  for (int I = 0; I != 2; ++I) {
    B.beginBranch();
    B.addWork(50);
    B.endBranch();
  }
  B.endPar();
  std::unique_ptr<CostNode> T = B.finish();
  SimResult R = simulate(*T, freeMachine(2));
  EXPECT_DOUBLE_EQ(R.ParallelTime, 50.0);
  EXPECT_DOUBLE_EQ(R.speedup(), 2.0);
  EXPECT_EQ(R.TasksSpawned, 1u);
}

TEST(SchedulerTest, MoreBranchesThanProcessors) {
  CostTreeBuilder B;
  B.beginPar();
  for (int I = 0; I != 8; ++I) {
    B.beginBranch();
    B.addWork(10);
    B.endBranch();
  }
  B.endPar();
  std::unique_ptr<CostNode> T = B.finish();
  SimResult R = simulate(*T, freeMachine(4));
  // 8 tasks of 10 units on 4 workers: two waves.
  EXPECT_DOUBLE_EQ(R.ParallelTime, 20.0);
}

TEST(SchedulerTest, OverheadsExtendMakespan) {
  CostTreeBuilder B;
  B.beginPar();
  for (int I = 0; I != 2; ++I) {
    B.beginBranch();
    B.addWork(50);
    B.endBranch();
  }
  B.endPar();
  std::unique_ptr<CostNode> T = B.finish();
  // Spawn 10 (parent), sched 5 (child), join 3 (parent).
  SimResult R = simulate(*T, machine(2, 10, 5, 3));
  // Parent: 10 spawn + 50 inline; child starts at 10, runs 5 + 50 => ends
  // at 65. Parent joins at 65 + 3 = 68.
  EXPECT_DOUBLE_EQ(R.ParallelTime, 68.0);
  EXPECT_DOUBLE_EQ(R.OverheadUnits, 18.0);
  // Sequential time excludes tasking overheads entirely.
  EXPECT_DOUBLE_EQ(R.SequentialTime, 100.0);
}

TEST(SchedulerTest, OneProcessorSerializesEverything) {
  CostTreeBuilder B;
  B.beginPar();
  for (int I = 0; I != 3; ++I) {
    B.beginBranch();
    B.addWork(10);
    B.endBranch();
  }
  B.endPar();
  std::unique_ptr<CostNode> T = B.finish();
  SimResult R = simulate(*T, freeMachine(1));
  EXPECT_DOUBLE_EQ(R.ParallelTime, 30.0);
}

TEST(SchedulerTest, NestedParallelism) {
  // ((10 & 10) & (10 & 10)): 40 units, cp 10.
  CostTreeBuilder B;
  B.beginPar();
  for (int I = 0; I != 2; ++I) {
    B.beginBranch();
    B.beginPar();
    for (int J = 0; J != 2; ++J) {
      B.beginBranch();
      B.addWork(10);
      B.endBranch();
    }
    B.endPar();
    B.endBranch();
  }
  B.endPar();
  std::unique_ptr<CostNode> T = B.finish();
  EXPECT_DOUBLE_EQ(T->criticalPath(), 10.0);
  SimResult R = simulate(*T, freeMachine(4));
  EXPECT_DOUBLE_EQ(R.ParallelTime, 10.0);
  EXPECT_DOUBLE_EQ(R.speedup(), 4.0);
}

TEST(SchedulerTest, UnbalancedBranches) {
  CostTreeBuilder B;
  B.beginPar();
  B.beginBranch();
  B.addWork(90);
  B.endBranch();
  B.beginBranch();
  B.addWork(10);
  B.endBranch();
  B.endPar();
  std::unique_ptr<CostNode> T = B.finish();
  SimResult R = simulate(*T, freeMachine(4));
  EXPECT_DOUBLE_EQ(R.ParallelTime, 90.0); // critical path dominates
}

TEST(SchedulerTest, HighOverheadMakesParallelSlowerThanSequential) {
  // The paper's core premise: tiny grains + high task overhead =>
  // parallel execution is a net loss.
  CostTreeBuilder B;
  for (int I = 0; I != 10; ++I) {
    B.beginPar();
    B.beginBranch();
    B.addWork(1);
    B.endBranch();
    B.beginBranch();
    B.addWork(1);
    B.endBranch();
    B.endPar();
  }
  std::unique_ptr<CostNode> T = B.finish();
  SimResult R = simulate(*T, MachineConfig::rolog());
  EXPECT_GT(R.ParallelTime, R.SequentialTime);
  EXPECT_LT(R.speedup(), 1.0);
}

TEST(SchedulerTest, LargeGrainsGiveGoodSpeedup) {
  CostTreeBuilder B;
  B.beginPar();
  for (int I = 0; I != 4; ++I) {
    B.beginBranch();
    B.addWork(100000);
    B.endBranch();
  }
  B.endPar();
  std::unique_ptr<CostNode> T = B.finish();
  SimResult R = simulate(*T, MachineConfig::rolog());
  EXPECT_GT(R.speedup(), 3.5);
}

TEST(SchedulerTest, DeterministicAcrossRuns) {
  CostTreeBuilder B;
  B.beginPar();
  for (int I = 0; I != 7; ++I) {
    B.beginBranch();
    B.addWork(3 + I);
    B.endBranch();
  }
  B.endPar();
  std::unique_ptr<CostNode> T = B.finish();
  SimResult R1 = simulate(*T, MachineConfig::andProlog());
  SimResult R2 = simulate(*T, MachineConfig::andProlog());
  EXPECT_DOUBLE_EQ(R1.ParallelTime, R2.ParallelTime);
}

TEST(SchedulerTest, PresetsDifferInOverhead) {
  MachineConfig R = MachineConfig::rolog();
  MachineConfig A = MachineConfig::andProlog();
  EXPECT_GT(R.SpawnOverhead, A.SpawnOverhead);
  EXPECT_EQ(R.Processors, 4u);
  EXPECT_EQ(A.Processors, 4u);
}

} // namespace
