//===- tests/corpus_test.cpp - End-to-end benchmark pipeline tests --------===//
//
// For every benchmark of Table 1: load, analyze, transform, execute both
// the uncontrolled and the controlled program on a reduced input, and
// check that (a) both runs succeed, (b) granularity control preserves the
// computed answer, and (c) the simulated times are sane.
//
//===----------------------------------------------------------------------===//

#include "corpus/Harness.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace granlog;

namespace {

/// Reduced inputs so the test suite stays fast.
int smallInput(const BenchmarkDef &B) {
  if (B.Name == "consistency")
    return 64;
  if (B.Name == "fib")
    return 10;
  if (B.Name == "hanoi")
    return 5;
  if (B.Name == "quick_sort")
    return 30;
  if (B.Name == "lr1_set")
    return 3;
  if (B.Name == "double_sum")
    return 256;
  if (B.Name == "fft")
    return 32;
  if (B.Name == "flatten")
    return 64;
  if (B.Name == "matrix_multi")
    return 4;
  if (B.Name == "merge_sort")
    return 32;
  if (B.Name == "poly_inclusion")
    return 8;
  if (B.Name == "tree_traversal")
    return 5;
  return 4;
}

class CorpusPipeline : public ::testing::TestWithParam<const char *> {};

TEST_P(CorpusPipeline, RunsUnderRolog) {
  const BenchmarkDef *B = findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  HarnessConfig Config;
  Config.Machine = MachineConfig::rolog();
  BenchmarkRun Run = runBenchmark(*B, smallInput(*B), Config);
  EXPECT_TRUE(Run.Ok0) << Run.AnalysisReport;
  EXPECT_TRUE(Run.Ok1) << Run.AnalysisReport;
  EXPECT_GT(Run.Sim0.ParallelTime, 0.0);
  EXPECT_GT(Run.Sim1.ParallelTime, 0.0);
  EXPECT_GT(Run.Sim0.SequentialTime, 0.0);
  // The parallel makespan can never beat the critical path or the
  // sequential time divided by the number of processors.
  EXPECT_GE(Run.Sim0.ParallelTime, Run.Sim0.CriticalPath - 1e-9);
  EXPECT_GE(Run.Sim0.ParallelTime * 4, Run.Sim0.SequentialTime - 1e-9);
}

TEST_P(CorpusPipeline, ControlPreservesSemantics) {
  // The controlled program must perform the same logical computation:
  // same resolutions up to the grain tests' control flow, and identical
  // success.  We compare the number of *user-predicate* resolutions; the
  // transformed program may differ only via the added '$grain_leq' tests
  // (which are builtins, not resolutions).
  const BenchmarkDef *B = findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  HarnessConfig Config;
  Config.Machine = MachineConfig::andProlog();
  BenchmarkRun Run = runBenchmark(*B, smallInput(*B), Config);
  ASSERT_TRUE(Run.Ok0);
  ASSERT_TRUE(Run.Ok1);
  EXPECT_EQ(Run.Counters0.Resolutions, Run.Counters1.Resolutions);
  // Work differs only by grain-test charges.
  EXPECT_GE(Run.Counters1.WorkUnits, Run.Counters0.WorkUnits - 1e-9);
}

TEST_P(CorpusPipeline, SequentialSpecializationPreservesSemantics) {
  const BenchmarkDef *B = findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  HarnessConfig Config;
  Config.Machine = MachineConfig::rolog();
  Config.Transform.SequentialSpecialization = true;
  BenchmarkRun Run = runBenchmark(*B, smallInput(*B), Config);
  ASSERT_TRUE(Run.Ok0) << Run.AnalysisReport;
  ASSERT_TRUE(Run.Ok1) << Run.AnalysisReport;
  // The specialized program performs the same logical computation: same
  // resolution count (clones resolve once per original resolution).
  EXPECT_EQ(Run.Counters0.Resolutions, Run.Counters1.Resolutions);
  // And it never tests more than the plain transformed program.
  HarnessConfig Plain = Config;
  Plain.Transform.SequentialSpecialization = false;
  BenchmarkRun PlainRun = runBenchmark(*B, smallInput(*B), Plain);
  EXPECT_LE(Run.Counters1.GrainTests, PlainRun.Counters1.GrainTests);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, CorpusPipeline,
    ::testing::Values("consistency", "fib", "hanoi", "quick_sort",
                      "lr1_set", "double_sum", "fft", "flatten",
                      "matrix_multi", "merge_sort", "poly_inclusion",
                      "tree_traversal"));

TEST(CorpusTest, TwelveBenchmarksRegistered) {
  EXPECT_EQ(benchmarkCorpus().size(), 12u);
  EXPECT_EQ(table2Benchmarks().size(), 4u);
  for (const BenchmarkDef *B : table2Benchmarks())
    ASSERT_NE(B, nullptr);
}

TEST(CorpusTest, DefaultInputsMatchPaper) {
  EXPECT_EQ(findBenchmark("consistency")->DefaultInput, 500);
  EXPECT_EQ(findBenchmark("fib")->DefaultInput, 15);
  EXPECT_EQ(findBenchmark("hanoi")->DefaultInput, 6);
  EXPECT_EQ(findBenchmark("quick_sort")->DefaultInput, 75);
  EXPECT_EQ(findBenchmark("lr1_set")->DefaultInput, 3);
  EXPECT_EQ(findBenchmark("double_sum")->DefaultInput, 2048);
  EXPECT_EQ(findBenchmark("fft")->DefaultInput, 256);
  EXPECT_EQ(findBenchmark("flatten")->DefaultInput, 536);
  EXPECT_EQ(findBenchmark("matrix_multi")->DefaultInput, 8);
  EXPECT_EQ(findBenchmark("merge_sort")->DefaultInput, 128);
  EXPECT_EQ(findBenchmark("poly_inclusion")->DefaultInput, 30);
  EXPECT_EQ(findBenchmark("tree_traversal")->DefaultInput, 8);
}

TEST(CorpusTest, DoubleSumComputesTheSum) {
  // dsum(N) must equal N(N+1)/2 for powers of two.
  const BenchmarkDef *B = findBenchmark("double_sum");
  TermArena Arena;
  Diagnostics Diags;
  auto P = loadProgram(B->Source, Arena, Diags);
  ASSERT_TRUE(P) << Diags.str();
  Interpreter I(*P, Arena);
  ASSERT_TRUE(I.solveText("dsum(256, S), S =:= 32896", Diags))
      << Diags.str();
}

TEST(CorpusTest, QuickSortSortsCorrectly) {
  const BenchmarkDef *B = findBenchmark("quick_sort");
  TermArena Arena;
  Diagnostics Diags;
  auto P = loadProgram(B->Source, Arena, Diags);
  ASSERT_TRUE(P) << Diags.str();
  Interpreter I(*P, Arena);
  ASSERT_TRUE(I.solveText("qsort([5,3,8,1,9,2], [1,2,3,5,8,9])", Diags));
}

TEST(CorpusTest, MergeSortSortsCorrectly) {
  const BenchmarkDef *B = findBenchmark("merge_sort");
  TermArena Arena;
  Diagnostics Diags;
  auto P = loadProgram(B->Source, Arena, Diags);
  ASSERT_TRUE(P) << Diags.str();
  Interpreter I(*P, Arena);
  ASSERT_TRUE(I.solveText("msort([5,3,8,1,9,2], [1,2,3,5,8,9])", Diags));
}

TEST(CorpusTest, HanoiMoveCount) {
  const BenchmarkDef *B = findBenchmark("hanoi");
  TermArena Arena;
  Diagnostics Diags;
  auto P = loadProgram(B->Source, Arena, Diags);
  ASSERT_TRUE(P) << Diags.str();
  Interpreter I(*P, Arena);
  // 2^5 - 1 = 31 moves.
  ASSERT_TRUE(
      I.solveText("hanoi(5, a, b, c, M), length(M, N), N =:= 31", Diags));
}

TEST(CorpusTest, FftPreservesParseval) {
  // Energy conservation: sum |x|^2 == sum |X|^2 / N (within tolerance) —
  // checked in Prolog with a small helper goal.
  const BenchmarkDef *B = findBenchmark("fft");
  TermArena Arena;
  Diagnostics Diags;
  std::string Src = std::string(B->Source) + R"(
    energy([], 0.0).
    energy([c(R, I)|T], E) :- energy(T, E1), E is E1 + R * R + I * I.
  )";
  auto P = loadProgram(Src, Arena, Diags);
  ASSERT_TRUE(P) << Diags.str();
  Interpreter I(*P, Arena);
  ASSERT_TRUE(I.solveText(
      "fft([c(1.0,0.0), c(2.0,0.0), c(3.0,0.0), c(4.0,0.0)], F), "
      "energy([c(1.0,0.0), c(2.0,0.0), c(3.0,0.0), c(4.0,0.0)], Ein), "
      "energy(F, Eout), D is Eout - 4.0 * Ein, D < 0.001, D > -0.001",
      Diags))
      << Diags.str();
}

TEST(CorpusTest, FlattenProducesLeafList) {
  const BenchmarkDef *B = findBenchmark("flatten");
  TermArena Arena;
  Diagnostics Diags;
  auto P = loadProgram(B->Source, Arena, Diags);
  ASSERT_TRUE(P) << Diags.str();
  Interpreter I(*P, Arena);
  ASSERT_TRUE(I.solveText(
      "flatten(node(node(leaf(1), leaf(2)), leaf(3)), [1,2,3])", Diags));
}

TEST(CorpusTest, TreeTraversalSum) {
  const BenchmarkDef *B = findBenchmark("tree_traversal");
  TermArena Arena;
  Diagnostics Diags;
  auto P = loadProgram(B->Source, Arena, Diags);
  ASSERT_TRUE(P) << Diags.str();
  Interpreter I(*P, Arena);
  ASSERT_TRUE(I.solveText(
      "tsum(node(node(leaf(1), leaf(2)), leaf(3)), 6)", Diags));
}

TEST(CorpusTest, MatrixMultiplySmall) {
  const BenchmarkDef *B = findBenchmark("matrix_multi");
  TermArena Arena;
  Diagnostics Diags;
  auto P = loadProgram(B->Source, Arena, Diags);
  ASSERT_TRUE(P) << Diags.str();
  Interpreter I(*P, Arena);
  // [[1,2],[3,4]] x [[5,6],[7,8]]: with B transposed, columns are
  // [5,7] and [6,8]; C = [[19,22],[43,50]].
  ASSERT_TRUE(I.solveText(
      "mmul([[1,2],[3,4]], [[5,7],[6,8]], [[19,22],[43,50]])", Diags));
}

TEST(CorpusTest, PolyInclusionCenterInside) {
  const BenchmarkDef *B = findBenchmark("poly_inclusion");
  TermArena Arena;
  Diagnostics Diags;
  auto P = loadProgram(B->Source, Arena, Diags);
  ASSERT_TRUE(P) << Diags.str();
  Interpreter I(*P, Arena);
  // A unit square; the point (1,1) is inside, (5,5) is outside.
  ASSERT_TRUE(I.solveText(
      "poly_inclusion([pt(1,1), pt(5,5)], "
      "[e(0,0,2,0), e(2,0,2,2), e(2,2,0,2), e(0,2,0,0)], [1, 0])",
      Diags))
      << Diags.str();
}

} // namespace
