//===- tests/incremental_test.cpp - Incremental analysis engine lockdown --===//
//
// The incremental engine's two contracts:
//
//  1. Fingerprint stability: clause reordering, variable renaming and
//     whitespace/comment edits change no fingerprint and invalidate no
//     SCC; a one-literal body edit invalidates exactly the edited SCC and
//     its transitive callers.
//  2. Warm == cold: after any edit sequence, an AnalysisSession's report,
//     provenance text and stats counters are byte-identical to a cold
//     full analysis of the same revision — including counter-budget
//     degradations, which replay from the store.
//
// Plus the persistent solver cache's session-level behavior: roundtrip
// through CacheDir, and corrupt files degrading to a fresh cache with a
// diagnostic rather than UB.
//
//===----------------------------------------------------------------------===//

#include "core/AnalysisSession.h"
#include "core/GranularityAnalyzer.h"
#include "corpus/Corpus.h"
#include "program/Fingerprint.h"
#include "support/Json.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>

using namespace granlog;

namespace {

// app/len/main: three single-predicate SCCs, main calls both others.
constexpr const char BaseSource[] = R"(
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
len([], 0).
len([_|T], N) :- len(T, M), N is M + 1.
main(X, Y, N) :- app(X, Y, Z), len(Z, N).
)";

// The same program: clauses reordered within app, every variable renamed,
// comments and whitespace shuffled.  Must fingerprint identically.
constexpr const char ShuffledSource[] = R"(
% a comment that must never enter a fingerprint
app([A|B], C,     [A|D]) :- app(B, C, D).
app([], Q, Q).

len([], 0).
len([_|Ys], Count) :- len(Ys, Sub),   Count is Sub + 1.
main(Left, Right, Size) :- app(Left, Right, Both), len(Both, Size).
)";

// One literal of len's recursive body edited (+ 1 -> + 2): len and its
// caller main are dirty, app is not.
constexpr const char EditedSource[] = R"(
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
len([], 0).
len([_|T], N) :- len(T, M), N is M + 2.
main(X, Y, N) :- app(X, Y, Z), len(Z, N).
)";

std::optional<Program> load(const char *Source, TermArena &Arena) {
  Diagnostics Diags;
  std::optional<Program> P = loadProgram(Source, Arena, Diags);
  EXPECT_TRUE(P) << Diags.str();
  return P;
}

/// Per-predicate fingerprints keyed by predicate text, so two revisions
/// can be compared without assuming identical symbol ids.
std::map<std::string, uint64_t> predicateFps(const Program &P) {
  std::map<std::string, uint64_t> Out;
  for (const auto &Pred : P.predicates())
    Out[P.symbols().text(Pred->functor())] =
        predicateFingerprint(*Pred, P.symbols());
  return Out;
}

/// Combined SCC fingerprints keyed by the sorted member list's first
/// element (every SCC here is a singleton).
std::map<std::string, uint64_t> combinedFps(const Program &P) {
  CallGraph CG(P);
  SCCFingerprints FP = fingerprintSCCs(P, CG);
  std::map<std::string, uint64_t> Out;
  for (const auto &Pred : P.predicates())
    Out[P.symbols().text(Pred->functor())] =
        FP.Combined[CG.sccId(Pred->functor())];
  return Out;
}

TEST(FingerprintStability, ReorderRenameAndCommentsChangeNothing) {
  TermArena A1, A2;
  std::optional<Program> Base = load(BaseSource, A1);
  std::optional<Program> Shuffled = load(ShuffledSource, A2);
  ASSERT_TRUE(Base && Shuffled);
  EXPECT_EQ(predicateFps(*Base), predicateFps(*Shuffled));
  EXPECT_EQ(combinedFps(*Base), combinedFps(*Shuffled));
}

TEST(FingerprintStability, BodyEditDirtiesExactlyTransitiveCallers) {
  TermArena A1, A2;
  std::optional<Program> Base = load(BaseSource, A1);
  std::optional<Program> Edited = load(EditedSource, A2);
  ASSERT_TRUE(Base && Edited);

  std::map<std::string, uint64_t> P1 = predicateFps(*Base);
  std::map<std::string, uint64_t> P2 = predicateFps(*Edited);
  EXPECT_EQ(P1["app/3"], P2["app/3"]);
  EXPECT_NE(P1["len/2"], P2["len/2"]);
  EXPECT_EQ(P1["main/3"], P2["main/3"]) << "main's own text is unchanged";

  // Combined fingerprints implement the invalidation rule: the edited SCC
  // *and* its transitive caller change; the independent callee does not.
  std::map<std::string, uint64_t> C1 = combinedFps(*Base);
  std::map<std::string, uint64_t> C2 = combinedFps(*Edited);
  EXPECT_EQ(C1["app/3"], C2["app/3"]);
  EXPECT_NE(C1["len/2"], C2["len/2"]);
  EXPECT_NE(C1["main/3"], C2["main/3"]);
}

TEST(SessionTest, ReorderRenameReusesEverySCC) {
  TermArena A1, A2;
  std::optional<Program> Base = load(BaseSource, A1);
  std::optional<Program> Shuffled = load(ShuffledSource, A2);
  ASSERT_TRUE(Base && Shuffled);

  AnalysisSession Session({});
  SessionUpdate First = Session.update(*Base);
  EXPECT_EQ(First.TotalSCCs, 3u);
  EXPECT_EQ(First.AnalyzedSCCs, 3u);
  EXPECT_EQ(First.ReusedSCCs, 0u);

  const SessionUpdate &Second = Session.update(*Shuffled);
  EXPECT_EQ(Second.AnalyzedSCCs, 0u);
  EXPECT_EQ(Second.ReusedSCCs, 3u);
  // Same analysis results, replayed (clause order inside app differs, but
  // size/cost/threshold facts are order-invariant for this program).
  EXPECT_EQ(Second.Report, First.Report);
}

TEST(SessionTest, EditReanalyzesOnlyDirtySCCs) {
  TermArena A1, A2;
  std::optional<Program> Base = load(BaseSource, A1);
  std::optional<Program> Edited = load(EditedSource, A2);
  ASSERT_TRUE(Base && Edited);

  AnalysisSession Session({});
  Session.update(*Base);
  const SessionUpdate &U = Session.update(*Edited);
  EXPECT_EQ(U.TotalSCCs, 3u);
  EXPECT_EQ(U.AnalyzedSCCs, 2u) << "len/2 and its caller main/3";
  EXPECT_EQ(U.ReusedSCCs, 1u) << "app/3 is not affected by the edit";
}

/// Strips the "values" member (wall-clock timers, the only legitimately
/// schedule-dependent data) from a stats JSON document.
std::string stripTimers(std::string S) {
  size_t Pos = S.find("\"values\":{");
  if (Pos == std::string::npos)
    return S;
  size_t End = S.find('}', Pos);
  if (End + 1 < S.size() && S[End + 1] == ',') {
    ++End;
  } else if (Pos > 0 && S[Pos - 1] == ',') {
    --Pos;
  }
  S.erase(Pos, End - Pos + 1);
  return S;
}

struct ColdSnapshot {
  std::string Report;
  std::string ExplainAll;
  std::map<std::string, uint64_t, std::less<>> Counters;
  std::string Json; // timers stripped
};

/// A cold full analysis with an *external* fresh solver cache, matching
/// the session's cache ownership (a run never reports solver.cache.*
/// traffic for a cache it does not own).
ColdSnapshot analyzeCold(const Program &P, const SessionOptions &SO) {
  ColdSnapshot Snap;
  StatsRegistry Stats;
  SolverCache FreshCache;
  std::optional<Budget> RunBudget;
  if (SO.Limits.any())
    RunBudget.emplace(SO.Limits);
  AnalyzerOptions Options{SO.Metric, SO.Overhead};
  Options.DisabledSchemas = SO.DisabledSchemas;
  Options.Stats = &Stats;
  Options.Cache = &FreshCache;
  if (RunBudget)
    Options.Budget = &*RunBudget;
  GranularityAnalyzer GA(P, Options);
  GA.run();
  Snap.Report = GA.report();
  Snap.ExplainAll = GA.explainAll();
  Snap.Counters = Stats.counters();
  JsonWriter W;
  GA.writeJson(W);
  Snap.Json = stripTimers(W.take());
  return Snap;
}

std::string sessionJson(const AnalysisSession &Session) {
  JsonWriter W;
  Session.analyzer()->writeJson(W);
  return stripTimers(W.take());
}

void expectWarmEqualsCold(const AnalysisSession &Session,
                          const SessionUpdate &Warm,
                          const StatsRegistry &WarmStats,
                          const ColdSnapshot &Cold, const std::string &Tag) {
  EXPECT_EQ(Warm.Report, Cold.Report) << Tag;
  EXPECT_EQ(Warm.ExplainAll, Cold.ExplainAll) << Tag;
  EXPECT_EQ(WarmStats.counters(), Cold.Counters) << Tag;
  EXPECT_EQ(sessionJson(Session), Cold.Json) << Tag;
}

TEST(SessionTest, WarmMatchesColdByteForByteAcrossCorpus) {
  // For every corpus benchmark: analyze the base revision, then an edited
  // revision (one appended fact for a fresh predicate — dirties nothing,
  // so the warm path replays every stored SCC).  The warm outputs must be
  // byte-identical to a cold full analysis of the edited revision.
  for (const BenchmarkDef &B : benchmarkCorpus()) {
    TermArena A1, A2;
    Diagnostics D1, D2;
    std::optional<Program> Base = loadProgram(B.Source, A1, D1);
    ASSERT_TRUE(Base) << B.Name << ": " << D1.str();
    std::string Edited = std::string(B.Source) + "\nzzz_probe(0).\n";
    std::optional<Program> Rev2 = loadProgram(Edited, A2, D2);
    ASSERT_TRUE(Rev2) << B.Name << ": " << D2.str();

    SessionOptions SO;
    AnalysisSession Session(SO);
    Session.update(*Base);
    StatsRegistry WarmStats;
    const SessionUpdate &Warm = Session.update(*Rev2, &WarmStats);
    EXPECT_GT(Warm.ReusedSCCs, 0u) << B.Name;
    expectWarmEqualsCold(Session, Warm, WarmStats, analyzeCold(*Rev2, SO),
                         B.Name);
  }
}

TEST(SessionTest, TightBudgetDegradationsReplayExactly) {
  // Counter budgets are metered per SCC, so a replayed SCC must reproduce
  // its degradations — and with them the budget.* counters and any
  // degradation lines in the report — exactly as a cold budgeted run.
  SessionOptions SO;
  SO.Limits.ExprNodes = 400;
  SO.Limits.SolverSteps = 6;
  SO.Limits.NormalizeSteps = 4;
  for (const BenchmarkDef &B : benchmarkCorpus()) {
    TermArena Arena;
    Diagnostics Diags;
    std::optional<Program> P = loadProgram(B.Source, Arena, Diags);
    ASSERT_TRUE(P) << B.Name << ": " << Diags.str();

    AnalysisSession Session(SO);
    Session.update(*P);
    StatsRegistry WarmStats;
    const SessionUpdate &Warm = Session.update(*P, &WarmStats);
    EXPECT_EQ(Warm.AnalyzedSCCs, 0u) << B.Name;
    expectWarmEqualsCold(Session, Warm, WarmStats, analyzeCold(*P, SO),
                         B.Name);
  }
}

TEST(SessionTest, DeadlineBudgetsAreNeverStored) {
  // Wall-clock budgets make results time-dependent; storing them would
  // let one lucky run leak into every later revision.  The session must
  // re-analyze everything on every update instead.
  TermArena Arena;
  std::optional<Program> P = load(BaseSource, Arena);
  ASSERT_TRUE(P);
  SessionOptions SO;
  SO.Limits.TimeoutMs = 1000 * 60 * 60; // far away; storability is what
                                        // matters, not expiry
  AnalysisSession Session(SO);
  Session.update(*P);
  const SessionUpdate &Second = Session.update(*P);
  EXPECT_EQ(Second.ReusedSCCs, 0u);
  EXPECT_EQ(Second.AnalyzedSCCs, Second.TotalSCCs);
}

TEST(SessionTest, PersistentCacheRoundtrip) {
  std::filesystem::path Dir =
      std::filesystem::path(::testing::TempDir()) / "granlog_session_cache";
  std::filesystem::remove_all(Dir);

  SessionOptions SO;
  SO.CacheDir = Dir.string();
  TermArena Arena;
  std::optional<Program> P = load(BaseSource, Arena);
  ASSERT_TRUE(P);

  std::string ColdReport;
  {
    AnalysisSession Session(SO);
    EXPECT_EQ(Session.cacheLoadWarning(), "");
    ColdReport = Session.update(*P).Report;
  } // destructor saves
  EXPECT_TRUE(std::filesystem::exists(Dir / "solver-cache.json"));

  // A second session starts with an empty result store but a warm disk
  // cache: it re-analyzes every SCC, yet its solver lookups are served
  // from disk-loaded entries.
  AnalysisSession Session(SO);
  EXPECT_EQ(Session.cacheLoadWarning(), "");
  const SessionUpdate &U = Session.update(*P);
  EXPECT_EQ(U.AnalyzedSCCs, U.TotalSCCs);
  EXPECT_EQ(U.Report, ColdReport);
  EXPECT_GT(Session.solverCache().diskHits(), 0u);

  StatsRegistry Stats;
  Session.recordIncrementalStats(&Stats);
  auto Counters = Stats.counters();
  EXPECT_GT(Counters["incremental.disk.hits"], 0u);
  EXPECT_EQ(Counters["incremental.updates"], 1u);

  std::filesystem::remove_all(Dir);
}

TEST(SessionTest, CorruptCacheFileDegradesToFreshCache) {
  std::filesystem::path Dir =
      std::filesystem::path(::testing::TempDir()) / "granlog_corrupt_cache";
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  {
    std::ofstream Out(Dir / "solver-cache.json");
    Out << "{ this is not JSON at all";
  }

  SessionOptions SO;
  SO.CacheDir = Dir.string();
  AnalysisSession Session(SO);
  EXPECT_NE(Session.cacheLoadWarning().find("fresh cache"), std::string::npos)
      << Session.cacheLoadWarning();

  // The session still analyzes correctly on the fresh cache...
  TermArena Arena;
  std::optional<Program> P = load(BaseSource, Arena);
  ASSERT_TRUE(P);
  const SessionUpdate &U = Session.update(*P);
  EXPECT_EQ(U.Report, analyzeCold(*P, SO).Report);

  // ...and the save path replaces the corrupt file with a valid one.
  std::string Error;
  EXPECT_TRUE(Session.save(&Error)) << Error;
  std::ifstream In(Dir / "solver-cache.json");
  std::string Saved((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  EXPECT_TRUE(jsonValidate(Saved));

  std::filesystem::remove_all(Dir);
}

} // namespace
