//===- tests/measures_test.cpp - Size measure unit tests ------------------===//
//
// Direct tests of the |.|_m functions of Section 3 (ground sizes, minimum
// pattern sizes, measure inference) and of the trust-expression parser.
//
//===----------------------------------------------------------------------===//

#include "reader/Parser.h"
#include "size/Measures.h"
#include "size/SizeAnalysis.h"

#include <gtest/gtest.h>

using namespace granlog;

namespace {

class MeasuresTest : public ::testing::Test {
protected:
  const Term *term(std::string_view Text) {
    const Term *T = parseTermText(Text, Arena, Diags);
    EXPECT_NE(T, nullptr) << Diags.str();
    return T;
  }

  std::optional<int64_t> size(std::string_view Text, MeasureKind M) {
    return groundSize(term(Text), M, Arena.symbols());
  }

  std::optional<int64_t> minSize(std::string_view Text, MeasureKind M) {
    return minPatternSize(term(Text), M, Arena.symbols());
  }

  TermArena Arena;
  Diagnostics Diags;
};

TEST_F(MeasuresTest, ListLengthOnGroundLists) {
  // |[a,b]|_list_length = 2 (the paper's own example).
  EXPECT_EQ(size("[a, b]", MeasureKind::ListLength), 2);
  EXPECT_EQ(size("[]", MeasureKind::ListLength), 0);
  EXPECT_EQ(size("[1,2,3,4,5]", MeasureKind::ListLength), 5);
}

TEST_F(MeasuresTest, ListLengthUndefinedElsewhere) {
  // |f(a)|_list_length = bottom (the paper's example).
  EXPECT_FALSE(size("f(a)", MeasureKind::ListLength).has_value());
  EXPECT_FALSE(size("[1|foo]", MeasureKind::ListLength).has_value());
}

TEST_F(MeasuresTest, TermSizeCountsSymbols) {
  EXPECT_EQ(size("a", MeasureKind::TermSize), 1);
  EXPECT_EQ(size("f(a)", MeasureKind::TermSize), 2);
  EXPECT_EQ(size("f(a, g(b))", MeasureKind::TermSize), 4);
  // [a] = '.'(a, []) = 3 symbols.
  EXPECT_EQ(size("[a]", MeasureKind::TermSize), 3);
}

TEST_F(MeasuresTest, TermDepth) {
  EXPECT_EQ(size("a", MeasureKind::TermDepth), 0);
  EXPECT_EQ(size("f(a)", MeasureKind::TermDepth), 1);
  // The paper: diff_term_depth(f(a, g(X)), X) = 2 — i.e. the g branch is
  // at depth 2.
  EXPECT_EQ(size("f(a, g(b))", MeasureKind::TermDepth), 2);
}

TEST_F(MeasuresTest, IntValue) {
  EXPECT_EQ(size("42", MeasureKind::IntValue), 42);
  EXPECT_EQ(size("-3", MeasureKind::IntValue), -3);
  EXPECT_FALSE(size("foo", MeasureKind::IntValue).has_value());
  EXPECT_FALSE(size("1.5", MeasureKind::IntValue).has_value());
}

TEST_F(MeasuresTest, VoidAlwaysUndefined) {
  EXPECT_FALSE(size("42", MeasureKind::Void).has_value());
}

TEST_F(MeasuresTest, NonGroundSizesUndefined) {
  EXPECT_FALSE(size("[a|T]", MeasureKind::ListLength).has_value());
  EXPECT_FALSE(size("f(X)", MeasureKind::TermSize).has_value());
}

TEST_F(MeasuresTest, MinPatternSizeListLength) {
  // A pattern with an open tail matches lists of length >= visible cells.
  EXPECT_EQ(minSize("[A|T]", MeasureKind::ListLength), 1);
  EXPECT_EQ(minSize("[A, B|T]", MeasureKind::ListLength), 2);
  EXPECT_EQ(minSize("[]", MeasureKind::ListLength), 0);
}

TEST_F(MeasuresTest, MinPatternSizeTermSize) {
  // leaf(X): the functor plus at least a constant for X.
  EXPECT_EQ(minSize("leaf(X)", MeasureKind::TermSize), 2);
  EXPECT_EQ(minSize("node(L, R)", MeasureKind::TermSize), 3);
  EXPECT_EQ(minSize("X", MeasureKind::TermSize), 1);
}

TEST_F(MeasuresTest, MinPatternSizeIntValueNeedsGround) {
  EXPECT_EQ(minSize("7", MeasureKind::IntValue), 7);
  EXPECT_FALSE(minSize("X", MeasureKind::IntValue).has_value());
}

TEST_F(MeasuresTest, MeasureNamesRoundTrip) {
  EXPECT_STREQ(measureName(MeasureKind::ListLength), "length");
  EXPECT_STREQ(measureName(MeasureKind::TermSize), "size");
  EXPECT_STREQ(measureName(MeasureKind::TermDepth), "depth");
  EXPECT_STREQ(measureName(MeasureKind::IntValue), "value");
  EXPECT_STREQ(measureName(MeasureKind::Void), "void");
}

TEST_F(MeasuresTest, MeasureRankOrdering) {
  EXPECT_GT(measureRank(MeasureKind::ListLength),
            measureRank(MeasureKind::IntValue));
  EXPECT_GT(measureRank(MeasureKind::IntValue),
            measureRank(MeasureKind::TermSize));
  EXPECT_GT(measureRank(MeasureKind::TermSize),
            measureRank(MeasureKind::Void));
}

class MeasureInferenceTest : public ::testing::Test {
protected:
  std::vector<MeasureKind> infer(std::string_view Source,
                                 std::string_view Pred, unsigned Arity) {
    auto P = loadProgram(Source, Arena, Diags);
    EXPECT_TRUE(P.has_value()) << Diags.str();
    const Predicate *PP = P->lookup(Pred, Arity);
    EXPECT_NE(PP, nullptr);
    return inferMeasures(*PP, Arena.symbols());
  }

  TermArena Arena;
  Diagnostics Diags;
};

TEST_F(MeasureInferenceTest, ListPatternsGiveLength) {
  auto M = infer("len([], 0).\nlen([_|T], N) :- len(T, M), N is M + 1.",
                 "len", 2);
  EXPECT_EQ(M[0], MeasureKind::ListLength);
  EXPECT_EQ(M[1], MeasureKind::IntValue);
}

TEST_F(MeasureInferenceTest, ArithmeticGivesValue) {
  auto M = infer("tick(N) :- N > 0.", "tick", 1);
  EXPECT_EQ(M[0], MeasureKind::IntValue);
}

TEST_F(MeasureInferenceTest, DefaultIsTermSize) {
  auto M = infer("any(_).", "any", 1);
  EXPECT_EQ(M[0], MeasureKind::TermSize);
}

TEST_F(MeasureInferenceTest, SharedVariableUnifiesMeasures) {
  // append([], L, L): the pass-through clause connects positions 2 and 3.
  auto M = infer("app([], L, L).\napp([H|T], L, [H|R]) :- app(T, L, R).",
                 "app", 3);
  EXPECT_EQ(M[1], MeasureKind::ListLength);
  EXPECT_EQ(M[2], MeasureKind::ListLength);
}

TEST_F(MeasureInferenceTest, DeclarationWins) {
  auto M = infer(":- measure(len(size, void)).\nlen([], 0).", "len", 2);
  EXPECT_EQ(M[0], MeasureKind::TermSize);
  EXPECT_EQ(M[1], MeasureKind::Void);
}

class TrustExprTest : public ::testing::Test {
protected:
  double eval(std::string_view Text,
              std::map<std::string, double> Env = {{"n1", 4}, {"n2", 5}}) {
    const Term *T = parseTermText(Text, Arena, Diags);
    EXPECT_NE(T, nullptr) << Diags.str();
    auto V = evaluate(trustTermToExpr(T, Arena.symbols()), Env);
    EXPECT_TRUE(V.has_value());
    return V.value_or(-1);
  }

  TermArena Arena;
  Diagnostics Diags;
};

TEST_F(TrustExprTest, Arithmetic) {
  EXPECT_DOUBLE_EQ(eval("n1 + n2 + 1"), 10.0);
  EXPECT_DOUBLE_EQ(eval("n1 * n2"), 20.0);
  EXPECT_DOUBLE_EQ(eval("n1 - 1"), 3.0);
  EXPECT_DOUBLE_EQ(eval("n1 / 2"), 2.0);
  EXPECT_DOUBLE_EQ(eval("2 ^ n1"), 16.0);
  EXPECT_DOUBLE_EQ(eval("max(n1, n2)"), 5.0);
  EXPECT_DOUBLE_EQ(eval("min(n1, n2)"), 4.0);
  EXPECT_DOUBLE_EQ(eval("log2(n1)"), 2.0);
}

TEST_F(TrustExprTest, UnknownsBecomeInfinity) {
  TermArena A2;
  Diagnostics D2;
  const Term *T = parseTermText("mystery(n1)", A2, D2);
  EXPECT_TRUE(trustTermToExpr(T, A2.symbols())->isInfinity());
  const Term *T2 = parseTermText("inf", A2, D2);
  EXPECT_TRUE(trustTermToExpr(T2, A2.symbols())->isInfinity());
}

} // namespace
