//===- tests/solver_cache_test.cpp - Recurrence memo-table properties -----===//
//
// The cache invariants the parallel pipeline's determinism rests on:
//
//  1. cache-on == cache-off: for randomized recurrences, solving through a
//     SolverCache yields exactly the SolveResult of the direct schema-table
//     walk (closed form text, schema name, exactness, Why).
//  2. canonical-key invariance: renaming the recursion variable and the
//     free variables of an equation does not change its cache key, so
//     structurally identical equations share one entry.
//  3. exactly-once solving: the miss count equals the number of distinct
//     keys, from any number of threads.
//
//===----------------------------------------------------------------------===//

#include "diffeq/SolverCache.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace granlog;

namespace {

/// Deterministic 64-bit LCG (tests must not depend on global random state).
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 33;
  }
  int64_t range(int64_t Lo, int64_t Hi) { // inclusive
    return Lo + static_cast<int64_t>(next() % (Hi - Lo + 1));
  }
};

/// A randomized but well-formed recurrence over variable \p Var:
/// shift and/or divide self-terms, a small polynomial additive part
/// (possibly mentioning a free variable), and 1-2 boundary conditions.
Recurrence randomRecurrence(Lcg &Rng, const std::string &Var,
                            const std::string &FreeVar) {
  Recurrence R;
  R.Function = "f" + std::to_string(Rng.range(0, 3));
  R.Var = Var;
  int Shape = static_cast<int>(Rng.range(0, 2));
  if (Shape == 0 || Shape == 2) {
    unsigned Terms = static_cast<unsigned>(Rng.range(1, 2));
    for (unsigned I = 0; I != Terms; ++I)
      R.ShiftTerms.push_back(
          {Rational(Rng.range(1, 3)), Rational(Rng.range(1, 2))});
  }
  if (Shape == 1) {
    R.DivideTerms.push_back({Rational(Rng.range(1, 2)),
                             Rational(Rng.range(2, 4)),
                             Rational(Rng.range(0, 1))});
  }
  switch (Rng.range(0, 3)) {
  case 0:
    R.Additive = makeNumber(Rng.range(0, 9));
    break;
  case 1:
    R.Additive = makeAdd(makeVar(Var), makeNumber(Rng.range(0, 4)));
    break;
  case 2:
    R.Additive = makeMul(makeNumber(Rng.range(1, 3)), makeVar(FreeVar));
    break;
  default:
    R.Additive = makeAdd(makeMul(makeVar(Var), makeVar(FreeVar)),
                         makeNumber(1));
    break;
  }
  R.Boundaries.push_back({Rational(0), makeNumber(Rng.range(0, 3))});
  if (Rng.range(0, 1))
    R.Boundaries.push_back({Rational(1), makeVar(FreeVar)});
  return R;
}

void expectSameResult(const SolveResult &A, const SolveResult &B,
                      const Recurrence &R) {
  EXPECT_EQ(exprText(A.Closed), exprText(B.Closed)) << R.str();
  EXPECT_EQ(A.SchemaName, B.SchemaName) << R.str();
  EXPECT_EQ(A.Exact, B.Exact) << R.str();
  EXPECT_EQ(A.Why, B.Why) << R.str();
  // Both readings of the entry must replay: the lower closed form is part
  // of every stored result since DiskFormatVersion 2.
  ASSERT_TRUE(A.Lo) << R.str();
  ASSERT_TRUE(B.Lo) << R.str();
  EXPECT_EQ(exprText(A.Lo), exprText(B.Lo)) << R.str();
}

TEST(SolverCacheTest, CacheOnEqualsCacheOffRandomized) {
  Lcg Rng(20260806);
  DiffEqSolver Direct;
  DiffEqSolver Cached;
  SolverCache Cache;
  Cached.setCache(&Cache);
  for (int I = 0; I != 400; ++I) {
    Recurrence R = randomRecurrence(Rng, "n1", "n2");
    SolveResult Want = Direct.solve(R);
    SolveResult Got = Cached.solve(R);
    expectSameResult(Got, Want, R);
    // Replay: a hit must reproduce the identical result.
    SolveResult Again = Cached.solve(R);
    expectSameResult(Again, Want, R);
  }
  EXPECT_GT(Cache.hits(), 0u);   // 400 draws from a small shape space
  EXPECT_EQ(Cache.entries(), Cache.misses());
}

TEST(SolverCacheTest, KeyInvariantUnderVariableRenaming) {
  Lcg Rng(42);
  for (int I = 0; I != 200; ++I) {
    Recurrence R = randomRecurrence(Rng, "n1", "n2");
    Recurrence Renamed = R;
    Renamed.Var = "m";
    Renamed.Additive = substituteVar(
        substituteVar(R.Additive, "n1", makeVar("m")), "n2", makeVar("k"));
    for (Boundary &B : Renamed.Boundaries)
      B.Value = substituteVar(substituteVar(B.Value, "n1", makeVar("m")),
                              "n2", makeVar("k"));
    Renamed.Function = "other";

    auto C1 = SolverCache::canonicalize(R);
    auto C2 = SolverCache::canonicalize(Renamed);
    ASSERT_TRUE(C1.has_value()) << R.str();
    ASSERT_TRUE(C2.has_value()) << Renamed.str();
    EXPECT_EQ(C1->Key, C2->Key) << R.str() << " vs " << Renamed.str();
  }
}

TEST(SolverCacheTest, RenamedEquationsShareOneEntry) {
  DiffEqSolver Solver;
  SolverCache Cache;
  Solver.setCache(&Cache);

  Recurrence R;
  R.Function = "cost:nrev/2";
  R.Var = "n1";
  R.ShiftTerms.push_back({Rational(1), Rational(1)});
  R.Additive = makeAdd(makeVar("n1"), makeNumber(2));
  R.Boundaries.push_back({Rational(0), makeNumber(1)});

  Recurrence S = R;
  S.Function = "psi:append/3#2";
  S.Var = "n7";
  S.Additive = makeAdd(makeVar("n7"), makeNumber(2));

  SolveResult A = Solver.solve(R);
  SolveResult B = Solver.solve(S);
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.entries(), 1u);
  // The replayed closed form is renamed back to the second equation's
  // variable: evaluating both at the same point must agree.
  EXPECT_EQ(exprText(B.Closed),
            exprText(substituteVar(A.Closed, "n1", makeVar("n7"))));
}

TEST(SolverCacheTest, DistinctEquationsGetDistinctKeys) {
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(2), Rational(1)});
  R.Additive = makeNumber(1);
  R.Boundaries.push_back({Rational(0), makeNumber(0)});

  Recurrence S = R; // different coefficient
  S.ShiftTerms[0].Coeff = Rational(3);
  Recurrence T = R; // different boundary point
  T.Boundaries[0].At = Rational(1);
  Recurrence U = R; // divide instead of shift
  U.ShiftTerms.clear();
  U.DivideTerms.push_back({Rational(2), Rational(2), Rational(0)});
  Recurrence V = U; // same equation, different divide offset
  V.DivideTerms[0].Offset = Rational(1);

  std::vector<SolverCache::CacheKey> Keys = {
      SolverCache::canonicalize(R)->Key, SolverCache::canonicalize(S)->Key,
      SolverCache::canonicalize(T)->Key, SolverCache::canonicalize(U)->Key,
      SolverCache::canonicalize(V)->Key};
  for (size_t I = 0; I != Keys.size(); ++I)
    for (size_t J = I + 1; J != Keys.size(); ++J)
      EXPECT_FALSE(Keys[I] == Keys[J])
          << "equations " << I << " and " << J
          << " must have distinct cache keys";
}

TEST(SolverCacheTest, BypassesEquationsWithUnknownCalls) {
  // An additive part still containing unknown function calls is diagnosed
  // with an equation-specific Why by the solver; caching it under a
  // canonical name would replay the wrong diagnostic.
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(1), Rational(1)});
  R.Additive = makeCall("cost:mystery", {makeVar("n")});
  R.Boundaries.push_back({Rational(0), makeNumber(0)});
  EXPECT_FALSE(SolverCache::canonicalize(R).has_value());

  DiffEqSolver Solver;
  SolverCache Cache;
  Solver.setCache(&Cache);
  SolveResult Res = Solver.solve(R);
  DiffEqSolver Direct;
  expectSameResult(Res, Direct.solve(R), R);
  EXPECT_EQ(Cache.entries(), 0u);
  EXPECT_EQ(Cache.misses(), 0u);
}

TEST(SolverCacheTest, BypassesReservedVariableNames) {
  Recurrence R;
  R.Function = "f";
  R.Var = "_g0"; // would collide with the canonical names
  R.ShiftTerms.push_back({Rational(1), Rational(1)});
  R.Additive = makeNumber(1);
  R.Boundaries.push_back({Rational(0), makeNumber(0)});
  EXPECT_FALSE(SolverCache::canonicalize(R).has_value());
}

TEST(SolverCacheTest, TableSignatureNamespacesAblations) {
  // The same equation solved by a full table and by an ablated table must
  // not share an entry (their closed forms differ).
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.DivideTerms.push_back({Rational(2), Rational(2), Rational(0)});
  R.Additive = makeVar("n");
  R.Boundaries.push_back({Rational(1), makeNumber(1)});

  SolverCache Cache;
  DiffEqSolver Full;
  Full.setCache(&Cache);
  DiffEqSolver Ablated;
  Ablated.disableSchema("divide-and-conquer");
  Ablated.setCache(&Cache);

  SolveResult A = Full.solve(R);
  SolveResult B = Ablated.solve(R);
  EXPECT_EQ(A.SchemaName, "divide-and-conquer");
  EXPECT_NE(exprText(A.Closed), exprText(B.Closed));
  EXPECT_EQ(Cache.entries(), 2u);
}

TEST(SolverCacheTest, MissCountEqualsDistinctKeysUnderThreads) {
  // 8 threads x 64 solves over 16 distinct equations: call_once makes the
  // miss count exactly 16 regardless of interleaving, and every result
  // matches the direct solve.
  std::vector<Recurrence> Eqs;
  for (int I = 0; I != 16; ++I) {
    Recurrence R;
    R.Function = "f";
    R.Var = "n";
    R.ShiftTerms.push_back({Rational(1 + I % 4), Rational(1)});
    R.Additive = makeNumber(I / 4);
    R.Boundaries.push_back({Rational(0), makeNumber(0)});
    Eqs.push_back(R);
  }
  DiffEqSolver Direct;
  std::vector<std::string> Want;
  for (const Recurrence &R : Eqs)
    Want.push_back(exprText(Direct.solve(R).Closed));

  SolverCache Cache;
  std::atomic<int> Mismatches{0};
  {
    ThreadPool Pool(8);
    for (int T = 0; T != 8; ++T)
      Pool.submit([&] {
        DiffEqSolver Solver; // solver instances are per-thread
        Solver.setCache(&Cache);
        for (int I = 0; I != 64; ++I) {
          const Recurrence &R = Eqs[I % Eqs.size()];
          if (exprText(Solver.solve(R).Closed) != Want[I % Eqs.size()])
            Mismatches.fetch_add(1);
        }
      });
    Pool.wait();
  }
  EXPECT_EQ(Mismatches.load(), 0);
  EXPECT_EQ(Cache.misses(), Eqs.size());
  EXPECT_EQ(Cache.entries(), Eqs.size());
  EXPECT_EQ(Cache.hits() + Cache.misses(), 8u * 64u);
}

std::string tempCachePath(const char *Name) {
  return (std::filesystem::path(::testing::TempDir()) / Name).string();
}

TEST(SolverCacheDiskTest, RoundtripReplaysIdenticalResults) {
  // Randomized recurrences solved into a cache, saved, loaded into a
  // fresh cache in another "process": every solve through the loaded
  // cache is a disk hit and reproduces the direct solver's result.
  std::string Path = tempCachePath("granlog_roundtrip.json");
  std::remove(Path.c_str());

  Lcg Rng(20260806);
  std::vector<Recurrence> Eqs;
  for (int I = 0; I != 50; ++I)
    Eqs.push_back(randomRecurrence(Rng, "n1", "n2"));

  SolverCache Cache;
  {
    DiffEqSolver Solver;
    Solver.setCache(&Cache);
    for (const Recurrence &R : Eqs)
      Solver.solve(R);
    std::string Error;
    ASSERT_TRUE(Cache.saveToFile(Path, &Error)) << Error;
  }

  SolverCache Loaded;
  std::string Error;
  ASSERT_TRUE(Loaded.loadFromFile(Path, &Error)) << Error;
  EXPECT_EQ(Loaded.entries(), Cache.entries());

  DiffEqSolver Direct;
  DiffEqSolver Warm;
  Warm.setCache(&Loaded);
  for (const Recurrence &R : Eqs)
    expectSameResult(Warm.solve(R), Direct.solve(R), R);
  EXPECT_EQ(Loaded.misses(), 0u) << "every equation was on disk";
  EXPECT_GT(Loaded.diskHits(), 0u);
  EXPECT_EQ(Loaded.diskHits(), Loaded.hits());

  std::remove(Path.c_str());
}

TEST(SolverCacheDiskTest, MissingFileIsAFreshCache) {
  SolverCache Cache;
  std::string Error;
  EXPECT_TRUE(
      Cache.loadFromFile(tempCachePath("granlog_no_such_cache.json"), &Error))
      << Error;
  EXPECT_EQ(Cache.entries(), 0u);
  EXPECT_EQ(Error, "");
}

TEST(SolverCacheDiskTest, CorruptFileRejectedWithDiagnostic) {
  std::string Path = tempCachePath("granlog_corrupt.json");
  {
    std::ofstream Out(Path);
    Out << "{ definitely not JSON";
  }
  SolverCache Cache;
  std::string Error;
  EXPECT_FALSE(Cache.loadFromFile(Path, &Error));
  EXPECT_NE(Error.find(Path), std::string::npos) << Error;
  EXPECT_NE(Error.find("fresh cache"), std::string::npos) << Error;
  EXPECT_EQ(Cache.entries(), 0u);

  // The rejected load leaves a fully usable cache behind.
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(1), Rational(1)});
  R.Additive = makeNumber(1);
  R.Boundaries.push_back({Rational(0), makeNumber(0)});
  DiffEqSolver Solver;
  Solver.setCache(&Cache);
  expectSameResult(Solver.solve(R), DiffEqSolver().solve(R), R);
  EXPECT_EQ(Cache.entries(), 1u);

  std::remove(Path.c_str());
}

TEST(SolverCacheDiskTest, FormatVersionMismatchRejected) {
  std::string Path = tempCachePath("granlog_version.json");
  {
    std::ofstream Out(Path);
    Out << "{\"version\":999,\"entries\":[]}";
  }
  SolverCache Cache;
  std::string Error;
  EXPECT_FALSE(Cache.loadFromFile(Path, &Error));
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
  EXPECT_EQ(Cache.entries(), 0u);
  std::remove(Path.c_str());
}

TEST(SolverCacheDiskTest, PreIntervalV1FileRejected) {
  // Byte-literal solver-cache.json as written by format-version-1 builds
  // (before the mandatory "lo" lower closed form landed).  Replaying such
  // an entry would serve a result with no lower reading, so the load must
  // be rejected whole with the version diagnostic — never half-loaded —
  // and leave a usable fresh cache behind.
  static const char *const OldDoc =
      R"({"version":1,"entries":[{"sig":"closed,first-order-sum,geometric,divide-and-conquer","shift":[{"cn":1,"cd":1,"sn":2,"sd":1},{"cn":1,"cd":1,"sn":1,"sd":1}],"divide":[],"additive":{"k":"num","n":0,"d":1},"boundaries":[{"an":0,"ad":1,"value":{"k":"num","n":0,"d":1}},{"an":1,"ad":1,"value":{"k":"num","n":1,"d":1}}],"result":{"closed":{"k":"pow","ops":[{"k":"num","n":2,"d":1},{"k":"var","v":"_g0"}]},"schema":"geometric","exact":false,"why":""}},{"sig":"closed,first-order-sum,geometric,divide-and-conquer","shift":[{"cn":1,"cd":1,"sn":2,"sd":1},{"cn":1,"cd":1,"sn":1,"sd":1}],"divide":[],"additive":{"k":"num","n":1,"d":1},"boundaries":[{"an":0,"ad":1,"value":{"k":"num","n":1,"d":1}},{"an":1,"ad":1,"value":{"k":"num","n":1,"d":1}}],"result":{"closed":{"k":"add","ops":[{"k":"num","n":-1,"d":1},{"k":"mul","ops":[{"k":"num","n":2,"d":1},{"k":"pow","ops":[{"k":"num","n":2,"d":1},{"k":"var","v":"_g0"}]}]}]},"schema":"geometric","exact":false,"why":""}}]})";
  std::string Path = tempCachePath("granlog_oldbuild.json");
  {
    std::ofstream Out(Path, std::ios::binary);
    Out << OldDoc;
  }

  SolverCache Loaded;
  std::string Error;
  EXPECT_FALSE(Loaded.loadFromFile(Path, &Error));
  EXPECT_NE(Error.find("format version 1"), std::string::npos) << Error;
  EXPECT_NE(Error.find("this build reads version 2"), std::string::npos)
      << Error;
  EXPECT_EQ(Loaded.entries(), 0u);

  // The rejected load leaves a fully usable cache behind.
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(1), Rational(1)});
  R.Additive = makeNumber(1);
  R.Boundaries.push_back({Rational(0), makeNumber(0)});
  DiffEqSolver Solver;
  Solver.setCache(&Loaded);
  expectSameResult(Solver.solve(R), DiffEqSolver().solve(R), R);
  EXPECT_EQ(Loaded.entries(), 1u);

  std::remove(Path.c_str());
}

TEST(SolverCacheDiskTest, VersionTwoFileRemainsReadable) {
  // Byte-literal solver-cache.json in the current (version 2) format for
  // fib's cost recurrence c(n) = c(n-1) + c(n-2) + 1, c(0) = c(1) = 1.
  // The disk format is structural — tagged expression trees, no arena
  // indices or symbol ids — so a file written by any version-2 build
  // must load cleanly and serve both readings (closed and lo) from disk.
  static const char *const Doc =
      R"({"version":2,"entries":[{"sig":"closed,first-order-sum,geometric,divide-and-conquer","shift":[{"cn":1,"cd":1,"sn":2,"sd":1},{"cn":1,"cd":1,"sn":1,"sd":1}],"divide":[],"additive":{"k":"num","n":1,"d":1},"boundaries":[{"an":0,"ad":1,"value":{"k":"num","n":1,"d":1}},{"an":1,"ad":1,"value":{"k":"num","n":1,"d":1}}],"result":{"closed":{"k":"add","ops":[{"k":"num","n":-1,"d":1},{"k":"mul","ops":[{"k":"num","n":2,"d":1},{"k":"pow","ops":[{"k":"num","n":2,"d":1},{"k":"var","v":"_g0"}]}]}]},"lo":{"k":"mul","ops":[{"k":"num","n":1,"d":2},{"k":"pow","ops":[{"k":"num","n":2,"d":1},{"k":"mul","ops":[{"k":"num","n":1,"d":2},{"k":"add","ops":[{"k":"num","n":-1,"d":1},{"k":"var","v":"_g0"}]}]}]}]},"schema":"geometric","exact":false,"why":""}}]})";
  std::string Path = tempCachePath("granlog_v2build.json");
  {
    std::ofstream Out(Path, std::ios::binary);
    Out << Doc;
  }

  SolverCache Loaded;
  std::string Error;
  ASSERT_TRUE(Loaded.loadFromFile(Path, &Error)) << Error;
  EXPECT_EQ(Loaded.entries(), 1u);

  Recurrence Fib;
  Fib.Function = "fib";
  Fib.Var = "n";
  // Term order is part of the cache key by design; the analyzer (and
  // hence the fixture) lists the n-2 term first.
  Fib.ShiftTerms.push_back({Rational(1), Rational(2)});
  Fib.ShiftTerms.push_back({Rational(1), Rational(1)});
  Fib.Additive = makeNumber(1);
  Fib.Boundaries.push_back({Rational(0), makeNumber(1)});
  Fib.Boundaries.push_back({Rational(1), makeNumber(1)});

  DiffEqSolver Warm;
  Warm.setCache(&Loaded);
  DiffEqSolver Direct;
  expectSameResult(Warm.solve(Fib), Direct.solve(Fib), Fib);
  EXPECT_EQ(Loaded.diskHits(), 1u);
  EXPECT_EQ(Loaded.misses(), 0u);

  std::remove(Path.c_str());
}

TEST(SolverCacheDiskTest, LiveEntriesWinOverLoadedOnes) {
  // Loading into a non-empty cache must not clobber entries that are
  // already resolved (and possibly referenced by concurrent readers).
  std::string Path = tempCachePath("granlog_merge.json");
  std::remove(Path.c_str());
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(1), Rational(1)});
  R.Additive = makeVar("n");
  R.Boundaries.push_back({Rational(0), makeNumber(0)});

  SolverCache A;
  {
    DiffEqSolver Solver;
    Solver.setCache(&A);
    Solver.solve(R);
    std::string Error;
    ASSERT_TRUE(A.saveToFile(Path, &Error)) << Error;
  }

  SolverCache B;
  DiffEqSolver Solver;
  Solver.setCache(&B);
  SolveResult Live = Solver.solve(R);
  std::string Error;
  ASSERT_TRUE(B.loadFromFile(Path, &Error)) << Error;
  EXPECT_EQ(B.entries(), 1u);
  SolveResult Again = Solver.solve(R);
  expectSameResult(Again, Live, R);
  EXPECT_EQ(B.diskHits(), 0u) << "the live entry served the hit";

  std::remove(Path.c_str());
}

TEST(SolverCacheTest, ClearEmptiesTheTable) {
  Recurrence R;
  R.Function = "f";
  R.Var = "n";
  R.ShiftTerms.push_back({Rational(1), Rational(1)});
  R.Additive = makeNumber(1);
  R.Boundaries.push_back({Rational(0), makeNumber(0)});
  DiffEqSolver Solver;
  SolverCache Cache;
  Solver.setCache(&Cache);
  Solver.solve(R);
  EXPECT_EQ(Cache.entries(), 1u);
  Cache.clear();
  EXPECT_EQ(Cache.entries(), 0u);
  EXPECT_EQ(Cache.hits(), 0u);
  EXPECT_EQ(Cache.misses(), 0u);
  Solver.solve(R);
  EXPECT_EQ(Cache.misses(), 1u);
}

} // namespace
