//===- tests/threadpool_test.cpp - Pool and DAG scheduler tests -----------===//
//
// The concurrency contract behind the parallel analysis driver: every
// submitted task runs exactly once (even when queued at destruction time),
// the first task exception propagates out of wait(), and topoSchedule
// respects dependency order for arbitrary DAGs and degenerates to the
// classic sequential loop without a pool.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

using namespace granlog;

namespace {

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.numThreads(), 1u);
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  constexpr int N = 500;
  std::vector<std::atomic<int>> Ran(N);
  for (auto &R : Ran)
    R.store(0);
  ThreadPool Pool(4);
  for (int I = 0; I != N; ++I)
    Pool.submit([&Ran, I] { Ran[I].fetch_add(1); });
  Pool.wait();
  for (int I = 0; I != N; ++I)
    EXPECT_EQ(Ran[I].load(), 1) << "task " << I;
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  constexpr int N = 200;
  std::atomic<int> Ran{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I != N; ++I)
      Pool.submit([&Ran] { Ran.fetch_add(1); });
    // No wait(): the destructor must still run every queued task before
    // joining.
  }
  EXPECT_EQ(Ran.load(), N);
}

TEST(ThreadPoolTest, NestedSubmitsRun) {
  // Tasks submitted from inside a running task (as topoSchedule's release
  // step does) must also complete before wait() returns.
  std::atomic<int> Ran{0};
  ThreadPool Pool(3);
  for (int I = 0; I != 8; ++I)
    Pool.submit([&Pool, &Ran] {
      Ran.fetch_add(1);
      Pool.submit([&Pool, &Ran] {
        Ran.fetch_add(1);
        Pool.submit([&Ran] { Ran.fetch_add(1); });
      });
    });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 8 * 3);
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  for (int I = 0; I != 10; ++I)
    Pool.submit([&Ran, I] {
      Ran.fetch_add(1);
      if (I == 3)
        throw std::runtime_error("task failed");
    });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  // The error is cleared: the pool remains usable afterwards.
  Pool.submit([&Ran] { Ran.fetch_add(1); });
  EXPECT_NO_THROW(Pool.wait());
  EXPECT_EQ(Ran.load(), 11);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  for (int Batch = 0; Batch != 3; ++Batch) {
    for (int I = 0; I != 50; ++I)
      Pool.submit([&Ran] { Ran.fetch_add(1); });
    Pool.wait();
    EXPECT_EQ(Ran.load(), (Batch + 1) * 50);
  }
}

/// Records completion order and verifies every dependency finished first.
struct OrderRecorder {
  std::mutex Mutex;
  std::vector<unsigned> Order;
  void done(unsigned I) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Order.push_back(I);
  }
  void verify(const std::vector<std::vector<unsigned>> &Deps) {
    std::set<unsigned> Done;
    for (unsigned I : Order) {
      for (unsigned D : Deps[I])
        EXPECT_TRUE(Done.count(D))
            << "node " << I << " ran before its dependency " << D;
      Done.insert(I);
    }
    EXPECT_EQ(Done.size(), Deps.size()) << "every node runs exactly once";
    EXPECT_EQ(Order.size(), Deps.size()) << "no node runs twice";
  }
};

TEST(TopoScheduleTest, NullPoolRunsSequentiallyInIndexOrder) {
  std::vector<std::vector<unsigned>> Deps{{}, {0}, {0, 1}, {}, {2, 3}};
  OrderRecorder Rec;
  topoSchedule(Deps, [&Rec](unsigned I) { Rec.done(I); }, nullptr);
  EXPECT_EQ(Rec.Order, (std::vector<unsigned>{0, 1, 2, 3, 4}));
}

TEST(TopoScheduleTest, RespectsDependenciesOnPool) {
  std::vector<std::vector<unsigned>> Deps{{},  {0},    {0},    {1, 2},
                                          {3}, {3, 0}, {4, 5}, {}};
  for (unsigned Threads : {1u, 2u, 8u}) {
    OrderRecorder Rec;
    ThreadPool Pool(Threads);
    topoSchedule(Deps, [&Rec](unsigned I) { Rec.done(I); }, &Pool);
    Rec.verify(Deps);
  }
}

TEST(TopoScheduleTest, DuplicateDependenciesCountOnce) {
  // The same dependency listed twice (two members of an SCC calling into
  // the same callee SCC) must not leave the node waiting forever.
  std::vector<std::vector<unsigned>> Deps{{}, {0, 0, 0}, {1, 1, 0, 0}};
  OrderRecorder Rec;
  ThreadPool Pool(4);
  topoSchedule(Deps, [&Rec](unsigned I) { Rec.done(I); }, &Pool);
  Rec.verify(Deps);
}

TEST(TopoScheduleTest, LayeredDagStress) {
  // A deterministic layered DAG: node I depends on a fixed pattern of
  // earlier nodes.  Checks the exactly-once and ordering guarantees at a
  // size where double-submission races (ready-at-build-time vs. ready-
  // after-a-fast-cascade) would show up.
  constexpr unsigned N = 300;
  std::vector<std::vector<unsigned>> Deps(N);
  for (unsigned I = 1; I != N; ++I) {
    Deps[I].push_back((I - 1) / 2);       // binary-tree parent
    if (I >= 10)
      Deps[I].push_back(I - 10);          // a longer-range edge
    if (I % 7 == 0)
      Deps[I].push_back(I - 1);           // occasional chain edge
  }
  for (int Round = 0; Round != 5; ++Round) {
    OrderRecorder Rec;
    ThreadPool Pool(8);
    topoSchedule(Deps, [&Rec](unsigned I) { Rec.done(I); }, &Pool);
    Rec.verify(Deps);
  }
}

TEST(TopoScheduleTest, ExceptionInNodePropagates) {
  std::vector<std::vector<unsigned>> Deps{{}, {0}, {1}};
  ThreadPool Pool(2);
  EXPECT_THROW(topoSchedule(
                   Deps,
                   [](unsigned I) {
                     if (I == 1)
                       throw std::runtime_error("node failed");
                   },
                   &Pool),
               std::runtime_error);
}

TEST(TopoScheduleTest, ThrowingNodeDoesNotStrandItsDependents) {
  // A node that throws must still release its dependents: the whole DAG
  // drains (every other node runs), the first exception is rethrown from
  // the final wait(), and the pool survives (no std::terminate).  This is
  // what lets a batch driver report one failed item instead of deadlocking
  // or silently skipping the failed node's entire downstream subgraph.
  constexpr unsigned N = 40;
  std::vector<std::vector<unsigned>> Deps(N);
  for (unsigned I = 1; I != N; ++I)
    Deps[I].push_back((I - 1) / 2); // binary tree: node 3 has a subtree
  for (int Round = 0; Round != 5; ++Round) {
    ThreadPool Pool(4);
    std::atomic<unsigned> Ran{0};
    EXPECT_THROW(topoSchedule(
                     Deps,
                     [&Ran](unsigned I) {
                       if (I == 3)
                         throw std::runtime_error("scheduled job failed");
                       Ran.fetch_add(1);
                     },
                     &Pool),
                 std::runtime_error);
    EXPECT_EQ(Ran.load(), N - 1)
        << "every node except the throwing one must still run";
    EXPECT_EQ(Pool.failedTasks(), 1u);
    // The pool is still usable after the failed DAG.
    Pool.submit([&Ran] { Ran.fetch_add(1); });
    EXPECT_NO_THROW(Pool.wait());
    EXPECT_EQ(Ran.load(), N);
  }
}

} // namespace
