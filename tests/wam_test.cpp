//===- tests/wam_test.cpp - WAM clause compiler tests ---------------------===//
//
// Checks the compilation scheme on the textbook cases and the integration
// of compiled instruction counts with the Instructions cost metric and
// the interpreter's instruction accounting.
//
//===----------------------------------------------------------------------===//

#include "core/GranularityAnalyzer.h"
#include "corpus/Corpus.h"
#include "interp/Interpreter.h"
#include "wam/WamCompiler.h"

#include <gtest/gtest.h>

using namespace granlog;

namespace {

class WamTest : public ::testing::Test {
protected:
  void compile(std::string_view Source) {
    Prog = loadProgram(Source, Arena, Diags);
    ASSERT_TRUE(Prog.has_value()) << Diags.str();
    Wam = std::make_unique<WamCompiler>(*Prog);
  }

  const CompiledClause *clause(std::string_view Name, unsigned Arity,
                               unsigned Index) {
    Symbol S = Arena.symbols().lookup(Name);
    EXPECT_TRUE(S.isValid());
    return Wam->clause(Functor{S, Arity}, Index);
  }

  /// Counts instructions of one opcode in a clause.
  static unsigned countOp(const CompiledClause &C, WamOp Op) {
    unsigned N = 0;
    for (const WamInstr &I : C.Code)
      N += I.Op == Op ? 1 : 0;
    return N;
  }

  TermArena Arena;
  Diagnostics Diags;
  std::optional<Program> Prog;
  std::unique_ptr<WamCompiler> Wam;
};

TEST_F(WamTest, FactCompilesToGetsAndProceed) {
  compile("p(a, X, X).");
  const CompiledClause *C = clause("p", 3, 0);
  ASSERT_NE(C, nullptr);
  // get_constant a, get_variable X, get_value X, proceed.
  EXPECT_EQ(countOp(*C, WamOp::GetConstant), 1u);
  EXPECT_EQ(countOp(*C, WamOp::GetVariable), 1u);
  EXPECT_EQ(countOp(*C, WamOp::GetValue), 1u);
  EXPECT_EQ(countOp(*C, WamOp::Proceed), 1u);
  EXPECT_EQ(C->Code.size(), 4u);
  EXPECT_EQ(C->HeadCount, 3u);
  EXPECT_TRUE(C->LiteralCounts.empty());
}

TEST_F(WamTest, ListHeadCompilesToGetList) {
  compile("first([H|_], H).");
  const CompiledClause *C = clause("first", 2, 0);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(countOp(*C, WamOp::GetList), 1u);
  // H and the void tail are unify instructions.
  EXPECT_EQ(countOp(*C, WamOp::UnifyVariable), 2u);
  EXPECT_EQ(countOp(*C, WamOp::GetValue), 1u); // second occurrence of H
}

TEST_F(WamTest, NestedStructureFlattens) {
  compile("p(f(g(X), Y)).");
  const CompiledClause *C = clause("p", 1, 0);
  ASSERT_NE(C, nullptr);
  // get_structure f/2 on A1, then unify_variable for g-cell and Y, then
  // get_structure g/1 on the temporary with unify_variable X.
  EXPECT_EQ(countOp(*C, WamOp::GetStructure), 2u);
  EXPECT_EQ(countOp(*C, WamOp::UnifyVariable), 3u);
}

TEST_F(WamTest, BodyArgumentsUsePuts) {
  compile("p(X) :- q(X, [1, 2]).\nq(_, _).");
  const CompiledClause *C = clause("p", 1, 0);
  ASSERT_NE(C, nullptr);
  // The list [1,2] builds bottom-up: put_list for both cells.
  EXPECT_EQ(countOp(*C, WamOp::PutList), 2u);
  EXPECT_EQ(countOp(*C, WamOp::PutValue) + countOp(*C, WamOp::PutVariable),
            1u); // X
  EXPECT_EQ(countOp(*C, WamOp::Execute), 1u); // last (only) goal
  ASSERT_EQ(C->LiteralCounts.size(), 1u);
  EXPECT_GT(C->LiteralCounts[0], 3u);
}

TEST_F(WamTest, MultiClausePredicatesPayChoicePoints) {
  compile("p(1).\np(2).\np(3).");
  EXPECT_EQ(countOp(*clause("p", 1, 0), WamOp::TryMeElse), 1u);
  EXPECT_EQ(countOp(*clause("p", 1, 1), WamOp::RetryMeElse), 1u);
  EXPECT_EQ(countOp(*clause("p", 1, 2), WamOp::TrustMe), 1u);
}

TEST_F(WamTest, PermanentVariablesForceEnvironment) {
  // X spans two body goals: a permanent variable => allocate/deallocate.
  compile("p(X) :- q(X), r(X).\nq(_).\nr(_).");
  const CompiledClause *C = clause("p", 1, 0);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(countOp(*C, WamOp::Allocate), 1u);
  EXPECT_EQ(countOp(*C, WamOp::Deallocate), 1u);
  EXPECT_EQ(countOp(*C, WamOp::Call), 2u); // no last-call opt with a frame
}

TEST_F(WamTest, ChainRuleUsesLastCallOptimization) {
  compile("p(X) :- q(X).\nq(_).");
  const CompiledClause *C = clause("p", 1, 0);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(countOp(*C, WamOp::Allocate), 0u);
  EXPECT_EQ(countOp(*C, WamOp::Execute), 1u);
}

TEST_F(WamTest, CutCompilesToNeckCut) {
  compile("p(X) :- X > 0, !.");
  const CompiledClause *C = clause("p", 1, 0);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(countOp(*C, WamOp::NeckCut), 1u);
  EXPECT_EQ(countOp(*C, WamOp::CallBuiltin), 1u);
}

TEST_F(WamTest, ListingIsReadable) {
  compile("app([], L, L).");
  const CompiledClause *C = clause("app", 3, 0);
  std::string Listing = C->listing(Arena.symbols());
  EXPECT_NE(Listing.find("get_nil"), std::string::npos);
  EXPECT_NE(Listing.find("get_variable"), std::string::npos);
  EXPECT_NE(Listing.find("proceed"), std::string::npos);
}

TEST_F(WamTest, ProgramSizeAggregates) {
  compile("p(1).\nq(X) :- p(X).");
  EXPECT_GT(Wam->programSize(), 4u);
}

TEST_F(WamTest, DeeperHeadsCostMore) {
  compile(R"(
    shallow(X, X).
    deep(f(g(h(X))), X).
  )");
  EXPECT_LT(clause("shallow", 2, 0)->HeadCount,
            clause("deep", 2, 0)->HeadCount);
}

// --- Integration: static instruction bound vs. dynamic instruction count.

TEST(WamIntegration, InstructionMetricUsesCompiledCounts) {
  TermArena Arena;
  Diagnostics Diags;
  const BenchmarkDef *B = findBenchmark("fib");
  auto P = loadProgram(B->Source, Arena, Diags);
  ASSERT_TRUE(P) << Diags.str();
  GranularityAnalyzer GA(*P, {CostMetric::instructions(), 500.0});
  GA.run();
  ASSERT_NE(GA.wam(), nullptr);
  const PredicateGranularity *G = GA.lookup("fib", 2);
  ASSERT_NE(G, nullptr);
  EXPECT_FALSE(G->CostFn->isInfinity());
  // Instructions cost strictly dominates the resolutions cost.
  GranularityAnalyzer GR(*P, {CostMetric::resolutions(), 500.0});
  GR.run();
  auto CostOf = [&](const GranularityAnalyzer &A) {
    return evaluate(A.lookup("fib", 2)->CostFn, {{"n1", 10.0}}).value();
  };
  EXPECT_GT(CostOf(GA), CostOf(GR));
}

class WamSoundness : public ::testing::TestWithParam<const char *> {};

TEST_P(WamSoundness, StaticInstructionBoundDominatesDynamicCount) {
  const BenchmarkDef *B = findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  TermArena Arena;
  Diagnostics Diags;
  auto P = loadProgram(B->Source, Arena, Diags);
  ASSERT_TRUE(P) << Diags.str();
  GranularityAnalyzer GA(*P, {CostMetric::instructions(), 500.0});
  GA.run();
  ASSERT_NE(GA.wam(), nullptr);

  int Input = B->Name == "fib" ? 12 : (B->Name == "hanoi" ? 5 : 32);
  const Term *Goal = B->BuildGoal(Arena, Input);
  InterpOptions Options;
  Options.CaptureTree = false;
  Options.Wam = GA.wam();
  Interpreter I(*P, Arena, Options);
  ASSERT_TRUE(I.solve(Goal));
  EXPECT_GT(I.counters().Instructions, 0u);

  // Evaluate the static bound at the goal's input sizes.
  Symbol S = Arena.symbols().lookup(
      B->Name == "fib" ? "fib" : (B->Name == "hanoi" ? "hanoi" : "dsum"));
  Functor F{S, B->Name == "hanoi" ? 5u : 2u};
  std::map<std::string, double> Env{{"n1", static_cast<double>(Input)}};
  std::optional<double> Bound = evaluate(GA.info(F).CostFn, Env);
  ASSERT_TRUE(Bound.has_value());
  EXPECT_GE(*Bound, static_cast<double>(I.counters().Instructions));
}

INSTANTIATE_TEST_SUITE_P(Programs, WamSoundness,
                         ::testing::Values("fib", "hanoi", "double_sum"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });

} // namespace
