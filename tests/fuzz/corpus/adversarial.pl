% Unsolvable mutual recursion + an exponential size-expression chain:
% everything here must degrade to Infinity under a budget, not hang.
:- mode(ping(i, o)).
:- mode(pong(i, o)).
ping(0, 0).
ping(N, R) :- N > 0, M is N - 1, pong(M, S), pong(S, R).
pong(0, 0).
pong(N, R) :- N > 0, M is N - 2, ping(M, S), ping(S, R).
:- mode(d0(i, o)).
:- measure(d0(length, length)).
d0(X, [a|Y]) :- append(X, X, Y).
d0(X, [a,a,a,a,a|X]).
:- mode(d1(i, o)).
:- measure(d1(length, length)).
d1(X, Y) :- d0(X, A), d0(A, Y).
:- mode(d2(i, o)).
:- measure(d2(length, length)).
d2(X, Y) :- d1(X, A), d1(A, Y).
:- mode(append(i, i, o)).
:- measure(append(length, length, length)).
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
