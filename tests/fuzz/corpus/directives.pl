% Directive edge cases: unknown directives, arity mismatches, operators.
:- mode(f(i, o)).
:- measure(f(size, size)).
:- unknown_directive(foo, bar(1), [a|b]).
f(X, Y) :- Y is X + 1 - 2 * 3 // 4 mod 5.
f([], []).
