:- mode(msort(i, o)).
msort([], []).
msort([X], [X]).
msort([A,B|T], S) :-
    split([A,B|T], L, R),
    ( msort(L, SL) & msort(R, SR) ),
    merge(SL, SR, S).
:- mode(merge(i, i, o)).
:- measure(merge(length, length, length)).
:- trust_cost(merge/3, n1 + n2 + 1).
:- trust_size(merge/3, 3, n1 + n2).
merge([], L, L).
merge([H|T], [], [H|T]).
merge([H1|T1], [H2|T2], [H1|R]) :- H1 =< H2, merge(T1, [H2|T2], R).
merge([H1|T1], [H2|T2], [H2|R]) :- H1 > H2, merge([H1|T1], T2, R).
:- mode(split(i, o, o)).
split([], [], []).
split([X|T], [X|A], B) :- split(T, B, A).
