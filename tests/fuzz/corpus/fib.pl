% Doubly recursive Fibonacci (paper Section 5).
:- mode(fib(i, o)).
:- measure(fib(value, value)).
fib(0, 0).
fib(1, 1).
fib(M, N) :-
    M > 1,
    M1 is M - 1, M2 is M - 2,
    ( fib(M1, N1) & fib(M2, N2) ),
    N is N1 + N2.
