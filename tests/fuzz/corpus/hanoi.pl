:- mode(hanoi(i, i, i, i, o)).
:- measure(hanoi(value, void, void, void, length)).
hanoi(0, _, _, _, []).
hanoi(N, A, B, C, M) :-
    N > 0,
    N1 is N - 1,
    ( hanoi(N1, A, C, B, M1) & hanoi(N1, B, A, C, M2) ),
    append(M1, [mv(A, C)|M2], M).
:- mode(append(i, i, o)).
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
