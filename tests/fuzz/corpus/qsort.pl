:- mode(qsort(i, o)).
qsort([], []).
qsort([H|T], S) :-
    part(T, H, L, G),
    ( qsort(L, SL) & qsort(G, SG) ),
    append(SL, [H|SG], S).
:- mode(part(i, i, o, o)).
part([], _, [], []).
part([E|L], M, [E|U1], U2) :- E =< M, part(L, M, U1, U2).
part([E|L], M, U1, [E|U2]) :- E > M, part(L, M, U1, U2).
:- mode(append(i, i, o)).
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
