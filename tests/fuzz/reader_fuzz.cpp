//===- tests/fuzz/reader_fuzz.cpp - Reader + pipeline fuzz harness --------===//
//
// libFuzzer entry point for the whole front half of the analyzer: lexer,
// parser, directive processing, program loading, and — when the input
// happens to parse — a tightly budgeted analysis run.  The contract under
// test is the robustness tentpole's: NO input may crash, hang, or exhaust
// memory.  Malformed programs must surface as diagnostics; pathological
// well-formed programs must degrade to Infinity under the budget.
//
// Built two ways:
//   - with -DGRANLOG_FUZZ=ON (Clang only): a real libFuzzer target,
//     linked with -fsanitize=fuzzer,address; run it over
//     tests/fuzz/corpus/ (the CI fuzz-smoke job does 60 s of this);
//   - always: a standalone driver (granlog_add_test fuzz_seeds_smoke)
//     that replays every seed file given on the command line, so the
//     harness itself is compiled and exercised by every plain CI build.
//
//===----------------------------------------------------------------------===//

#include "core/GranularityAnalyzer.h"
#include "program/Program.h"
#include "support/Budget.h"
#include "support/Diagnostics.h"
#include "support/Json.h"

#include <cstddef>
#include <cstdint>
#include <string_view>

using namespace granlog;

namespace {

/// Tight-but-real limits: large enough that the seed corpus analyzes
/// normally, small enough that fuzz-generated pathologies (token bombs,
/// clause bombs, exponential size expressions) are cut off in
/// microseconds rather than explored for the whole time budget.
BudgetLimits fuzzLimits() {
  BudgetLimits L;
  L.ParseTokens = 64 * 1024;
  L.Clauses = 4 * 1024;
  L.ExprNodes = 4 * 1024;
  L.SolverSteps = 1024;
  L.NormalizeSteps = 1024;
  return L;
}

void fuzzOne(const uint8_t *Data, size_t Size) {
  std::string_view Source(reinterpret_cast<const char *>(Data), Size);
  TermArena Arena;
  Diagnostics Diags;
  Budget B(fuzzLimits());
  std::optional<Program> P = loadProgram(Source, Arena, Diags, &B);
  if (!P)
    return; // rejected with diagnostics: the success path for bad input
  AnalyzerOptions Options{CostMetric::resolutions(), 48.0};
  Options.Budget = &B;
  GranularityAnalyzer GA(*P, Options);
  GA.run();
  // Render everything: the reporting paths walk whatever expression
  // trees survived the budget, so oversized-tree bugs surface here.
  (void)GA.report();
  (void)GA.explainAll();
  JsonWriter W;
  GA.writeJson(W);
  (void)W.take();
}

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  fuzzOne(Data, Size);
  return 0;
}

#ifdef GRANLOG_FUZZ_STANDALONE
// Seed replayer for toolchains without libFuzzer: run every file named on
// the command line through the harness once.
#include <cstdio>
#include <cstdlib>
#include <vector>

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    std::FILE *F = std::fopen(argv[I], "rb");
    if (!F) {
      std::fprintf(stderr, "error: cannot open seed %s\n", argv[I]);
      return 1;
    }
    std::vector<uint8_t> Bytes;
    uint8_t Buf[4096];
    for (size_t N; (N = std::fread(Buf, 1, sizeof Buf, F)) != 0;)
      Bytes.insert(Bytes.end(), Buf, Buf + N);
    std::fclose(F);
    LLVMFuzzerTestOneInput(Bytes.data(), Bytes.size());
    std::printf("ok: %s (%zu bytes)\n", argv[I], Bytes.size());
  }
  return 0;
}
#endif
