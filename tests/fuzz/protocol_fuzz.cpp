//===- tests/fuzz/protocol_fuzz.cpp - Wire-protocol fuzz harness ----------===//
//
// libFuzzer entry point for granlogd's request decoder and frame
// reassembler.  The contract under test: NO byte sequence a client sends
// may crash the decoder, make it read out of bounds, or produce a
// Request that re-encodes to something the decoder rejects.  Malformed
// payloads must come back as nullopt — the server turns that into a
// Malformed response and closes the connection.
//
// The harness drives two layers:
//   - decodeRequest over the raw input as one payload (the pure decode
//     function the server calls per frame), round-tripping any accepted
//     request through encodeRequest/decodeRequest;
//   - FrameReader over the input as a byte *stream*, appended in chunks
//     whose sizes are derived from the input itself, so short reads,
//     torn length prefixes and poisoned-reader paths all get explored.
//
// Built two ways, like reader_fuzz.cpp:
//   - with -DGRANLOG_FUZZ=ON (Clang only): a real libFuzzer target;
//   - always: a standalone seed replayer registered as a plain test, so
//     the harness never rots and every checked-in seed stays crash-free.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

using namespace granlog;

namespace {

void fuzzDecode(std::string_view Payload) {
  std::optional<Request> R = decodeRequest(Payload);
  if (!R)
    return;
  // Accepted requests round-trip: strict decode means encode(decode(x))
  // re-decodes to the same request.
  std::string Frame = encodeRequest(*R);
  std::optional<Request> Again =
      decodeRequest(std::string_view(Frame).substr(4));
  if (!Again || Again->Kind != R->Kind || Again->Id != R->Id ||
      Again->Name != R->Name || Again->Pred != R->Pred ||
      Again->Source != R->Source)
    __builtin_trap();

  // Responses share the string codec; round-trip one built from the
  // request's fields to cover the response path too.
  Response Resp;
  Resp.St = Status::LoadError;
  Resp.Id = R->Id;
  Resp.Degradations = static_cast<uint32_t>(R->Source.size());
  Resp.Body = R->Name + R->Pred;
  std::string RFrame = encodeResponse(Resp);
  std::optional<Response> RAgain =
      decodeResponse(std::string_view(RFrame).substr(4));
  if (!RAgain || RAgain->Body != Resp.Body)
    __builtin_trap();
}

void fuzzStream(std::string_view Stream) {
  // Feed the input as a socket would: in chunks of varying size, the
  // sizes themselves taken from the input bytes (1..64).  A tiny frame
  // cap makes the overflow/poisoning path reachable from small inputs.
  FrameReader Reader(/*MaxFrame=*/512);
  size_t Pos = 0;
  size_t Frames = 0;
  while (Pos < Stream.size()) {
    size_t Chunk = 1 + static_cast<uint8_t>(Stream[Pos]) % 64;
    Chunk = std::min(Chunk, Stream.size() - Pos);
    Reader.append(Stream.data() + Pos, Chunk);
    Pos += Chunk;
    while (std::optional<std::string> Payload = Reader.next()) {
      (void)decodeRequest(*Payload);
      if (++Frames > 4096)
        __builtin_trap(); // more frames than bytes: reassembly bug
    }
    if (Reader.overflowed())
      break; // poisoned: the server drops the connection here
  }
}

void fuzzOne(const uint8_t *Data, size_t Size) {
  std::string_view Input(reinterpret_cast<const char *>(Data), Size);
  fuzzDecode(Input);
  fuzzStream(Input);
}

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  fuzzOne(Data, Size);
  return 0;
}

#ifdef GRANLOG_FUZZ_STANDALONE
// Seed replayer for toolchains without libFuzzer: run every file named on
// the command line through the harness once.
#include <cstdio>
#include <cstdlib>
#include <vector>

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    std::FILE *F = std::fopen(argv[I], "rb");
    if (!F) {
      std::fprintf(stderr, "error: cannot open seed %s\n", argv[I]);
      return 1;
    }
    std::vector<uint8_t> Bytes;
    uint8_t Buf[4096];
    for (size_t N; (N = std::fread(Buf, 1, sizeof Buf, F)) != 0;)
      Bytes.insert(Bytes.end(), Buf, Buf + N);
    std::fclose(F);
    LLVMFuzzerTestOneInput(Bytes.data(), Bytes.size());
    std::printf("ok: %s (%zu bytes)\n", argv[I], Bytes.size());
  }
  return 0;
}
#endif
