//===- tests/support_test.cpp - Support-library tests ---------------------===//
//
// Rational, Diagnostics, the stats registry and the JSON writer/validator.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/Json.h"
#include "support/Rational.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <string>
#include <thread>
#include <vector>

using namespace granlog;

TEST(RationalTest, DefaultIsZero) {
  Rational R;
  EXPECT_TRUE(R.isZero());
  EXPECT_EQ(R.numerator(), 0);
  EXPECT_EQ(R.denominator(), 1);
}

TEST(RationalTest, NormalizesSignAndGcd) {
  Rational R(4, -6);
  EXPECT_EQ(R.numerator(), -2);
  EXPECT_EQ(R.denominator(), 3);
  EXPECT_TRUE(R.isNegative());
}

TEST(RationalTest, ZeroNormalizesDenominator) {
  Rational R(0, 17);
  EXPECT_EQ(R.denominator(), 1);
  EXPECT_TRUE(R.isZero());
}

TEST(RationalTest, Arithmetic) {
  Rational Half(1, 2), Third(1, 3);
  EXPECT_EQ(Half + Third, Rational(5, 6));
  EXPECT_EQ(Half - Third, Rational(1, 6));
  EXPECT_EQ(Half * Third, Rational(1, 6));
  EXPECT_EQ(Half / Third, Rational(3, 2));
  EXPECT_EQ(-Half, Rational(-1, 2));
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(-1, 4), Rational(-1, 2));
  EXPECT_GE(Rational(7), Rational(7));
  EXPECT_NE(Rational(1, 3), Rational(1, 2));
}

TEST(RationalTest, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(6, 2).floor(), 3);
  EXPECT_EQ(Rational(6, 2).ceil(), 3);
}

TEST(RationalTest, Pow) {
  EXPECT_EQ(Rational(2).pow(10), Rational(1024));
  EXPECT_EQ(Rational(2, 3).pow(2), Rational(4, 9));
  EXPECT_EQ(Rational(2).pow(0), Rational(1));
  EXPECT_EQ(Rational(2).pow(-2), Rational(1, 4));
}

TEST(RationalTest, Str) {
  EXPECT_EQ(Rational(3).str(), "3");
  EXPECT_EQ(Rational(-1, 2).str(), "-1/2");
}

TEST(RationalTest, AsDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).asDouble(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-3, 4).asDouble(), -0.75);
}

TEST(DiagnosticsTest, CollectsAndCounts) {
  Diagnostics Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning({1, 2}, "w");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error({3, 4}, "e");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.all().size(), 2u);
  EXPECT_NE(Diags.str().find("3:4: error: e"), std::string::npos);
}

TEST(DiagnosticsTest, UnknownLocation) {
  SourceLoc Loc;
  EXPECT_FALSE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "<unknown>");
}

TEST(DiagnosticsTest, DiagnosticStrPerKind) {
  Diagnostic W{DiagKind::Warning, {2, 7}, "odd mode"};
  EXPECT_EQ(W.str(), "2:7: warning: odd mode");
  Diagnostic N{DiagKind::Note, {}, "see clause 1"};
  EXPECT_EQ(N.str(), "<unknown>: note: see clause 1");
  Diagnostics Diags;
  Diags.note({5, 1}, "n");
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_NE(Diags.str().find("5:1: note: n"), std::string::npos);
}

TEST(StatsTest, CountersAggregate) {
  StatsRegistry S;
  EXPECT_EQ(S.counter("x"), 0u);
  S.add("x");
  S.add("x", 4);
  S.add("y", 2);
  EXPECT_EQ(S.counter("x"), 5u);
  EXPECT_EQ(S.counter("y"), 2u);
  EXPECT_EQ(S.counters().size(), 2u);
  S.clear();
  EXPECT_EQ(S.counter("x"), 0u);
  EXPECT_TRUE(S.counters().empty());
}

TEST(StatsTest, ValuesAccumulate) {
  StatsRegistry S;
  EXPECT_DOUBLE_EQ(S.value("w"), 0.0);
  S.addValue("w", 1.5);
  S.addValue("w", 2.25);
  EXPECT_DOUBLE_EQ(S.value("w"), 3.75);
}

TEST(StatsTest, NullSafeHelpers) {
  statsAdd(nullptr, "x");
  statsAddValue(nullptr, "w", 1.0);
  StatsRegistry S;
  statsAdd(&S, "x", 3);
  statsAddValue(&S, "w", 0.5);
  EXPECT_EQ(S.counter("x"), 3u);
  EXPECT_DOUBLE_EQ(S.value("w"), 0.5);
}

TEST(StatsTest, ConcurrentCountersSumExactly) {
  // The parallel analysis driver increments shared counters from every
  // worker; N threads x M increments over a mix of new and existing keys
  // must lose no update.
  constexpr unsigned Threads = 8;
  constexpr uint64_t PerThread = 2000;
  StatsRegistry S;
  S.add("pre.existing"); // one key created before the threads start
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T != Threads; ++T)
    Workers.emplace_back([&S, T] {
      for (uint64_t I = 0; I != PerThread; ++I) {
        S.add("shared.counter");
        S.add("per.thread." + std::to_string(T)); // insert race path
        S.add("pre.existing", 2);
      }
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(S.counter("shared.counter"), Threads * PerThread);
  EXPECT_EQ(S.counter("pre.existing"), 1 + 2 * Threads * PerThread);
  for (unsigned T = 0; T != Threads; ++T)
    EXPECT_EQ(S.counter("per.thread." + std::to_string(T)), PerThread);
}

TEST(StatsTest, ConcurrentReadersSeeConsistentSnapshots) {
  // counters()/str()/writeJson take snapshots; they must be callable while
  // writers are running (no iterator invalidation, no torn reads).
  StatsRegistry S;
  std::atomic<bool> Stop{false};
  std::thread Writer([&] {
    for (uint64_t I = 0; !Stop.load(); ++I)
      S.add("k" + std::to_string(I % 17));
  });
  for (int I = 0; I != 200; ++I) {
    auto Snapshot = S.counters();
    for (const auto &[Name, Count] : Snapshot)
      EXPECT_GT(Count, 0u) << Name;
    JsonWriter W;
    S.writeJson(W);
    EXPECT_TRUE(jsonValidate(W.str()));
  }
  Stop.store(true);
  Writer.join();
}

TEST(StatsTest, ScopedTimerAccumulates) {
  StatsRegistry S;
  {
    ScopedTimer T(&S, "phase.a");
  }
  {
    ScopedTimer T(&S, "phase.a");
  }
  // Two completed scopes: nonnegative accumulated time, one entry.
  EXPECT_GE(S.value("phase.a"), 0.0);
  ASSERT_EQ(S.values().count("phase.a"), 1u);
}

TEST(StatsTest, ScopedTimerNests) {
  StatsRegistry S;
  {
    ScopedTimer Outer(&S, "phase.total");
    {
      ScopedTimer Inner(&S, "phase.inner");
    }
  }
  // The enclosing timer covers at least the inner scope.
  EXPECT_GE(S.value("phase.total"), S.value("phase.inner"));
}

TEST(StatsTest, ScopedTimerNullRegistryIsNoop) {
  ScopedTimer T(nullptr, "phase.ignored"); // must not crash
}

TEST(StatsTest, StrListsBothKinds) {
  StatsRegistry S;
  S.add("cost.solver.hit.geometric", 2);
  S.addValue("phase.size", 0.5);
  std::string Text = S.str();
  EXPECT_NE(Text.find("cost.solver.hit.geometric"), std::string::npos);
  EXPECT_NE(Text.find("2"), std::string::npos);
  EXPECT_NE(Text.find("phase.size"), std::string::npos);
}

TEST(JsonTest, EscapesSpecials) {
  EXPECT_EQ(jsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(jsonEscape("plain"), "plain");
}

TEST(JsonTest, WriterCommasAndNesting) {
  JsonWriter W;
  W.beginObject();
  W.key("n");
  W.value(3);
  W.key("xs");
  W.beginArray();
  W.value(1.5);
  W.value("s");
  W.value(true);
  W.null();
  W.endArray();
  W.key("empty");
  W.beginObject();
  W.endObject();
  W.endObject();
  EXPECT_EQ(W.str(),
            "{\"n\":3,\"xs\":[1.5,\"s\",true,null],\"empty\":{}}");
  EXPECT_TRUE(jsonValidate(W.str()));
}

TEST(JsonTest, DeterministicNumberFormat) {
  JsonWriter W;
  W.beginArray();
  W.value(42.0);   // integral double: no fraction
  W.value(-3.0);
  W.value(0.25);
  W.endArray();
  EXPECT_EQ(W.str(), "[42,-3,0.25]");
}

TEST(JsonTest, NonFiniteBecomesNull) {
  JsonWriter W;
  W.beginArray();
  W.value(std::numeric_limits<double>::infinity());
  W.value(std::numeric_limits<double>::quiet_NaN());
  W.endArray();
  EXPECT_EQ(W.str(), "[null,null]");
}

TEST(JsonTest, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(jsonValidate("{\"a\": [1, 2.5, -3e2, \"x\\u0041\"]}"));
  EXPECT_TRUE(jsonValidate("  null "));
  EXPECT_TRUE(jsonValidate("[]"));
  EXPECT_FALSE(jsonValidate(""));
  EXPECT_FALSE(jsonValidate("{"));
  EXPECT_FALSE(jsonValidate("{\"a\":1,}"));
  EXPECT_FALSE(jsonValidate("[1 2]"));
  EXPECT_FALSE(jsonValidate("{\"a\":1} extra"));
  EXPECT_FALSE(jsonValidate("\"unterminated"));
  EXPECT_FALSE(jsonValidate("01"));
}

TEST(JsonTest, StatsRegistryRoundTrip) {
  StatsRegistry S;
  S.add("a.count", 7);
  S.addValue("b.time", 1.25);
  JsonWriter W;
  S.writeJson(W);
  EXPECT_TRUE(jsonValidate(W.str()));
  EXPECT_NE(W.str().find("\"a.count\":7"), std::string::npos);
  EXPECT_NE(W.str().find("\"b.time\":1.25"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Atomic file writes under fault injection
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"
#include "support/Io.h"

#include <filesystem>
#include <fstream>
#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace {

/// Installs a fault injector for one test scope and always uninstalls.
struct ScopedInjector {
  explicit ScopedInjector(const std::string &Spec) {
    std::string Error;
    Injector = FaultInjector::fromSpec(Spec, &Error);
    EXPECT_TRUE(Injector) << Error;
    setFaultInjector(Injector.get());
  }
  ~ScopedInjector() { setFaultInjector(nullptr); }
  std::unique_ptr<FaultInjector> Injector;
};

std::filesystem::path freshIoDir(const char *Name) {
  std::filesystem::path Dir =
      std::filesystem::temp_directory_path() /
      (std::string(Name) + "-" + std::to_string(::getpid()));
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

/// Temp-file names next to \p Target ("<file>.tmp.*" residue).
std::vector<std::string> tempResidue(const std::filesystem::path &Target) {
  std::vector<std::string> Residue;
  std::string Prefix = Target.filename().string() + ".tmp.";
  for (const auto &Entry :
       std::filesystem::directory_iterator(Target.parent_path()))
    if (Entry.path().filename().string().rfind(Prefix, 0) == 0)
      Residue.push_back(Entry.path().filename().string());
  return Residue;
}

TEST(IoTest, WriteFileAtomicRoundTrips) {
  auto Dir = freshIoDir("granlog-io-ok");
  auto Target = Dir / "out.json";
  std::string Error;
  EXPECT_TRUE(writeFileAtomic(Target.string(), "{\"k\":1}", &Error)) << Error;
  std::ifstream In(Target);
  std::string Got((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(Got, "{\"k\":1}");
  EXPECT_TRUE(tempResidue(Target).empty());
  std::filesystem::remove_all(Dir);
}

/// Regression: every failure path of writeFileAtomic must clean up its
/// temp file — a daemon that flushes caches for years must not leak one
/// temp per failed write.
TEST(IoTest, FailedWritesLeaveNoTempResidue) {
  for (const char *Site :
       {"io.write.open", "io.write.short", "io.write.rename"}) {
    ScopedInjector Inject(std::string("seed=1,rate=1,sites=") + Site);
    auto Dir = freshIoDir("granlog-io-fail");
    auto Target = Dir / "out.json";
    std::string Error;
    EXPECT_FALSE(writeFileAtomic(Target.string(), "payload", &Error)) << Site;
    EXPECT_NE(Error, "") << Site;
    EXPECT_FALSE(std::filesystem::exists(Target)) << Site;
    EXPECT_TRUE(tempResidue(Target).empty())
        << Site << " left: " << tempResidue(Target).front();
    std::filesystem::remove_all(Dir);
  }
}

TEST(IoTest, TornWriteLeavesHalfTheTarget) {
  ScopedInjector Inject("seed=1,rate=1,sites=io.write.torn");
  auto Dir = freshIoDir("granlog-io-torn");
  auto Target = Dir / "out.json";
  std::string Error;
  EXPECT_FALSE(writeFileAtomic(Target.string(), "0123456789", &Error));
  // The simulated crash-mid-write leaves a torn target (readers must
  // reject it) but still no temp residue.
  EXPECT_TRUE(std::filesystem::exists(Target));
  EXPECT_EQ(std::filesystem::file_size(Target), 5u);
  EXPECT_TRUE(tempResidue(Target).empty());
  std::filesystem::remove_all(Dir);
}

TEST(IoTest, SweepRemovesOnlyDeadWritersTemps) {
  auto Dir = freshIoDir("granlog-io-sweep");
  auto Target = Dir / "cache.json";
  // A live writer's temp (our own pid) must survive the sweep; a dead
  // writer's temp and an unparseable name must go.
  auto Live = Dir / ("cache.json.tmp." + std::to_string(::getpid()) + ".0");
  auto Dead = Dir / "cache.json.tmp.999999999.4";
  auto Junk = Dir / "cache.json.tmp.garbage";
  auto Unrelated = Dir / "other.json.tmp.999999999.0";
  for (const auto &P : {Live, Dead, Junk, Unrelated})
    std::ofstream(P) << "x";
  EXPECT_EQ(sweepStaleTemps(Target.string()), 2u);
  EXPECT_TRUE(std::filesystem::exists(Live));
  EXPECT_FALSE(std::filesystem::exists(Dead));
  EXPECT_FALSE(std::filesystem::exists(Junk));
  EXPECT_TRUE(std::filesystem::exists(Unrelated)); // different target
  std::filesystem::remove_all(Dir);
}

} // namespace
