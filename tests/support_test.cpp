//===- tests/support_test.cpp - Rational and Diagnostics tests ------------===//

#include "support/Diagnostics.h"
#include "support/Rational.h"

#include <gtest/gtest.h>

using namespace granlog;

TEST(RationalTest, DefaultIsZero) {
  Rational R;
  EXPECT_TRUE(R.isZero());
  EXPECT_EQ(R.numerator(), 0);
  EXPECT_EQ(R.denominator(), 1);
}

TEST(RationalTest, NormalizesSignAndGcd) {
  Rational R(4, -6);
  EXPECT_EQ(R.numerator(), -2);
  EXPECT_EQ(R.denominator(), 3);
  EXPECT_TRUE(R.isNegative());
}

TEST(RationalTest, ZeroNormalizesDenominator) {
  Rational R(0, 17);
  EXPECT_EQ(R.denominator(), 1);
  EXPECT_TRUE(R.isZero());
}

TEST(RationalTest, Arithmetic) {
  Rational Half(1, 2), Third(1, 3);
  EXPECT_EQ(Half + Third, Rational(5, 6));
  EXPECT_EQ(Half - Third, Rational(1, 6));
  EXPECT_EQ(Half * Third, Rational(1, 6));
  EXPECT_EQ(Half / Third, Rational(3, 2));
  EXPECT_EQ(-Half, Rational(-1, 2));
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(-1, 4), Rational(-1, 2));
  EXPECT_GE(Rational(7), Rational(7));
  EXPECT_NE(Rational(1, 3), Rational(1, 2));
}

TEST(RationalTest, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(6, 2).floor(), 3);
  EXPECT_EQ(Rational(6, 2).ceil(), 3);
}

TEST(RationalTest, Pow) {
  EXPECT_EQ(Rational(2).pow(10), Rational(1024));
  EXPECT_EQ(Rational(2, 3).pow(2), Rational(4, 9));
  EXPECT_EQ(Rational(2).pow(0), Rational(1));
  EXPECT_EQ(Rational(2).pow(-2), Rational(1, 4));
}

TEST(RationalTest, Str) {
  EXPECT_EQ(Rational(3).str(), "3");
  EXPECT_EQ(Rational(-1, 2).str(), "-1/2");
}

TEST(RationalTest, AsDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).asDouble(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-3, 4).asDouble(), -0.75);
}

TEST(DiagnosticsTest, CollectsAndCounts) {
  Diagnostics Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning({1, 2}, "w");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error({3, 4}, "e");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.all().size(), 2u);
  EXPECT_NE(Diags.str().find("3:4: error: e"), std::string::npos);
}

TEST(DiagnosticsTest, UnknownLocation) {
  SourceLoc Loc;
  EXPECT_FALSE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "<unknown>");
}
