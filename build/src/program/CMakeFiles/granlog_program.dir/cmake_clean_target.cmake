file(REMOVE_RECURSE
  "libgranlog_program.a"
)
