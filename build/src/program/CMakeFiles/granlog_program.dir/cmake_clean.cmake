file(REMOVE_RECURSE
  "CMakeFiles/granlog_program.dir/CallGraph.cpp.o"
  "CMakeFiles/granlog_program.dir/CallGraph.cpp.o.d"
  "CMakeFiles/granlog_program.dir/Program.cpp.o"
  "CMakeFiles/granlog_program.dir/Program.cpp.o.d"
  "libgranlog_program.a"
  "libgranlog_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granlog_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
