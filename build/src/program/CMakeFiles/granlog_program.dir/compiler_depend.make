# Empty compiler generated dependencies file for granlog_program.
# This may be replaced when dependencies are built.
