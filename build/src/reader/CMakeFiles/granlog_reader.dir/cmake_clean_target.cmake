file(REMOVE_RECURSE
  "libgranlog_reader.a"
)
