# Empty compiler generated dependencies file for granlog_reader.
# This may be replaced when dependencies are built.
