file(REMOVE_RECURSE
  "CMakeFiles/granlog_reader.dir/Lexer.cpp.o"
  "CMakeFiles/granlog_reader.dir/Lexer.cpp.o.d"
  "CMakeFiles/granlog_reader.dir/OpTable.cpp.o"
  "CMakeFiles/granlog_reader.dir/OpTable.cpp.o.d"
  "CMakeFiles/granlog_reader.dir/Parser.cpp.o"
  "CMakeFiles/granlog_reader.dir/Parser.cpp.o.d"
  "libgranlog_reader.a"
  "libgranlog_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granlog_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
