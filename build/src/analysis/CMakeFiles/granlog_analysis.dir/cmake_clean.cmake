file(REMOVE_RECURSE
  "CMakeFiles/granlog_analysis.dir/DepGraph.cpp.o"
  "CMakeFiles/granlog_analysis.dir/DepGraph.cpp.o.d"
  "CMakeFiles/granlog_analysis.dir/Determinacy.cpp.o"
  "CMakeFiles/granlog_analysis.dir/Determinacy.cpp.o.d"
  "CMakeFiles/granlog_analysis.dir/Modes.cpp.o"
  "CMakeFiles/granlog_analysis.dir/Modes.cpp.o.d"
  "CMakeFiles/granlog_analysis.dir/Solutions.cpp.o"
  "CMakeFiles/granlog_analysis.dir/Solutions.cpp.o.d"
  "libgranlog_analysis.a"
  "libgranlog_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granlog_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
