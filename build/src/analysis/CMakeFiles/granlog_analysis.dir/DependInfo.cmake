
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/DepGraph.cpp" "src/analysis/CMakeFiles/granlog_analysis.dir/DepGraph.cpp.o" "gcc" "src/analysis/CMakeFiles/granlog_analysis.dir/DepGraph.cpp.o.d"
  "/root/repo/src/analysis/Determinacy.cpp" "src/analysis/CMakeFiles/granlog_analysis.dir/Determinacy.cpp.o" "gcc" "src/analysis/CMakeFiles/granlog_analysis.dir/Determinacy.cpp.o.d"
  "/root/repo/src/analysis/Modes.cpp" "src/analysis/CMakeFiles/granlog_analysis.dir/Modes.cpp.o" "gcc" "src/analysis/CMakeFiles/granlog_analysis.dir/Modes.cpp.o.d"
  "/root/repo/src/analysis/Solutions.cpp" "src/analysis/CMakeFiles/granlog_analysis.dir/Solutions.cpp.o" "gcc" "src/analysis/CMakeFiles/granlog_analysis.dir/Solutions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/program/CMakeFiles/granlog_program.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/granlog_term.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/granlog_support.dir/DependInfo.cmake"
  "/root/repo/build/src/reader/CMakeFiles/granlog_reader.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
