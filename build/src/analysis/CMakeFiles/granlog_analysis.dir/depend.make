# Empty dependencies file for granlog_analysis.
# This may be replaced when dependencies are built.
