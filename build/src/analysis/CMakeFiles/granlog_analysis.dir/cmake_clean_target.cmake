file(REMOVE_RECURSE
  "libgranlog_analysis.a"
)
