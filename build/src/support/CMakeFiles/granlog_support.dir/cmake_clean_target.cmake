file(REMOVE_RECURSE
  "libgranlog_support.a"
)
