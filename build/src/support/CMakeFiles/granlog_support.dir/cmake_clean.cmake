file(REMOVE_RECURSE
  "CMakeFiles/granlog_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/granlog_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/granlog_support.dir/Rational.cpp.o"
  "CMakeFiles/granlog_support.dir/Rational.cpp.o.d"
  "libgranlog_support.a"
  "libgranlog_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granlog_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
