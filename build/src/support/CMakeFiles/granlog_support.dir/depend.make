# Empty dependencies file for granlog_support.
# This may be replaced when dependencies are built.
