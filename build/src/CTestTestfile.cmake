# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("term")
subdirs("reader")
subdirs("program")
subdirs("analysis")
subdirs("expr")
subdirs("diffeq")
subdirs("size")
subdirs("cost")
subdirs("core")
subdirs("interp")
subdirs("runtime")
subdirs("wam")
subdirs("corpus")
