# Empty compiler generated dependencies file for granlog_corpus.
# This may be replaced when dependencies are built.
