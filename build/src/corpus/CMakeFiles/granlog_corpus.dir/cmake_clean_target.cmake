file(REMOVE_RECURSE
  "libgranlog_corpus.a"
)
