file(REMOVE_RECURSE
  "CMakeFiles/granlog_corpus.dir/Corpus.cpp.o"
  "CMakeFiles/granlog_corpus.dir/Corpus.cpp.o.d"
  "CMakeFiles/granlog_corpus.dir/Harness.cpp.o"
  "CMakeFiles/granlog_corpus.dir/Harness.cpp.o.d"
  "libgranlog_corpus.a"
  "libgranlog_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granlog_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
