file(REMOVE_RECURSE
  "CMakeFiles/granlog_runtime.dir/CostTree.cpp.o"
  "CMakeFiles/granlog_runtime.dir/CostTree.cpp.o.d"
  "CMakeFiles/granlog_runtime.dir/Scheduler.cpp.o"
  "CMakeFiles/granlog_runtime.dir/Scheduler.cpp.o.d"
  "libgranlog_runtime.a"
  "libgranlog_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granlog_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
