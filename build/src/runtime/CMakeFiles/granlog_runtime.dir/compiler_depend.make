# Empty compiler generated dependencies file for granlog_runtime.
# This may be replaced when dependencies are built.
