file(REMOVE_RECURSE
  "libgranlog_runtime.a"
)
