# Empty dependencies file for granlog_term.
# This may be replaced when dependencies are built.
