file(REMOVE_RECURSE
  "CMakeFiles/granlog_term.dir/Term.cpp.o"
  "CMakeFiles/granlog_term.dir/Term.cpp.o.d"
  "CMakeFiles/granlog_term.dir/TermWriter.cpp.o"
  "CMakeFiles/granlog_term.dir/TermWriter.cpp.o.d"
  "CMakeFiles/granlog_term.dir/Unify.cpp.o"
  "CMakeFiles/granlog_term.dir/Unify.cpp.o.d"
  "libgranlog_term.a"
  "libgranlog_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granlog_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
