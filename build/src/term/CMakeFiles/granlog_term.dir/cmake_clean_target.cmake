file(REMOVE_RECURSE
  "libgranlog_term.a"
)
