# Empty compiler generated dependencies file for granlog_cost.
# This may be replaced when dependencies are built.
