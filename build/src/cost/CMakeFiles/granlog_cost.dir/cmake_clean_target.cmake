file(REMOVE_RECURSE
  "libgranlog_cost.a"
)
