file(REMOVE_RECURSE
  "CMakeFiles/granlog_cost.dir/CostAnalysis.cpp.o"
  "CMakeFiles/granlog_cost.dir/CostAnalysis.cpp.o.d"
  "libgranlog_cost.a"
  "libgranlog_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granlog_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
