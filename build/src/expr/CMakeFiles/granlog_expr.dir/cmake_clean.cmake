file(REMOVE_RECURSE
  "CMakeFiles/granlog_expr.dir/Expr.cpp.o"
  "CMakeFiles/granlog_expr.dir/Expr.cpp.o.d"
  "CMakeFiles/granlog_expr.dir/ExprOps.cpp.o"
  "CMakeFiles/granlog_expr.dir/ExprOps.cpp.o.d"
  "libgranlog_expr.a"
  "libgranlog_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granlog_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
