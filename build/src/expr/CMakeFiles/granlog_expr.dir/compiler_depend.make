# Empty compiler generated dependencies file for granlog_expr.
# This may be replaced when dependencies are built.
