file(REMOVE_RECURSE
  "libgranlog_expr.a"
)
