file(REMOVE_RECURSE
  "libgranlog_diffeq.a"
)
