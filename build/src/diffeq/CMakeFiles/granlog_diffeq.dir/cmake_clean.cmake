file(REMOVE_RECURSE
  "CMakeFiles/granlog_diffeq.dir/Recurrence.cpp.o"
  "CMakeFiles/granlog_diffeq.dir/Recurrence.cpp.o.d"
  "CMakeFiles/granlog_diffeq.dir/Solver.cpp.o"
  "CMakeFiles/granlog_diffeq.dir/Solver.cpp.o.d"
  "libgranlog_diffeq.a"
  "libgranlog_diffeq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granlog_diffeq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
