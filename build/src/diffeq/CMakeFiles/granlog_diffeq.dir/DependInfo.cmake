
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diffeq/Recurrence.cpp" "src/diffeq/CMakeFiles/granlog_diffeq.dir/Recurrence.cpp.o" "gcc" "src/diffeq/CMakeFiles/granlog_diffeq.dir/Recurrence.cpp.o.d"
  "/root/repo/src/diffeq/Solver.cpp" "src/diffeq/CMakeFiles/granlog_diffeq.dir/Solver.cpp.o" "gcc" "src/diffeq/CMakeFiles/granlog_diffeq.dir/Solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/granlog_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/granlog_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
