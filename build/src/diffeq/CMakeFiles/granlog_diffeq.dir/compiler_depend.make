# Empty compiler generated dependencies file for granlog_diffeq.
# This may be replaced when dependencies are built.
