file(REMOVE_RECURSE
  "CMakeFiles/granlog_core.dir/GranularityAnalyzer.cpp.o"
  "CMakeFiles/granlog_core.dir/GranularityAnalyzer.cpp.o.d"
  "CMakeFiles/granlog_core.dir/Threshold.cpp.o"
  "CMakeFiles/granlog_core.dir/Threshold.cpp.o.d"
  "CMakeFiles/granlog_core.dir/Transform.cpp.o"
  "CMakeFiles/granlog_core.dir/Transform.cpp.o.d"
  "libgranlog_core.a"
  "libgranlog_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granlog_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
