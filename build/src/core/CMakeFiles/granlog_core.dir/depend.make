# Empty dependencies file for granlog_core.
# This may be replaced when dependencies are built.
