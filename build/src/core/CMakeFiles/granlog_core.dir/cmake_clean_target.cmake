file(REMOVE_RECURSE
  "libgranlog_core.a"
)
