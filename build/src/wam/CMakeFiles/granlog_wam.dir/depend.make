# Empty dependencies file for granlog_wam.
# This may be replaced when dependencies are built.
