file(REMOVE_RECURSE
  "libgranlog_wam.a"
)
