file(REMOVE_RECURSE
  "CMakeFiles/granlog_wam.dir/WamCompiler.cpp.o"
  "CMakeFiles/granlog_wam.dir/WamCompiler.cpp.o.d"
  "libgranlog_wam.a"
  "libgranlog_wam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granlog_wam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
