file(REMOVE_RECURSE
  "CMakeFiles/granlog_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/granlog_interp.dir/Interpreter.cpp.o.d"
  "libgranlog_interp.a"
  "libgranlog_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granlog_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
