# Empty compiler generated dependencies file for granlog_interp.
# This may be replaced when dependencies are built.
