file(REMOVE_RECURSE
  "libgranlog_interp.a"
)
