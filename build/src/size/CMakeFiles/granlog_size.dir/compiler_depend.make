# Empty compiler generated dependencies file for granlog_size.
# This may be replaced when dependencies are built.
