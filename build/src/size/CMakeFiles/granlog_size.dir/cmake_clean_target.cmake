file(REMOVE_RECURSE
  "libgranlog_size.a"
)
