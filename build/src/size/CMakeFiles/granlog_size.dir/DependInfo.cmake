
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/size/Measures.cpp" "src/size/CMakeFiles/granlog_size.dir/Measures.cpp.o" "gcc" "src/size/CMakeFiles/granlog_size.dir/Measures.cpp.o.d"
  "/root/repo/src/size/SizeAnalysis.cpp" "src/size/CMakeFiles/granlog_size.dir/SizeAnalysis.cpp.o" "gcc" "src/size/CMakeFiles/granlog_size.dir/SizeAnalysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/granlog_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/diffeq/CMakeFiles/granlog_diffeq.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/granlog_program.dir/DependInfo.cmake"
  "/root/repo/build/src/reader/CMakeFiles/granlog_reader.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/granlog_term.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/granlog_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/granlog_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
