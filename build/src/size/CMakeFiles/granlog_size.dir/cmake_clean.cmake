file(REMOVE_RECURSE
  "CMakeFiles/granlog_size.dir/Measures.cpp.o"
  "CMakeFiles/granlog_size.dir/Measures.cpp.o.d"
  "CMakeFiles/granlog_size.dir/SizeAnalysis.cpp.o"
  "CMakeFiles/granlog_size.dir/SizeAnalysis.cpp.o.d"
  "libgranlog_size.a"
  "libgranlog_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granlog_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
