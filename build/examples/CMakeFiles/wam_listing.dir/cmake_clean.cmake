file(REMOVE_RECURSE
  "CMakeFiles/wam_listing.dir/wam_listing.cpp.o"
  "CMakeFiles/wam_listing.dir/wam_listing.cpp.o.d"
  "wam_listing"
  "wam_listing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wam_listing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
