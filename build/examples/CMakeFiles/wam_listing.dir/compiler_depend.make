# Empty compiler generated dependencies file for wam_listing.
# This may be replaced when dependencies are built.
