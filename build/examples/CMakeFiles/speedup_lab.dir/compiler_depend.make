# Empty compiler generated dependencies file for speedup_lab.
# This may be replaced when dependencies are built.
