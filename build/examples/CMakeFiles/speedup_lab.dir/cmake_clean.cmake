file(REMOVE_RECURSE
  "CMakeFiles/speedup_lab.dir/speedup_lab.cpp.o"
  "CMakeFiles/speedup_lab.dir/speedup_lab.cpp.o.d"
  "speedup_lab"
  "speedup_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedup_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
