# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_analyze_benchmark "/root/repo/build/examples/analyze_file" "fib" "48")
set_tests_properties(example_analyze_benchmark PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_speedup_lab "/root/repo/build/examples/speedup_lab" "fib" "10" "4")
set_tests_properties(example_speedup_lab PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wam_listing "/root/repo/build/examples/wam_listing" "quick_sort")
set_tests_properties(example_wam_listing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
