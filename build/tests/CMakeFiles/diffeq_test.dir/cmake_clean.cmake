file(REMOVE_RECURSE
  "CMakeFiles/diffeq_test.dir/diffeq_test.cpp.o"
  "CMakeFiles/diffeq_test.dir/diffeq_test.cpp.o.d"
  "diffeq_test"
  "diffeq_test.pdb"
  "diffeq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffeq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
