# Empty dependencies file for diffeq_test.
# This may be replaced when dependencies are built.
