# Empty dependencies file for size_test.
# This may be replaced when dependencies are built.
