file(REMOVE_RECURSE
  "CMakeFiles/size_test.dir/size_test.cpp.o"
  "CMakeFiles/size_test.dir/size_test.cpp.o.d"
  "size_test"
  "size_test.pdb"
  "size_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/size_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
