file(REMOVE_RECURSE
  "CMakeFiles/wam_test.dir/wam_test.cpp.o"
  "CMakeFiles/wam_test.dir/wam_test.cpp.o.d"
  "wam_test"
  "wam_test.pdb"
  "wam_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
