# Empty dependencies file for wam_test.
# This may be replaced when dependencies are built.
