file(REMOVE_RECURSE
  "CMakeFiles/solutions_test.dir/solutions_test.cpp.o"
  "CMakeFiles/solutions_test.dir/solutions_test.cpp.o.d"
  "solutions_test"
  "solutions_test.pdb"
  "solutions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solutions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
