# Empty dependencies file for solutions_test.
# This may be replaced when dependencies are built.
