# Empty dependencies file for program_print_test.
# This may be replaced when dependencies are built.
