file(REMOVE_RECURSE
  "CMakeFiles/program_print_test.dir/program_print_test.cpp.o"
  "CMakeFiles/program_print_test.dir/program_print_test.cpp.o.d"
  "program_print_test"
  "program_print_test.pdb"
  "program_print_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/program_print_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
