# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/term_test[1]_include.cmake")
include("/root/repo/build/tests/reader_test[1]_include.cmake")
include("/root/repo/build/tests/program_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/diffeq_test[1]_include.cmake")
include("/root/repo/build/tests/size_test[1]_include.cmake")
include("/root/repo/build/tests/cost_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/soundness_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/solutions_test[1]_include.cmake")
include("/root/repo/build/tests/wam_test[1]_include.cmake")
include("/root/repo/build/tests/measures_test[1]_include.cmake")
include("/root/repo/build/tests/determinacy_test[1]_include.cmake")
include("/root/repo/build/tests/program_print_test[1]_include.cmake")
