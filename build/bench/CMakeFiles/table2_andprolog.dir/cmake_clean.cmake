file(REMOVE_RECURSE
  "CMakeFiles/table2_andprolog.dir/table2_andprolog.cpp.o"
  "CMakeFiles/table2_andprolog.dir/table2_andprolog.cpp.o.d"
  "table2_andprolog"
  "table2_andprolog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_andprolog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
