# Empty dependencies file for table2_andprolog.
# This may be replaced when dependencies are built.
