# Empty compiler generated dependencies file for metric_comparison.
# This may be replaced when dependencies are built.
