file(REMOVE_RECURSE
  "CMakeFiles/fig2_grainsize.dir/fig2_grainsize.cpp.o"
  "CMakeFiles/fig2_grainsize.dir/fig2_grainsize.cpp.o.d"
  "fig2_grainsize"
  "fig2_grainsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_grainsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
