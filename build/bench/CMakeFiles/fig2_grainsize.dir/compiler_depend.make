# Empty compiler generated dependencies file for fig2_grainsize.
# This may be replaced when dependencies are built.
