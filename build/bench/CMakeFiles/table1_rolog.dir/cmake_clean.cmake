file(REMOVE_RECURSE
  "CMakeFiles/table1_rolog.dir/table1_rolog.cpp.o"
  "CMakeFiles/table1_rolog.dir/table1_rolog.cpp.o.d"
  "table1_rolog"
  "table1_rolog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_rolog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
