# Empty dependencies file for table1_rolog.
# This may be replaced when dependencies are built.
