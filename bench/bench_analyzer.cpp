//===- bench/bench_analyzer.cpp - Analyzer micro-benchmarks ---------------===//
//
// The paper requires the analysis to be cheap enough to run inside a
// compiler ("since our analyses are intended to be performed at compile
// time, it is essential that they be efficient", Section 8).  These
// google-benchmark measurements time each pipeline stage on the full
// benchmark corpus.
//
//===----------------------------------------------------------------------===//

#include "core/GranularityAnalyzer.h"
#include "core/Transform.h"
#include "corpus/Corpus.h"
#include "support/Json.h"
#include "support/Stats.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>

using namespace granlog;

namespace {

void BM_ParseCorpus(benchmark::State &State) {
  for (auto _ : State) {
    for (const BenchmarkDef &B : benchmarkCorpus()) {
      TermArena Arena;
      Diagnostics Diags;
      auto P = loadProgram(B.Source, Arena, Diags);
      benchmark::DoNotOptimize(P);
    }
  }
}
BENCHMARK(BM_ParseCorpus);

void BM_AnalyzeOneProgram(benchmark::State &State, const char *Name) {
  const BenchmarkDef *B = findBenchmark(Name);
  for (auto _ : State) {
    TermArena Arena;
    Diagnostics Diags;
    auto P = loadProgram(B->Source, Arena, Diags);
    GranularityAnalyzer GA(*P, {CostMetric::resolutions(), 65.0});
    GA.run();
    benchmark::DoNotOptimize(GA.report());
  }
}
BENCHMARK_CAPTURE(BM_AnalyzeOneProgram, fib, "fib");
BENCHMARK_CAPTURE(BM_AnalyzeOneProgram, quick_sort, "quick_sort");
BENCHMARK_CAPTURE(BM_AnalyzeOneProgram, merge_sort, "merge_sort");
BENCHMARK_CAPTURE(BM_AnalyzeOneProgram, fft, "fft");
BENCHMARK_CAPTURE(BM_AnalyzeOneProgram, matrix_multi, "matrix_multi");

void BM_AnalyzeWholeCorpus(benchmark::State &State) {
  for (auto _ : State) {
    for (const BenchmarkDef &B : benchmarkCorpus()) {
      TermArena Arena;
      Diagnostics Diags;
      auto P = loadProgram(B.Source, Arena, Diags);
      GranularityAnalyzer GA(*P, {CostMetric::resolutions(), 65.0});
      GA.run();
      TransformStats Stats;
      Program T = applyGranularityControl(*P, GA, &Stats);
      benchmark::DoNotOptimize(T.predicates().size());
    }
  }
}
BENCHMARK(BM_AnalyzeWholeCorpus);

void BM_TransformOnly(benchmark::State &State) {
  TermArena Arena;
  Diagnostics Diags;
  const BenchmarkDef *B = findBenchmark("fib");
  auto P = loadProgram(B->Source, Arena, Diags);
  GranularityAnalyzer GA(*P, {CostMetric::resolutions(), 65.0});
  GA.run();
  for (auto _ : State) {
    TransformStats Stats;
    Program T = applyGranularityControl(*P, GA, &Stats);
    benchmark::DoNotOptimize(T.predicates().size());
  }
}
BENCHMARK(BM_TransformOnly);

/// Analyzes the whole corpus once with instrumentation on and writes one
/// JSON document (schema version: StatsJsonVersion) carrying, for every
/// benchmark, the stats registry (phase timings, solver schema hits) and
/// per-predicate provenance.  This is the machine-readable side of the
/// Section 8 efficiency claim: CI can diff phase timings across commits.
bool writeCorpusStats(const char *Path) {
  JsonWriter W;
  W.beginObject();
  W.key("version");
  W.value(StatsJsonVersion);
  W.key("benchmarks");
  W.beginArray();
  for (const BenchmarkDef &B : benchmarkCorpus()) {
    TermArena Arena;
    Diagnostics Diags;
    auto P = loadProgram(B.Source, Arena, Diags);
    if (!P)
      continue;
    StatsRegistry Stats;
    AnalyzerOptions Options{CostMetric::resolutions(), 65.0};
    Options.Stats = &Stats;
    GranularityAnalyzer GA(*P, Options);
    GA.run();
    W.beginObject();
    W.key("name");
    W.value(B.Name);
    W.key("analysis");
    GA.writeJson(W);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << W.str() << '\n';
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *StatsOut = nullptr;
  // Strip our flag before google-benchmark sees the argument list.
  int OutArgc = 0;
  for (int I = 0; I < Argc; ++I) {
    constexpr const char Flag[] = "--granlog-stats-out=";
    if (std::strncmp(Argv[I], Flag, sizeof(Flag) - 1) == 0)
      StatsOut = Argv[I] + sizeof(Flag) - 1;
    else
      Argv[OutArgc++] = Argv[I];
  }
  Argc = OutArgc;

  if (StatsOut && !writeCorpusStats(StatsOut)) {
    std::fprintf(stderr, "error: cannot write %s\n", StatsOut);
    return 1;
  }

  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
