//===- bench/bench_analyzer.cpp - Analyzer micro-benchmarks ---------------===//
//
// The paper requires the analysis to be cheap enough to run inside a
// compiler ("since our analyses are intended to be performed at compile
// time, it is essential that they be efficient", Section 8).  These
// google-benchmark measurements time each pipeline stage on the full
// benchmark corpus.
//
//===----------------------------------------------------------------------===//

#include "core/AnalysisSession.h"
#include "core/GranularityAnalyzer.h"
#include "core/Transform.h"
#include "corpus/Corpus.h"
#include "corpus/Harness.h"
#include "corpus/ShardRunner.h"
#include "expr/Expr.h"
#include "expr/ExprInterner.h"
#include "program/Generator.h"
#include "support/Histogram.h"
#include "support/Io.h"
#include "support/Json.h"
#include "support/Stats.h"
#include "support/TraceEvent.h"
#include "support/Tracer.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

using namespace granlog;

namespace {

void BM_ParseCorpus(benchmark::State &State) {
  for (auto _ : State) {
    for (const BenchmarkDef &B : benchmarkCorpus()) {
      TermArena Arena;
      Diagnostics Diags;
      auto P = loadProgram(B.Source, Arena, Diags);
      benchmark::DoNotOptimize(P);
    }
  }
}
BENCHMARK(BM_ParseCorpus);

void BM_AnalyzeOneProgram(benchmark::State &State, const char *Name) {
  const BenchmarkDef *B = findBenchmark(Name);
  for (auto _ : State) {
    TermArena Arena;
    Diagnostics Diags;
    auto P = loadProgram(B->Source, Arena, Diags);
    GranularityAnalyzer GA(*P, {CostMetric::resolutions(), 65.0});
    GA.run();
    benchmark::DoNotOptimize(GA.report());
  }
}
BENCHMARK_CAPTURE(BM_AnalyzeOneProgram, fib, "fib");
BENCHMARK_CAPTURE(BM_AnalyzeOneProgram, quick_sort, "quick_sort");
BENCHMARK_CAPTURE(BM_AnalyzeOneProgram, merge_sort, "merge_sort");
BENCHMARK_CAPTURE(BM_AnalyzeOneProgram, fft, "fft");
BENCHMARK_CAPTURE(BM_AnalyzeOneProgram, matrix_multi, "matrix_multi");

void BM_AnalyzeWholeCorpus(benchmark::State &State) {
  for (auto _ : State) {
    for (const BenchmarkDef &B : benchmarkCorpus()) {
      TermArena Arena;
      Diagnostics Diags;
      auto P = loadProgram(B.Source, Arena, Diags);
      GranularityAnalyzer GA(*P, {CostMetric::resolutions(), 65.0});
      GA.run();
      TransformStats Stats;
      Program T = applyGranularityControl(*P, GA, &Stats);
      benchmark::DoNotOptimize(T.predicates().size());
    }
  }
}
BENCHMARK(BM_AnalyzeWholeCorpus);

/// The batch driver: every corpus benchmark analyzed concurrently on N
/// worker threads with a shared recurrence memo cache.  Compare Arg(1)
/// vs Arg(8) for the multi-core scaling of the analysis pipeline.
void BM_BatchAnalyzeCorpus(benchmark::State &State) {
  BatchConfig Config;
  Config.Jobs = static_cast<unsigned>(State.range(0));
  Config.CollectStats = false; // measure the pipeline, not JSON rendering
  for (auto _ : State) {
    BatchResult Batch = analyzeCorpusBatch(Config);
    benchmark::DoNotOptimize(Batch.Results.size());
  }
}
BENCHMARK(BM_BatchAnalyzeCorpus)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Canonical-form construction: the factory functions (flatten, fold,
/// merge like terms, sort by compareExpr) are the inner loop of both
/// equation layers.  Hash-consing turns the equality tests inside the
/// merge/sort steps into pointer comparisons.
void BM_ExprConstruct(benchmark::State &State) {
  for (auto _ : State) {
    ExprRef N = makeVar("n");
    ExprRef M = makeVar("m");
    std::vector<ExprRef> Terms;
    for (int64_t I = 0; I != 24; ++I) {
      Terms.push_back(
          makeMul(makeNumber(I + 1), makePow(N, makeNumber(I % 7))));
      Terms.push_back(makeMax(makeAdd(N, makeNumber(I)),
                              makeMul(makeNumber(I + 2), M)));
      Terms.push_back(makeMul(makeLog2(makeAdd(N, makeNumber(I))), M));
    }
    ExprRef E = makeAdd(std::move(Terms));
    benchmark::DoNotOptimize(E);
  }
}
BENCHMARK(BM_ExprConstruct);

/// A deeply shared expression: each level references the previous one
/// twice, so the *tree* has 2^Depth nodes while the DAG has O(Depth).
/// Traversals that walk the tree (pre-interning substituteVar) are
/// exponential here; identity-memoized DAG walks are linear.
ExprRef deepSharedExpr(unsigned Depth) {
  ExprRef E = makeVar("n");
  for (unsigned I = 0; I != Depth; ++I)
    E = makeMax(makeAdd(E, makeNumber(1)),
                makeMul(makeNumber(2), E));
  return E;
}

void BM_SubstituteDeep(benchmark::State &State) {
  ExprRef E = deepSharedExpr(static_cast<unsigned>(State.range(0)));
  ExprRef Replacement = makeAdd(makeVar("m"), makeNumber(1));
  for (auto _ : State) {
    ExprRef R = substituteVar(E, "n", Replacement);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_SubstituteDeep)->Arg(12)->Arg(16)->Arg(18);

/// The incremental-reanalysis scenario: the largest corpus program, and
/// the same program with one clause appended to its topmost predicate
/// (max SCC id), so the edit dirties as few SCCs as possible — the case
/// an editor-integrated analyzer sees on every keystroke.
struct IncrementalScenario {
  std::string Name;   ///< corpus benchmark name
  std::string Base;   ///< unedited source
  std::string Edited; ///< one appended clause
  bool Ok = false;
};

const IncrementalScenario &incrementalScenario() {
  static const IncrementalScenario S = [] {
    IncrementalScenario Out;
    const BenchmarkDef *Largest = nullptr;
    for (const BenchmarkDef &B : benchmarkCorpus())
      if (!Largest ||
          std::strlen(B.Source) > std::strlen(Largest->Source))
        Largest = &B;
    if (!Largest)
      return Out;
    TermArena Arena;
    Diagnostics Diags;
    std::optional<Program> P = loadProgram(Largest->Source, Arena, Diags);
    if (!P || P->predicates().empty())
      return Out;
    CallGraph CG(*P);
    Functor Top = P->predicates().front()->functor();
    for (const auto &Pred : P->predicates())
      if (CG.sccId(Pred->functor()) > CG.sccId(Top))
        Top = Pred->functor();
    std::string Fact = P->symbols().text(Top.Name);
    if (Top.Arity > 0) {
      Fact += "(0";
      for (unsigned I = 1; I != Top.Arity; ++I)
        Fact += ",0";
      Fact += ")";
    }
    Out.Name = Largest->Name;
    Out.Base = Largest->Source;
    Out.Edited = Out.Base + "\n" + Fact + ".\n";
    Out.Ok = true;
    return Out;
  }();
  return S;
}

/// Arg 0: cold — a fresh full analysis of the edited revision.
/// Arg 1: warm — an AnalysisSession that has seen the base revision
/// re-analyzes only the SCCs the appended clause dirtied.
void BM_IncrementalReanalyze(benchmark::State &State) {
  const IncrementalScenario &S = incrementalScenario();
  TermArena BaseArena, EditedArena;
  Diagnostics D1, D2;
  std::optional<Program> Base = loadProgram(S.Base, BaseArena, D1);
  std::optional<Program> Edited = loadProgram(S.Edited, EditedArena, D2);
  if (!S.Ok || !Base || !Edited) {
    State.SkipWithError("incremental scenario setup failed");
    return;
  }
  const bool Warm = State.range(0) == 1;
  SessionOptions SO;
  SO.Overhead = 65.0;
  for (auto _ : State) {
    if (Warm) {
      State.PauseTiming();
      AnalysisSession Session(SO);
      Session.update(*Base);
      State.ResumeTiming();
      const SessionUpdate &U = Session.update(*Edited);
      benchmark::DoNotOptimize(U.Report.size());
    } else {
      GranularityAnalyzer GA(*Edited, {CostMetric::resolutions(), 65.0});
      GA.run();
      benchmark::DoNotOptimize(GA.report().size());
    }
  }
}
BENCHMARK(BM_IncrementalReanalyze)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void BM_TransformOnly(benchmark::State &State) {
  TermArena Arena;
  Diagnostics Diags;
  const BenchmarkDef *B = findBenchmark("fib");
  auto P = loadProgram(B->Source, Arena, Diags);
  GranularityAnalyzer GA(*P, {CostMetric::resolutions(), 65.0});
  GA.run();
  for (auto _ : State) {
    TransformStats Stats;
    Program T = applyGranularityControl(*P, GA, &Stats);
    benchmark::DoNotOptimize(T.predicates().size());
  }
}
BENCHMARK(BM_TransformOnly);

/// Analyzes the whole corpus once with instrumentation on and writes one
/// JSON document (schema version: StatsJsonVersion) carrying, for every
/// benchmark, the stats registry (phase timings, solver schema hits) and
/// per-predicate provenance.  This is the machine-readable side of the
/// Section 8 efficiency claim: CI can diff phase timings across commits.
bool writeCorpusStats(const char *Path) {
  JsonWriter W;
  W.beginObject();
  W.key("version");
  W.value(StatsJsonVersion);
  W.key("benchmarks");
  W.beginArray();
  for (const BenchmarkDef &B : benchmarkCorpus()) {
    TermArena Arena;
    Diagnostics Diags;
    auto P = loadProgram(B.Source, Arena, Diags);
    if (!P)
      continue;
    StatsRegistry Stats;
    AnalyzerOptions Options{CostMetric::resolutions(), 65.0};
    Options.Stats = &Stats;
    GranularityAnalyzer GA(*P, Options);
    GA.run();
    W.beginObject();
    W.key("name");
    W.value(B.Name);
    W.key("analysis");
    GA.writeJson(W);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return writeFileAtomic(Path, W.str() + '\n');
}

/// One measured incremental-reanalysis data point for the batch record:
/// how much of the largest corpus program a one-clause edit re-analyzes,
/// and warm-session vs cold wall time (best of \c Reps runs each).
struct IncrementalMeasurement {
  bool Ok = false;
  std::string Program;
  unsigned TotalSCCs = 0;
  unsigned AnalyzedSCCs = 0; ///< re-analyzed by the warm edit
  unsigned ReusedSCCs = 0;   ///< replayed from the session store
  double WarmSeconds = 0;
  double ColdSeconds = 0;
};

IncrementalMeasurement measureIncremental() {
  IncrementalMeasurement M;
  const IncrementalScenario &S = incrementalScenario();
  if (!S.Ok)
    return M;
  TermArena BaseArena, EditedArena;
  Diagnostics D1, D2;
  std::optional<Program> Base = loadProgram(S.Base, BaseArena, D1);
  std::optional<Program> Edited = loadProgram(S.Edited, EditedArena, D2);
  if (!Base || !Edited)
    return M;
  constexpr int Reps = 10;
  using Clock = std::chrono::steady_clock;
  auto Seconds = [](Clock::time_point T0) {
    return std::chrono::duration<double>(Clock::now() - T0).count();
  };
  SessionOptions SO;
  SO.Overhead = 65.0;
  double Warm = -1, Cold = -1;
  for (int R = 0; R != Reps; ++R) {
    AnalysisSession Session(SO);
    Session.update(*Base);
    auto T0 = Clock::now();
    const SessionUpdate &U = Session.update(*Edited);
    double T = Seconds(T0);
    if (Warm < 0 || T < Warm)
      Warm = T;
    M.TotalSCCs = U.TotalSCCs;
    M.AnalyzedSCCs = U.AnalyzedSCCs;
    M.ReusedSCCs = U.ReusedSCCs;
  }
  for (int R = 0; R != Reps; ++R) {
    auto T0 = Clock::now();
    GranularityAnalyzer GA(*Edited, {CostMetric::resolutions(), 65.0});
    GA.run();
    benchmark::DoNotOptimize(GA.report().size());
    double T = Seconds(T0);
    if (Cold < 0 || T < Cold)
      Cold = T;
  }
  M.Ok = true;
  M.Program = S.Name;
  M.WarmSeconds = Warm;
  M.ColdSeconds = Cold;
  return M;
}

/// Schema version of the BENCH_analyzer.json document.  Bump whenever a
/// field is added, removed or changes meaning; the CI bench job compares
/// the checked-in file's "schema_version" against this constant (via
/// --print-bench-schema-version) and fails when the file is stale.
/// v3: dropped the legacy duplicate "version" key (it mirrored the
/// *stats* document's StatsJsonVersion, not this document's schema) and
/// added the "expr_arena" footprint section.
/// v4: added the "intervals" section (two-sided bound coverage: fraction
/// of corpus predicates with a nontrivial lower cost bound, and the mean
/// relative gap Hi/Lo at the probe size).
constexpr int64_t BenchJsonSchemaVersion = 4;

/// Interval-mode coverage over the corpus, for the "intervals" bench
/// section.  Untimed on purpose: the timed batch stays on the default
/// upper-only pipeline, so the perf gate measures what production runs.
struct IntervalMeasurement {
  bool Ok = false;
  uint64_t Predicates = 0; ///< classified predicates over the corpus
  uint64_t FiniteLo = 0;   ///< Lo(probe) finite and positive
  uint64_t GapSamples = 0; ///< both bounds finite and positive
  double MeanRelGap = 0;   ///< mean Hi/Lo over GapSamples
};

IntervalMeasurement measureIntervals() {
  IntervalMeasurement M;
  constexpr double Probe = 10.0;
  double GapSum = 0;
  for (const BenchmarkDef &B : benchmarkCorpus()) {
    TermArena Arena;
    Diagnostics Diags;
    auto P = loadProgram(B.Source, Arena, Diags);
    if (!P)
      continue;
    AnalyzerOptions Options{CostMetric::resolutions(), 65.0};
    Options.Bounds = BoundsMode::Both;
    GranularityAnalyzer GA(*P, Options);
    GA.run();
    for (const auto &Pred : P->predicates()) {
      Functor F = Pred->functor();
      ++M.Predicates;
      std::vector<double> Sizes(GA.modes().inputPositions(F).size(),
                                Probe);
      std::optional<double> Lo = GA.costs().costLoAt(F, Sizes);
      std::optional<double> Hi = GA.costs().costAt(F, Sizes);
      if (!Lo || !std::isfinite(*Lo) || *Lo <= 0)
        continue;
      ++M.FiniteLo;
      if (Hi && std::isfinite(*Hi) && *Hi > 0) {
        ++M.GapSamples;
        GapSum += *Hi / *Lo;
      }
    }
  }
  M.MeanRelGap =
      M.GapSamples ? GapSum / static_cast<double>(M.GapSamples) : 0.0;
  M.Ok = M.Predicates > 0;
  return M;
}

/// One generated-corpus sharded run, for the "generated" bench section.
struct GeneratedRun {
  bool Ran = false;
  size_t Count = 0;
  uint64_t Seed = 1;
  unsigned Shards = 1;
  unsigned Jobs = 1;
  ShardBatchResult Result;
  std::string CorpusFingerprint; ///< hex64 of the corpus report text
};

/// Machine-readable corpus-batch record for benchmark-history consumers
/// (CI uploads this as an artifact).  One JSON object per run: job count,
/// whole-batch wall time, shared solver-cache traffic, the incremental
/// re-analysis data point, per-benchmark analysis wall times, and (when
/// --generate ran) generated-corpus throughput.
bool writeBatchJson(const char *Path, unsigned Jobs,
                    const BatchResult &Batch, const GeneratedRun *Gen) {
  JsonWriter W;
  W.beginObject();
  W.key("schema_version");
  W.value(BenchJsonSchemaVersion);
  W.key("jobs");
  W.value(Jobs);
  W.key("wall_seconds");
  W.value(Batch.WallSeconds);
  // Per-program analysis latency over the batch (one sample per
  // benchmark, from its wall-clock Seconds); percentile values are
  // histogram-bucket upper bounds.
  LatencyHistogram ProgramLatency;
  for (const BatchAnalysis &A : Batch.Results)
    ProgramLatency.addNs(static_cast<uint64_t>(A.Seconds * 1e9));
  W.key("latency");
  W.beginObject();
  W.key("program");
  ProgramLatency.writeJson(W);
  W.endObject();
  W.key("cache");
  W.beginObject();
  W.key("hits");
  W.value(Batch.CacheHits);
  W.key("misses");
  W.value(Batch.CacheMisses);
  W.key("entries");
  W.value(static_cast<uint64_t>(Batch.CacheEntries));
  W.endObject();
  // Expression-arena footprint after the batch: the data-layout half of
  // the perf story (wall time alone would hide a layout regression).
  // bytes_per_node includes the per-node operand arrays and rounding to
  // whole 8-byte arena words — the all-in marginal cost of a node.
  {
    granlog::ExprInterner::Counters C =
        granlog::ExprInterner::global().counters();
    W.key("expr_arena");
    W.beginObject();
    W.key("nodes");
    W.value(C.ArenaNodes);
    W.key("bytes");
    W.value(C.ArenaBytes);
    W.key("bytes_per_node");
    W.value(C.ArenaNodes ? static_cast<double>(C.ArenaBytes) /
                               static_cast<double>(C.ArenaNodes)
                         : 0.0);
    W.key("symbols");
    W.value(C.SymbolCount);
    W.endObject();
  }
  // A one-clause edit to the largest corpus program, re-analyzed by a
  // warm AnalysisSession vs a cold full run (satellite of the
  // incremental-engine work; see BM_IncrementalReanalyze).
  if (IncrementalMeasurement Inc = measureIncremental(); Inc.Ok) {
    W.key("incremental");
    W.beginObject();
    W.key("program");
    W.value(Inc.Program);
    W.key("total_sccs");
    W.value(Inc.TotalSCCs);
    W.key("analyzed_sccs");
    W.value(Inc.AnalyzedSCCs);
    W.key("reused_sccs");
    W.value(Inc.ReusedSCCs);
    W.key("warm_seconds");
    W.value(Inc.WarmSeconds);
    W.key("cold_seconds");
    W.value(Inc.ColdSeconds);
    W.endObject();
  }
  // Two-sided-interval coverage: how much of the corpus gets a
  // nontrivial lower cost bound, and how tight the [lo, hi] intervals
  // are.  CI history shows lower-bound coverage regressions the same way
  // phase timings show perf regressions.
  if (IntervalMeasurement Ivl = measureIntervals(); Ivl.Ok) {
    W.key("intervals");
    W.beginObject();
    W.key("predicates");
    W.value(Ivl.Predicates);
    W.key("finite_lo");
    W.value(Ivl.FiniteLo);
    W.key("finite_lo_fraction");
    W.value(static_cast<double>(Ivl.FiniteLo) /
            static_cast<double>(Ivl.Predicates));
    W.key("gap_samples");
    W.value(Ivl.GapSamples);
    W.key("mean_rel_gap");
    W.value(Ivl.MeanRelGap);
    W.endObject();
  }
  // Generated-corpus throughput: the scale-out side of the Section 8
  // efficiency claim (programs/sec and per-program latency percentiles
  // over a seeded corpus, sharded across worker processes).
  if (Gen && Gen->Ran) {
    const ShardBatchResult &R = Gen->Result;
    W.key("generated");
    W.beginObject();
    W.key("count");
    W.value(static_cast<uint64_t>(Gen->Count));
    W.key("seed");
    W.value(Gen->Seed);
    W.key("shards");
    W.value(Gen->Shards);
    W.key("jobs");
    W.value(Gen->Jobs);
    W.key("forked");
    W.value(R.Forked);
    W.key("wall_seconds");
    W.value(R.WallSeconds);
    W.key("programs_per_sec");
    W.value(R.WallSeconds > 0 ? Gen->Count / R.WallSeconds : 0.0);
    W.key("failures");
    W.value(static_cast<uint64_t>(R.Failures));
    W.key("corpus_fingerprint");
    W.value(Gen->CorpusFingerprint);
    W.key("latency");
    W.beginObject();
    W.key("program");
    R.Latency.writeJson(W);
    W.endObject();
    W.key("cache");
    W.beginObject();
    W.key("hits");
    W.value(R.CacheHits);
    W.key("misses");
    W.value(R.CacheMisses);
    W.key("disk_hits");
    W.value(R.DiskHits);
    W.key("entries");
    W.value(static_cast<uint64_t>(R.CacheEntries));
    W.endObject();
    if (!R.Warning.empty()) {
      W.key("warning");
      W.value(R.Warning);
    }
    W.endObject();
  }
  W.key("benchmarks");
  W.beginArray();
  for (const BatchAnalysis &A : Batch.Results) {
    W.beginObject();
    W.key("name");
    W.value(A.Name);
    W.key("ok");
    W.value(A.Ok);
    W.key("seconds");
    W.value(A.Seconds);
    // Present only for traced batches (--trace-out / --profile): per-SCC
    // size+cost latency percentiles measured by the tracing layer.
    if (A.SccSpans) {
      W.key("scc_latency");
      W.beginObject();
      W.key("count");
      W.value(A.SccSpans);
      W.key("p50_ns");
      W.value(A.SccP50Ns);
      W.key("p90_ns");
      W.value(A.SccP90Ns);
      W.key("p99_ns");
      W.value(A.SccP99Ns);
      W.endObject();
    }
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return writeFileAtomic(Path, W.str() + '\n');
}

} // namespace

int main(int Argc, char **Argv) {
  const char *StatsOut = nullptr;
  const char *BatchJsonOut = nullptr;
  const char *TraceOut = nullptr;
  const char *CorpusReportOut = nullptr;
  const char *CacheDir = nullptr;
  bool Profile = false;
  int BatchJobs = 0;
  long long GenerateCount = 0;
  unsigned long long GenerateSeed = 1;
  int Shards = 1;
  BudgetLimits BatchLimits;
  // Strip our flags before google-benchmark sees the argument list.
  int OutArgc = 0;
  for (int I = 0; I < Argc; ++I) {
    constexpr const char StatsFlag[] = "--granlog-stats-out=";
    constexpr const char JobsFlag[] = "--jobs=";
    constexpr const char BatchJsonFlag[] = "--bench-json-out=";
    constexpr const char TraceOutFlag[] = "--trace-out=";
    constexpr const char GenerateFlag[] = "--generate=";
    constexpr const char SeedFlag[] = "--seed=";
    constexpr const char ShardsFlag[] = "--shards=";
    constexpr const char CacheDirFlag[] = "--cache-dir=";
    constexpr const char ReportOutFlag[] = "--corpus-report-out=";
    constexpr const char ExprFlag[] = "--budget-expr-nodes=";
    constexpr const char SolverFlag[] = "--budget-solver-steps=";
    constexpr const char NormFlag[] = "--budget-normalize-steps=";
    constexpr const char TokensFlag[] = "--budget-parse-tokens=";
    constexpr const char ClausesFlag[] = "--budget-clauses=";
    constexpr const char TimeoutFlag[] = "--timeout-ms=";
    auto Limit = [](const char *V) {
      long long N = std::atoll(V);
      return N > 0 ? static_cast<uint64_t>(N) : 0;
    };
    if (std::strcmp(Argv[I], "--budget") == 0)
      BatchLimits = BudgetLimits::defaults();
    else if (std::strcmp(Argv[I], "--profile") == 0)
      Profile = true;
    else if (std::strcmp(Argv[I], "--print-bench-schema-version") == 0) {
      std::printf("%lld\n",
                  static_cast<long long>(BenchJsonSchemaVersion));
      return 0;
    } else if (std::strncmp(Argv[I], GenerateFlag,
                            sizeof(GenerateFlag) - 1) == 0)
      GenerateCount = std::atoll(Argv[I] + sizeof(GenerateFlag) - 1);
    else if (std::strncmp(Argv[I], SeedFlag, sizeof(SeedFlag) - 1) == 0)
      GenerateSeed = std::strtoull(Argv[I] + sizeof(SeedFlag) - 1,
                                   nullptr, 10);
    else if (std::strncmp(Argv[I], ShardsFlag,
                          sizeof(ShardsFlag) - 1) == 0)
      Shards = std::atoi(Argv[I] + sizeof(ShardsFlag) - 1);
    else if (std::strncmp(Argv[I], CacheDirFlag,
                          sizeof(CacheDirFlag) - 1) == 0)
      CacheDir = Argv[I] + sizeof(CacheDirFlag) - 1;
    else if (std::strncmp(Argv[I], ReportOutFlag,
                          sizeof(ReportOutFlag) - 1) == 0)
      CorpusReportOut = Argv[I] + sizeof(ReportOutFlag) - 1;
    else if (std::strncmp(Argv[I], TraceOutFlag,
                          sizeof(TraceOutFlag) - 1) == 0)
      TraceOut = Argv[I] + sizeof(TraceOutFlag) - 1;
    else if (std::strncmp(Argv[I], StatsFlag, sizeof(StatsFlag) - 1) == 0)
      StatsOut = Argv[I] + sizeof(StatsFlag) - 1;
    else if (std::strncmp(Argv[I], JobsFlag, sizeof(JobsFlag) - 1) == 0)
      BatchJobs = std::atoi(Argv[I] + sizeof(JobsFlag) - 1);
    else if (std::strncmp(Argv[I], BatchJsonFlag,
                          sizeof(BatchJsonFlag) - 1) == 0)
      BatchJsonOut = Argv[I] + sizeof(BatchJsonFlag) - 1;
    else if (std::strncmp(Argv[I], ExprFlag, sizeof(ExprFlag) - 1) == 0)
      BatchLimits.ExprNodes = Limit(Argv[I] + sizeof(ExprFlag) - 1);
    else if (std::strncmp(Argv[I], SolverFlag, sizeof(SolverFlag) - 1) == 0)
      BatchLimits.SolverSteps = Limit(Argv[I] + sizeof(SolverFlag) - 1);
    else if (std::strncmp(Argv[I], NormFlag, sizeof(NormFlag) - 1) == 0)
      BatchLimits.NormalizeSteps = Limit(Argv[I] + sizeof(NormFlag) - 1);
    else if (std::strncmp(Argv[I], TokensFlag, sizeof(TokensFlag) - 1) == 0)
      BatchLimits.ParseTokens = Limit(Argv[I] + sizeof(TokensFlag) - 1);
    else if (std::strncmp(Argv[I], ClausesFlag,
                          sizeof(ClausesFlag) - 1) == 0)
      BatchLimits.Clauses = Limit(Argv[I] + sizeof(ClausesFlag) - 1);
    else if (std::strncmp(Argv[I], TimeoutFlag,
                          sizeof(TimeoutFlag) - 1) == 0)
      BatchLimits.TimeoutMs = static_cast<unsigned>(
          std::atoi(Argv[I] + sizeof(TimeoutFlag) - 1));
    else
      Argv[OutArgc++] = Argv[I];
  }
  Argc = OutArgc;

  if (StatsOut && !writeCorpusStats(StatsOut)) {
    std::fprintf(stderr, "error: cannot write %s\n", StatsOut);
    return 1;
  }

  // --bench-json-out without an explicit job count records the scaling
  // configuration CI tracks (8 workers).
  if (BatchJsonOut && BatchJobs <= 0)
    BatchJobs = 8;

  // --generate=COUNT: a seeded corpus analyzed by a sharded multi-process
  // batch (one persistent cache directory shared by all shards).
  GeneratedRun Gen;
  if (GenerateCount > 0) {
    Gen.Count = static_cast<size_t>(GenerateCount);
    Gen.Seed = GenerateSeed;
    Gen.Shards = Shards > 0 ? static_cast<unsigned>(Shards) : 1;
    Gen.Jobs = BatchJobs > 0 ? static_cast<unsigned>(BatchJobs) : 1;
    std::vector<GeneratedProgram> Programs =
        generateCorpus({Gen.Seed, Gen.Count});
    std::vector<BenchmarkDef> Defs = generatedBenchmarks(Programs);
    ShardConfig SC;
    SC.Shards = Gen.Shards;
    SC.Jobs = Gen.Jobs;
    SC.Budget = BatchLimits;
    if (CacheDir)
      SC.CacheDir = CacheDir;
    Gen.Result = runShardedBatch(Defs, SC);
    Gen.Ran = true;
    std::string Report = corpusReportText(Gen.Result.Programs);
    Gen.CorpusFingerprint = hex64(fnv1a64(Report));
    std::printf("generated: %zu programs (seed %llu), %u shard%s x %u "
                "job%s%s in %.3f s (%.1f programs/s, %zu failures, "
                "p50 %.3f ms, p99 %.3f ms)\n",
                Gen.Count, static_cast<unsigned long long>(Gen.Seed),
                Gen.Shards, Gen.Shards == 1 ? "" : "s", Gen.Jobs,
                Gen.Jobs == 1 ? "" : "s",
                Gen.Result.Forked ? " (forked)" : "",
                Gen.Result.WallSeconds,
                Gen.Result.WallSeconds > 0
                    ? Gen.Count / Gen.Result.WallSeconds
                    : 0.0,
                Gen.Result.Failures,
                Gen.Result.Latency.percentileNs(0.50) / 1e6,
                Gen.Result.Latency.percentileNs(0.99) / 1e6);
    std::printf("generated cache: %llu hits, %llu misses, %llu disk "
                "hits, %zu entries; corpus fingerprint %s\n",
                static_cast<unsigned long long>(Gen.Result.CacheHits),
                static_cast<unsigned long long>(Gen.Result.CacheMisses),
                static_cast<unsigned long long>(Gen.Result.DiskHits),
                Gen.Result.CacheEntries, Gen.CorpusFingerprint.c_str());
    if (!Gen.Result.Warning.empty())
      std::printf("generated warning: %s\n", Gen.Result.Warning.c_str());
    if (CorpusReportOut && !writeFileAtomic(CorpusReportOut, Report)) {
      std::fprintf(stderr, "error: cannot write %s\n", CorpusReportOut);
      return 1;
    }
    // The acceptance contract: two identical invocations must produce
    // byte-identical corpus reports, so nothing time- or schedule-
    // dependent may reach Report.
  }

  // --jobs=N: one timed whole-corpus batch analysis before the registered
  // microbenchmarks, reporting shared-cache traffic.
  if (BatchJobs > 0) {
    BatchConfig Config;
    Config.Jobs = static_cast<unsigned>(BatchJobs);
    Config.Budget = BatchLimits; // all-zero = unbudgeted (the default)
    // --trace-out / --profile: record analyzer spans for the timed batch.
    std::optional<Tracer> BatchTracer;
    if (TraceOut || Profile) {
      BatchTracer.emplace();
      Config.Trace = &*BatchTracer;
    }
    BatchResult Batch = analyzeCorpusBatch(Config);
    size_t Ok = 0;
    for (const BatchAnalysis &A : Batch.Results)
      Ok += A.Ok;
    std::printf("batch: %zu/%zu benchmarks analyzed with %d jobs in "
                "%.3f s (solver cache: %llu hits, %llu misses, %zu "
                "entries)\n",
                Ok, Batch.Results.size(), BatchJobs, Batch.WallSeconds,
                static_cast<unsigned long long>(Batch.CacheHits),
                static_cast<unsigned long long>(Batch.CacheMisses),
                Batch.CacheEntries);
    if (BatchLimits.any()) {
      size_t Degraded = 0;
      for (const BatchAnalysis &A : Batch.Results)
        Degraded += A.Degradations;
      std::printf("batch budget: %zu degradations across %zu benchmarks\n",
                  Degraded, Batch.Results.size());
    }
    if (Profile)
      for (const BatchAnalysis &A : Batch.Results)
        std::printf("== profile: %s ==\n%s", A.Name.c_str(),
                    A.Profile.c_str());
    if (TraceOut) {
      TraceWriter TW;
      BatchTracer->exportTo(TW);
      if (!TW.writeFile(TraceOut)) {
        std::fprintf(stderr, "error: cannot write %s\n", TraceOut);
        return 1;
      }
      std::printf("trace written to %s (%llu spans%s)\n", TraceOut,
                  static_cast<unsigned long long>(
                      BatchTracer->snapshot().size()),
                  BatchTracer->dropped() ? ", ring overflowed" : "");
    }
    if (BatchJsonOut &&
        !writeBatchJson(BatchJsonOut, static_cast<unsigned>(BatchJobs),
                        Batch, &Gen)) {
      std::fprintf(stderr, "error: cannot write %s\n", BatchJsonOut);
      return 1;
    }
  }

  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
