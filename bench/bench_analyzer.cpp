//===- bench/bench_analyzer.cpp - Analyzer micro-benchmarks ---------------===//
//
// The paper requires the analysis to be cheap enough to run inside a
// compiler ("since our analyses are intended to be performed at compile
// time, it is essential that they be efficient", Section 8).  These
// google-benchmark measurements time each pipeline stage on the full
// benchmark corpus.
//
//===----------------------------------------------------------------------===//

#include "core/GranularityAnalyzer.h"
#include "core/Transform.h"
#include "corpus/Corpus.h"

#include <benchmark/benchmark.h>

using namespace granlog;

namespace {

void BM_ParseCorpus(benchmark::State &State) {
  for (auto _ : State) {
    for (const BenchmarkDef &B : benchmarkCorpus()) {
      TermArena Arena;
      Diagnostics Diags;
      auto P = loadProgram(B.Source, Arena, Diags);
      benchmark::DoNotOptimize(P);
    }
  }
}
BENCHMARK(BM_ParseCorpus);

void BM_AnalyzeOneProgram(benchmark::State &State, const char *Name) {
  const BenchmarkDef *B = findBenchmark(Name);
  for (auto _ : State) {
    TermArena Arena;
    Diagnostics Diags;
    auto P = loadProgram(B->Source, Arena, Diags);
    GranularityAnalyzer GA(*P, {CostMetric::resolutions(), 65.0});
    GA.run();
    benchmark::DoNotOptimize(GA.report());
  }
}
BENCHMARK_CAPTURE(BM_AnalyzeOneProgram, fib, "fib");
BENCHMARK_CAPTURE(BM_AnalyzeOneProgram, quick_sort, "quick_sort");
BENCHMARK_CAPTURE(BM_AnalyzeOneProgram, merge_sort, "merge_sort");
BENCHMARK_CAPTURE(BM_AnalyzeOneProgram, fft, "fft");
BENCHMARK_CAPTURE(BM_AnalyzeOneProgram, matrix_multi, "matrix_multi");

void BM_AnalyzeWholeCorpus(benchmark::State &State) {
  for (auto _ : State) {
    for (const BenchmarkDef &B : benchmarkCorpus()) {
      TermArena Arena;
      Diagnostics Diags;
      auto P = loadProgram(B.Source, Arena, Diags);
      GranularityAnalyzer GA(*P, {CostMetric::resolutions(), 65.0});
      GA.run();
      TransformStats Stats;
      Program T = applyGranularityControl(*P, GA, &Stats);
      benchmark::DoNotOptimize(T.predicates().size());
    }
  }
}
BENCHMARK(BM_AnalyzeWholeCorpus);

void BM_TransformOnly(benchmark::State &State) {
  TermArena Arena;
  Diagnostics Diags;
  const BenchmarkDef *B = findBenchmark("fib");
  auto P = loadProgram(B->Source, Arena, Diags);
  GranularityAnalyzer GA(*P, {CostMetric::resolutions(), 65.0});
  GA.run();
  for (auto _ : State) {
    TransformStats Stats;
    Program T = applyGranularityControl(*P, GA, &Stats);
    benchmark::DoNotOptimize(T.predicates().size());
  }
}
BENCHMARK(BM_TransformOnly);

} // namespace

BENCHMARK_MAIN();
