//===- bench/table2_andprolog.cpp - Reproduces Table 2 of the paper -------===//
//
// "Execution times for benchmarks on &-Prolog" (4 processors): the four
// benchmarks the paper ran on the low-overhead RAP-WAM system.
//
//===----------------------------------------------------------------------===//

#include "bench/TableCommon.h"

using namespace granlog;

namespace {

const PaperRow Paper[] = {
    {"consistency", 0.0},
    {"fib", 29.2},
    {"hanoi", -15.9},
    {"quick_sort", 16.2},
};

double paperSpeedup(const std::string &Name) {
  for (const PaperRow &R : Paper)
    if (Name == R.Name)
      return R.Speedup;
  return 0;
}

} // namespace

int main() {
  HarnessConfig Config;
  Config.Machine = MachineConfig::andProlog();

  std::printf("=== Table 2: &-Prolog (low task-management overhead) ===\n");
  printTableHeader(Config.Machine.Name.c_str(), Config.Machine.Processors);
  for (const BenchmarkDef *B : table2Benchmarks()) {
    BenchmarkRun Run = runBenchmark(*B, B->DefaultInput, Config);
    printTableRow(*B, B->DefaultInput, Run, paperSpeedup(B->Name));
  }
  printTableFooter();
  std::printf("\nNote: with low task overhead the gains shrink (the paper's"
              "\ncentral observation); the paper's hanoi(6) even went"
              "\nnegative there — at that problem size (63 calls, 69 ms)"
              "\neffects outside this simulator's model dominate.\n");
  return 0;
}
