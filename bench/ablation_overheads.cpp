//===- bench/ablation_overheads.cpp - Ablations of the design choices -----===//
//
// Studies the knobs DESIGN.md calls out:
//   A. processor-count scaling of the controlled vs. uncontrolled program;
//   B. sensitivity of the result to the assumed overhead W used when the
//      threshold was computed (robustness of the "wide trough");
//   C. maintained size information vs. traversal at the grain test
//      (paper Section 2, footnote 1 and the Section 7 discussion).
//
//===----------------------------------------------------------------------===//

#include "corpus/Harness.h"

#include <cstdio>

using namespace granlog;

namespace {

void processorScaling() {
  std::printf("--- A. processor scaling (fib(15), ROLOG overheads) ---\n");
  std::printf("%6s %12s %12s %9s\n", "procs", "T0", "T1", "speedup");
  const BenchmarkDef *B = findBenchmark("fib");
  for (unsigned P : {1u, 2u, 4u, 8u, 16u}) {
    HarnessConfig Config;
    Config.Machine = MachineConfig::rolog(P);
    BenchmarkRun Run = runBenchmark(*B, 15, Config);
    std::printf("%6u %12.0f %12.0f %8.1f%%\n", P, Run.Sim0.ParallelTime,
                Run.Sim1.ParallelTime, Run.speedupPercent());
  }
  std::printf("\n");
}

void overheadSensitivity() {
  std::printf("--- B. threshold sensitivity to assumed W "
              "(quick_sort(75), ROLOG) ---\n");
  std::printf("%10s %12s\n", "assumed W", "T1");
  const BenchmarkDef *B = findBenchmark("quick_sort");
  HarnessConfig Base;
  Base.Machine = MachineConfig::rolog();
  double TrueW = Base.Machine.taskOverhead();
  for (double Factor : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    HarnessConfig Config = Base;
    Config.OverheadW = TrueW * Factor;
    BenchmarkRun Run = runBenchmark(*B, 75, Config);
    std::printf("%10.0f %12.0f   (x%.2f of the machine's true overhead)\n",
                Config.OverheadW, Run.Sim1.ParallelTime, Factor);
  }
  std::printf("A flat column = the paper's 'reasonable amount of leeway'"
              "\nin how precise the threshold has to be.\n\n");
}

void sizeMaintenance() {
  std::printf("--- C. maintained sizes vs. traversal at the test ---\n");
  std::printf("%-18s %14s %14s\n", "program", "maintained", "traversal");
  for (const char *Name : {"consistency", "quick_sort", "merge_sort"}) {
    const BenchmarkDef *B = findBenchmark(Name);
    HarnessConfig On;
    On.Machine = MachineConfig::rolog();
    On.Machine.MaintainedSizes = true;
    HarnessConfig Off = On;
    Off.Machine.MaintainedSizes = false;
    BenchmarkRun R1 = runBenchmark(*B, B->DefaultInput, On);
    BenchmarkRun R2 = runBenchmark(*B, B->DefaultInput, Off);
    std::printf("%-18s %14.0f %14.0f\n", B->label(B->DefaultInput).c_str(),
                R1.Sim1.ParallelTime, R2.Sim1.ParallelTime);
  }
  std::printf("Maintaining list-length/integer size information (footnote 1)"
              "\nkeeps list-measure grain tests O(1).\n");
}

void sequentialSpecialization() {
  std::printf("\n--- D. grain-size test unfolding "
              "(sequential specialization) ---\n");
  std::printf("The paper (Section 7) proposes reducing the runtime\n"
              "overhead by not re-testing inside already-sequentialized\n"
              "regions.  'T1+spec' enters test-free sequential clones when\n"
              "a test decides 'small'.\n");
  std::printf("%-18s %10s %10s %10s\n", "program", "T0", "T1", "T1+spec");
  for (const char *Name :
       {"flatten", "fib", "tree_traversal", "consistency"}) {
    const BenchmarkDef *B = findBenchmark(Name);
    HarnessConfig Plain;
    Plain.Machine = MachineConfig::rolog();
    HarnessConfig Spec = Plain;
    Spec.Transform.SequentialSpecialization = true;
    BenchmarkRun R1 = runBenchmark(*B, B->DefaultInput, Plain);
    BenchmarkRun R2 = runBenchmark(*B, B->DefaultInput, Spec);
    std::printf("%-18s %10.0f %10.0f %10.0f%s\n",
                B->label(B->DefaultInput).c_str(), R1.Sim0.ParallelTime,
                R1.Sim1.ParallelTime, R2.Sim1.ParallelTime,
                R2.Ok1 ? "" : " [FAILED]");
  }
  std::printf("Unfolding removes the re-testing overhead inside"
              "\nsequential regions (flatten recovers most of its loss;"
              "\nthe residue is the term-size traversals at nodes that"
              "\nstay parallel).\n");
}

void schemaAblation() {
  std::printf("\n--- E. removing solver schemas (the approximation set S) "
              "---\n");
  std::printf("Without a schema the matching equations become 'infinite"
              "\nwork' => always parallel => no granularity control:\n");
  std::printf("%-18s %12s %16s %16s\n", "program", "T1 (full)",
              "no geometric", "no divide&conq");
  for (const char *Name : {"fib", "consistency", "merge_sort"}) {
    const BenchmarkDef *B = findBenchmark(Name);
    HarnessConfig Full;
    Full.Machine = MachineConfig::rolog();
    BenchmarkRun R0 = runBenchmark(*B, B->DefaultInput, Full);

    TermArena Arena;
    Diagnostics Diags;
    auto Times = [&](const char *Schema) -> double {
      TermArena A2;
      Diagnostics D2;
      auto P = loadProgram(B->Source, A2, D2);
      AnalyzerOptions Opts{CostMetric::resolutions(),
                           Full.Machine.taskOverhead(),
                           {Schema}};
      GranularityAnalyzer GA(*P, Opts);
      GA.run();
      TransformStats Stats;
      Program T = applyGranularityControl(*P, GA, &Stats);
      Interpreter I(T, A2, interpOptionsFor(Full.Machine));
      if (!I.solve(B->BuildGoal(A2, B->DefaultInput)))
        return -1;
      std::unique_ptr<CostNode> Tree = I.takeTree();
      return simulate(*Tree, Full.Machine).ParallelTime;
    };
    std::printf("%-18s %12.0f %16.0f %16.0f\n",
                B->label(B->DefaultInput).c_str(), R0.Sim1.ParallelTime,
                Times("geometric"), Times("divide-and-conquer"));
  }
}

void lowerBoundPhilosophy() {
  std::printf("\n--- F. upper vs. lower bound analysis (Section 1) ---\n");
  std::printf(
      "The paper chooses upper bounds partly because nontrivial lower\n"
      "bounds are hard: \"very often the case where head unification\n"
      "fails leads to a lower bound estimate of 0\".  A sound lower-bound\n"
      "threshold test spawns only when LB(size) > W; with LB ~ the head\n"
      "unification cost, nothing ever spawns and all parallelism is\n"
      "lost:\n");
  std::printf("%-14s %10s %12s %12s %14s\n", "program", "T0",
              "T1 (upper)", "T1 (lower)", "T_sequential");
  for (const char *Name : {"fib", "double_sum", "matrix_multi"}) {
    const BenchmarkDef *B = findBenchmark(Name);
    HarnessConfig Upper;
    Upper.Machine = MachineConfig::rolog();
    BenchmarkRun RU = runBenchmark(*B, B->DefaultInput, Upper);
    // Lower-bound control: the trivial sound lower bound (a few units of
    // head unification) never exceeds W, so every goal is sequentialized
    // — model by forcing thresholds beyond any input size.
    HarnessConfig Lower = Upper;
    Lower.ThresholdOverride = 1 << 30;
    BenchmarkRun RL = runBenchmark(*B, B->DefaultInput, Lower);
    std::printf("%-14s %10.0f %12.0f %12.0f %14.0f\n",
                B->label(B->DefaultInput).c_str(), RU.Sim0.ParallelTime,
                RU.Sim1.ParallelTime, RL.Sim1.ParallelTime,
                RL.Sim0.SequentialTime);
  }
  std::printf("A conservative lower bound \"sequentializes\" (paper: loses"
              "\nparallelism); a conservative upper bound merely"
              "\nover-spawns.  This is the asymmetry motivating the"
              "\npaper's choice.\n");
}

} // namespace

int main() {
  std::printf("=== Ablations ===\n\n");
  processorScaling();
  overheadSensitivity();
  sizeMaintenance();
  sequentialSpecialization();
  schemaAblation();
  lowerBoundPhilosophy();
  return 0;
}
