//===- bench/table1_rolog.cpp - Reproduces Table 1 of the paper -----------===//
//
// "Execution times for benchmarks on ROLOG" (4 processors): all twelve
// benchmarks, compiled with no granularity information (T0) vs. with grain
// size information inferred by the analysis (T1).
//
//===----------------------------------------------------------------------===//

#include "bench/TableCommon.h"

using namespace granlog;

namespace {

// Paper Table 1 speedups, for side-by-side comparison.
const PaperRow Paper[] = {
    {"consistency", 31.7}, {"fib", 27.3},          {"hanoi", 11.1},
    {"quick_sort", 3.3},   {"lr1_set", 2.0},       {"double_sum", 15.1},
    {"fft", 4.5},          {"flatten", -19.5},     {"matrix_multi", 56.5},
    {"merge_sort", 14.1},  {"poly_inclusion", 38.3}, {"tree_traversal", 3.0},
};

double paperSpeedup(const std::string &Name) {
  for (const PaperRow &R : Paper)
    if (Name == R.Name)
      return R.Speedup;
  return 0;
}

} // namespace

int main() {
  HarnessConfig Config;
  Config.Machine = MachineConfig::rolog();

  std::printf("=== Table 1: ROLOG (high task-management overhead) ===\n");
  printTableHeader(Config.Machine.Name.c_str(), Config.Machine.Processors);
  for (const BenchmarkDef &B : benchmarkCorpus()) {
    BenchmarkRun Run = runBenchmark(B, B.DefaultInput, Config);
    printTableRow(B, B.DefaultInput, Run, paperSpeedup(B.Name));
  }
  printTableFooter();
  return 0;
}
