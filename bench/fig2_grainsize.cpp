//===- bench/fig2_grainsize.cpp - Reproduces Figure 2 of the paper --------===//
//
// "Execution time vs. task granularity": sweep the threshold input size K
// around the statically computed one and plot total execution time.  The
// paper's two inferences should be visible in the series:
//   1. proper grain size control gives significant speedups (the curve
//      drops well below both endpoints), and
//   2. the "trough" is wide — precision in K is not critical, so a
//      compiler can infer it automatically.
//
// K = 0 approximates "everything parallel" (tests always fail);
// K >= input size approximates "everything sequential".
//
//===----------------------------------------------------------------------===//

#include "corpus/Harness.h"

#include <cstdio>

using namespace granlog;

namespace {

void sweep(const char *Name, int Input, const std::vector<int64_t> &Ks) {
  const BenchmarkDef *B = findBenchmark(Name);
  if (!B) {
    std::printf("unknown benchmark %s\n", Name);
    return;
  }
  HarnessConfig Config;
  Config.Machine = MachineConfig::rolog();

  // Reference: the statically chosen threshold.
  BenchmarkRun Static = runBenchmark(*B, Input, Config);

  std::printf("--- %s, ROLOG, 4 processors ---\n", B->label(Input).c_str());
  std::printf("%8s %14s\n", "K", "time (units)");
  std::printf("%8s %14.0f   (no granularity control)\n", "-",
              Static.Sim0.ParallelTime);
  for (int64_t K : Ks) {
    Config.ThresholdOverride = K;
    BenchmarkRun Run = runBenchmark(*B, Input, Config);
    std::printf("%8lld %14.0f%s\n", static_cast<long long>(K),
                Run.Sim1.ParallelTime, Run.Ok1 ? "" : "  [RUN FAILED]");
  }
  std::printf("%8s %14.0f   (static threshold)\n", "auto",
              Static.Sim1.ParallelTime);
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("=== Figure 2: execution time vs. grain size ===\n\n");
  // fib(15): the threshold is an integer argument bound; the input size
  // is 15, so K = 15 is fully sequential.
  sweep("fib", 15, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14, 15});
  // quick_sort(75): the threshold is a list length; K = 75 is fully
  // sequential.
  sweep("quick_sort", 75, {0, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 75});
  std::printf("Expected shape (paper Figure 2): high at both ends, a wide\n"
              "flat trough in the middle.\n");
  return 0;
}
