//===- bench/metric_comparison.cpp - Cost metrics compared ----------------===//
//
// Section 4: "There are a number of different metrics that can be used as
// the unit of cost ... the number of resolutions, the number of
// unifications, or the number of instructions executed."  This binary
// runs the granularity-control experiment under all three metrics (the
// instructions metric backed by the WAM clause compiler) and shows that
// the resulting thresholds — and therefore the speedups — are stable:
// the choice of metric rescales both the cost function and the overhead
// W, so the decision boundary barely moves.
//
//===----------------------------------------------------------------------===//

#include "corpus/Harness.h"

#include <cstdio>

using namespace granlog;

namespace {

/// Approximate unit conversions: one resolution is about 3 unifications
/// and about 8 abstract machine instructions, so W scales accordingly.
double overheadFor(CostMetricKind Kind, double BaseW) {
  switch (Kind) {
  case CostMetricKind::Resolutions:
    return BaseW;
  case CostMetricKind::Unifications:
    return BaseW * 3;
  case CostMetricKind::Instructions:
    return BaseW * 8;
  }
  return BaseW;
}

} // namespace

int main() {
  std::printf("=== Cost metrics compared (ROLOG, 4 processors) ===\n\n");
  std::printf("%-16s %14s %14s %14s\n", "program", "resolutions",
              "unifications", "instructions");
  CostMetric Metrics[] = {CostMetric::resolutions(),
                          CostMetric::unifications(),
                          CostMetric::instructions()};
  for (const char *Name :
       {"fib", "quick_sort", "double_sum", "consistency"}) {
    const BenchmarkDef *B = findBenchmark(Name);
    std::printf("%-16s", B->label(B->DefaultInput).c_str());
    for (CostMetric M : Metrics) {
      HarnessConfig Config;
      Config.Machine = MachineConfig::rolog();
      Config.Metric = M;
      Config.OverheadW =
          overheadFor(M.kind(), Config.Machine.taskOverhead());
      BenchmarkRun Run = runBenchmark(*B, B->DefaultInput, Config);
      std::printf(" %13.1f%%", Run.speedupPercent());
    }
    std::printf("\n");
  }
  std::printf("\nEach column reports the T0->T1 speedup when thresholds\n"
              "were derived under that metric (W scaled to the metric's\n"
              "units).  Stability across columns shows the analysis does\n"
              "not depend on the exact unit of cost — the paper's reason\n"
              "for leaving the metric as a parameter.\n");
  return 0;
}
