//===- bench/TableCommon.h - Shared table-printing helpers ----------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_BENCH_TABLECOMMON_H
#define GRANLOG_BENCH_TABLECOMMON_H

#include "corpus/Harness.h"

#include <cstdio>

namespace granlog {

/// The paper's speedup column for comparison, by benchmark name.
struct PaperRow {
  const char *Name;
  double Speedup; ///< percent
};

inline void printTableHeader(const char *System, unsigned Processors) {
  std::printf("%s on %u processors (simulated Sequent Symmetry)\n", System,
              Processors);
  std::printf("%-22s %10s %10s %9s %9s\n", "programs", "T0 (units)",
              "T1 (units)", "speedup", "paper");
  std::printf("%-22s %10s %10s %9s %9s\n", "", "", "", "", "");
}

inline void printTableRow(const BenchmarkDef &B, int Input,
                          const BenchmarkRun &Run, double PaperSpeedup) {
  std::printf("%-22s %10.0f %10.0f %8.1f%% %8.1f%%%s\n",
              B.label(Input).c_str(), Run.Sim0.ParallelTime,
              Run.Sim1.ParallelTime, Run.speedupPercent(), PaperSpeedup,
              Run.Ok0 && Run.Ok1 ? "" : "  [RUN FAILED]");
}

inline void printTableFooter() {
  std::printf("T0: execution time with no granularity control.\n");
  std::printf("T1: execution time with granularity control.\n");
  std::printf("Times are simulated machine units (~1 resolution); the\n");
  std::printf("paper reports wall-clock ms on real hardware, so only the\n");
  std::printf("relative columns are comparable.\n");
}

} // namespace granlog

#endif // GRANLOG_BENCH_TABLECOMMON_H
