//===- server/Server.h - granlogd: the analysis server --------------------===//
//
// Part of GranLog; see DESIGN.md "Analysis server & fault injection".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A long-lived daemon multiplexing many AnalysisSessions — one per
/// client — over the length-prefixed protocol (server/Protocol.h) on a
/// local (AF_UNIX) socket.  One IO thread owns every socket: it accepts
/// connections, reassembles frames (short reads and dribbling clients
/// are normal, not errors), and flushes response buffers; request
/// execution is scheduled onto the existing work-stealing ThreadPool,
/// at most one in-flight request per connection (a client's requests are
/// processed in order; different clients' requests run concurrently).
///
/// Robustness model:
///   - per-client isolation: each client name owns one AnalysisSession
///     (server/SessionManager.h) with its own budgets, solver cache and
///     cache directory; a hostile program degrades soundly to Infinity
///     under the per-client counter budget and cannot starve the pool
///     (its request occupies one worker, bounded by budget/deadline);
///   - per-request deadlines: UpdateDeadline caps wall-clock per
///     request; drain cancellation rides the same terminator;
///   - slow clients: responses buffer per connection (bounded; a client
///     that never reads is dropped at the cap), requests reassemble
///     across arbitrarily small reads;
///   - protocol errors: malformed/oversized frames get a structured
///     error response and the connection is closed — nothing a client
///     sends can wedge the server;
///   - worker faults: an exception escaping request execution becomes a
///     Fault response, never a dead server;
///   - graceful drain: requestStop() (SIGTERM in granlogd) stops
///     accepting, answers queued-but-unstarted requests ShuttingDown,
///     lets in-flight requests finish — or degrade once the drain
///     deadline trips their terminator — flushes every session's solver
///     cache, and reports the outcome via waitForDrain();
///   - crash recovery: start() unlinks a stale socket file and sweeps
///     stale atomic-write temps under the cache root; corrupt cache
///     files are rejected per session with a structured diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SERVER_SERVER_H
#define GRANLOG_SERVER_SERVER_H

#include "server/Protocol.h"
#include "server/SessionManager.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace granlog {

struct ServerConfig {
  /// AF_UNIX socket path (kept short: the kernel caps it around 100
  /// bytes).  A stale file from a crashed predecessor is replaced.
  std::string SocketPath;
  /// Request-execution workers (the ThreadPool size).
  unsigned Workers = 4;
  /// SessionOptions template per client (Jobs, Metric, Overhead, and the
  /// per-client deterministic counter budget in Limits).
  SessionOptions Session;
  /// Per-request wall-clock deadline in ms (0 = none); an expired
  /// request degrades soundly and its results are not stored.
  unsigned RequestTimeoutMs = 0;
  /// Session LRU cap (0 = unlimited).
  size_t MaxSessions = 64;
  /// Total fingerprint-store entry cap across sessions (0 = unlimited).
  size_t MaxStoreEntries = 0;
  /// Per-client persistent cache root ("" = in-memory sessions only).
  std::string CacheRoot;
  /// Drain deadline: how long in-flight requests may keep running after
  /// requestStop() before their terminators trip and they degrade.
  unsigned DrainTimeoutMs = 5000;
  /// Per-connection response buffer cap; a client that stops reading is
  /// dropped once its buffered responses exceed this.
  size_t MaxWriteBuffer = 64u << 20;
  /// Structured log sink (null = silent).
  std::FILE *Log = nullptr;
};

/// Monotonic counters the Stats op exports (see statsJson()).
struct ServerCounters {
  std::atomic<uint64_t> Accepted{0};
  std::atomic<uint64_t> Dropped{0};        ///< protocol errors + buffer caps
  std::atomic<uint64_t> Requests{0};
  std::atomic<uint64_t> ResponsesByStatus[9] = {};
  std::atomic<uint64_t> Faults{0};         ///< worker exceptions survived
  std::atomic<uint64_t> DegradedRequests{0};
  std::atomic<uint64_t> SweptTemps{0};     ///< startup crash recovery
};

class AnalysisServer {
public:
  explicit AnalysisServer(ServerConfig Config);
  ~AnalysisServer();

  AnalysisServer(const AnalysisServer &) = delete;
  AnalysisServer &operator=(const AnalysisServer &) = delete;

  /// Binds, listens and spawns the IO thread.  False + \p Error on
  /// failure (bad socket path, unsupported platform).
  bool start(std::string *Error);

  /// Begins the graceful drain (async-signal-unsafe parts deferred to
  /// the IO thread; callable from a signal-watcher thread).
  void requestStop();

  /// Blocks until the drain completes.  0 = clean (every in-flight
  /// request finished or degraded, every session flushed); 1 = one or
  /// more session cache flushes failed.
  int waitForDrain();

  /// True once requestStop() has been observed.
  bool draining() const { return Draining.load(); }

  const ServerCounters &counters() const { return Counters; }
  SessionManager &sessions() { return Sessions; }

  /// The Stats-op JSON document: counters, session lifecycle, fault-
  /// injection tallies.
  std::string statsJson() const;

private:
  struct Connection {
    int Fd = -1;
    FrameReader Reader;
    std::string WriteBuf;
    std::deque<std::string> Pending; ///< decoded-not-yet-run payloads
    std::string Client;              ///< registered name ("" before Hello)
    bool Busy = false;               ///< one request on the pool
    bool CloseAfterFlush = false;
  };

  void ioLoop();
  /// Mutex held: starts the next pending request if idle.
  void dispatchLocked(uint64_t ConnId, Connection &C);
  /// Runs one request (worker thread); never throws.
  void runRequest(uint64_t ConnId, std::string Payload, std::string Client);
  Response execute(const Request &R, uint64_t ConnId, std::string &Client);
  Response doUpdate(const Request &R, const std::string &Client);
  Response doExplain(const Request &R, const std::string &Client);
  Response doOnly(const Request &R, const std::string &Client);
  /// Mutex held: drops the connection, releasing its name when safe.
  void closeConnLocked(uint64_t ConnId);
  void wake();
  void logf(const char *Fmt, ...);

  ServerConfig Config;
  SessionManager Sessions;
  ThreadPool Pool;
  ServerCounters Counters;

  std::mutex Mutex;
  std::map<uint64_t, Connection> Conns;
  std::map<std::string, uint64_t> NameOwners; ///< client name -> conn id
  uint64_t NextConnId = 1;

  int ListenFd = -1;
  int WakeRead = -1, WakeWrite = -1;
  std::thread IoThread;
  std::atomic<bool> StopRequested{false};
  std::atomic<bool> Draining{false};
  std::atomic<bool> HardStop{false}; ///< drain deadline passed
  std::atomic<bool> Started{false};
  int DrainResult = 0;
};

} // namespace granlog

#endif // GRANLOG_SERVER_SERVER_H
