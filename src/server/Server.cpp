//===- server/Server.cpp --------------------------------------------------===//

#include "server/Server.h"

#include "program/Program.h"
#include "support/Diagnostics.h"
#include "support/FaultInject.h"
#include "support/Io.h"
#include "support/Json.h"

#include <cerrno>
#include <chrono>
#include <cstdarg>
#include <cstring>
#include <filesystem>
#include <new>
#include <stdexcept>
#include <vector>

#if !defined(_WIN32)
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define GRANLOG_HAVE_SOCKETS 1
#endif

using namespace granlog;

AnalysisServer::AnalysisServer(ServerConfig Config)
    : Config(std::move(Config)),
      Sessions([&] {
        SessionManagerConfig SC;
        SC.Template = this->Config.Session;
        SC.MaxSessions = this->Config.MaxSessions;
        SC.MaxStoreEntries = this->Config.MaxStoreEntries;
        SC.CacheRoot = this->Config.CacheRoot;
        return SC;
      }()),
      Pool(std::max(1u, this->Config.Workers)) {}

AnalysisServer::~AnalysisServer() {
  if (Started.load()) {
    requestStop();
    waitForDrain();
  }
}

void AnalysisServer::logf(const char *Fmt, ...) {
  if (!Config.Log)
    return;
  va_list Args;
  va_start(Args, Fmt);
  std::fprintf(Config.Log, "granlogd: ");
  std::vfprintf(Config.Log, Fmt, Args);
  std::fprintf(Config.Log, "\n");
  std::fflush(Config.Log);
  va_end(Args);
}

#if GRANLOG_HAVE_SOCKETS

static bool setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

bool AnalysisServer::start(std::string *Error) {
  // Crash recovery: a predecessor that died mid-write leaves stale
  // atomic-write temps next to every per-client cache file; sweep them
  // before serving (live writers' temps are untouched by construction).
  if (!Config.CacheRoot.empty()) {
    namespace fs = std::filesystem;
    std::error_code EC;
    size_t Swept = 0;
    for (fs::directory_iterator It(Config.CacheRoot, EC), End;
         !EC && It != End; It.increment(EC))
      if (It->is_directory())
        Swept += sweepStaleTemps(
            (It->path() / "solver-cache.json").string());
    Counters.SweptTemps.store(Swept);
    if (Swept)
      logf("recovery: swept %zu stale cache temp file(s)", Swept);
  }

  sockaddr_un Addr{};
  if (Config.SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "socket path too long: " + Config.SocketPath;
    return false;
  }
  // A stale socket file from a crashed predecessor would fail bind();
  // remove it (a *live* predecessor loses its socket — granlogd is a
  // single-instance-per-path daemon by design).
  ::unlink(Config.SocketPath.c_str());

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    if (Error)
      *Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Config.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0 ||
      ::listen(ListenFd, 128) != 0 || !setNonBlocking(ListenFd)) {
    if (Error)
      *Error = Config.SocketPath + ": " + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }

  int Pipe[2];
  if (::pipe(Pipe) != 0 || !setNonBlocking(Pipe[0]) ||
      !setNonBlocking(Pipe[1])) {
    if (Error)
      *Error = std::string("pipe: ") + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  WakeRead = Pipe[0];
  WakeWrite = Pipe[1];

  Started.store(true);
  IoThread = std::thread([this] { ioLoop(); });
  logf("listening on %s (workers=%u, max-sessions=%zu)",
       Config.SocketPath.c_str(), Pool.numThreads(), Config.MaxSessions);
  return true;
}

void AnalysisServer::wake() {
  char B = 1;
  [[maybe_unused]] ssize_t N = ::write(WakeWrite, &B, 1);
}

void AnalysisServer::requestStop() {
  StopRequested.store(true);
  if (Started.load())
    wake();
}

int AnalysisServer::waitForDrain() {
  if (!Started.load())
    return 0;
  if (IoThread.joinable())
    IoThread.join();
  // Every in-flight request either finished or degraded under the drain
  // terminator; wait() returns once the pool is empty.  Workers never
  // leak exceptions (runRequest catches), so wait() cannot throw here.
  Pool.wait();
  std::string FlushError;
  bool Flushed = Sessions.flushAll(&FlushError);
  if (!Flushed)
    logf("drain: session flush failed: %s", FlushError.c_str());
  logf("drained: requests=%llu faults=%llu evictions=%llu flush=%s",
       static_cast<unsigned long long>(Counters.Requests.load()),
       static_cast<unsigned long long>(Counters.Faults.load()),
       static_cast<unsigned long long>(Sessions.evictions()),
       Flushed ? "clean" : "failed");
  Started.store(false);
  DrainResult = Flushed ? 0 : 1;
  return DrainResult;
}

void AnalysisServer::closeConnLocked(uint64_t ConnId) {
  auto It = Conns.find(ConnId);
  if (It == Conns.end())
    return;
  ::close(It->second.Fd);
  // Release the client name unless a worker still runs under it: the
  // completion handler releases it then (keeping the name owned blocks
  // a concurrent claimant from racing the running request's session).
  if (!It->second.Busy && !It->second.Client.empty())
    NameOwners.erase(It->second.Client);
  Conns.erase(It);
}

void AnalysisServer::dispatchLocked(uint64_t ConnId, Connection &C) {
  if (C.Busy || C.Pending.empty() || Draining.load())
    return;
  std::string Payload = std::move(C.Pending.front());
  C.Pending.pop_front();
  C.Busy = true;
  std::string Client = C.Client;
  Counters.Requests.fetch_add(1);
  Pool.submit([this, ConnId, Payload = std::move(Payload),
               Client = std::move(Client)]() mutable {
    runRequest(ConnId, std::move(Payload), std::move(Client));
  });
}

void AnalysisServer::runRequest(uint64_t ConnId, std::string Payload,
                                std::string Client) {
  Response Resp;
  std::string NewClient = Client;
  std::optional<Request> R = decodeRequest(Payload);
  if (!R) {
    Resp.St = Status::Malformed;
    Resp.Body = "request payload did not decode";
  } else {
    Resp.Id = R->Id;
    try {
      if (faultPoint("server.alloc"))
        throw std::bad_alloc();
      if (faultPoint("server.worker.throw"))
        throw std::runtime_error("fault-injected worker exception");
      Resp = execute(*R, ConnId, NewClient);
      Resp.Id = R->Id;
    } catch (const std::exception &E) {
      Counters.Faults.fetch_add(1);
      Resp = Response{Status::Fault, R->Id, 0, E.what()};
    } catch (...) {
      Counters.Faults.fetch_add(1);
      Resp = Response{Status::Fault, R->Id, 0, "unknown exception"};
    }
  }
  Counters.ResponsesByStatus[static_cast<size_t>(Resp.St)].fetch_add(1);
  if (Resp.Degradations)
    Counters.DegradedRequests.fetch_add(1);

  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Conns.find(ConnId);
  if (It == Conns.end()) {
    // Connection died mid-request: discard the response and release the
    // name ownership deferred by closeConnLocked.
    for (auto NIt = NameOwners.begin(); NIt != NameOwners.end();)
      NIt = NIt->second == ConnId ? NameOwners.erase(NIt) : std::next(NIt);
    return;
  }
  Connection &C = It->second;
  C.Busy = false;
  if (!NewClient.empty() && NewClient != C.Client)
    C.Client = NewClient;
  C.WriteBuf += encodeResponse(Resp);
  if (Resp.St == Status::Malformed || Resp.St == Status::TooLarge ||
      (R && R->Kind == Op::Close))
    C.CloseAfterFlush = true;
  else
    dispatchLocked(ConnId, C);
  wake();
}

#else // !GRANLOG_HAVE_SOCKETS

bool AnalysisServer::start(std::string *Error) {
  if (Error)
    *Error = "granlogd requires POSIX sockets";
  return false;
}
void AnalysisServer::wake() {}
void AnalysisServer::requestStop() { StopRequested.store(true); }
int AnalysisServer::waitForDrain() { return 0; }
void AnalysisServer::closeConnLocked(uint64_t) {}
void AnalysisServer::dispatchLocked(uint64_t, Connection &) {}
void AnalysisServer::runRequest(uint64_t, std::string, std::string) {}
void AnalysisServer::ioLoop() {}

#endif // GRANLOG_HAVE_SOCKETS

Response AnalysisServer::execute(const Request &R, uint64_t ConnId,
                                 std::string &Client) {
  switch (R.Kind) {
  case Op::Hello: {
    if (R.Name.empty())
      return {Status::NoSession, R.Id, 0, "empty client name"};
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = NameOwners.find(R.Name);
    if (It != NameOwners.end() && It->second != ConnId)
      return {Status::NoSession, R.Id, 0,
              "client name already in use: " + R.Name};
    NameOwners[R.Name] = ConnId;
    Client = R.Name;
    return {Status::Ok, R.Id, 0,
            "granlogd/" + std::to_string(ProtocolVersion)};
  }
  case Op::Update:
    if (Client.empty())
      return {Status::NoSession, R.Id, 0, "send hello first"};
    return doUpdate(R, Client);
  case Op::Explain:
    if (Client.empty())
      return {Status::NoSession, R.Id, 0, "send hello first"};
    return doExplain(R, Client);
  case Op::Only:
    if (Client.empty())
      return {Status::NoSession, R.Id, 0, "send hello first"};
    return doOnly(R, Client);
  case Op::Stats:
    return {Status::Ok, R.Id, 0, statsJson()};
  case Op::Close:
    return {Status::Ok, R.Id, 0, "bye"};
  }
  return {Status::Malformed, R.Id, 0, "unknown opcode"};
}

namespace {

/// The per-request wall-clock control: the configured deadline plus the
/// drain terminator (once the drain deadline passes, every in-flight
/// request degrades and completes).
UpdateDeadline requestDeadline(unsigned TimeoutMs,
                               const std::atomic<bool> &HardStop) {
  UpdateDeadline D;
  D.TimeoutMs = TimeoutMs;
  D.Terminator = [&HardStop] { return HardStop.load(); };
  return D;
}

} // namespace

Response AnalysisServer::doUpdate(const Request &R,
                                  const std::string &Client) {
  SessionLease Lease = Sessions.lease(Client);
  if (!Lease.cacheWarning().empty())
    logf("cache: %s: %s", Client.c_str(), Lease.cacheWarning().c_str());

  TermArena Arena;
  Diagnostics Diags;
  std::optional<Budget> LoadBudget;
  if (Config.Session.Limits.any())
    LoadBudget.emplace(Config.Session.Limits);
  std::optional<Program> P =
      loadProgram(R.Source, Arena, Diags,
                  LoadBudget ? &*LoadBudget : nullptr);
  if (!P || P->predicates().empty())
    return {Status::LoadError, R.Id, 0,
            P ? "program defines no predicates" : Diags.str()};

  UpdateDeadline Deadline =
      requestDeadline(Config.RequestTimeoutMs, HardStop);
  const SessionUpdate &U =
      Lease.session().update(*P, nullptr, Deadline.any() ? &Deadline
                                                         : nullptr);
  return {Status::Ok, R.Id, static_cast<uint32_t>(U.Degradations.size()),
          U.Report};
}

Response AnalysisServer::doExplain(const Request &R,
                                   const std::string &Client) {
  SessionLease Lease = Sessions.lease(Client);
  const SessionUpdate &Last = Lease.session().last();
  if (Last.TotalSCCs == 0 && Last.Report.empty())
    return {Status::Stale, R.Id, 0,
            "no analysis in this session yet (send update)"};
  if (R.Pred.empty())
    return {Status::Ok, R.Id, 0, Last.ExplainAll};
  // explainAll() is one block per predicate, headed by an unindented
  // "name/arity:" line; filter the blocks for the requested name.
  std::string Needle =
      R.Pred.find('/') == std::string::npos ? R.Pred + "/" : R.Pred + ":";
  std::string Out;
  bool InMatch = false;
  size_t Pos = 0;
  const std::string &Text = Last.ExplainAll;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Text.size();
    std::string_view Line(Text.data() + Pos, Eol - Pos);
    if (!Line.empty() && Line[0] != ' ')
      InMatch = Line.rfind(Needle, 0) == 0;
    if (InMatch) {
      Out.append(Line);
      Out.push_back('\n');
    }
    Pos = Eol + 1;
  }
  if (Out.empty())
    return {Status::UnknownPred, R.Id, 0,
            "no predicate named " + R.Pred + " in the last update"};
  return {Status::Ok, R.Id, 0, Out};
}

Response AnalysisServer::doOnly(const Request &R, const std::string &Client) {
  size_t Slash = R.Pred.rfind('/');
  if (Slash == std::string::npos || Slash == 0 ||
      Slash + 1 >= R.Pred.size())
    return {Status::UnknownPred, R.Id, 0,
            "only spec must be name/arity: " + R.Pred};

  SessionLease Lease = Sessions.lease(Client);
  TermArena Arena;
  Diagnostics Diags;
  BudgetLimits Limits = Config.Session.Limits;
  UpdateDeadline Deadline =
      requestDeadline(Config.RequestTimeoutMs, HardStop);
  if (Deadline.TimeoutMs &&
      (!Limits.TimeoutMs || Deadline.TimeoutMs < Limits.TimeoutMs))
    Limits.TimeoutMs = Deadline.TimeoutMs;
  Limits.Terminator = Deadline.Terminator;
  std::optional<Budget> RunBudget;
  if (Limits.any())
    RunBudget.emplace(Limits);
  std::optional<Program> P =
      loadProgram(R.Source, Arena, Diags, RunBudget ? &*RunBudget : nullptr);
  if (!P || P->predicates().empty())
    return {Status::LoadError, R.Id, 0,
            P ? "program defines no predicates" : Diags.str()};

  Symbol S = P->symbols().lookup(R.Pred.substr(0, Slash));
  Functor Target{
      S, static_cast<unsigned>(std::atoi(R.Pred.c_str() + Slash + 1))};
  if (!S.isValid() || !P->lookup(Target))
    return {Status::UnknownPred, R.Id, 0,
            "no predicate " + R.Pred + " in program"};

  AnalyzerOptions AO;
  AO.Metric = Config.Session.Metric;
  AO.Overhead = Config.Session.Overhead;
  AO.DisabledSchemas = Config.Session.DisabledSchemas;
  AO.Jobs = Config.Session.Jobs;
  AO.Cache = &Lease.session().solverCache();
  if (RunBudget)
    AO.Budget = &*RunBudget;
  GranularityAnalyzer GA(*P, AO);
  GA.prepare();
  const CallGraph &CG = GA.callGraph();
  for (unsigned Id = 0; Id != CG.numSCCs(); ++Id)
    GA.setSccAction(Id, GranularityAnalyzer::SccAction::Skip);
  for (unsigned Id : CG.reachableSCCs(Target))
    GA.setSccAction(Id, GranularityAnalyzer::SccAction::Analyze);
  GA.run();
  uint32_t Degr =
      RunBudget ? static_cast<uint32_t>(RunBudget->degradations().size())
                : 0;
  return {Status::Ok, R.Id, Degr, GA.report()};
}

std::string AnalysisServer::statsJson() const {
  JsonWriter W;
  W.beginObject();
  W.key("server");
  W.beginObject();
  W.key("accepted");
  W.value(Counters.Accepted.load());
  W.key("dropped");
  W.value(Counters.Dropped.load());
  W.key("requests");
  W.value(Counters.Requests.load());
  W.key("faults");
  W.value(Counters.Faults.load());
  W.key("degraded_requests");
  W.value(Counters.DegradedRequests.load());
  W.key("swept_temps");
  W.value(Counters.SweptTemps.load());
  W.key("draining");
  W.value(Draining.load());
  W.key("responses");
  W.beginObject();
  for (size_t I = 0; I != 9; ++I) {
    uint64_t N = Counters.ResponsesByStatus[I].load();
    if (!N)
      continue;
    W.key(statusName(static_cast<Status>(I)));
    W.value(N);
  }
  W.endObject();
  W.endObject();
  W.key("sessions");
  W.beginObject();
  W.key("live");
  W.value(static_cast<uint64_t>(Sessions.liveSessions()));
  W.key("store_entries");
  W.value(static_cast<uint64_t>(Sessions.totalStoreEntries()));
  W.key("admissions");
  W.value(Sessions.admissions());
  W.key("evictions");
  W.value(Sessions.evictions());
  W.key("evictions_blocked");
  W.value(Sessions.evictionsBlocked());
  W.key("corrupt_cache_loads");
  W.value(Sessions.corruptCacheLoads());
  W.key("flush_failures");
  W.value(Sessions.flushFailures());
  W.endObject();
  if (FaultInjector *F = faultInjector()) {
    W.key("faults_injected");
    W.beginObject();
    W.key("spec");
    W.value(F->spec());
    W.key("total");
    W.value(F->totalInjected());
    for (const auto &[Site, N] : F->counts()) {
      W.key(Site);
      W.value(N);
    }
    W.endObject();
  }
  W.endObject();
  return W.take();
}

#if GRANLOG_HAVE_SOCKETS

void AnalysisServer::ioLoop() {
  using Clock = std::chrono::steady_clock;
  Clock::time_point DrainStart;
  bool Accepting = true;

  while (true) {
    // Snapshot the poll set under the lock.
    std::vector<pollfd> Fds;
    std::vector<uint64_t> Ids;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Fds.push_back({WakeRead, POLLIN, 0});
      Ids.push_back(0);
      if (Accepting) {
        Fds.push_back({ListenFd, POLLIN, 0});
        Ids.push_back(0);
      }
      for (auto &[Id, C] : Conns) {
        short Events = 0;
        // Backpressure: stop reading from a client whose requests are
        // already queued 16 deep; it cannot monopolize memory or pool.
        if (C.Pending.size() < 16 && !C.CloseAfterFlush)
          Events |= POLLIN;
        if (!C.WriteBuf.empty())
          Events |= POLLOUT;
        Fds.push_back({C.Fd, Events, 0});
        Ids.push_back(Id);
      }
    }

    ::poll(Fds.data(), Fds.size(), 50);

    if (StopRequested.load() && !Draining.load()) {
      Draining.store(true);
      DrainStart = Clock::now();
      Accepting = false;
      ::close(ListenFd);
      ListenFd = -1;
      logf("drain: started");
      // Unstarted requests are answered ShuttingDown, not silently
      // dropped; in-flight ones keep running toward their deadline.
      std::lock_guard<std::mutex> Lock(Mutex);
      for (auto &[Id, C] : Conns) {
        for (std::string &Payload : C.Pending) {
          std::optional<Request> R = decodeRequest(Payload);
          Response Resp{Status::ShuttingDown, R ? R->Id : 0, 0,
                        "server draining"};
          Counters.ResponsesByStatus[static_cast<size_t>(Resp.St)]
              .fetch_add(1);
          C.WriteBuf += encodeResponse(Resp);
        }
        C.Pending.clear();
        C.CloseAfterFlush = true;
      }
    }
    if (Draining.load() && !HardStop.load() &&
        Clock::now() - DrainStart >
            std::chrono::milliseconds(Config.DrainTimeoutMs)) {
      HardStop.store(true);
      logf("drain: deadline passed; degrading in-flight requests");
    }

    // Drain the wake pipe.
    if (Fds[0].revents & POLLIN) {
      char Buf[64];
      while (::read(WakeRead, Buf, sizeof(Buf)) > 0)
        ;
    }

    // Accept new connections.
    if (Accepting) {
      while (true) {
        int Fd = ::accept(ListenFd, nullptr, nullptr);
        if (Fd < 0)
          break;
        if (!setNonBlocking(Fd)) {
          ::close(Fd);
          continue;
        }
        Counters.Accepted.fetch_add(1);
        std::lock_guard<std::mutex> Lock(Mutex);
        Connection C;
        C.Fd = Fd;
        C.Reader = FrameReader(MaxFrameBytes);
        Conns.emplace(NextConnId++, std::move(C));
      }
    }

    // Service ready connections.
    std::lock_guard<std::mutex> Lock(Mutex);
    for (size_t I = 0; I != Fds.size(); ++I) {
      if (Ids[I] == 0)
        continue;
      auto It = Conns.find(Ids[I]);
      if (It == Conns.end())
        continue;
      uint64_t Id = Ids[I];
      Connection &C = It->second;

      if (Fds[I].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        if (C.WriteBuf.empty() || (Fds[I].revents & (POLLERR | POLLNVAL))) {
          closeConnLocked(Id);
          continue;
        }
      }

      if (Fds[I].revents & POLLIN) {
        char Buf[65536];
        size_t Cap = sizeof(Buf);
        if (faultPoint("net.read.short"))
          Cap = 1; // dribbling reads must reassemble fine
        ssize_t N = ::recv(C.Fd, Buf, Cap, 0);
        if (N == 0) {
          closeConnLocked(Id);
          continue;
        }
        if (N > 0) {
          C.Reader.append(Buf, static_cast<size_t>(N));
          while (std::optional<std::string> Payload = C.Reader.next())
            C.Pending.push_back(std::move(*Payload));
          if (C.Reader.overflowed()) {
            // Unrecoverable framing: answer, flush, close.
            Response Resp{Status::TooLarge, 0, 0,
                          "frame exceeds limit or has zero length"};
            Counters.ResponsesByStatus[static_cast<size_t>(Resp.St)]
                .fetch_add(1);
            Counters.Dropped.fetch_add(1);
            C.WriteBuf += encodeResponse(Resp);
            C.CloseAfterFlush = true;
          }
          if (!Draining.load())
            dispatchLocked(Id, C);
        }
      }

      if ((Fds[I].revents & POLLOUT) && !C.WriteBuf.empty()) {
        size_t Cap = C.WriteBuf.size();
        if (faultPoint("net.write.short"))
          Cap = 1;
#if defined(MSG_NOSIGNAL)
        ssize_t N = ::send(C.Fd, C.WriteBuf.data(), Cap, MSG_NOSIGNAL);
#else
        ssize_t N = ::send(C.Fd, C.WriteBuf.data(), Cap, 0);
#endif
        if (N > 0)
          C.WriteBuf.erase(0, static_cast<size_t>(N));
        else if (N < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
          closeConnLocked(Id);
          continue;
        }
      }

      if (C.WriteBuf.size() > Config.MaxWriteBuffer) {
        // A client that never reads cannot hold server memory hostage.
        Counters.Dropped.fetch_add(1);
        closeConnLocked(Id);
        continue;
      }
      if (C.CloseAfterFlush && C.WriteBuf.empty() && !C.Busy &&
          C.Pending.empty())
        closeConnLocked(Id);
    }

    if (Draining.load()) {
      bool Quiet = true;
      for (auto &[Id, C] : Conns)
        if (C.Busy || !C.WriteBuf.empty())
          Quiet = false;
      // Once nothing is running and every response flushed — or a client
      // refuses to read past twice the drain deadline — close up shop.
      bool Overtime = Clock::now() - DrainStart >
                      std::chrono::milliseconds(2 * Config.DrainTimeoutMs +
                                                1000);
      if (Quiet || Overtime) {
        while (!Conns.empty())
          closeConnLocked(Conns.begin()->first);
        break;
      }
    }
  }

  ::close(WakeRead);
  ::close(WakeWrite);
  WakeRead = WakeWrite = -1;
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  ::unlink(Config.SocketPath.c_str());
}

#endif // GRANLOG_HAVE_SOCKETS
