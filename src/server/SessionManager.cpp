//===- server/SessionManager.cpp ------------------------------------------===//

#include "server/SessionManager.h"

#include "support/Io.h"

#include <cctype>
#include <filesystem>

using namespace granlog;

SessionLease::~SessionLease() {
  if (Mgr)
    Mgr->release(Client);
}

const std::string &SessionLease::cacheWarning() const {
  return Session->cacheLoadWarning();
}

SessionManager::SessionManager(SessionManagerConfig Config)
    : Config(std::move(Config)) {}

std::string SessionManager::cacheDirFor(const std::string &Client) const {
  if (Config.CacheRoot.empty())
    return "";
  // Sanitized name + content hash: readable for humans, collision-free
  // for adversarial names ("../x" and ".._x" must not share a cache).
  std::string Safe;
  for (char C : Client.substr(0, 48))
    Safe += (std::isalnum(static_cast<unsigned char>(C)) || C == '-' ||
             C == '_')
                ? C
                : '_';
  return (std::filesystem::path(Config.CacheRoot) /
          (Safe + "-" + hex64(fnv1a64(Client))))
      .string();
}

SessionLease SessionManager::lease(const std::string &Client) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Sessions.find(Client);
  if (It == Sessions.end()) {
    // Admission: make room first so the caps bound the steady state.
    enforceCapsLocked(/*Admitting=*/true);
    SessionOptions SO = Config.Template;
    SO.CacheDir = cacheDirFor(Client);
    Entry E;
    E.Session = std::make_unique<AnalysisSession>(std::move(SO));
    if (!E.Session->cacheLoadWarning().empty())
      ++CorruptCacheLoads;
    ++Admissions;
    It = Sessions.emplace(Client, std::move(E)).first;
    It->second.LruPos = Lru.insert(Lru.begin(), Client);
  } else {
    Lru.splice(Lru.begin(), Lru, It->second.LruPos);
  }
  ++It->second.Pins;
  return SessionLease(this, It->second.Session.get(), Client);
}

void SessionManager::release(const std::string &Client) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Sessions.find(Client);
  if (It == Sessions.end() || It->second.Pins == 0)
    return;
  --It->second.Pins;
  // The request that just finished may have grown the session's store
  // past the cap; shed LRU sessions (possibly this one) back under it.
  if (It->second.Pins == 0)
    enforceCapsLocked(/*Admitting=*/false);
}

bool SessionManager::evictOneLocked() {
  // Walk cold-to-hot; the first unpinned session is the victim.
  for (auto It = Lru.rbegin(); It != Lru.rend(); ++It) {
    auto SIt = Sessions.find(*It);
    if (SIt == Sessions.end() || SIt->second.Pins != 0)
      continue;
    std::string Error;
    if (!SIt->second.Session->save(&Error))
      ++FlushFailures;
    Lru.erase(SIt->second.LruPos);
    Sessions.erase(SIt);
    ++Evictions;
    return true;
  }
  ++EvictionsBlocked;
  return false;
}

void SessionManager::enforceCapsLocked(bool Admitting) {
  auto Over = [&] {
    // When a new session is about to join, >= leaves it a free slot.
    if (Config.MaxSessions &&
        (Admitting ? Sessions.size() >= Config.MaxSessions
                   : Sessions.size() > Config.MaxSessions))
      return true;
    if (Config.MaxStoreEntries) {
      size_t Total = 0;
      for (const auto &[Name, E] : Sessions)
        Total += E.Session->storeSize();
      if (Total > Config.MaxStoreEntries)
        return true;
    }
    return false;
  };
  while (Over() && evictOneLocked())
    ;
}

bool SessionManager::evictOne() {
  std::lock_guard<std::mutex> Lock(Mutex);
  return evictOneLocked();
}

bool SessionManager::flushAll(std::string *Error) {
  std::lock_guard<std::mutex> Lock(Mutex);
  bool Ok = true;
  for (auto &[Name, E] : Sessions) {
    std::string SaveError;
    if (!E.Session->save(&SaveError)) {
      ++FlushFailures;
      if (Ok && Error)
        *Error = Name + ": " + SaveError;
      Ok = false;
    }
  }
  return Ok;
}

size_t SessionManager::liveSessions() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Sessions.size();
}

size_t SessionManager::totalStoreEntries() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  size_t Total = 0;
  for (const auto &[Name, E] : Sessions)
    Total += E.Session->storeSize();
  return Total;
}
