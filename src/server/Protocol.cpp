//===- server/Protocol.cpp ------------------------------------------------===//

#include "server/Protocol.h"

#include <cstring>

using namespace granlog;

const char *granlog::statusName(Status S) {
  switch (S) {
  case Status::Ok:
    return "ok";
  case Status::Malformed:
    return "malformed";
  case Status::TooLarge:
    return "too_large";
  case Status::NoSession:
    return "no_session";
  case Status::LoadError:
    return "load_error";
  case Status::UnknownPred:
    return "unknown_pred";
  case Status::Stale:
    return "stale";
  case Status::Fault:
    return "fault";
  case Status::ShuttingDown:
    return "shutting_down";
  }
  return "unknown";
}

namespace {

void putU32(std::string &Out, uint32_t V) {
  Out.push_back(static_cast<char>(V & 0xff));
  Out.push_back(static_cast<char>((V >> 8) & 0xff));
  Out.push_back(static_cast<char>((V >> 16) & 0xff));
  Out.push_back(static_cast<char>((V >> 24) & 0xff));
}

void putString(std::string &Out, std::string_view S) {
  putU32(Out, static_cast<uint32_t>(S.size()));
  Out.append(S.data(), S.size());
}

/// Strict little-endian cursor over a payload; any overrun poisons it.
class Cursor {
public:
  explicit Cursor(std::string_view Data) : Data(Data) {}

  bool u8(uint8_t &V) {
    if (Pos + 1 > Data.size())
      return Ok = false;
    V = static_cast<uint8_t>(Data[Pos]);
    Pos += 1;
    return true;
  }

  bool u32(uint32_t &V) {
    if (Pos + 4 > Data.size())
      return Ok = false;
    V = static_cast<uint32_t>(static_cast<uint8_t>(Data[Pos])) |
        static_cast<uint32_t>(static_cast<uint8_t>(Data[Pos + 1])) << 8 |
        static_cast<uint32_t>(static_cast<uint8_t>(Data[Pos + 2])) << 16 |
        static_cast<uint32_t>(static_cast<uint8_t>(Data[Pos + 3])) << 24;
    Pos += 4;
    return true;
  }

  bool str(std::string &V) {
    uint32_t Len = 0;
    if (!u32(Len))
      return false;
    if (Len > Data.size() - Pos)
      return Ok = false;
    V.assign(Data.data() + Pos, Len);
    Pos += Len;
    return true;
  }

  /// Whole payload consumed with no error — trailing garbage is a
  /// malformed frame, not an extension point.
  bool done() const { return Ok && Pos == Data.size(); }

private:
  std::string_view Data;
  size_t Pos = 0;
  bool Ok = true;
};

std::string frame(std::string Payload) {
  std::string Out;
  putU32(Out, static_cast<uint32_t>(Payload.size()));
  Out += Payload;
  return Out;
}

} // namespace

std::string granlog::encodeRequest(const Request &R) {
  std::string P;
  P.push_back(static_cast<char>(R.Kind));
  putU32(P, R.Id);
  switch (R.Kind) {
  case Op::Hello:
    putString(P, R.Name);
    break;
  case Op::Update:
    putString(P, R.Source);
    break;
  case Op::Explain:
    putString(P, R.Pred);
    break;
  case Op::Only:
    putString(P, R.Pred);
    putString(P, R.Source);
    break;
  case Op::Stats:
  case Op::Close:
    break;
  }
  return frame(std::move(P));
}

std::string granlog::encodeResponse(const Response &R) {
  std::string P;
  P.push_back(static_cast<char>(R.St));
  putU32(P, R.Id);
  putU32(P, R.Degradations);
  putString(P, R.Body);
  return frame(std::move(P));
}

std::optional<Request> granlog::decodeRequest(std::string_view Payload) {
  Cursor C(Payload);
  uint8_t OpByte = 0;
  Request R;
  if (!C.u8(OpByte) || !C.u32(R.Id))
    return std::nullopt;
  switch (OpByte) {
  case static_cast<uint8_t>(Op::Hello):
    R.Kind = Op::Hello;
    if (!C.str(R.Name))
      return std::nullopt;
    break;
  case static_cast<uint8_t>(Op::Update):
    R.Kind = Op::Update;
    if (!C.str(R.Source))
      return std::nullopt;
    break;
  case static_cast<uint8_t>(Op::Explain):
    R.Kind = Op::Explain;
    if (!C.str(R.Pred))
      return std::nullopt;
    break;
  case static_cast<uint8_t>(Op::Only):
    R.Kind = Op::Only;
    if (!C.str(R.Pred) || !C.str(R.Source))
      return std::nullopt;
    break;
  case static_cast<uint8_t>(Op::Stats):
    R.Kind = Op::Stats;
    break;
  case static_cast<uint8_t>(Op::Close):
    R.Kind = Op::Close;
    break;
  default:
    return std::nullopt;
  }
  if (!C.done())
    return std::nullopt;
  return R;
}

std::optional<Response> granlog::decodeResponse(std::string_view Payload) {
  Cursor C(Payload);
  uint8_t StByte = 0;
  Response R;
  if (!C.u8(StByte) || !C.u32(R.Id) || !C.u32(R.Degradations) ||
      !C.str(R.Body) || !C.done())
    return std::nullopt;
  if (StByte > static_cast<uint8_t>(Status::ShuttingDown))
    return std::nullopt;
  R.St = static_cast<Status>(StByte);
  return R;
}

void FrameReader::append(const void *Data, size_t N) {
  if (Overflow)
    return;
  Buffer.append(static_cast<const char *>(Data), N);
}

std::optional<std::string> FrameReader::next() {
  if (Overflow || Buffer.size() < 4)
    return std::nullopt;
  uint32_t Len = static_cast<uint32_t>(static_cast<uint8_t>(Buffer[0])) |
                 static_cast<uint32_t>(static_cast<uint8_t>(Buffer[1])) << 8 |
                 static_cast<uint32_t>(static_cast<uint8_t>(Buffer[2])) << 16 |
                 static_cast<uint32_t>(static_cast<uint8_t>(Buffer[3])) << 24;
  if (Len == 0 || Len > Max) {
    Overflow = true;
    return std::nullopt;
  }
  if (Buffer.size() < 4 + static_cast<size_t>(Len))
    return std::nullopt;
  std::string Payload = Buffer.substr(4, Len);
  Buffer.erase(0, 4 + static_cast<size_t>(Len));
  return Payload;
}
