//===- server/SessionManager.h - Per-client session lifecycle -------------===//
//
// Part of GranLog; see DESIGN.md "Analysis server & fault injection".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// granlogd's session table: one AnalysisSession per client name, LRU-
/// evicted under two configurable caps (live sessions, and total
/// fingerprint-store entries — the sessions' dominant retained memory).
/// Eviction is transparent to clients: a session's persistent solver
/// cache is flushed to its per-client cache directory on the way out, so
/// a re-admitted client re-warms from disk and its next update produces
/// byte-identical output (warm == cold is the session contract) at the
/// cost of re-running the analysis driver once.
///
/// Access is by RAII lease: a leased session is pinned and cannot be
/// evicted mid-request; eviction only considers unpinned sessions, in
/// least-recently-used order.  When every session is pinned the caps go
/// soft (the admission succeeds and an "evict blocked" tick is counted)
/// — degrading memory headroom is recoverable, deadlocking the request
/// pool is not.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SERVER_SESSIONMANAGER_H
#define GRANLOG_SERVER_SESSIONMANAGER_H

#include "core/AnalysisSession.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>

namespace granlog {

struct SessionManagerConfig {
  /// Session options every client gets (Metric/Overhead/Jobs/Limits).
  /// CacheDir is ignored: the manager derives one per client under
  /// CacheRoot.
  SessionOptions Template;
  /// LRU cap on live sessions (0 = unlimited).
  size_t MaxSessions = 64;
  /// Cap on the sum of fingerprint-store entries across live sessions
  /// (0 = unlimited); evicts LRU-first until under.
  size_t MaxStoreEntries = 0;
  /// Root directory for per-client persistent solver caches ("" = no
  /// persistence: evicted sessions lose their solver cache too).
  std::string CacheRoot;
};

class SessionManager;

/// RAII pin on one client's session.  The referenced session stays
/// valid (and unevictable) for the lease's lifetime.
class SessionLease {
public:
  SessionLease(SessionLease &&O) noexcept
      : Mgr(O.Mgr), Session(O.Session), Client(std::move(O.Client)) {
    O.Mgr = nullptr;
    O.Session = nullptr;
  }
  SessionLease(const SessionLease &) = delete;
  SessionLease &operator=(const SessionLease &) = delete;
  SessionLease &operator=(SessionLease &&) = delete;
  ~SessionLease();

  AnalysisSession &session() { return *Session; }
  /// Non-empty when this admission found a corrupt/mismatched persistent
  /// cache file (the session started fresh; structured diagnostic).
  const std::string &cacheWarning() const;

private:
  friend class SessionManager;
  SessionLease(SessionManager *Mgr, AnalysisSession *Session,
               std::string Client)
      : Mgr(Mgr), Session(Session), Client(std::move(Client)) {}

  SessionManager *Mgr;
  AnalysisSession *Session;
  std::string Client;
};

class SessionManager {
public:
  explicit SessionManager(SessionManagerConfig Config);

  /// The session for \p Client: created (re-warming from its cache
  /// directory) on first touch or after eviction, pinned for the lease's
  /// lifetime, LRU-touched.  Admission of a new session enforces the
  /// caps by evicting unpinned LRU victims first.
  SessionLease lease(const std::string &Client);

  /// Evicts the least-recently-used unpinned session: best-effort cache
  /// flush, then destruction.  Returns false when nothing is evictable.
  bool evictOne();

  /// Flushes every live session's solver cache to disk (drain path).
  /// Returns false and fills \p Error with the first failure.
  bool flushAll(std::string *Error = nullptr);

  /// The per-client cache directory ("" without a CacheRoot).  Client
  /// names are arbitrary bytes; directory names are sanitized and made
  /// collision-free with a content-hash suffix.
  std::string cacheDirFor(const std::string &Client) const;

  size_t liveSessions() const;
  /// Sum of storeSize() over live sessions.
  size_t totalStoreEntries() const;
  uint64_t evictions() const { return Evictions; }
  uint64_t evictionsBlocked() const { return EvictionsBlocked; }
  uint64_t admissions() const { return Admissions; }
  /// Sessions whose admission found a corrupt persistent cache file.
  uint64_t corruptCacheLoads() const { return CorruptCacheLoads; }
  /// Cache-flush failures during eviction/flushAll (the session still
  /// evicts; the next admission just starts colder).
  uint64_t flushFailures() const { return FlushFailures; }

private:
  friend class SessionLease;

  struct Entry {
    std::unique_ptr<AnalysisSession> Session;
    unsigned Pins = 0;
    std::list<std::string>::iterator LruPos; ///< into Lru (front = hottest)
  };

  void release(const std::string &Client);
  /// Mutex held.  Evicts unpinned LRU sessions until under both caps;
  /// stops early when only pinned sessions remain.
  void enforceCapsLocked(bool Admitting);
  bool evictOneLocked();

  SessionManagerConfig Config;
  mutable std::mutex Mutex;
  std::map<std::string, Entry> Sessions;
  std::list<std::string> Lru; ///< most recently used first
  uint64_t Evictions = 0;
  uint64_t EvictionsBlocked = 0;
  uint64_t Admissions = 0;
  uint64_t CorruptCacheLoads = 0;
  uint64_t FlushFailures = 0;
};

} // namespace granlog

#endif // GRANLOG_SERVER_SESSIONMANAGER_H
