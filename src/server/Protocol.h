//===- server/Protocol.h - granlogd wire protocol -------------------------===//
//
// Part of GranLog; see DESIGN.md "Analysis server & fault injection".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed binary protocol granlogd speaks on its local
/// socket.  Every message is one *frame*:
///
///   u32-LE payload length  (1 .. MaxFrameBytes)
///   payload bytes
///
/// A request payload is
///
///   u8  opcode      (Op)
///   u32-LE request id (echoed verbatim in the response)
///   op-specific fields, each string encoded as u32-LE length + bytes:
///     Hello:   client name (the session key; must be first on a
///              connection, and unique across live connections)
///     Update:  program source (one revision; runs AnalysisSession::
///              update and returns the report)
///     Explain: predicate name ("" = full provenance of the last update)
///     Only:    "name/arity" spec, then program source (demand-driven
///              one-shot analysis of the predicate's callee cone,
///              sharing the session's solver cache)
///     Stats / Close: no fields
///
/// and a response payload is
///
///   u8  status      (Status)
///   u32-LE request id
///   u32-LE degradation count (budget degradations of this request)
///   body string     (report / provenance / stats JSON, or the error
///                    message for non-Ok statuses)
///
/// Decoding is strict: trailing bytes, truncated fields, unknown opcodes
/// and lengths that overrun the payload are all Malformed.  The decoder
/// is a pure function over a byte span — the protocol fuzz harness
/// (tests/fuzz/protocol_fuzz.cpp) drives it directly.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SERVER_PROTOCOL_H
#define GRANLOG_SERVER_PROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace granlog {

/// Protocol revision; Hello responses carry "granlogd/<version>".
inline constexpr uint32_t ProtocolVersion = 1;

/// Frames larger than this are a protocol error (TooLarge + close): a
/// hostile client must not make the server buffer unbounded input.
inline constexpr size_t MaxFrameBytes = 8u << 20;

enum class Op : uint8_t {
  Hello = 1,
  Update = 2,
  Explain = 3,
  Only = 4,
  Stats = 5,
  Close = 6,
};

enum class Status : uint8_t {
  Ok = 0,
  Malformed = 1,    ///< frame did not decode; connection is closed
  TooLarge = 2,     ///< frame exceeded MaxFrameBytes; connection closed
  NoSession = 3,    ///< request before Hello, or name already in use
  LoadError = 4,    ///< program source failed to load (diagnostics in body)
  UnknownPred = 5,  ///< Explain/Only named a predicate that does not exist
  Stale = 6,        ///< Explain before any Update in this admission (the
                    ///< session was freshly created or evicted; re-send
                    ///< the program)
  Fault = 7,        ///< request died on a server-side exception
  ShuttingDown = 8, ///< server is draining; request was not run
};

/// Stable lowercase taxonomy name ("ok", "malformed", ...), used by
/// granload's error-taxonomy report and the tests.
const char *statusName(Status S);

/// One decoded request.  Unused fields stay empty.
struct Request {
  Op Kind = Op::Hello;
  uint32_t Id = 0;
  std::string Name;   ///< Hello: client name
  std::string Pred;   ///< Explain: name; Only: "name/arity" spec
  std::string Source; ///< Update/Only: program text
};

/// One decoded response.
struct Response {
  Status St = Status::Ok;
  uint32_t Id = 0;
  uint32_t Degradations = 0;
  std::string Body;
};

/// Serializes a complete frame (length prefix included).
std::string encodeRequest(const Request &R);
std::string encodeResponse(const Response &R);

/// Decodes one frame *payload* (no length prefix).  nullopt = malformed.
std::optional<Request> decodeRequest(std::string_view Payload);
std::optional<Response> decodeResponse(std::string_view Payload);

/// Incremental frame reassembly over a byte stream: append whatever the
/// socket produced (short reads welcome), pop complete payloads.  Once a
/// frame length exceeds the cap the reader is poisoned (overflowed());
/// the connection must be dropped — there is no way to resynchronize a
/// length-prefixed stream after a bad length.
class FrameReader {
public:
  explicit FrameReader(size_t MaxFrame = MaxFrameBytes) : Max(MaxFrame) {}

  void append(const void *Data, size_t N);

  /// The next complete frame payload, or nullopt when more bytes are
  /// needed (or the reader overflowed).
  std::optional<std::string> next();

  bool overflowed() const { return Overflow; }

  /// Bytes buffered but not yet consumed by next().
  size_t buffered() const { return Buffer.size(); }

private:
  std::string Buffer;
  size_t Max;
  bool Overflow = false;
};

} // namespace granlog

#endif // GRANLOG_SERVER_PROTOCOL_H
