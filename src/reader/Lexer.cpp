//===- reader/Lexer.cpp ---------------------------------------------------===//

#include "reader/Lexer.h"

#include <cctype>
#include <cstdlib>

using namespace granlog;

static bool isSymbolChar(char C) {
  switch (C) {
  case '+':
  case '-':
  case '*':
  case '/':
  case '\\':
  case '^':
  case '<':
  case '>':
  case '=':
  case '~':
  case ':':
  case '.':
  case '?':
  case '@':
  case '#':
  case '&':
  case '$':
    return true;
  default:
    return false;
  }
}

static bool isAlnumChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    LineStart = Pos;
  }
  return C;
}

int Lexer::column() const { return static_cast<int>(Pos - LineStart) + 1; }

bool Lexer::skipLayoutAndComments() {
  for (;;) {
    if (atEnd())
      return true;
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '%') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = location();
      advance();
      advance();
      while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (atEnd()) {
        Diags.error(Start, "unterminated block comment");
        return false;
      }
      advance();
      advance();
      continue;
    }
    return true;
  }
}

Token Lexer::makeToken(TokenKind Kind, std::string Text) {
  Token T;
  T.Kind = Kind;
  T.Text = std::move(Text);
  T.Loc = location();
  return T;
}

Token Lexer::next() {
  bool PrevWasAtomLike = LastWasAtomLike;
  LastWasAtomLike = false;
  if (!skipLayoutAndComments())
    return makeToken(TokenKind::Error);
  if (atEnd())
    return makeToken(TokenKind::EndOfFile);

  // If layout was skipped, a following '(' is not an argument-list paren.
  char C = peek();
  SourceLoc Loc = location();

  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();

  if (std::isupper(static_cast<unsigned char>(C)) || C == '_')
    return lexAlphaAtomOrVariable();
  if (std::isalpha(static_cast<unsigned char>(C))) {
    Token T = lexAlphaAtomOrVariable();
    LastWasAtomLike = true;
    return T;
  }
  // '$'-prefixed identifiers are system atoms (e.g. '$grain_leq'), so the
  // printer's output for transformed programs reads back.
  if (C == '$' && std::isalnum(static_cast<unsigned char>(peek(1)))) {
    SourceLoc Loc2 = location();
    advance(); // '$'
    Token T = lexAlphaAtomOrVariable();
    T.Kind = TokenKind::Atom;
    T.Text = "$" + T.Text;
    T.Loc = Loc2;
    LastWasAtomLike = true;
    return T;
  }

  switch (C) {
  case '(': {
    advance();
    Token T = makeToken(TokenKind::LParen);
    T.Loc = Loc;
    // FollowsAtom is only meaningful when the parser saw no layout between
    // the previous atom and this paren; we approximate it by position.
    T.FollowsAtom = PrevWasAtomLike && Pos >= 2 &&
                    !std::isspace(static_cast<unsigned char>(Source[Pos - 2]));
    return T;
  }
  case ')':
    advance();
    return makeToken(TokenKind::RParen);
  case '[':
    advance();
    return makeToken(TokenKind::LBracket);
  case ']':
    advance();
    return makeToken(TokenKind::RBracket);
  case ',':
    advance();
    return makeToken(TokenKind::Comma);
  case '|':
    advance();
    return makeToken(TokenKind::Bar);
  case '\'':
    return lexQuotedAtom();
  case '!':
    advance();
    LastWasAtomLike = true;
    return makeToken(TokenKind::Atom, "!");
  case ';':
    advance();
    LastWasAtomLike = true;
    return makeToken(TokenKind::Atom, ";");
  default:
    break;
  }

  if (isSymbolChar(C)) {
    // '.' followed by layout or EOF terminates a clause.
    if (C == '.') {
      char After = peek(1);
      if (After == '\0' || std::isspace(static_cast<unsigned char>(After)) ||
          After == '%') {
        advance();
        return makeToken(TokenKind::EndClause);
      }
    }
    Token T = lexSymbolicAtom();
    LastWasAtomLike = true;
    return T;
  }

  Diags.error(Loc, std::string("unexpected character '") + C + "'");
  advance();
  return makeToken(TokenKind::Error);
}

Token Lexer::lexNumber() {
  SourceLoc Loc = location();
  size_t Start = Pos;
  while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  bool IsFloat = false;
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsFloat = true;
    advance();
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    size_t Save = Pos;
    advance();
    if (peek() == '+' || peek() == '-')
      advance();
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      IsFloat = true;
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    } else {
      Pos = Save;
    }
  }
  std::string Text(Source.substr(Start, Pos - Start));
  Token T;
  T.Loc = Loc;
  if (IsFloat) {
    T.Kind = TokenKind::Float;
    T.FloatValue = std::strtod(Text.c_str(), nullptr);
  } else {
    T.Kind = TokenKind::Int;
    T.IntValue = std::strtoll(Text.c_str(), nullptr, 10);
  }
  T.Text = std::move(Text);
  LastWasAtomLike = false;
  return T;
}

Token Lexer::lexAlphaAtomOrVariable() {
  SourceLoc Loc = location();
  size_t Start = Pos;
  char First = peek();
  while (!atEnd() && isAlnumChar(peek()))
    advance();
  std::string Text(Source.substr(Start, Pos - Start));
  Token T;
  T.Loc = Loc;
  if (std::isupper(static_cast<unsigned char>(First)) || First == '_') {
    T.Kind = TokenKind::Variable;
  } else {
    T.Kind = TokenKind::Atom;
  }
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lexSymbolicAtom() {
  SourceLoc Loc = location();
  size_t Start = Pos;
  while (!atEnd() && isSymbolChar(peek()))
    advance();
  Token T;
  T.Loc = Loc;
  T.Kind = TokenKind::Atom;
  T.Text = std::string(Source.substr(Start, Pos - Start));
  return T;
}

Token Lexer::lexQuotedAtom() {
  SourceLoc Loc = location();
  advance(); // opening quote
  std::string Text;
  for (;;) {
    if (atEnd()) {
      Diags.error(Loc, "unterminated quoted atom");
      return makeToken(TokenKind::Error);
    }
    char C = advance();
    if (C == '\'') {
      if (peek() == '\'') { // '' escapes a quote
        advance();
        Text += '\'';
        continue;
      }
      break;
    }
    if (C == '\\' && !atEnd()) {
      char E = advance();
      switch (E) {
      case 'n':
        Text += '\n';
        break;
      case 't':
        Text += '\t';
        break;
      default:
        Text += E;
        break;
      }
      continue;
    }
    Text += C;
  }
  Token T = makeToken(TokenKind::Atom, std::move(Text));
  T.Loc = Loc;
  LastWasAtomLike = true;
  return T;
}
