//===- reader/Parser.cpp --------------------------------------------------===//

#include "reader/Parser.h"

using namespace granlog;

void Parser::checkReaderBudget() {
  if (BudgetErrorReported)
    return;
  MeterKind K;
  uint64_t TokenLimit = B->limits().ParseTokens;
  if (TokenLimit && TokensConsumed > TokenLimit)
    K = MeterKind::ParseTokens;
  else if (B->expired())
    K = MeterKind::Deadline;
  else
    return;
  BudgetErrorReported = true;
  Diags.error(Tok.Loc, budgetWhy(*B, K) +
                           ": program too large to read; aborting the load "
                           "(a truncated program would be unsound to analyze)");
  B->record({"reader", K, std::string()});
  Tok.Kind = TokenKind::EndOfFile; // jam: every read path sees end of input
}

bool Parser::expect(TokenKind Kind, const char *What) {
  if (Tok.Kind == Kind) {
    consume();
    return true;
  }
  Diags.error(Tok.Loc, std::string("expected ") + What);
  return false;
}

void Parser::skipToClauseEnd() {
  while (Tok.Kind != TokenKind::EndClause && Tok.Kind != TokenKind::EndOfFile)
    consume();
  if (Tok.Kind == TokenKind::EndClause)
    consume();
}

const VarTerm *Parser::variableFor(const std::string &Name) {
  if (Name == "_") {
    const VarTerm *V = Arena.makeVariable(Arena.symbols().intern("_"));
    ClauseVarOrder.push_back(V);
    return V;
  }
  auto It = ClauseVars.find(Name);
  if (It != ClauseVars.end())
    return It->second;
  const VarTerm *V = Arena.makeVariable(Arena.symbols().intern(Name));
  ClauseVars.emplace(Name, V);
  ClauseVarOrder.push_back(V);
  return V;
}

bool Parser::startsTerm() const {
  switch (Tok.Kind) {
  case TokenKind::Atom:
  case TokenKind::Variable:
  case TokenKind::Int:
  case TokenKind::Float:
  case TokenKind::LParen:
  case TokenKind::LBracket:
    return true;
  default:
    return false;
  }
}

const Term *Parser::readClause() {
  ClauseVars.clear();
  ClauseVarOrder.clear();
  if (Tok.Kind == TokenKind::EndOfFile)
    return nullptr;
  const Term *T = parse(1200);
  if (!T) {
    skipToClauseEnd();
    return nullptr;
  }
  if (!expect(TokenKind::EndClause, "'.' at end of clause")) {
    skipToClauseEnd();
    return nullptr;
  }
  return T;
}

const Term *Parser::parse(int MaxPrec) {
  if (Depth >= MaxTermDepth) {
    // One error per clause: the nullptr unwinds without further messages
    // and readClause() skips to the clause end.
    Diags.error(Tok.Loc, "term nested deeper than " +
                             std::to_string(MaxTermDepth) +
                             " levels; rejecting it");
    return nullptr;
  }
  ++Depth;
  const Term *T = parseNested(MaxPrec);
  --Depth;
  return T;
}

const Term *Parser::parseNested(int MaxPrec) {
  const Term *Left = nullptr;
  int LeftPrec = 0;

  // Prefix operator or primary.
  if (Tok.Kind == TokenKind::Atom) {
    const OpDef *Pre = Ops.lookupPrefix(Tok.Text);
    if (Pre && Pre->Priority <= MaxPrec) {
      std::string Name = Tok.Text;
      // "f(" is always a compound, never a prefix operator application.
      bool IsCall = false;
      {
        // Peek: we cannot look ahead in the lexer, so parse the atom and
        // check the next token.
        consume();
        IsCall = Tok.Kind == TokenKind::LParen && Tok.FollowsAtom;
      }
      if (IsCall) {
        Left = parseArgs(Arena.symbols().intern(Name));
        if (!Left)
          return nullptr;
      } else if ((Name == "-" || Name == "+") &&
                 (Tok.Kind == TokenKind::Int ||
                  Tok.Kind == TokenKind::Float)) {
        // Negative numeric literal.
        bool Negate = Name == "-";
        if (Tok.Kind == TokenKind::Int)
          Left = Arena.makeInt(Negate ? -Tok.IntValue : Tok.IntValue);
        else
          Left = Arena.makeFloat(Negate ? -Tok.FloatValue : Tok.FloatValue);
        consume();
      } else if (startsTerm()) {
        const Term *Operand = parse(Pre->rightMax());
        if (!Operand)
          return nullptr;
        Left = Arena.makeStruct(Arena.symbols().intern(Name), {Operand});
        LeftPrec = Pre->Priority;
      } else {
        // The operator atom used as a plain atom (e.g. in "[+,-]").
        Left = Arena.makeAtom(Name);
      }
    }
  }

  if (!Left) {
    Left = parsePrimary();
    if (!Left)
      return nullptr;
  }

  // Infix operator loop.
  for (;;) {
    const OpDef *In = nullptr;
    std::string OpName;
    if (Tok.Kind == TokenKind::Atom) {
      In = Ops.lookupInfix(Tok.Text);
      OpName = Tok.Text;
    } else if (Tok.Kind == TokenKind::Comma) {
      In = Ops.lookupInfix(",");
      OpName = ",";
    } else if (Tok.Kind == TokenKind::Bar) {
      // '|' as an infix alias for ';' is not supported; lists handle Bar.
      break;
    }
    if (!In || In->Priority > MaxPrec || LeftPrec > In->leftMax())
      break;
    consume();
    const Term *Right = parse(In->rightMax());
    if (!Right)
      return nullptr;
    Left = Arena.makeStruct(Arena.symbols().intern(OpName), {Left, Right});
    LeftPrec = In->Priority;
  }
  return Left;
}

const Term *Parser::parsePrimary() {
  switch (Tok.Kind) {
  case TokenKind::Int: {
    const Term *T = Arena.makeInt(Tok.IntValue);
    consume();
    return T;
  }
  case TokenKind::Float: {
    const Term *T = Arena.makeFloat(Tok.FloatValue);
    consume();
    return T;
  }
  case TokenKind::Variable: {
    const Term *T = variableFor(Tok.Text);
    consume();
    return T;
  }
  case TokenKind::Atom: {
    std::string Name = Tok.Text;
    consume();
    if (Tok.Kind == TokenKind::LParen && Tok.FollowsAtom)
      return parseArgs(Arena.symbols().intern(Name));
    return Arena.makeAtom(Name);
  }
  case TokenKind::LParen: {
    consume();
    const Term *T = parse(1200);
    if (!T)
      return nullptr;
    if (!expect(TokenKind::RParen, "')'"))
      return nullptr;
    return T;
  }
  case TokenKind::LBracket:
    return parseList();
  default:
    Diags.error(Tok.Loc, "expected a term");
    return nullptr;
  }
}

const Term *Parser::parseArgs(Symbol Name) {
  assert(Tok.Kind == TokenKind::LParen && "parseArgs expects '('");
  consume();
  std::vector<const Term *> Args;
  for (;;) {
    const Term *Arg = parse(999);
    if (!Arg)
      return nullptr;
    Args.push_back(Arg);
    if (Tok.Kind == TokenKind::Comma) {
      consume();
      continue;
    }
    break;
  }
  if (!expect(TokenKind::RParen, "')' after arguments"))
    return nullptr;
  return Arena.makeStruct(Name, std::move(Args));
}

const Term *Parser::parseList() {
  assert(Tok.Kind == TokenKind::LBracket && "parseList expects '['");
  consume();
  if (Tok.Kind == TokenKind::RBracket) {
    consume();
    return Arena.makeNil();
  }
  std::vector<const Term *> Elements;
  const Term *Tail = nullptr;
  for (;;) {
    const Term *E = parse(999);
    if (!E)
      return nullptr;
    Elements.push_back(E);
    if (Tok.Kind == TokenKind::Comma) {
      consume();
      continue;
    }
    if (Tok.Kind == TokenKind::Bar) {
      consume();
      Tail = parse(999);
      if (!Tail)
        return nullptr;
    }
    break;
  }
  if (!expect(TokenKind::RBracket, "']' at end of list"))
    return nullptr;
  const Term *List = Tail ? Tail : Arena.makeNil();
  for (auto It = Elements.rbegin(); It != Elements.rend(); ++It)
    List = Arena.makeCons(*It, List);
  return List;
}

const Term *granlog::parseTermText(std::string_view Text, TermArena &Arena,
                                   Diagnostics &Diags) {
  std::string Buffer(Text);
  // Ensure the term is terminated so readClause() succeeds.
  Buffer += " .";
  Parser P(Buffer, Arena, Diags);
  const Term *T = P.readClause();
  if (Diags.hasErrors())
    return nullptr;
  return T;
}
