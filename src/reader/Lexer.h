//===- reader/Lexer.h - Prolog tokenizer ----------------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the Prolog subset used by the granularity analyzer:
/// atoms (alphanumeric, symbolic, quoted), variables, integers, floats,
/// punctuation, '%' line comments and '/* */' block comments.  The clause
/// terminator is a '.' followed by layout or end of input, as in standard
/// Prolog (a '.' followed by a symbol character is a symbolic atom).
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_READER_LEXER_H
#define GRANLOG_READER_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace granlog {

/// Kinds of token produced by the Lexer.
enum class TokenKind {
  Atom,      ///< foo, 'quoted', + , :- , etc.  Text carries the name.
  Variable,  ///< X, _Foo, _
  Int,       ///< 42
  Float,     ///< 3.14
  LParen,    ///< '('  (FollowsAtom distinguishes f( from f ()
  RParen,    ///< ')'
  LBracket,  ///< '['
  RBracket,  ///< ']'
  Comma,     ///< ','
  Bar,       ///< '|'
  EndClause, ///< '.' followed by layout
  EndOfFile,
  Error,
};

/// One token.  Text/IntValue/FloatValue are valid depending on Kind.
struct Token {
  TokenKind Kind = TokenKind::Error;
  std::string Text;
  int64_t IntValue = 0;
  double FloatValue = 0;
  SourceLoc Loc;
  /// For LParen: true when the '(' immediately follows an atom with no
  /// intervening layout, i.e. this opens an argument list.
  bool FollowsAtom = false;

  bool isAtom(std::string_view Name) const {
    return Kind == TokenKind::Atom && Text == Name;
  }
};

/// Produces Tokens from a source buffer.  Diagnoses malformed input (e.g.
/// unterminated quotes) through the Diagnostics sink and then yields an
/// Error token.
class Lexer {
public:
  Lexer(std::string_view Source, Diagnostics &Diags)
      : Source(Source), Diags(Diags) {}

  /// Lexes and returns the next token.
  Token next();

  SourceLoc location() const { return {Line, column()}; }

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  bool atEnd() const { return Pos >= Source.size(); }
  char advance();
  bool skipLayoutAndComments(); ///< returns false on unterminated comment
  int column() const;

  Token makeToken(TokenKind Kind, std::string Text = std::string());
  Token lexNumber();
  Token lexAlphaAtomOrVariable();
  Token lexSymbolicAtom();
  Token lexQuotedAtom();

  std::string_view Source;
  Diagnostics &Diags;
  size_t Pos = 0;
  size_t LineStart = 0;
  int Line = 1;
  bool LastWasAtomLike = false;
};

} // namespace granlog

#endif // GRANLOG_READER_LEXER_H
