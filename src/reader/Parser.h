//===- reader/Parser.h - Prolog reader ------------------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operator-precedence parser producing arena terms.  One Parser reads a
/// whole source buffer clause by clause; variables are scoped per clause
/// (same name = same variable, '_' always fresh).
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_READER_PARSER_H
#define GRANLOG_READER_PARSER_H

#include "reader/Lexer.h"
#include "reader/OpTable.h"
#include "support/Diagnostics.h"
#include "term/Term.h"

#include <optional>
#include <unordered_map>

namespace granlog {

/// Parses Prolog text into terms.
class Parser {
public:
  Parser(std::string_view Source, TermArena &Arena, Diagnostics &Diags)
      : Lex(Source, Diags), Arena(Arena), Diags(Diags) {
    consume();
  }

  /// Reads the next clause (a term of priority at most 1200 followed by the
  /// clause terminator).  Returns nullptr at end of input or after a parse
  /// error; distinguish the two with atEnd()/Diags.hasErrors().
  const Term *readClause();

  bool atEnd() const { return Tok.Kind == TokenKind::EndOfFile; }

  /// The variables of the most recently read clause, in source order.
  const std::vector<const VarTerm *> &clauseVariables() const {
    return ClauseVarOrder;
  }

private:
  void consume() { Tok = Lex.next(); }
  bool expect(TokenKind Kind, const char *What);
  void skipToClauseEnd();

  const Term *parse(int MaxPrec);
  const Term *parsePrimary();
  const Term *parseList();
  const Term *parseArgs(Symbol Name);
  const VarTerm *variableFor(const std::string &Name);

  /// True if the current token can begin a term (operand position).
  bool startsTerm() const;

  Lexer Lex;
  TermArena &Arena;
  Diagnostics &Diags;
  OpTable Ops;
  Token Tok;
  std::unordered_map<std::string, const VarTerm *> ClauseVars;
  std::vector<const VarTerm *> ClauseVarOrder;
};

/// Parses a single term from \p Text (for tests and small embedded goals).
/// Returns nullptr on error.
const Term *parseTermText(std::string_view Text, TermArena &Arena,
                          Diagnostics &Diags);

} // namespace granlog

#endif // GRANLOG_READER_PARSER_H
