//===- reader/Parser.h - Prolog reader ------------------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operator-precedence parser producing arena terms.  One Parser reads a
/// whole source buffer clause by clause; variables are scoped per clause
/// (same name = same variable, '_' always fresh).
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_READER_PARSER_H
#define GRANLOG_READER_PARSER_H

#include "reader/Lexer.h"
#include "reader/OpTable.h"
#include "support/Budget.h"
#include "support/Diagnostics.h"
#include "term/Term.h"

#include <optional>
#include <unordered_map>

namespace granlog {

/// Parses Prolog text into terms.
class Parser {
public:
  Parser(std::string_view Source, TermArena &Arena, Diagnostics &Diags)
      : Lex(Source, Diags), Arena(Arena), Diags(Diags) {
    consume();
  }

  /// Reads the next clause (a term of priority at most 1200 followed by the
  /// clause terminator).  Returns nullptr at end of input or after a parse
  /// error; distinguish the two with atEnd()/Diags.hasErrors().
  const Term *readClause();

  bool atEnd() const { return Tok.Kind == TokenKind::EndOfFile; }

  /// The variables of the most recently read clause, in source order.
  const std::vector<const VarTerm *> &clauseVariables() const {
    return ClauseVarOrder;
  }

  /// Attaches a resource budget: every token consumed charges the
  /// ParseTokens meter; on exhaustion (or deadline expiry) the parser
  /// emits one error and jams to end of input.  A truncated program would
  /// be *unsound* to analyze (missing clauses could lower every bound),
  /// so reader exhaustion is a hard load failure, never a degradation.
  void setBudget(Budget *B) { this->B = B; }

private:
  void consume() {
    if (BudgetErrorReported) {
      Tok.Kind = TokenKind::EndOfFile; // stay jammed: the load is aborted
      return;
    }
    Tok = Lex.next();
    if (B) {
      ++TokensConsumed;
      checkReaderBudget();
    }
  }
  void checkReaderBudget();
  bool expect(TokenKind Kind, const char *What);
  void skipToClauseEnd();

  const Term *parse(int MaxPrec);
  const Term *parseNested(int MaxPrec);
  const Term *parsePrimary();
  const Term *parseList();
  const Term *parseArgs(Symbol Name);
  const VarTerm *variableFor(const std::string &Name);

  /// True if the current token can begin a term (operand position).
  bool startsTerm() const;

  Lexer Lex;
  TermArena &Arena;
  Diagnostics &Diags;
  OpTable Ops;
  Token Tok;
  Budget *B = nullptr;
  uint64_t TokensConsumed = 0;
  bool BudgetErrorReported = false;
  /// Recursive-descent depth guard: terms nested deeper than this are
  /// rejected with a diagnostic instead of overflowing the stack.
  static constexpr unsigned MaxTermDepth = 5000;
  unsigned Depth = 0;
  std::unordered_map<std::string, const VarTerm *> ClauseVars;
  std::vector<const VarTerm *> ClauseVarOrder;
};

/// Parses a single term from \p Text (for tests and small embedded goals).
/// Returns nullptr on error.
const Term *parseTermText(std::string_view Text, TermArena &Arena,
                          Diagnostics &Diags);

} // namespace granlog

#endif // GRANLOG_READER_PARSER_H
