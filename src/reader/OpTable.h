//===- reader/OpTable.h - Prolog operator table ---------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard Prolog operator table plus the '&' parallel-conjunction
/// operator of &-Prolog (priority 1025, xfy: "a, b & c, d" reads as
/// "(a, b) & (c, d)").  Priorities follow ISO conventions: larger numbers
/// bind looser.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_READER_OPTABLE_H
#define GRANLOG_READER_OPTABLE_H

#include <string>
#include <string_view>
#include <unordered_map>

namespace granlog {

/// Operator associativity types.
enum class OpType {
  XFX, ///< infix, neither side may be same priority
  XFY, ///< infix, right-associative
  YFX, ///< infix, left-associative
  FY,  ///< prefix, argument may be same priority
  FX,  ///< prefix, argument must be lower priority
};

/// One operator definition.
struct OpDef {
  int Priority = 0;
  OpType Type = OpType::XFX;

  bool isPrefix() const { return Type == OpType::FY || Type == OpType::FX; }
  /// Maximum priority allowed for the left operand (infix only).
  int leftMax() const { return Type == OpType::YFX ? Priority : Priority - 1; }
  /// Maximum priority allowed for the right (or prefix) operand.
  int rightMax() const {
    return (Type == OpType::XFY || Type == OpType::FY) ? Priority
                                                       : Priority - 1;
  }
};

/// Operator lookups for the parser.  An atom may be both a prefix and an
/// infix operator (e.g. '-').
class OpTable {
public:
  /// Builds the standard table (ISO core operators plus '&').
  OpTable();

  void addInfix(std::string Name, int Priority, OpType Type);
  void addPrefix(std::string Name, int Priority, OpType Type);

  const OpDef *lookupInfix(std::string_view Name) const;
  const OpDef *lookupPrefix(std::string_view Name) const;

private:
  std::unordered_map<std::string, OpDef> Infix;
  std::unordered_map<std::string, OpDef> Prefix;
};

} // namespace granlog

#endif // GRANLOG_READER_OPTABLE_H
