//===- reader/OpTable.cpp -------------------------------------------------===//

#include "reader/OpTable.h"

#include <cassert>

using namespace granlog;

OpTable::OpTable() {
  addInfix(":-", 1200, OpType::XFX);
  addInfix("-->", 1200, OpType::XFX);
  addPrefix(":-", 1200, OpType::FX);
  addPrefix("?-", 1200, OpType::FX);
  addInfix(";", 1100, OpType::XFY);
  addInfix("->", 1050, OpType::XFY);
  // &-Prolog parallel conjunction: binds looser than ',' so that
  // "a, b & c, d" groups as "(a, b) & (c, d)".
  addInfix("&", 1025, OpType::XFY);
  addInfix(",", 1000, OpType::XFY);
  addPrefix("\\+", 900, OpType::FY);
  for (const char *Name : {"=", "\\=", "==", "\\==", "@<", "@>", "@=<", "@>=",
                           "is", "=..", "<", ">", "=<", ">=", "=:=", "=\\="})
    addInfix(Name, 700, OpType::XFX);
  addInfix("+", 500, OpType::YFX);
  addInfix("-", 500, OpType::YFX);
  addInfix("/\\", 500, OpType::YFX);
  addInfix("\\/", 500, OpType::YFX);
  addInfix("*", 400, OpType::YFX);
  addInfix("/", 400, OpType::YFX);
  addInfix("//", 400, OpType::YFX);
  addInfix("mod", 400, OpType::YFX);
  addInfix("rem", 400, OpType::YFX);
  addInfix("<<", 400, OpType::YFX);
  addInfix(">>", 400, OpType::YFX);
  addInfix("**", 200, OpType::XFX);
  addInfix("^", 200, OpType::XFY);
  addPrefix("-", 200, OpType::FY);
  addPrefix("+", 200, OpType::FY);
}

void OpTable::addInfix(std::string Name, int Priority, OpType Type) {
  assert(Type == OpType::XFX || Type == OpType::XFY || Type == OpType::YFX);
  Infix[std::move(Name)] = {Priority, Type};
}

void OpTable::addPrefix(std::string Name, int Priority, OpType Type) {
  assert(Type == OpType::FY || Type == OpType::FX);
  Prefix[std::move(Name)] = {Priority, Type};
}

const OpDef *OpTable::lookupInfix(std::string_view Name) const {
  auto It = Infix.find(std::string(Name));
  return It == Infix.end() ? nullptr : &It->second;
}

const OpDef *OpTable::lookupPrefix(std::string_view Name) const {
  auto It = Prefix.find(std::string(Name));
  return It == Prefix.end() ? nullptr : &It->second;
}
