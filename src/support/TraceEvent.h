//===- support/TraceEvent.h - Chrome trace-event emission -----------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A writer for the Chrome Trace Event Format (the JSON-object form with a
/// "traceEvents" array), viewable in Perfetto or chrome://tracing.  The
/// simulated multiprocessor (runtime/Scheduler) emits one track (tid) per
/// simulated worker: complete events ("ph":"X") for executed task
/// segments, instant events ("ph":"i") at the moments spawn/sched/join
/// overheads are paid, and metadata events naming the worker threads.
///
/// Timestamps are the simulator's abstract work units, written to the
/// format's microsecond field — one unit displays as one microsecond,
/// which only rescales the (already abstract) time axis.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SUPPORT_TRACEEVENT_H
#define GRANLOG_SUPPORT_TRACEEVENT_H

#include <string>
#include <vector>

namespace granlog {

/// One trace event, pre-serialization (tests inspect these directly).
struct TraceEvent {
  std::string Name;
  std::string Category;
  char Phase = 'X'; ///< 'X' complete, 'i' instant, 'M' metadata
  double Ts = 0;    ///< start timestamp, abstract units
  double Dur = 0;   ///< 'X' only
  unsigned Tid = 0; ///< worker id (or target tid for metadata)
  /// Metadata payload ("name" arg of thread_name events) or instant
  /// detail; empty when unused.
  std::string Arg;
};

/// Collects events and serializes the trace.
class TraceWriter {
public:
  /// A span of work on a worker track.
  void complete(std::string Name, std::string Category, unsigned Tid,
                double Ts, double Dur);
  /// A zero-duration marker on a worker track (thread-scoped).
  void instant(std::string Name, std::string Category, unsigned Tid,
               double Ts);
  /// Names a worker track ("thread_name" metadata).
  void threadName(unsigned Tid, std::string Name);

  const std::vector<TraceEvent> &events() const { return Events; }

  /// The full trace document: {"traceEvents": [...], ...}.
  std::string json() const;

  /// Serializes to \p Path; false (with no partial file guarantee) on I/O
  /// failure.
  bool writeFile(const std::string &Path) const;

private:
  std::vector<TraceEvent> Events;
};

} // namespace granlog

#endif // GRANLOG_SUPPORT_TRACEEVENT_H
