//===- support/TraceEvent.h - Chrome trace-event emission -----------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A writer for the Chrome Trace Event Format (the JSON-object form with a
/// "traceEvents" array), viewable in Perfetto or chrome://tracing.  The
/// simulated multiprocessor (runtime/Scheduler) emits one track (tid) per
/// simulated worker: complete events ("ph":"X") for executed task
/// segments, instant events ("ph":"i") at the moments spawn/sched/join
/// overheads are paid, and metadata events naming the worker threads.
///
/// Timestamps are the simulator's abstract work units, written to the
/// format's microsecond field — one unit displays as one microsecond,
/// which only rescales the (already abstract) time axis.
///
/// Clock domains: because the simulator writes abstract units while the
/// analyzer tracer (support/Tracer) writes wall-clock nanoseconds, the
/// two must never share a process track.  Each producer claims a pid and
/// names it with a process_name metadata event (processName below), so a
/// merged trace renders as two clearly labelled process groups instead of
/// one misleading timeline.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SUPPORT_TRACEEVENT_H
#define GRANLOG_SUPPORT_TRACEEVENT_H

#include <string>
#include <vector>

namespace granlog {

/// One trace event, pre-serialization (tests inspect these directly).
struct TraceEvent {
  std::string Name;
  std::string Category;
  char Phase = 'X'; ///< 'X' complete, 'i' instant, 'M' metadata
  double Ts = 0;    ///< start timestamp, abstract units
  double Dur = 0;   ///< 'X' only
  unsigned Tid = 0; ///< worker id (or target tid for metadata)
  /// Process track: 0 is the simulator's abstract-time track, the
  /// analyzer tracer exports on 1 (see the clock-domain note above).
  unsigned Pid = 0;
  /// Metadata payload ("name" arg of thread_name events) or instant
  /// detail; empty when unused.
  std::string Arg;
};

/// Collects events and serializes the trace.
class TraceWriter {
public:
  /// A span of work on a worker track.
  void complete(std::string Name, std::string Category, unsigned Tid,
                double Ts, double Dur);
  /// A zero-duration marker on a worker track (thread-scoped).
  void instant(std::string Name, std::string Category, unsigned Tid,
               double Ts);
  /// Names a worker track ("thread_name" metadata).
  void threadName(unsigned Tid, std::string Name);

  /// \name Pid-explicit variants (multi-process traces).
  /// The two-clock-domain rule above: every producer writing a distinct
  /// time base must use its own pid.
  /// @{
  void completeOn(unsigned Pid, std::string Name, std::string Category,
                  unsigned Tid, double Ts, double Dur);
  void threadNameOn(unsigned Pid, unsigned Tid, std::string Name);
  /// Names a process track ("process_name" metadata), labelling its
  /// clock domain for human readers of a merged trace.
  void processName(unsigned Pid, std::string Name);
  /// @}

  const std::vector<TraceEvent> &events() const { return Events; }

  /// The full trace document: {"traceEvents": [...], ...}.
  std::string json() const;

  /// Serializes to \p Path atomically (temp file + rename, like
  /// SolverCache::saveToFile): on failure returns false and \p Path is
  /// left untouched — a crashed run never leaves a truncated trace.
  bool writeFile(const std::string &Path) const;

private:
  std::vector<TraceEvent> Events;
};

} // namespace granlog

#endif // GRANLOG_SUPPORT_TRACEEVENT_H
