//===- support/Rational.h - Exact rational arithmetic ---------------------===//
//
// Part of GranLog, a reproduction of Debray, Lin & Hermenegildo,
// "Task Granularity Analysis in Logic Programs", PLDI 1990.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational numbers over int64, used as the coefficient domain of the
/// symbolic expression library.  The paper's closed forms (e.g. the cost of
/// naive reverse, 0.5 n^2 + 1.5 n + 1) have non-integer rational
/// coefficients, so double arithmetic would make the analysis results
/// unstable to compare in tests.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SUPPORT_RATIONAL_H
#define GRANLOG_SUPPORT_RATIONAL_H

#include <cassert>
#include <cstdint>
#include <numeric>
#include <string>

namespace granlog {

/// An exact rational number with a canonical representation: the denominator
/// is always positive and gcd(|num|, den) == 1.  Overflow of int64 is not
/// checked; the analyses in this project produce small coefficients.
class Rational {
public:
  Rational() : Num(0), Den(1) {}
  Rational(int64_t N) : Num(N), Den(1) {}
  Rational(int64_t N, int64_t D) : Num(N), Den(D) {
    assert(D != 0 && "rational with zero denominator");
    normalize();
  }

  int64_t numerator() const { return Num; }
  int64_t denominator() const { return Den; }

  bool isZero() const { return Num == 0; }
  bool isOne() const { return Num == 1 && Den == 1; }
  bool isInteger() const { return Den == 1; }
  bool isNegative() const { return Num < 0; }

  /// Returns the integer value; only valid when isInteger().
  int64_t asInteger() const {
    assert(isInteger() && "not an integer");
    return Num;
  }

  double asDouble() const {
    return static_cast<double>(Num) / static_cast<double>(Den);
  }

  Rational operator-() const { return Rational(-Num, Den, NoNormalize()); }

  Rational operator+(const Rational &R) const {
    return Rational(Num * R.Den + R.Num * Den, Den * R.Den);
  }
  Rational operator-(const Rational &R) const {
    return Rational(Num * R.Den - R.Num * Den, Den * R.Den);
  }
  Rational operator*(const Rational &R) const {
    return Rational(Num * R.Num, Den * R.Den);
  }
  Rational operator/(const Rational &R) const {
    assert(!R.isZero() && "division by zero");
    return Rational(Num * R.Den, Den * R.Num);
  }

  Rational &operator+=(const Rational &R) { return *this = *this + R; }
  Rational &operator-=(const Rational &R) { return *this = *this - R; }
  Rational &operator*=(const Rational &R) { return *this = *this * R; }
  Rational &operator/=(const Rational &R) { return *this = *this / R; }

  bool operator==(const Rational &R) const {
    return Num == R.Num && Den == R.Den;
  }
  bool operator!=(const Rational &R) const { return !(*this == R); }
  bool operator<(const Rational &R) const {
    return Num * R.Den < R.Num * Den;
  }
  bool operator<=(const Rational &R) const {
    return Num * R.Den <= R.Num * Den;
  }
  bool operator>(const Rational &R) const { return R < *this; }
  bool operator>=(const Rational &R) const { return R <= *this; }

  /// Largest integer <= this.
  int64_t floor() const {
    if (Num >= 0 || Num % Den == 0)
      return Num / Den;
    return Num / Den - 1;
  }

  /// Smallest integer >= this.
  int64_t ceil() const {
    if (Num <= 0 || Num % Den == 0)
      return Num / Den;
    return Num / Den + 1;
  }

  Rational abs() const { return Num < 0 ? -*this : *this; }

  /// Integer power; \p E may be negative for nonzero values.
  Rational pow(int64_t E) const;

  /// Renders e.g. "3", "-1/2".
  std::string str() const;

private:
  struct NoNormalize {};
  Rational(int64_t N, int64_t D, NoNormalize) : Num(N), Den(D) {}

  void normalize() {
    if (Den < 0) {
      Num = -Num;
      Den = -Den;
    }
    int64_t G = std::gcd(Num < 0 ? -Num : Num, Den);
    if (G > 1) {
      Num /= G;
      Den /= G;
    }
    if (Num == 0)
      Den = 1;
  }

  int64_t Num;
  int64_t Den;
};

} // namespace granlog

#endif // GRANLOG_SUPPORT_RATIONAL_H
