//===- support/Stats.h - Named counters and phase timers ------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-light statistics registry in the style of CaDiCaL's Stats:
/// named monotone counters plus named double-valued metrics (accumulated
/// wall-clock phase timers, work units).  Every instrumented component
/// holds a nullable StatsRegistry*; a null pointer means "stats off" and
/// costs exactly one predicted-not-taken branch per event, so the
/// instrumentation is free in production runs (acceptance: < 2% on
/// bench_analyzer with stats off).
///
/// Naming convention (the stats taxonomy, see DESIGN.md "Observability"):
///   phase.<name>          seconds spent in one analyzer phase
///   scc.<id>.seconds      seconds spent analyzing one SCC (parallel driver)
///   <layer>.solver.hit.<schema>   diffeq schema matches per schema name
///   <layer>.solver.infinity       equations that fell to Infinity
///   <layer>.solver.relaxed        solves that applied an upper-bound
///                                 relaxation (result not exact)
///   solver.cache.*        memoized recurrence-solver cache traffic
///   size.*, cost.*        domain counters of the two equation layers
///   classify.<class>      predicates per granularity classification
///   interp.*              dynamic execution counters
///   expr.intern.*, expr.memo.*   hash-consing unique-table and memoized-
///                                traversal traffic; process-global (see
///                                snapshotExprCounters), never recorded
///                                into per-run registries
///   budget.degradations          results degraded by the resource budget
///   budget.exhausted.<meter>     degradations per meter (expr-nodes,
///                                solver-steps, ...); additive keys, only
///                                present on budgeted runs that degraded
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SUPPORT_STATS_H
#define GRANLOG_SUPPORT_STATS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <string_view>

namespace granlog {

class JsonWriter;

/// Version of the JSON document written by StatsRegistry::writeJson and
/// the tools that embed it (analyze_file --stats-json, bench_analyzer
/// --granlog-stats-out).  Bump when renaming keys or changing structure so
/// benchmark-history consumers can parse old records.
///
/// Version history:
///   1  initial schema: {"counters": {...}, "values": {...}}
///   2  parallel pipeline: adds solver.cache.{hit,miss,entries} counters
///      and scc.<id>.seconds timers; same document structure
///      (still 2) expression interning: tools that opt in via
///      snapshotExprCounters() additionally emit
///      expr.intern.{hit,miss,entries} and expr.memo.{hit,miss} —
///      additive keys only, so no version bump
///      (still 2) resource budgets: degraded budgeted runs additionally
///      emit budget.degradations and budget.exhausted.<meter> —
///      additive keys only, so no version bump
inline constexpr int StatsJsonVersion = 2;

/// Named counters and metrics.  Thread-safe: counters are atomics behind a
/// shared-locked name map (the common increment path takes only a shared
/// lock plus one relaxed fetch_add), metrics take the exclusive lock (they
/// are recorded rarely — once per phase/scope).  Readers snapshot.
class StatsRegistry {
public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry &) = delete;
  StatsRegistry &operator=(const StatsRegistry &) = delete;

  /// Increments counter \p Name by \p N.
  void add(std::string_view Name, uint64_t N = 1);
  /// Accumulates \p Value into metric \p Name (e.g. seconds of a phase).
  void addValue(std::string_view Name, double Value);

  /// Current counter value (0 when never incremented).
  uint64_t counter(std::string_view Name) const;
  /// Current metric value (0.0 when never recorded).
  double value(std::string_view Name) const;

  /// Snapshot of all counters, sorted by name.
  std::map<std::string, uint64_t, std::less<>> counters() const;
  /// Snapshot of all metrics, sorted by name.
  std::map<std::string, double, std::less<>> values() const;

  void clear();

  /// Human-readable two-column listing, sorted by name.
  std::string str() const;

  /// Writes {"counters": {...}, "values": {...}} (one object value).
  void writeJson(JsonWriter &W) const;

private:
  // node-based map => atomic slots have stable addresses across inserts.
  mutable std::shared_mutex Mutex;
  std::map<std::string, std::atomic<uint64_t>, std::less<>> Counters;
  std::map<std::string, double, std::less<>> Values;
};

/// RAII wall-clock timer: accumulates the scope's duration in seconds into
/// metric \p Name.  Null registry => no-op (and no clock read).  Nested
/// timers are independent: each accumulates its own full scope time, so
/// "phase.total" can enclose the per-phase timers.
class ScopedTimer {
public:
  ScopedTimer(StatsRegistry *Stats, std::string_view Name)
      : Stats(Stats), Name(Name) {
    if (Stats)
      Start = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (Stats)
      Stats->addValue(
          Name, std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count());
  }
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  StatsRegistry *Stats;
  std::string Name;
  std::chrono::steady_clock::time_point Start;
};

/// A per-scope counter sink for the incremental session: while a
/// StatsCaptureScope is installed on a thread, every statsAdd() on that
/// thread is additionally accumulated here (even with a null registry, so
/// results recorded during a stats-off update can still be replayed into
/// a later stats-on one).  The analyzer installs one capture per SCC job;
/// replaying the captured map into a fresh registry reproduces the SCC's
/// counter activity exactly — the foundation of the warm-run == cold-run
/// stats-JSON byte identity.  Not thread-safe by itself: one capture is
/// only ever installed on one thread at a time.
class StatsCapture {
public:
  void add(std::string_view Name, uint64_t N) {
    auto It = Counters.find(Name);
    if (It == Counters.end())
      Counters.emplace(std::string(Name), N);
    else
      It->second += N;
  }

  const std::map<std::string, uint64_t, std::less<>> &counters() const {
    return Counters;
  }
  bool empty() const { return Counters.empty(); }

  /// Replays every captured counter into \p S (null-safe).
  void replay(StatsRegistry *S) const {
    if (!S)
      return;
    for (const auto &[Name, N] : Counters)
      S->add(Name, N);
  }

private:
  std::map<std::string, uint64_t, std::less<>> Counters;
};

/// The capture installed on the current thread (null = capture off).
StatsCapture *currentStatsCapture();

/// RAII: installs \p C as the current thread's capture for the scope,
/// restoring the previous one on exit (mirrors MeterScope in Budget.h).
class StatsCaptureScope {
public:
  explicit StatsCaptureScope(StatsCapture *C);
  ~StatsCaptureScope();
  StatsCaptureScope(const StatsCaptureScope &) = delete;
  StatsCaptureScope &operator=(const StatsCaptureScope &) = delete;

private:
  StatsCapture *Prev;
};

/// \name Null-safe recording helpers for instrumented call sites.
/// Counter increments are teed into the current thread's StatsCapture
/// (when one is installed) so the incremental session can replay them.
/// @{

/// True when statsAdd would record somewhere; guards call sites that
/// build counter names eagerly (string concatenation).
inline bool statsActive(StatsRegistry *S) {
  return S || currentStatsCapture();
}
inline void statsAdd(StatsRegistry *S, std::string_view Name,
                     uint64_t N = 1) {
  if (StatsCapture *C = currentStatsCapture())
    C->add(Name, N);
  if (S)
    S->add(Name, N);
}
inline void statsAddValue(StatsRegistry *S, std::string_view Name,
                          double Value) {
  if (S)
    S->addValue(Name, Value);
}
/// @}

} // namespace granlog

#endif // GRANLOG_SUPPORT_STATS_H
