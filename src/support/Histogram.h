//===- support/Histogram.h - Fixed-boundary latency histograms ------------===//
//
// Part of GranLog; see DESIGN.md "Analyzer tracing & profiling".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A latency histogram with *fixed* (power-of-two) bucket boundaries.
/// Adding a sample bumps one counter and merging adds counters, so the
/// histogram — and every percentile derived from it — is a function of
/// the sample multiset alone: insertion order, thread count and merge
/// order cannot change the result.  Percentiles return the upper boundary
/// of the bucket holding the requested rank (a deterministic upper bound
/// on the true percentile, in the spirit of the analyzer's other sound
/// overestimates).
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SUPPORT_HISTOGRAM_H
#define GRANLOG_SUPPORT_HISTOGRAM_H

#include <array>
#include <cstdint>

namespace granlog {

class JsonWriter;

class LatencyHistogram {
public:
  /// Bucket B covers (bucketUpperNs(B-1), bucketUpperNs(B)] nanoseconds;
  /// bucket 0 covers [0, 1].  64 power-of-two buckets span every uint64.
  static constexpr unsigned NumBuckets = 64;
  static uint64_t bucketUpperNs(unsigned Bucket);

  void addNs(uint64_t Ns);
  void merge(const LatencyHistogram &O);

  uint64_t count() const;
  /// The upper boundary of the bucket containing the ceil(P * count)-th
  /// smallest sample (P in (0, 1]); 0 when empty.
  uint64_t percentileNs(double P) const;

  /// {"count":N,"p50_ns":...,"p90_ns":...,"p99_ns":...} — one value per
  /// stats key documented in README.
  void writeJson(JsonWriter &W) const;

private:
  std::array<uint64_t, NumBuckets> Counts{};
};

} // namespace granlog

#endif // GRANLOG_SUPPORT_HISTOGRAM_H
