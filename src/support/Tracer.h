//===- support/Tracer.h - Hierarchical analyzer span tracing --------------===//
//
// Part of GranLog; see DESIGN.md "Analyzer tracing & profiling".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead structured tracing subsystem for the *analyzer itself*
/// (wall time), complementing the simulated-machine traces of
/// runtime/Scheduler (abstract time units).  The span taxonomy mirrors the
/// pipeline's nesting:
///
///   batch > program > session.update > scc > {size, cost} > solve >
///   {normalize, cache.probe}
///
/// Design constraints, in order:
///
///  - Tracing off (null Tracer*) costs one branch per would-be span, the
///    same nullable-pointer idiom as StatsRegistry.  Analysis results are
///    never affected either way.
///  - Tracing on, the span hot path is two fenced steady_clock reads and
///    one POD store into a per-thread ring buffer — no locks, no
///    allocation (the buffer is preallocated when a thread records its
///    first span).  When a ring wraps, the *oldest* records are
///    overwritten (spans close innermost-first, so early leaf spans go
///    before the enclosing phase spans) and dropped() reports how many.
///  - Spans carry typed attributes as fixed-width fields (SCC id, program
///    id, cache outcome / degradation detail), not strings.  Program
///    names are interned up front via registerProgram(), off the hot
///    path.
///
/// Context propagation: each thread's log remembers the current program
/// and SCC; Program/Scc spans set them (and restore on close), so deeply
/// nested spans (solver, cache probe) inherit their tags without any
/// signature changes through the layers.  This works because one
/// (program, SCC) analysis job runs entirely on one thread.
///
/// snapshot()/exportTo() must only be called when no thread is actively
/// recording (after the analysis pool joined) — the join provides the
/// happens-before edge that makes the logs safe to read.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SUPPORT_TRACER_H
#define GRANLOG_SUPPORT_TRACER_H

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace granlog {

class TraceWriter;

/// The span taxonomy, outermost first.  Values index per-kind aggregation
/// arrays (see support/Profile.h); append only.
enum class SpanKind : uint8_t {
  Batch = 0,     ///< one analyzeCorpusBatch call
  Program,       ///< one benchmark / one analyzer run
  SessionUpdate, ///< one AnalysisSession::update revision
  Scc,           ///< one SCC job of the parallel/planned driver
  Size,          ///< SizeAnalysis::analyzeSCC (argument-size phase)
  Cost,          ///< CostAnalysis::analyzeSCC (cost phase)
  Solve,         ///< one DiffEqSolver::solve call
  Normalize,     ///< one inlineCalls substitution round
  CacheProbe,    ///< one SolverCache lookup
};
inline constexpr unsigned NumSpanKinds = 9;

/// Stable lower-case name of \p K ("scc", "cache.probe", ...), used as the
/// Chrome-trace category and in profile reports.
const char *spanKindName(SpanKind K);

/// \name Span Detail values.
/// CacheProbe spans carry the SolverCache outcome; Solve spans carry 1
/// when the result degraded under a resource budget (Degradation).
/// @{
inline constexpr uint16_t TraceDetailNone = 0;
inline constexpr uint16_t TraceCacheHit = 1;
inline constexpr uint16_t TraceCacheMiss = 2;
inline constexpr uint16_t TraceCacheDiskHit = 3;
inline constexpr uint16_t TraceCacheBypass = 4;
inline constexpr uint16_t TraceSolveDegraded = 1;
/// @}

/// One completed span: a fixed-size POD record, written once at span exit.
/// Tid is filled in by Tracer::snapshot() (the index of the recording
/// thread's log, in first-span order).
struct SpanRecord {
  uint64_t StartNs = 0; ///< steady_clock ns since the Tracer's epoch
  uint64_t DurNs = 0;
  uint32_t Prog = 0;    ///< registerProgram id, or Tracer::None
  uint32_t Scc = 0;     ///< SCC id, or Tracer::None
  uint32_t Tid = 0;
  SpanKind Kind = SpanKind::Batch;
  uint8_t Depth = 0;    ///< per-thread nesting depth (saturates at 255)
  uint16_t Detail = 0;  ///< see the Trace* detail constants
};

/// Collects spans from any number of threads; see the file comment for the
/// threading contract.  One Tracer instance per traced operation (a batch,
/// a CLI run); do not interleave two live tracers on one thread.
class Tracer {
public:
  /// "No value" for Prog/Scc tags ("inherit from the enclosing span").
  static constexpr uint32_t None = 0xffffffffu;
  /// Default per-thread ring capacity (spans), ~2 MiB per thread.
  static constexpr size_t DefaultCapacity = size_t(1) << 16;

  explicit Tracer(size_t CapacityPerThread = DefaultCapacity);
  ~Tracer();
  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

  /// Interns \p Name and returns the id Program spans are tagged with.
  /// Not for the hot path: call once per program before analysis starts.
  uint32_t registerProgram(std::string Name);
  /// The name registered for \p Prog ("" for None/out-of-range ids).
  std::string programName(uint32_t Prog) const;

  /// All retained spans, Tid assigned, ordered by (StartNs, Tid, Depth).
  /// Only valid once every recording thread has quiesced (joined).
  std::vector<SpanRecord> snapshot() const;

  /// Spans lost to ring-buffer wrap-around, across all threads.
  uint64_t dropped() const;

  /// Per-thread ring capacity, in spans.
  size_t capacity() const { return Capacity; }

  /// Emits every retained span into \p W as Chrome complete events on
  /// process \p Pid — a *separate* process track from the simulator's
  /// abstract-time events (distinct clock domains must not share a
  /// timeline), named via a process_name metadata event.  Span start/dur
  /// are nanoseconds scaled to the format's microsecond field.
  void exportTo(TraceWriter &W, unsigned Pid = 1,
                const std::string &ProcessName =
                    "granlog analyzer (wall time)") const;

private:
  friend class TraceSpan;

  /// One thread's ring buffer plus its span-context state.  Owned by the
  /// Tracer, used without locks by exactly one thread.
  struct ThreadLog {
    std::vector<SpanRecord> Buf; ///< fixed Capacity, preallocated
    size_t Count = 0;            ///< records ever written (ring wraps)
    uint32_t Depth = 0;
    uint32_t CurProg = None;
    uint32_t CurScc = None;
  };

  /// The calling thread's log, creating (and caching thread-locally) it
  /// on first use.  The only span-path step that can allocate, once per
  /// (thread, Tracer) pair.
  ThreadLog *acquireLog();
  uint64_t nowNs() const;

  const uint64_t Id; ///< process-unique, keys the thread-local log cache
  const size_t Capacity;
  const std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex Mutex; ///< guards Logs/Programs registration
  std::vector<std::unique_ptr<ThreadLog>> Logs;
  std::vector<std::string> Programs;
};

/// RAII span.  With a null tracer the whole object is inert (a single
/// branch in both constructor and destructor).  \p Prog / \p Scc tag the
/// span explicitly and become the thread's current context until close;
/// Tracer::None inherits the enclosing span's value.
class TraceSpan {
public:
  TraceSpan(Tracer *T, SpanKind Kind, uint32_t Prog = Tracer::None,
            uint32_t Scc = Tracer::None)
      : T(T) {
    if (T)
      begin(Kind, Prog, Scc);
  }
  ~TraceSpan() {
    if (T)
      end();
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// Attaches a typed detail (cache outcome, degradation) to the record
  /// written at close.
  void setDetail(uint16_t D) { Detail = D; }

private:
  void begin(SpanKind Kind, uint32_t Prog, uint32_t Scc);
  void end();

  Tracer *T;
  Tracer::ThreadLog *Log = nullptr;
  uint64_t StartNs = 0;
  uint32_t Prog = Tracer::None;
  uint32_t Scc = Tracer::None;
  uint32_t PrevProg = Tracer::None;
  uint32_t PrevScc = Tracer::None;
  SpanKind Kind = SpanKind::Batch;
  uint8_t Depth = 0;
  uint16_t Detail = 0;
};

} // namespace granlog

#endif // GRANLOG_SUPPORT_TRACER_H
