//===- support/Stats.cpp --------------------------------------------------===//

#include "support/Stats.h"

#include "support/Json.h"

#include <cstdio>

using namespace granlog;

void StatsRegistry::add(std::string_view Name, uint64_t N) {
  auto It = Counters.find(Name);
  if (It == Counters.end())
    Counters.emplace(std::string(Name), N);
  else
    It->second += N;
}

void StatsRegistry::addValue(std::string_view Name, double Value) {
  auto It = Values.find(Name);
  if (It == Values.end())
    Values.emplace(std::string(Name), Value);
  else
    It->second += Value;
}

uint64_t StatsRegistry::counter(std::string_view Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

double StatsRegistry::value(std::string_view Name) const {
  auto It = Values.find(Name);
  return It == Values.end() ? 0.0 : It->second;
}

void StatsRegistry::clear() {
  Counters.clear();
  Values.clear();
}

std::string StatsRegistry::str() const {
  std::string Out;
  size_t Width = 0;
  for (const auto &[Name, _] : Counters)
    Width = std::max(Width, Name.size());
  for (const auto &[Name, _] : Values)
    Width = std::max(Width, Name.size());
  auto Pad = [&](const std::string &Name) {
    std::string S = "  " + Name;
    S.append(Width + 2 - Name.size(), ' ');
    return S;
  };
  for (const auto &[Name, V] : Values) {
    char Buf[64];
    // Phase timers are seconds; print with enough digits for microsecond
    // phases without scientific notation.
    std::snprintf(Buf, sizeof(Buf), "%.6f", V);
    Out += Pad(Name) + Buf + "\n";
  }
  for (const auto &[Name, C] : Counters)
    Out += Pad(Name) + std::to_string(C) + "\n";
  return Out;
}

void StatsRegistry::writeJson(JsonWriter &W) const {
  W.beginObject();
  W.key("counters");
  W.beginObject();
  for (const auto &[Name, C] : Counters) {
    W.key(Name);
    W.value(C);
  }
  W.endObject();
  W.key("values");
  W.beginObject();
  for (const auto &[Name, V] : Values) {
    W.key(Name);
    W.value(V);
  }
  W.endObject();
  W.endObject();
}
