//===- support/Stats.cpp --------------------------------------------------===//

#include "support/Stats.h"

#include "support/Json.h"

#include <cstdio>
#include <mutex>

using namespace granlog;

void StatsRegistry::add(std::string_view Name, uint64_t N) {
  {
    std::shared_lock Lock(Mutex);
    auto It = Counters.find(Name);
    if (It != Counters.end()) {
      It->second.fetch_add(N, std::memory_order_relaxed);
      return;
    }
  }
  std::unique_lock Lock(Mutex);
  // try_emplace: another thread may have created the slot meanwhile.
  auto [It, _] = Counters.try_emplace(std::string(Name), 0);
  It->second.fetch_add(N, std::memory_order_relaxed);
}

void StatsRegistry::addValue(std::string_view Name, double Value) {
  std::unique_lock Lock(Mutex);
  auto It = Values.find(Name);
  if (It == Values.end())
    Values.emplace(std::string(Name), Value);
  else
    It->second += Value;
}

uint64_t StatsRegistry::counter(std::string_view Name) const {
  std::shared_lock Lock(Mutex);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0
                              : It->second.load(std::memory_order_relaxed);
}

double StatsRegistry::value(std::string_view Name) const {
  std::shared_lock Lock(Mutex);
  auto It = Values.find(Name);
  return It == Values.end() ? 0.0 : It->second;
}

std::map<std::string, uint64_t, std::less<>> StatsRegistry::counters() const {
  std::shared_lock Lock(Mutex);
  std::map<std::string, uint64_t, std::less<>> Out;
  for (const auto &[Name, C] : Counters)
    Out.emplace(Name, C.load(std::memory_order_relaxed));
  return Out;
}

std::map<std::string, double, std::less<>> StatsRegistry::values() const {
  std::shared_lock Lock(Mutex);
  return Values;
}

void StatsRegistry::clear() {
  std::unique_lock Lock(Mutex);
  Counters.clear();
  Values.clear();
}

std::string StatsRegistry::str() const {
  auto CountersSnap = counters();
  auto ValuesSnap = values();
  std::string Out;
  size_t Width = 0;
  for (const auto &[Name, _] : CountersSnap)
    Width = std::max(Width, Name.size());
  for (const auto &[Name, _] : ValuesSnap)
    Width = std::max(Width, Name.size());
  auto Pad = [&](const std::string &Name) {
    std::string S = "  " + Name;
    S.append(Width + 2 - Name.size(), ' ');
    return S;
  };
  for (const auto &[Name, V] : ValuesSnap) {
    char Buf[64];
    // Phase timers are seconds; print with enough digits for microsecond
    // phases without scientific notation.
    std::snprintf(Buf, sizeof(Buf), "%.6f", V);
    Out += Pad(Name) + Buf + "\n";
  }
  for (const auto &[Name, C] : CountersSnap)
    Out += Pad(Name) + std::to_string(C) + "\n";
  return Out;
}

void StatsRegistry::writeJson(JsonWriter &W) const {
  auto CountersSnap = counters();
  auto ValuesSnap = values();
  W.beginObject();
  W.key("counters");
  W.beginObject();
  for (const auto &[Name, C] : CountersSnap) {
    W.key(Name);
    W.value(C);
  }
  W.endObject();
  W.key("values");
  W.beginObject();
  for (const auto &[Name, V] : ValuesSnap) {
    W.key(Name);
    W.value(V);
  }
  W.endObject();
  W.endObject();
}

//===----------------------------------------------------------------------===//
// StatsCapture thread-local installation (mirrors MeterScope/Budget.cpp).
//===----------------------------------------------------------------------===//

namespace {
thread_local StatsCapture *ActiveCapture = nullptr;
} // namespace

StatsCapture *granlog::currentStatsCapture() { return ActiveCapture; }

StatsCaptureScope::StatsCaptureScope(StatsCapture *C) : Prev(ActiveCapture) {
  ActiveCapture = C;
}

StatsCaptureScope::~StatsCaptureScope() { ActiveCapture = Prev; }
