//===- support/Profile.cpp ------------------------------------------------===//

#include "support/Profile.h"

#include <algorithm>
#include <cstdio>

using namespace granlog;

namespace {

/// "1.234 ms" / "56.7 us" / "890 ns" — fixed precision so reports are
/// stable to read (the values themselves are wall time, not stable).
std::string fmtNs(uint64_t Ns) {
  char Buf[32];
  if (Ns >= 1000000)
    std::snprintf(Buf, sizeof(Buf), "%.3f ms",
                  static_cast<double>(Ns) / 1e6);
  else if (Ns >= 1000)
    std::snprintf(Buf, sizeof(Buf), "%.1f us",
                  static_cast<double>(Ns) / 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%llu ns",
                  static_cast<unsigned long long>(Ns));
  return Buf;
}

} // namespace

TraceProfile granlog::buildProfile(const std::vector<SpanRecord> &Spans,
                                   uint32_t Prog) {
  TraceProfile P;
  std::vector<SpanRecord> Kept;
  for (const SpanRecord &R : Spans)
    if (Prog == Tracer::None || R.Prog == Prog)
      Kept.push_back(R);
  P.Spans = Kept.size();

  // Self time: per thread, a containment scan over (start, depth)-sorted
  // records.  Records nest properly within one thread (spans are strictly
  // scoped), so an interval stack recovers the tree without parent ids.
  std::sort(Kept.begin(), Kept.end(),
            [](const SpanRecord &A, const SpanRecord &B) {
              if (A.Tid != B.Tid)
                return A.Tid < B.Tid;
              if (A.StartNs != B.StartNs)
                return A.StartNs < B.StartNs;
              return A.Depth < B.Depth;
            });
  std::vector<uint64_t> Self(Kept.size());
  for (size_t I = 0; I != Kept.size(); ++I)
    Self[I] = Kept[I].DurNs;
  std::vector<size_t> Stack; // indices of open enclosing spans
  for (size_t I = 0; I != Kept.size(); ++I) {
    const SpanRecord &R = Kept[I];
    while (!Stack.empty() &&
           (Kept[Stack.back()].Tid != R.Tid ||
            Kept[Stack.back()].StartNs + Kept[Stack.back()].DurNs <=
                R.StartNs))
      Stack.pop_back();
    if (!Stack.empty()) {
      uint64_t &ParentSelf = Self[Stack.back()];
      ParentSelf -= std::min(ParentSelf, R.DurNs);
    }
    Stack.push_back(I);
  }

  for (size_t I = 0; I != Kept.size(); ++I) {
    const SpanRecord &R = Kept[I];
    unsigned K = static_cast<unsigned>(R.Kind);
    if (K < NumSpanKinds) {
      ++P.ByKind[K].Count;
      P.ByKind[K].TotalNs += R.DurNs;
      P.ByKind[K].SelfNs += Self[I];
    }
    switch (R.Kind) {
    case SpanKind::Size:
    case SpanKind::Cost:
      if (R.Scc != Tracer::None)
        P.SccNs[R.Scc] += R.DurNs;
      break;
    case SpanKind::CacheProbe: {
      unsigned O = R.Detail < P.CacheOutcomes.size() ? R.Detail : 0;
      ++P.CacheOutcomes[O].Count;
      P.CacheOutcomes[O].TotalNs += R.DurNs;
      break;
    }
    case SpanKind::Program:
      P.ProgramLatency.addNs(R.DurNs);
      break;
    default:
      break;
    }
  }
  for (const auto &[Scc, Ns] : P.SccNs)
    P.SccLatency.addNs(Ns);
  return P;
}

std::vector<unsigned>
granlog::criticalPath(const TraceProfile &P,
                      const std::vector<std::vector<unsigned>> &SccDeps,
                      uint64_t *PathNs) {
  const unsigned N = static_cast<unsigned>(SccDeps.size());
  auto Weight = [&](unsigned Id) {
    auto It = P.SccNs.find(Id);
    return It == P.SccNs.end() ? uint64_t(0) : It->second;
  };
  if (N == 0) {
    // No DAG supplied: degenerate path of the single heaviest SCC.
    std::vector<unsigned> Path;
    uint64_t Best = 0;
    for (const auto &[Scc, Ns] : P.SccNs)
      if (Ns > Best) {
        Best = Ns;
        Path.assign(1, Scc);
      }
    if (PathNs)
      *PathNs = Best;
    return Path;
  }

  // Longest path by memoized DFS over the condensation DAG; callee-first
  // post-order so Best[Callee] is final before Best[Id] reads it.
  std::vector<uint64_t> Best(N, 0);
  std::vector<int> Next(N, -1);
  std::vector<char> State(N, 0); // 0 new, 1 open, 2 done
  for (unsigned Root = 0; Root != N; ++Root) {
    if (State[Root])
      continue;
    std::vector<std::pair<unsigned, size_t>> Stack{{Root, 0}};
    State[Root] = 1;
    while (!Stack.empty()) {
      auto &[Id, Edge] = Stack.back();
      if (Edge < SccDeps[Id].size()) {
        unsigned Callee = SccDeps[Id][Edge++];
        if (Callee < N && State[Callee] == 0) {
          State[Callee] = 1;
          Stack.push_back({Callee, 0});
        }
      } else {
        uint64_t BestChild = 0;
        int BestId = -1;
        for (unsigned Callee : SccDeps[Id])
          if (Callee < N && State[Callee] == 2 &&
              (Best[Callee] > BestChild ||
               (Best[Callee] == BestChild && BestId != -1 &&
                static_cast<int>(Callee) < BestId))) {
            BestChild = Best[Callee];
            BestId = static_cast<int>(Callee);
          }
        Best[Id] = Weight(Id) + BestChild;
        Next[Id] = BestId;
        State[Id] = 2;
        Stack.pop_back();
      }
    }
  }
  unsigned Start = 0;
  for (unsigned Id = 1; Id != N; ++Id)
    if (Best[Id] > Best[Start])
      Start = Id;
  std::vector<unsigned> Path;
  if (N != 0 && Best[Start] > 0)
    for (int Id = static_cast<int>(Start); Id != -1; Id = Next[Id])
      Path.push_back(static_cast<unsigned>(Id));
  if (PathNs)
    *PathNs = N ? Best[Start] : 0;
  return Path;
}

std::string
granlog::profileReport(const TraceProfile &P,
                       const std::vector<std::vector<unsigned>> &SccDeps,
                       const std::vector<std::string> &SccNames) {
  std::string Out;
  Out += "spans: " + std::to_string(P.Spans) + "\n";
  Out += "self time by phase:\n";
  for (unsigned K = 0; K != NumSpanKinds; ++K) {
    const TraceProfile::KindAgg &A = P.ByKind[K];
    if (!A.Count)
      continue;
    char Line[128];
    std::snprintf(Line, sizeof(Line), "  %-14s %10s self, %10s total (%llu spans)\n",
                  spanKindName(static_cast<SpanKind>(K)),
                  fmtNs(A.SelfNs).c_str(), fmtNs(A.TotalNs).c_str(),
                  static_cast<unsigned long long>(A.Count));
    Out += Line;
  }
  uint64_t Probes = 0;
  for (const TraceProfile::CacheAgg &C : P.CacheOutcomes)
    Probes += C.Count;
  if (Probes) {
    auto Part = [&](uint16_t O, const char *Label) {
      const TraceProfile::CacheAgg &C = P.CacheOutcomes[O];
      return std::to_string(C.Count) + " " + Label + " (" +
             fmtNs(C.TotalNs) + ")";
    };
    Out += "solver cache probes: " + std::to_string(Probes) + " — " +
           Part(TraceCacheHit, "hit") + ", " + Part(TraceCacheMiss, "miss") +
           ", " + Part(TraceCacheDiskHit, "disk-hit") + ", " +
           Part(TraceCacheBypass, "bypass") + "\n";
  }
  if (uint64_t N = P.SccLatency.count()) {
    Out += "scc latency (size+cost per SCC, n=" + std::to_string(N) +
           "): p50 <= " + fmtNs(P.SccLatency.percentileNs(0.50)) +
           ", p90 <= " + fmtNs(P.SccLatency.percentileNs(0.90)) +
           ", p99 <= " + fmtNs(P.SccLatency.percentileNs(0.99)) + "\n";
  }

  uint64_t PathNs = 0;
  std::vector<unsigned> Path = criticalPath(P, SccDeps, &PathNs);
  uint64_t TotalSccNs = 0;
  for (const auto &[Scc, Ns] : P.SccNs)
    TotalSccNs += Ns;
  if (Path.empty()) {
    Out += "critical path: (no SCC spans)\n";
  } else {
    double Pct = TotalSccNs
                     ? 100.0 * static_cast<double>(PathNs) /
                           static_cast<double>(TotalSccNs)
                     : 0.0;
    char Head[128];
    std::snprintf(Head, sizeof(Head),
                  "critical path: %zu SCCs, %s (%.0f%% of %s total SCC "
                  "time)\n",
                  Path.size(), fmtNs(PathNs).c_str(), Pct,
                  fmtNs(TotalSccNs).c_str());
    Out += Head;
    for (unsigned Id : Path) {
      auto It = P.SccNs.find(Id);
      uint64_t Ns = It == P.SccNs.end() ? 0 : It->second;
      Out += "  scc " + std::to_string(Id);
      if (Id < SccNames.size() && !SccNames[Id].empty())
        Out += " [" + SccNames[Id] + "]";
      Out += ": " + fmtNs(Ns) + "\n";
    }
  }
  return Out;
}
