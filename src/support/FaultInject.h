//===- support/FaultInject.h - Deterministic fault injection --------------===//
//
// Part of GranLog; see DESIGN.md "Analysis server & fault injection".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded, site-keyed fault injection for robustness testing.  Every
/// place that can fail in production — file writes, socket reads, worker
/// tasks, shard child processes — carries a named *injection site*; when
/// an injector is installed, each site consults it and fails
/// deterministically as a pure function of (seed, site, occurrence) or
/// (seed, site, key).  The same spec therefore injects the same faults
/// on every run, platform and build mode, which makes "survives faults"
/// a regression-testable claim instead of an assertion.
///
/// When no injector is installed (the default, and the only production
/// configuration) every site costs exactly one null-pointer check,
/// mirroring the StatsRegistry / Tracer idiom: hot paths stay hot.
///
/// Sites wired in this repo (see DESIGN.md for the full table):
///   io.write.open    writeFileAtomic: temp file refuses to open
///   io.write.short   writeFileAtomic: write fails halfway (temp removed)
///   io.write.rename  writeFileAtomic: rename into place fails
///   io.write.torn    writeFileAtomic: simulates a crashed pre-atomic
///                    writer — half the bytes land at the *target* path
///   shard.crash      ShardRunner: worker process exits before reporting
///   server.worker.throw   granlogd: request task throws mid-execution
///   server.alloc     granlogd: request handling hits bad_alloc
///   net.read.short   granlogd: socket reads capped at one byte
///   net.write.short  granlogd: socket writes capped at one byte
///   client.slow      granload: client dribbles request bytes slowly
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SUPPORT_FAULTINJECT_H
#define GRANLOG_SUPPORT_FAULTINJECT_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace granlog {

class FaultInjector {
public:
  /// \p Rate N injects on (deterministically) every Nth-ish decision:
  /// a decision fires when hash(seed, site, n) % N == 0.  Rate 1 fires
  /// always, rate 0 never.
  FaultInjector(uint64_t Seed, uint64_t Rate);

  /// Parses "seed=S,rate=R,sites=a|b|c" (any order, every part optional;
  /// no sites= part arms every site).  Returns null and fills \p Error
  /// on a malformed spec.  "off" / "" yield a null injector (no error).
  static std::unique_ptr<FaultInjector> fromSpec(std::string_view Spec,
                                                 std::string *Error);

  /// Renders this injector back as a canonical spec string, so a parent
  /// process (granload) can forward its configuration to a child
  /// (granlogd) over argv.
  std::string spec() const;

  /// Restricts injection to \p Site (callable repeatedly; no calls =
  /// every site armed).
  void armSite(std::string Site);

  /// Whether this call should fail: a pure function of (seed, site, n)
  /// where n is the per-site occurrence counter.  Thread-safe; counts
  /// every injected fault per site.
  bool shouldFail(std::string_view Site);

  /// Keyed variant: a pure function of (seed, site, key), independent of
  /// call order — used where the decision must be stable per entity
  /// (e.g. per shard index, per client index) rather than per occurrence.
  bool shouldFail(std::string_view Site, uint64_t Key);

  /// Faults injected at \p Site so far.
  uint64_t injected(std::string_view Site) const;

  /// Total faults injected across all sites.
  uint64_t totalInjected() const;

  /// Per-site injection counts (sorted), for error-taxonomy reports.
  std::vector<std::pair<std::string, uint64_t>> counts() const;

  uint64_t seed() const { return Seed; }
  uint64_t rate() const { return Rate; }

private:
  bool armed(std::string_view Site) const;
  bool decide(std::string_view Site, uint64_t N) const;
  void count(std::string_view Site);

  uint64_t Seed;
  uint64_t Rate;
  std::vector<std::string> Sites; ///< empty = all sites armed
  mutable std::mutex Mutex;
  std::map<std::string, uint64_t, std::less<>> Occurrences;
  std::map<std::string, uint64_t, std::less<>> Injected;
};

/// The process-global injector (null = injection off).  Not owned: the
/// installer keeps the object alive for the duration.
FaultInjector *faultInjector();
void setFaultInjector(FaultInjector *F);

/// One-null-check fault decision; false whenever injection is off.
inline bool faultPoint(std::string_view Site) {
  FaultInjector *F = faultInjector();
  return F && F->shouldFail(Site);
}

/// Keyed one-null-check fault decision (stable per \p Key).
inline bool faultPointKeyed(std::string_view Site, uint64_t Key) {
  FaultInjector *F = faultInjector();
  return F && F->shouldFail(Site, Key);
}

} // namespace granlog

#endif // GRANLOG_SUPPORT_FAULTINJECT_H
