//===- support/Tracer.cpp -------------------------------------------------===//

#include "support/Tracer.h"

#include "support/TraceEvent.h"

#include <algorithm>
#include <atomic>

using namespace granlog;

const char *granlog::spanKindName(SpanKind K) {
  switch (K) {
  case SpanKind::Batch:
    return "batch";
  case SpanKind::Program:
    return "program";
  case SpanKind::SessionUpdate:
    return "session.update";
  case SpanKind::Scc:
    return "scc";
  case SpanKind::Size:
    return "size";
  case SpanKind::Cost:
    return "cost";
  case SpanKind::Solve:
    return "solve";
  case SpanKind::Normalize:
    return "normalize";
  case SpanKind::CacheProbe:
    return "cache.probe";
  }
  return "?";
}

namespace {

std::atomic<uint64_t> NextTracerId{1};

// The per-thread log cache: valid for one Tracer at a time.  Keyed by the
// process-unique Tracer id, never by address, so a Tracer constructed at a
// freed Tracer's address cannot inherit a stale log.
thread_local uint64_t CachedTracerId = 0;
thread_local void *CachedLog = nullptr;

} // namespace

Tracer::Tracer(size_t CapacityPerThread)
    : Id(NextTracerId.fetch_add(1, std::memory_order_relaxed)),
      Capacity(std::max<size_t>(1, CapacityPerThread)),
      Epoch(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

uint64_t Tracer::nowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

Tracer::ThreadLog *Tracer::acquireLog() {
  if (CachedTracerId == Id)
    return static_cast<ThreadLog *>(CachedLog);
  auto Log = std::make_unique<ThreadLog>();
  Log->Buf.resize(Capacity); // the one allocation, before any span lands
  ThreadLog *Raw = Log.get();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Logs.push_back(std::move(Log));
  }
  CachedTracerId = Id;
  CachedLog = Raw;
  return Raw;
}

uint32_t Tracer::registerProgram(std::string Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Programs.push_back(std::move(Name));
  return static_cast<uint32_t>(Programs.size() - 1);
}

std::string Tracer::programName(uint32_t Prog) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Prog < Programs.size() ? Programs[Prog] : std::string();
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<SpanRecord> Out;
  std::lock_guard<std::mutex> Lock(Mutex);
  for (size_t T = 0; T != Logs.size(); ++T) {
    const ThreadLog &L = *Logs[T];
    size_t N = std::min(L.Count, L.Buf.size());
    size_t First = L.Count - N; // sequence number of the oldest retained
    for (size_t I = 0; I != N; ++I) {
      SpanRecord R = L.Buf[(First + I) % L.Buf.size()];
      R.Tid = static_cast<uint32_t>(T);
      Out.push_back(R);
    }
  }
  // Parents close after their children but start no later; sorting by
  // (start, tid, depth) puts each parent before its children.
  std::sort(Out.begin(), Out.end(),
            [](const SpanRecord &A, const SpanRecord &B) {
              if (A.StartNs != B.StartNs)
                return A.StartNs < B.StartNs;
              if (A.Tid != B.Tid)
                return A.Tid < B.Tid;
              return A.Depth < B.Depth;
            });
  return Out;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t Dropped = 0;
  for (const auto &L : Logs)
    if (L->Count > L->Buf.size())
      Dropped += L->Count - L->Buf.size();
  return Dropped;
}

void Tracer::exportTo(TraceWriter &W, unsigned Pid,
                      const std::string &ProcessName) const {
  std::vector<SpanRecord> Spans = snapshot();
  W.processName(Pid, ProcessName);
  uint32_t MaxTid = 0;
  for (const SpanRecord &R : Spans)
    MaxTid = std::max(MaxTid, R.Tid);
  if (!Spans.empty())
    for (uint32_t T = 0; T <= MaxTid; ++T)
      W.threadNameOn(Pid, T, "analyzer thread " + std::to_string(T));
  for (const SpanRecord &R : Spans) {
    std::string Name;
    switch (R.Kind) {
    case SpanKind::Program:
      Name = programName(R.Prog);
      if (Name.empty())
        Name = "program";
      break;
    case SpanKind::Scc:
      Name = "scc " + std::to_string(R.Scc);
      break;
    case SpanKind::Size:
    case SpanKind::Cost:
      // The phase spans carry the SCC identity in every driver (the
      // sequential one has no enclosing scc span), so name them with it.
      Name = spanKindName(R.Kind);
      if (R.Scc != Tracer::None)
        Name += " (scc " + std::to_string(R.Scc) + ")";
      break;
    case SpanKind::Solve:
      Name = R.Detail == TraceSolveDegraded ? "solve (degraded)" : "solve";
      break;
    case SpanKind::CacheProbe:
      switch (R.Detail) {
      case TraceCacheHit:
        Name = "probe:hit";
        break;
      case TraceCacheMiss:
        Name = "probe:miss";
        break;
      case TraceCacheDiskHit:
        Name = "probe:disk-hit";
        break;
      case TraceCacheBypass:
        Name = "probe:bypass";
        break;
      default:
        Name = "probe";
        break;
      }
      break;
    default:
      Name = spanKindName(R.Kind);
      break;
    }
    // Nanoseconds into the format's microsecond field, at ns resolution.
    W.completeOn(Pid, std::move(Name), spanKindName(R.Kind), R.Tid,
                 static_cast<double>(R.StartNs) / 1000.0,
                 static_cast<double>(R.DurNs) / 1000.0);
  }
}

void TraceSpan::begin(SpanKind K, uint32_t P, uint32_t S) {
  Log = T->acquireLog();
  Kind = K;
  PrevProg = Log->CurProg;
  PrevScc = Log->CurScc;
  Prog = P != Tracer::None ? P : PrevProg;
  Scc = S != Tracer::None ? S : PrevScc;
  Log->CurProg = Prog;
  Log->CurScc = Scc;
  Depth = static_cast<uint8_t>(std::min<uint32_t>(Log->Depth, 255));
  ++Log->Depth;
  // Compiler fences pin the timestamps against the measured work; a
  // hardware fence is unnecessary (the clock reads are on one thread).
  std::atomic_signal_fence(std::memory_order_seq_cst);
  StartNs = T->nowNs();
}

void TraceSpan::end() {
  std::atomic_signal_fence(std::memory_order_seq_cst);
  uint64_t EndNs = T->nowNs();
  --Log->Depth;
  Log->CurProg = PrevProg;
  Log->CurScc = PrevScc;
  SpanRecord &R = Log->Buf[Log->Count % Log->Buf.size()];
  R.StartNs = StartNs;
  R.DurNs = EndNs - StartNs;
  R.Prog = Prog;
  R.Scc = Scc;
  R.Tid = 0; // assigned by snapshot()
  R.Kind = Kind;
  R.Depth = Depth;
  R.Detail = Detail;
  ++Log->Count;
}
