//===- support/Io.cpp -----------------------------------------------------===//

#include "support/Io.h"

#include "support/FaultInject.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>

#if defined(_WIN32)
#include <process.h>
#else
#include <signal.h>
#include <unistd.h>
#endif

using namespace granlog;

static long currentPid() {
#if defined(_WIN32)
  return static_cast<long>(_getpid());
#else
  return static_cast<long>(getpid());
#endif
}

/// Whether the process with id \p Pid is still alive.  On POSIX,
/// kill(pid, 0) probes existence without sending a signal; EPERM means
/// "exists but not ours", which still counts as alive.  Unknowable
/// platforms report alive, so sweeping stays conservative.
static bool processAlive(long Pid) {
#if defined(_WIN32)
  return true;
#else
  if (Pid <= 0)
    return false;
  if (kill(static_cast<pid_t>(Pid), 0) == 0)
    return true;
  return errno != ESRCH;
#endif
}

size_t granlog::sweepStaleTemps(const std::string &Path) {
  namespace fs = std::filesystem;
  fs::path Target(Path);
  fs::path Dir = Target.parent_path();
  if (Dir.empty())
    Dir = ".";
  std::string Prefix = Target.filename().string() + ".tmp.";
  size_t Removed = 0;
  std::error_code EC;
  for (fs::directory_iterator It(Dir, EC), End; !EC && It != End;
       It.increment(EC)) {
    std::string Name = It->path().filename().string();
    if (Name.rfind(Prefix, 0) != 0)
      continue;
    // Name is "<file>.tmp.<pid>.<n>"; a temp is stale when <pid> is not
    // a live process (a crashed writer) or the name does not parse.
    std::string Rest = Name.substr(Prefix.size());
    size_t Dot = Rest.find('.');
    char *EndPtr = nullptr;
    std::string PidText = Rest.substr(0, Dot);
    long Pid = std::strtol(PidText.c_str(), &EndPtr, 10);
    bool Parsed = EndPtr && *EndPtr == '\0' && !PidText.empty();
    if (Parsed && processAlive(Pid))
      continue;
    std::error_code RemoveEC;
    if (fs::remove(It->path(), RemoveEC))
      ++Removed;
  }
  return Removed;
}

bool granlog::writeFileAtomic(const std::string &Path,
                              std::string_view Contents,
                              std::string *Error) {
  // Crashed writers from previous processes must not accumulate residue
  // next to the target; live writers' temps are untouched.
  sweepStaleTemps(Path);

  if (faultPoint("io.write.torn")) {
    // A crashed pre-atomic writer: half a document lands at the target
    // itself.  Readers must reject it (torn-cache recovery path).
    std::ofstream Torn(Path, std::ios::binary | std::ios::trunc);
    Torn.write(Contents.data(),
               static_cast<std::streamsize>(Contents.size() / 2));
    if (Error)
      *Error = Path + ": fault-injected torn write";
    return false;
  }

  // Unique per process and per call: two shard workers (or two threads)
  // flushing the same cache file must not interleave bytes in a shared
  // temp file — each writes its own and the renames serialize.
  static std::atomic<unsigned> Counter{0};
  std::string Tmp = Path + ".tmp." + std::to_string(currentPid()) + "." +
                    std::to_string(Counter.fetch_add(1));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out.is_open() || faultPoint("io.write.open")) {
      if (Error)
        *Error = Tmp + ": cannot open for writing";
      std::remove(Tmp.c_str());
      return false;
    }
    if (faultPoint("io.write.short")) {
      Out.write(Contents.data(),
                static_cast<std::streamsize>(Contents.size() / 2));
      Out.flush();
      if (Error)
        *Error = Tmp + ": write failed (fault-injected short write)";
      Out.close();
      std::remove(Tmp.c_str());
      return false;
    }
    Out.write(Contents.data(),
              static_cast<std::streamsize>(Contents.size()));
    Out.flush();
    if (!Out) {
      if (Error)
        *Error = Tmp + ": write failed";
      Out.close();
      std::remove(Tmp.c_str());
      return false;
    }
  }
  if (faultPoint("io.write.rename") ||
      std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    if (Error)
      *Error = Path + ": rename from temp file failed";
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

uint64_t granlog::fnv1a64(std::string_view Data) {
  return fnv1a64(Data, Fnv1a64Basis);
}

std::string granlog::hex64(uint64_t Value) {
  static const char Digits[] = "0123456789abcdef";
  std::string S(16, '0');
  for (int I = 15; I >= 0; --I) {
    S[static_cast<size_t>(I)] = Digits[Value & 0xf];
    Value >>= 4;
  }
  return S;
}
