//===- support/Io.cpp -----------------------------------------------------===//

#include "support/Io.h"

#include <cstdio>
#include <fstream>

using namespace granlog;

bool granlog::writeFileAtomic(const std::string &Path,
                              std::string_view Contents,
                              std::string *Error) {
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out.is_open()) {
      if (Error)
        *Error = Tmp + ": cannot open for writing";
      return false;
    }
    Out.write(Contents.data(),
              static_cast<std::streamsize>(Contents.size()));
    Out.flush();
    if (!Out) {
      if (Error)
        *Error = Tmp + ": write failed";
      std::remove(Tmp.c_str());
      return false;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    if (Error)
      *Error = Path + ": rename from temp file failed";
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}
