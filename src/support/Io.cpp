//===- support/Io.cpp -----------------------------------------------------===//

#include "support/Io.h"

#include <atomic>
#include <cstdio>
#include <fstream>

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

using namespace granlog;

static long currentPid() {
#if defined(_WIN32)
  return static_cast<long>(_getpid());
#else
  return static_cast<long>(getpid());
#endif
}

bool granlog::writeFileAtomic(const std::string &Path,
                              std::string_view Contents,
                              std::string *Error) {
  // Unique per process and per call: two shard workers (or two threads)
  // flushing the same cache file must not interleave bytes in a shared
  // temp file — each writes its own and the renames serialize.
  static std::atomic<unsigned> Counter{0};
  std::string Tmp = Path + ".tmp." + std::to_string(currentPid()) + "." +
                    std::to_string(Counter.fetch_add(1));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out.is_open()) {
      if (Error)
        *Error = Tmp + ": cannot open for writing";
      return false;
    }
    Out.write(Contents.data(),
              static_cast<std::streamsize>(Contents.size()));
    Out.flush();
    if (!Out) {
      if (Error)
        *Error = Tmp + ": write failed";
      std::remove(Tmp.c_str());
      return false;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    if (Error)
      *Error = Path + ": rename from temp file failed";
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

uint64_t granlog::fnv1a64(std::string_view Data) {
  return fnv1a64(Data, Fnv1a64Basis);
}

std::string granlog::hex64(uint64_t Value) {
  static const char Digits[] = "0123456789abcdef";
  std::string S(16, '0');
  for (int I = 15; I >= 0; --I) {
    S[static_cast<size_t>(I)] = Digits[Value & 0xf];
    Value >>= 4;
  }
  return S;
}
