//===- support/ThreadPool.h - Work-stealing pool + DAG scheduler ----------===//
//
// Part of GranLog; see DESIGN.md "Parallel analysis & solver cache".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool and a topological DAG scheduler on top
/// of it.  The pool keeps one deque per worker: a worker pops its own deque
/// from the back (LIFO, cache-friendly for task trees) and steals from the
/// front of other workers' deques (FIFO, takes the oldest — likely largest —
/// subtree).  Tasks submitted from inside a worker go to that worker's own
/// deque; external submissions are distributed round-robin.
///
/// Error contract: the first exception thrown by any task is captured and
/// rethrown from wait() (or swallowed by the destructor after all tasks
/// have been drained).  Every submitted task runs exactly once, including
/// tasks still queued when the destructor runs.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SUPPORT_THREADPOOL_H
#define GRANLOG_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace granlog {

class ThreadPool {
public:
  /// Spawns \p NumThreads workers.  NumThreads == 0 is clamped to 1.
  explicit ThreadPool(unsigned NumThreads);

  /// Drains every queued task (each runs exactly once), then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task.  Callable from any thread, including from inside a
  /// running task.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first task exception if any (clearing it, so the pool is reusable).
  void wait();

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Number of tasks so far whose exception was caught by the pool (the
  /// first one is rethrown from wait(); the rest are only counted).
  uint64_t failedTasks() const {
    return FailedTasks.load(std::memory_order_relaxed);
  }

private:
  void workerLoop(size_t Index);
  /// Pops one task: own queue back first, then steals from others' fronts.
  /// Must be called with Mutex held.  Returns an empty function when no
  /// work is available.
  std::function<void()> takeLocked(size_t Index);

  std::mutex Mutex;
  std::condition_variable WorkCv; // signalled on submit / stop
  std::condition_variable DoneCv; // signalled when Pending hits 0
  std::vector<std::deque<std::function<void()>>> Queues; // guarded by Mutex
  std::vector<std::thread> Workers;
  size_t Pending = 0;        // queued + running tasks, guarded by Mutex
  size_t NextQueue = 0;      // round-robin for external submits
  bool Stopping = false;     // guarded by Mutex
  std::exception_ptr FirstError; // guarded by Mutex
  std::atomic<uint64_t> FailedTasks{0};
};

/// Runs one job per node of a dependency DAG, callee-first.  Deps[I] lists
/// the node indices that must finish before node I starts; every dependency
/// must be < I (nodes are given in a topological order, as CallGraph SCC
/// ids are).  With a null \p Pool the nodes run sequentially in index
/// order — exactly the classic SCC loop — so the sequential and parallel
/// drivers share one code path.  With a pool, a node whose Fn throws still
/// releases its dependents (every node runs; the first exception is
/// rethrown from the final wait()); in the sequential path the exception
/// propagates immediately and later nodes do not run.
void topoSchedule(const std::vector<std::vector<unsigned>> &Deps,
                  const std::function<void(unsigned)> &Fn, ThreadPool *Pool);

} // namespace granlog

#endif // GRANLOG_SUPPORT_THREADPOOL_H
