//===- support/TraceEvent.cpp ---------------------------------------------===//

#include "support/TraceEvent.h"

#include "support/Io.h"
#include "support/Json.h"

using namespace granlog;

void TraceWriter::complete(std::string Name, std::string Category,
                           unsigned Tid, double Ts, double Dur) {
  completeOn(0, std::move(Name), std::move(Category), Tid, Ts, Dur);
}

void TraceWriter::completeOn(unsigned Pid, std::string Name,
                             std::string Category, unsigned Tid, double Ts,
                             double Dur) {
  TraceEvent E;
  E.Name = std::move(Name);
  E.Category = std::move(Category);
  E.Phase = 'X';
  E.Ts = Ts;
  E.Dur = Dur;
  E.Tid = Tid;
  E.Pid = Pid;
  Events.push_back(std::move(E));
}

void TraceWriter::instant(std::string Name, std::string Category,
                          unsigned Tid, double Ts) {
  TraceEvent E;
  E.Name = std::move(Name);
  E.Category = std::move(Category);
  E.Phase = 'i';
  E.Ts = Ts;
  E.Tid = Tid;
  Events.push_back(std::move(E));
}

void TraceWriter::threadName(unsigned Tid, std::string Name) {
  threadNameOn(0, Tid, std::move(Name));
}

void TraceWriter::threadNameOn(unsigned Pid, unsigned Tid,
                               std::string Name) {
  TraceEvent E;
  E.Name = "thread_name";
  E.Phase = 'M';
  E.Tid = Tid;
  E.Pid = Pid;
  E.Arg = std::move(Name);
  Events.push_back(std::move(E));
}

void TraceWriter::processName(unsigned Pid, std::string Name) {
  TraceEvent E;
  E.Name = "process_name";
  E.Phase = 'M';
  E.Pid = Pid;
  E.Arg = std::move(Name);
  Events.push_back(std::move(E));
}

std::string TraceWriter::json() const {
  JsonWriter W;
  W.beginObject();
  W.key("traceEvents");
  W.beginArray();
  for (const TraceEvent &E : Events) {
    W.beginObject();
    W.key("name");
    W.value(E.Name);
    if (!E.Category.empty()) {
      W.key("cat");
      W.value(E.Category);
    }
    W.key("ph");
    W.value(std::string_view(&E.Phase, 1));
    W.key("pid");
    W.value(E.Pid);
    W.key("tid");
    W.value(E.Tid);
    switch (E.Phase) {
    case 'X':
      W.key("ts");
      W.value(E.Ts);
      W.key("dur");
      W.value(E.Dur);
      break;
    case 'i':
      W.key("ts");
      W.value(E.Ts);
      W.key("s"); // thread-scoped instant
      W.value("t");
      break;
    case 'M':
      W.key("args");
      W.beginObject();
      W.key("name");
      W.value(E.Arg);
      W.endObject();
      break;
    }
    W.endObject();
  }
  W.endArray();
  W.key("displayTimeUnit");
  W.value("ms");
  W.endObject();
  return W.take();
}

bool TraceWriter::writeFile(const std::string &Path) const {
  return writeFileAtomic(Path, json() + '\n');
}
