//===- support/Json.cpp ---------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>

using namespace granlog;

std::string granlog::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void JsonWriter::preValue() {
  if (!Levels.empty()) {
    Level &L = Levels.back();
    if (L.Kind == Scope::Array) {
      if (L.HasValue)
        Out += ',';
    } else {
      assert(L.KeyPending && "object value requires a preceding key");
      L.KeyPending = false;
    }
    L.HasValue = true;
  }
}

void JsonWriter::beginObject() {
  preValue();
  Out += '{';
  Levels.push_back({Scope::Object});
}

void JsonWriter::endObject() {
  assert(!Levels.empty() && Levels.back().Kind == Scope::Object);
  Levels.pop_back();
  Out += '}';
}

void JsonWriter::beginArray() {
  preValue();
  Out += '[';
  Levels.push_back({Scope::Array});
}

void JsonWriter::endArray() {
  assert(!Levels.empty() && Levels.back().Kind == Scope::Array);
  Levels.pop_back();
  Out += ']';
}

void JsonWriter::key(std::string_view K) {
  assert(!Levels.empty() && Levels.back().Kind == Scope::Object);
  Level &L = Levels.back();
  if (L.HasValue)
    Out += ',';
  Out += '"';
  Out += jsonEscape(K);
  Out += "\":";
  L.KeyPending = true;
}

void JsonWriter::value(std::string_view S) {
  preValue();
  Out += '"';
  Out += jsonEscape(S);
  Out += '"';
}

void JsonWriter::value(double D) {
  preValue();
  if (!std::isfinite(D)) {
    // JSON has no Infinity/NaN literal.
    Out += "null";
    return;
  }
  // Integral values print without a fraction so documents are stable
  // golden-test inputs.
  if (D == std::floor(D) && std::fabs(D) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.0f", D);
    Out += Buf;
    return;
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.12g", D);
  Out += Buf;
}

void JsonWriter::value(int64_t I) {
  preValue();
  Out += std::to_string(I);
}

void JsonWriter::value(uint64_t U) {
  preValue();
  Out += std::to_string(U);
}

void JsonWriter::value(bool B) {
  preValue();
  Out += B ? "true" : "false";
}

void JsonWriter::null() {
  preValue();
  Out += "null";
}

//===----------------------------------------------------------------------===//
// Validator: a recursive-descent scanner over the JSON grammar.
//===----------------------------------------------------------------------===//

namespace {

class Scanner {
public:
  explicit Scanner(std::string_view Text) : Text(Text) {}

  bool run() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == Text.size();
  }

private:
  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }
  bool eat(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }
  bool literal(std::string_view L) {
    if (Text.substr(Pos, L.size()) == L) {
      Pos += L.size();
      return true;
    }
    return false;
  }

  bool string() {
    if (!eat('"'))
      return false;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return false;
      if (C == '\\') {
        if (Pos >= Text.size())
          return false;
        char E = Text[Pos++];
        if (E == 'u') {
          for (int I = 0; I != 4; ++I, ++Pos)
            if (Pos >= Text.size() || !std::isxdigit(
                    static_cast<unsigned char>(Text[Pos])))
              return false;
        } else if (std::string_view("\"\\/bfnrt").find(E) ==
                   std::string_view::npos) {
          return false;
        }
      }
    }
    return false;
  }

  bool number() {
    size_t Start = Pos;
    eat('-');
    if (eat('0')) {
      // no leading zeros
    } else {
      if (Pos >= Text.size() || !std::isdigit(
              static_cast<unsigned char>(Text[Pos])))
        return false;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (eat('.')) {
      if (Pos >= Text.size() || !std::isdigit(
              static_cast<unsigned char>(Text[Pos])))
        return false;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || !std::isdigit(
              static_cast<unsigned char>(Text[Pos])))
        return false;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    return Pos > Start;
  }

  bool value() {
    if (++Depth > 256)
      return false; // defend against pathological nesting
    bool Ok = valueImpl();
    --Depth;
    return Ok;
  }

  bool valueImpl() {
    skipWs();
    if (Pos >= Text.size())
      return false;
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      skipWs();
      if (eat('}'))
        return true;
      for (;;) {
        skipWs();
        if (!string())
          return false;
        skipWs();
        if (!eat(':'))
          return false;
        if (!value())
          return false;
        skipWs();
        if (eat('}'))
          return true;
        if (!eat(','))
          return false;
      }
    }
    if (C == '[') {
      ++Pos;
      skipWs();
      if (eat(']'))
        return true;
      for (;;) {
        if (!value())
          return false;
        skipWs();
        if (eat(']'))
          return true;
        if (!eat(','))
          return false;
      }
    }
    if (C == '"')
      return string();
    if (C == 't')
      return literal("true");
    if (C == 'f')
      return literal("false");
    if (C == 'n')
      return literal("null");
    return number();
  }

  std::string_view Text;
  size_t Pos = 0;
  int Depth = 0;
};

} // namespace

bool granlog::jsonValidate(std::string_view Text) {
  return Scanner(Text).run();
}
