//===- support/Json.cpp ---------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace granlog;

std::string granlog::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void JsonWriter::preValue() {
  if (!Levels.empty()) {
    Level &L = Levels.back();
    if (L.Kind == Scope::Array) {
      if (L.HasValue)
        Out += ',';
    } else {
      assert(L.KeyPending && "object value requires a preceding key");
      L.KeyPending = false;
    }
    L.HasValue = true;
  }
}

void JsonWriter::beginObject() {
  preValue();
  Out += '{';
  Levels.push_back({Scope::Object});
}

void JsonWriter::endObject() {
  assert(!Levels.empty() && Levels.back().Kind == Scope::Object);
  Levels.pop_back();
  Out += '}';
}

void JsonWriter::beginArray() {
  preValue();
  Out += '[';
  Levels.push_back({Scope::Array});
}

void JsonWriter::endArray() {
  assert(!Levels.empty() && Levels.back().Kind == Scope::Array);
  Levels.pop_back();
  Out += ']';
}

void JsonWriter::key(std::string_view K) {
  assert(!Levels.empty() && Levels.back().Kind == Scope::Object);
  Level &L = Levels.back();
  if (L.HasValue)
    Out += ',';
  Out += '"';
  Out += jsonEscape(K);
  Out += "\":";
  L.KeyPending = true;
}

void JsonWriter::value(std::string_view S) {
  preValue();
  Out += '"';
  Out += jsonEscape(S);
  Out += '"';
}

void JsonWriter::value(double D) {
  preValue();
  if (!std::isfinite(D)) {
    // JSON has no Infinity/NaN literal.
    Out += "null";
    return;
  }
  // Integral values print without a fraction so documents are stable
  // golden-test inputs.
  if (D == std::floor(D) && std::fabs(D) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.0f", D);
    Out += Buf;
    return;
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.12g", D);
  Out += Buf;
}

void JsonWriter::value(int64_t I) {
  preValue();
  Out += std::to_string(I);
}

void JsonWriter::value(uint64_t U) {
  preValue();
  Out += std::to_string(U);
}

void JsonWriter::value(bool B) {
  preValue();
  Out += B ? "true" : "false";
}

void JsonWriter::null() {
  preValue();
  Out += "null";
}

//===----------------------------------------------------------------------===//
// Validator: a recursive-descent scanner over the JSON grammar.
//===----------------------------------------------------------------------===//

namespace {

class Scanner {
public:
  explicit Scanner(std::string_view Text) : Text(Text) {}

  bool run() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == Text.size();
  }

private:
  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }
  bool eat(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }
  bool literal(std::string_view L) {
    if (Text.substr(Pos, L.size()) == L) {
      Pos += L.size();
      return true;
    }
    return false;
  }

  bool string() {
    if (!eat('"'))
      return false;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return false;
      if (C == '\\') {
        if (Pos >= Text.size())
          return false;
        char E = Text[Pos++];
        if (E == 'u') {
          for (int I = 0; I != 4; ++I, ++Pos)
            if (Pos >= Text.size() || !std::isxdigit(
                    static_cast<unsigned char>(Text[Pos])))
              return false;
        } else if (std::string_view("\"\\/bfnrt").find(E) ==
                   std::string_view::npos) {
          return false;
        }
      }
    }
    return false;
  }

  bool number() {
    size_t Start = Pos;
    eat('-');
    if (eat('0')) {
      // no leading zeros
    } else {
      if (Pos >= Text.size() || !std::isdigit(
              static_cast<unsigned char>(Text[Pos])))
        return false;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (eat('.')) {
      if (Pos >= Text.size() || !std::isdigit(
              static_cast<unsigned char>(Text[Pos])))
        return false;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || !std::isdigit(
              static_cast<unsigned char>(Text[Pos])))
        return false;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    return Pos > Start;
  }

  bool value() {
    if (++Depth > 256)
      return false; // defend against pathological nesting
    bool Ok = valueImpl();
    --Depth;
    return Ok;
  }

  bool valueImpl() {
    skipWs();
    if (Pos >= Text.size())
      return false;
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      skipWs();
      if (eat('}'))
        return true;
      for (;;) {
        skipWs();
        if (!string())
          return false;
        skipWs();
        if (!eat(':'))
          return false;
        if (!value())
          return false;
        skipWs();
        if (eat('}'))
          return true;
        if (!eat(','))
          return false;
      }
    }
    if (C == '[') {
      ++Pos;
      skipWs();
      if (eat(']'))
        return true;
      for (;;) {
        if (!value())
          return false;
        skipWs();
        if (eat(']'))
          return true;
        if (!eat(','))
          return false;
      }
    }
    if (C == '"')
      return string();
    if (C == 't')
      return literal("true");
    if (C == 'f')
      return literal("false");
    if (C == 'n')
      return literal("null");
    return number();
  }

  std::string_view Text;
  size_t Pos = 0;
  int Depth = 0;
};

} // namespace

bool granlog::jsonValidate(std::string_view Text) {
  return Scanner(Text).run();
}

//===----------------------------------------------------------------------===//
// Parser: the same recursive descent as the validator, building values.
//===----------------------------------------------------------------------===//

const JsonValue *JsonValue::find(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Obj)
    if (Name == Key)
      return &V;
  return nullptr;
}

std::optional<std::string>
JsonValue::stringMember(std::string_view Key) const {
  const JsonValue *V = find(Key);
  if (!V || !V->isString())
    return std::nullopt;
  return V->string();
}

std::optional<int64_t> JsonValue::intMember(std::string_view Key) const {
  const JsonValue *V = find(Key);
  if (!V || !V->isNumber())
    return std::nullopt;
  return V->asInt();
}

std::optional<bool> JsonValue::boolMember(std::string_view Key) const {
  const JsonValue *V = find(Key);
  if (!V || !V->isBool())
    return std::nullopt;
  return V->boolean();
}

namespace granlog {

/// The recursive-descent parser behind jsonParse (named so JsonValue can
/// befriend it).
class JsonParser {
public:
  explicit JsonParser(std::string_view Text) : Text(Text) {}

  std::optional<JsonValue> run() {
    JsonValue V;
    skipWs();
    if (!value(V))
      return std::nullopt;
    skipWs();
    if (Pos != Text.size())
      return std::nullopt;
    return V;
  }

private:
  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }
  bool eat(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }
  bool literal(std::string_view L) {
    if (Text.substr(Pos, L.size()) == L) {
      Pos += L.size();
      return true;
    }
    return false;
  }

  static void appendUtf8(std::string &Out, uint32_t Cp) {
    if (Cp < 0x80) {
      Out += static_cast<char>(Cp);
    } else if (Cp < 0x800) {
      Out += static_cast<char>(0xC0 | (Cp >> 6));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    } else if (Cp < 0x10000) {
      Out += static_cast<char>(0xE0 | (Cp >> 12));
      Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Cp >> 18));
      Out += static_cast<char>(0x80 | ((Cp >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    }
  }

  bool hex4(uint32_t &Out) {
    Out = 0;
    for (int I = 0; I != 4; ++I) {
      if (Pos >= Text.size())
        return false;
      char C = Text[Pos++];
      uint32_t D;
      if (C >= '0' && C <= '9')
        D = C - '0';
      else if (C >= 'a' && C <= 'f')
        D = C - 'a' + 10;
      else if (C >= 'A' && C <= 'F')
        D = C - 'A' + 10;
      else
        return false;
      Out = Out * 16 + D;
    }
    return true;
  }

  bool string(std::string &Out) {
    if (!eat('"'))
      return false;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return false;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return false;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        uint32_t Cp;
        if (!hex4(Cp))
          return false;
        // Surrogate pair => one supplementary code point.
        if (Cp >= 0xD800 && Cp <= 0xDBFF && Pos + 1 < Text.size() &&
            Text[Pos] == '\\' && Text[Pos + 1] == 'u') {
          size_t Save = Pos;
          Pos += 2;
          uint32_t Low;
          if (hex4(Low) && Low >= 0xDC00 && Low <= 0xDFFF)
            Cp = 0x10000 + ((Cp - 0xD800) << 10) + (Low - 0xDC00);
          else
            Pos = Save; // lone high surrogate: keep as-is
        }
        appendUtf8(Out, Cp);
        break;
      }
      default:
        return false;
      }
    }
    return false;
  }

  bool number(double &Out) {
    size_t Start = Pos;
    eat('-');
    if (eat('0')) {
      // no leading zeros
    } else {
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return false;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (eat('.')) {
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return false;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return false;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos == Start)
      return false;
    Out = std::strtod(std::string(Text.substr(Start, Pos - Start)).c_str(),
                      nullptr);
    return true;
  }

  bool value(JsonValue &V) {
    if (++Depth > 256)
      return false;
    bool Ok = valueImpl(V);
    --Depth;
    return Ok;
  }

  bool valueImpl(JsonValue &V) {
    skipWs();
    if (Pos >= Text.size())
      return false;
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      V.K = JsonValue::Kind::Object;
      skipWs();
      if (eat('}'))
        return true;
      for (;;) {
        skipWs();
        std::string Key;
        if (!string(Key))
          return false;
        skipWs();
        if (!eat(':'))
          return false;
        JsonValue Member;
        if (!value(Member))
          return false;
        V.Obj.emplace_back(std::move(Key), std::move(Member));
        skipWs();
        if (eat('}'))
          return true;
        if (!eat(','))
          return false;
      }
    }
    if (C == '[') {
      ++Pos;
      V.K = JsonValue::Kind::Array;
      skipWs();
      if (eat(']'))
        return true;
      for (;;) {
        JsonValue Element;
        if (!value(Element))
          return false;
        V.Arr.push_back(std::move(Element));
        skipWs();
        if (eat(']'))
          return true;
        if (!eat(','))
          return false;
      }
    }
    if (C == '"') {
      V.K = JsonValue::Kind::String;
      return string(V.Str);
    }
    if (C == 't') {
      V.K = JsonValue::Kind::Bool;
      V.Bool = true;
      return literal("true");
    }
    if (C == 'f') {
      V.K = JsonValue::Kind::Bool;
      V.Bool = false;
      return literal("false");
    }
    if (C == 'n') {
      V.K = JsonValue::Kind::Null;
      return literal("null");
    }
    V.K = JsonValue::Kind::Number;
    return number(V.Num);
  }

  std::string_view Text;
  size_t Pos = 0;
  int Depth = 0;
};

} // namespace granlog

std::optional<JsonValue> granlog::jsonParse(std::string_view Text) {
  return JsonParser(Text).run();
}
