//===- support/Budget.h - Resource governance -----------------------------===//
//
// Part of GranLog; see DESIGN.md "Resource governance & graceful
// degradation".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic work budgets with sound degradation.  The paper's escape
/// hatch — unsolvable difference equations get the solution Infinity,
/// which is still a sound upper bound (Section 5) — means no phase of the
/// analyzer ever *needs* to crash, hang or OOM: when a resource meter
/// runs out, the phase degrades its result to Infinity (costs, solutions)
/// or unknown (sizes) and keeps going.  A Budget carries:
///
///   - counter meters (expression nodes interned, solver steps,
///     normalization rounds, parse tokens, clause counts) that depend only
///     on the work performed, never on wall-clock time or scheduling.
///     The analysis layers meter each SCC independently (one WorkMeter
///     per SCC per layer), so exhaustion is a function of that SCC's own
///     deterministic work and --jobs=1 vs --jobs=8 stay byte-identical;
///   - an optional cooperative wall-clock deadline and terminator
///     callback (CaDiCaL-style), which are explicitly excluded from the
///     determinism guarantee.
///
/// Every degradation is recorded as a structured Degradation{phase,
/// meter, predicate} for Diagnostics, the stats registry ("budget.*"
/// counters) and the JSON report.  A Budget covers one analysis run (one
/// program): create a fresh one per run.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SUPPORT_BUDGET_H
#define GRANLOG_SUPPORT_BUDGET_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

namespace granlog {

class Diagnostics;
class StatsRegistry;

/// The resource meters a Budget can bound.
enum class MeterKind {
  ExprNodes,      ///< expression factory calls + tree-size guard
  SolverSteps,    ///< difference-equation solve attempts (by shape)
  NormalizeSteps, ///< inlineCalls substitution rounds
  ParseTokens,    ///< reader tokens consumed
  Clauses,        ///< clauses loaded
  Deadline,       ///< wall-clock deadline / terminator (non-deterministic)
};

/// Short stable identifier, e.g. "expr-nodes".
const char *meterName(MeterKind K);

/// Limits of one Budget.  0 = unlimited for every counter meter and for
/// TimeoutMs.  Counter limits are per SCC per analysis layer (and whole-
/// read for the reader meters); the deadline spans the whole run.
struct BudgetLimits {
  uint64_t ExprNodes = 0;
  uint64_t SolverSteps = 0;
  uint64_t NormalizeSteps = 0;
  uint64_t ParseTokens = 0;
  uint64_t Clauses = 0;
  /// Cooperative wall-clock deadline in milliseconds from Budget
  /// construction; opt-in, excluded from determinism guarantees.
  unsigned TimeoutMs = 0;
  /// Cooperative cancellation hook, polled at the same checkpoints as the
  /// deadline; return true to degrade everything still pending.
  std::function<bool()> Terminator;

  bool anyCounterLimit() const {
    return ExprNodes || SolverSteps || NormalizeSteps || ParseTokens ||
           Clauses;
  }
  bool any() const { return anyCounterLimit() || TimeoutMs || Terminator; }

  /// Generous-but-finite per-SCC limits that let every reasonable program
  /// through untouched and bound pathological ones (used by the
  /// analyze_file --budget flag and the adversarial tests).
  static BudgetLimits defaults();

  /// The counter limit for \p K (0 for Deadline).
  uint64_t limit(MeterKind K) const;
};

/// One recorded degradation event: which phase gave up, on which meter,
/// for which predicate ("" when the whole phase degraded, e.g. the
/// reader).
struct Degradation {
  std::string Phase; ///< "reader" | "size" | "cost"
  MeterKind Meter;
  std::string Predicate;

  /// "cost/expr-nodes: fib/2" style rendering.
  std::string str() const;

  friend bool operator==(const Degradation &, const Degradation &) = default;
  friend bool operator<(const Degradation &A, const Degradation &B) {
    return std::tie(A.Phase, A.Predicate, A.Meter) <
           std::tie(B.Phase, B.Predicate, B.Meter);
  }
};

/// The runtime state of one analysis run's budget: the limits, the
/// deadline clock, and the (thread-safe) degradation log.  Thread-safe;
/// shared by every layer of one run.
class Budget {
public:
  explicit Budget(BudgetLimits Limits);

  const BudgetLimits &limits() const { return Limits; }

  /// True once the deadline has passed or the terminator returned true.
  /// Sticky, and rate-limited: the clock/terminator is consulted every
  /// 64th call, so checkpoints can poll this freely.
  bool expired() const;

  /// Appends one degradation record (thread-safe).
  void record(Degradation D);

  /// All recorded degradations, deduplicated and deterministically sorted
  /// by (phase, predicate, meter).
  std::vector<Degradation> degradations() const;

  bool degraded() const;

  /// Mirrors the degradation log into \p Diags as warnings.
  void reportTo(Diagnostics &Diags) const;

  /// Records "budget.degradations" and "budget.exhausted.<meter>"
  /// counters (additive stats-JSON keys; no schema version bump).
  /// Null-safe; no-op when nothing degraded.
  void recordStats(StatsRegistry *Stats) const;

private:
  BudgetLimits Limits;
  bool HasDeadline = false;
  std::chrono::steady_clock::time_point Deadline;
  mutable std::atomic<uint64_t> ExpiryPolls{0};
  mutable std::atomic<bool> Expired{false};
  mutable std::mutex Mutex;
  std::vector<Degradation> Log;
};

/// "resource budget exhausted (<meter>[ limit N])" — the Why string every
/// degraded result carries, so explain()/JSON surface the provenance.
std::string budgetWhy(const Budget &B, MeterKind K);

/// Per-scope deterministic work counters.  Each analysis layer creates
/// one WorkMeter per SCC and installs it with a MeterScope; the
/// expression interner and the diffeq machinery charge whatever meter is
/// installed on their thread.  Inert (never exhausts, nothing to poll)
/// when constructed with a null Budget or one without counter limits.
class WorkMeter {
public:
  explicit WorkMeter(Budget *B) : B(B) {}

  Budget *budget() const { return B; }

  /// \name Charging (saturating).
  /// @{
  void chargeExpr(uint64_t N = 1) { charge(ExprNodes, N); }
  void chargeSolver(uint64_t N = 1) { charge(SolverSteps, N); }
  void chargeNormalize(uint64_t N = 1) { charge(NormalizeSteps, N); }
  /// Tree-size guard: marks the ExprNodes meter exhausted when an
  /// expression about to be stored or propagated has more tree nodes than
  /// the ExprNodes limit.  Hash-consing keeps the DAG (and the interning
  /// odometer) small while the *tree* grows exponentially; anything that
  /// renders or enumerates the tree (exprText, reports) would then hang,
  /// so oversized values degrade to Infinity instead.
  void noteTreeSize(uint64_t TreeSize) {
    if (B && B->limits().ExprNodes && TreeSize > B->limits().ExprNodes)
      TreeGuard = true;
  }
  /// @}

  bool exhausted(MeterKind K) const;

  /// The first exhausted meter in the fixed order ExprNodes, SolverSteps,
  /// NormalizeSteps, then Deadline when the budget's deadline/terminator
  /// fired; nullopt while within budget.  The fixed order makes the
  /// recorded Degradation::Meter deterministic.
  std::optional<MeterKind> over() const;

private:
  void charge(uint64_t &Counter, uint64_t N) {
    uint64_t T = Counter + N;
    Counter = T < Counter ? UINT64_MAX : T;
  }

  Budget *B;
  uint64_t ExprNodes = 0;
  uint64_t SolverSteps = 0;
  uint64_t NormalizeSteps = 0;
  bool TreeGuard = false;
};

/// The meter installed on the current thread (null = metering off).
WorkMeter *currentWorkMeter();

/// RAII: installs \p M as the current thread's meter for the scope,
/// restoring the previous one on exit.  Installing nullptr suspends
/// metering — used around the memoized recurrence solver, whose internal
/// work depends on cache hit/miss (schedule-dependent under a shared
/// cache) and must not leak into the deterministic charges.
class MeterScope {
public:
  explicit MeterScope(WorkMeter *M);
  ~MeterScope();
  MeterScope(const MeterScope &) = delete;
  MeterScope &operator=(const MeterScope &) = delete;

private:
  WorkMeter *Prev;
};

/// Convenience: the current meter's over(), or nullopt with metering off.
inline std::optional<MeterKind> currentMeterOver() {
  WorkMeter *M = currentWorkMeter();
  return M ? M->over() : std::nullopt;
}

} // namespace granlog

#endif // GRANLOG_SUPPORT_BUDGET_H
