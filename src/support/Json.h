//===- support/Json.h - A minimal JSON writer -----------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small hand-rolled JSON emitter (no external dependencies): a
/// streaming writer with automatic comma placement, plus a syntactic
/// validator used by the tests that check emitted documents.  Number
/// formatting is deterministic — integral doubles print without a
/// fractional part — so golden-file comparisons of emitted JSON are
/// stable.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SUPPORT_JSON_H
#define GRANLOG_SUPPORT_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace granlog {

/// Escapes \p S for inclusion in a JSON string literal (no quotes added).
std::string jsonEscape(std::string_view S);

/// Streaming JSON writer.  Usage:
/// \code
///   JsonWriter W;
///   W.beginObject();
///   W.key("n"); W.value(3);
///   W.key("xs"); W.beginArray(); W.value(1.5); W.endArray();
///   W.endObject();
///   std::string Doc = W.take();
/// \endcode
class JsonWriter {
public:
  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  /// Writes an object key (must be inside an object, before a value).
  void key(std::string_view K);

  void value(std::string_view S);
  void value(const char *S) { value(std::string_view(S)); }
  void value(double D);
  void value(int64_t I);
  void value(uint64_t U);
  void value(int I) { value(static_cast<int64_t>(I)); }
  void value(unsigned U) { value(static_cast<uint64_t>(U)); }
  void value(bool B);
  void null();

  /// The finished document.  Valid once all scopes are closed.
  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  /// Emits the separating comma when needed and marks a value written.
  void preValue();

  enum class Scope { Object, Array };
  struct Level {
    Scope Kind;
    bool HasValue = false; ///< a value was already written at this level
    bool KeyPending = false; ///< object: key written, value expected
  };
  std::string Out;
  std::vector<Level> Levels;
};

/// Checks that \p Text is one syntactically valid JSON value (with
/// optional surrounding whitespace).  Used by tests of emitted documents.
bool jsonValidate(std::string_view Text);

/// A parsed JSON value (the reader counterpart of JsonWriter), used by the
/// persistent solver cache.  Objects keep their members in document order;
/// find() does a linear scan — documents here are small and written by us.
/// Numbers are stored as double (exact for the int64 magnitudes the cache
/// serializes, which stay far below 2^53).
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() : K(Kind::Null) {}
  explicit JsonValue(bool B) : K(Kind::Bool), Bool(B) {}
  explicit JsonValue(double D) : K(Kind::Number), Num(D) {}
  explicit JsonValue(std::string S) : K(Kind::String), Str(std::move(S)) {}

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolean() const { return Bool; }
  double number() const { return Num; }
  int64_t asInt() const { return static_cast<int64_t>(Num); }
  const std::string &string() const { return Str; }
  const std::vector<JsonValue> &array() const { return Arr; }
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Obj;
  }

  /// Object member by key, or nullptr (also when this is not an object).
  const JsonValue *find(std::string_view Key) const;

  /// \name Typed member lookups: the value on match, nullopt otherwise.
  /// @{
  std::optional<std::string> stringMember(std::string_view Key) const;
  std::optional<int64_t> intMember(std::string_view Key) const;
  std::optional<bool> boolMember(std::string_view Key) const;
  /// @}

private:
  friend class JsonParser;
  Kind K;
  bool Bool = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;
};

/// Parses one JSON value (with optional surrounding whitespace); nullopt on
/// any syntax error or trailing garbage.  Accepts exactly the grammar
/// jsonValidate accepts, up to the same 256-level nesting bound.
std::optional<JsonValue> jsonParse(std::string_view Text);

} // namespace granlog

#endif // GRANLOG_SUPPORT_JSON_H
