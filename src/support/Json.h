//===- support/Json.h - A minimal JSON writer -----------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small hand-rolled JSON emitter (no external dependencies): a
/// streaming writer with automatic comma placement, plus a syntactic
/// validator used by the tests that check emitted documents.  Number
/// formatting is deterministic — integral doubles print without a
/// fractional part — so golden-file comparisons of emitted JSON are
/// stable.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SUPPORT_JSON_H
#define GRANLOG_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace granlog {

/// Escapes \p S for inclusion in a JSON string literal (no quotes added).
std::string jsonEscape(std::string_view S);

/// Streaming JSON writer.  Usage:
/// \code
///   JsonWriter W;
///   W.beginObject();
///   W.key("n"); W.value(3);
///   W.key("xs"); W.beginArray(); W.value(1.5); W.endArray();
///   W.endObject();
///   std::string Doc = W.take();
/// \endcode
class JsonWriter {
public:
  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  /// Writes an object key (must be inside an object, before a value).
  void key(std::string_view K);

  void value(std::string_view S);
  void value(const char *S) { value(std::string_view(S)); }
  void value(double D);
  void value(int64_t I);
  void value(uint64_t U);
  void value(int I) { value(static_cast<int64_t>(I)); }
  void value(unsigned U) { value(static_cast<uint64_t>(U)); }
  void value(bool B);
  void null();

  /// The finished document.  Valid once all scopes are closed.
  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  /// Emits the separating comma when needed and marks a value written.
  void preValue();

  enum class Scope { Object, Array };
  struct Level {
    Scope Kind;
    bool HasValue = false; ///< a value was already written at this level
    bool KeyPending = false; ///< object: key written, value expected
  };
  std::string Out;
  std::vector<Level> Levels;
};

/// Checks that \p Text is one syntactically valid JSON value (with
/// optional surrounding whitespace).  Used by tests of emitted documents.
bool jsonValidate(std::string_view Text);

} // namespace granlog

#endif // GRANLOG_SUPPORT_JSON_H
