//===- support/Budget.cpp -------------------------------------------------===//

#include "support/Budget.h"

#include "support/Diagnostics.h"
#include "support/Stats.h"

#include <algorithm>

using namespace granlog;

namespace {
thread_local WorkMeter *ActiveMeter = nullptr;
} // namespace

const char *granlog::meterName(MeterKind K) {
  switch (K) {
  case MeterKind::ExprNodes:
    return "expr-nodes";
  case MeterKind::SolverSteps:
    return "solver-steps";
  case MeterKind::NormalizeSteps:
    return "normalize-steps";
  case MeterKind::ParseTokens:
    return "parse-tokens";
  case MeterKind::Clauses:
    return "clauses";
  case MeterKind::Deadline:
    return "deadline";
  }
  return "?";
}

BudgetLimits BudgetLimits::defaults() {
  BudgetLimits L;
  L.ExprNodes = 250'000;
  L.SolverSteps = 50'000;
  L.NormalizeSteps = 50'000;
  L.ParseTokens = 10'000'000;
  L.Clauses = 1'000'000;
  return L;
}

uint64_t BudgetLimits::limit(MeterKind K) const {
  switch (K) {
  case MeterKind::ExprNodes:
    return ExprNodes;
  case MeterKind::SolverSteps:
    return SolverSteps;
  case MeterKind::NormalizeSteps:
    return NormalizeSteps;
  case MeterKind::ParseTokens:
    return ParseTokens;
  case MeterKind::Clauses:
    return Clauses;
  case MeterKind::Deadline:
    return 0;
  }
  return 0;
}

std::string Degradation::str() const {
  std::string Out = Phase + "/" + meterName(Meter);
  if (!Predicate.empty())
    Out += ": " + Predicate;
  return Out;
}

Budget::Budget(BudgetLimits Limits) : Limits(std::move(Limits)) {
  if (this->Limits.TimeoutMs) {
    HasDeadline = true;
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(this->Limits.TimeoutMs);
  }
}

bool Budget::expired() const {
  if (Expired.load(std::memory_order_relaxed))
    return true;
  if (!HasDeadline && !Limits.Terminator)
    return false;
  // Rate-limit the clock read / callback: checkpoints poll this on hot
  // paths, and a late detection only delays the (cooperative) degradation
  // by a few checkpoints.
  if (ExpiryPolls.fetch_add(1, std::memory_order_relaxed) % 64 != 0)
    return false;
  if ((HasDeadline && std::chrono::steady_clock::now() >= Deadline) ||
      (Limits.Terminator && Limits.Terminator())) {
    Expired.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void Budget::record(Degradation D) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Log.push_back(std::move(D));
}

std::vector<Degradation> Budget::degradations() const {
  std::vector<Degradation> Out;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Out = Log;
  }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

bool Budget::degraded() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return !Log.empty();
}

void Budget::reportTo(Diagnostics &Diags) const {
  for (const Degradation &D : degradations())
    Diags.warning(SourceLoc(),
                  "resource budget exhausted: " + D.str() +
                      " (result degraded to a sound Infinity/unknown)");
}

void Budget::recordStats(StatsRegistry *Stats) const {
  if (!Stats)
    return;
  std::vector<Degradation> Ds = degradations();
  if (Ds.empty())
    return;
  Stats->add("budget.degradations", Ds.size());
  for (const Degradation &D : Ds)
    Stats->add(std::string("budget.exhausted.") + meterName(D.Meter));
}

std::string granlog::budgetWhy(const Budget &B, MeterKind K) {
  std::string Why = std::string("resource budget exhausted (") +
                    meterName(K);
  if (uint64_t Limit = B.limits().limit(K))
    Why += " limit " + std::to_string(Limit);
  Why += ")";
  return Why;
}

bool WorkMeter::exhausted(MeterKind K) const {
  if (!B)
    return false;
  const BudgetLimits &L = B->limits();
  switch (K) {
  case MeterKind::ExprNodes:
    return (L.ExprNodes && ExprNodes > L.ExprNodes) || TreeGuard;
  case MeterKind::SolverSteps:
    return L.SolverSteps && SolverSteps > L.SolverSteps;
  case MeterKind::NormalizeSteps:
    return L.NormalizeSteps && NormalizeSteps > L.NormalizeSteps;
  case MeterKind::Deadline:
    return B->expired();
  case MeterKind::ParseTokens:
  case MeterKind::Clauses:
    return false; // reader meters are charged by the parser directly
  }
  return false;
}

std::optional<MeterKind> WorkMeter::over() const {
  if (!B)
    return std::nullopt;
  for (MeterKind K : {MeterKind::ExprNodes, MeterKind::SolverSteps,
                      MeterKind::NormalizeSteps, MeterKind::Deadline})
    if (exhausted(K))
      return K;
  return std::nullopt;
}

WorkMeter *granlog::currentWorkMeter() { return ActiveMeter; }

MeterScope::MeterScope(WorkMeter *M) : Prev(ActiveMeter) {
  // An inert meter (no budget) is not installed at all, so the interner
  // hook stays a single predicted-not-taken branch in unbudgeted runs.
  ActiveMeter = M && M->budget() ? M : nullptr;
}

MeterScope::~MeterScope() { ActiveMeter = Prev; }
