//===- support/Histogram.cpp ----------------------------------------------===//

#include "support/Histogram.h"

#include "support/Json.h"

#include <bit>
#include <cmath>
#include <limits>

using namespace granlog;

uint64_t LatencyHistogram::bucketUpperNs(unsigned Bucket) {
  if (Bucket >= NumBuckets - 1)
    return std::numeric_limits<uint64_t>::max();
  return uint64_t(1) << Bucket;
}

void LatencyHistogram::addNs(uint64_t Ns) {
  // Smallest B with Ns <= 2^B: bit_width of Ns-1 (0 and 1 land in B=0).
  unsigned B = Ns <= 1 ? 0 : std::bit_width(Ns - 1);
  if (B >= NumBuckets)
    B = NumBuckets - 1;
  ++Counts[B];
}

void LatencyHistogram::merge(const LatencyHistogram &O) {
  for (unsigned B = 0; B != NumBuckets; ++B)
    Counts[B] += O.Counts[B];
}

uint64_t LatencyHistogram::count() const {
  uint64_t N = 0;
  for (uint64_t C : Counts)
    N += C;
  return N;
}

uint64_t LatencyHistogram::percentileNs(double P) const {
  uint64_t N = count();
  if (N == 0)
    return 0;
  uint64_t Rank = static_cast<uint64_t>(std::ceil(P * static_cast<double>(N)));
  if (Rank < 1)
    Rank = 1;
  if (Rank > N)
    Rank = N;
  uint64_t Seen = 0;
  for (unsigned B = 0; B != NumBuckets; ++B) {
    Seen += Counts[B];
    if (Seen >= Rank)
      return bucketUpperNs(B);
  }
  return bucketUpperNs(NumBuckets - 1);
}

void LatencyHistogram::writeJson(JsonWriter &W) const {
  W.beginObject();
  W.key("count");
  W.value(count());
  W.key("p50_ns");
  W.value(percentileNs(0.50));
  W.key("p90_ns");
  W.value(percentileNs(0.90));
  W.key("p99_ns");
  W.value(percentileNs(0.99));
  W.endObject();
}
