//===- support/FaultInject.cpp --------------------------------------------===//

#include "support/FaultInject.h"

#include "support/Io.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

using namespace granlog;

static std::atomic<FaultInjector *> GlobalInjector{nullptr};

FaultInjector *granlog::faultInjector() {
  return GlobalInjector.load(std::memory_order_acquire);
}

void granlog::setFaultInjector(FaultInjector *F) {
  GlobalInjector.store(F, std::memory_order_release);
}

FaultInjector::FaultInjector(uint64_t Seed, uint64_t Rate)
    : Seed(Seed), Rate(Rate) {}

std::unique_ptr<FaultInjector> FaultInjector::fromSpec(std::string_view Spec,
                                                       std::string *Error) {
  if (Spec.empty() || Spec == "off")
    return nullptr;
  uint64_t Seed = 1;
  uint64_t Rate = 1;
  std::vector<std::string> Sites;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string_view Part = Spec.substr(
        Pos, Comma == std::string_view::npos ? Comma : Comma - Pos);
    Pos = Comma == std::string_view::npos ? Spec.size() : Comma + 1;
    size_t Eq = Part.find('=');
    if (Eq == std::string_view::npos) {
      if (Error)
        *Error = "fault spec part '" + std::string(Part) +
                 "' is not key=value";
      return nullptr;
    }
    std::string_view Key = Part.substr(0, Eq);
    std::string Value(Part.substr(Eq + 1));
    if (Key == "seed" || Key == "rate") {
      char *End = nullptr;
      uint64_t Parsed = std::strtoull(Value.c_str(), &End, 10);
      if (Value.empty() || !End || *End != '\0') {
        if (Error)
          *Error = "fault spec " + std::string(Key) + " '" + Value +
                   "' is not a number";
        return nullptr;
      }
      (Key == "seed" ? Seed : Rate) = Parsed;
    } else if (Key == "sites") {
      size_t P = 0;
      while (P <= Value.size()) {
        size_t Bar = Value.find('|', P);
        std::string Site = Value.substr(
            P, Bar == std::string::npos ? Bar : Bar - P);
        if (!Site.empty())
          Sites.push_back(std::move(Site));
        if (Bar == std::string::npos)
          break;
        P = Bar + 1;
      }
    } else {
      if (Error)
        *Error = "fault spec key '" + std::string(Key) +
                 "' is not seed/rate/sites";
      return nullptr;
    }
  }
  auto F = std::make_unique<FaultInjector>(Seed, Rate);
  for (std::string &S : Sites)
    F->armSite(std::move(S));
  return F;
}

std::string FaultInjector::spec() const {
  std::string S = "seed=" + std::to_string(Seed) +
                  ",rate=" + std::to_string(Rate);
  if (!Sites.empty()) {
    S += ",sites=";
    for (size_t I = 0; I != Sites.size(); ++I) {
      if (I)
        S += '|';
      S += Sites[I];
    }
  }
  return S;
}

void FaultInjector::armSite(std::string Site) {
  Sites.push_back(std::move(Site));
}

bool FaultInjector::armed(std::string_view Site) const {
  if (Sites.empty())
    return true;
  return std::find(Sites.begin(), Sites.end(), Site) != Sites.end();
}

bool FaultInjector::decide(std::string_view Site, uint64_t N) const {
  if (Rate == 0)
    return false;
  uint64_t H = fnv1a64Word(fnv1a64(Site, Seed ^ Fnv1a64Basis), N);
  return H % Rate == 0;
}

void FaultInjector::count(std::string_view Site) {
  auto It = Injected.find(Site);
  if (It == Injected.end())
    Injected.emplace(std::string(Site), 1);
  else
    ++It->second;
}

bool FaultInjector::shouldFail(std::string_view Site) {
  if (!armed(Site))
    return false;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Occurrences.find(Site);
  uint64_t N = 0;
  if (It == Occurrences.end())
    Occurrences.emplace(std::string(Site), 1);
  else
    N = It->second++;
  if (!decide(Site, N))
    return false;
  count(Site);
  return true;
}

bool FaultInjector::shouldFail(std::string_view Site, uint64_t Key) {
  if (!armed(Site))
    return false;
  // Keyed decisions skip the occurrence counter on purpose: the result
  // must be the same no matter how many other decisions ran first.
  if (!decide(Site, Key ^ 0x6b6579ULL)) // "key"
    return false;
  std::lock_guard<std::mutex> Lock(Mutex);
  count(Site);
  return true;
}

uint64_t FaultInjector::injected(std::string_view Site) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Injected.find(Site);
  return It == Injected.end() ? 0 : It->second;
}

uint64_t FaultInjector::totalInjected() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  uint64_t Total = 0;
  for (const auto &[Site, N] : Injected)
    Total += N;
  return Total;
}

std::vector<std::pair<std::string, uint64_t>> FaultInjector::counts() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return {Injected.begin(), Injected.end()};
}
