//===- support/Diagnostics.cpp --------------------------------------------===//

#include "support/Diagnostics.h"

using namespace granlog;

std::string Diagnostic::str() const {
  const char *KindName = Kind == DiagKind::Error     ? "error"
                         : Kind == DiagKind::Warning ? "warning"
                                                     : "note";
  return Loc.str() + ": " + KindName + ": " + Message;
}

std::string Diagnostics::str() const {
  std::string Result;
  for (const Diagnostic &D : Diags) {
    if (!Result.empty())
      Result += '\n';
    Result += D.str();
  }
  return Result;
}
