//===- support/Profile.h - Span-tree profiling ----------------------------===//
//
// Part of GranLog; see DESIGN.md "Analyzer tracing & profiling".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a Tracer snapshot into answers to "why was this run slow":
/// flamegraph-style self-time per span kind, per-SCC latency histograms,
/// solver-cache hit attribution, and the critical path through the SCC
/// dependency DAG (the chain of SCCs whose callee-first data dependencies
/// bound the parallel analysis wall time, weighted by measured size+cost
/// span durations).  Pure functions over SpanRecord vectors — no coupling
/// to the analyzer layers, so the corpus harness and the CLIs share one
/// implementation.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SUPPORT_PROFILE_H
#define GRANLOG_SUPPORT_PROFILE_H

#include "support/Histogram.h"
#include "support/Tracer.h"

#include <array>
#include <map>
#include <string>
#include <vector>

namespace granlog {

/// Aggregations over one program's (or a whole trace's) spans.
struct TraceProfile {
  struct KindAgg {
    uint64_t Count = 0;
    uint64_t TotalNs = 0; ///< sum of span durations (nested spans re-count)
    uint64_t SelfNs = 0;  ///< duration minus same-thread child spans
  };
  struct CacheAgg {
    uint64_t Count = 0;
    uint64_t TotalNs = 0;
  };

  uint64_t Spans = 0;
  std::array<KindAgg, NumSpanKinds> ByKind{};
  /// Cache-probe spans by outcome, indexed by the TraceCache* detail
  /// values (0 = unknown).
  std::array<CacheAgg, 5> CacheOutcomes{};
  /// Measured size+cost nanoseconds per SCC id — the node weights of the
  /// critical path.
  std::map<unsigned, uint64_t> SccNs;
  LatencyHistogram SccLatency;     ///< one sample per analyzed SCC
  LatencyHistogram ProgramLatency; ///< one sample per Program span
};

/// Aggregates \p Spans, keeping only records tagged with program \p Prog
/// (Tracer::None keeps everything).
TraceProfile buildProfile(const std::vector<SpanRecord> &Spans,
                          uint32_t Prog = Tracer::None);

/// The maximum-weight root-to-leaf chain through the SCC dependency DAG
/// (\p SccDeps[Id] = callee SCC ids, as GranularityAnalyzer::
/// sccDependencies() builds it), weighted by \p P.SccNs; caller-first
/// order.  \p PathNs (optional) receives the chain's total weight.  Ties
/// break toward smaller SCC ids, so the path is deterministic.
std::vector<unsigned> criticalPath(const TraceProfile &P,
                                   const std::vector<std::vector<unsigned>> &SccDeps,
                                   uint64_t *PathNs = nullptr);

/// Renders the human-readable profile: self-time by phase, cache-hit
/// attribution, SCC latency percentiles and the critical path (annotated
/// with \p SccNames when provided, one label per SCC id).
std::string profileReport(const TraceProfile &P,
                          const std::vector<std::vector<unsigned>> &SccDeps,
                          const std::vector<std::string> &SccNames);

} // namespace granlog

#endif // GRANLOG_SUPPORT_PROFILE_H
