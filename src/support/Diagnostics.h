//===- support/Diagnostics.h - Error reporting ----------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple diagnostics sink.  Library code never throws; components that
/// can fail take a Diagnostics& and report through it, returning
/// std::optional / empty results on error.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SUPPORT_DIAGNOSTICS_H
#define GRANLOG_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace granlog {

/// A position in a source buffer, 1-based.  Line 0 means "unknown".
struct SourceLoc {
  int Line = 0;
  int Column = 0;

  bool isValid() const { return Line > 0; }
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Column);
  }
};

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Collects diagnostics produced while processing one input.
class Diagnostics {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors > 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// All diagnostics joined by newlines, for test failure messages.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace granlog

#endif // GRANLOG_SUPPORT_DIAGNOSTICS_H
