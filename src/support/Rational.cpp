//===- support/Rational.cpp -----------------------------------------------===//

#include "support/Rational.h"

using namespace granlog;

Rational Rational::pow(int64_t E) const {
  if (E < 0) {
    assert(!isZero() && "zero to a negative power");
    return Rational(Den, Num).pow(-E);
  }
  Rational Result(1);
  Rational Base = *this;
  while (E > 0) {
    if (E & 1)
      Result *= Base;
    Base *= Base;
    E >>= 1;
  }
  return Result;
}

std::string Rational::str() const {
  if (Den == 1)
    return std::to_string(Num);
  return std::to_string(Num) + "/" + std::to_string(Den);
}
