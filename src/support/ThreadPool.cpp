//===- support/ThreadPool.cpp ---------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <memory>
#include <utility>

using namespace granlog;

namespace {
// Identifies the pool (and worker slot) the current thread belongs to so
// submit() can push to the worker's own deque instead of round-robin.
thread_local ThreadPool *CurrentPool = nullptr;
thread_local size_t CurrentIndex = 0;
} // namespace

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = 1;
  Queues.resize(NumThreads);
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
  // Workers only exit once every queue is empty, so all tasks have run.
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    size_t Target;
    if (CurrentPool == this) {
      Target = CurrentIndex; // own deque: LIFO locality for task trees
    } else {
      Target = NextQueue;
      NextQueue = (NextQueue + 1) % Queues.size();
    }
    Queues[Target].push_back(std::move(Task));
    ++Pending;
  }
  WorkCv.notify_one();
}

std::function<void()> ThreadPool::takeLocked(size_t Index) {
  if (!Queues[Index].empty()) {
    std::function<void()> Task = std::move(Queues[Index].back());
    Queues[Index].pop_back();
    return Task;
  }
  for (size_t Off = 1; Off != Queues.size(); ++Off) {
    size_t Victim = (Index + Off) % Queues.size();
    if (!Queues[Victim].empty()) {
      std::function<void()> Task = std::move(Queues[Victim].front());
      Queues[Victim].pop_front();
      return Task;
    }
  }
  return {};
}

void ThreadPool::workerLoop(size_t Index) {
  CurrentPool = this;
  CurrentIndex = Index;
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    std::function<void()> Task = takeLocked(Index);
    if (!Task) {
      if (Stopping)
        return; // all queues drained
      WorkCv.wait(Lock);
      continue;
    }
    Lock.unlock();
    try {
      Task();
    } catch (...) {
      // A throwing task must never take the process down (std::terminate
      // would fire if this escaped the worker thread).  Count it, keep the
      // first exception for wait(), and keep draining the queues.
      FailedTasks.fetch_add(1, std::memory_order_relaxed);
      std::unique_lock<std::mutex> ErrLock(Mutex);
      if (!FirstError)
        FirstError = std::current_exception();
    }
    Task = nullptr; // release captures before touching Pending
    Lock.lock();
    if (--Pending == 0)
      DoneCv.notify_all();
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  DoneCv.wait(Lock, [this] { return Pending == 0; });
  if (FirstError) {
    std::exception_ptr E = std::exchange(FirstError, nullptr);
    Lock.unlock();
    std::rethrow_exception(E);
  }
}

void granlog::topoSchedule(const std::vector<std::vector<unsigned>> &Deps,
                           const std::function<void(unsigned)> &Fn,
                           ThreadPool *Pool) {
  const unsigned N = static_cast<unsigned>(Deps.size());
  if (!Pool) {
    // Index order is a topological order by the Deps[I] < I precondition,
    // so this is exactly the classic sequential callee-first loop.
    for (unsigned I = 0; I != N; ++I) {
      assert(std::all_of(Deps[I].begin(), Deps[I].end(),
                         [I](unsigned D) { return D < I; }) &&
             "nodes must be given in topological order");
      Fn(I);
    }
    return;
  }

  // Remaining[I] counts distinct unfinished dependencies; Dependents[D]
  // lists the nodes waiting on D.
  std::vector<std::vector<unsigned>> Dependents(N);
  std::vector<unsigned> InitialReady;
  std::unique_ptr<std::atomic<unsigned>[]> Remaining(
      new std::atomic<unsigned>[N]);
  for (unsigned I = 0; I != N; ++I) {
    std::vector<unsigned> Unique(Deps[I]);
    std::sort(Unique.begin(), Unique.end());
    Unique.erase(std::unique(Unique.begin(), Unique.end()), Unique.end());
    assert((Unique.empty() || Unique.back() < I) &&
           "nodes must be given in topological order");
    Remaining[I].store(static_cast<unsigned>(Unique.size()),
                       std::memory_order_relaxed);
    if (Unique.empty())
      InitialReady.push_back(I);
    for (unsigned D : Unique)
      Dependents[D].push_back(I);
  }

  // Each node job runs Fn then releases its dependents; the last released
  // dependency submits the dependent.  fetch_sub(acq_rel) makes the
  // completed node's writes visible to the dependent's thread.  Dependents
  // are released even when Fn throws — otherwise one failing node would
  // strand its whole downstream subgraph unrun (with their jobs never
  // submitted), and a batch driver could never report per-item failures.
  std::function<void(unsigned)> RunNode = [&](unsigned I) {
    struct ReleaseDependents {
      const std::function<void(unsigned)> &RunNode;
      const std::vector<std::vector<unsigned>> &Dependents;
      std::atomic<unsigned> *Remaining;
      ThreadPool *Pool;
      unsigned I;
      ~ReleaseDependents() {
        for (unsigned Next : Dependents[I])
          if (Remaining[Next].fetch_sub(1, std::memory_order_acq_rel) == 1)
            Pool->submit([&RN = RunNode, Next] { RN(Next); });
      }
    } Release{RunNode, Dependents, Remaining.get(), Pool, I};
    Fn(I); // may throw; the pool records it and wait() rethrows
  };
  // Submit only the nodes whose dependency count was zero at build time:
  // re-reading Remaining here would race with already-running jobs that
  // drive a dependent's count to zero (and submit it) before this loop
  // reaches it, double-submitting that node.
  for (unsigned I : InitialReady)
    Pool->submit([&RunNode, I] { RunNode(I); });
  Pool->wait(); // blocks until the whole DAG (or an error) completes, so
                // the by-reference captures above stay alive long enough
}
