//===- support/Io.h - Atomic artifact writing -----------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// writeFileAtomic: the write-to-temp-then-rename pattern that
/// SolverCache::saveToFile established, factored out so every artifact
/// writer (Chrome traces, stats JSON, bench JSON, the persistent solver
/// cache) shares one implementation.  A failed or interrupted write never
/// leaves a truncated document at the target path; at worst a stale
/// "<path>.tmp" sibling remains, which the next successful write replaces.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SUPPORT_IO_H
#define GRANLOG_SUPPORT_IO_H

#include <string>
#include <string_view>

namespace granlog {

/// Writes \p Contents to \p Path atomically: the bytes go to "<Path>.tmp"
/// (same directory, so the final std::rename cannot cross filesystems) and
/// the temp file replaces \p Path only after a successful flush.  Returns
/// false (filling \p Error when non-null) on any I/O failure; \p Path is
/// then untouched.
bool writeFileAtomic(const std::string &Path, std::string_view Contents,
                     std::string *Error = nullptr);

} // namespace granlog

#endif // GRANLOG_SUPPORT_IO_H
