//===- support/Io.h - Atomic artifact writing -----------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// writeFileAtomic: the write-to-temp-then-rename pattern that
/// SolverCache::saveToFile established, factored out so every artifact
/// writer (Chrome traces, stats JSON, bench JSON, the persistent solver
/// cache) shares one implementation.  A failed or interrupted write never
/// leaves a truncated document at the target path; at worst a stale
/// "<path>.tmp.*" sibling remains, which is harmless.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SUPPORT_IO_H
#define GRANLOG_SUPPORT_IO_H

#include <cstdint>
#include <string>
#include <string_view>

namespace granlog {

/// Writes \p Contents to \p Path atomically: the bytes go to a uniquely
/// named "<Path>.tmp.<pid>.<n>" sibling (same directory, so the final
/// std::rename cannot cross filesystems) and the temp file replaces
/// \p Path only after a successful flush.  The temp name is unique per
/// process and per call, so concurrent writers — threads or processes —
/// never clobber each other's in-flight bytes; the last rename wins and
/// every reader sees some complete document.  Returns false (filling
/// \p Error when non-null) on any I/O failure; \p Path is then untouched
/// and the temp file is unlinked.  Stale temps for \p Path left behind
/// by *crashed* writers (their pid is no longer alive) are swept before
/// writing, so residue never accumulates.
///
/// Fault-injection sites (support/FaultInject): "io.write.open",
/// "io.write.short", "io.write.rename" fail the respective step (the
/// temp is still cleaned up); "io.write.torn" simulates a crashed
/// pre-atomic writer by leaving half the bytes at \p Path itself.
bool writeFileAtomic(const std::string &Path, std::string_view Contents,
                     std::string *Error = nullptr);

/// Removes "<Path>.tmp.<pid>.<n>" siblings whose writing process is no
/// longer alive (or whose name is malformed).  Temps of live processes —
/// including this one — are in-flight writes and are left alone.
/// Returns the number of files removed.  Also callable on its own:
/// granlogd sweeps its cache directory on startup to recover from
/// crashed predecessors.
size_t sweepStaleTemps(const std::string &Path);

/// The FNV-1a 64-bit offset basis (the hash of the empty string).
inline constexpr uint64_t Fnv1a64Basis = 0xcbf29ce484222325ULL;

/// Seeded FNV-1a 64-bit hash: folds \p Data into the running hash
/// \p Seed.  Fully specified byte-wise, so values are identical across
/// compilers and standard libraries (unlike std::hash) — the expression
/// core keys node hashes and Bloom bits on this.  Inline: it sits on the
/// interner's hot path.
inline constexpr uint64_t fnv1a64(std::string_view Data, uint64_t Seed) {
  uint64_t H = Seed;
  for (unsigned char C : Data) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

/// FNV-1a 64-bit hash from the standard basis; used for deterministic
/// content fingerprints in corpus reports and tests.
uint64_t fnv1a64(std::string_view Data);

/// Folds one 64-bit value into a running FNV-1a hash as 8 little-endian
/// bytes (a fixed byte order keeps the result platform-stable).
inline constexpr uint64_t fnv1a64Word(uint64_t Seed, uint64_t V) {
  uint64_t H = Seed;
  for (int I = 0; I != 8; ++I) {
    H ^= (V >> (I * 8)) & 0xff;
    H *= 0x100000001b3ULL;
  }
  return H;
}

/// Renders \p Value as 16 lowercase hex digits (JSON doubles cannot carry
/// a full 64-bit integer, so fingerprints travel as strings).
std::string hex64(uint64_t Value);

} // namespace granlog

#endif // GRANLOG_SUPPORT_IO_H
