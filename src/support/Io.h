//===- support/Io.h - Atomic artifact writing -----------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// writeFileAtomic: the write-to-temp-then-rename pattern that
/// SolverCache::saveToFile established, factored out so every artifact
/// writer (Chrome traces, stats JSON, bench JSON, the persistent solver
/// cache) shares one implementation.  A failed or interrupted write never
/// leaves a truncated document at the target path; at worst a stale
/// "<path>.tmp.*" sibling remains, which is harmless.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SUPPORT_IO_H
#define GRANLOG_SUPPORT_IO_H

#include <cstdint>
#include <string>
#include <string_view>

namespace granlog {

/// Writes \p Contents to \p Path atomically: the bytes go to a uniquely
/// named "<Path>.tmp.<pid>.<n>" sibling (same directory, so the final
/// std::rename cannot cross filesystems) and the temp file replaces
/// \p Path only after a successful flush.  The temp name is unique per
/// process and per call, so concurrent writers — threads or processes —
/// never clobber each other's in-flight bytes; the last rename wins and
/// every reader sees some complete document.  Returns false (filling
/// \p Error when non-null) on any I/O failure; \p Path is then untouched.
bool writeFileAtomic(const std::string &Path, std::string_view Contents,
                     std::string *Error = nullptr);

/// FNV-1a 64-bit hash; used for deterministic content fingerprints in
/// corpus reports and tests (stable across platforms, unlike std::hash).
uint64_t fnv1a64(std::string_view Data);

/// Renders \p Value as 16 lowercase hex digits (JSON doubles cannot carry
/// a full 64-bit integer, so fingerprints travel as strings).
std::string hex64(uint64_t Value);

} // namespace granlog

#endif // GRANLOG_SUPPORT_IO_H
