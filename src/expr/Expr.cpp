//===- expr/Expr.cpp - Construction and canonicalization ------------------===//

#include "expr/Expr.h"

#include "expr/ExprInterner.h"

#include <algorithm>

using namespace granlog;

namespace granlog {
ExprRef makeRaw(ExprKind Kind, std::string Name, Rational Value,
                std::vector<ExprRef> Ops) {
  return ExprInterner::global().intern(Kind, std::move(Name), Value,
                                       std::move(Ops));
}
} // namespace granlog

ExprRef granlog::makeNumber(Rational Value) {
  return makeRaw(ExprKind::Number, std::string(), Value, {});
}

ExprRef granlog::makeVar(std::string Name) {
  return makeRaw(ExprKind::Var, std::move(Name), Rational(), {});
}

ExprRef granlog::makeInfinity() {
  return makeRaw(ExprKind::Infinity, std::string(), Rational(), {});
}

ExprRef granlog::makeCall(std::string Name, std::vector<ExprRef> Args) {
  return makeRaw(ExprKind::Call, std::move(Name), Rational(),
                 std::move(Args));
}

int granlog::compareExpr(const Expr &A, const Expr &B) {
  if (&A == &B)
    return 0; // interning: same node <=> structurally equal
  if (A.kind() != B.kind())
    return static_cast<int>(A.kind()) < static_cast<int>(B.kind()) ? -1 : 1;
  switch (A.kind()) {
  case ExprKind::Number: {
    if (A.number() == B.number())
      return 0;
    return A.number() < B.number() ? -1 : 1;
  }
  case ExprKind::Var:
    return A.name().compare(B.name());
  case ExprKind::Infinity:
    return 0;
  case ExprKind::Call: {
    int C = A.name().compare(B.name());
    if (C != 0)
      return C;
    break;
  }
  default:
    break;
  }
  ExprSpan OA = A.operands();
  ExprSpan OB = B.operands();
  if (OA.size() != OB.size())
    return OA.size() < OB.size() ? -1 : 1;
  for (size_t I = 0; I != OA.size(); ++I) {
    if (OA[I] == OB[I])
      continue; // shared (interned) operand: equal without descending
    if (int C = compareExpr(*OA[I], *OB[I]))
      return C;
  }
  return 0;
}

namespace {

/// Splits an addend into (numeric coefficient, symbolic part).  The
/// symbolic part is nullptr for pure constants.
std::pair<Rational, ExprRef> splitCoefficient(const ExprRef &E) {
  if (E->isNumber())
    return {E->number(), nullptr};
  if (E->kind() == ExprKind::Mul) {
    ExprSpan Ops = E->operands();
    if (!Ops.empty() && Ops[0]->isNumber()) {
      Rational K = Ops[0]->number();
      if (Ops.size() == 2)
        return {K, Ops[1]};
      std::vector<ExprRef> Rest(Ops.begin() + 1, Ops.end());
      return {K, makeRaw(ExprKind::Mul, std::string(), Rational(),
                         std::move(Rest))};
    }
  }
  return {Rational(1), E};
}

void flattenInto(ExprKind Kind, const ExprRef &E, std::vector<ExprRef> &Out) {
  if (E->kind() == Kind) {
    for (const ExprRef &Op : E->operands())
      flattenInto(Kind, Op, Out);
    return;
  }
  Out.push_back(E);
}

} // namespace

ExprRef granlog::makeAdd(std::vector<ExprRef> RawOps) {
  std::vector<ExprRef> Flat;
  for (const ExprRef &Op : RawOps)
    flattenInto(ExprKind::Add, Op, Flat);

  Rational Constant(0);
  // (symbolic part, coefficient) with like terms merged.
  std::vector<std::pair<ExprRef, Rational>> Terms;
  for (const ExprRef &Op : Flat) {
    if (Op->isInfinity())
      return makeInfinity();
    auto [K, Base] = splitCoefficient(Op);
    if (!Base) {
      Constant += K;
      continue;
    }
    bool Merged = false;
    for (auto &T : Terms) {
      if (exprEqual(T.first, Base)) {
        T.second += K;
        Merged = true;
        break;
      }
    }
    if (!Merged)
      Terms.emplace_back(Base, K);
  }

  // Sort by the symbolic part (not the whole term) so that e.g. n comes
  // before n^2 regardless of coefficients — this keeps polynomial output
  // in ascending-degree order.
  std::sort(Terms.begin(), Terms.end(),
            [](const auto &A, const auto &B) {
              return compareExpr(*A.first, *B.first) < 0;
            });
  std::vector<ExprRef> Ops;
  for (auto &T : Terms) {
    if (T.second.isZero())
      continue;
    if (T.second.isOne())
      Ops.push_back(T.first);
    else
      Ops.push_back(makeScale(T.second, T.first));
  }
  if (!Constant.isZero() || Ops.empty())
    Ops.insert(Ops.begin(), makeNumber(Constant));
  if (Ops.size() == 1)
    return Ops[0];
  return makeRaw(ExprKind::Add, std::string(), Rational(), std::move(Ops));
}

ExprRef granlog::makeSub(ExprRef A, ExprRef B) {
  return makeAdd(std::move(A), makeScale(Rational(-1), std::move(B)));
}

ExprRef granlog::makeScale(Rational K, ExprRef E) {
  return makeMul(makeNumber(K), std::move(E));
}

ExprRef granlog::makeMul(std::vector<ExprRef> RawOps) {
  std::vector<ExprRef> Flat;
  for (const ExprRef &Op : RawOps)
    flattenInto(ExprKind::Mul, Op, Flat);

  Rational Constant(1);
  bool SawInfinity = false;
  // (base, numeric exponent) pairs for merged factors; non-numeric
  // exponents keep their Pow node as an opaque factor.
  std::vector<std::pair<ExprRef, Rational>> Factors;
  std::vector<ExprRef> Opaque;
  for (const ExprRef &Op : Flat) {
    if (Op->isNumber()) {
      Constant *= Op->number();
      continue;
    }
    if (Op->isInfinity()) {
      SawInfinity = true;
      continue;
    }
    ExprRef Base = Op;
    Rational Exp(1);
    if (Op->kind() == ExprKind::Pow && Op->exponent()->isNumber()) {
      Base = Op->base();
      Exp = Op->exponent()->number();
    } else if (Op->kind() == ExprKind::Pow) {
      Opaque.push_back(Op);
      continue;
    }
    bool Merged = false;
    for (auto &F : Factors) {
      if (exprEqual(F.first, Base)) {
        F.second += Exp;
        Merged = true;
        break;
      }
    }
    if (!Merged)
      Factors.emplace_back(Base, Exp);
  }

  if (Constant.isZero())
    return makeNumber(0); // 0 * x = 0, including 0 * oo in our domain
  if (SawInfinity)
    return makeInfinity();

  std::vector<ExprRef> Ops;
  for (auto &F : Factors) {
    if (F.second.isZero())
      continue;
    if (F.second.isOne())
      Ops.push_back(F.first);
    else
      Ops.push_back(makePow(F.first, makeNumber(F.second)));
  }
  for (ExprRef &Op : Opaque)
    Ops.push_back(std::move(Op));
  std::sort(Ops.begin(), Ops.end(), [](const ExprRef &A, const ExprRef &B) {
    return compareExpr(*A, *B) < 0;
  });
  if (Ops.empty())
    return makeNumber(Constant);
  if (!Constant.isOne())
    Ops.insert(Ops.begin(), makeNumber(Constant));
  if (Ops.size() == 1)
    return Ops[0];
  return makeRaw(ExprKind::Mul, std::string(), Rational(), std::move(Ops));
}

ExprRef granlog::makePow(ExprRef Base, ExprRef Exponent) {
  if (Exponent->isZero())
    return makeNumber(1);
  if (Exponent->isOne())
    return Base;
  if (Base->isInfinity() || Exponent->isInfinity())
    return makeInfinity();
  if (Base->isNumber() && Exponent->isNumber() &&
      Exponent->number().isInteger())
    return makeNumber(Base->number().pow(Exponent->number().asInteger()));
  if (Base->isOne())
    return makeNumber(1);
  // (b^e1)^e2 = b^(e1*e2)
  if (Base->kind() == ExprKind::Pow)
    return makePow(Base->base(), makeMul(Base->exponent(), Exponent));
  return makeRaw(ExprKind::Pow, std::string(), Rational(),
                 {std::move(Base), std::move(Exponent)});
}

ExprRef granlog::makeLog2(ExprRef Arg) {
  if (Arg->isInfinity())
    return makeInfinity();
  if (Arg->isNumber()) {
    // Fold exact powers of two; clamp below 1 to 0 (our domain is [0,oo]).
    Rational V = Arg->number();
    if (V <= Rational(1))
      return makeNumber(0);
    if (V.isInteger()) {
      int64_t N = V.asInteger();
      if ((N & (N - 1)) == 0) {
        int64_t L = 0;
        while (N > 1) {
          N >>= 1;
          ++L;
        }
        return makeNumber(L);
      }
    }
  }
  return makeRaw(ExprKind::Log2, std::string(), Rational(),
                 {std::move(Arg)});
}

static ExprRef makeLattice(ExprKind Kind, std::vector<ExprRef> RawOps,
                           bool IsMax) {
  std::vector<ExprRef> Flat;
  for (const ExprRef &Op : RawOps)
    flattenInto(Kind, Op, Flat);
  std::optional<Rational> Numeric;
  std::vector<ExprRef> Ops;
  for (const ExprRef &Op : Flat) {
    if (Op->isInfinity()) {
      if (IsMax)
        return makeInfinity();
      continue; // min(oo, x) = x
    }
    if (Op->isNumber()) {
      if (!Numeric)
        Numeric = Op->number();
      else
        Numeric = IsMax ? std::max(*Numeric, Op->number())
                        : std::min(*Numeric, Op->number());
      continue;
    }
    bool Dup = false;
    for (const ExprRef &Seen : Ops)
      if (exprEqual(Seen, Op)) {
        Dup = true;
        break;
      }
    if (!Dup)
      Ops.push_back(Op);
  }
  // max(0, x) = x for non-negative expressions.
  if (Numeric && IsMax && Numeric->isZero() && !Ops.empty())
    Numeric.reset();
  if (Numeric)
    Ops.push_back(makeNumber(*Numeric));
  std::sort(Ops.begin(), Ops.end(), [](const ExprRef &A, const ExprRef &B) {
    return compareExpr(*A, *B) < 0;
  });
  if (Ops.empty())
    return IsMax ? makeNumber(0) : makeInfinity();
  if (Ops.size() == 1)
    return Ops[0];
  return makeRaw(Kind, std::string(), Rational(), std::move(Ops));
}

ExprRef granlog::makeMax(std::vector<ExprRef> Ops) {
  return makeLattice(ExprKind::Max, std::move(Ops), /*IsMax=*/true);
}

ExprRef granlog::makeMin(std::vector<ExprRef> Ops) {
  return makeLattice(ExprKind::Min, std::move(Ops), /*IsMax=*/false);
}
