//===- expr/ExprOps.cpp - Traversals, evaluation, polynomials -------------===//
//
// Interned expressions are DAGs with heavy sharing (the same subexpression
// is one node no matter how often it occurs), so the recursive traversals
// here are *identity-memoized*: each carries a per-call map keyed by node
// address, turning what used to be an O(tree) walk — exponential during
// recurrence unfolding — into an O(distinct-nodes) walk.  The per-node
// Bloom filters over variable/call names prune entire subDAGs that cannot
// contain the searched name.  Small expressions (treeSize() below a
// threshold) skip the memo table: a plain walk is cheaper than hashing.
//
//===----------------------------------------------------------------------===//

#include "expr/Expr.h"

#include "expr/ExprInterner.h"

#include <cmath>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

using namespace granlog;

namespace {

/// Traversals switch from plain recursion to an identity-keyed memo once
/// the *tree* is larger than this; below it the hash table costs more
/// than it saves.
constexpr uint64_t MemoThreshold = 64;

/// Per-traversal memo traffic, flushed to the process-global expr.memo.*
/// counters on scope exit (one atomic add per traversal, not per node).
struct MemoCounts {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  ~MemoCounts() { ExprInterner::global().recordMemo(Hits, Misses); }
};

/// Occurrence walk shared by containsVar/containsCall.  \p Bit is the
/// Bloom bit of the searched name, \p Bloom selects which filter to test,
/// \p Match decides at a node.  \p Visited (when non-null) marks nodes
/// already proven clean so each DAG node is walked once.
template <typename BloomFn, typename MatchFn>
bool occursWalk(const Expr *E, uint64_t Bit, const BloomFn &Bloom,
                const MatchFn &Match,
                std::unordered_set<const Expr *> *Visited,
                MemoCounts &MC) {
  if (Match(E))
    return true;
  for (const ExprRef &Op : E->operands()) {
    if (!(Bloom(Op.get()) & Bit))
      continue; // proven absent below Op
    if (Visited) {
      if (!Visited->insert(Op.get()).second) {
        ++MC.Hits;
        continue; // already walked: it was clean
      }
      ++MC.Misses;
    }
    if (occursWalk(Op.get(), Bit, Bloom, Match, Visited, MC))
      return true;
  }
  return false;
}

template <typename BloomFn, typename MatchFn>
bool occurs(const ExprRef &E, const std::string &Name, const BloomFn &Bloom,
            const MatchFn &Match) {
  uint64_t Bit = exprNameBloomBit(Name);
  if (!(Bloom(E.get()) & Bit))
    return false;
  MemoCounts MC;
  if (E->treeSize() <= MemoThreshold)
    return occursWalk(E.get(), Bit, Bloom, Match, nullptr, MC);
  std::unordered_set<const Expr *> Visited;
  return occursWalk(E.get(), Bit, Bloom, Match, &Visited, MC);
}

} // namespace

bool granlog::containsVar(const ExprRef &E, const std::string &Name) {
  return occurs(
      E, Name, [](const Expr *X) { return X->varBloom(); },
      [&](const Expr *X) { return X->isVar() && X->name() == Name; });
}

bool granlog::containsCall(const ExprRef &E, const std::string &Name) {
  return occurs(
      E, Name, [](const Expr *X) { return X->callBloom(); },
      [&](const Expr *X) {
        return X->kind() == ExprKind::Call && X->name() == Name;
      });
}

bool granlog::containsAnyCall(const ExprRef &E) {
  return E->hasCall(); // precomputed at intern time
}

namespace {

/// Rebuilds \p E with every operand mapped through \p Map.  Re-runs the
/// simplifying factories so the result is canonical again.  Unchanged
/// operands are detected by index identity (exact under interning).
template <typename MapFn>
ExprRef rebuild(const ExprRef &E, const MapFn &Map) {
  std::vector<ExprRef> Ops;
  Ops.reserve(E->operands().size());
  bool Changed = false;
  for (const ExprRef &Op : E->operands()) {
    ExprRef M = Map(Op);
    Changed |= (M != Op);
    Ops.push_back(std::move(M));
  }
  if (!Changed)
    return E;
  switch (E->kind()) {
  case ExprKind::Add:
    return makeAdd(std::move(Ops));
  case ExprKind::Mul:
    return makeMul(std::move(Ops));
  case ExprKind::Pow:
    return makePow(Ops[0], Ops[1]);
  case ExprKind::Log2:
    return makeLog2(Ops[0]);
  case ExprKind::Max:
    return makeMax(std::move(Ops));
  case ExprKind::Min:
    return makeMin(std::move(Ops));
  case ExprKind::Call:
    return makeCall(E->name(), std::move(Ops));
  default:
    assert(false && "leaf kinds have no operands");
    return E;
  }
}

using RewriteMemo = std::unordered_map<const Expr *, ExprRef>;

struct SubstVarCtx {
  const std::string &Name;
  const ExprRef &Replacement;
  uint64_t Bit;
  RewriteMemo *Memo = nullptr;
  MemoCounts MC;
};

ExprRef substVarWalk(const ExprRef &E, SubstVarCtx &Ctx) {
  if (!(E->varBloom() & Ctx.Bit))
    return E; // Name proven absent: nothing to do below here
  if (E->isVar())
    return E->name() == Ctx.Name ? Ctx.Replacement : E;
  if (Ctx.Memo) {
    auto It = Ctx.Memo->find(E.get());
    if (It != Ctx.Memo->end()) {
      ++Ctx.MC.Hits;
      return It->second;
    }
    ++Ctx.MC.Misses;
  }
  ExprRef R = rebuild(
      E, [&Ctx](const ExprRef &Op) { return substVarWalk(Op, Ctx); });
  if (Ctx.Memo)
    Ctx.Memo->emplace(E.get(), R);
  return R;
}

} // namespace

ExprRef granlog::substituteVar(const ExprRef &E, const std::string &Name,
                               const ExprRef &Replacement) {
  SubstVarCtx Ctx{Name, Replacement, exprNameBloomBit(Name)};
  if (!(E->varBloom() & Ctx.Bit))
    return E;
  RewriteMemo Memo;
  if (E->treeSize() > MemoThreshold)
    Ctx.Memo = &Memo;
  return substVarWalk(E, Ctx);
}

namespace {

struct SubstCallCtx {
  const std::string &Name;
  const std::function<ExprRef(const std::vector<ExprRef> &)> &Unfold;
  uint64_t Bit;
  RewriteMemo *Memo = nullptr;
  MemoCounts MC;
};

ExprRef substCallWalk(const ExprRef &E, SubstCallCtx &Ctx) {
  if (!(E->callBloom() & Ctx.Bit))
    return E;
  if (Ctx.Memo) {
    auto It = Ctx.Memo->find(E.get());
    if (It != Ctx.Memo->end()) {
      ++Ctx.MC.Hits;
      return It->second;
    }
    ++Ctx.MC.Misses;
  }
  ExprRef R;
  if (E->kind() == ExprKind::Call && E->name() == Ctx.Name) {
    std::vector<ExprRef> Args;
    Args.reserve(E->operands().size());
    for (const ExprRef &A : E->operands())
      Args.push_back(substCallWalk(A, Ctx));
    R = Ctx.Unfold(Args);
  } else {
    R = rebuild(
        E, [&Ctx](const ExprRef &Op) { return substCallWalk(Op, Ctx); });
  }
  if (Ctx.Memo)
    Ctx.Memo->emplace(E.get(), R);
  return R;
}

} // namespace

ExprRef granlog::substituteCall(
    const ExprRef &E, const std::string &Name,
    const std::function<ExprRef(const std::vector<ExprRef> &)> &Unfold) {
  SubstCallCtx Ctx{Name, Unfold, exprNameBloomBit(Name)};
  if (!(E->callBloom() & Ctx.Bit))
    return E;
  RewriteMemo Memo;
  if (E->treeSize() > MemoThreshold)
    Ctx.Memo = &Memo;
  return substCallWalk(E, Ctx);
}

namespace {

struct EvalCtx {
  const std::map<std::string, double> &Env;
  std::unordered_map<const Expr *, std::optional<double>> *Memo = nullptr;
  MemoCounts MC;
};

std::optional<double> evalWalk(const ExprRef &E, EvalCtx &Ctx) {
  switch (E->kind()) {
  case ExprKind::Number:
    return E->number().asDouble();
  case ExprKind::Var: {
    auto It = Ctx.Env.find(E->name());
    if (It == Ctx.Env.end())
      return std::nullopt;
    return It->second;
  }
  case ExprKind::Infinity:
    return HUGE_VAL;
  default:
    break;
  }
  if (Ctx.Memo) {
    auto It = Ctx.Memo->find(E.get());
    if (It != Ctx.Memo->end()) {
      ++Ctx.MC.Hits;
      return It->second;
    }
    ++Ctx.MC.Misses;
  }
  std::optional<double> R;
  switch (E->kind()) {
  case ExprKind::Call:
    R = std::nullopt;
    break;
  case ExprKind::Add: {
    double Sum = 0;
    R = 0.0;
    for (const ExprRef &Op : E->operands()) {
      std::optional<double> V = evalWalk(Op, Ctx);
      if (!V) {
        R = std::nullopt;
        break;
      }
      Sum += *V;
      R = Sum;
    }
    break;
  }
  case ExprKind::Mul: {
    double Product = 1;
    R = 1.0;
    for (const ExprRef &Op : E->operands()) {
      std::optional<double> V = evalWalk(Op, Ctx);
      if (!V) {
        R = std::nullopt;
        break;
      }
      Product *= *V;
      R = Product;
    }
    break;
  }
  case ExprKind::Pow: {
    std::optional<double> B = evalWalk(E->base(), Ctx);
    std::optional<double> X = evalWalk(E->exponent(), Ctx);
    R = B && X ? std::optional<double>(std::pow(*B, *X)) : std::nullopt;
    break;
  }
  case ExprKind::Log2: {
    std::optional<double> A = evalWalk(E->base(), Ctx);
    if (A)
      R = *A <= 1.0 ? 0.0 : std::log2(*A);
    else
      R = std::nullopt;
    break;
  }
  case ExprKind::Max: {
    double M = -HUGE_VAL;
    R = M;
    for (const ExprRef &Op : E->operands()) {
      std::optional<double> V = evalWalk(Op, Ctx);
      if (!V) {
        R = std::nullopt;
        break;
      }
      M = std::max(M, *V);
      R = M;
    }
    break;
  }
  case ExprKind::Min: {
    double M = HUGE_VAL;
    R = M;
    for (const ExprRef &Op : E->operands()) {
      std::optional<double> V = evalWalk(Op, Ctx);
      if (!V) {
        R = std::nullopt;
        break;
      }
      M = std::min(M, *V);
      R = M;
    }
    break;
  }
  default:
    assert(false && "unknown expr kind");
    R = std::nullopt;
    break;
  }
  if (Ctx.Memo)
    Ctx.Memo->emplace(E.get(), R);
  return R;
}

} // namespace

std::optional<double>
granlog::evaluate(const ExprRef &E, const std::map<std::string, double> &Env) {
  EvalCtx Ctx{Env};
  std::unordered_map<const Expr *, std::optional<double>> Memo;
  if (E->treeSize() > MemoThreshold)
    Ctx.Memo = &Memo;
  return evalWalk(E, Ctx);
}

namespace {

/// Adds two coefficient vectors.
std::vector<ExprRef> polyAdd(const std::vector<ExprRef> &A,
                             const std::vector<ExprRef> &B) {
  std::vector<ExprRef> R(std::max(A.size(), B.size()));
  for (size_t I = 0; I != R.size(); ++I) {
    std::vector<ExprRef> Parts;
    if (I < A.size())
      Parts.push_back(A[I]);
    if (I < B.size())
      Parts.push_back(B[I]);
    R[I] = Parts.size() == 1 ? Parts[0] : makeAdd(std::move(Parts));
  }
  return R;
}

/// Convolves two coefficient vectors.
std::vector<ExprRef> polyMul(const std::vector<ExprRef> &A,
                             const std::vector<ExprRef> &B) {
  std::vector<ExprRef> R(A.size() + B.size() - 1, makeNumber(0));
  for (size_t I = 0; I != A.size(); ++I)
    for (size_t J = 0; J != B.size(); ++J)
      R[I + J] = makeAdd(R[I + J], makeMul(A[I], B[J]));
  return R;
}

void polyTrim(std::vector<ExprRef> &P) {
  while (P.size() > 1 && P.back()->isZero())
    P.pop_back();
}

using PolyResult = std::optional<std::vector<ExprRef>>;

struct PolyCtx {
  const std::string &Var;
  uint64_t Bit;
  std::unordered_map<const Expr *, PolyResult> *Memo = nullptr;
  MemoCounts MC;
};

PolyResult polyWalk(const ExprRef &E, PolyCtx &Ctx) {
  if (!(E->varBloom() & Ctx.Bit) || !containsVar(E, Ctx.Var))
    return std::vector<ExprRef>{E}; // constant in Var
  if (Ctx.Memo) {
    auto It = Ctx.Memo->find(E.get());
    if (It != Ctx.Memo->end()) {
      ++Ctx.MC.Hits;
      return It->second;
    }
    ++Ctx.MC.Misses;
  }
  PolyResult R;
  switch (E->kind()) {
  case ExprKind::Var:
    R = std::vector<ExprRef>{makeNumber(0), makeNumber(1)};
    break;
  case ExprKind::Add: {
    std::vector<ExprRef> Acc{makeNumber(0)};
    R = std::nullopt;
    bool OK = true;
    for (const ExprRef &Op : E->operands()) {
      PolyResult P = polyWalk(Op, Ctx);
      if (!P) {
        OK = false;
        break;
      }
      Acc = polyAdd(Acc, *P);
    }
    if (OK) {
      polyTrim(Acc);
      R = std::move(Acc);
    }
    break;
  }
  case ExprKind::Mul: {
    std::vector<ExprRef> Acc{makeNumber(1)};
    R = std::nullopt;
    bool OK = true;
    for (const ExprRef &Op : E->operands()) {
      PolyResult P = polyWalk(Op, Ctx);
      if (!P) {
        OK = false;
        break;
      }
      Acc = polyMul(Acc, *P);
    }
    if (OK) {
      polyTrim(Acc);
      R = std::move(Acc);
    }
    break;
  }
  case ExprKind::Pow: {
    R = std::nullopt;
    if (containsVar(E->exponent(), Ctx.Var))
      break;
    if (!E->exponent()->isNumber() || !E->exponent()->number().isInteger() ||
        E->exponent()->number().isNegative())
      break;
    PolyResult Base = polyWalk(E->base(), Ctx);
    if (!Base)
      break;
    int64_t N = E->exponent()->number().asInteger();
    std::vector<ExprRef> Acc{makeNumber(1)};
    for (int64_t I = 0; I != N; ++I)
      Acc = polyMul(Acc, *Base);
    polyTrim(Acc);
    R = std::move(Acc);
    break;
  }
  default:
    // Var occurs under Log2 / Max / Min / Call: not polynomial.
    R = std::nullopt;
    break;
  }
  if (Ctx.Memo)
    Ctx.Memo->emplace(E.get(), R);
  return R;
}

} // namespace

std::optional<std::vector<ExprRef>>
granlog::polynomialIn(const ExprRef &E, const std::string &Var) {
  PolyCtx Ctx{Var, exprNameBloomBit(Var)};
  std::unordered_map<const Expr *, PolyResult> Memo;
  if (E->treeSize() > MemoThreshold)
    Ctx.Memo = &Memo;
  return polyWalk(E, Ctx);
}

ExprRef granlog::polynomialExpr(const std::vector<ExprRef> &Coeffs,
                                const std::string &Var) {
  std::vector<ExprRef> Terms;
  ExprRef V = makeVar(Var);
  for (size_t Degree = 0; Degree != Coeffs.size(); ++Degree) {
    if (Coeffs[Degree]->isZero())
      continue;
    if (Degree == 0) {
      Terms.push_back(Coeffs[0]);
      continue;
    }
    ExprRef P = Degree == 1
                    ? V
                    : makePow(V, makeNumber(static_cast<int64_t>(Degree)));
    Terms.push_back(makeMul(Coeffs[Degree], P));
  }
  if (Terms.empty())
    return makeNumber(0);
  return makeAdd(std::move(Terms));
}

const std::vector<Rational> &granlog::powerSumPolynomial(unsigned P) {
  // S_p(n) = sum_{j=1}^n j^p satisfies
  //   (p+1) S_p(n) = (n+1)^{p+1} - 1 - sum_{k<p} C(p+1, k) S_k(n).
  //
  // Grown under a lock (concurrent SCC jobs solve recurrences in
  // parallel); a deque keeps row references stable while later rows are
  // appended, and rows are immutable once pushed.
  static std::mutex CacheMutex;
  static std::deque<std::vector<Rational>> Cache;
  std::lock_guard<std::mutex> Lock(CacheMutex);
  while (Cache.size() <= P) {
    unsigned Q = static_cast<unsigned>(Cache.size());
    // Binomial row for exponent Q+1.
    std::vector<Rational> Binom(Q + 2);
    Binom[0] = Rational(1);
    for (unsigned K = 1; K <= Q + 1; ++K)
      Binom[K] = Binom[K - 1] * Rational(static_cast<int64_t>(Q + 2 - K)) /
                 Rational(static_cast<int64_t>(K));
    // (n+1)^{Q+1} - 1 as coefficients in n.
    std::vector<Rational> R(Q + 2, Rational(0));
    for (unsigned K = 0; K <= Q + 1; ++K)
      R[K] = Binom[Q + 1 - K]; // coefficient of n^K in (n+1)^{Q+1}
    R[0] -= Rational(1);
    // Subtract C(Q+1, k) * S_k for k < Q.
    for (unsigned K = 0; K < Q; ++K) {
      const std::vector<Rational> &SK = Cache[K];
      for (size_t I = 0; I != SK.size(); ++I)
        R[I] -= Binom[K] * SK[I];
    }
    Rational Div(static_cast<int64_t>(Q + 1));
    for (Rational &C : R)
      C /= Div;
    Cache.push_back(std::move(R));
  }
  return Cache[P];
}

ExprRef granlog::sumPolynomial(const std::vector<ExprRef> &Coeffs,
                               const std::string &Var) {
  std::vector<ExprRef> Result{makeNumber(0)};
  for (size_t P = 0; P != Coeffs.size(); ++P) {
    const std::vector<Rational> &S = powerSumPolynomial(static_cast<unsigned>(P));
    std::vector<ExprRef> Scaled(S.size());
    for (size_t I = 0; I != S.size(); ++I)
      Scaled[I] = makeMul(makeNumber(S[I]), Coeffs[P]);
    Result = polyAdd(Result, Scaled);
  }
  polyTrim(Result);
  return polynomialExpr(Result, Var);
}

namespace {

void writeExpr(const ExprRef &E, std::string &Out, int Prec);

void writeOperands(const ExprRef &E, std::string &Out, const char *Sep,
                   int Prec) {
  bool First = true;
  for (const ExprRef &Op : E->operands()) {
    if (!First)
      Out += Sep;
    First = false;
    writeExpr(Op, Out, Prec);
  }
}

/// Precedence levels: 0 add, 1 mul, 2 pow/primary.
void writeExpr(const ExprRef &E, std::string &Out, int Prec) {
  switch (E->kind()) {
  case ExprKind::Number: {
    // Negative constants only need parentheses inside products/powers.
    bool Neg = E->number().isNegative();
    if (Neg && Prec > 1)
      Out += '(';
    Out += E->number().str();
    if (Neg && Prec > 1)
      Out += ')';
    return;
  }
  case ExprKind::Var:
    Out += E->name();
    return;
  case ExprKind::Infinity:
    Out += "inf";
    return;
  case ExprKind::Add: {
    if (Prec > 0)
      Out += '(';
    writeOperands(E, Out, " + ", 1);
    if (Prec > 0)
      Out += ')';
    return;
  }
  case ExprKind::Mul: {
    if (Prec > 1)
      Out += '(';
    writeOperands(E, Out, "*", 2);
    if (Prec > 1)
      Out += ')';
    return;
  }
  case ExprKind::Pow: {
    writeExpr(E->base(), Out, 2);
    Out += '^';
    writeExpr(E->exponent(), Out, 2);
    return;
  }
  case ExprKind::Log2:
    Out += "log2(";
    writeExpr(E->base(), Out, 0);
    Out += ')';
    return;
  case ExprKind::Max:
    Out += "max(";
    writeOperands(E, Out, ", ", 0);
    Out += ')';
    return;
  case ExprKind::Min:
    Out += "min(";
    writeOperands(E, Out, ", ", 0);
    Out += ')';
    return;
  case ExprKind::Call: {
    Out += E->name();
    Out += '(';
    writeOperands(E, Out, ", ", 0);
    Out += ')';
    return;
  }
  }
  assert(false && "unknown expr kind");
}

} // namespace

std::string granlog::exprText(const ExprRef &E) {
  std::string Out;
  writeExpr(E, Out, 0);
  return Out;
}
