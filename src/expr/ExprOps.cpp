//===- expr/ExprOps.cpp - Traversals, evaluation, polynomials -------------===//

#include "expr/Expr.h"

#include <cmath>
#include <deque>
#include <mutex>

using namespace granlog;

bool granlog::containsVar(const ExprRef &E, const std::string &Name) {
  if (E->isVar())
    return E->name() == Name;
  for (const ExprRef &Op : E->operands())
    if (containsVar(Op, Name))
      return true;
  return false;
}

bool granlog::containsCall(const ExprRef &E, const std::string &Name) {
  if (E->kind() == ExprKind::Call && E->name() == Name)
    return true;
  for (const ExprRef &Op : E->operands())
    if (containsCall(Op, Name))
      return true;
  return false;
}

bool granlog::containsAnyCall(const ExprRef &E) {
  if (E->kind() == ExprKind::Call)
    return true;
  for (const ExprRef &Op : E->operands())
    if (containsAnyCall(Op))
      return true;
  return false;
}

namespace {

/// Rebuilds \p E with every operand mapped through \p Map.  Re-runs the
/// simplifying factories so the result is canonical again.
ExprRef rebuild(const ExprRef &E,
                const std::function<ExprRef(const ExprRef &)> &Map) {
  std::vector<ExprRef> Ops;
  Ops.reserve(E->operands().size());
  bool Changed = false;
  for (const ExprRef &Op : E->operands()) {
    ExprRef M = Map(Op);
    Changed |= (M != Op);
    Ops.push_back(std::move(M));
  }
  if (!Changed)
    return E;
  switch (E->kind()) {
  case ExprKind::Add:
    return makeAdd(std::move(Ops));
  case ExprKind::Mul:
    return makeMul(std::move(Ops));
  case ExprKind::Pow:
    return makePow(Ops[0], Ops[1]);
  case ExprKind::Log2:
    return makeLog2(Ops[0]);
  case ExprKind::Max:
    return makeMax(std::move(Ops));
  case ExprKind::Min:
    return makeMin(std::move(Ops));
  case ExprKind::Call:
    return makeCall(E->name(), std::move(Ops));
  default:
    assert(false && "leaf kinds have no operands");
    return E;
  }
}

} // namespace

ExprRef granlog::substituteVar(const ExprRef &E, const std::string &Name,
                               const ExprRef &Replacement) {
  if (E->isVar())
    return E->name() == Name ? Replacement : E;
  if (E->operands().empty())
    return E;
  return rebuild(E, [&](const ExprRef &Op) {
    return substituteVar(Op, Name, Replacement);
  });
}

ExprRef granlog::substituteCall(
    const ExprRef &E, const std::string &Name,
    const std::function<ExprRef(const std::vector<ExprRef> &)> &Unfold) {
  if (E->kind() == ExprKind::Call && E->name() == Name) {
    std::vector<ExprRef> Args;
    Args.reserve(E->operands().size());
    for (const ExprRef &A : E->operands())
      Args.push_back(substituteCall(A, Name, Unfold));
    return Unfold(Args);
  }
  if (E->operands().empty())
    return E;
  return rebuild(E, [&](const ExprRef &Op) {
    return substituteCall(Op, Name, Unfold);
  });
}

std::optional<double>
granlog::evaluate(const ExprRef &E, const std::map<std::string, double> &Env) {
  switch (E->kind()) {
  case ExprKind::Number:
    return E->number().asDouble();
  case ExprKind::Var: {
    auto It = Env.find(E->name());
    if (It == Env.end())
      return std::nullopt;
    return It->second;
  }
  case ExprKind::Infinity:
    return HUGE_VAL;
  case ExprKind::Call:
    return std::nullopt;
  case ExprKind::Add: {
    double Sum = 0;
    for (const ExprRef &Op : E->operands()) {
      std::optional<double> V = evaluate(Op, Env);
      if (!V)
        return std::nullopt;
      Sum += *V;
    }
    return Sum;
  }
  case ExprKind::Mul: {
    double Product = 1;
    for (const ExprRef &Op : E->operands()) {
      std::optional<double> V = evaluate(Op, Env);
      if (!V)
        return std::nullopt;
      Product *= *V;
    }
    return Product;
  }
  case ExprKind::Pow: {
    std::optional<double> B = evaluate(E->base(), Env);
    std::optional<double> X = evaluate(E->exponent(), Env);
    if (!B || !X)
      return std::nullopt;
    return std::pow(*B, *X);
  }
  case ExprKind::Log2: {
    std::optional<double> A = evaluate(E->base(), Env);
    if (!A)
      return std::nullopt;
    return *A <= 1.0 ? 0.0 : std::log2(*A);
  }
  case ExprKind::Max: {
    double M = -HUGE_VAL;
    for (const ExprRef &Op : E->operands()) {
      std::optional<double> V = evaluate(Op, Env);
      if (!V)
        return std::nullopt;
      M = std::max(M, *V);
    }
    return M;
  }
  case ExprKind::Min: {
    double M = HUGE_VAL;
    for (const ExprRef &Op : E->operands()) {
      std::optional<double> V = evaluate(Op, Env);
      if (!V)
        return std::nullopt;
      M = std::min(M, *V);
    }
    return M;
  }
  }
  assert(false && "unknown expr kind");
  return std::nullopt;
}

namespace {

/// Adds two coefficient vectors.
std::vector<ExprRef> polyAdd(const std::vector<ExprRef> &A,
                             const std::vector<ExprRef> &B) {
  std::vector<ExprRef> R(std::max(A.size(), B.size()));
  for (size_t I = 0; I != R.size(); ++I) {
    std::vector<ExprRef> Parts;
    if (I < A.size())
      Parts.push_back(A[I]);
    if (I < B.size())
      Parts.push_back(B[I]);
    R[I] = Parts.size() == 1 ? Parts[0] : makeAdd(std::move(Parts));
  }
  return R;
}

/// Convolves two coefficient vectors.
std::vector<ExprRef> polyMul(const std::vector<ExprRef> &A,
                             const std::vector<ExprRef> &B) {
  std::vector<ExprRef> R(A.size() + B.size() - 1, makeNumber(0));
  for (size_t I = 0; I != A.size(); ++I)
    for (size_t J = 0; J != B.size(); ++J)
      R[I + J] = makeAdd(R[I + J], makeMul(A[I], B[J]));
  return R;
}

void polyTrim(std::vector<ExprRef> &P) {
  while (P.size() > 1 && P.back()->isZero())
    P.pop_back();
}

} // namespace

std::optional<std::vector<ExprRef>>
granlog::polynomialIn(const ExprRef &E, const std::string &Var) {
  if (!containsVar(E, Var))
    return std::vector<ExprRef>{E};
  switch (E->kind()) {
  case ExprKind::Var:
    return std::vector<ExprRef>{makeNumber(0), makeNumber(1)};
  case ExprKind::Add: {
    std::vector<ExprRef> R{makeNumber(0)};
    for (const ExprRef &Op : E->operands()) {
      std::optional<std::vector<ExprRef>> P = polynomialIn(Op, Var);
      if (!P)
        return std::nullopt;
      R = polyAdd(R, *P);
    }
    polyTrim(R);
    return R;
  }
  case ExprKind::Mul: {
    std::vector<ExprRef> R{makeNumber(1)};
    for (const ExprRef &Op : E->operands()) {
      std::optional<std::vector<ExprRef>> P = polynomialIn(Op, Var);
      if (!P)
        return std::nullopt;
      R = polyMul(R, *P);
    }
    polyTrim(R);
    return R;
  }
  case ExprKind::Pow: {
    if (containsVar(E->exponent(), Var))
      return std::nullopt;
    if (!E->exponent()->isNumber() || !E->exponent()->number().isInteger() ||
        E->exponent()->number().isNegative())
      return std::nullopt;
    std::optional<std::vector<ExprRef>> Base = polynomialIn(E->base(), Var);
    if (!Base)
      return std::nullopt;
    int64_t N = E->exponent()->number().asInteger();
    std::vector<ExprRef> R{makeNumber(1)};
    for (int64_t I = 0; I != N; ++I)
      R = polyMul(R, *Base);
    polyTrim(R);
    return R;
  }
  default:
    // Var occurs under Log2 / Max / Min / Call: not polynomial.
    return std::nullopt;
  }
}

ExprRef granlog::polynomialExpr(const std::vector<ExprRef> &Coeffs,
                                const std::string &Var) {
  std::vector<ExprRef> Terms;
  ExprRef V = makeVar(Var);
  for (size_t Degree = 0; Degree != Coeffs.size(); ++Degree) {
    if (Coeffs[Degree]->isZero())
      continue;
    if (Degree == 0) {
      Terms.push_back(Coeffs[0]);
      continue;
    }
    ExprRef P = Degree == 1
                    ? V
                    : makePow(V, makeNumber(static_cast<int64_t>(Degree)));
    Terms.push_back(makeMul(Coeffs[Degree], P));
  }
  if (Terms.empty())
    return makeNumber(0);
  return makeAdd(std::move(Terms));
}

const std::vector<Rational> &granlog::powerSumPolynomial(unsigned P) {
  // S_p(n) = sum_{j=1}^n j^p satisfies
  //   (p+1) S_p(n) = (n+1)^{p+1} - 1 - sum_{k<p} C(p+1, k) S_k(n).
  //
  // Grown under a lock (concurrent SCC jobs solve recurrences in
  // parallel); a deque keeps row references stable while later rows are
  // appended, and rows are immutable once pushed.
  static std::mutex CacheMutex;
  static std::deque<std::vector<Rational>> Cache;
  std::lock_guard<std::mutex> Lock(CacheMutex);
  while (Cache.size() <= P) {
    unsigned Q = static_cast<unsigned>(Cache.size());
    // Binomial row for exponent Q+1.
    std::vector<Rational> Binom(Q + 2);
    Binom[0] = Rational(1);
    for (unsigned K = 1; K <= Q + 1; ++K)
      Binom[K] = Binom[K - 1] * Rational(static_cast<int64_t>(Q + 2 - K)) /
                 Rational(static_cast<int64_t>(K));
    // (n+1)^{Q+1} - 1 as coefficients in n.
    std::vector<Rational> R(Q + 2, Rational(0));
    for (unsigned K = 0; K <= Q + 1; ++K)
      R[K] = Binom[Q + 1 - K]; // coefficient of n^K in (n+1)^{Q+1}
    R[0] -= Rational(1);
    // Subtract C(Q+1, k) * S_k for k < Q.
    for (unsigned K = 0; K < Q; ++K) {
      const std::vector<Rational> &SK = Cache[K];
      for (size_t I = 0; I != SK.size(); ++I)
        R[I] -= Binom[K] * SK[I];
    }
    Rational Div(static_cast<int64_t>(Q + 1));
    for (Rational &C : R)
      C /= Div;
    Cache.push_back(std::move(R));
  }
  return Cache[P];
}

ExprRef granlog::sumPolynomial(const std::vector<ExprRef> &Coeffs,
                               const std::string &Var) {
  std::vector<ExprRef> Result{makeNumber(0)};
  for (size_t P = 0; P != Coeffs.size(); ++P) {
    const std::vector<Rational> &S = powerSumPolynomial(static_cast<unsigned>(P));
    std::vector<ExprRef> Scaled(S.size());
    for (size_t I = 0; I != S.size(); ++I)
      Scaled[I] = makeMul(makeNumber(S[I]), Coeffs[P]);
    Result = polyAdd(Result, Scaled);
  }
  polyTrim(Result);
  return polynomialExpr(Result, Var);
}

namespace {

void writeExpr(const ExprRef &E, std::string &Out, int Prec);

void writeOperands(const ExprRef &E, std::string &Out, const char *Sep,
                   int Prec) {
  bool First = true;
  for (const ExprRef &Op : E->operands()) {
    if (!First)
      Out += Sep;
    First = false;
    writeExpr(Op, Out, Prec);
  }
}

/// Precedence levels: 0 add, 1 mul, 2 pow/primary.
void writeExpr(const ExprRef &E, std::string &Out, int Prec) {
  switch (E->kind()) {
  case ExprKind::Number: {
    // Negative constants only need parentheses inside products/powers.
    bool Neg = E->number().isNegative();
    if (Neg && Prec > 1)
      Out += '(';
    Out += E->number().str();
    if (Neg && Prec > 1)
      Out += ')';
    return;
  }
  case ExprKind::Var:
    Out += E->name();
    return;
  case ExprKind::Infinity:
    Out += "inf";
    return;
  case ExprKind::Add: {
    if (Prec > 0)
      Out += '(';
    writeOperands(E, Out, " + ", 1);
    if (Prec > 0)
      Out += ')';
    return;
  }
  case ExprKind::Mul: {
    if (Prec > 1)
      Out += '(';
    writeOperands(E, Out, "*", 2);
    if (Prec > 1)
      Out += ')';
    return;
  }
  case ExprKind::Pow: {
    writeExpr(E->base(), Out, 2);
    Out += '^';
    writeExpr(E->exponent(), Out, 2);
    return;
  }
  case ExprKind::Log2:
    Out += "log2(";
    writeExpr(E->base(), Out, 0);
    Out += ')';
    return;
  case ExprKind::Max:
    Out += "max(";
    writeOperands(E, Out, ", ", 0);
    Out += ')';
    return;
  case ExprKind::Min:
    Out += "min(";
    writeOperands(E, Out, ", ", 0);
    Out += ')';
    return;
  case ExprKind::Call: {
    Out += E->name();
    Out += '(';
    writeOperands(E, Out, ", ", 0);
    Out += ')';
    return;
  }
  }
  assert(false && "unknown expr kind");
}

} // namespace

std::string granlog::exprText(const ExprRef &E) {
  std::string Out;
  writeExpr(E, Out, 0);
  return Out;
}
