//===- expr/ExprInterner.cpp - The unique table ---------------------------===//

#include "expr/ExprInterner.h"

#include "support/Budget.h"
#include "support/Stats.h"

namespace granlog {

namespace {

/// splitmix64-style bit mixer: cheap, and good enough that bucket lists
/// in the unique table stay singletons.
inline uint64_t mix(uint64_t H) {
  H ^= H >> 30;
  H *= 0xbf58476d1ce4e5b9ULL;
  H ^= H >> 27;
  H *= 0x94d049bb133111ebULL;
  H ^= H >> 31;
  return H;
}

inline size_t combine(size_t Seed, uint64_t V) {
  return static_cast<size_t>(mix(Seed ^ (V + 0x9e3779b97f4a7c15ULL +
                                         (uint64_t(Seed) << 6) +
                                         (uint64_t(Seed) >> 2))));
}

} // namespace

size_t exprShapeHash(ExprKind Kind, const std::string &Name,
                     const Rational &Value,
                     const std::vector<ExprRef> &Ops) {
  size_t H = combine(0x9e3779b9, static_cast<uint64_t>(Kind));
  switch (Kind) {
  case ExprKind::Number:
    H = combine(H, static_cast<uint64_t>(Value.numerator()));
    H = combine(H, static_cast<uint64_t>(Value.denominator()));
    break;
  case ExprKind::Var:
  case ExprKind::Call:
    H = combine(H, std::hash<std::string>{}(Name));
    break;
  default:
    break;
  }
  H = combine(H, Ops.size());
  for (const ExprRef &Op : Ops)
    H = combine(H, Op->hash());
  return H;
}

} // namespace granlog

using namespace granlog;

Expr::Expr(ExprKind Kind, std::string Name, Rational Value,
           std::vector<ExprRef> Ops)
    : Kind(Kind), Name(std::move(Name)), Value(Value),
      Ops(std::move(Ops)) {
  HashVal = exprShapeHash(Kind, this->Name, Value, this->Ops);
  VarBloomVal = Kind == ExprKind::Var ? exprNameBloomBit(this->Name) : 0;
  CallBloomVal = Kind == ExprKind::Call ? exprNameBloomBit(this->Name) : 0;
  TreeSizeVal = 1;
  uint32_t MaxChildDepth = 0;
  for (const ExprRef &Op : this->Ops) {
    VarBloomVal |= Op->VarBloomVal;
    CallBloomVal |= Op->CallBloomVal;
    MaxChildDepth = std::max(MaxChildDepth, Op->DepthVal);
    // Saturating add: deeply shared expressions have astronomically large
    // tree sizes while their DAG stays small.
    uint64_t T = TreeSizeVal + Op->TreeSizeVal;
    TreeSizeVal = T < TreeSizeVal ? UINT64_MAX : T;
  }
  DepthVal = MaxChildDepth + 1;
}

ExprRef ExprInterner::makeNode(ExprKind Kind, std::string Name,
                               Rational Value, std::vector<ExprRef> Ops) {
  return ExprRef(
      new Expr(Kind, std::move(Name), Value, std::move(Ops)));
}

ExprInterner::ExprInterner() {
  for (int64_t I = SmallIntMin; I <= SmallIntMax; ++I)
    SmallInts[static_cast<size_t>(I - SmallIntMin)] =
        makeNode(ExprKind::Number, std::string(), Rational(I), {});
  InfinityNode =
      makeNode(ExprKind::Infinity, std::string(), Rational(), {});
}

ExprInterner &ExprInterner::global() {
  // Leaked intentionally: nodes must outlive every static ExprRef holder,
  // and identity-keyed caches rely on addresses never being recycled.
  static ExprInterner *I = new ExprInterner();
  return *I;
}

ExprRef ExprInterner::internVar(std::string Name) {
  {
    std::shared_lock<std::shared_mutex> Lock(VarMutex);
    auto It = Vars.find(Name);
    if (It != Vars.end()) {
      InternHits.fetch_add(1, std::memory_order_relaxed);
      return It->second;
    }
  }
  std::unique_lock<std::shared_mutex> Lock(VarMutex);
  auto [It, Inserted] = Vars.try_emplace(Name, nullptr);
  if (Inserted) {
    It->second = makeNode(ExprKind::Var, std::move(Name), Rational(), {});
    InternMisses.fetch_add(1, std::memory_order_relaxed);
  } else {
    InternHits.fetch_add(1, std::memory_order_relaxed);
  }
  return It->second;
}

namespace {

/// Shallow structural equality against an already-interned candidate:
/// operands compare by pointer because they are interned themselves.
bool shallowEqual(const Expr &E, ExprKind Kind, const std::string &Name,
                  const Rational &Value, const std::vector<ExprRef> &Ops) {
  if (E.kind() != Kind || E.operands().size() != Ops.size())
    return false;
  for (size_t I = 0; I != Ops.size(); ++I)
    if (E.operands()[I] != Ops[I])
      return false;
  switch (Kind) {
  case ExprKind::Number:
    return E.number() == Value;
  case ExprKind::Var:
  case ExprKind::Call:
    return E.name() == Name;
  default:
    return true;
  }
}

} // namespace

ExprRef ExprInterner::internInTable(size_t Hash, ExprKind Kind,
                                    std::string Name, Rational Value,
                                    std::vector<ExprRef> Ops) {
  Shard &S = Shards[Hash & (ShardCount - 1)];
  std::lock_guard<std::mutex> Lock(S.Mutex);
  std::vector<ExprRef> &Bucket = S.Buckets[Hash];
  for (const ExprRef &E : Bucket)
    if (shallowEqual(*E, Kind, Name, Value, Ops)) {
      InternHits.fetch_add(1, std::memory_order_relaxed);
      return E;
    }
  Bucket.push_back(
      makeNode(Kind, std::move(Name), Value, std::move(Ops)));
  InternMisses.fetch_add(1, std::memory_order_relaxed);
  return Bucket.back();
}

ExprRef ExprInterner::intern(ExprKind Kind, std::string Name,
                             Rational Value, std::vector<ExprRef> Ops) {
  // The ExprNodes budget odometer: every expression construction funnels
  // through here, and the charge counts *calls* (hit or miss alike), so
  // it depends only on the work the installed scope performed — never on
  // what other threads interned first.
  if (WorkMeter *M = currentWorkMeter())
    M->chargeExpr();
  switch (Kind) {
  case ExprKind::Number:
    if (Value.isInteger() && Value.numerator() >= SmallIntMin &&
        Value.numerator() <= SmallIntMax) {
      InternHits.fetch_add(1, std::memory_order_relaxed);
      return SmallInts[static_cast<size_t>(Value.numerator() -
                                           SmallIntMin)];
    }
    break;
  case ExprKind::Var:
    return internVar(std::move(Name));
  case ExprKind::Infinity:
    InternHits.fetch_add(1, std::memory_order_relaxed);
    return InfinityNode;
  default:
    break;
  }
  size_t Hash = exprShapeHash(Kind, Name, Value, Ops);
  return internInTable(Hash, Kind, std::move(Name), Value, std::move(Ops));
}

ExprInterner::Counters ExprInterner::counters() const {
  Counters C;
  C.InternHits = InternHits.load(std::memory_order_relaxed);
  C.InternMisses = InternMisses.load(std::memory_order_relaxed);
  // One node per miss, plus the eagerly seeded leaves.
  C.Entries = C.InternMisses +
              static_cast<uint64_t>(SmallInts.size()) + /*Infinity*/ 1;
  C.MemoHits = MemoHits.load(std::memory_order_relaxed);
  C.MemoMisses = MemoMisses.load(std::memory_order_relaxed);
  return C;
}

void granlog::snapshotExprCounters(StatsRegistry &Stats) {
  ExprInterner::Counters C = ExprInterner::global().counters();
  Stats.add("expr.intern.hit", C.InternHits);
  Stats.add("expr.intern.miss", C.InternMisses);
  Stats.add("expr.intern.entries", C.Entries);
  Stats.add("expr.memo.hit", C.MemoHits);
  Stats.add("expr.memo.miss", C.MemoMisses);
}
