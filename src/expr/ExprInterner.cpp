//===- expr/ExprInterner.cpp - The unique table and node arena ------------===//

#include "expr/ExprInterner.h"

#include "support/Budget.h"
#include "support/Stats.h"

#include <algorithm>

namespace granlog {

namespace detail {
// The arena chunk directory ExprRef::get() reads.  Zero-initialized at
// load; slots are written exactly once (release) when the interner maps a
// new chunk and never change afterwards.
std::atomic<uint64_t *> ExprChunks[ExprMaxChunks];
} // namespace detail

uint64_t exprShapeHash(ExprKind Kind, const std::string &Name,
                       const Rational &Value,
                       const std::vector<ExprRef> &Ops) {
  // Seeded FNV-1a over (kind, payload, arity, operand hashes).  Names
  // contribute their text hash — not their symbol id — so the value is
  // independent of interning order, and every step folds fixed
  // little-endian bytes, so it is identical on every platform.  This is
  // the exact value the node stores as Expr::hash().
  uint64_t H = fnv1a64Word(ExprHashSeed, static_cast<uint64_t>(Kind));
  switch (Kind) {
  case ExprKind::Number:
    H = fnv1a64Word(H, static_cast<uint64_t>(Value.numerator()));
    H = fnv1a64Word(H, static_cast<uint64_t>(Value.denominator()));
    break;
  case ExprKind::Var:
  case ExprKind::Call:
    H = fnv1a64Word(H, exprNameHash(Name));
    break;
  default:
    break;
  }
  H = fnv1a64Word(H, Ops.size());
  for (const ExprRef &Op : Ops)
    H = fnv1a64Word(H, Op->hash());
  return H;
}

// Out-of-line payload accessors: the tables live in the interner.
const Rational &Expr::number() const {
  assert(isNumber() && "not a number");
  return ExprInterner::global().rationalAt(Payload);
}

const std::string &Expr::name() const {
  assert((isVar() || kind() == ExprKind::Call) && "no name");
  return ExprInterner::global().symbolText(Payload);
}

} // namespace granlog

using namespace granlog;

//===----------------------------------------------------------------------===//
// Arena allocation
//===----------------------------------------------------------------------===//

uint32_t ExprInterner::allocateWords(size_t Words) {
  // A node is contiguous, so it must fit in one chunk.  The largest node
  // (HeaderBytes + arity refs) would need a 2^21-ary operator to overflow
  // a 2 MiB chunk; factories never build one.
  assert(Words <= (size_t(1) << detail::ExprChunkWordBits) &&
         "node larger than an arena chunk");
  uint64_t Start = ArenaCursor;
  // Never split a node across a chunk boundary: skip the remainder (the
  // waste is < one node per 2 MiB).
  if ((Start >> detail::ExprChunkWordBits) !=
      ((Start + Words - 1) >> detail::ExprChunkWordBits))
    Start = ((Start >> detail::ExprChunkWordBits) + 1)
            << detail::ExprChunkWordBits;
  uint64_t End = Start + Words;
  if (End > ArenaCapacityWords || End > 0xFFFFFFFFull)
    throw ExprArenaExhausted("node arena",
                             std::min<uint64_t>(ArenaCapacityWords,
                                                0xFFFFFFFFull));
  size_t Chunk = Start >> detail::ExprChunkWordBits;
  if (!detail::ExprChunks[Chunk].load(std::memory_order_relaxed))
    detail::ExprChunks[Chunk].store(
        new uint64_t[size_t(1) << detail::ExprChunkWordBits],
        std::memory_order_release);
  ArenaCursor = static_cast<uint32_t>(End);
  return static_cast<uint32_t>(Start);
}

ExprRef ExprInterner::allocateNode(uint64_t Hash, ExprKind Kind,
                                   uint32_t Payload,
                                   const std::vector<ExprRef> &Ops) {
  uint64_t VarBloom =
      Kind == ExprKind::Var ? exprNameBloomBit(symbolText(Payload)) : 0;
  uint64_t CallBloom =
      Kind == ExprKind::Call ? exprNameBloomBit(symbolText(Payload)) : 0;
  uint64_t TreeSize = 1;
  uint32_t MaxChildDepth = 0;
  for (const ExprRef &Op : Ops) {
    const Expr &O = *Op;
    VarBloom |= O.varBloom();
    CallBloom |= O.callBloom();
    MaxChildDepth = std::max(MaxChildDepth, O.depth());
    // Saturating add: deeply shared expressions have astronomically large
    // tree sizes while their DAG stays small.
    uint64_t T = TreeSize + O.treeSize();
    TreeSize = T < TreeSize ? UINT64_MAX : T;
  }
  // Depth saturates at its 28-bit packed width (unreachable in practice:
  // such a tree would exhaust the arena first).
  uint32_t Depth = std::min(MaxChildDepth + 1, (uint32_t(1) << 28) - 1);

  size_t Words = Expr::allocationWords(Ops.size());
  std::lock_guard<std::mutex> Lock(ArenaMutex);
  uint32_t Idx = allocateWords(Words);
  uint64_t *Chunk = detail::ExprChunks[Idx >> detail::ExprChunkWordBits].load(
      std::memory_order_relaxed);
  Expr *N = new (Chunk + (Idx & detail::ExprChunkWordMask))
      Expr(Hash, VarBloom, CallBloom, TreeSize, Kind, Depth,
           static_cast<uint32_t>(Ops.size()), Payload);
  std::copy(Ops.begin(), Ops.end(), N->ops());
  ArenaNodes.fetch_add(1, std::memory_order_relaxed);
  ArenaBytes.fetch_add(Words * 8, std::memory_order_relaxed);
  return ExprRef(Idx);
}

void ExprInterner::setArenaCapacityForTesting(uint64_t Words) {
  std::lock_guard<std::mutex> Lock(ArenaMutex);
  if (Words == 0)
    ArenaCapacityWords = uint64_t(1) << 32;
  else
    // Never below what is already allocated: outstanding refs stay valid.
    ArenaCapacityWords = std::max<uint64_t>(Words, ArenaCursor);
}

//===----------------------------------------------------------------------===//
// Symbol and rational tables
//===----------------------------------------------------------------------===//

const std::string &ExprInterner::symbolText(uint32_t Id) const {
  const std::string *Chunk =
      SymbolChunks[Id >> SymbolChunkBits].load(std::memory_order_acquire);
  return Chunk[Id & ((uint32_t(1) << SymbolChunkBits) - 1)];
}

uint32_t ExprInterner::internSymbol(const std::string &Name) {
  {
    std::shared_lock<std::shared_mutex> Lock(SymbolMutex);
    auto It = SymbolIds.find(std::string_view(Name));
    if (It != SymbolIds.end())
      return It->second;
  }
  std::unique_lock<std::shared_mutex> Lock(SymbolMutex);
  auto It = SymbolIds.find(std::string_view(Name));
  if (It != SymbolIds.end())
    return It->second;
  uint32_t Id = SymbolNext.load(std::memory_order_relaxed);
  size_t ChunkIdx = Id >> SymbolChunkBits;
  if (ChunkIdx >= SymbolMaxChunks)
    throw ExprArenaExhausted("symbol table",
                             uint64_t(SymbolMaxChunks) << SymbolChunkBits);
  std::string *Chunk =
      SymbolChunks[ChunkIdx].load(std::memory_order_relaxed);
  if (!Chunk) {
    Chunk = new std::string[size_t(1) << SymbolChunkBits];
    SymbolChunks[ChunkIdx].store(Chunk, std::memory_order_release);
  }
  // The slot (a std::string at a stable address — chunks never move) is
  // filled before the id escapes, so symbolText readers, who learn ids
  // only through synchronized channels, always see complete text.  The
  // dedupe map keys a view of the stored copy, not the caller's string.
  std::string &Slot = Chunk[Id & ((uint32_t(1) << SymbolChunkBits) - 1)];
  Slot = Name;
  SymbolIds.emplace(std::string_view(Slot), Id);
  SymbolNext.store(Id + 1, std::memory_order_release);
  return Id;
}

const Rational &ExprInterner::rationalAt(uint32_t Id) const {
  const Rational *Chunk =
      RationalChunks[Id >> RationalChunkBits].load(std::memory_order_acquire);
  return Chunk[Id & ((uint32_t(1) << RationalChunkBits) - 1)];
}

uint32_t ExprInterner::appendRational(const Rational &Value) {
  std::lock_guard<std::mutex> Lock(RationalMutex);
  uint32_t Id = RationalNext;
  size_t ChunkIdx = Id >> RationalChunkBits;
  if (ChunkIdx >= RationalMaxChunks)
    throw ExprArenaExhausted("rational table",
                             uint64_t(RationalMaxChunks)
                                 << RationalChunkBits);
  Rational *Chunk =
      RationalChunks[ChunkIdx].load(std::memory_order_relaxed);
  if (!Chunk) {
    Chunk = new Rational[size_t(1) << RationalChunkBits];
    RationalChunks[ChunkIdx].store(Chunk, std::memory_order_release);
  }
  Chunk[Id & ((uint32_t(1) << RationalChunkBits) - 1)] = Value;
  RationalNext = Id + 1;
  return Id;
}

//===----------------------------------------------------------------------===//
// Interning
//===----------------------------------------------------------------------===//

ExprInterner::ExprInterner() {
  // Seed the leaf caches.  These allocations define the first arena
  // nodes; they are not counted as intern misses (they happen before any
  // intern() call), but they are arena nodes like any other.
  for (int64_t I = SmallIntMin; I <= SmallIntMax; ++I) {
    Rational V(I);
    SmallInts[static_cast<size_t>(I - SmallIntMin)] =
        allocateNode(exprShapeHash(ExprKind::Number, std::string(), V, {}),
                     ExprKind::Number, appendRational(V), {});
  }
  InfinityNode = allocateNode(
      exprShapeHash(ExprKind::Infinity, std::string(), Rational(), {}),
      ExprKind::Infinity, 0, {});
}

ExprInterner &ExprInterner::global() {
  // Leaked intentionally: nodes must outlive every static ExprRef holder,
  // and identity-keyed caches rely on indices never being recycled.
  static ExprInterner *I = new ExprInterner();
  return *I;
}

ExprRef ExprInterner::internVar(std::string Name) {
  {
    std::shared_lock<std::shared_mutex> Lock(VarMutex);
    auto It = Vars.find(Name);
    if (It != Vars.end()) {
      InternHits.fetch_add(1, std::memory_order_relaxed);
      return It->second;
    }
  }
  std::unique_lock<std::shared_mutex> Lock(VarMutex);
  auto It = Vars.find(Name);
  if (It != Vars.end()) {
    InternHits.fetch_add(1, std::memory_order_relaxed);
    return It->second;
  }
  // Allocate before inserting: if the arena throws (ExprArenaExhausted),
  // the cache must not be left holding a null ref for this name.
  ExprRef N =
      allocateNode(exprShapeHash(ExprKind::Var, Name, Rational(), {}),
                   ExprKind::Var, internSymbol(Name), {});
  Vars.emplace(std::move(Name), N);
  InternMisses.fetch_add(1, std::memory_order_relaxed);
  return N;
}

namespace {

/// Shallow structural equality against an already-interned candidate:
/// operands compare by index, names by symbol id, because both are
/// interned themselves.
bool shallowEqual(const Expr &E, ExprKind Kind, uint32_t Payload,
                  const Rational &Value, const std::vector<ExprRef> &Ops) {
  if (E.kind() != Kind || E.arity() != Ops.size())
    return false;
  ExprSpan EOps = E.operands();
  for (size_t I = 0; I != Ops.size(); ++I)
    if (EOps[I] != Ops[I])
      return false;
  switch (Kind) {
  case ExprKind::Number:
    return E.number() == Value;
  case ExprKind::Var:
  case ExprKind::Call:
    return E.symbolId() == Payload;
  default:
    return true;
  }
}

} // namespace

ExprRef ExprInterner::internInTable(uint64_t Hash, ExprKind Kind,
                                    uint32_t Payload, const Rational &Value,
                                    const std::vector<ExprRef> &Ops) {
  Shard &S = Shards[Hash & (ShardCount - 1)];
  std::lock_guard<std::mutex> Lock(S.Mutex);
  std::vector<ExprRef> &Bucket = S.Buckets[Hash];
  for (const ExprRef &E : Bucket)
    if (shallowEqual(*E, Kind, Payload, Value, Ops)) {
      InternHits.fetch_add(1, std::memory_order_relaxed);
      return E;
    }
  if (Kind == ExprKind::Number)
    Payload = appendRational(Value);
  ExprRef N = allocateNode(Hash, Kind, Payload, Ops);
  Bucket.push_back(N);
  InternMisses.fetch_add(1, std::memory_order_relaxed);
  return N;
}

ExprRef ExprInterner::intern(ExprKind Kind, std::string Name,
                             Rational Value, std::vector<ExprRef> Ops) {
  // The ExprNodes budget odometer: every expression construction funnels
  // through here, and the charge counts *calls* (hit or miss alike), so
  // it depends only on the work the installed scope performed — never on
  // what other threads interned first.
  if (WorkMeter *M = currentWorkMeter())
    M->chargeExpr();
  uint32_t Payload = 0;
  switch (Kind) {
  case ExprKind::Number:
    if (Value.isInteger() && Value.numerator() >= SmallIntMin &&
        Value.numerator() <= SmallIntMax) {
      InternHits.fetch_add(1, std::memory_order_relaxed);
      return SmallInts[static_cast<size_t>(Value.numerator() -
                                           SmallIntMin)];
    }
    break;
  case ExprKind::Var:
    return internVar(std::move(Name));
  case ExprKind::Infinity:
    InternHits.fetch_add(1, std::memory_order_relaxed);
    return InfinityNode;
  case ExprKind::Call:
    Payload = internSymbol(Name);
    break;
  default:
    break;
  }
  uint64_t Hash = exprShapeHash(Kind, Name, Value, Ops);
  return internInTable(Hash, Kind, Payload, Value, Ops);
}

ExprInterner::Counters ExprInterner::counters() const {
  Counters C;
  C.InternHits = InternHits.load(std::memory_order_relaxed);
  C.InternMisses = InternMisses.load(std::memory_order_relaxed);
  // One node per miss, plus the eagerly seeded leaves — i.e. exactly the
  // arena population.
  C.Entries = ArenaNodes.load(std::memory_order_relaxed);
  C.MemoHits = MemoHits.load(std::memory_order_relaxed);
  C.MemoMisses = MemoMisses.load(std::memory_order_relaxed);
  C.ArenaNodes = C.Entries;
  C.ArenaBytes = ArenaBytes.load(std::memory_order_relaxed);
  C.SymbolCount = SymbolNext.load(std::memory_order_relaxed);
  return C;
}

void granlog::snapshotExprCounters(StatsRegistry &Stats) {
  ExprInterner::Counters C = ExprInterner::global().counters();
  Stats.add("expr.intern.hit", C.InternHits);
  Stats.add("expr.intern.miss", C.InternMisses);
  Stats.add("expr.intern.entries", C.Entries);
  Stats.add("expr.memo.hit", C.MemoHits);
  Stats.add("expr.memo.miss", C.MemoMisses);
  Stats.add("expr.arena.nodes", C.ArenaNodes);
  Stats.add("expr.arena.bytes", C.ArenaBytes);
  Stats.add("expr.symbols.count", C.SymbolCount);
}
