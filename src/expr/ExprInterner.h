//===- expr/ExprInterner.h - Hash-consed expression interning -------------===//
//
// Part of GranLog; see DESIGN.md "Interned expressions & memoized
// traversals".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe hash-cons table ("unique table") for Expr nodes: every
/// canonical expression shape exists exactly once per process, so
/// structural equality *is* pointer identity and the analyses' inner-loop
/// equality tests (like-term merging, operand sorting, cache keying) are
/// O(1) instead of O(tree).
///
/// Layout: the table is sharded by structural hash; each shard holds a
/// bucket map from hash to the (almost always singleton) list of nodes
/// with that hash, guarded by one mutex.  Factory functions build
/// bottom-up, so a node's operands are always interned before the node
/// itself and shallow equality (kind + name + value + operand *pointers*)
/// suffices inside a bucket.  Two side caches skip the sharded table for
/// the hottest leaves: an eager array of small integer constants and a
/// name-keyed variable cache.
///
/// Lifetime: the table owns one strong reference per node and never
/// evicts, so a `const Expr *` observed once stays valid (and uniquely
/// identifies its structure) for the rest of the process.  This is what
/// makes identity-keyed memoization (ExprOps) and identity-keyed solver
/// cache keys (diffeq/SolverCache) safe — no freed-and-reinterned address
/// can ever alias a different expression.
///
/// Counters: the interner and the memoized traversals keep process-global
/// atomic counters (expr.intern.*, expr.memo.*).  They are snapshotted
/// into a StatsRegistry by the CLI tools via snapshotExprCounters(); they
/// are *not* recorded by GranularityAnalyzer itself because the table is
/// shared across runs, which would make per-run counter values depend on
/// what earlier runs interned (breaking the jobs-invariance guarantee of
/// parallel_determinism_test).
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_EXPR_EXPRINTERNER_H
#define GRANLOG_EXPR_EXPRINTERNER_H

#include "expr/Expr.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace granlog {

class StatsRegistry;

/// Structural hash of a node shape; operands contribute their stored
/// hashes, so hashing is O(arity), not O(tree).
size_t exprShapeHash(ExprKind Kind, const std::string &Name,
                     const Rational &Value, const std::vector<ExprRef> &Ops);

/// The process-global unique table.  All Expr construction funnels through
/// intern() (the factory functions' makeRaw calls it), so no Expr exists
/// outside the table.
class ExprInterner {
public:
  /// The one interner of this process.
  static ExprInterner &global();

  ExprInterner(const ExprInterner &) = delete;
  ExprInterner &operator=(const ExprInterner &) = delete;

  /// Returns the unique node with the given shape, creating it on first
  /// use.  Operands must already be interned (guaranteed when they were
  /// produced by the factory functions).
  ExprRef intern(ExprKind Kind, std::string Name, Rational Value,
                 std::vector<ExprRef> Ops);

  /// Point-in-time totals of the process-global counters.
  struct Counters {
    uint64_t InternHits = 0;   ///< intern() returned an existing node
    uint64_t InternMisses = 0; ///< intern() created a node (== live nodes)
    uint64_t Entries = 0;      ///< nodes owned by the table (== misses)
    uint64_t MemoHits = 0;     ///< memoized traversal reused a subresult
    uint64_t MemoMisses = 0;   ///< memoized traversal computed a subresult
  };
  Counters counters() const;

  /// Bulk-accumulates memoized-traversal traffic (called once per
  /// top-level traversal by ExprOps, not once per node).
  void recordMemo(uint64_t Hits, uint64_t Misses) {
    if (Hits)
      MemoHits.fetch_add(Hits, std::memory_order_relaxed);
    if (Misses)
      MemoMisses.fetch_add(Misses, std::memory_order_relaxed);
  }

private:
  ExprInterner();

  /// Creates a node (bypassing the table) — used to seed the small-integer
  /// cache before any lookup can happen.
  static ExprRef makeNode(ExprKind Kind, std::string Name, Rational Value,
                          std::vector<ExprRef> Ops);

  ExprRef internVar(std::string Name);
  ExprRef internInTable(size_t Hash, ExprKind Kind, std::string Name,
                        Rational Value, std::vector<ExprRef> Ops);

  static constexpr size_t ShardCount = 16; // power of two
  struct Shard {
    std::mutex Mutex;
    /// hash -> nodes with that hash (collisions are rare; the vector is
    /// almost always a singleton).
    std::unordered_map<size_t, std::vector<ExprRef>> Buckets;
  };
  std::array<Shard, ShardCount> Shards;

  /// Small integer constants [-64, 64], seeded eagerly: makeNumber hits
  /// them with a single array read, no lock, no hash.
  static constexpr int64_t SmallIntMin = -64, SmallIntMax = 64;
  std::array<ExprRef, SmallIntMax - SmallIntMin + 1> SmallInts;

  /// Variable nodes keyed by name (read-mostly: shared lock on the hit
  /// path).  Var nodes live here instead of the sharded table.
  std::shared_mutex VarMutex;
  std::unordered_map<std::string, ExprRef> Vars;

  /// The unique Infinity node (one per process).
  ExprRef InfinityNode;

  std::atomic<uint64_t> InternHits{0};
  std::atomic<uint64_t> InternMisses{0};
  std::atomic<uint64_t> MemoHits{0};
  std::atomic<uint64_t> MemoMisses{0};
};

/// Snapshots the process-global interner/memo counters into \p Stats as
///   expr.intern.hit / expr.intern.miss / expr.intern.entries
///   expr.memo.hit / expr.memo.miss
/// Counters are cumulative over the process (the table is shared across
/// analyzer runs), so tools call this once at exit; the values are *not*
/// part of the per-run deterministic counter set.
void snapshotExprCounters(StatsRegistry &Stats);

} // namespace granlog

#endif // GRANLOG_EXPR_EXPRINTERNER_H
