//===- expr/ExprInterner.h - Hash-consed expression interning -------------===//
//
// Part of GranLog; see DESIGN.md "Interned expressions & memoized
// traversals" and "Arena expression core".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe hash-cons table ("unique table") for Expr nodes plus the
/// bump arena that stores them: every canonical expression shape exists
/// exactly once per process, so structural equality *is* index identity
/// and the analyses' inner-loop equality tests (like-term merging,
/// operand sorting, cache keying) are O(1) instead of O(tree).
///
/// Storage: nodes live in a process-global append-only arena of 2 MiB
/// chunks, one variadic-length allocation per node (packed 44-byte header
/// + inline operand ExprRefs — see Expr.h).  An ExprRef is the node's
/// 32-bit word index; dereferencing is two dependent loads with no lock.
/// Chunks are never moved, freed, or reallocated, so arena growth can
/// never invalidate an outstanding ExprRef or `const Expr *`.  Var/Call
/// names are interned once into a side symbol table (32-bit ids,
/// append-only chunked text storage with lock-free reads), and non-small
/// Number payloads into an analogous rational table.
///
/// Lookup: the unique table is sharded by structural hash; each shard
/// holds a bucket map from hash to the (almost always singleton) list of
/// nodes with that hash, guarded by one mutex.  Factory functions build
/// bottom-up, so a node's operands are always interned before the node
/// itself and shallow equality (kind + payload id + operand *indices*)
/// suffices inside a bucket.  Two side caches skip the sharded table for
/// the hottest leaves: an eager array of small integer constants and a
/// name-keyed variable cache.
///
/// Lifetime: the arena never evicts, so a `const Expr *` or ExprRef
/// observed once stays valid (and uniquely identifies its structure) for
/// the rest of the process.  This is what makes identity-keyed
/// memoization (ExprOps) and identity-keyed solver cache keys
/// (diffeq/SolverCache) safe — no freed-and-reinterned address or index
/// can ever alias a different expression.
///
/// Capacity: the 32-bit index addresses 32 GiB of nodes.  Exhausting it
/// (or the test hook's reduced limit) raises ExprArenaExhausted — a
/// structured, catchable diagnostic — never UB; the batch driver's
/// per-item fault isolation turns it into a per-program analysis error.
///
/// Counters: the interner and the memoized traversals keep process-global
/// atomic counters (expr.intern.*, expr.memo.*, expr.arena.*).  They are
/// snapshotted into a StatsRegistry by the CLI tools via
/// snapshotExprCounters(); they are *not* recorded by
/// GranularityAnalyzer itself because the table is shared across runs,
/// which would make per-run counter values depend on what earlier runs
/// interned (breaking the jobs-invariance guarantee of
/// parallel_determinism_test).
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_EXPR_EXPRINTERNER_H
#define GRANLOG_EXPR_EXPRINTERNER_H

#include "expr/Expr.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace granlog {

class StatsRegistry;

/// Raised when the expression arena (or a table it depends on) runs out
/// of 32-bit index space — a structured diagnostic instead of UB.  In
/// batch runs the per-item fault isolation catches it and reports the
/// offending program; the arena itself stays valid, as does every
/// previously returned ExprRef.
class ExprArenaExhausted : public std::runtime_error {
public:
  ExprArenaExhausted(std::string_view What, uint64_t Limit)
      : std::runtime_error("expression arena exhausted: " +
                           std::string(What) + " capacity of " +
                           std::to_string(Limit) + " reached"),
        Limit(Limit) {}

  /// The capacity (in the exhausted resource's own units) that was hit.
  uint64_t limit() const { return Limit; }

private:
  uint64_t Limit;
};

/// Structural hash of a node shape (seeded FNV-1a — identical across
/// platforms and standard libraries); operands contribute their stored
/// hashes, so hashing is O(arity), not O(tree).  This is exactly the
/// value a node of this shape stores as Expr::hash().
uint64_t exprShapeHash(ExprKind Kind, const std::string &Name,
                       const Rational &Value,
                       const std::vector<ExprRef> &Ops);

/// The process-global unique table and arena.  All Expr construction
/// funnels through intern() (the factory functions' makeRaw calls it), so
/// no Expr exists outside the arena.
class ExprInterner {
public:
  /// The one interner of this process.
  static ExprInterner &global();

  ExprInterner(const ExprInterner &) = delete;
  ExprInterner &operator=(const ExprInterner &) = delete;

  /// Returns the unique node with the given shape, creating it on first
  /// use.  Operands must already be interned (guaranteed when they were
  /// produced by the factory functions).
  ExprRef intern(ExprKind Kind, std::string Name, Rational Value,
                 std::vector<ExprRef> Ops);

  /// The symbol-table text for an interned name id (Var/Call Payload).
  /// Lock-free; the returned reference is stable for the process.
  const std::string &symbolText(uint32_t Id) const;

  /// The rational-table value for an interned Number payload id.
  /// Lock-free; the returned reference is stable for the process.
  const Rational &rationalAt(uint32_t Id) const;

  /// Point-in-time totals of the process-global counters.
  struct Counters {
    uint64_t InternHits = 0;   ///< intern() returned an existing node
    uint64_t InternMisses = 0; ///< intern() created a node
    uint64_t Entries = 0;      ///< nodes owned by the table (== arena nodes)
    uint64_t MemoHits = 0;     ///< memoized traversal reused a subresult
    uint64_t MemoMisses = 0;   ///< memoized traversal computed a subresult
    uint64_t ArenaNodes = 0;   ///< nodes allocated in the arena
    uint64_t ArenaBytes = 0;   ///< bytes allocated for nodes (incl. padding)
    uint64_t SymbolCount = 0;  ///< distinct interned Var/Call names
  };
  Counters counters() const;

  /// Bulk-accumulates memoized-traversal traffic (called once per
  /// top-level traversal by ExprOps, not once per node).
  void recordMemo(uint64_t Hits, uint64_t Misses) {
    if (Hits)
      MemoHits.fetch_add(Hits, std::memory_order_relaxed);
    if (Misses)
      MemoMisses.fetch_add(Misses, std::memory_order_relaxed);
  }

  /// Test hook: caps the arena at \p Words 8-byte words (0 restores the
  /// full 2^32 index space).  Lets tests exercise the ExprArenaExhausted
  /// path without allocating 32 GiB.  Never lowers below what is already
  /// allocated — outstanding nodes stay valid.
  void setArenaCapacityForTesting(uint64_t Words);

private:
  ExprInterner();

  /// Allocates and publishes one node in the arena.  Computes the packed
  /// metadata from \p Ops, which must already be interned.
  ExprRef allocateNode(uint64_t Hash, ExprKind Kind, uint32_t Payload,
                       const std::vector<ExprRef> &Ops);

  /// Bump-allocates \p Words 8-byte words; returns the word index.
  /// Throws ExprArenaExhausted at capacity.  Caller holds ArenaMutex.
  uint32_t allocateWords(size_t Words);

  /// Interns \p Name into the symbol table, returning its stable id.
  uint32_t internSymbol(const std::string &Name);

  /// Appends \p Value to the rational table, returning its id.  No
  /// dedupe: callers only store payloads of *unique* Number nodes.
  uint32_t appendRational(const Rational &Value);

  ExprRef internVar(std::string Name);
  ExprRef internInTable(uint64_t Hash, ExprKind Kind, uint32_t Payload,
                        const Rational &Value,
                        const std::vector<ExprRef> &Ops);

  static constexpr size_t ShardCount = 16; // power of two
  struct Shard {
    std::mutex Mutex;
    /// hash -> nodes with that hash (collisions are rare; the vector is
    /// almost always a singleton).
    std::unordered_map<uint64_t, std::vector<ExprRef>> Buckets;
  };
  std::array<Shard, ShardCount> Shards;

  /// Bump cursor of the node arena, in 8-byte words.  Word 0 is reserved
  /// as the null ExprRef.  Guarded by ArenaMutex for allocation; chunk
  /// pointers (detail::ExprChunks) are published with release stores so
  /// ExprRef::get() needs no lock.
  std::mutex ArenaMutex;
  uint32_t ArenaCursor = 1;
  uint64_t ArenaCapacityWords = uint64_t(1) << 32;
  std::atomic<uint64_t> ArenaNodes{0};
  std::atomic<uint64_t> ArenaBytes{0};

  /// Symbol table: id -> text in append-only chunked storage (lock-free
  /// reads), text -> id under a read-mostly map.
  static constexpr unsigned SymbolChunkBits = 12; // 4096 strings per chunk
  static constexpr size_t SymbolMaxChunks = 1024; // 2^22 ids max
  std::array<std::atomic<std::string *>, SymbolMaxChunks> SymbolChunks{};
  mutable std::shared_mutex SymbolMutex;
  std::unordered_map<std::string_view, uint32_t> SymbolIds;
  std::atomic<uint32_t> SymbolNext{0};

  /// Rational table: same chunked shape as the symbol table, but
  /// append-only with no dedupe map (Number nodes are already unique).
  static constexpr unsigned RationalChunkBits = 12;
  static constexpr size_t RationalMaxChunks = 1024;
  std::array<std::atomic<Rational *>, RationalMaxChunks> RationalChunks{};
  std::mutex RationalMutex;
  uint32_t RationalNext = 0;

  /// Small integer constants [-64, 64], seeded eagerly: makeNumber hits
  /// them with a single array read, no lock, no hash.
  static constexpr int64_t SmallIntMin = -64, SmallIntMax = 64;
  std::array<ExprRef, SmallIntMax - SmallIntMin + 1> SmallInts;

  /// Variable nodes keyed by name (read-mostly: shared lock on the hit
  /// path).  Var nodes live here instead of the sharded table.
  std::shared_mutex VarMutex;
  std::unordered_map<std::string, ExprRef> Vars;

  /// The unique Infinity node (one per process).
  ExprRef InfinityNode;

  std::atomic<uint64_t> InternHits{0};
  std::atomic<uint64_t> InternMisses{0};
  std::atomic<uint64_t> MemoHits{0};
  std::atomic<uint64_t> MemoMisses{0};
};

/// Snapshots the process-global interner/memo/arena counters into
/// \p Stats as
///   expr.intern.hit / expr.intern.miss / expr.intern.entries
///   expr.memo.hit / expr.memo.miss
///   expr.arena.nodes / expr.arena.bytes / expr.symbols.count
/// Counters are cumulative over the process (the table is shared across
/// analyzer runs), so tools call this once at exit; the values are *not*
/// part of the per-run deterministic counter set.
void snapshotExprCounters(StatsRegistry &Stats);

} // namespace granlog

#endif // GRANLOG_EXPR_EXPRINTERNER_H
