//===- expr/Expr.h - Symbolic size/cost expressions -----------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic expressions over argument sizes.  These are the values the
/// argument-size and cost analyses manipulate: polynomials with rational
/// coefficients, exponentials A^e, binary logarithms, max/min, applications
/// of not-yet-solved functions (the paper's Psi and Cost symbols), and a
/// top element Infinity ("an infinite amount of work", the solution
/// returned for equations the solver cannot handle — such predicates are
/// then always executed in parallel, paper Section 5).
///
/// All expressions denote values in [0, +oo]: sizes and costs are
/// non-negative.  The simplifier relies on this (e.g. Infinity absorbs
/// addition, max under-approximated by sum is sound as an upper bound).
///
/// Expressions are immutable, *hash-consed*, and *arena-allocated*: every
/// canonical node shape exists exactly once per process, laid out as a
/// single variadic-length record in a process-global append-only bump
/// arena owned by ExprInterner (CaDiCaL clause.hpp-style).  An ExprRef is
/// a 32-bit index into that arena — one third the footprint of the former
/// shared_ptr representation and trivially copyable — and structural
/// equality is index equality (exprEqual is one integer compare;
/// compareExpr short-circuits on identical subtrees).  A node's operand
/// references are embedded inline after a fixed bit-packed header (hash,
/// depth, saturating tree size, var/call name Blooms, kind, arity), its
/// Var/Call name is an interned 32-bit symbol id, and its Rational payload
/// lives out-of-line in a side table (Number nodes only).  All node and
/// name hashing is seeded FNV-1a, so hashes — and everything keyed on
/// them, like Bloom bits and interner buckets — are identical across
/// standard libraries and platforms.
///
/// Use the factory functions (makeNumber, makeAdd, ...) — they maintain a
/// canonical form: flattened n-ary sums/products, folded constants, merged
/// like terms.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_EXPR_EXPR_H
#define GRANLOG_EXPR_EXPR_H

#include "support/Io.h"
#include "support/Rational.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace granlog {

class Expr;
class ExprInterner;

namespace detail {
/// The arena's chunk directory: ExprRef::get() resolves an index with two
/// dependent loads (chunk pointer, then node) and no lock.  Chunks are
/// 2^ExprChunkWordBits 8-byte words; a 32-bit word index therefore
/// addresses up to 32 GiB of nodes.  Defined in ExprInterner.cpp; slots
/// are written once (release) when a chunk is allocated and never change.
inline constexpr unsigned ExprChunkWordBits = 18; // 2 MiB per chunk
inline constexpr uint32_t ExprChunkWordMask =
    (uint32_t(1) << ExprChunkWordBits) - 1;
inline constexpr size_t ExprMaxChunks =
    size_t(1) << (32 - ExprChunkWordBits);
extern std::atomic<uint64_t *> ExprChunks[ExprMaxChunks];
} // namespace detail

/// A reference to an interned expression node: a 32-bit index (in 8-byte
/// words) into the process-global expression arena.  Value semantics —
/// copying is one register move, fits four-per-cache-line in operand
/// arrays, and never touches a reference count.  Index 0 is the null
/// reference.  The arena is append-only and never deallocates, so a ref
/// observed once stays valid (and uniquely identifies its structure) for
/// the rest of the process.
class ExprRef {
public:
  constexpr ExprRef() = default;
  constexpr ExprRef(std::nullptr_t) {}

  /// The underlying node, or nullptr for the null reference.  Node
  /// addresses are stable (chunks are never moved or freed), so pointer
  /// identity equals index equality and identity-keyed memo tables may
  /// hold `const Expr *` safely.
  const Expr *get() const {
    if (!Idx)
      return nullptr;
    const uint64_t *Chunk =
        detail::ExprChunks[Idx >> detail::ExprChunkWordBits].load(
            std::memory_order_acquire);
    return reinterpret_cast<const Expr *>(Chunk +
                                          (Idx & detail::ExprChunkWordMask));
  }
  const Expr &operator*() const { return *get(); }
  const Expr *operator->() const { return get(); }

  explicit operator bool() const { return Idx != 0; }

  /// The raw arena index; stable for the life of the process.
  uint32_t index() const { return Idx; }

  friend constexpr bool operator==(ExprRef A, ExprRef B) {
    return A.Idx == B.Idx;
  }
  friend constexpr bool operator!=(ExprRef A, ExprRef B) {
    return A.Idx != B.Idx;
  }

private:
  friend class ExprInterner;
  explicit constexpr ExprRef(uint32_t Idx) : Idx(Idx) {}

  uint32_t Idx = 0;
};

static_assert(sizeof(ExprRef) == 4, "ExprRef must stay a 32-bit index");

/// A non-owning view of a node's inline operand array (the node embeds
/// its operands, so there is no std::vector to return).  Converts to a
/// std::vector<ExprRef> implicitly where a caller needs an owned copy.
class ExprSpan {
public:
  using value_type = ExprRef;
  using iterator = const ExprRef *;
  using const_iterator = const ExprRef *;

  ExprSpan() = default;
  ExprSpan(const ExprRef *Begin, size_t Size) : B(Begin), N(Size) {}

  const ExprRef *begin() const { return B; }
  const ExprRef *end() const { return B + N; }
  size_t size() const { return N; }
  bool empty() const { return N == 0; }
  const ExprRef &operator[](size_t I) const { return B[I]; }
  const ExprRef &front() const { return B[0]; }
  const ExprRef &back() const { return B[N - 1]; }

  operator std::vector<ExprRef>() const {
    return std::vector<ExprRef>(B, B + N);
  }

private:
  const ExprRef *B = nullptr;
  size_t N = 0;
};

/// Seed for all expression-core hashing (node hashes and name Bloom
/// bits).  Folding it into FNV-1a decorrelates expression hashes from the
/// plain content fingerprints elsewhere in the system while staying fully
/// platform-stable.
inline constexpr uint64_t ExprHashSeed =
    fnv1a64Word(Fnv1a64Basis, 0x6772616e6c6f67ULL); // "granlog"

/// Platform-stable FNV-1a hash of a variable/call name (seeded — see
/// ExprHashSeed).  Feeds both the Bloom bit below and Var/Call node
/// hashes, so a name's identity enters a node hash by value, not by
/// symbol id (ids depend on interning order).
inline constexpr uint64_t exprNameHash(std::string_view Name) {
  return fnv1a64(Name, ExprHashSeed);
}

/// The Bloom-filter bit for a variable or call name (never zero, so a
/// node's call filter is non-zero iff some Call occurs in it).
inline constexpr uint64_t exprNameBloomBit(std::string_view Name) {
  return uint64_t(1) << (exprNameHash(Name) & 63);
}

/// Discriminator for Expr nodes.
enum class ExprKind {
  Number,   ///< rational constant
  Var,      ///< named size variable (e.g. "n")
  Add,      ///< n-ary sum
  Mul,      ///< n-ary product
  Pow,      ///< Base ^ Exponent
  Log2,     ///< binary logarithm, clamped to 0 below 1
  Max,      ///< n-ary maximum
  Min,      ///< n-ary minimum
  Call,     ///< unknown function application, e.g. Psi_append(x, y)
  Infinity, ///< top: unbounded work / undefined size
};

/// One immutable expression node, living in the interner's arena.  The
/// layout is a fixed 44-byte header — FNV-1a structural hash, two 64-bit
/// name Bloom filters, saturating tree size, then kind (4 bits) and
/// saturating depth (28 bits) packed into one word, the operand count,
/// and a 32-bit payload (interned symbol id for Var/Call, rational-table
/// id for Number) — followed immediately by the operand ExprRefs inline.
/// A binary node is 52 bytes in one allocation, where the previous
/// shared_ptr + std::vector + std::string layout took >160 bytes across
/// four.
class Expr {
public:
  ExprKind kind() const { return static_cast<ExprKind>(Meta & 0xF); }

  bool isNumber() const { return kind() == ExprKind::Number; }
  bool isVar() const { return kind() == ExprKind::Var; }
  bool isInfinity() const { return kind() == ExprKind::Infinity; }
  bool isZero() const { return isNumber() && number().isZero(); }
  bool isOne() const { return isNumber() && number().isOne(); }

  /// Number: the constant value (stored out-of-line; Payload indexes the
  /// interner's rational table).
  const Rational &number() const;
  /// Var / Call: the name (stored once in the interner's symbol table;
  /// Payload is the 32-bit symbol id).
  const std::string &name() const;
  /// Var / Call: the interned symbol id of the name.  Equal names have
  /// equal ids process-wide.
  uint32_t symbolId() const {
    assert((isVar() || kind() == ExprKind::Call) && "no name");
    return Payload;
  }

  /// Number of operands (Add/Mul/Max/Min/Call members, Pow's pair,
  /// Log2's argument; 0 for leaves).
  size_t arity() const { return Arity; }
  /// Add/Mul/Max/Min operands, Call arguments — a view of the inline
  /// array embedded after this header.
  ExprSpan operands() const { return ExprSpan(ops(), Arity); }
  /// Pow base / Log2 argument.
  ExprRef base() const {
    assert((kind() == ExprKind::Pow || kind() == ExprKind::Log2) &&
           "no base");
    return ops()[0];
  }
  /// Pow exponent.
  ExprRef exponent() const {
    assert(kind() == ExprKind::Pow && "no exponent");
    return ops()[1];
  }

  /// \name Interning metadata (precomputed at construction).
  /// @{

  /// Structural hash (seeded FNV-1a over kind, payload and operand
  /// hashes); equal for structurally equal nodes, identical across
  /// platforms and standard libraries, and — since nodes are interned —
  /// distinct nodes rarely collide.
  uint64_t hash() const { return HashVal; }
  /// Height of the expression tree; a leaf has depth 1.  Saturates at
  /// 2^28 - 1 (the packed field width).
  uint32_t depth() const { return Meta >> 4; }
  /// Node count of the expression *tree* — shared subexpressions counted
  /// once per reference, saturating at UINT64_MAX.  The gap between
  /// treeSize() and the DAG size is the work memoized traversals save.
  uint64_t treeSize() const { return TreeSizeVal; }
  /// Bloom filter over the names of all Var nodes in this expression; a
  /// clear exprNameBloomBit(Name) proves Name does not occur.
  uint64_t varBloom() const { return VarBloomVal; }
  /// Bloom filter over the names of all Call nodes in this expression.
  uint64_t callBloom() const { return CallBloomVal; }
  /// O(1): true iff any Call node occurs in this expression.
  bool hasCall() const { return CallBloomVal != 0; }

  /// @}

  /// Header bytes before the inline operand array (not sizeof(Expr):
  /// operands start inside what would otherwise be tail padding).
  static constexpr size_t HeaderBytes = 4 * sizeof(uint64_t) + 3 * 4;
  /// Total node footprint in the arena, rounded up to whole 8-byte words.
  static constexpr size_t allocationWords(size_t Arity) {
    return (HeaderBytes + Arity * sizeof(ExprRef) + 7) / 8;
  }

private:
  friend class ExprInterner;

  Expr(uint64_t Hash, uint64_t VarBloom, uint64_t CallBloom,
       uint64_t TreeSize, ExprKind Kind, uint32_t Depth, uint32_t Arity,
       uint32_t Payload)
      : HashVal(Hash), VarBloomVal(VarBloom), CallBloomVal(CallBloom),
        TreeSizeVal(TreeSize),
        Meta(static_cast<uint32_t>(Kind) | (Depth << 4)), Arity(Arity),
        Payload(Payload) {}

  const ExprRef *ops() const {
    return reinterpret_cast<const ExprRef *>(
        reinterpret_cast<const char *>(this) + HeaderBytes);
  }
  ExprRef *ops() {
    return reinterpret_cast<ExprRef *>(reinterpret_cast<char *>(this) +
                                       HeaderBytes);
  }

  uint64_t HashVal;      ///< seeded FNV-1a structural hash
  uint64_t VarBloomVal;  ///< Bloom over Var names below this node
  uint64_t CallBloomVal; ///< Bloom over Call names below this node
  uint64_t TreeSizeVal;  ///< saturating tree node count
  uint32_t Meta;         ///< kind:4 | depth:28 (saturating)
  uint32_t Arity;        ///< operand count
  uint32_t Payload;      ///< symbol id (Var/Call) / rational id (Number)
  // Arity ExprRefs follow inline at HeaderBytes.
};

static_assert(Expr::HeaderBytes == 44, "packed header layout changed");

/// \name Factory functions (simplifying constructors)
/// @{
ExprRef makeNumber(Rational Value);
inline ExprRef makeNumber(int64_t Value) { return makeNumber(Rational(Value)); }
ExprRef makeVar(std::string Name);
ExprRef makeInfinity();
ExprRef makeAdd(std::vector<ExprRef> Ops);
inline ExprRef makeAdd(ExprRef A, ExprRef B) {
  return makeAdd(std::vector<ExprRef>{A, B});
}
ExprRef makeSub(ExprRef A, ExprRef B);
ExprRef makeMul(std::vector<ExprRef> Ops);
inline ExprRef makeMul(ExprRef A, ExprRef B) {
  return makeMul(std::vector<ExprRef>{A, B});
}
ExprRef makeScale(Rational K, ExprRef E);
ExprRef makePow(ExprRef Base, ExprRef Exponent);
ExprRef makeLog2(ExprRef Arg);
ExprRef makeMax(std::vector<ExprRef> Ops);
inline ExprRef makeMax(ExprRef A, ExprRef B) {
  return makeMax(std::vector<ExprRef>{A, B});
}
ExprRef makeMin(std::vector<ExprRef> Ops);
ExprRef makeCall(std::string Name, std::vector<ExprRef> Args);
/// @}

/// A two-sided resource interval: closed-form lower and upper bounds on
/// one quantity (an argument size or a predicate cost).  Hi is the
/// classic upper bound every analysis always computes; Lo is the
/// failure-free minimal-solution lower bound and is null when the caller
/// did not opt into lower bounds (BoundsMode::Upper).  When both are
/// present the analyses guarantee Lo <= Hi pointwise over the measured
/// input domain, and Lo == Hi when no relaxation was applied anywhere.
struct BoundInterval {
  ExprRef Lo; ///< lower bound; null in upper-only mode
  ExprRef Hi; ///< upper bound; Infinity when unknown

  bool operator==(const BoundInterval &) const = default;
};

/// Which bounds the analyses compute.  Upper (the default) is the
/// paper's original single-sided analysis and leaves every report,
/// cache and JSON byte-identical to pre-interval builds; Both adds the
/// dual lower-bound pass (min over clauses, failure-free minimal
/// solutions) and surfaces [lo, hi] intervals.
enum class BoundsMode {
  Upper, ///< upper bounds only (default; byte-identical legacy output)
  Both,  ///< upper and lower bounds: two-sided intervals
};

/// Total structural order; 0 iff structurally equal.  Identical nodes
/// (the common case under interning) short-circuit to 0.
int compareExpr(const Expr &A, const Expr &B);
/// Structural equality.  Interning makes this index identity.
inline bool exprEqual(const ExprRef &A, const ExprRef &B) {
  return A == B;
}

/// True if the variable \p Name occurs in \p E.
bool containsVar(const ExprRef &E, const std::string &Name);

/// True if a Call to \p Name occurs in \p E.
bool containsCall(const ExprRef &E, const std::string &Name);

/// True if any Call occurs in \p E.
bool containsAnyCall(const ExprRef &E);

/// Replaces every occurrence of variable \p Name by \p Replacement.
ExprRef substituteVar(const ExprRef &E, const std::string &Name,
                      const ExprRef &Replacement);

/// Replaces every Call named \p Name by \p Unfold(args).  The paper's
/// normalization rule "replace each occurrence of an instance of phi by the
/// appropriate instance of psi".  \p Unfold must be pure (a function of its
/// arguments): repeated subexpressions are rewritten once and the result
/// shared, so a stateful Unfold would observe fewer invocations.
ExprRef substituteCall(
    const ExprRef &E, const std::string &Name,
    const std::function<ExprRef(const std::vector<ExprRef> &)> &Unfold);

/// Numeric evaluation.  Unbound variables and remaining Calls yield
/// nullopt; Infinity yields +inf.
std::optional<double> evaluate(const ExprRef &E,
                               const std::map<std::string, double> &Env);

/// Extracts \p E as a polynomial in variable \p Var: returns coefficients
/// low-to-high degree, each coefficient an expression free of \p Var.
/// Returns nullopt if \p E is not polynomial in \p Var (e.g. Var under
/// Pow exponent, Log2, Max or Call).
std::optional<std::vector<ExprRef>> polynomialIn(const ExprRef &E,
                                                 const std::string &Var);

/// Rebuilds an expression from polynomial coefficients (inverse of
/// polynomialIn).
ExprRef polynomialExpr(const std::vector<ExprRef> &Coeffs,
                       const std::string &Var);

/// Closed form of the power sum S_p(n) = sum_{j=1}^{n} j^p as coefficients
/// of a degree-(p+1) polynomial in n (Faulhaber's formula, exact).
const std::vector<Rational> &powerSumPolynomial(unsigned P);

/// Closed form of sum_{j=1}^{n} p(j) for a polynomial p given by \p Coeffs
/// (in the summation variable).  Result is a polynomial in \p Var.
ExprRef sumPolynomial(const std::vector<ExprRef> &Coeffs,
                      const std::string &Var);

/// Renders the expression, e.g. "1/2*n^2 + 3/2*n + 1".
std::string exprText(const ExprRef &E);

} // namespace granlog

#endif // GRANLOG_EXPR_EXPR_H
