//===- expr/Expr.h - Symbolic size/cost expressions -----------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic expressions over argument sizes.  These are the values the
/// argument-size and cost analyses manipulate: polynomials with rational
/// coefficients, exponentials A^e, binary logarithms, max/min, applications
/// of not-yet-solved functions (the paper's Psi and Cost symbols), and a
/// top element Infinity ("an infinite amount of work", the solution
/// returned for equations the solver cannot handle — such predicates are
/// then always executed in parallel, paper Section 5).
///
/// All expressions denote values in [0, +oo]: sizes and costs are
/// non-negative.  The simplifier relies on this (e.g. Infinity absorbs
/// addition, max under-approximated by sum is sound as an upper bound).
///
/// Expressions are immutable, shared (ExprRef), and *hash-consed*: every
/// node is interned in a process-global unique table (ExprInterner), so a
/// canonical expression shape exists exactly once and structural equality
/// is pointer identity (exprEqual is one pointer compare; compareExpr
/// short-circuits on identical subtrees).  Each node carries precomputed
/// metadata — structural hash, depth, tree size, and Bloom filters over
/// the variable/call names occurring below it — which the traversals in
/// ExprOps use to prune and memoize.
///
/// Use the factory functions (makeNumber, makeAdd, ...) — they maintain a
/// canonical form: flattened n-ary sums/products, folded constants, merged
/// like terms.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_EXPR_EXPR_H
#define GRANLOG_EXPR_EXPR_H

#include "support/Rational.h"

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace granlog {

class Expr;
using ExprRef = std::shared_ptr<const Expr>;

/// The Bloom-filter bit for a variable or call name (never zero, so a
/// node's call filter is non-zero iff some Call occurs in it).
inline uint64_t exprNameBloomBit(std::string_view Name) {
  return uint64_t(1) << (std::hash<std::string_view>{}(Name) & 63);
}

/// Discriminator for Expr nodes.
enum class ExprKind {
  Number,   ///< rational constant
  Var,      ///< named size variable (e.g. "n")
  Add,      ///< n-ary sum
  Mul,      ///< n-ary product
  Pow,      ///< Base ^ Exponent
  Log2,     ///< binary logarithm, clamped to 0 below 1
  Max,      ///< n-ary maximum
  Min,      ///< n-ary minimum
  Call,     ///< unknown function application, e.g. Psi_append(x, y)
  Infinity, ///< top: unbounded work / undefined size
};

/// One immutable expression node.
class Expr {
public:
  ExprKind kind() const { return Kind; }

  bool isNumber() const { return Kind == ExprKind::Number; }
  bool isVar() const { return Kind == ExprKind::Var; }
  bool isInfinity() const { return Kind == ExprKind::Infinity; }
  bool isZero() const { return isNumber() && Value.isZero(); }
  bool isOne() const { return isNumber() && Value.isOne(); }

  /// Number: the constant value.
  const Rational &number() const {
    assert(isNumber() && "not a number");
    return Value;
  }
  /// Var / Call: the name.
  const std::string &name() const {
    assert((isVar() || Kind == ExprKind::Call) && "no name");
    return Name;
  }
  /// Add/Mul/Max/Min operands, Call arguments.
  const std::vector<ExprRef> &operands() const { return Ops; }
  /// Pow base / Log2 argument.
  const ExprRef &base() const {
    assert((Kind == ExprKind::Pow || Kind == ExprKind::Log2) && "no base");
    return Ops[0];
  }
  /// Pow exponent.
  const ExprRef &exponent() const {
    assert(Kind == ExprKind::Pow && "no exponent");
    return Ops[1];
  }

  /// \name Interning metadata (precomputed at construction).
  /// @{

  /// Structural hash; equal for structurally equal nodes (and, since
  /// nodes are interned, distinct nodes rarely collide).
  size_t hash() const { return HashVal; }
  /// Height of the expression tree; a leaf has depth 1.
  uint32_t depth() const { return DepthVal; }
  /// Node count of the expression *tree* — shared subexpressions counted
  /// once per reference, saturating at UINT64_MAX.  The gap between
  /// treeSize() and the DAG size is the work memoized traversals save.
  uint64_t treeSize() const { return TreeSizeVal; }
  /// Bloom filter over the names of all Var nodes in this expression; a
  /// clear exprNameBloomBit(Name) proves Name does not occur.
  uint64_t varBloom() const { return VarBloomVal; }
  /// Bloom filter over the names of all Call nodes in this expression.
  uint64_t callBloom() const { return CallBloomVal; }
  /// O(1): true iff any Call node occurs in this expression.
  bool hasCall() const { return CallBloomVal != 0; }

  /// @}

private:
  friend class ExprInterner;

  Expr(ExprKind Kind, std::string Name, Rational Value,
       std::vector<ExprRef> Ops);

  ExprKind Kind;
  std::string Name;
  Rational Value;
  std::vector<ExprRef> Ops;
  size_t HashVal;
  uint64_t VarBloomVal;
  uint64_t CallBloomVal;
  uint64_t TreeSizeVal;
  uint32_t DepthVal;
};

/// \name Factory functions (simplifying constructors)
/// @{
ExprRef makeNumber(Rational Value);
inline ExprRef makeNumber(int64_t Value) { return makeNumber(Rational(Value)); }
ExprRef makeVar(std::string Name);
ExprRef makeInfinity();
ExprRef makeAdd(std::vector<ExprRef> Ops);
inline ExprRef makeAdd(ExprRef A, ExprRef B) {
  return makeAdd(std::vector<ExprRef>{std::move(A), std::move(B)});
}
ExprRef makeSub(ExprRef A, ExprRef B);
ExprRef makeMul(std::vector<ExprRef> Ops);
inline ExprRef makeMul(ExprRef A, ExprRef B) {
  return makeMul(std::vector<ExprRef>{std::move(A), std::move(B)});
}
ExprRef makeScale(Rational K, ExprRef E);
ExprRef makePow(ExprRef Base, ExprRef Exponent);
ExprRef makeLog2(ExprRef Arg);
ExprRef makeMax(std::vector<ExprRef> Ops);
inline ExprRef makeMax(ExprRef A, ExprRef B) {
  return makeMax(std::vector<ExprRef>{std::move(A), std::move(B)});
}
ExprRef makeMin(std::vector<ExprRef> Ops);
ExprRef makeCall(std::string Name, std::vector<ExprRef> Args);
/// @}

/// Total structural order; 0 iff structurally equal.  Identical pointers
/// (the common case under interning) short-circuit to 0.
int compareExpr(const Expr &A, const Expr &B);
/// Structural equality.  Interning makes this pointer identity.
inline bool exprEqual(const ExprRef &A, const ExprRef &B) {
  return A == B;
}

/// True if the variable \p Name occurs in \p E.
bool containsVar(const ExprRef &E, const std::string &Name);

/// True if a Call to \p Name occurs in \p E.
bool containsCall(const ExprRef &E, const std::string &Name);

/// True if any Call occurs in \p E.
bool containsAnyCall(const ExprRef &E);

/// Replaces every occurrence of variable \p Name by \p Replacement.
ExprRef substituteVar(const ExprRef &E, const std::string &Name,
                      const ExprRef &Replacement);

/// Replaces every Call named \p Name by \p Unfold(args).  The paper's
/// normalization rule "replace each occurrence of an instance of phi by the
/// appropriate instance of psi".  \p Unfold must be pure (a function of its
/// arguments): repeated subexpressions are rewritten once and the result
/// shared, so a stateful Unfold would observe fewer invocations.
ExprRef substituteCall(
    const ExprRef &E, const std::string &Name,
    const std::function<ExprRef(const std::vector<ExprRef> &)> &Unfold);

/// Numeric evaluation.  Unbound variables and remaining Calls yield
/// nullopt; Infinity yields +inf.
std::optional<double> evaluate(const ExprRef &E,
                               const std::map<std::string, double> &Env);

/// Extracts \p E as a polynomial in variable \p Var: returns coefficients
/// low-to-high degree, each coefficient an expression free of \p Var.
/// Returns nullopt if \p E is not polynomial in \p Var (e.g. Var under
/// Pow exponent, Log2, Max or Call).
std::optional<std::vector<ExprRef>> polynomialIn(const ExprRef &E,
                                                 const std::string &Var);

/// Rebuilds an expression from polynomial coefficients (inverse of
/// polynomialIn).
ExprRef polynomialExpr(const std::vector<ExprRef> &Coeffs,
                       const std::string &Var);

/// Closed form of the power sum S_p(n) = sum_{j=1}^{n} j^p as coefficients
/// of a degree-(p+1) polynomial in n (Faulhaber's formula, exact).
const std::vector<Rational> &powerSumPolynomial(unsigned P);

/// Closed form of sum_{j=1}^{n} p(j) for a polynomial p given by \p Coeffs
/// (in the summation variable).  Result is a polynomial in \p Var.
ExprRef sumPolynomial(const std::vector<ExprRef> &Coeffs,
                      const std::string &Var);

/// Renders the expression, e.g. "1/2*n^2 + 3/2*n + 1".
std::string exprText(const ExprRef &E);

} // namespace granlog

#endif // GRANLOG_EXPR_EXPR_H
