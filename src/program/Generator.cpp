//===- program/Generator.cpp ----------------------------------------------===//

#include "program/Generator.h"

#include <cassert>

using namespace granlog;

namespace {

/// The generator's own PRNG (splitmix64): identical sequences on every
/// platform, unlike <random>'s distribution templates whose algorithms
/// the standard leaves unspecified.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Draw in [0, N).  The modulo bias is ~N/2^64 — irrelevant for the
  /// single-digit ranges used here — and, crucially, deterministic.
  uint64_t range(uint64_t N) { return N ? next() % N : 0; }

  /// Draw in [Lo, Hi] inclusive.
  int64_t rangeIn(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(
                    range(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  bool coin() { return range(2) == 0; }

private:
  uint64_t State;
};

/// Mixes corpus seed and program index into one program seed, so each
/// program's shape depends only on (Seed, Index) — never on how many
/// programs were generated before it or which shard asked for it.
uint64_t mixSeed(uint64_t Seed, unsigned Index) {
  SplitMix64 M(Seed ^ (0xa0761d6478bd642fULL * (Index + 1)));
  M.next();
  return M.next();
}

/// Argument domain of a schema family; chained callees stay inside the
/// caller's domain so the size analysis can relate their argument sizes.
enum class Domain { List, Value, Tree };

Domain domainOf(SchemaFamily F) {
  switch (F) {
  case SchemaFamily::ListRecursion:
  case SchemaFamily::ListMap:
  case SchemaFamily::Accumulator:
  case SchemaFamily::MutualRecursion:
    return Domain::List;
  case SchemaFamily::ArithRecursion:
  case SchemaFamily::DivideAndConquer:
    return Domain::Value;
  case SchemaFamily::TreeRecursion:
    return Domain::Tree;
  }
  return Domain::List;
}

/// Whether the family's output argument is a tracked numeric value, i.e.
/// a caller may feed it into an `is` combine step.
bool outputsValue(SchemaFamily F) {
  return F != SchemaFamily::ListMap && F != SchemaFamily::Accumulator;
}

struct WeightedFamily {
  SchemaFamily Family;
  unsigned Weight;
};

constexpr WeightedFamily EntryWeights[] = {
    {SchemaFamily::ListRecursion, 4},  {SchemaFamily::ListMap, 3},
    {SchemaFamily::Accumulator, 2},    {SchemaFamily::MutualRecursion, 2},
    {SchemaFamily::ArithRecursion, 4}, {SchemaFamily::DivideAndConquer, 3},
    {SchemaFamily::TreeRecursion, 3},
};

SchemaFamily pickWeighted(const WeightedFamily *Table, size_t N,
                          SplitMix64 &Rng) {
  unsigned Total = 0;
  for (size_t I = 0; I != N; ++I)
    Total += Table[I].Weight;
  uint64_t R = Rng.range(Total);
  for (size_t I = 0; I != N; ++I) {
    if (R < Table[I].Weight)
      return Table[I].Family;
    R -= Table[I].Weight;
  }
  return Table[N - 1].Family;
}

SchemaFamily pickEntryFamily(SplitMix64 &Rng) {
  return pickWeighted(EntryWeights, std::size(EntryWeights), Rng);
}

SchemaFamily pickFamilyIn(Domain D, SplitMix64 &Rng) {
  static constexpr WeightedFamily ListWeights[] = {
      {SchemaFamily::ListRecursion, 4},
      {SchemaFamily::ListMap, 3},
      {SchemaFamily::Accumulator, 2},
      {SchemaFamily::MutualRecursion, 2},
  };
  static constexpr WeightedFamily ValueWeights[] = {
      {SchemaFamily::ArithRecursion, 4},
      {SchemaFamily::DivideAndConquer, 3},
  };
  switch (D) {
  case Domain::List:
    return pickWeighted(ListWeights, std::size(ListWeights), Rng);
  case Domain::Value:
    return pickWeighted(ValueWeights, std::size(ValueWeights), Rng);
  case Domain::Tree:
    return SchemaFamily::TreeRecursion;
  }
  return SchemaFamily::ListRecursion;
}

/// Everything one predicate slot contributed.
struct EmitResult {
  std::string Text;
  std::string Entry;       ///< name callers/goals use
  unsigned EntryArity = 2;
  std::string RecPred;     ///< predicate carrying the recursion
  unsigned RecArity = 2;
  int RecArgPos = 0;
  int DefaultInputHint = 8;
};

std::string primaryName(const std::string &Prefix, unsigned Slot) {
  return Prefix + "p" + std::to_string(Slot);
}

std::string num(int64_t V) { return std::to_string(V); }

/// Renders the optional chained call `Callee(Piece, OutVar)` plus the
/// recursive call as either a sequential conjunction or a parallel pair.
/// The two goals share only the (bound) input piece, so they are
/// independent in the paper's sense and may be '&'-annotated.
std::string callPair(const std::string &CalleeGoal,
                     const std::string &RecGoal, bool Parallel) {
  if (CalleeGoal.empty())
    return RecGoal;
  if (Parallel)
    return "( " + CalleeGoal + " & " + RecGoal + " )";
  return CalleeGoal + ", " + RecGoal;
}

EmitResult emitListSum(const std::string &P, unsigned Slot,
                       const std::string &Callee, bool CalleeValue,
                       SplitMix64 &Rng) {
  EmitResult R;
  int64_t Base = Rng.rangeIn(0, 3);
  int64_t K = Rng.rangeIn(1, 5);
  bool Passive = Slot == 0 && Rng.range(4) == 0;
  bool Par = Rng.coin();
  bool UseW = !Callee.empty() && CalleeValue && Rng.coin();
  std::string OutW = Callee.empty() ? "" : (UseW ? "W" : "_W");
  std::string CalleeGoal =
      Callee.empty() ? "" : Callee + "(T, " + OutW + ")";
  std::string Combine = "S is S1 + " + num(K) + (UseW ? " + W" : "");
  if (Passive) {
    R.Text += ":- mode(" + P + "(i, i, o)).\n";
    R.Text += ":- measure(" + P + "(void, length, value)).\n";
    R.Text += P + "(_, [], " + num(Base) + ").\n";
    R.Text += P + "(C0, [_|T], S) :- " +
              callPair(CalleeGoal, P + "(C0, T, S1)", Par) + ", " +
              Combine + ".\n";
    R.EntryArity = R.RecArity = 3;
    R.RecArgPos = 1;
  } else {
    R.Text += ":- mode(" + P + "(i, o)).\n";
    R.Text += ":- measure(" + P + "(length, value)).\n";
    R.Text += P + "([], " + num(Base) + ").\n";
    R.Text += P + "([_|T], S) :- " +
              callPair(CalleeGoal, P + "(T, S1)", Par) + ", " + Combine +
              ".\n";
    R.EntryArity = R.RecArity = 2;
    R.RecArgPos = 0;
  }
  R.Entry = R.RecPred = P;
  R.DefaultInputHint = static_cast<int>(Rng.rangeIn(8, 14));
  return R;
}

EmitResult emitListMap(const std::string &P, const std::string &Callee,
                       SplitMix64 &Rng) {
  EmitResult R;
  int64_t K1 = Rng.rangeIn(1, 4);
  int64_t K2 = Rng.rangeIn(0, 6);
  bool Par = Rng.coin();
  std::string CalleeGoal = Callee.empty() ? "" : Callee + "(T, _W)";
  R.Text += ":- mode(" + P + "(i, o)).\n";
  R.Text += ":- measure(" + P + "(length, length)).\n";
  R.Text += P + "([], []).\n";
  R.Text += P + "([H|T], [Y|Rs]) :- Y is H * " + num(K1) + " + " +
            num(K2) + ", " + callPair(CalleeGoal, P + "(T, Rs)", Par) +
            ".\n";
  R.Entry = R.RecPred = P;
  R.EntryArity = R.RecArity = 2;
  R.RecArgPos = 0;
  R.DefaultInputHint = static_cast<int>(Rng.rangeIn(8, 14));
  return R;
}

EmitResult emitAccumulator(const std::string &Prefix, unsigned Slot,
                           const std::string &Callee, SplitMix64 &Rng) {
  EmitResult R;
  std::string P = primaryName(Prefix, Slot);
  std::string A = Prefix + "a" + std::to_string(Slot);
  bool Par = Rng.coin();
  std::string CalleeGoal = Callee.empty() ? "" : Callee + "(T, _W)";
  R.Text += ":- mode(" + P + "(i, o)).\n";
  R.Text += ":- measure(" + P + "(length, length)).\n";
  R.Text += P + "(L, Rs) :- " + A + "(L, [], Rs).\n";
  R.Text += ":- mode(" + A + "(i, i, o)).\n";
  R.Text += ":- measure(" + A + "(length, length, length)).\n";
  R.Text += A + "([], Acc, Acc).\n";
  R.Text += A + "([H|T], Acc, Rs) :- " +
            callPair(CalleeGoal, A + "(T, [H|Acc], Rs)", Par) + ".\n";
  R.Entry = P;
  R.EntryArity = 2;
  R.RecPred = A;
  R.RecArity = 3;
  R.RecArgPos = 0;
  R.DefaultInputHint = static_cast<int>(Rng.rangeIn(8, 14));
  return R;
}

EmitResult emitMutual(const std::string &Prefix, unsigned Slot,
                      const std::string &Callee, SplitMix64 &Rng) {
  EmitResult R;
  std::string P = primaryName(Prefix, Slot);
  std::string Q = Prefix + "q" + std::to_string(Slot);
  int64_t B1 = Rng.rangeIn(0, 2);
  int64_t B2 = Rng.rangeIn(0, 2);
  int64_t K1 = Rng.rangeIn(1, 4);
  int64_t K2 = Rng.rangeIn(1, 4);
  bool Par = Rng.coin();
  std::string CalleeGoal = Callee.empty() ? "" : Callee + "(T, _W)";
  R.Text += ":- mode(" + P + "(i, o)).\n";
  R.Text += ":- measure(" + P + "(length, value)).\n";
  R.Text += ":- mode(" + Q + "(i, o)).\n";
  R.Text += ":- measure(" + Q + "(length, value)).\n";
  R.Text += P + "([], " + num(B1) + ").\n";
  R.Text += P + "([_|T], S) :- " +
            callPair(CalleeGoal, Q + "(T, S1)", Par) + ", S is S1 + " +
            num(K1) + ".\n";
  R.Text += Q + "([], " + num(B2) + ").\n";
  R.Text += Q + "([_|T], S) :- " + P + "(T, S1), S is S1 + " + num(K2) +
            ".\n";
  R.Entry = R.RecPred = P;
  R.EntryArity = R.RecArity = 2;
  R.RecArgPos = 0;
  R.DefaultInputHint = static_cast<int>(Rng.rangeIn(8, 14));
  return R;
}

EmitResult emitArith(const std::string &P, const std::string &Callee,
                     bool CalleeValue, SplitMix64 &Rng) {
  EmitResult R;
  bool Binary = Rng.range(3) == 0;
  int64_t Base = Rng.rangeIn(0, 3);
  int64_t K = Rng.rangeIn(1, 5);
  R.Text += ":- mode(" + P + "(i, o)).\n";
  R.Text += ":- measure(" + P + "(value, value)).\n";
  if (Binary) {
    std::string CalleeGoal = Callee.empty() ? "" : Callee + "(N1, _W), ";
    R.Text += P + "(0, " + num(Base) + ").\n";
    R.Text += P + "(1, " + num(K) + ").\n";
    R.Text += P + "(N, S) :- N > 1, N1 is N - 1, N2 is N - 2, " +
              CalleeGoal + "( " + P + "(N1, S1) & " + P +
              "(N2, S2) ), S is S1 + S2.\n";
    R.DefaultInputHint = static_cast<int>(Rng.rangeIn(6, 9));
  } else {
    bool Par = Rng.coin();
    bool UseW = !Callee.empty() && CalleeValue && Rng.coin();
    std::string OutW = Callee.empty() ? "" : (UseW ? "W" : "_W");
    std::string CalleeGoal =
        Callee.empty() ? "" : Callee + "(N1, " + OutW + ")";
    R.Text += P + "(0, " + num(Base) + ").\n";
    R.Text += P + "(N, S) :- N > 0, N1 is N - 1, " +
              callPair(CalleeGoal, P + "(N1, S1)", Par) + ", S is S1 + " +
              num(K) + (UseW ? " + W" : "") + ".\n";
    R.DefaultInputHint = static_cast<int>(Rng.rangeIn(10, 16));
  }
  R.Entry = R.RecPred = P;
  R.EntryArity = R.RecArity = 2;
  R.RecArgPos = 0;
  return R;
}

EmitResult emitDivideAndConquer(const std::string &P,
                                const std::string &Callee,
                                SplitMix64 &Rng) {
  EmitResult R;
  int64_t B0 = Rng.rangeIn(0, 2);
  int64_t B1 = Rng.rangeIn(1, 3);
  int64_t K = Rng.rangeIn(1, 5);
  bool Par = Rng.coin();
  std::string CalleeGoal = Callee.empty() ? "" : Callee + "(H, _W), ";
  std::string Pair = Par ? "( " + P + "(H, S1) & " + P + "(H, S2) )"
                         : P + "(H, S1), " + P + "(H, S2)";
  R.Text += ":- mode(" + P + "(i, o)).\n";
  R.Text += ":- measure(" + P + "(value, value)).\n";
  R.Text += P + "(0, " + num(B0) + ").\n";
  R.Text += P + "(1, " + num(B1) + ").\n";
  R.Text += P + "(N, S) :- N > 1, H is N // 2, " + CalleeGoal + Pair +
            ", S is S1 + S2 + " + num(K) + ".\n";
  R.Entry = R.RecPred = P;
  R.EntryArity = R.RecArity = 2;
  R.RecArgPos = 0;
  R.DefaultInputHint = static_cast<int>(Rng.rangeIn(8, 16));
  return R;
}

EmitResult emitTree(const std::string &P, const std::string &Callee,
                    SplitMix64 &Rng) {
  EmitResult R;
  int64_t K = Rng.rangeIn(0, 4);
  bool LeafValue = Rng.coin();
  bool Par = Rng.coin();
  std::string CalleeGoal = Callee.empty() ? "" : Callee + "(L, _W), ";
  std::string Pair = Par ? "( " + P + "(L, S1) & " + P + "(R, S2) )"
                         : P + "(L, S1), " + P + "(R, S2)";
  R.Text += ":- mode(" + P + "(i, o)).\n";
  R.Text += ":- measure(" + P + "(size, value)).\n";
  if (LeafValue)
    R.Text += P + "(leaf(V), V).\n";
  else
    R.Text += P + "(leaf(_), 1).\n";
  R.Text += P + "(node(L, R), S) :- " + CalleeGoal + Pair +
            ", S is S1 + S2 + " + num(K) + ".\n";
  R.Entry = R.RecPred = P;
  R.EntryArity = R.RecArity = 2;
  R.RecArgPos = 0;
  R.DefaultInputHint = static_cast<int>(Rng.rangeIn(3, 5));
  return R;
}

EmitResult emitPredicate(SchemaFamily F, const std::string &Prefix,
                         unsigned Slot, const std::string &Callee,
                         bool CalleeValue, SplitMix64 &Rng) {
  std::string P = primaryName(Prefix, Slot);
  switch (F) {
  case SchemaFamily::ListRecursion:
    return emitListSum(P, Slot, Callee, CalleeValue, Rng);
  case SchemaFamily::ListMap:
    return emitListMap(P, Callee, Rng);
  case SchemaFamily::Accumulator:
    return emitAccumulator(Prefix, Slot, Callee, Rng);
  case SchemaFamily::MutualRecursion:
    return emitMutual(Prefix, Slot, Callee, Rng);
  case SchemaFamily::ArithRecursion:
    return emitArith(P, Callee, CalleeValue, Rng);
  case SchemaFamily::DivideAndConquer:
    return emitDivideAndConquer(P, Callee, Rng);
  case SchemaFamily::TreeRecursion:
    return emitTree(P, Callee, Rng);
  }
  return emitListSum(P, Slot, Callee, CalleeValue, Rng);
}

} // namespace

const char *granlog::schemaFamilyName(SchemaFamily F) {
  switch (F) {
  case SchemaFamily::ListRecursion:
    return "list_recursion";
  case SchemaFamily::ListMap:
    return "list_map";
  case SchemaFamily::Accumulator:
    return "accumulator";
  case SchemaFamily::MutualRecursion:
    return "mutual_recursion";
  case SchemaFamily::ArithRecursion:
    return "arith_recursion";
  case SchemaFamily::DivideAndConquer:
    return "divide_and_conquer";
  case SchemaFamily::TreeRecursion:
    return "tree_recursion";
  }
  return "unknown";
}

GeneratedProgram granlog::generateProgram(uint64_t Seed, unsigned Index) {
  SplitMix64 Rng(mixSeed(Seed, Index));
  GeneratedProgram G;
  G.Seed = Seed;
  G.Index = Index;
  G.Name = "gen" + std::to_string(Index);
  std::string Prefix = "g" + std::to_string(Index);

  SchemaFamily Entry = pickEntryFamily(Rng);
  Domain D = domainOf(Entry);
  unsigned Depth = 1 + static_cast<unsigned>(Rng.range(3));
  std::vector<SchemaFamily> Slots{Entry};
  for (unsigned J = 1; J != Depth; ++J)
    Slots.push_back(pickFamilyIn(D, Rng));
  G.GoalSeed = Rng.next() | 1;
  G.Family = Entry;
  G.Depth = Depth;

  std::string Src = "% " + G.Name + ": seed=" + std::to_string(Seed) +
                    " family=" + schemaFamilyName(Entry) +
                    " depth=" + std::to_string(Depth) + "\n";
  for (unsigned J = 0; J != Depth; ++J) {
    bool HasCallee = J + 1 != Depth;
    std::string Callee = HasCallee ? primaryName(Prefix, J + 1) : "";
    bool CalleeValue = HasCallee && outputsValue(Slots[J + 1]);
    EmitResult E =
        emitPredicate(Slots[J], Prefix, J, Callee, CalleeValue, Rng);
    Src += E.Text;
    if (J == 0) {
      G.EntryPred = E.Entry;
      G.EntryArity = E.EntryArity;
      G.RecPred = E.RecPred;
      G.RecArity = E.RecArity;
      G.RecArgPos = E.RecArgPos;
      G.DefaultInput = E.DefaultInputHint;
    }
  }
  G.Source = std::move(Src);
  return G;
}

const Term *granlog::buildGeneratedGoal(const GeneratedProgram &G,
                                        TermArena &A, int N) {
  SplitMix64 Rng(G.GoalSeed);
  const Term *Input = nullptr;
  switch (domainOf(G.Family)) {
  case Domain::List: {
    std::vector<int64_t> Values;
    Values.reserve(static_cast<size_t>(N > 0 ? N : 0));
    for (int I = 0; I < N; ++I)
      Values.push_back(Rng.rangeIn(0, 19));
    Input = A.makeIntList(Values);
    break;
  }
  case Domain::Value:
    Input = A.makeInt(N);
    break;
  case Domain::Tree: {
    // A full binary tree of depth N with small integer leaves.
    struct Builder {
      TermArena &A;
      SplitMix64 &Rng;
      const Term *build(int Depth) {
        if (Depth <= 0)
          return A.makeStruct("leaf", {A.makeInt(Rng.rangeIn(1, 9))});
        const Term *L = build(Depth - 1);
        const Term *R = build(Depth - 1);
        return A.makeStruct("node", {L, R});
      }
    } B{A, Rng};
    Input = B.build(N);
    break;
  }
  }
  std::vector<const Term *> Args;
  if (G.EntryArity == 3)
    Args.push_back(A.makeInt(3)); // the passive pass-through argument
  Args.push_back(Input);
  Args.push_back(A.makeVariable("R"));
  return A.makeStruct(G.EntryPred, std::move(Args));
}

std::vector<GeneratedProgram>
granlog::generateCorpus(const GeneratorConfig &Config) {
  std::vector<GeneratedProgram> Out;
  Out.reserve(Config.Count);
  for (size_t I = 0; I != Config.Count; ++I)
    Out.push_back(generateProgram(Config.Seed, static_cast<unsigned>(I)));
  return Out;
}
