//===- program/CallGraph.cpp ----------------------------------------------===//

#include "program/CallGraph.h"

#include <algorithm>

using namespace granlog;

CallGraph::CallGraph(const Program &P) : P(&P) {
  const SymbolTable &Symbols = P.symbols();
  // Build edges.
  for (const auto &PredPtr : P.predicates()) {
    Functor F = PredPtr->functor();
    std::vector<Functor> &Out = Callees[F];
    for (const Clause &C : PredPtr->clauses()) {
      for (const Term *Lit : C.bodyLiterals()) {
        std::optional<Functor> LF = literalFunctor(Lit);
        if (!LF || isBuiltinFunctor(*LF, Symbols))
          continue;
        if (!P.lookup(*LF))
          continue; // call to an undefined predicate; ignored here
        if (std::find(Out.begin(), Out.end(), *LF) == Out.end())
          Out.push_back(*LF);
      }
    }
  }
  runTarjan();
}

const std::vector<Functor> &CallGraph::callees(Functor Pred) const {
  static const std::vector<Functor> Empty;
  auto It = Callees.find(Pred);
  return It == Callees.end() ? Empty : It->second;
}

unsigned CallGraph::sccId(Functor Pred) const {
  auto It = SCCIds.find(Pred);
  assert(It != SCCIds.end() && "predicate not in call graph");
  return It->second;
}

const std::vector<Functor> &CallGraph::sccMembers(unsigned Id) const {
  assert(Id < SCCs.size() && "bad SCC id");
  return SCCs[Id];
}

bool CallGraph::isRecursive(Functor Pred) const {
  auto It = SCCIds.find(Pred);
  if (It == SCCIds.end())
    return false;
  if (SCCs[It->second].size() > 1)
    return true;
  const std::vector<Functor> &Out = callees(Pred);
  return std::find(Out.begin(), Out.end(), Pred) != Out.end();
}

bool CallGraph::inSameSCC(Functor Caller, Functor Callee) const {
  auto ItA = SCCIds.find(Caller);
  auto ItB = SCCIds.find(Callee);
  if (ItA == SCCIds.end() || ItB == SCCIds.end())
    return false;
  // A self-call only counts as recursive when the predicate actually is.
  if (Caller == Callee)
    return isRecursive(Caller);
  return ItA->second == ItB->second;
}

ClauseRecursion CallGraph::classifyClause(Functor Pred,
                                          const Clause &C) const {
  bool AnyRecursive = false;
  bool AnyMutual = false;
  for (const Term *Lit : C.bodyLiterals()) {
    std::optional<Functor> LF = literalFunctor(Lit);
    if (!LF)
      continue;
    if (!inSameSCC(Pred, *LF))
      continue;
    AnyRecursive = true;
    if (*LF != Pred)
      AnyMutual = true;
  }
  if (!AnyRecursive)
    return ClauseRecursion::Nonrecursive;
  return AnyMutual ? ClauseRecursion::Mutual : ClauseRecursion::Simple;
}

void CallGraph::runTarjan() {
  for (const auto &PredPtr : P->predicates())
    if (!State[PredPtr->functor()].Visited)
      strongConnect(PredPtr->functor());
  // Tarjan emits SCCs in reverse topological order of the condensation
  // (callers before callees when edges point caller -> callee)... in fact
  // Tarjan pops an SCC only after all its successors' SCCs were emitted, so
  // the emission order is callee-first already.  Build the flat order.
  for (const std::vector<Functor> &SCC : SCCs)
    for (Functor F : SCC)
      TopoOrder.push_back(F);
}

void CallGraph::strongConnect(Functor V) {
  // Iterative Tarjan to avoid deep recursion on long call chains.
  struct Frame {
    Functor Node;
    size_t NextEdge = 0;
  };
  std::vector<Frame> Work;
  auto Push = [&](Functor N) {
    NodeState &NS = State[N];
    NS.Visited = true;
    NS.Index = NS.LowLink = NextIndex++;
    NS.OnStack = true;
    Stack.push_back(N);
    Work.push_back({N, 0});
  };
  Push(V);
  while (!Work.empty()) {
    Frame &F = Work.back();
    const std::vector<Functor> &Out = callees(F.Node);
    if (F.NextEdge < Out.size()) {
      Functor W = Out[F.NextEdge++];
      NodeState &WS = State[W];
      if (!WS.Visited) {
        Push(W);
      } else if (WS.OnStack) {
        NodeState &NS = State[F.Node];
        NS.LowLink = std::min(NS.LowLink, WS.Index);
      }
      continue;
    }
    // All edges done: maybe emit an SCC, then propagate lowlink upward.
    NodeState &NS = State[F.Node];
    if (NS.LowLink == NS.Index) {
      std::vector<Functor> SCC;
      for (;;) {
        Functor W = Stack.back();
        Stack.pop_back();
        State[W].OnStack = false;
        SCC.push_back(W);
        SCCIds[W] = static_cast<unsigned>(SCCs.size());
        if (W == F.Node)
          break;
      }
      std::reverse(SCC.begin(), SCC.end());
      SCCs.push_back(std::move(SCC));
    }
    Functor Done = F.Node;
    Work.pop_back();
    if (!Work.empty()) {
      NodeState &Parent = State[Work.back().Node];
      Parent.LowLink = std::min(Parent.LowLink, State[Done].LowLink);
    }
  }
}

std::vector<unsigned> CallGraph::reachableSCCs(Functor Pred) const {
  std::vector<bool> Seen(SCCs.size(), false);
  std::vector<unsigned> Work{sccId(Pred)};
  Seen[Work.front()] = true;
  while (!Work.empty()) {
    unsigned Id = Work.back();
    Work.pop_back();
    for (Functor F : sccMembers(Id))
      for (Functor Callee : callees(F)) {
        unsigned CalleeId = sccId(Callee);
        if (!Seen[CalleeId]) {
          Seen[CalleeId] = true;
          Work.push_back(CalleeId);
        }
      }
  }
  std::vector<unsigned> Out;
  for (unsigned Id = 0; Id != Seen.size(); ++Id)
    if (Seen[Id])
      Out.push_back(Id);
  return Out;
}
