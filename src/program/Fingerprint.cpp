//===- program/Fingerprint.cpp --------------------------------------------===//

#include "program/Fingerprint.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace granlog;

uint64_t granlog::fingerprintCombine(uint64_t Seed, uint64_t V) {
  uint64_t H = Seed ^ (V + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
  H ^= H >> 30;
  H *= 0xbf58476d1ce4e5b9ULL;
  H ^= H >> 27;
  H *= 0x94d049bb133111ebULL;
  H ^= H >> 31;
  return H;
}

uint64_t granlog::fingerprintString(uint64_t Seed, std::string_view S) {
  // FNV-1a over the bytes, then one combine so runs of strings don't
  // concatenate ambiguously ("ab"+"c" vs "a"+"bc").
  uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  Seed = fingerprintCombine(Seed, H);
  return fingerprintCombine(Seed, S.size());
}

namespace {

/// Kind tags mixed in ahead of each node so that e.g. the atom 'foo' and
/// a variable never collide structurally.
enum : uint64_t {
  TagVar = 1,
  TagAtom = 2,
  TagInt = 3,
  TagFloat = 4,
  TagStruct = 5,
  TagNoTerm = 6, // absent optional term (e.g. no trust_cost)
};

/// Walks terms, numbering variables by first occurrence so the
/// fingerprint is invariant under renaming.  One walker per clause (or
/// per standalone declaration term): variable numbering is scoped to it.
class TermHasher {
public:
  explicit TermHasher(const SymbolTable &Symbols) : Symbols(Symbols) {}

  uint64_t hash(uint64_t Seed, const Term *T) {
    if (!T)
      return fingerprintCombine(Seed, TagNoTerm);
    switch (T->kind()) {
    case TermKind::Variable: {
      const VarTerm *V = cast<VarTerm>(T);
      auto [It, Inserted] = VarIds.try_emplace(V, VarIds.size());
      (void)Inserted;
      Seed = fingerprintCombine(Seed, TagVar);
      return fingerprintCombine(Seed, It->second);
    }
    case TermKind::Atom:
      Seed = fingerprintCombine(Seed, TagAtom);
      return fingerprintString(Seed, Symbols.text(cast<AtomTerm>(T)->name()));
    case TermKind::Int:
      Seed = fingerprintCombine(Seed, TagInt);
      return fingerprintCombine(
          Seed, static_cast<uint64_t>(cast<IntTerm>(T)->value()));
    case TermKind::Float: {
      Seed = fingerprintCombine(Seed, TagFloat);
      double D = cast<FloatTerm>(T)->value();
      uint64_t Bits;
      static_assert(sizeof(Bits) == sizeof(D));
      __builtin_memcpy(&Bits, &D, sizeof(Bits));
      return fingerprintCombine(Seed, Bits);
    }
    case TermKind::Struct: {
      const StructTerm *S = cast<StructTerm>(T);
      Seed = fingerprintCombine(Seed, TagStruct);
      Seed = fingerprintString(Seed, Symbols.text(S->name()));
      Seed = fingerprintCombine(Seed, S->arity());
      for (const Term *Arg : S->args())
        Seed = hash(Seed, Arg);
      return Seed;
    }
    }
    return Seed;
  }

private:
  const SymbolTable &Symbols;
  // Keyed by VarTerm identity: the loader creates one VarTerm per
  // distinct source name per clause, so identity == clause-local name.
  std::unordered_map<const VarTerm *, uint64_t> VarIds;
};

} // namespace

uint64_t granlog::clauseFingerprint(const Clause &C,
                                    const SymbolTable &Symbols) {
  // Hash head then the full body term (not just the flattened literals:
  // the control structure — ','/2 vs '&'/2 vs ';'/2 — is semantic).
  TermHasher Hasher(Symbols);
  uint64_t Seed = fingerprintCombine(0x67726c6f67ULL /* "grlog" */, 1);
  Seed = Hasher.hash(Seed, C.head());
  return Hasher.hash(Seed, C.body());
}

uint64_t granlog::predicateFingerprint(const Predicate &Pred,
                                       const SymbolTable &Symbols) {
  uint64_t Seed = fingerprintString(0x70726564ULL /* "pred" */,
                                    Symbols.text(Pred.functor().Name));
  Seed = fingerprintCombine(Seed, Pred.functor().Arity);

  // Clause multiset: sorted so reordering clauses does not change the
  // fingerprint (the analyses treat clauses as a set: max/sum over clause
  // costs, pairwise exclusion).
  std::vector<uint64_t> ClauseFps;
  ClauseFps.reserve(Pred.clauses().size());
  for (const Clause &C : Pred.clauses())
    ClauseFps.push_back(clauseFingerprint(C, Symbols));
  std::sort(ClauseFps.begin(), ClauseFps.end());
  Seed = fingerprintCombine(Seed, ClauseFps.size());
  for (uint64_t F : ClauseFps)
    Seed = fingerprintCombine(Seed, F);

  // Declarations that feed the analyses.
  Seed = fingerprintCombine(Seed, Pred.declaredModes().size());
  for (ArgMode M : Pred.declaredModes())
    Seed = fingerprintCombine(Seed, static_cast<uint64_t>(M));
  Seed = fingerprintCombine(Seed, Pred.declaredMeasures().size());
  for (MeasureKind M : Pred.declaredMeasures())
    Seed = fingerprintCombine(Seed, static_cast<uint64_t>(M));
  Seed =
      fingerprintCombine(Seed, static_cast<uint64_t>(Pred.parallelDecl()));

  {
    TermHasher Hasher(Symbols);
    Seed = Hasher.hash(Seed, Pred.trustCost());
  }
  // trustSizes is an unordered map: fold in position order.
  std::vector<std::pair<unsigned, const Term *>> Trusts(
      Pred.trustSizes().begin(), Pred.trustSizes().end());
  std::sort(Trusts.begin(), Trusts.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  Seed = fingerprintCombine(Seed, Trusts.size());
  for (const auto &[Pos, T] : Trusts) {
    Seed = fingerprintCombine(Seed, Pos);
    TermHasher Hasher(Symbols);
    Seed = Hasher.hash(Seed, T);
  }
  return Seed;
}

SCCFingerprints
granlog::fingerprintSCCs(const Program &P, const CallGraph &CG,
                         const std::function<uint64_t(Functor)> &MemberSalt) {
  const SymbolTable &Symbols = P.symbols();
  const unsigned N = CG.numSCCs();
  SCCFingerprints FP;
  FP.Content.resize(N);
  FP.Combined.resize(N);

  for (unsigned Id = 0; Id != N; ++Id) {
    // Members sorted by name text: SCC membership is a set, and Tarjan's
    // emission order depends on definition order, which must not matter.
    std::vector<std::pair<std::string, Functor>> Members;
    for (Functor F : CG.sccMembers(Id))
      Members.emplace_back(Symbols.text(F), F);
    std::sort(Members.begin(), Members.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });

    uint64_t Seed = fingerprintCombine(0x736363ULL /* "scc" */, Members.size());
    for (const auto &[Name, F] : Members) {
      Seed = fingerprintString(Seed, Name);
      if (const Predicate *Pred = P.lookup(F))
        Seed = fingerprintCombine(Seed, predicateFingerprint(*Pred, Symbols));
      if (MemberSalt)
        Seed = fingerprintCombine(Seed, MemberSalt(F));
    }
    FP.Content[Id] = Seed;

    // Callee SCCs' combined fingerprints, deduplicated and sorted by
    // *value* (not by SCC id: ids depend on Tarjan's visit order, which
    // follows definition order and must not matter).  Ids are
    // callee-first so Combined[CalleeId] is already final here.
    std::vector<uint64_t> CalleeFps;
    for (const auto &[Name, F] : Members)
      for (Functor Callee : CG.callees(F))
        if (unsigned CalleeId = CG.sccId(Callee); CalleeId != Id)
          CalleeFps.push_back(FP.Combined[CalleeId]);
    std::sort(CalleeFps.begin(), CalleeFps.end());
    CalleeFps.erase(std::unique(CalleeFps.begin(), CalleeFps.end()),
                    CalleeFps.end());

    uint64_t Combined = fingerprintCombine(Seed, CalleeFps.size());
    for (uint64_t F : CalleeFps)
      Combined = fingerprintCombine(Combined, F);
    FP.Combined[Id] = Combined;
  }
  return FP;
}
