//===- program/Fingerprint.h - Content fingerprints -----------------------===//
//
// Part of GranLog; see DESIGN.md "Incremental analysis & persistent
// caching".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical 64-bit content fingerprints of clauses, predicates and
/// call-graph SCCs — the change-detection layer of the incremental
/// analysis engine (AnalysisSession).
///
/// Invariance properties, by construction:
///   - whitespace/comments: fingerprints hash the parsed term structure,
///     never source text or SourceLocs;
///   - variable renaming: variables are numbered by first occurrence in a
///     pre-order walk of head-then-body, so the names never enter the
///     hash;
///   - clause reordering within a predicate: the predicate fingerprint
///     combines the *sorted* multiset of its clause fingerprints.
///
/// The SCC fingerprints implement the invalidation rule: an SCC's
/// *content* fingerprint covers its members' clauses, declarations and a
/// caller-supplied per-member salt (the session feeds in computed modes,
/// determinacy and solution bounds, since mode inference flows top-down
/// from entry points and so is not derivable from the SCC's own text);
/// its *combined* fingerprint additionally folds in every callee SCC's
/// combined fingerprint.  A change anywhere below an SCC therefore
/// changes its combined fingerprint — "invalidate dirty SCCs and their
/// transitive callers" reduces to a lookup miss on the combined value.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_PROGRAM_FINGERPRINT_H
#define GRANLOG_PROGRAM_FINGERPRINT_H

#include "program/CallGraph.h"
#include "program/Program.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace granlog {

/// splitmix64-style combine: mixes \p V into \p Seed.  The same mixer the
/// solver-cache and interner hashes use, kept 64-bit and
/// platform-independent so fingerprints are stable across builds.
uint64_t fingerprintCombine(uint64_t Seed, uint64_t V);

/// Mixes a string's bytes (FNV-1a folded through the combiner).
uint64_t fingerprintString(uint64_t Seed, std::string_view S);

/// Canonical fingerprint of one clause: head and body literals hashed
/// structurally with variables numbered by first occurrence.
uint64_t clauseFingerprint(const Clause &C, const SymbolTable &Symbols);

/// Canonical fingerprint of a predicate: name/arity, the sorted multiset
/// of clause fingerprints, and every analysis-relevant declaration
/// (modes, measures, parallel/sequential, trust_cost/trust_size).
uint64_t predicateFingerprint(const Predicate &Pred,
                              const SymbolTable &Symbols);

/// Per-SCC fingerprints, indexed by CallGraph SCC id.
struct SCCFingerprints {
  /// The SCC's own content: member predicate fingerprints (sorted by
  /// member name) plus the per-member salt.
  std::vector<uint64_t> Content;
  /// Content plus every callee SCC's Combined value (deduplicated,
  /// sorted) — the store key of the incremental session.
  std::vector<uint64_t> Combined;
};

/// Computes both fingerprint vectors for every SCC of \p CG.
/// \p MemberSalt (optional) supplies extra per-member content to fold
/// into the SCC fingerprint — computed analysis inputs that are not a
/// function of the SCC's own clauses (inferred modes, determinacy,
/// solution bounds).
SCCFingerprints
fingerprintSCCs(const Program &P, const CallGraph &CG,
                const std::function<uint64_t(Functor)> &MemberSalt = {});

} // namespace granlog

#endif // GRANLOG_PROGRAM_FINGERPRINT_H
