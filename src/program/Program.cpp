//===- program/Program.cpp ------------------------------------------------===//

#include "program/Program.h"

#include "reader/Parser.h"
#include "term/TermWriter.h"

#include <set>

using namespace granlog;

const char *granlog::measureName(MeasureKind M) {
  switch (M) {
  case MeasureKind::ListLength:
    return "length";
  case MeasureKind::TermSize:
    return "size";
  case MeasureKind::TermDepth:
    return "depth";
  case MeasureKind::IntValue:
    return "value";
  case MeasureKind::Void:
    return "void";
  }
  assert(false && "unknown measure");
  return "?";
}

Predicate &Program::getOrCreate(Functor F) {
  auto It = Index.find(F);
  if (It != Index.end())
    return *It->second;
  Preds.push_back(std::make_unique<Predicate>(F));
  Index.emplace(F, Preds.back().get());
  return *Preds.back();
}

const Predicate *Program::lookup(Functor F) const {
  auto It = Index.find(F);
  return It == Index.end() ? nullptr : It->second;
}

Predicate *Program::lookup(Functor F) {
  auto It = Index.find(F);
  return It == Index.end() ? nullptr : It->second;
}

const Predicate *Program::lookup(std::string_view Name,
                                 unsigned Arity) const {
  Symbol S = Arena->symbols().lookup(Name);
  if (!S.isValid())
    return nullptr;
  return lookup(Functor{S, Arity});
}

std::optional<Functor> granlog::literalFunctor(const Term *Literal) {
  Literal = deref(Literal);
  if (const AtomTerm *A = dynCast<AtomTerm>(Literal))
    return Functor{A->name(), 0};
  if (const StructTerm *S = dynCast<StructTerm>(Literal))
    return S->functor();
  return std::nullopt;
}

bool granlog::isControlFunctor(Functor F, const SymbolTable &Symbols) {
  const std::string &Name = Symbols.text(F.Name);
  if (F.Arity == 2)
    return Name == "," || Name == "&" || Name == ";" || Name == "->";
  if (F.Arity == 1)
    return Name == "\\+";
  return false;
}

bool granlog::isBuiltinFunctor(Functor F, const SymbolTable &Symbols) {
  const std::string &Name = Symbols.text(F.Name);
  switch (F.Arity) {
  case 0:
    return Name == "true" || Name == "fail" || Name == "!" || Name == "nl";
  case 1:
    return Name == "var" || Name == "nonvar" || Name == "atom" ||
           Name == "number" || Name == "integer" || Name == "float" ||
           Name == "atomic" || Name == "is_list" || Name == "write";
  case 2:
    return Name == "is" || Name == "=" || Name == "\\=" || Name == "==" ||
           Name == "\\==" || Name == "<" || Name == ">" || Name == "=<" ||
           Name == ">=" || Name == "=:=" || Name == "=\\=" ||
           Name == "length" || Name == "$grain_leq";
  case 3:
    return Name == "functor" || Name == "arg" || Name == "$grain_leq" ||
           Name == "findall" || Name == "between";
  default:
    return false;
  }
}

void granlog::flattenBodyLiterals(const Term *Body,
                                  const SymbolTable &Symbols,
                                  std::vector<const Term *> &Out) {
  Body = deref(Body);
  if (const StructTerm *S = dynCast<StructTerm>(Body)) {
    if (isControlFunctor(S->functor(), Symbols)) {
      for (const Term *Arg : S->args())
        flattenBodyLiterals(Arg, Symbols, Out);
      return;
    }
  }
  if (const AtomTerm *A = dynCast<AtomTerm>(Body))
    if (Symbols.text(A->name()) == "true")
      return;
  Out.push_back(Body);
}

namespace {

/// Directive interpretation helpers for loadProgram().
class ProgramLoader {
public:
  ProgramLoader(Program &P, TermArena &Arena, Diagnostics &Diags)
      : P(P), Arena(Arena), Symbols(Arena.symbols()), Diags(Diags) {}

  void addClauseTerm(const Term *T, SourceLoc Loc);

private:
  void handleDirective(const Term *D, SourceLoc Loc);
  std::optional<Functor> parseIndicator(const Term *T);
  std::optional<ArgMode> parseMode(const Term *T);
  std::optional<MeasureKind> parseMeasure(const Term *T);
  std::string text(const Term *T) { return termText(T, Symbols); }

  Program &P;
  TermArena &Arena;
  SymbolTable &Symbols;
  Diagnostics &Diags;
};

} // namespace

std::optional<Functor> ProgramLoader::parseIndicator(const Term *T) {
  // Either p/2 or a template term p(_, _).
  T = deref(T);
  if (const StructTerm *S = dynCast<StructTerm>(T)) {
    if (S->arity() == 2 && Symbols.text(S->name()) == "/") {
      const AtomTerm *Name = dynCast<AtomTerm>(deref(S->arg(0)));
      const IntTerm *Arity = dynCast<IntTerm>(deref(S->arg(1)));
      if (Name && Arity && Arity->value() >= 0)
        return Functor{Name->name(), static_cast<unsigned>(Arity->value())};
      return std::nullopt;
    }
    return S->functor();
  }
  if (const AtomTerm *A = dynCast<AtomTerm>(T))
    return Functor{A->name(), 0};
  return std::nullopt;
}

std::optional<ArgMode> ProgramLoader::parseMode(const Term *T) {
  const AtomTerm *A = dynCast<AtomTerm>(deref(T));
  if (!A)
    return std::nullopt;
  const std::string &Name = Symbols.text(A->name());
  if (Name == "i" || Name == "+")
    return ArgMode::In;
  if (Name == "o" || Name == "-")
    return ArgMode::Out;
  if (Name == "?")
    return ArgMode::Unknown;
  return std::nullopt;
}

std::optional<MeasureKind> ProgramLoader::parseMeasure(const Term *T) {
  const AtomTerm *A = dynCast<AtomTerm>(deref(T));
  if (!A)
    return std::nullopt;
  const std::string &Name = Symbols.text(A->name());
  if (Name == "length")
    return MeasureKind::ListLength;
  if (Name == "size")
    return MeasureKind::TermSize;
  if (Name == "depth")
    return MeasureKind::TermDepth;
  if (Name == "value" || Name == "int")
    return MeasureKind::IntValue;
  if (Name == "void")
    return MeasureKind::Void;
  return std::nullopt;
}

void ProgramLoader::handleDirective(const Term *D, SourceLoc Loc) {
  D = deref(D);
  std::optional<Functor> F = literalFunctor(D);
  if (!F) {
    Diags.error(Loc, "malformed directive: " + text(D));
    return;
  }
  const std::string &Name = Symbols.text(F->Name);

  if (Name == "mode" && F->Arity >= 1) {
    const StructTerm *S = cast<StructTerm>(D);
    std::vector<ArgMode> Modes;
    Functor Target;
    if (F->Arity == 2) {
      // mode(p/2, [i,o])
      std::optional<Functor> Ind = parseIndicator(S->arg(0));
      std::vector<const Term *> Elements;
      if (!Ind ||
          !collectListElements(S->arg(1), Symbols, Elements)) {
        Diags.error(Loc, "malformed mode directive: " + text(D));
        return;
      }
      for (const Term *E : Elements) {
        std::optional<ArgMode> M = parseMode(E);
        if (!M) {
          Diags.error(Loc, "bad mode specifier in: " + text(D));
          return;
        }
        Modes.push_back(*M);
      }
      Target = *Ind;
    } else {
      // mode(p(i, o))
      const Term *Tmpl = deref(S->arg(0));
      std::optional<Functor> Ind = literalFunctor(Tmpl);
      if (!Ind) {
        Diags.error(Loc, "malformed mode directive: " + text(D));
        return;
      }
      if (const StructTerm *TS = dynCast<StructTerm>(Tmpl)) {
        for (const Term *Arg : TS->args()) {
          std::optional<ArgMode> M = parseMode(Arg);
          if (!M) {
            Diags.error(Loc, "bad mode specifier in: " + text(D));
            return;
          }
          Modes.push_back(*M);
        }
      }
      Target = *Ind;
    }
    if (Modes.size() != Target.Arity) {
      Diags.error(Loc, "mode arity mismatch in: " + text(D));
      return;
    }
    P.getOrCreate(Target).setDeclaredModes(std::move(Modes));
    return;
  }

  if (Name == "measure" && F->Arity >= 1) {
    const StructTerm *S = cast<StructTerm>(D);
    std::vector<MeasureKind> Measures;
    Functor Target;
    if (F->Arity == 2) {
      std::optional<Functor> Ind = parseIndicator(S->arg(0));
      std::vector<const Term *> Elements;
      if (!Ind || !collectListElements(S->arg(1), Symbols, Elements)) {
        Diags.error(Loc, "malformed measure directive: " + text(D));
        return;
      }
      for (const Term *E : Elements) {
        std::optional<MeasureKind> M = parseMeasure(E);
        if (!M) {
          Diags.error(Loc, "bad measure specifier in: " + text(D));
          return;
        }
        Measures.push_back(*M);
      }
      Target = *Ind;
    } else {
      const Term *Tmpl = deref(S->arg(0));
      std::optional<Functor> Ind = literalFunctor(Tmpl);
      if (!Ind) {
        Diags.error(Loc, "malformed measure directive: " + text(D));
        return;
      }
      if (const StructTerm *TS = dynCast<StructTerm>(Tmpl)) {
        for (const Term *Arg : TS->args()) {
          std::optional<MeasureKind> M = parseMeasure(Arg);
          if (!M) {
            Diags.error(Loc, "bad measure specifier in: " + text(D));
            return;
          }
          Measures.push_back(*M);
        }
      }
      Target = *Ind;
    }
    if (Measures.size() != Target.Arity) {
      Diags.error(Loc, "measure arity mismatch in: " + text(D));
      return;
    }
    P.getOrCreate(Target).setDeclaredMeasures(std::move(Measures));
    return;
  }

  if ((Name == "parallel" || Name == "sequential") && F->Arity == 1) {
    const StructTerm *S = cast<StructTerm>(D);
    std::optional<Functor> Ind = parseIndicator(S->arg(0));
    if (!Ind) {
      Diags.error(Loc, "malformed " + Name + " directive: " + text(D));
      return;
    }
    P.getOrCreate(*Ind).setParallelDecl(Name == "parallel"
                                            ? ParallelDecl::Parallel
                                            : ParallelDecl::Sequential);
    return;
  }

  if (Name == "trust_cost" && F->Arity == 2) {
    const StructTerm *S = cast<StructTerm>(D);
    std::optional<Functor> Ind = parseIndicator(S->arg(0));
    if (!Ind) {
      Diags.error(Loc, "malformed trust_cost directive: " + text(D));
      return;
    }
    P.getOrCreate(*Ind).setTrustCost(deref(S->arg(1)));
    return;
  }

  if (Name == "trust_size" && F->Arity == 3) {
    const StructTerm *S = cast<StructTerm>(D);
    std::optional<Functor> Ind = parseIndicator(S->arg(0));
    const IntTerm *Pos = dynCast<IntTerm>(deref(S->arg(1)));
    if (!Ind || !Pos || Pos->value() < 1 ||
        Pos->value() > static_cast<int64_t>(Ind->Arity)) {
      Diags.error(Loc, "malformed trust_size directive: " + text(D));
      return;
    }
    P.getOrCreate(*Ind).setTrustSize(
        static_cast<unsigned>(Pos->value() - 1), deref(S->arg(2)));
    return;
  }

  if (Name == "entry" && F->Arity == 1) {
    P.addEntryPoint(deref(cast<StructTerm>(D)->arg(0)));
    return;
  }

  Diags.warning(Loc, "ignoring unknown directive: " + text(D));
}

void ProgramLoader::addClauseTerm(const Term *T, SourceLoc Loc) {
  T = deref(T);
  // Directive?
  if (const StructTerm *S = dynCast<StructTerm>(T)) {
    const std::string &Name = Symbols.text(S->name());
    if (Name == ":-" && S->arity() == 1) {
      handleDirective(S->arg(0), Loc);
      return;
    }
    if (Name == ":-" && S->arity() == 2) {
      const Term *Head = deref(S->arg(0));
      std::optional<Functor> HF = literalFunctor(Head);
      if (!HF || isBuiltinFunctor(*HF, Symbols) ||
          isControlFunctor(*HF, Symbols)) {
        Diags.error(Loc, "invalid clause head: " + text(Head));
        return;
      }
      Clause C(Head, deref(S->arg(1)), Loc);
      std::vector<const Term *> Literals;
      flattenBodyLiterals(C.body(), Symbols, Literals);
      C.setBodyLiterals(std::move(Literals));
      P.getOrCreate(*HF).addClause(std::move(C));
      return;
    }
  }
  // Fact.
  std::optional<Functor> HF = literalFunctor(T);
  if (!HF || isBuiltinFunctor(*HF, Symbols) ||
      isControlFunctor(*HF, Symbols)) {
    Diags.error(Loc, "invalid clause: " + text(T));
    return;
  }
  Clause C(T, Arena.makeAtom("true"), Loc);
  P.getOrCreate(*HF).addClause(std::move(C));
}

std::optional<Program> granlog::loadProgram(std::string_view Source,
                                            TermArena &Arena,
                                            Diagnostics &Diags, Budget *B) {
  Program P(Arena);
  ProgramLoader Loader(P, Arena, Diags);
  Parser Parse(Source, Arena, Diags);
  Parse.setBudget(B);
  uint64_t ClauseLimit = B ? B->limits().Clauses : 0;
  uint64_t Clauses = 0;
  while (!Parse.atEnd()) {
    const Term *T = Parse.readClause();
    if (!T) {
      if (Parse.atEnd())
        break;
      continue; // error recovery: the parser skipped to the clause end
    }
    // Like token exhaustion, hitting the clause limit aborts the load: a
    // program with clauses silently dropped would be unsound to analyze.
    if (ClauseLimit && ++Clauses > ClauseLimit) {
      Diags.error(SourceLoc(),
                  budgetWhy(*B, MeterKind::Clauses) +
                      ": program too large to load");
      B->record({"reader", MeterKind::Clauses, std::string()});
      return std::nullopt;
    }
    Loader.addClauseTerm(T, SourceLoc());
  }
  if (Diags.hasErrors())
    return std::nullopt;
  return P;
}

std::string granlog::clauseText(const Clause &C, const SymbolTable &Symbols) {
  std::string Head = termText(C.head(), Symbols);
  const AtomTerm *True = dynCast<AtomTerm>(deref(C.body()));
  if (True && Symbols.text(True->name()) == "true")
    return Head + ".";
  return Head + " :-\n    " + termText(C.body(), Symbols) + ".";
}

std::string granlog::programText(const Program &P) {
  std::string Out;
  const SymbolTable &Symbols = P.symbols();
  for (const auto &Pred : P.predicates()) {
    for (const Clause &C : Pred->clauses()) {
      Out += clauseText(C, Symbols);
      Out += '\n';
    }
  }
  return Out;
}
