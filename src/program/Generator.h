//===- program/Generator.h - Deterministic program generator --------------===//
//
// Part of GranLog; see DESIGN.md "Generated corpus & sharded batch".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seed-driven generator of structurally diverse Prolog programs drawn
/// from the recursion schemas the size/cost analyses actually exercise
/// (list, tree and arithmetic recursion; accumulators; divide-and-conquer;
/// mutual recursion).  Each program carries known-by-construction metadata
/// — schema family, expected recursion argument, chaining depth — so
/// property tests can check the analyzer against ground truth, and a goal
/// builder producing small terminating queries so differential tests can
/// execute the program on the interpreter and compare measured cost
/// against the static bounds.
///
/// Determinism contract: for a fixed (Seed, Index) the generated text and
/// metadata are byte-identical across runs, platforms and build modes.
/// The generator derives every choice from its own SplitMix64 stream
/// (never std::rand, never distribution templates with unspecified
/// algorithms, never hash-table iteration order), and program Index is
/// mixed into the seed so one program's shape is independent of how many
/// others were generated — shard assignments cannot perturb the corpus.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_PROGRAM_GENERATOR_H
#define GRANLOG_PROGRAM_GENERATOR_H

#include "term/Term.h"

#include <cstdint>
#include <string>
#include <vector>

namespace granlog {

/// The recursion schema of a generated predicate (the families of the
/// paper's schema tables, plus the compositions the corpus benchmarks
/// use).  Families group by argument domain: list (ListRecursion, ListMap,
/// Accumulator, MutualRecursion), numeric (ArithRecursion,
/// DivideAndConquer) and tree (TreeRecursion); chained callees stay inside
/// the entry predicate's domain so argument sizes remain derivable.
enum class SchemaFamily : uint8_t {
  ListRecursion,    ///< linear fold over a list, value output
  ListMap,          ///< element-wise rewrite, list output
  Accumulator,      ///< reverse-style wrapper + accumulating worker
  MutualRecursion,  ///< even/odd pair alternating over a list
  ArithRecursion,   ///< countdown on a number (single or double recursion)
  DivideAndConquer, ///< halving recursion with parallel subcalls
  TreeRecursion,    ///< structural recursion over node/leaf trees
};

constexpr unsigned NumSchemaFamilies = 7;

/// Stable lowercase name ("list_recursion", ...), used in reports, bench
/// JSON and test diagnostics.
const char *schemaFamilyName(SchemaFamily F);

/// One generated program plus its known-by-construction metadata.
struct GeneratedProgram {
  std::string Name;   ///< corpus name, "gen<Index>"
  std::string Source; ///< complete Prolog text (modes/measures included)
  uint64_t Seed = 0;  ///< corpus seed this program was drawn from
  unsigned Index = 0; ///< position in the generated corpus

  SchemaFamily Family = SchemaFamily::ListRecursion; ///< entry schema
  /// Number of chained generated predicates (nesting depth >= 1): the
  /// entry predicate's recursive clause calls the next predicate on its
  /// structurally smaller piece, and so on down the chain.
  unsigned Depth = 1;
  std::string EntryPred; ///< entry predicate name, e.g. "g12p0"
  unsigned EntryArity = 2;
  /// The predicate that carries the recursion the metadata describes (the
  /// accumulator worker for Accumulator, the entry predicate otherwise).
  std::string RecPred;
  unsigned RecArity = 2;
  int RecArgPos = 0; ///< expected recursion argument position of RecPred

  int DefaultInput = 8;  ///< goal input parameter (small and terminating)
  uint64_t GoalSeed = 0; ///< value stream for goal data (lists, leaves)
};

/// Generates program \p Index of the corpus with the given \p Seed.
GeneratedProgram generateProgram(uint64_t Seed, unsigned Index);

/// Builds the query term for \p G with input parameter \p N (a list of N
/// small integers, the number N, or a full binary tree of depth N,
/// depending on the entry family's domain; the last argument is a fresh
/// output variable).  Deterministic: the element values come from
/// G.GoalSeed.
const Term *buildGeneratedGoal(const GeneratedProgram &G, TermArena &A,
                               int N);

/// Configuration of one generated corpus.
struct GeneratorConfig {
  uint64_t Seed = 1;
  size_t Count = 100;
};

/// Generates programs 0..Count-1 for the seed.
std::vector<GeneratedProgram> generateCorpus(const GeneratorConfig &Config);

} // namespace granlog

#endif // GRANLOG_PROGRAM_GENERATOR_H
