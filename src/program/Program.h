//===- program/Program.h - Programs, predicates, clauses ------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program representation the analyses and the interpreter share.  A
/// Program owns Predicates; each Predicate owns Clauses.  Clause bodies are
/// kept as plain terms — ','/2 sequential conjunction, '&'/2 parallel
/// conjunction, ';'/2 disjunction, '->'/2 if-then — which the analyses and
/// the interpreter traverse structurally.
///
/// Directives understood by the loader:
///   :- mode(p(i, o)).            argument modes (i/+ input, o/- output)
///   :- mode(p/2, [i, o]).        same, by indicator
///   :- measure(p(length, length)).  size measures per argument:
///                                length | size | depth | value | void
///   :- measure(p/2, [...]).
///   :- parallel(p/2).            force classification AlwaysParallel
///   :- sequential(p/2).          force classification AlwaysSequential
///   :- entry(p(...)).            entry point (used by mode inference)
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_PROGRAM_PROGRAM_H
#define GRANLOG_PROGRAM_PROGRAM_H

#include "support/Diagnostics.h"
#include "term/Term.h"

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace granlog {

/// Argument mode: does the caller supply the argument (In) or does the
/// callee produce it (Out)?
enum class ArgMode { In, Out, Unknown };

/// The size measures of Section 3 of the paper.  Void marks argument
/// positions whose size is not tracked.
enum class MeasureKind {
  ListLength, ///< |[a,b]| = 2; undefined on non-lists
  TermSize,   ///< number of constant and function symbols
  TermDepth,  ///< depth of the tree representation
  IntValue,   ///< the value of an integer term
  Void,       ///< untracked
};

/// Returns a printable name ("length", "size", ...).
const char *measureName(MeasureKind M);

/// One clause Head :- Body.  Facts have the body atom 'true'.
class Clause {
public:
  Clause(const Term *Head, const Term *Body, SourceLoc Loc)
      : Head(Head), Body(Body), Loc(Loc) {}

  const Term *head() const { return Head; }
  const Term *body() const { return Body; }
  SourceLoc location() const { return Loc; }

  /// The callable body literals in left-to-right order, looking through
  /// ','/2, '&'/2, ';'/2, '->'/2 and '\\+'/1.  Computed by the loader.
  const std::vector<const Term *> &bodyLiterals() const {
    return BodyLiterals;
  }
  void setBodyLiterals(std::vector<const Term *> Literals) {
    BodyLiterals = std::move(Literals);
  }

private:
  const Term *Head;
  const Term *Body;
  SourceLoc Loc;
  std::vector<const Term *> BodyLiterals;
};

/// How a clause recurses (paper Section 3: nonrecursive, simple recursive,
/// mutually recursive).
enum class ClauseRecursion { Nonrecursive, Simple, Mutual };

/// Scheduling preference forced by directives.
enum class ParallelDecl { None, Parallel, Sequential };

/// A predicate: all clauses with the same name/arity plus its declarations.
class Predicate {
public:
  Predicate(Functor F) : F(F) {}

  Functor functor() const { return F; }
  unsigned arity() const { return F.Arity; }

  const std::vector<Clause> &clauses() const { return Clauses; }
  std::vector<Clause> &clauses() { return Clauses; }
  void addClause(Clause C) { Clauses.push_back(std::move(C)); }

  /// Declared modes; empty when no declaration was given.
  const std::vector<ArgMode> &declaredModes() const { return Modes; }
  void setDeclaredModes(std::vector<ArgMode> M) { Modes = std::move(M); }
  bool hasDeclaredModes() const { return !Modes.empty(); }

  /// Declared measures; empty when no declaration was given.
  const std::vector<MeasureKind> &declaredMeasures() const {
    return Measures;
  }
  void setDeclaredMeasures(std::vector<MeasureKind> M) {
    Measures = std::move(M);
  }
  bool hasDeclaredMeasures() const { return !Measures.empty(); }

  ParallelDecl parallelDecl() const { return ParDecl; }
  void setParallelDecl(ParallelDecl D) { ParDecl = D; }

  /// A ':- trust_cost(p/k, Expr)' declaration: a user-asserted upper bound
  /// on the predicate's cost as an arithmetic term over n1..nk (the sizes
  /// of the input arguments).  Used for predicates whose recursion falls
  /// outside the solvable class (e.g. merge/3, which consumes two lists
  /// alternately) — the analogue of CiaoPP trust assertions.
  const Term *trustCost() const { return TrustCost; }
  void setTrustCost(const Term *T) { TrustCost = T; }

  /// ':- trust_size(p/k, Pos, Expr)': asserted upper bound on the size of
  /// output argument Pos (1-based in the directive, stored 0-based).
  const Term *trustSize(unsigned Pos) const {
    auto It = TrustSizes.find(Pos);
    return It == TrustSizes.end() ? nullptr : It->second;
  }
  void setTrustSize(unsigned Pos, const Term *T) { TrustSizes[Pos] = T; }
  const std::unordered_map<unsigned, const Term *> &trustSizes() const {
    return TrustSizes;
  }

private:
  Functor F;
  std::vector<Clause> Clauses;
  std::vector<ArgMode> Modes;
  std::vector<MeasureKind> Measures;
  ParallelDecl ParDecl = ParallelDecl::None;
  const Term *TrustCost = nullptr;
  std::unordered_map<unsigned, const Term *> TrustSizes;
};

/// A whole program: predicates indexed by functor, in definition order.
class Program {
public:
  explicit Program(TermArena &Arena) : Arena(&Arena) {}

  TermArena &arena() const { return *Arena; }
  SymbolTable &symbols() const { return Arena->symbols(); }

  /// Finds or creates the predicate for \p F.
  Predicate &getOrCreate(Functor F);

  /// Returns the predicate for \p F, or nullptr.
  const Predicate *lookup(Functor F) const;
  Predicate *lookup(Functor F);

  /// Convenience lookup by source name.
  const Predicate *lookup(std::string_view Name, unsigned Arity) const;

  const std::vector<std::unique_ptr<Predicate>> &predicates() const {
    return Preds;
  }

  /// Entry-point goals from ':- entry(...)' directives.
  const std::vector<const Term *> &entryPoints() const { return Entries; }
  void addEntryPoint(const Term *Goal) { Entries.push_back(Goal); }

private:
  TermArena *Arena;
  std::vector<std::unique_ptr<Predicate>> Preds;
  std::unordered_map<Functor, Predicate *> Index;
  std::vector<const Term *> Entries;
};

/// Returns the functor of a callable term (atom => arity 0), or nullopt if
/// \p Literal is not callable (a variable or number).
std::optional<Functor> literalFunctor(const Term *Literal);

/// True for control constructs and built-in predicates the interpreter
/// implements natively (they are not user predicates in the call graph).
bool isBuiltinFunctor(Functor F, const SymbolTable &Symbols);

/// True for ','/2, '&'/2, ';'/2, '->'/2, '\\+'/1.
bool isControlFunctor(Functor F, const SymbolTable &Symbols);

/// Appends the callable literals of \p Body, looking through control
/// constructs, in left-to-right order.
void flattenBodyLiterals(const Term *Body, const SymbolTable &Symbols,
                         std::vector<const Term *> &Out);

/// Parses \p Source and loads it into a Program, processing directives.
/// Returns nullopt if the source has errors (see \p Diags).  An optional
/// \p B bounds the read (ParseTokens/Clauses meters and the deadline);
/// exhaustion is a hard load error — analyzing a truncated program would
/// be unsound, since missing clauses could lower every bound.
std::optional<Program> loadProgram(std::string_view Source, TermArena &Arena,
                                   Diagnostics &Diags,
                                   class Budget *B = nullptr);

/// Renders one clause back to surface syntax ("head." or
/// "head :-\n    body.").
std::string clauseText(const Clause &C, const SymbolTable &Symbols);

/// Renders the whole program (clauses only; directives are not
/// round-tripped).
std::string programText(const Program &P);

} // namespace granlog

#endif // GRANLOG_PROGRAM_PROGRAM_H
