//===- program/CallGraph.h - Call graph and SCCs --------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The call graph over user predicates, its strongly connected components
/// (Tarjan), a callee-first topological order of the SCCs, and the clause
/// classification of Section 3 of the paper: a body literal is *recursive*
/// if it is part of a cycle containing the clause head; a clause is
/// nonrecursive / simple recursive / mutually recursive accordingly.
///
/// The analyses process predicates in topological order so that when a
/// clause of p is analyzed, every non-recursive callee already has closed
/// form size/cost functions (paper Theorem 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_PROGRAM_CALLGRAPH_H
#define GRANLOG_PROGRAM_CALLGRAPH_H

#include "program/Program.h"

#include <unordered_map>
#include <vector>

namespace granlog {

/// Call graph plus SCC decomposition for one Program.
class CallGraph {
public:
  explicit CallGraph(const Program &P);

  const Program &program() const { return *P; }

  /// The user predicates called by \p Pred's clause bodies (no builtins,
  /// deduplicated, in first-call order).
  const std::vector<Functor> &callees(Functor Pred) const;

  /// SCC id of \p Pred.  Ids are numbered in callee-first topological
  /// order: if p calls q and they are in different SCCs, then
  /// sccId(q) < sccId(p).
  unsigned sccId(Functor Pred) const;

  /// All members of the SCC with the given id.
  const std::vector<Functor> &sccMembers(unsigned Id) const;

  unsigned numSCCs() const { return static_cast<unsigned>(SCCs.size()); }

  /// True if \p Pred is on a call-graph cycle (its SCC has more than one
  /// member, or it calls itself).
  bool isRecursive(Functor Pred) const;

  /// True if \p Caller and \p Callee are in the same SCC — i.e. a call to
  /// Callee from a clause of Caller is a *recursive literal*.
  bool inSameSCC(Functor Caller, Functor Callee) const;

  /// Classification of one clause of \p Pred per Section 3.
  ClauseRecursion classifyClause(Functor Pred, const Clause &C) const;

  /// Predicates in callee-first topological order (members of one SCC are
  /// adjacent).
  const std::vector<Functor> &topologicalOrder() const { return TopoOrder; }

  /// Ids of every SCC reachable from \p Pred's SCC via callee edges
  /// (including its own), sorted ascending.  The demand-driven entry
  /// point (analyze_file --only) analyzes exactly this set.
  std::vector<unsigned> reachableSCCs(Functor Pred) const;

private:
  void runTarjan();
  void strongConnect(Functor V);

  const Program *P;
  std::unordered_map<Functor, std::vector<Functor>> Callees;
  std::unordered_map<Functor, unsigned> SCCIds;
  std::vector<std::vector<Functor>> SCCs;
  std::vector<Functor> TopoOrder;

  // Tarjan state.
  struct NodeState {
    unsigned Index = 0;
    unsigned LowLink = 0;
    bool OnStack = false;
    bool Visited = false;
  };
  std::unordered_map<Functor, NodeState> State;
  std::vector<Functor> Stack;
  unsigned NextIndex = 0;
};

} // namespace granlog

#endif // GRANLOG_PROGRAM_CALLGRAPH_H
