//===- core/Transform.cpp -------------------------------------------------===//

#include "core/Transform.h"

#include <functional>
#include <set>

using namespace granlog;

namespace {

/// Summary of the goals under one parallel conjunct.
struct ConjunctClass {
  bool HasParallel = false;
  bool HasTest = false;
  // First runtime test found: the literal argument to measure, plus its
  // threshold and measure.
  const Term *TestArg = nullptr;
  int64_t Threshold = 0;
  MeasureKind Measure = MeasureKind::TermSize;
};

class Transformer {
public:
  Transformer(const Program &P, const GranularityAnalyzer &GA,
              TransformStats &Stats, TransformOptions Options)
      : P(P), GA(GA), Arena(P.arena()), Symbols(P.symbols()), Stats(Stats),
        Options(Options) {
    if (Options.SequentialSpecialization)
      computeNeedsClone();
  }

  const Term *transformBody(const Term *Body);

  /// Predicates that need a sequential clone (they, or something they
  /// transitively call, contain a '&').
  const std::set<Functor> &cloneSet() const { return NeedsClone; }

  /// Rewrites a goal for the sequential world: '&' becomes ',' and calls
  /// to cloneSet() members are redirected to their '$seq' clone.
  const Term *sequentialize(const Term *Goal);

  /// The '$seq' name of \p F.
  Functor seqFunctor(Functor F) {
    return {Arena.symbols().intern(Symbols.text(F.Name) + "$seq"),
            F.Arity};
  }

private:
  void computeNeedsClone();
  ConjunctClass classify(const Term *Conjunct);
  const Term *joinWith(const std::vector<const Term *> &Goals,
                       const char *Op);

  const Program &P;
  const GranularityAnalyzer &GA;
  TermArena &Arena;
  const SymbolTable &Symbols;
  TransformStats &Stats;
  TransformOptions Options;
  std::set<Functor> NeedsClone;
};

void Transformer::computeNeedsClone() {
  // Seed: predicates with a '&' anywhere in a clause body.
  auto HasPar = [&](const Predicate &Pred) {
    for (const Clause &C : Pred.clauses()) {
      std::function<bool(const Term *)> Walk = [&](const Term *T) -> bool {
        const StructTerm *S = dynCast<StructTerm>(deref(T));
        if (!S)
          return false;
        if (S->arity() == 2 && Symbols.text(S->name()) == "&")
          return true;
        if (isControlFunctor(S->functor(), Symbols))
          for (const Term *Arg : S->args())
            if (Walk(Arg))
              return true;
        return false;
      };
      if (Walk(C.body()))
        return true;
    }
    return false;
  };
  for (const auto &Pred : P.predicates())
    if (HasPar(*Pred))
      NeedsClone.insert(Pred->functor());
  // Fixpoint: callers of clone-needing predicates need clones too (their
  // sequential version must call the sequential callee).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &Pred : P.predicates()) {
      if (NeedsClone.count(Pred->functor()))
        continue;
      for (const Clause &C : Pred->clauses()) {
        for (const Term *Lit : C.bodyLiterals()) {
          std::optional<Functor> F = literalFunctor(Lit);
          if (F && NeedsClone.count(*F)) {
            NeedsClone.insert(Pred->functor());
            Changed = true;
            break;
          }
        }
        if (NeedsClone.count(Pred->functor()))
          break;
      }
    }
  }
}

const Term *Transformer::sequentialize(const Term *Goal) {
  Goal = deref(Goal);
  const StructTerm *S = dynCast<StructTerm>(Goal);
  if (!S) {
    if (const AtomTerm *A = dynCast<AtomTerm>(Goal)) {
      Functor F{A->name(), 0};
      if (NeedsClone.count(F))
        return Arena.makeAtom(seqFunctor(F).Name);
    }
    return Goal;
  }
  const std::string &Name = Symbols.text(S->name());
  if (S->arity() == 2 && Name == "&") {
    return Arena.makeStruct(",", {sequentialize(S->arg(0)),
                                  sequentialize(S->arg(1))});
  }
  if (isControlFunctor(S->functor(), Symbols)) {
    std::vector<const Term *> Args;
    for (const Term *Arg : S->args())
      Args.push_back(sequentialize(Arg));
    return Arena.makeStruct(S->name(), std::move(Args));
  }
  if (NeedsClone.count(S->functor()))
    return Arena.makeStruct(seqFunctor(S->functor()).Name,
                            std::vector<const Term *>(S->args()));
  return Goal;
}

ConjunctClass Transformer::classify(const Term *Conjunct) {
  ConjunctClass Result;
  std::vector<const Term *> Literals;
  flattenBodyLiterals(Conjunct, Symbols, Literals);
  for (const Term *Lit : Literals) {
    std::optional<Functor> F = literalFunctor(Lit);
    if (!F || isBuiltinFunctor(*F, Symbols))
      continue;
    const PredicateGranularity &G = GA.info(*F);
    switch (G.Threshold.Class) {
    case GrainClass::AlwaysSequential:
      break;
    case GrainClass::AlwaysParallel:
      Result.HasParallel = true;
      break;
    case GrainClass::RuntimeTest: {
      if (Result.HasTest)
        break; // first test wins
      const StructTerm *S = dynCast<StructTerm>(deref(Lit));
      int Pos = G.Threshold.ArgPos;
      if (S && Pos >= 0 && Pos < static_cast<int>(S->arity())) {
        Result.HasTest = true;
        Result.TestArg = S->arg(Pos);
        Result.Threshold = G.Threshold.Threshold;
        Result.Measure = G.TestMeasure;
      } else {
        // No argument to test: be conservative, keep it parallel.
        Result.HasParallel = true;
      }
      break;
    }
    }
  }
  return Result;
}

const Term *Transformer::joinWith(const std::vector<const Term *> &Goals,
                                  const char *Op) {
  assert(!Goals.empty());
  const Term *Result = Goals.back();
  for (auto It = Goals.rbegin() + 1; It != Goals.rend(); ++It)
    Result = Arena.makeStruct(Op, {*It, Result});
  return Result;
}

const Term *Transformer::transformBody(const Term *Body) {
  Body = deref(Body);
  const StructTerm *S = dynCast<StructTerm>(Body);
  if (!S)
    return Body;
  const std::string &Name = Symbols.text(S->name());

  if (S->arity() == 2 && (Name == "," || Name == ";" || Name == "->")) {
    const Term *A = transformBody(S->arg(0));
    const Term *B = transformBody(S->arg(1));
    if (A == S->arg(0) && B == S->arg(1))
      return Body;
    return Arena.makeStruct(S->name(), {A, B});
  }
  if (S->arity() == 1 && Name == "\\+") {
    const Term *A = transformBody(S->arg(0));
    return A == S->arg(0) ? Body : Arena.makeStruct(S->name(), {A});
  }
  if (!(S->arity() == 2 && Name == "&"))
    return Body;

  // Flatten the '&' chain into conjuncts, transforming nested bodies.
  std::vector<const Term *> Conjuncts;
  std::function<void(const Term *)> Flatten = [&](const Term *T) {
    T = deref(T);
    const StructTerm *TS = dynCast<StructTerm>(T);
    if (TS && TS->arity() == 2 && Symbols.text(TS->name()) == "&") {
      Flatten(TS->arg(0));
      Flatten(TS->arg(1));
      return;
    }
    Conjuncts.push_back(transformBody(T));
  };
  Flatten(S);
  ++Stats.ParallelSites;

  std::vector<ConjunctClass> Classes;
  Classes.reserve(Conjuncts.size());
  for (const Term *C : Conjuncts)
    Classes.push_back(classify(C));

  bool AnyParallel = false;
  bool AnyTest = false;
  for (const ConjunctClass &C : Classes) {
    AnyParallel |= C.HasParallel;
    AnyTest |= C.HasTest;
  }
  const ConjunctClass *Guard = nullptr;
  for (const ConjunctClass &C : Classes)
    if (C.HasTest) {
      Guard = &C;
      break;
    }

  if (!AnyParallel && !AnyTest) {
    // Every goal is known small at compile time: plain conjunction, no
    // runtime overhead at all (Section 7's compile-time classification).
    ++Stats.Sequentialized;
    return joinWith(Conjuncts, ",");
  }

  if (!Guard) {
    // No runtime test needed.  Goals known small are folded into the
    // parent task (the '&' conjuncts are independent, so regrouping is
    // safe); goals known large stay spawned.
    std::vector<const Term *> Small, Large;
    for (size_t I = 0; I != Conjuncts.size(); ++I)
      (Classes[I].HasParallel ? Large : Small).push_back(Conjuncts[I]);
    ++Stats.KeptParallel;
    if (Small.empty())
      return joinWith(Conjuncts, "&");
    std::vector<const Term *> Chain{joinWith(Small, ",")};
    for (const Term *L : Large)
      Chain.push_back(L);
    return joinWith(Chain, "&");
  }

  // Runtime grain-size test deciding between the fully sequential and the
  // fully parallel version of the site (Section 2's generated code).
  // Under SequentialSpecialization the sequential branch enters the
  // test-free clone world and never tests or spawns again.
  ++Stats.Guarded;
  const Term *Test = Arena.makeStruct(
      "$grain_leq", {Guard->TestArg, Arena.makeInt(Guard->Threshold),
                     Arena.makeAtom(measureName(Guard->Measure))});
  const Term *Seq = joinWith(Conjuncts, ",");
  if (Options.SequentialSpecialization)
    Seq = sequentialize(Seq);
  const Term *Par = joinWith(Conjuncts, "&");
  return Arena.makeStruct(
      ";", {Arena.makeStruct("->", {Test, Seq}), Par});
}

} // namespace

Program granlog::applyGranularityControl(const Program &P,
                                         const GranularityAnalyzer &GA,
                                         TransformStats *Stats,
                                         TransformOptions Options) {
  TransformStats Local;
  TransformStats &S = Stats ? *Stats : Local;
  Transformer T(P, GA, S, Options);

  Program Result(P.arena());
  for (const Term *Entry : P.entryPoints())
    Result.addEntryPoint(Entry);
  auto AddClause = [&](Predicate &NewPred, const Term *Head,
                       const Term *Body, SourceLoc Loc) {
    Clause NewClause(Head, Body, Loc);
    std::vector<const Term *> Literals;
    flattenBodyLiterals(Body, P.symbols(), Literals);
    NewClause.setBodyLiterals(std::move(Literals));
    NewPred.addClause(std::move(NewClause));
  };
  for (const auto &Pred : P.predicates()) {
    Predicate &NewPred = Result.getOrCreate(Pred->functor());
    NewPred.setDeclaredModes(Pred->declaredModes());
    NewPred.setDeclaredMeasures(Pred->declaredMeasures());
    NewPred.setParallelDecl(Pred->parallelDecl());
    NewPred.setTrustCost(Pred->trustCost());
    for (const auto &[Pos, Trust] : Pred->trustSizes())
      NewPred.setTrustSize(Pos, Trust);
    for (const Clause &C : Pred->clauses())
      AddClause(NewPred, C.head(), T.transformBody(C.body()),
                C.location());
  }
  // Emit the sequential clones: bodies with '&' replaced by ',' and calls
  // into the clone set redirected, starting from the *original* bodies
  // (no grain tests inside the sequential world).
  if (Options.SequentialSpecialization) {
    TermArena &Arena = P.arena();
    for (Functor F : T.cloneSet()) {
      const Predicate *Orig = P.lookup(F);
      if (!Orig)
        continue;
      Functor SeqF = T.seqFunctor(F);
      Predicate &Clone = Result.getOrCreate(SeqF);
      ++S.SeqSpecializations;
      for (const Clause &C : Orig->clauses()) {
        // Rename the head functor, keep the argument terms.
        const Term *Head = C.head();
        if (const StructTerm *HS = dynCast<StructTerm>(deref(Head)))
          Head = Arena.makeStruct(SeqF.Name,
                                  std::vector<const Term *>(HS->args()));
        else
          Head = Arena.makeAtom(SeqF.Name);
        AddClause(Clone, Head, T.sequentialize(C.body()), C.location());
      }
    }
  }
  return Result;
}
