//===- core/GranularityAnalyzer.h - The analysis driver -------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing entry point of the library: runs the whole pipeline of
/// the paper (modes -> determinacy -> data-dependency-based argument size
/// analysis -> cost analysis -> difference equation solving -> threshold
/// computation) and classifies every predicate as AlwaysSequential,
/// AlwaysParallel or RuntimeTest(K).
///
/// Typical use:
/// \code
///   TermArena Arena;
///   Diagnostics Diags;
///   auto Prog = loadProgram(Source, Arena, Diags);
///   GranularityAnalyzer GA(*Prog, {CostMetric::resolutions(), 48.0});
///   GA.run();
///   const PredicateGranularity &G = GA.info(F);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_CORE_GRANULARITYANALYZER_H
#define GRANLOG_CORE_GRANULARITYANALYZER_H

#include "analysis/Determinacy.h"
#include "core/Threshold.h"
#include "cost/CostAnalysis.h"
#include "size/SizeAnalysis.h"
#include "support/Stats.h"
#include "wam/WamCompiler.h"

#include <memory>

namespace granlog {

class JsonWriter;
class LatencyHistogram;
class Tracer;

/// Configuration of one analysis run.
struct AnalyzerOptions {
  CostMetric Metric = CostMetric::resolutions();
  /// Task creation/management overhead W of the target system, in units
  /// of the chosen metric (the paper's example uses 48).
  double Overhead = 48.0;
  /// Difference-equation schemas to remove from the solver table (for
  /// ablation studies of the paper's "approximation set" S).
  std::vector<std::string> DisabledSchemas;
  /// When non-null, run() records per-phase wall-clock timers
  /// ("phase.<name>") and domain counters from every layer into this
  /// registry.  Null (the default) keeps the pipeline instrumentation-free.
  StatsRegistry *Stats = nullptr;
  /// Worker threads for the SCC-parallel analysis driver.  1 (the
  /// default) runs the classic sequential pipeline; N > 1 schedules the
  /// per-SCC size/cost/solve jobs on a work-stealing pool in call-graph
  /// dependency order.  Results, explain() output and stats counters are
  /// identical for any N (only the timer values differ).
  unsigned Jobs = 1;
  /// Recurrence memo table to use.  Null (the default) makes the run own
  /// a private cache; supply one to share solved equations across
  /// analyzer runs (corpus batch mode).  Aggregate cache counters
  /// ("solver.cache.*") are recorded only for run-owned caches, keeping
  /// per-run stats independent of what other runs warmed a shared cache
  /// with.
  SolverCache *Cache = nullptr;
  /// Resource budget governing the run.  Null (the default) runs
  /// unbudgeted.  With counter limits set, each SCC's size/cost work is
  /// metered deterministically and exhaustion degrades results to sound
  /// Infinity/unknown values (recorded as Degradations on the budget);
  /// with a deadline/terminator set, remaining SCCs degrade wholesale
  /// once it fires.  Counter-limited runs are deterministic across Jobs
  /// settings; deadline-limited runs are not (wall clock is not).
  class Budget *Budget = nullptr;
  /// Analyzer span tracing (support/Tracer).  Null (the default) keeps
  /// every span site to a single branch; non-null records hierarchical
  /// wall-time spans (SCC > phase > solve > cache probe) without
  /// affecting any analysis result or output.
  Tracer *Trace = nullptr;
  /// Program tag for this run's spans (Tracer::registerProgram id);
  /// 0xffffffff (Tracer::None) leaves spans untagged — fine for
  /// single-program runs.
  uint32_t TraceProgram = 0xffffffffu;
  /// Which resource bounds to compute.  Upper (the default) is the
  /// classic pipeline with byte-identical output; Both adds the dual
  /// lower-bound passes (failure-free minimal solutions) and surfaces
  /// [lo, hi] intervals plus a conservative-spawn threshold in report(),
  /// explain() and the stats JSON.
  BoundsMode Bounds = BoundsMode::Upper;
};

/// Everything the analysis learned about one predicate.
struct PredicateGranularity {
  ExprRef CostFn;             ///< closed-form cost bound (may be Infinity)
  bool CostExact = false;     ///< no upper-bound relaxation applied
  ThresholdInfo Threshold;    ///< scheduling decision
  int RecArgPos = -1;         ///< recursion argument position
  MeasureKind TestMeasure = MeasureKind::TermSize; ///< for the size test
  /// A ':- parallel'/':- sequential' directive that overrode the inferred
  /// classification (None when the classification was computed).
  ParallelDecl Directive = ParallelDecl::None;
  /// Lower cost bound (AnalyzerOptions::Bounds == Both only; null in
  /// upper-only mode).  Never Infinity: unknowns floor to 0.
  ExprRef CostLo;
  /// Conservative-spawn decision over CostLo (Both only): spawn a task
  /// only when even the minimal work Lo exceeds W, so a spawned task is
  /// *guaranteed* to repay its overhead.  The default flips to
  /// AlwaysSequential when no lower bound is known.
  ThresholdInfo Conservative;
};

/// Runs and stores the full pipeline over one Program.
class GranularityAnalyzer {
public:
  GranularityAnalyzer(const Program &P, AnalyzerOptions Options);
  ~GranularityAnalyzer();
  GranularityAnalyzer(GranularityAnalyzer &&) = delete;

  /// What run() does with one SCC under an external plan (see prepare()).
  enum class SccAction {
    Analyze, ///< run size/cost/solve for the SCC (the default)
    Reuse,   ///< results were injected (injectSizeInfo/injectCostInfo):
             ///< skip the analysis jobs but still classify the members
    Skip,    ///< leave the SCC out entirely: no analysis, no
             ///< classification, absent from report()/explain()/JSON
  };

  /// Builds the cheap whole-program phases (call graph, modes,
  /// determinacy, the analysis tables) without running any per-SCC work,
  /// and switches run() to the *planned* driver.  Callers — the
  /// incremental AnalysisSession and the demand-driven --only entry —
  /// then inspect callGraph()/modes()/determinacy(), assign per-SCC
  /// actions, optionally inject stored results, and finally run().
  /// When prepare() is never called, run() is byte-for-byte the classic
  /// one-shot pipeline.  Idempotent.
  void prepare();

  /// Sets the planned action of SCC \p Id (default Analyze).  Only
  /// meaningful after prepare() and before run().
  void setSccAction(unsigned Id, SccAction A);
  SccAction sccAction(unsigned Id) const { return Actions[Id]; }

  /// Allocates one StatsCapture per SCC; each Analyze job then tees its
  /// counter increments into its SCC's capture (in addition to
  /// Options.Stats).  The session stores these with the SCC's results and
  /// replays them on reuse, keeping warm-run stats byte-identical to a
  /// cold run.  Only meaningful after prepare().
  void enableCapture();
  /// The capture of SCC \p Id (null unless enableCapture() was called).
  const StatsCapture *sccCapture(unsigned Id) const {
    return Captures.empty() ? nullptr : &Captures[Id];
  }

  /// Installs stored results for a Reuse SCC's member (forwarded to the
  /// analyses; see SizeAnalysis::injectInfo).  Only valid after
  /// prepare() and before run().
  void injectSizeInfo(Functor F, PredicateSizeInfo PI) {
    Sizes->injectInfo(F, std::move(PI));
  }
  void injectCostInfo(Functor F, PredicateCostInfo CI) {
    Costs->injectInfo(F, std::move(CI));
  }

  /// Runs all phases.  Idempotent.
  void run();

  /// Replaces the threshold of every RuntimeTest-classified predicate by
  /// \p K.  Used by the grain-size sweep of Figure 2, where the threshold
  /// is varied around the statically computed one.
  void overrideThresholds(int64_t K);

  const PredicateGranularity &info(Functor F) const;
  /// Convenience lookup by name.
  const PredicateGranularity *lookup(std::string_view Name,
                                     unsigned Arity) const;

  const Program &program() const { return *P; }
  const AnalyzerOptions &options() const { return Options; }
  const CallGraph &callGraph() const { return *CG; }
  const ModeTable &modes() const { return *Modes; }
  const Determinacy &determinacy() const { return *Det; }
  const SizeAnalysis &sizes() const { return *Sizes; }
  const CostAnalysis &costs() const { return *Costs; }
  /// Non-null when the Instructions metric is in use.
  const WamCompiler *wam() const { return Wam.get(); }

  /// Renders a human-readable report of the analysis results (cost
  /// functions, thresholds and classifications per predicate).
  std::string report() const;

  /// Provenance report for one predicate: modes and measures, which
  /// solver schema the size and cost equations matched (or why they fell
  /// to Infinity), the derived cost function and threshold, and the final
  /// classification with its justification.  Lets a user audit every
  /// scheduling decision against the paper's Sections 3-5.
  std::string explain(Functor F) const;
  /// explain() for all predicates, in program order.
  std::string explainAll() const;

  /// The condensation DAG run() schedules: element Id lists the SCC ids
  /// of Id's callees (duplicates possible, self-edges omitted).  Valid
  /// once the call graph exists (after prepare() or run()); also the
  /// \c SccDeps input of support/Profile's critical path.
  std::vector<std::vector<unsigned>> sccDependencies() const;
  /// One label per SCC id: the member predicate names, comma-joined.
  std::vector<std::string> sccLabels() const;

  /// Writes one JSON object carrying the stats registry (when attached),
  /// and per-predicate analysis provenance.  Schema version:
  /// StatsJsonVersion (the optional "latency" section is additive).
  /// \p SccLatency, when non-null and non-empty, adds per-SCC latency
  /// percentiles measured by the tracing layer.
  void writeJson(JsonWriter &W,
                 const LatencyHistogram *SccLatency = nullptr) const;

private:
  /// Runs the size/cost/solve phases: sequentially for Jobs <= 1, or as
  /// one topologically scheduled job per SCC on a work-stealing pool.
  void runAnalyses();
  /// The planned driver behind an external prepare(): one topologically
  /// scheduled job per Analyze-action SCC at any Jobs setting, with
  /// optional per-SCC stats capture.
  void runPlanned();
  /// Derives the threshold/classification of one predicate from the
  /// completed size and cost analyses.
  void classifyPredicate(const Predicate &Pred);

  const Program *P;
  AnalyzerOptions Options;
  std::unique_ptr<CallGraph> CG;
  std::unique_ptr<ModeTable> Modes;
  std::unique_ptr<Determinacy> Det;
  std::unique_ptr<SizeAnalysis> Sizes;
  std::unique_ptr<WamCompiler> Wam;
  std::unique_ptr<CostAnalysis> Costs;
  std::unique_ptr<SolverCache> OwnedCache; ///< when Options.Cache is null
  std::unordered_map<Functor, PredicateGranularity> Info;
  std::vector<SccAction> Actions;    ///< per-SCC plan (planned mode only)
  std::vector<StatsCapture> Captures; ///< per-SCC tees (enableCapture)
  bool Prepared = false;
  bool Ran = false;
};

} // namespace granlog

#endif // GRANLOG_CORE_GRANULARITYANALYZER_H
