//===- core/Threshold.h - Threshold input sizes ---------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "threshold input size" of Section 5: given the closed-form cost
/// f(n) of a predicate and the task-management overhead W of the target
/// system, the least K such that f(n) > W iff n > K.  Code can then test
/// "size(X) =< K" at runtime to decide between sequential and parallel
/// execution.  Because f is monotone (Section 6 assumption), K is found by
/// exponential + binary search on integer sizes.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_CORE_THRESHOLD_H
#define GRANLOG_CORE_THRESHOLD_H

#include "expr/Expr.h"

#include <cstdint>
#include <optional>
#include <string>

namespace granlog {

/// How a predicate should be scheduled.
enum class GrainClass {
  AlwaysSequential, ///< never enough work to pay for a task
  AlwaysParallel,   ///< always enough work (or unknown => parallel)
  RuntimeTest,      ///< compare the input size against a threshold
};

/// Result of threshold computation for one predicate.
struct ThresholdInfo {
  GrainClass Class = GrainClass::AlwaysParallel;
  /// Valid for RuntimeTest: sizes <= Threshold run sequentially.
  int64_t Threshold = 0;
  /// Valid for RuntimeTest: the argument position whose size is tested.
  int ArgPos = -1;
};

/// Computes the threshold for a cost function \p CostFn over the single
/// size variable \p Var: the largest K with CostFn(K) <= W (so the test is
/// "size =< K").  Returns:
///  - AlwaysParallel  if CostFn is Infinity, depends on several variables,
///    or exceeds W already at size 0;
///  - AlwaysSequential if CostFn never exceeds W up to \p MaxSize;
///  - RuntimeTest with the threshold otherwise.
ThresholdInfo computeThreshold(const ExprRef &CostFn, const std::string &Var,
                               double Overhead, int64_t MaxSize = 1 << 30);

/// The conservative-spawn dual over a *lower* cost bound \p LoFn: a task
/// is only worth spawning when even its minimal work exceeds W, i.e. when
/// Lo(n) > W.  Returns:
///  - AlwaysSequential if \p LoFn is null (no lower bound), Infinity,
///    depends on several variables, or never exceeds W up to \p MaxSize —
///    the dual default flips: "unknown" means "cannot promise enough
///    work", so do not spawn;
///  - AlwaysParallel   if Lo already exceeds W at size 0;
///  - RuntimeTest with the largest K such that Lo(K) <= W otherwise
///    (spawn when size > K).
ThresholdInfo computeConservativeThreshold(const ExprRef &LoFn,
                                           const std::string &Var,
                                           double Overhead,
                                           int64_t MaxSize = 1 << 30);

/// Collects the distinct variable names occurring in \p E.
std::vector<std::string> exprVariables(const ExprRef &E);

} // namespace granlog

#endif // GRANLOG_CORE_THRESHOLD_H
