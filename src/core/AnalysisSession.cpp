//===- core/AnalysisSession.cpp -------------------------------------------===//

#include "core/AnalysisSession.h"

#include "program/Fingerprint.h"
#include "support/Tracer.h"

#include <algorithm>
#include <filesystem>
#include <system_error>

using namespace granlog;

AnalysisSession::AnalysisSession(SessionOptions Options)
    : Options(std::move(Options)) {
  if (!this->Options.CacheDir.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(this->Options.CacheDir, EC);
    CachePath = (std::filesystem::path(this->Options.CacheDir) /
                 "solver-cache.json")
                    .string();
    std::string Error;
    if (!Cache.loadFromFile(CachePath, &Error))
      CacheWarning = Error; // fresh cache; the file is replaced on save
  }
}

AnalysisSession::~AnalysisSession() { save(); }

bool AnalysisSession::save(std::string *Error) {
  if (CachePath.empty())
    return true;
  return Cache.saveToFile(CachePath, Error);
}

namespace {

/// The SCC's member functors paired with their symbol texts, sorted by
/// text — the arena-independent member identity the store uses.
std::vector<std::pair<std::string, Functor>>
sortedMembers(const CallGraph &CG, const SymbolTable &Symbols, unsigned Id) {
  std::vector<std::pair<std::string, Functor>> Members;
  for (Functor F : CG.sccMembers(Id))
    Members.emplace_back(Symbols.text(F), F);
  std::sort(Members.begin(), Members.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  return Members;
}

} // namespace

const SessionUpdate &AnalysisSession::update(const Program &P,
                                             StatsRegistry *Stats,
                                             const UpdateDeadline *Deadline) {
  ++Updates;
  TraceSpan Update(Options.Trace, SpanKind::SessionUpdate,
                   Options.TraceProgram);
  BudgetLimits Effective = Options.Limits;
  if (Deadline && Deadline->any()) {
    if (Deadline->TimeoutMs &&
        (!Effective.TimeoutMs || Deadline->TimeoutMs < Effective.TimeoutMs))
      Effective.TimeoutMs = Deadline->TimeoutMs;
    if (Deadline->Terminator) {
      if (std::function<bool()> Prev = Effective.Terminator)
        Effective.Terminator = [Prev, Next = Deadline->Terminator]() {
          return Prev() || Next();
        };
      else
        Effective.Terminator = Deadline->Terminator;
    }
  }
  UpdateBudget =
      Effective.any() ? std::make_unique<Budget>(Effective) : nullptr;

  AnalyzerOptions AO;
  AO.Metric = Options.Metric;
  AO.Overhead = Options.Overhead;
  AO.DisabledSchemas = Options.DisabledSchemas;
  AO.Stats = Stats;
  AO.Jobs = Options.Jobs;
  AO.Cache = &Cache;
  AO.Budget = UpdateBudget.get();
  AO.Trace = Options.Trace;
  AO.TraceProgram = Options.TraceProgram;
  AO.Bounds = Options.Bounds;
  GA = std::make_unique<GranularityAnalyzer>(P, AO);
  GA->prepare();

  // Results computed under a wall-clock budget are not deterministic and
  // must never be stored (nor replayed as if they were facts).  A
  // session-level deadline poisons every update up front; a per-update
  // UpdateDeadline only poisons this update if it actually fires (checked
  // again at harvest below) — within-deadline results are exactly the
  // un-deadlined ones.
  const bool Storable = !Options.Limits.TimeoutMs && !Options.Limits.Terminator;
  if (Storable)
    GA->enableCapture();

  const CallGraph &CG = GA->callGraph();
  const ModeTable &Modes = GA->modes();
  const Determinacy &Det = GA->determinacy();
  const SolutionsAnalysis &Sols = GA->costs().solutionsAnalysis();
  const SymbolTable &Symbols = P.symbols();

  // Computed analysis inputs that are not a function of the SCC's own
  // clauses: mode inference flows top-down from entry points, so an edit
  // elsewhere can change an untouched SCC's modes — the salt makes that a
  // fingerprint miss.  Determinacy/solutions are bottom-up (covered
  // transitively by the combined fingerprint already); folding them in
  // too is defense in depth.
  auto Salt = [&](Functor F) {
    uint64_t S = 0x73616c74ULL; // "salt"
    const std::vector<ArgMode> &M = Modes.modes(F);
    S = fingerprintCombine(S, M.size());
    for (ArgMode A : M)
      S = fingerprintCombine(S, static_cast<uint64_t>(A));
    S = fingerprintCombine(S, Det.isDeterminate(F));
    S = fingerprintCombine(S, Det.hasExclusiveClauses(F));
    std::optional<int64_t> Bound = Sols.solutions(F);
    S = fingerprintCombine(S, Bound.has_value());
    return fingerprintCombine(
        S, Bound ? static_cast<uint64_t>(*Bound) : uint64_t(0));
  };
  SCCFingerprints FP = fingerprintSCCs(P, CG, Salt);

  const unsigned N = CG.numSCCs();
  Last = SessionUpdate{};
  Last.TotalSCCs = N;

  // Plan: look every SCC's combined fingerprint up in the store.  A hit
  // replays the stored results/counters/degradations and marks the SCC
  // Reuse; a miss leaves the default Analyze action.
  std::vector<bool> Reused(N, false);
  for (unsigned Id = 0; Id != N; ++Id) {
    auto It = Store.find(FP.Combined[Id]);
    if (It == Store.end())
      continue;
    const StoredSCC &S = It->second;
    std::vector<std::pair<std::string, Functor>> Members =
        sortedMembers(CG, Symbols, Id);
    // Integrity check against 64-bit collisions: the member names must
    // line up exactly; on mismatch fall back to analyzing.
    if (Members.size() != S.Members.size() ||
        !std::equal(Members.begin(), Members.end(), S.Members.begin(),
                    [](const auto &A, const std::string &B) {
                      return A.first == B;
                    }))
      continue;
    for (size_t I = 0; I != Members.size(); ++I) {
      GA->injectSizeInfo(Members[I].second, S.SizeInfos[I]);
      GA->injectCostInfo(Members[I].second, S.CostInfos[I]);
    }
    GA->setSccAction(Id, GranularityAnalyzer::SccAction::Reuse);
    if (Stats)
      for (const auto &[Name, V] : S.Counters)
        Stats->add(Name, V);
    if (UpdateBudget)
      for (const Degradation &D : S.Degradations)
        UpdateBudget->record(D);
    Reused[Id] = true;
  }

  GA->run();

  // Harvest what was analyzed this round.  expired() is sticky: once the
  // per-update deadline or terminator has fired, every fresh result of
  // this round is suspect and none of them are stored.
  const bool StorableNow =
      Storable && !(UpdateBudget && UpdateBudget->expired());
  if (StorableNow) {
    std::vector<Degradation> AllDegradations =
        UpdateBudget ? UpdateBudget->degradations()
                     : std::vector<Degradation>();
    for (unsigned Id = 0; Id != N; ++Id) {
      if (Reused[Id])
        continue;
      StoredSCC S;
      std::vector<std::pair<std::string, Functor>> Members =
          sortedMembers(CG, Symbols, Id);
      for (const auto &[Name, F] : Members) {
        S.Members.push_back(Name);
        S.SizeInfos.push_back(GA->sizes().info(F));
        S.CostInfos.push_back(GA->costs().info(F));
      }
      if (const StatsCapture *C = GA->sccCapture(Id))
        S.Counters = C->counters();
      // Predicate names are unique program-wide, so membership filtering
      // attributes each degradation to exactly one SCC.
      for (const Degradation &D : AllDegradations)
        if (std::find(S.Members.begin(), S.Members.end(), D.Predicate) !=
            S.Members.end())
          S.Degradations.push_back(D);
      Store.insert_or_assign(FP.Combined[Id], std::move(S));
    }
  }

  for (unsigned Id = 0; Id != N; ++Id)
    (Reused[Id] ? Last.ReusedSCCs : Last.AnalyzedSCCs) += 1;
  TotalAnalyzed += Last.AnalyzedSCCs;
  TotalReused += Last.ReusedSCCs;
  Last.Report = GA->report();
  Last.ExplainAll = GA->explainAll();
  if (UpdateBudget)
    Last.Degradations = UpdateBudget->degradations();
  return Last;
}

void AnalysisSession::recordIncrementalStats(StatsRegistry *Stats) const {
  if (!Stats)
    return;
  Stats->add("incremental.updates", Updates);
  Stats->add("incremental.sccs.analyzed", TotalAnalyzed);
  Stats->add("incremental.sccs.reused", TotalReused);
  Stats->add("incremental.store.entries", Store.size());
  Stats->add("incremental.disk.hits", Cache.diskHits());
}
