//===- core/Transform.h - Grain size control transformation ---------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program transformation of Sections 2 and 5: every parallel
/// conjunction "A & B" is rewritten according to the granularity
/// classification of the predicates under it:
///
///  - all goals AlwaysSequential:   A & B  ==>  A, B
///    (the compile-time case: "many predicates can be classified as either
///    parallel or sequential predicates at compile time, so no grain size
///    control is needed for them" — Section 7);
///  - some goal AlwaysParallel:     kept as A & B;
///  - otherwise, a goal with a RuntimeTest classification contributes a
///    guard:   A & B  ==>  ( '$grain_leq'(Arg, K, Measure) -> A, B
///                         ; A & B )
///    which is the "if size(X) =< 4 then sequential else parallel" code of
///    Section 2.  '$grain_leq'/3 is a builtin of the runtime; its cost
///    models the grain-size test overhead (plus a size traversal when the
///    system does not maintain size information, cf. footnote 1).
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_CORE_TRANSFORM_H
#define GRANLOG_CORE_TRANSFORM_H

#include "core/GranularityAnalyzer.h"
#include "program/Program.h"

namespace granlog {

/// Statistics of one transformation run.
struct TransformStats {
  unsigned ParallelSites = 0;  ///< '&' conjunctions seen
  unsigned Sequentialized = 0; ///< rewritten to ','
  unsigned Guarded = 0;        ///< wrapped in a grain-size test
  unsigned KeptParallel = 0;   ///< left as '&'
  unsigned SeqSpecializations = 0; ///< test-free sequential clones created
};

/// Options for the transformation.
struct TransformOptions {
  /// Section 7's grain-size-test unfolding, taken to its fixpoint: the
  /// sequential branch of every guard calls test-free *sequential clones*
  /// ('p$seq') in which all '&' are ',' and recursive calls stay in the
  /// clone.  Once one test has decided "small enough", no descendant ever
  /// tests (or spawns) again.  Off by default to match the paper's
  /// measured configuration (their flatten result shows the overhead of
  /// re-testing; see bench/ablation_overheads).
  bool SequentialSpecialization = false;
};

/// Applies grain-size control to \p P, returning a new Program (terms are
/// allocated in the same arena).  \p GA must have been run.
Program applyGranularityControl(const Program &P,
                                const GranularityAnalyzer &GA,
                                TransformStats *Stats = nullptr,
                                TransformOptions Options = TransformOptions());

} // namespace granlog

#endif // GRANLOG_CORE_TRANSFORM_H
