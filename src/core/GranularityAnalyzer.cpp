//===- core/GranularityAnalyzer.cpp ---------------------------------------===//

#include "core/GranularityAnalyzer.h"

#include "diffeq/SolverCache.h"
#include "support/Budget.h"
#include "support/Histogram.h"
#include "support/Json.h"
#include "support/ThreadPool.h"
#include "support/Tracer.h"

using namespace granlog;

GranularityAnalyzer::GranularityAnalyzer(const Program &P,
                                         AnalyzerOptions Options)
    : P(&P), Options(Options) {}

GranularityAnalyzer::~GranularityAnalyzer() = default;

void GranularityAnalyzer::prepare() {
  if (Prepared)
    return;
  Prepared = true;
  StatsRegistry *Stats = Options.Stats;
  {
    ScopedTimer T(Stats, "phase.callgraph");
    CG = std::make_unique<CallGraph>(*P);
  }
  {
    ScopedTimer T(Stats, "phase.modes");
    Modes = std::make_unique<ModeTable>(*P, *CG);
  }
  {
    ScopedTimer T(Stats, "phase.determinacy");
    Det = std::make_unique<Determinacy>(*P, *Modes);
  }
  if (!Options.Cache)
    OwnedCache = std::make_unique<SolverCache>();
  SolverCache *Cache = Options.Cache ? Options.Cache : OwnedCache.get();

  Sizes = std::make_unique<SizeAnalysis>(*P, *CG, *Modes);
  Sizes->setStats(Stats);
  for (const std::string &Name : Options.DisabledSchemas)
    Sizes->disableSchema(Name);
  Sizes->setSolverCache(Cache);
  Sizes->setBudget(Options.Budget);
  Sizes->setTracer(Options.Trace, Options.TraceProgram);
  Sizes->setBounds(Options.Bounds);

  if (Options.Metric.kind() == CostMetricKind::Instructions) {
    ScopedTimer T(Stats, "phase.wam");
    Wam = std::make_unique<WamCompiler>(*P);
  }
  Costs = std::make_unique<CostAnalysis>(*P, *CG, *Modes, *Det, *Sizes,
                                         Options.Metric, Wam.get());
  Costs->setStats(Stats);
  for (const std::string &Name : Options.DisabledSchemas)
    Costs->disableSchema(Name);
  Costs->setSolverCache(Cache);
  Costs->setBudget(Options.Budget);
  Costs->setTracer(Options.Trace, Options.TraceProgram);
  Costs->setBounds(Options.Bounds);

  Actions.assign(CG->numSCCs(), SccAction::Analyze);
}

void GranularityAnalyzer::setSccAction(unsigned Id, SccAction A) {
  Actions[Id] = A;
}

void GranularityAnalyzer::enableCapture() {
  Captures = std::vector<StatsCapture>(CG->numSCCs());
}

void GranularityAnalyzer::run() {
  if (Ran)
    return;
  Ran = true;
  StatsRegistry *Stats = Options.Stats;
  ScopedTimer Total(Stats, "phase.total");
  if (Prepared) {
    // An external caller planned this run (session / --only): the cheap
    // phases already ran under prepare(); execute the per-SCC plan.
    runPlanned();
  } else {
    {
      ScopedTimer T(Stats, "phase.callgraph");
      CG = std::make_unique<CallGraph>(*P);
    }
    {
      ScopedTimer T(Stats, "phase.modes");
      Modes = std::make_unique<ModeTable>(*P, *CG);
    }
    {
      ScopedTimer T(Stats, "phase.determinacy");
      Det = std::make_unique<Determinacy>(*P, *Modes);
    }
    if (!Options.Cache)
      OwnedCache = std::make_unique<SolverCache>();

    runAnalyses();
  }

  {
    ScopedTimer ThresholdTimer(Stats, "phase.threshold");
    for (const auto &Pred : P->predicates()) {
      if (!Actions.empty() &&
          Actions[CG->sccId(Pred->functor())] == SccAction::Skip)
        continue;
      classifyPredicate(*Pred);
    }
  }
  // Only a run-owned cache reports its traffic here: a shared (batch)
  // cache's hit/miss totals depend on which runs warmed it first, which
  // would make per-run stats schedule-dependent.
  if (Stats && OwnedCache) {
    Stats->add("solver.cache.hit", OwnedCache->hits());
    Stats->add("solver.cache.miss", OwnedCache->misses());
    Stats->add("solver.cache.entries", OwnedCache->entries());
  }
  if (Options.Budget)
    Options.Budget->recordStats(Stats);
}

void GranularityAnalyzer::runAnalyses() {
  StatsRegistry *Stats = Options.Stats;
  SolverCache *Cache = Options.Cache ? Options.Cache : OwnedCache.get();

  auto MakeSizes = [&] {
    Sizes = std::make_unique<SizeAnalysis>(*P, *CG, *Modes);
    Sizes->setStats(Stats);
    for (const std::string &Name : Options.DisabledSchemas)
      Sizes->disableSchema(Name);
    Sizes->setSolverCache(Cache);
    Sizes->setBudget(Options.Budget);
    Sizes->setTracer(Options.Trace, Options.TraceProgram);
    Sizes->setBounds(Options.Bounds);
  };
  auto MakeCosts = [&] {
    Costs = std::make_unique<CostAnalysis>(*P, *CG, *Modes, *Det, *Sizes,
                                           Options.Metric, Wam.get());
    Costs->setStats(Stats);
    for (const std::string &Name : Options.DisabledSchemas)
      Costs->disableSchema(Name);
    Costs->setSolverCache(Cache);
    Costs->setBudget(Options.Budget);
    Costs->setTracer(Options.Trace, Options.TraceProgram);
    Costs->setBounds(Options.Bounds);
  };

  if (Options.Jobs <= 1) {
    // Classic sequential pipeline, with its stable per-phase timers.
    {
      ScopedTimer T(Stats, "phase.size");
      MakeSizes();
      Sizes->run();
    }
    if (Options.Metric.kind() == CostMetricKind::Instructions) {
      ScopedTimer T(Stats, "phase.wam");
      Wam = std::make_unique<WamCompiler>(*P);
    }
    {
      ScopedTimer T(Stats, "phase.cost");
      MakeCosts();
      Costs->run();
    }
    return;
  }

  // Parallel driver: one job per SCC, scheduled callee-first; each job
  // runs the SCC's size analysis then its cost analysis, so a job only
  // reads results of completed callee jobs (or its own size phase).
  MakeSizes();
  if (Options.Metric.kind() == CostMetricKind::Instructions) {
    ScopedTimer T(Stats, "phase.wam");
    Wam = std::make_unique<WamCompiler>(*P); // eager; read-only afterwards
  }
  MakeCosts(); // eager SolutionsAnalysis; read-only afterwards

  ScopedTimer T(Stats, "phase.analyze");
  Sizes->prepareConcurrent();
  Costs->prepareConcurrent();

  std::vector<std::vector<unsigned>> Deps = sccDependencies();

  ThreadPool Pool(Options.Jobs);
  topoSchedule(
      Deps,
      [&](unsigned Id) {
        ScopedTimer SccTimer(Stats, "scc." + std::to_string(Id) + ".seconds");
        // The scc span makes pool threads inherit the program tag (the
        // Program span lives on the submitting thread, not this one).
        TraceSpan Scc(Options.Trace, SpanKind::Scc, Options.TraceProgram,
                      Id);
        Sizes->analyzeSCCById(Id);
        Costs->analyzeSCCById(Id);
      },
      &Pool);
}

void GranularityAnalyzer::runPlanned() {
  StatsRegistry *Stats = Options.Stats;
  ScopedTimer T(Stats, "phase.analyze");
  Sizes->prepareConcurrent(); // try_emplace: injected results survive
  Costs->prepareConcurrent();

  std::vector<std::vector<unsigned>> Deps = sccDependencies();

  // The full dependency graph is scheduled even when most SCCs are
  // Reuse/Skip: their jobs return immediately, and keeping the graph
  // intact preserves the callee-first guarantee for the Analyze ones.
  ThreadPool Pool(std::max(1u, Options.Jobs));
  topoSchedule(
      Deps,
      [&](unsigned Id) {
        if (Actions[Id] != SccAction::Analyze)
          return;
        ScopedTimer SccTimer(Stats, "scc." + std::to_string(Id) + ".seconds");
        TraceSpan Scc(Options.Trace, SpanKind::Scc, Options.TraceProgram,
                      Id);
        StatsCaptureScope Capture(Captures.empty() ? nullptr : &Captures[Id]);
        Sizes->analyzeSCCById(Id);
        Costs->analyzeSCCById(Id);
      },
      &Pool);
}

std::vector<std::vector<unsigned>>
GranularityAnalyzer::sccDependencies() const {
  const unsigned N = CG->numSCCs();
  std::vector<std::vector<unsigned>> Deps(N);
  for (unsigned Id = 0; Id != N; ++Id)
    for (Functor F : CG->sccMembers(Id))
      for (Functor Callee : CG->callees(F))
        if (unsigned CalleeId = CG->sccId(Callee); CalleeId != Id)
          Deps[Id].push_back(CalleeId);
  return Deps;
}

std::vector<std::string> GranularityAnalyzer::sccLabels() const {
  const unsigned N = CG->numSCCs();
  std::vector<std::string> Labels(N);
  for (unsigned Id = 0; Id != N; ++Id) {
    std::string &L = Labels[Id];
    for (Functor F : CG->sccMembers(Id)) {
      if (!L.empty())
        L += ",";
      L += P->symbols().text(F);
    }
  }
  return Labels;
}

void GranularityAnalyzer::classifyPredicate(const Predicate &Pred) {
  StatsRegistry *Stats = Options.Stats;
  Functor F = Pred.functor();
  PredicateGranularity G;
  const PredicateCostInfo &CI = Costs->info(F);
  const PredicateSizeInfo &SI = Sizes->info(F);
  G.CostFn = CI.Cost.Hi ? CI.Cost.Hi : makeInfinity();
  G.CostExact = CI.Exact;
  G.RecArgPos = SI.RecArgPos;

  // Which single size variable does the cost depend on?
  std::vector<std::string> Vars = exprVariables(G.CostFn);
  std::string Var = Vars.size() == 1 ? Vars[0] : std::string("n1");
  G.Threshold = computeThreshold(G.CostFn, Var, Options.Overhead);
  if (G.Threshold.Class == GrainClass::RuntimeTest) {
    // Recover the argument position from the parameter name "n<pos+1>".
    int Pos = std::atoi(Var.c_str() + 1) - 1;
    G.Threshold.ArgPos = Pos;
    if (Pos >= 0 && Pos < static_cast<int>(SI.Measures.size()))
      G.TestMeasure = SI.Measures[Pos];
  }

  // Conservative-spawn mode (intervals only): fire only when even the
  // minimal work Lo exceeds W.
  if (Options.Bounds == BoundsMode::Both) {
    G.CostLo = CI.Cost.Lo ? CI.Cost.Lo : makeNumber(0);
    std::vector<std::string> LoVars = exprVariables(G.CostLo);
    std::string LoVar = LoVars.size() == 1 ? LoVars[0] : std::string("n1");
    G.Conservative =
        computeConservativeThreshold(G.CostLo, LoVar, Options.Overhead);
    if (G.Conservative.Class == GrainClass::RuntimeTest)
      G.Conservative.ArgPos = std::atoi(LoVar.c_str() + 1) - 1;
  }

  // User directives override the inferred classification.
  switch (Pred.parallelDecl()) {
  case ParallelDecl::Parallel:
    if (G.Threshold.Class != GrainClass::AlwaysParallel)
      G.Directive = ParallelDecl::Parallel;
    G.Threshold.Class = GrainClass::AlwaysParallel;
    G.Conservative.Class = GrainClass::AlwaysParallel;
    break;
  case ParallelDecl::Sequential:
    if (G.Threshold.Class != GrainClass::AlwaysSequential)
      G.Directive = ParallelDecl::Sequential;
    G.Threshold.Class = GrainClass::AlwaysSequential;
    G.Conservative.Class = GrainClass::AlwaysSequential;
    break;
  case ParallelDecl::None:
    break;
  }
  if (Stats) {
    Stats->add("analyzer.predicates");
    switch (G.Threshold.Class) {
    case GrainClass::AlwaysSequential:
      Stats->add("classify.always_sequential");
      break;
    case GrainClass::AlwaysParallel:
      Stats->add("classify.always_parallel");
      break;
    case GrainClass::RuntimeTest:
      Stats->add("classify.runtime_test");
      break;
    }
    if (G.Directive != ParallelDecl::None)
      Stats->add("classify.directive_override");
  }
  Info.emplace(F, std::move(G));
}

void GranularityAnalyzer::overrideThresholds(int64_t K) {
  for (auto &[F, G] : Info)
    if (G.Threshold.Class == GrainClass::RuntimeTest)
      G.Threshold.Threshold = K;
}

const PredicateGranularity &GranularityAnalyzer::info(Functor F) const {
  static const PredicateGranularity Empty;
  auto It = Info.find(F);
  return It == Info.end() ? Empty : It->second;
}

const PredicateGranularity *
GranularityAnalyzer::lookup(std::string_view Name, unsigned Arity) const {
  Symbol S = P->symbols().lookup(Name);
  if (!S.isValid())
    return nullptr;
  auto It = Info.find(Functor{S, Arity});
  return It == Info.end() ? nullptr : &It->second;
}

std::string GranularityAnalyzer::report() const {
  std::string Out;
  Out += "granularity analysis (metric: ";
  Out += Options.Metric.name();
  Out += ", overhead W = " + std::to_string(Options.Overhead) + ")\n";
  for (const auto &Pred : P->predicates()) {
    Functor F = Pred->functor();
    auto It = Info.find(F);
    if (It == Info.end())
      continue;
    const PredicateGranularity &G = It->second;
    // Interval mode renders two-sided bounds; upper-only mode keeps the
    // historical byte-identical single-bound line.
    if (Options.Bounds == BoundsMode::Both)
      Out += "  " + P->symbols().text(F) + ": cost = [" +
             exprText(G.CostLo ? G.CostLo : makeNumber(0)) + ", " +
             exprText(G.CostFn) + "]";
    else
      Out += "  " + P->symbols().text(F) + ": cost = " + exprText(G.CostFn);
    switch (G.Threshold.Class) {
    case GrainClass::AlwaysSequential:
      Out += "  [always sequential]";
      break;
    case GrainClass::AlwaysParallel:
      Out += "  [always parallel]";
      break;
    case GrainClass::RuntimeTest:
      Out += "  [test: size(arg " + std::to_string(G.Threshold.ArgPos + 1) +
             ") =< " + std::to_string(G.Threshold.Threshold) + "]";
      break;
    }
    if (Options.Bounds == BoundsMode::Both) {
      switch (G.Conservative.Class) {
      case GrainClass::AlwaysSequential:
        Out += "  [conservative: never spawn]";
        break;
      case GrainClass::AlwaysParallel:
        Out += "  [conservative: always spawn]";
        break;
      case GrainClass::RuntimeTest:
        Out += "  [conservative: spawn when size(arg " +
               std::to_string(G.Conservative.ArgPos + 1) + ") > " +
               std::to_string(G.Conservative.Threshold) + "]";
        break;
      }
    }
    Out += '\n';
  }
  // Resource-governance outcome.  Emitted only when something actually
  // degraded, so unbudgeted and within-budget runs render byte-identically
  // to the historical report format.
  if (Options.Budget && Options.Budget->degraded()) {
    Out += "degradations (resource budget):\n";
    for (const Degradation &D : Options.Budget->degradations())
      Out += "  " + D.str() + '\n';
  }
  return Out;
}

namespace {

const char *className(GrainClass C) {
  switch (C) {
  case GrainClass::AlwaysSequential:
    return "always sequential";
  case GrainClass::AlwaysParallel:
    return "always parallel";
  case GrainClass::RuntimeTest:
    return "runtime test";
  }
  return "?";
}

} // namespace

std::string GranularityAnalyzer::explain(Functor F) const {
  const SymbolTable &Symbols = P->symbols();
  std::string Out = Symbols.text(F) + ":\n";
  auto It = Info.find(F);
  if (It == Info.end() || !Ran)
    return Out + "  not analyzed\n";
  const PredicateGranularity &G = It->second;
  const PredicateSizeInfo &SI = Sizes->info(F);
  const PredicateCostInfo &CI = Costs->info(F);

  // Modes and measures (Section 3's givens).
  Out += "  modes/measures:";
  for (unsigned I = 0; I != F.Arity; ++I) {
    ArgMode M = I < SI.Modes.size() ? SI.Modes[I] : ArgMode::Unknown;
    const char *MC = M == ArgMode::In ? "+" : M == ArgMode::Out ? "-" : "?";
    const char *Measure =
        I < SI.Measures.size() ? measureName(SI.Measures[I]) : "?";
    Out += std::string(" arg") + std::to_string(I + 1) + ":" + MC + Measure;
  }
  Out += '\n';

  // Argument-size analysis provenance (Section 3 / schema table of
  // Section 5).
  for (unsigned I = 0; I != F.Arity; ++I) {
    if (I >= SI.OutputSize.size() || !SI.OutputSize[I].Hi)
      continue;
    if (Options.Bounds == BoundsMode::Both)
      Out += "  size of output arg " + std::to_string(I + 1) + ": [" +
             (SI.OutputSize[I].Lo ? exprText(SI.OutputSize[I].Lo)
                                  : std::string("?")) +
             ", " + exprText(SI.OutputSize[I].Hi) + "]";
    else
      Out += "  size of output arg " + std::to_string(I + 1) + ": " +
             exprText(SI.OutputSize[I].Hi);
    if (I < SI.OutputSchema.size() && !SI.OutputSchema[I].empty())
      Out += "  [schema: " + SI.OutputSchema[I] + "]";
    if (I < SI.OutputWhy.size() && !SI.OutputWhy[I].empty())
      Out += "  [infinity: " + SI.OutputWhy[I] + "]";
    Out += '\n';
  }
  if (G.RecArgPos >= 0)
    Out += "  recursion on arg " + std::to_string(G.RecArgPos + 1) +
           " (measure: " +
           (static_cast<size_t>(G.RecArgPos) < SI.Measures.size()
                ? measureName(SI.Measures[G.RecArgPos])
                : "?") +
           ")\n";

  // Cost analysis provenance (Sections 4-5).
  if (Options.Bounds == BoundsMode::Both) {
    Out += "  cost bound: [" +
           exprText(G.CostLo ? G.CostLo : makeNumber(0)) + ", " +
           exprText(G.CostFn) + "]";
    Out += G.CostExact ? "  (exact)\n" : "  (interval)\n";
  } else {
    Out += "  cost bound: " + exprText(G.CostFn);
    Out += G.CostExact ? "  (exact)\n" : "  (upper bound)\n";
  }
  if (!CI.Schema.empty())
    Out += "  matched schema: " + CI.Schema + "\n";
  if (!CI.Why.empty())
    Out += "  infinity because: " + CI.Why + "\n";

  // Threshold derivation and classification (Section 5).
  Out += "  overhead W = " + std::to_string(Options.Overhead) + " " +
         Options.Metric.name() + "\n";
  Out += std::string("  classification: ") + className(G.Threshold.Class);
  switch (G.Threshold.Class) {
  case GrainClass::RuntimeTest:
    Out += ": least n with Cost(n) > W is " +
           std::to_string(G.Threshold.Threshold + 1) +
           "; guard 'size(arg " + std::to_string(G.Threshold.ArgPos + 1) +
           ") =< " + std::to_string(G.Threshold.Threshold) +
           "' runs sequentially (threshold K = " +
           std::to_string(G.Threshold.Threshold) + ", measure: " +
           measureName(G.TestMeasure) + ")";
    break;
  case GrainClass::AlwaysParallel:
    Out += G.Directive == ParallelDecl::Parallel
               ? " (':- parallel' directive override)"
               : (G.CostFn->isInfinity()
                      ? " (no cost bound: spawn unconditionally, "
                        "\"sequentializing a parallel language\")"
                      : " (cost exceeds W already at size 0)");
    break;
  case GrainClass::AlwaysSequential:
    Out += G.Directive == ParallelDecl::Sequential
               ? " (':- sequential' directive override)"
               : " (cost bound never exceeds W)";
    break;
  }
  Out += '\n';

  // Conservative-spawn decision over the lower bound (interval mode).
  if (Options.Bounds == BoundsMode::Both) {
    Out += std::string("  conservative: ") + className(G.Conservative.Class);
    switch (G.Conservative.Class) {
    case GrainClass::RuntimeTest:
      Out += ": spawn when size(arg " +
             std::to_string(G.Conservative.ArgPos + 1) + ") > " +
             std::to_string(G.Conservative.Threshold) +
             " (even the minimal work then exceeds W)";
      break;
    case GrainClass::AlwaysParallel:
      Out += G.Directive == ParallelDecl::Parallel
                 ? " (':- parallel' directive override)"
                 : " (minimal work exceeds W already at size 0)";
      break;
    case GrainClass::AlwaysSequential:
      Out += G.Directive == ParallelDecl::Sequential
                 ? " (':- sequential' directive override)"
                 : " (no promised minimum of work repays W)";
      break;
    }
    Out += '\n';
  }
  return Out;
}

std::string GranularityAnalyzer::explainAll() const {
  std::string Out;
  for (const auto &Pred : P->predicates())
    Out += explain(Pred->functor());
  return Out;
}

void GranularityAnalyzer::writeJson(JsonWriter &W,
                                    const LatencyHistogram *SccLatency) const {
  W.beginObject();
  W.key("version");
  W.value(StatsJsonVersion);
  W.key("metric");
  W.value(Options.Metric.name());
  W.key("overhead_w");
  W.value(Options.Overhead);
  if (Options.Stats) {
    W.key("stats");
    Options.Stats->writeJson(W);
  }
  W.key("predicates");
  W.beginArray();
  for (const auto &Pred : P->predicates()) {
    Functor F = Pred->functor();
    auto It = Info.find(F);
    if (It == Info.end())
      continue;
    const PredicateGranularity &G = It->second;
    const PredicateCostInfo &CI = Costs->info(F);
    W.beginObject();
    W.key("name");
    W.value(P->symbols().text(F));
    W.key("cost");
    W.value(exprText(G.CostFn));
    W.key("exact");
    W.value(G.CostExact);
    if (!CI.Schema.empty()) {
      W.key("schema");
      W.value(CI.Schema);
    }
    if (!CI.Why.empty()) {
      W.key("why_infinity");
      W.value(CI.Why);
    }
    W.key("class");
    W.value(className(G.Threshold.Class));
    if (G.Threshold.Class == GrainClass::RuntimeTest) {
      W.key("threshold");
      W.value(static_cast<int64_t>(G.Threshold.Threshold));
      W.key("test_arg");
      W.value(G.Threshold.ArgPos + 1);
      W.key("test_measure");
      W.value(measureName(G.TestMeasure));
    }
    // Additive interval keys, present only in Bounds == Both runs, so
    // upper-only JSON stays byte-identical.
    if (Options.Bounds == BoundsMode::Both) {
      W.key("cost_lo");
      W.value(exprText(G.CostLo ? G.CostLo : makeNumber(0)));
      W.key("conservative_class");
      W.value(className(G.Conservative.Class));
      if (G.Conservative.Class == GrainClass::RuntimeTest) {
        W.key("conservative_threshold");
        W.value(static_cast<int64_t>(G.Conservative.Threshold));
        W.key("conservative_test_arg");
        W.value(G.Conservative.ArgPos + 1);
      }
    }
    W.endObject();
  }
  W.endArray();
  // Additive key (no schema version bump): present only when the run was
  // budgeted and something degraded, so existing baselines are unchanged.
  if (Options.Budget && Options.Budget->degraded()) {
    W.key("degradations");
    W.beginArray();
    for (const Degradation &D : Options.Budget->degradations()) {
      W.beginObject();
      W.key("phase");
      W.value(D.Phase);
      W.key("meter");
      W.value(meterName(D.Meter));
      W.key("predicate");
      W.value(D.Predicate);
      W.endObject();
    }
    W.endArray();
  }
  // Additive key: per-SCC latency percentiles from the tracing layer,
  // present only when the caller ran traced and passed the histogram in.
  if (SccLatency && SccLatency->count()) {
    W.key("latency");
    W.beginObject();
    W.key("scc");
    SccLatency->writeJson(W);
    W.endObject();
  }
  W.endObject();
}
