//===- core/GranularityAnalyzer.cpp ---------------------------------------===//

#include "core/GranularityAnalyzer.h"

using namespace granlog;

GranularityAnalyzer::GranularityAnalyzer(const Program &P,
                                         AnalyzerOptions Options)
    : P(&P), Options(Options) {}

GranularityAnalyzer::~GranularityAnalyzer() = default;

void GranularityAnalyzer::run() {
  if (Ran)
    return;
  Ran = true;
  CG = std::make_unique<CallGraph>(*P);
  Modes = std::make_unique<ModeTable>(*P, *CG);
  Det = std::make_unique<Determinacy>(*P, *Modes);
  Sizes = std::make_unique<SizeAnalysis>(*P, *CG, *Modes);
  for (const std::string &Name : Options.DisabledSchemas)
    Sizes->disableSchema(Name);
  Sizes->run();
  if (Options.Metric.kind() == CostMetricKind::Instructions)
    Wam = std::make_unique<WamCompiler>(*P);
  Costs = std::make_unique<CostAnalysis>(*P, *CG, *Modes, *Det, *Sizes,
                                         Options.Metric, Wam.get());
  for (const std::string &Name : Options.DisabledSchemas)
    Costs->disableSchema(Name);
  Costs->run();

  for (const auto &Pred : P->predicates()) {
    Functor F = Pred->functor();
    PredicateGranularity G;
    const PredicateCostInfo &CI = Costs->info(F);
    const PredicateSizeInfo &SI = Sizes->info(F);
    G.CostFn = CI.CostFn ? CI.CostFn : makeInfinity();
    G.CostExact = CI.Exact;
    G.RecArgPos = SI.RecArgPos;

    // Which single size variable does the cost depend on?
    std::vector<std::string> Vars = exprVariables(G.CostFn);
    std::string Var = Vars.size() == 1 ? Vars[0] : std::string("n1");
    G.Threshold = computeThreshold(G.CostFn, Var, Options.Overhead);
    if (G.Threshold.Class == GrainClass::RuntimeTest) {
      // Recover the argument position from the parameter name "n<pos+1>".
      int Pos = std::atoi(Var.c_str() + 1) - 1;
      G.Threshold.ArgPos = Pos;
      if (Pos >= 0 && Pos < static_cast<int>(SI.Measures.size()))
        G.TestMeasure = SI.Measures[Pos];
    }

    // User directives override the inferred classification.
    switch (Pred->parallelDecl()) {
    case ParallelDecl::Parallel:
      G.Threshold.Class = GrainClass::AlwaysParallel;
      break;
    case ParallelDecl::Sequential:
      G.Threshold.Class = GrainClass::AlwaysSequential;
      break;
    case ParallelDecl::None:
      break;
    }
    Info.emplace(F, std::move(G));
  }
}

void GranularityAnalyzer::overrideThresholds(int64_t K) {
  for (auto &[F, G] : Info)
    if (G.Threshold.Class == GrainClass::RuntimeTest)
      G.Threshold.Threshold = K;
}

const PredicateGranularity &GranularityAnalyzer::info(Functor F) const {
  static const PredicateGranularity Empty;
  auto It = Info.find(F);
  return It == Info.end() ? Empty : It->second;
}

const PredicateGranularity *
GranularityAnalyzer::lookup(std::string_view Name, unsigned Arity) const {
  Symbol S = P->symbols().lookup(Name);
  if (!S.isValid())
    return nullptr;
  auto It = Info.find(Functor{S, Arity});
  return It == Info.end() ? nullptr : &It->second;
}

std::string GranularityAnalyzer::report() const {
  std::string Out;
  Out += "granularity analysis (metric: ";
  Out += Options.Metric.name();
  Out += ", overhead W = " + std::to_string(Options.Overhead) + ")\n";
  for (const auto &Pred : P->predicates()) {
    Functor F = Pred->functor();
    auto It = Info.find(F);
    if (It == Info.end())
      continue;
    const PredicateGranularity &G = It->second;
    Out += "  " + P->symbols().text(F) + ": cost = " + exprText(G.CostFn);
    switch (G.Threshold.Class) {
    case GrainClass::AlwaysSequential:
      Out += "  [always sequential]";
      break;
    case GrainClass::AlwaysParallel:
      Out += "  [always parallel]";
      break;
    case GrainClass::RuntimeTest:
      Out += "  [test: size(arg " + std::to_string(G.Threshold.ArgPos + 1) +
             ") =< " + std::to_string(G.Threshold.Threshold) + "]";
      break;
    }
    Out += '\n';
  }
  return Out;
}
