//===- core/Threshold.cpp -------------------------------------------------===//

#include "core/Threshold.h"

#include <cmath>

using namespace granlog;

std::vector<std::string> granlog::exprVariables(const ExprRef &E) {
  std::vector<std::string> Vars;
  std::function<void(const ExprRef &)> Walk = [&](const ExprRef &X) {
    if (X->isVar()) {
      for (const std::string &V : Vars)
        if (V == X->name())
          return;
      Vars.push_back(X->name());
      return;
    }
    for (const ExprRef &Op : X->operands())
      Walk(Op);
  };
  Walk(E);
  return Vars;
}

ThresholdInfo granlog::computeThreshold(const ExprRef &CostFn,
                                        const std::string &Var,
                                        double Overhead, int64_t MaxSize) {
  ThresholdInfo Result;
  if (CostFn->isInfinity()) {
    Result.Class = GrainClass::AlwaysParallel;
    return Result;
  }
  std::vector<std::string> Vars = exprVariables(CostFn);
  for (const std::string &V : Vars) {
    if (V != Var) {
      // Costs depending on several input sizes have no single threshold;
      // under the "sequentialize a parallel language" philosophy the safe
      // default is to keep the goal parallel.
      Result.Class = GrainClass::AlwaysParallel;
      return Result;
    }
  }

  auto CostAt = [&](int64_t N) -> double {
    std::optional<double> V =
        evaluate(CostFn, {{Var, static_cast<double>(N)}});
    return V ? *V : HUGE_VAL;
  };

  if (CostAt(0) > Overhead) {
    Result.Class = GrainClass::AlwaysParallel;
    return Result;
  }
  if (CostAt(MaxSize) <= Overhead) {
    Result.Class = GrainClass::AlwaysSequential;
    return Result;
  }

  // Exponential probe for an upper bracket, then binary search for the
  // largest K with Cost(K) <= Overhead (monotonicity assumption).
  int64_t Lo = 0;       // Cost(Lo) <= W
  int64_t Hi = 1;       // will satisfy Cost(Hi) > W
  while (Hi < MaxSize && CostAt(Hi) <= Overhead) {
    Lo = Hi;
    Hi *= 2;
  }
  if (Hi > MaxSize)
    Hi = MaxSize;
  while (Lo + 1 < Hi) {
    int64_t Mid = Lo + (Hi - Lo) / 2;
    if (CostAt(Mid) <= Overhead)
      Lo = Mid;
    else
      Hi = Mid;
  }
  Result.Class = GrainClass::RuntimeTest;
  Result.Threshold = Lo;
  return Result;
}

ThresholdInfo granlog::computeConservativeThreshold(const ExprRef &LoFn,
                                                    const std::string &Var,
                                                    double Overhead,
                                                    int64_t MaxSize) {
  ThresholdInfo Result;
  Result.Class = GrainClass::AlwaysSequential; // the dual default: a task
  // with no promised minimum of work is never worth spawning.
  if (!LoFn || LoFn->isInfinity())
    return Result;
  for (const std::string &V : exprVariables(LoFn))
    if (V != Var)
      return Result;

  auto LoAt = [&](int64_t N) -> double {
    std::optional<double> V =
        evaluate(LoFn, {{Var, static_cast<double>(N)}});
    return V ? *V : -HUGE_VAL; // unevaluable floors to "no promise"
  };

  if (LoAt(0) > Overhead) {
    Result.Class = GrainClass::AlwaysParallel;
    return Result;
  }
  if (LoAt(MaxSize) <= Overhead)
    return Result; // AlwaysSequential
  // Largest K with Lo(K) <= W (monotonicity assumption): spawn only for
  // sizes strictly above K, where even the minimal work repays W.
  int64_t Lo = 0;
  int64_t Hi = 1;
  while (Hi < MaxSize && LoAt(Hi) <= Overhead) {
    Lo = Hi;
    Hi *= 2;
  }
  if (Hi > MaxSize)
    Hi = MaxSize;
  while (Lo + 1 < Hi) {
    int64_t Mid = Lo + (Hi - Lo) / 2;
    if (LoAt(Mid) <= Overhead)
      Lo = Mid;
    else
      Hi = Mid;
  }
  Result.Class = GrainClass::RuntimeTest;
  Result.Threshold = Lo;
  return Result;
}
