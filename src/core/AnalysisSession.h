//===- core/AnalysisSession.h - Incremental analysis sessions -------------===//
//
// Part of GranLog; see DESIGN.md "Incremental analysis & persistent
// caching".
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An editing session over a logic program: repeated calls to update()
/// re-analyze only what an edit actually changed.  Each call fingerprints
/// every call-graph SCC of the new Program revision (program/Fingerprint:
/// clause content + declarations + computed modes/determinacy/solutions,
/// combined with every callee SCC's fingerprint) and looks the values up
/// in the session's result store.  SCCs whose combined fingerprint is
/// unchanged are *reused* — their per-predicate size/cost results, their
/// captured stats counters and their budget degradations are replayed —
/// and only the dirty SCCs plus their transitive callers are re-run on
/// the analyzer's planned driver (GranularityAnalyzer::prepare), at any
/// --jobs setting.
///
/// Contract: report(), explainAll() and the stats counters of a warm
/// update are byte-identical to a cold full analysis of the same revision
/// (timer values aside) — reuse is an optimization, never a visible
/// state.  Counter-limited budgets keep this exact: limits are metered
/// per SCC, so a replayed SCC degrades exactly as it did when analyzed.
/// Deadline/terminator budgets are excluded: results produced under one
/// are never stored.
///
/// When SessionOptions::CacheDir is set, the session's solver cache is
/// additionally persisted to <CacheDir>/solver-cache.json: loaded on
/// construction, written back by save() / the destructor.  A corrupt or
/// version-mismatched file yields a diagnostic (cacheLoadWarning()) and a
/// fresh cache.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_CORE_ANALYSISSESSION_H
#define GRANLOG_CORE_ANALYSISSESSION_H

#include "core/GranularityAnalyzer.h"
#include "diffeq/SolverCache.h"
#include "support/Budget.h"

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace granlog {

/// Configuration of one AnalysisSession (fixed for its lifetime: results
/// stored under one configuration are never valid under another).
struct SessionOptions {
  CostMetric Metric = CostMetric::resolutions();
  double Overhead = 48.0;
  std::vector<std::string> DisabledSchemas;
  unsigned Jobs = 1;
  /// Per-update resource budget (a fresh Budget per update() call).
  /// Counter limits compose with incrementality; deadline/terminator
  /// limits disable result storing (see file comment).
  BudgetLimits Limits;
  /// Directory for the persistent solver cache ("" = in-memory only).
  std::string CacheDir;
  /// Which resource bounds every update computes (see AnalyzerOptions).
  /// Fixed per session like every other option here: stored SCC results
  /// carry (or lack) lower bounds matching this mode, so replaying them
  /// under the other mode would be wrong.
  BoundsMode Bounds = BoundsMode::Upper;
  /// Analyzer span tracing (support/Tracer); null disables.  Each
  /// update() emits one session.update span enclosing its SCC spans.
  class Tracer *Trace = nullptr;
  /// Program tag for this session's spans (Tracer::registerProgram id).
  uint32_t TraceProgram = 0xffffffffu;
};

/// Per-update wall-clock control, for callers that own request
/// lifecycles (granlogd's per-request deadlines and drain cancellation).
/// Unlike SessionOptions::Limits.TimeoutMs — which marks *every* update
/// non-storable up front — an update run under an UpdateDeadline stays
/// storable as long as the deadline/terminator never actually fired:
/// results that completed within the deadline are exactly the results an
/// un-deadlined run would have produced.  Only an update whose budget
/// expired discards its store writes (those results are
/// schedule-dependent and must never be replayed as facts).
struct UpdateDeadline {
  unsigned TimeoutMs = 0; ///< 0 = no wall-clock deadline
  /// Cooperative cancellation (polled at budget checkpoints); return
  /// true to degrade everything still pending in this update.
  std::function<bool()> Terminator;

  bool any() const { return TimeoutMs || Terminator; }
};

/// What one update() call did and produced.
struct SessionUpdate {
  std::string Report;     ///< GranularityAnalyzer::report()
  std::string ExplainAll; ///< GranularityAnalyzer::explainAll()
  unsigned TotalSCCs = 0;
  unsigned AnalyzedSCCs = 0; ///< fingerprint miss: re-analyzed this call
  unsigned ReusedSCCs = 0;   ///< fingerprint hit: results replayed
  /// This revision's budget outcome (replayed + fresh, deduplicated).
  std::vector<Degradation> Degradations;
};

class AnalysisSession {
public:
  explicit AnalysisSession(SessionOptions Options);
  ~AnalysisSession(); ///< saves the persistent cache (best-effort)

  /// Analyzes \p P, reusing stored results for fingerprint-clean SCCs.
  /// \p Stats (optional) receives the same counters a cold run of this
  /// revision would record, plus nothing else — the session's own
  /// "incremental.*" counters are exposed via recordIncrementalStats().
  /// The Program only needs to stay alive for the duration of the call:
  /// everything stored is arena-independent.  \p Deadline (optional)
  /// bounds this one update's wall-clock time; see UpdateDeadline for
  /// the storing contract.
  const SessionUpdate &update(const Program &P,
                              StatsRegistry *Stats = nullptr,
                              const UpdateDeadline *Deadline = nullptr);

  /// The result of the most recent update().
  const SessionUpdate &last() const { return Last; }

  /// The analyzer of the most recent update() (classification queries,
  /// JSON export).  Null before the first update.
  const GranularityAnalyzer *analyzer() const { return GA.get(); }

  const SessionOptions &options() const { return Options; }

  /// The session-lifetime solver cache (shared across updates; persisted
  /// when CacheDir is set).
  SolverCache &solverCache() { return Cache; }

  /// Diagnostic from loading a corrupt/mismatched persistent cache file
  /// ("" when the load was clean or there was no file).
  const std::string &cacheLoadWarning() const { return CacheWarning; }

  /// Number of fingerprint-store entries (one per distinct analyzed SCC
  /// content).  The session's dominant retained footprint; granlogd's
  /// LRU eviction caps the sum of this across sessions.
  size_t storeSize() const { return Store.size(); }

  /// Records the session's lifetime counters — "incremental.updates",
  /// "incremental.sccs.analyzed", "incremental.sccs.reused",
  /// "incremental.store.entries", "incremental.disk.hits" — into
  /// \p Stats.  Separate from update()'s registry on purpose: these
  /// describe the session, not the revision, and would break warm == cold
  /// stats identity if mixed in.
  void recordIncrementalStats(StatsRegistry *Stats) const;

  /// Writes the persistent solver cache now (no-op without CacheDir).
  /// Returns false and sets \p Error on I/O failure.
  bool save(std::string *Error = nullptr);

private:
  /// Everything stored for one analyzed SCC, keyed by its combined
  /// fingerprint.  Member names are symbol texts ("name/arity"): symbol
  /// ids are arena-scoped and must not cross Program revisions.
  struct StoredSCC {
    std::vector<std::string> Members; ///< sorted member texts
    std::vector<PredicateSizeInfo> SizeInfos; ///< parallel to Members
    std::vector<PredicateCostInfo> CostInfos; ///< parallel to Members
    std::map<std::string, uint64_t, std::less<>> Counters; ///< stats tee
    std::vector<Degradation> Degradations;    ///< this SCC's budget log
  };

  SessionOptions Options;
  SolverCache Cache;
  std::string CachePath; ///< "" when CacheDir is unset
  std::string CacheWarning;
  std::unordered_map<uint64_t, StoredSCC> Store;
  std::unique_ptr<GranularityAnalyzer> GA;
  std::unique_ptr<Budget> UpdateBudget;
  SessionUpdate Last;
  uint64_t Updates = 0;
  uint64_t TotalAnalyzed = 0;
  uint64_t TotalReused = 0;
};

} // namespace granlog

#endif // GRANLOG_CORE_ANALYSISSESSION_H
