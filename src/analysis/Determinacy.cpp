//===- analysis/Determinacy.cpp -------------------------------------------===//

#include "analysis/Determinacy.h"

#include <functional>
#include <optional>

using namespace granlog;

namespace {

/// A guard constraint "Var <op> Constant" extracted from a clause prefix.
struct Guard {
  const VarTerm *Var;
  enum OpKind { LT, LE, GT, GE, EQ, NE } Op;
  int64_t Bound;

  /// Does the integer \p V satisfy this guard?
  bool admits(int64_t V) const {
    switch (Op) {
    case LT:
      return V < Bound;
    case LE:
      return V <= Bound;
    case GT:
      return V > Bound;
    case GE:
      return V >= Bound;
    case EQ:
      return V == Bound;
    case NE:
      return V != Bound;
    }
    return true;
  }

  /// Can this guard and \p Other both hold for some integer?
  bool compatibleWith(const Guard &Other) const {
    // Sample candidate integers around both bounds; guards are linear so
    // this is exact for the comparison forms above.
    for (int64_t Base : {Bound, Other.Bound})
      for (int64_t Delta : {-1, 0, 1})
        if (admits(Base + Delta) && Other.admits(Base + Delta))
          return true;
    return false;
  }
};

std::optional<Guard> parseGuard(const Term *Lit, const SymbolTable &Symbols) {
  const StructTerm *S = dynCast<StructTerm>(deref(Lit));
  if (!S || S->arity() != 2)
    return std::nullopt;
  const std::string &Name = Symbols.text(S->name());
  Guard::OpKind Op;
  bool Swap = false;
  const VarTerm *V = dynCast<VarTerm>(deref(S->arg(0)));
  const IntTerm *C = dynCast<IntTerm>(deref(S->arg(1)));
  if (!V || !C) {
    // Maybe "Constant op Var".
    V = dynCast<VarTerm>(deref(S->arg(1)));
    C = dynCast<IntTerm>(deref(S->arg(0)));
    Swap = true;
  }
  if (!V || !C)
    return std::nullopt;
  if (Name == "<")
    Op = Swap ? Guard::GT : Guard::LT;
  else if (Name == "=<")
    Op = Swap ? Guard::GE : Guard::LE;
  else if (Name == ">")
    Op = Swap ? Guard::LT : Guard::GT;
  else if (Name == ">=")
    Op = Swap ? Guard::LE : Guard::GE;
  else if (Name == "=:=")
    Op = Guard::EQ;
  else if (Name == "=\\=")
    Op = Guard::NE;
  else
    return std::nullopt;
  return Guard{V, Op, C->value()};
}

/// Guards over head variables in the leading prefix of the body (stopping
/// at the first literal with another shape).
std::vector<Guard> clauseGuards(const Clause &C, const SymbolTable &Symbols) {
  std::vector<Guard> Guards;
  for (const Term *Lit : C.bodyLiterals()) {
    std::optional<Guard> G = parseGuard(Lit, Symbols);
    if (!G)
      break;
    Guards.push_back(*G);
  }
  return Guards;
}

/// A comparison between two variables, e.g. "E =< M".
struct VarGuard {
  const VarTerm *L;
  const VarTerm *R;
  Guard::OpKind Op;
};

Guard::OpKind flipOp(Guard::OpKind Op) {
  switch (Op) {
  case Guard::LT:
    return Guard::GT;
  case Guard::LE:
    return Guard::GE;
  case Guard::GT:
    return Guard::LT;
  case Guard::GE:
    return Guard::LE;
  default:
    return Op; // EQ/NE are symmetric
  }
}

/// Are the two operator constraints on the *same* (L, R) pair mutually
/// exclusive (no integer pair satisfies both)?
bool opsExclusive(Guard::OpKind A, Guard::OpKind B) {
  auto Key = [](Guard::OpKind X, Guard::OpKind Y) {
    return static_cast<int>(X) * 16 + static_cast<int>(Y);
  };
  switch (Key(A, B)) {
  case Guard::LT * 16 + Guard::GE:
  case Guard::GE * 16 + Guard::LT:
  case Guard::LE * 16 + Guard::GT:
  case Guard::GT * 16 + Guard::LE:
  case Guard::LT * 16 + Guard::GT: // x<y and x>y
  case Guard::GT * 16 + Guard::LT:
  case Guard::EQ * 16 + Guard::NE:
  case Guard::NE * 16 + Guard::EQ:
  case Guard::LT * 16 + Guard::EQ:
  case Guard::EQ * 16 + Guard::LT:
  case Guard::GT * 16 + Guard::EQ:
  case Guard::EQ * 16 + Guard::GT:
    return true;
  default:
    return false;
  }
}

std::optional<VarGuard> parseVarGuard(const Term *Lit,
                                      const SymbolTable &Symbols) {
  const StructTerm *S = dynCast<StructTerm>(deref(Lit));
  if (!S || S->arity() != 2)
    return std::nullopt;
  const VarTerm *L = dynCast<VarTerm>(deref(S->arg(0)));
  const VarTerm *R = dynCast<VarTerm>(deref(S->arg(1)));
  if (!L || !R)
    return std::nullopt;
  const std::string &Name = Symbols.text(S->name());
  Guard::OpKind Op;
  if (Name == "<")
    Op = Guard::LT;
  else if (Name == "=<")
    Op = Guard::LE;
  else if (Name == ">")
    Op = Guard::GT;
  else if (Name == ">=")
    Op = Guard::GE;
  else if (Name == "=:=")
    Op = Guard::EQ;
  else if (Name == "=\\=")
    Op = Guard::NE;
  else
    return std::nullopt;
  return VarGuard{L, R, Op};
}

std::vector<VarGuard> clauseVarGuards(const Clause &C,
                                      const SymbolTable &Symbols) {
  std::vector<VarGuard> Guards;
  for (const Term *Lit : C.bodyLiterals()) {
    std::optional<VarGuard> G = parseVarGuard(Lit, Symbols);
    if (!G)
      break;
    Guards.push_back(*G);
  }
  return Guards;
}

/// The structural position of the first occurrence of \p V in the clause
/// head: argument index followed by the child path.  Two clauses whose
/// guard variables sit at the same head positions compare "the same"
/// runtime values.
std::optional<std::vector<unsigned>> headPath(const Clause &C,
                                              const VarTerm *V) {
  const StructTerm *Head = dynCast<StructTerm>(deref(C.head()));
  if (!Head)
    return std::nullopt;
  std::vector<unsigned> Path;
  std::function<bool(const Term *)> Find = [&](const Term *T) -> bool {
    T = deref(T);
    if (T == V)
      return true;
    const StructTerm *S = dynCast<StructTerm>(T);
    if (!S)
      return false;
    for (unsigned I = 0; I != S->arity(); ++I) {
      Path.push_back(I);
      if (Find(S->arg(I)))
        return true;
      Path.pop_back();
    }
    return false;
  };
  for (unsigned I = 0; I != Head->arity(); ++I) {
    Path.clear();
    Path.push_back(I);
    if (Find(Head->arg(I)))
      return Path;
  }
  return std::nullopt;
}

/// Do clauses A and B carry complementary variable-variable guards over
/// the same head positions (e.g. part's "E =< M" vs. "E > M")?
bool varGuardsExclusive(const Clause &A, const Clause &B,
                        const SymbolTable &Symbols) {
  std::vector<VarGuard> GA = clauseVarGuards(A, Symbols);
  std::vector<VarGuard> GB = clauseVarGuards(B, Symbols);
  for (const VarGuard &X : GA) {
    std::optional<std::vector<unsigned>> XL = headPath(A, X.L);
    std::optional<std::vector<unsigned>> XR = headPath(A, X.R);
    if (!XL || !XR)
      continue;
    for (const VarGuard &Y : GB) {
      std::optional<std::vector<unsigned>> YL = headPath(B, Y.L);
      std::optional<std::vector<unsigned>> YR = headPath(B, Y.R);
      if (!YL || !YR)
        continue;
      if (*XL == *YL && *XR == *YR && opsExclusive(X.Op, Y.Op))
        return true;
      // Same pair written the other way around in clause B.
      if (*XL == *YR && *XR == *YL && opsExclusive(X.Op, flipOp(Y.Op)))
        return true;
    }
  }
  return false;
}

/// Finds the head argument term at \p Index.
const Term *headArg(const Clause &C, unsigned Index) {
  const StructTerm *Head = dynCast<StructTerm>(deref(C.head()));
  if (!Head || Index >= Head->arity())
    return nullptr;
  return deref(Head->arg(Index));
}

/// A coarse "principal functor" summary for indexing comparisons.  List
/// patterns additionally record the spine shape: the number of cons cells
/// visible in the pattern and whether the spine is closed by '[]' — this
/// distinguishes e.g. the [X] base case from the [A,B|T] recursive case.
struct IndexKey {
  enum KindTy { Var, Nil, Cons, Int, Atom, Other } Kind = Var;
  int64_t IntValue = 0;
  Symbol Name;
  unsigned Arity = 0;
  unsigned SpineLen = 0;    ///< Cons only: visible cells
  bool SpineClosed = false; ///< Cons only: ends in '[]'

  static IndexKey of(const Term *T, const SymbolTable &Symbols) {
    IndexKey K;
    if (!T || T->isVariable())
      return K;
    if (const IntTerm *I = dynCast<IntTerm>(T)) {
      K.Kind = Int;
      K.IntValue = I->value();
      return K;
    }
    if (const AtomTerm *A = dynCast<AtomTerm>(T)) {
      K.Kind = Symbols.text(A->name()) == "[]" ? Nil : Atom;
      K.Name = A->name();
      return K;
    }
    if (const StructTerm *S = dynCast<StructTerm>(T)) {
      if (S->arity() == 2 && Symbols.text(S->name()) == ".") {
        K.Kind = Cons;
        const Term *Spine = T;
        while (isCons(Spine, Symbols)) {
          ++K.SpineLen;
          Spine = deref(cast<StructTerm>(deref(Spine))->arg(1));
        }
        K.SpineClosed = isNil(Spine, Symbols);
        return K;
      }
      K.Kind = Other;
      K.Name = S->name();
      K.Arity = S->arity();
      return K;
    }
    K.Kind = Other;
    return K;
  }

  /// Can two terms with these keys unify?
  bool mayUnify(const IndexKey &O) const {
    if (Kind == Var || O.Kind == Var)
      return true;
    if (Kind != O.Kind)
      return false;
    switch (Kind) {
    case Int:
      return IntValue == O.IntValue;
    case Atom:
      return Name == O.Name;
    case Other:
      return Name == O.Name && Arity == O.Arity;
    case Cons: {
      // A closed spine matches exactly SpineLen elements; an open one
      // matches >= SpineLen.
      if (SpineClosed && O.SpineClosed)
        return SpineLen == O.SpineLen;
      if (SpineClosed)
        return SpineLen >= O.SpineLen;
      if (O.SpineClosed)
        return O.SpineLen >= SpineLen;
      return true;
    }
    default:
      return true; // Nil/Nil
    }
  }
};

} // namespace

Determinacy::Determinacy(const Program &Prog, const ModeTable &ModeTab)
    : P(&Prog), Modes(&ModeTab) {
  // Pass 1: clause-level mutual exclusion.
  for (const auto &Pred : Prog.predicates()) {
    bool AllExclusive = true;
    unsigned N = static_cast<unsigned>(Pred->clauses().size());
    for (unsigned A = 0; A < N && AllExclusive; ++A)
      for (unsigned B = A + 1; B < N && AllExclusive; ++B)
        AllExclusive = computeExclusive(*Pred, A, B);
    Exclusive[Pred->functor()] = AllExclusive;
  }
  // Pass 2: determinacy fixpoint (start optimistic, demote).
  for (const auto &Pred : Prog.predicates())
    Determinate[Pred->functor()] = Exclusive[Pred->functor()];
  const SymbolTable &Symbols = Prog.symbols();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &Pred : Prog.predicates()) {
      if (!Determinate[Pred->functor()])
        continue;
      for (const Clause &C : Pred->clauses()) {
        for (const Term *Lit : C.bodyLiterals()) {
          std::optional<Functor> LF = literalFunctor(Lit);
          if (!LF || isBuiltinFunctor(*LF, Symbols))
            continue;
          auto It = Determinate.find(*LF);
          bool CalleeDet = It != Determinate.end() && It->second;
          if (!CalleeDet) {
            Determinate[Pred->functor()] = false;
            Changed = true;
            break;
          }
        }
        if (!Determinate[Pred->functor()])
          break;
      }
    }
  }
}

bool Determinacy::computeExclusive(const Predicate &Pred, unsigned A,
                                   unsigned B) const {
  const SymbolTable &Symbols = P->symbols();
  const Clause &CA = Pred.clauses()[A];
  const Clause &CB = Pred.clauses()[B];
  std::vector<unsigned> Inputs = Modes->inputPositions(Pred.functor());

  for (unsigned I : Inputs) {
    const Term *TA = headArg(CA, I);
    const Term *TB = headArg(CB, I);
    IndexKey KA = IndexKey::of(TA, Symbols);
    IndexKey KB = IndexKey::of(TB, Symbols);
    if (!KA.mayUnify(KB))
      return true;

    // Integer constant vs. guarded variable.
    auto GuardExcludes = [&](const Term *ConstT, const Clause &GuardClause,
                             const Term *VarT) {
      const IntTerm *C = ConstT ? dynCast<IntTerm>(ConstT) : nullptr;
      const VarTerm *V = VarT ? dynCast<VarTerm>(VarT) : nullptr;
      if (!C || !V)
        return false;
      for (const Guard &G : clauseGuards(GuardClause, Symbols))
        if (G.Var == V && !G.admits(C->value()))
          return true;
      return false;
    };
    if (GuardExcludes(TA, CB, TB) || GuardExcludes(TB, CA, TA))
      return true;

    // Guarded variable vs. guarded variable with incompatible guards.
    const VarTerm *VA = TA ? dynCast<VarTerm>(TA) : nullptr;
    const VarTerm *VB = TB ? dynCast<VarTerm>(TB) : nullptr;
    if (VA && VB) {
      for (const Guard &GA : clauseGuards(CA, Symbols)) {
        if (GA.Var != VA)
          continue;
        for (const Guard &GB : clauseGuards(CB, Symbols)) {
          if (GB.Var != VB)
            continue;
          if (!GA.compatibleWith(GB))
            return true;
        }
      }
    }
  }
  // Variable-variable guards over matching head positions (e.g. the
  // paper's part/4: "E =< M" vs. "E > M").
  if (varGuardsExclusive(CA, CB, Symbols))
    return true;
  return false;
}

bool Determinacy::isDeterminate(Functor F) const {
  auto It = Determinate.find(F);
  return It != Determinate.end() && It->second;
}

bool Determinacy::hasExclusiveClauses(Functor F) const {
  auto It = Exclusive.find(F);
  return It != Exclusive.end() && It->second;
}

bool Determinacy::clausesExclusive(Functor F, unsigned A, unsigned B) const {
  const Predicate *Pred = P->lookup(F);
  if (!Pred || A >= Pred->clauses().size() || B >= Pred->clauses().size())
    return false;
  if (A == B)
    return false;
  return computeExclusive(*Pred, A, B);
}
