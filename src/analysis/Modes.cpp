//===- analysis/Modes.cpp -------------------------------------------------===//

#include "analysis/Modes.h"

#include <deque>

using namespace granlog;

std::vector<bool> granlog::builtinOutputs(Functor F,
                                          const SymbolTable &Symbols) {
  const std::string &Name = Symbols.text(F.Name);
  std::vector<bool> Out(F.Arity, false);
  if (F.Arity == 2) {
    if (Name == "is")
      Out[0] = true; // X is Expr
    else if (Name == "length")
      Out[1] = true; // length(List, N)
    else if (Name == "=")
      Out[0] = Out[1] = true; // either side may be bound
  } else if (F.Arity == 3 && Name == "functor") {
    Out[1] = Out[2] = true;
  } else if (F.Arity == 3 && Name == "arg") {
    Out[2] = true;
  }
  return Out;
}

ModeTable::ModeTable(const Program &P, const CallGraph &CG) {
  for (const auto &Pred : P.predicates()) {
    if (Pred->hasDeclaredModes()) {
      Modes[Pred->functor()] = Pred->declaredModes();
      Declared.insert(Pred->functor());
    }
  }
  infer(P, CG);
}

const std::vector<ArgMode> &ModeTable::modes(Functor F) const {
  auto It = Modes.find(F);
  if (It != Modes.end())
    return It->second;
  // Lazily built default entries; guarded because the analyzer queries
  // modes from concurrent SCC jobs.  unordered_map references stay valid
  // across rehashes, so handing the vector out by reference is fine.
  std::lock_guard<std::mutex> Lock(DefaultMutex);
  auto &Default = DefaultCache[F];
  if (Default.empty() && F.Arity > 0)
    Default.assign(F.Arity, ArgMode::In);
  return Default;
}

std::vector<unsigned> ModeTable::inputPositions(Functor F) const {
  std::vector<unsigned> Result;
  const std::vector<ArgMode> &M = modes(F);
  for (unsigned I = 0; I != M.size(); ++I)
    if (M[I] != ArgMode::Out)
      Result.push_back(I);
  return Result;
}

std::vector<unsigned> ModeTable::outputPositions(Functor F) const {
  std::vector<unsigned> Result;
  const std::vector<ArgMode> &M = modes(F);
  for (unsigned I = 0; I != M.size(); ++I)
    if (M[I] == ArgMode::Out)
      Result.push_back(I);
  return Result;
}

namespace {

/// Collects the variables of \p T into \p Vars (set semantics).
void addVars(const Term *T, std::vector<const VarTerm *> &Vars) {
  collectVariables(T, Vars);
}

bool allVarsIn(const Term *T, const std::vector<const VarTerm *> &Ground) {
  std::vector<const VarTerm *> Vars;
  collectVariables(T, Vars);
  for (const VarTerm *V : Vars) {
    bool Found = false;
    for (const VarTerm *G : Ground)
      if (G == V) {
        Found = true;
        break;
      }
    if (!Found)
      return false;
  }
  return true;
}

} // namespace

void ModeTable::infer(const Program &P, const CallGraph &CG) {
  const SymbolTable &Symbols = P.symbols();

  // Call patterns observed so far: for each predicate, per position, was
  // it ground in every call seen?  Start "unseen".
  std::unordered_map<Functor, std::vector<bool>> GroundIn;
  std::deque<Functor> Worklist;

  auto RecordCall = [&](Functor F, const std::vector<bool> &Pattern) {
    if (Declared.count(F))
      return;
    auto It = GroundIn.find(F);
    if (It == GroundIn.end()) {
      GroundIn[F] = Pattern;
      Worklist.push_back(F);
      return;
    }
    bool Changed = false;
    for (unsigned I = 0; I != Pattern.size(); ++I) {
      if (It->second[I] && !Pattern[I]) {
        It->second[I] = false;
        Changed = true;
      }
    }
    if (Changed)
      Worklist.push_back(F);
  };

  // Seed: entry goals are fully ground calls; declared predicates process
  // their own clauses with their declared input pattern.
  for (const Term *Entry : P.entryPoints()) {
    std::optional<Functor> F = literalFunctor(Entry);
    if (!F || !P.lookup(*F))
      continue;
    std::vector<bool> Pattern(F->Arity, false);
    if (const StructTerm *S = dynCast<StructTerm>(deref(Entry)))
      for (unsigned I = 0; I != S->arity(); ++I)
        Pattern[I] = S->arg(I)->isGround();
    RecordCall(*F, Pattern);
  }
  for (Functor F : CG.topologicalOrder())
    if (Declared.count(F))
      Worklist.push_back(F);

  auto PatternOf = [&](Functor F) -> std::vector<bool> {
    if (Declared.count(F)) {
      std::vector<bool> Pattern;
      for (ArgMode M : Modes[F])
        Pattern.push_back(M != ArgMode::Out);
      return Pattern;
    }
    auto It = GroundIn.find(F);
    if (It != GroundIn.end())
      return It->second;
    return std::vector<bool>(F.Arity, false);
  };

  unsigned Budget = 10000; // fixpoint safety net
  while (!Worklist.empty() && Budget-- > 0) {
    Functor F = Worklist.front();
    Worklist.pop_front();
    const Predicate *Pred = P.lookup(F);
    if (!Pred)
      continue;
    std::vector<bool> Pattern = PatternOf(F);

    for (const Clause &C : Pred->clauses()) {
      // Variables known ground at the current program point.
      std::vector<const VarTerm *> Ground;
      const StructTerm *Head = dynCast<StructTerm>(deref(C.head()));
      if (Head)
        for (unsigned I = 0; I != Head->arity(); ++I)
          if (I < Pattern.size() && Pattern[I])
            addVars(Head->arg(I), Ground);

      for (const Term *Lit : C.bodyLiterals()) {
        std::optional<Functor> LF = literalFunctor(Lit);
        if (!LF)
          continue;
        const StructTerm *S = dynCast<StructTerm>(deref(Lit));
        if (isBuiltinFunctor(*LF, Symbols)) {
          if (S)
            for (unsigned I = 0; I != S->arity(); ++I)
              addVars(S->arg(I), Ground); // builtins ground their args
          continue;
        }
        if (P.lookup(*LF)) {
          std::vector<bool> CallPattern(LF->Arity, true);
          if (S)
            for (unsigned I = 0; I != S->arity(); ++I)
              CallPattern[I] = allVarsIn(S->arg(I), Ground);
          RecordCall(*LF, CallPattern);
        }
        // Assume success grounds every argument.
        if (S)
          for (unsigned I = 0; I != S->arity(); ++I)
            addVars(S->arg(I), Ground);
      }
    }
  }

  // Finalize inferred modes.
  for (const auto &Pred : P.predicates()) {
    Functor F = Pred->functor();
    if (Declared.count(F) || F.Arity == 0)
      continue;
    auto It = GroundIn.find(F);
    std::vector<ArgMode> M(F.Arity, ArgMode::In);
    if (It != GroundIn.end())
      for (unsigned I = 0; I != F.Arity; ++I)
        M[I] = It->second[I] ? ArgMode::In : ArgMode::Out;
    Modes[F] = std::move(M);
  }
}
