//===- analysis/Determinacy.h - Determinacy and mutual exclusion ----------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conservative determinacy analysis in the style of Mellish [16], which
/// the paper relies on for the simplification Sols_L = 1 (Section 4,
/// equation (3)).  A predicate is determinate when (a) its clauses are
/// pairwise mutually exclusive and (b) every user predicate called from
/// its bodies is determinate.  Mutual exclusion is detected from
///   - distinct non-variable principal functors in the same input head
///     argument position (first-argument indexing, generalized), and
///   - an integer constant in one head vs. an arithmetic guard over the
///     corresponding head variable in the other that the constant fails
///     (e.g. fib(0,...) vs. fib(M,...) :- M > 1, ...).
///
/// Mutual exclusion also tells the cost analysis when 'max' may replace
/// '+' when combining clause costs ("using the maximum of the costs of
/// mutually exclusive groups of clauses", Section 4).
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_ANALYSIS_DETERMINACY_H
#define GRANLOG_ANALYSIS_DETERMINACY_H

#include "analysis/Modes.h"
#include "program/Program.h"

#include <unordered_map>

namespace granlog {

/// Results of the determinacy analysis.
class Determinacy {
public:
  Determinacy(const Program &P, const ModeTable &Modes);

  /// True if every solution-producing path of \p F yields at most one
  /// solution (conservative).
  bool isDeterminate(Functor F) const;

  /// True if the clauses of \p F are pairwise mutually exclusive (at most
  /// one clause can succeed for any call).
  bool hasExclusiveClauses(Functor F) const;

  /// True if clauses \p A and \p B of \p F cannot both succeed.
  bool clausesExclusive(Functor F, unsigned A, unsigned B) const;

private:
  bool computeExclusive(const Predicate &Pred, unsigned A, unsigned B) const;

  const Program *P;
  const ModeTable *Modes;
  std::unordered_map<Functor, bool> Exclusive;
  std::unordered_map<Functor, bool> Determinate;
};

} // namespace granlog

#endif // GRANLOG_ANALYSIS_DETERMINACY_H
