//===- analysis/Modes.h - Argument modes ----------------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mode table: for every predicate, whether each argument position is
/// an input (bound at call time) or an output (bound by the callee).  The
/// paper assumes modes are "inferred via dataflow analysis [2, 5] or
/// provided by the users"; we support both: ':- mode' declarations are
/// authoritative, and a groundness-propagation inference fills in the
/// rest, seeded from declared predicates and ':- entry' goals.
///
/// The inference abstracts each call by the set of definitely-ground
/// argument positions, assumes (as is standard for well-moded programs)
/// that a successful call grounds all of its arguments, and iterates to a
/// fixpoint over the call graph.  A position is In if it was ground in
/// every observed call, Out otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_ANALYSIS_MODES_H
#define GRANLOG_ANALYSIS_MODES_H

#include "program/CallGraph.h"
#include "program/Program.h"

#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace granlog {

/// Per-predicate argument modes, declared or inferred.
class ModeTable {
public:
  /// Builds the table: declarations first, then inference for the rest.
  ModeTable(const Program &P, const CallGraph &CG);

  /// Modes of \p F; all-In for unknown predicates (conservative: treating
  /// an output as an input can only lose precision, not soundness, because
  /// unknown input sizes become "undefined" and propagate to Infinity).
  const std::vector<ArgMode> &modes(Functor F) const;

  /// Convenience: is argument \p Index of \p F an input?
  bool isInput(Functor F, unsigned Index) const {
    const std::vector<ArgMode> &M = modes(F);
    return Index < M.size() && M[Index] == ArgMode::In;
  }
  bool isOutput(Functor F, unsigned Index) const {
    const std::vector<ArgMode> &M = modes(F);
    return Index < M.size() && M[Index] == ArgMode::Out;
  }

  /// Input argument positions of \p F in ascending order.
  std::vector<unsigned> inputPositions(Functor F) const;
  /// Output argument positions of \p F in ascending order.
  std::vector<unsigned> outputPositions(Functor F) const;

  /// True when the predicate's modes came from a ':- mode' declaration.
  bool isDeclared(Functor F) const { return Declared.count(F) > 0; }

private:
  void infer(const Program &P, const CallGraph &CG);

  std::unordered_map<Functor, std::vector<ArgMode>> Modes;
  std::unordered_set<Functor> Declared;
  mutable std::mutex DefaultMutex;
  mutable std::unordered_map<Functor, std::vector<ArgMode>> DefaultCache;
};

/// Built-in dataflow: which argument positions of builtin \p F are outputs
/// (bound by the builtin)?  E.g. is/2 binds its first argument; length/2
/// binds its second; comparisons bind nothing.
std::vector<bool> builtinOutputs(Functor F, const SymbolTable &Symbols);

} // namespace granlog

#endif // GRANLOG_ANALYSIS_MODES_H
