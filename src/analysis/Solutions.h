//===- analysis/Solutions.h - Number-of-solutions bounds ------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conservative upper bound on the number of solutions a call can
/// produce — the Sols_L factors of the paper's equation (2):
///
///   Cost_cl <= Cost_H + sum_i (prod_{j<i} Sols_j) Cost_i
///
/// The paper notes that "compile-time estimation of the number of
/// solutions a predicate can generate is a nontrivial problem beyond the
/// scope of this paper" and restricts itself to determinate literals
/// (Sols = 1).  This analysis recovers equation (2) for the tractable
/// fragment: *constant* solution bounds.
///
///  - builtins produce at most one solution;
///  - a determinate predicate produces at most one solution;
///  - a non-recursive predicate produces at most
///      sum over clauses of the product of its body literals' bounds
///    (with ';' adding and if-then-else taking the max of its branches);
///  - any other recursive predicate is unbounded.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_ANALYSIS_SOLUTIONS_H
#define GRANLOG_ANALYSIS_SOLUTIONS_H

#include "analysis/Determinacy.h"
#include "program/CallGraph.h"

#include <optional>
#include <unordered_map>

namespace granlog {

/// Upper bounds on solution counts; nullopt = unbounded.
class SolutionsAnalysis {
public:
  SolutionsAnalysis(const Program &P, const CallGraph &CG,
                    const Determinacy &Det);

  /// Upper bound on the number of solutions of a call to \p F, or nullopt
  /// when no finite bound is known.
  std::optional<int64_t> solutions(Functor F) const;

  /// Bound for one goal term (handles control constructs).
  std::optional<int64_t> goalSolutions(const Term *Goal) const;

private:
  std::optional<int64_t> computePredicate(Functor F);

  const Program *P;
  const CallGraph *CG;
  const Determinacy *Det;
  std::unordered_map<Functor, std::optional<int64_t>> Cache;
};

} // namespace granlog

#endif // GRANLOG_ANALYSIS_SOLUTIONS_H
