//===- analysis/DepGraph.cpp ----------------------------------------------===//

#include "analysis/DepGraph.h"

#include <algorithm>

using namespace granlog;

void DepGraph::addEdge(unsigned From, unsigned To) {
  std::vector<unsigned> &P = Preds[To];
  if (std::find(P.begin(), P.end(), From) == P.end())
    P.push_back(From);
}

DepGraph::DepGraph(const Clause &C, Functor Head, const ModeTable &Modes,
                   const SymbolTable &Symbols) {
  const std::vector<const Term *> &Lits = C.bodyLiterals();
  NumLiterals = static_cast<unsigned>(Lits.size());
  Preds.resize(numNodes());
  InPos.resize(numNodes());
  OutPos.resize(numNodes());

  const StructTerm *HeadT = dynCast<StructTerm>(deref(C.head()));

  // Node argument position sets.
  for (unsigned I = 0; I != Head.Arity; ++I) {
    if (Modes.isOutput(Head, I))
      InPos[endNode()].push_back(I); // end node consumes head outputs
    else
      OutPos[StartNode].push_back(I); // start node produces head inputs
  }
  for (unsigned J = 0; J != NumLiterals; ++J) {
    std::optional<Functor> LF = literalFunctor(Lits[J]);
    if (!LF)
      continue;
    if (isBuiltinFunctor(*LF, Symbols)) {
      std::vector<bool> Outs = builtinOutputs(*LF, Symbols);
      for (unsigned I = 0; I != LF->Arity; ++I)
        (Outs[I] ? OutPos : InPos)[literalNode(J)].push_back(I);
    } else {
      for (unsigned I = 0; I != LF->Arity; ++I)
        (Modes.isOutput(*LF, I) ? OutPos : InPos)[literalNode(J)]
            .push_back(I);
    }
  }

  // Producer map: head inputs first, then body outputs left to right (the
  // earliest producer wins, matching the sequential control strategy).
  auto Produce = [&](const Term *T, unsigned Node) {
    std::vector<const VarTerm *> Vars;
    collectVariables(T, Vars);
    for (const VarTerm *V : Vars)
      Producer.emplace(V, Node); // emplace keeps the earliest
  };
  if (HeadT)
    for (unsigned I : OutPos[StartNode])
      Produce(HeadT->arg(I), StartNode);
  for (unsigned J = 0; J != NumLiterals; ++J) {
    const StructTerm *S = dynCast<StructTerm>(deref(Lits[J]));
    if (!S)
      continue;
    for (unsigned I : OutPos[literalNode(J)])
      Produce(S->arg(I), literalNode(J));
  }

  // Edges: from each variable's producer to each consumer.
  auto Consume = [&](const Term *T, unsigned Node) {
    std::vector<const VarTerm *> Vars;
    collectVariables(T, Vars);
    for (const VarTerm *V : Vars) {
      auto It = Producer.find(V);
      if (It == Producer.end()) {
        RangeRestricted = false;
        continue;
      }
      if (It->second != Node)
        addEdge(It->second, Node);
    }
  };
  for (unsigned J = 0; J != NumLiterals; ++J) {
    const StructTerm *S = dynCast<StructTerm>(deref(Lits[J]));
    if (!S) {
      // 0-ary literal: control dependency only; no data edges.
      continue;
    }
    for (unsigned I : InPos[literalNode(J)])
      Consume(S->arg(I), literalNode(J));
  }
  if (HeadT)
    for (unsigned I : InPos[endNode()])
      Consume(HeadT->arg(I), endNode());
}

bool DepGraph::hasEdge(unsigned From, unsigned To) const {
  const std::vector<unsigned> &P = Preds[To];
  return std::find(P.begin(), P.end(), From) != P.end();
}

unsigned DepGraph::producerOf(const VarTerm *V) const {
  auto It = Producer.find(V);
  return It == Producer.end() ? ~0u : It->second;
}

std::vector<unsigned> DepGraph::inputPositions(unsigned Node) const {
  return InPos[Node];
}

std::vector<unsigned> DepGraph::outputPositions(unsigned Node) const {
  return OutPos[Node];
}

unsigned DepGraph::height() const {
  // Longest path; the graph is acyclic because edges go from earlier to
  // later nodes under the left-to-right producer rule.
  std::vector<unsigned> Depth(numNodes(), 0);
  unsigned Max = 0;
  for (unsigned N = 0; N != numNodes(); ++N) {
    for (unsigned P : Preds[N])
      Depth[N] = std::max(Depth[N], Depth[P] + 1);
    Max = std::max(Max, Depth[N]);
  }
  return Max;
}
