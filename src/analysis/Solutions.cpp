//===- analysis/Solutions.cpp ---------------------------------------------===//

#include "analysis/Solutions.h"

using namespace granlog;

namespace {

/// Bounds are capped to keep products meaningful; anything larger is
/// treated as unbounded.
constexpr int64_t SolutionCap = 1 << 20;

std::optional<int64_t> saturatingMul(std::optional<int64_t> A,
                                     std::optional<int64_t> B) {
  if (!A || !B)
    return std::nullopt;
  if (*A > SolutionCap / std::max<int64_t>(1, *B))
    return std::nullopt;
  return *A * *B;
}

std::optional<int64_t> saturatingAdd(std::optional<int64_t> A,
                                     std::optional<int64_t> B) {
  if (!A || !B)
    return std::nullopt;
  if (*A + *B > SolutionCap)
    return std::nullopt;
  return *A + *B;
}

} // namespace

SolutionsAnalysis::SolutionsAnalysis(const Program &P, const CallGraph &CG,
                                     const Determinacy &Det)
    : P(&P), CG(&CG), Det(&Det) {
  for (const auto &Pred : P.predicates())
    (void)computePredicate(Pred->functor());
}

std::optional<int64_t> SolutionsAnalysis::solutions(Functor F) const {
  auto It = Cache.find(F);
  if (It != Cache.end())
    return It->second;
  return std::nullopt;
}

std::optional<int64_t>
SolutionsAnalysis::goalSolutions(const Term *Goal) const {
  Goal = deref(Goal);
  const SymbolTable &Symbols = P->symbols();
  if (const StructTerm *S = dynCast<StructTerm>(Goal)) {
    const std::string &Name = Symbols.text(S->name());
    if (S->arity() == 2 && (Name == "," || Name == "&"))
      return saturatingMul(goalSolutions(S->arg(0)),
                           goalSolutions(S->arg(1)));
    if (S->arity() == 2 && Name == ";") {
      const StructTerm *Cond = dynCast<StructTerm>(deref(S->arg(0)));
      if (Cond && Cond->arity() == 2 &&
          Symbols.text(Cond->name()) == "->") {
        // Committed choice: at most max(then, else) per condition commit.
        std::optional<int64_t> T = goalSolutions(Cond->arg(1));
        std::optional<int64_t> E = goalSolutions(S->arg(1));
        if (!T || !E)
          return std::nullopt;
        return std::max(*T, *E);
      }
      return saturatingAdd(goalSolutions(S->arg(0)),
                           goalSolutions(S->arg(1)));
    }
    if (S->arity() == 2 && Name == "->")
      return goalSolutions(S->arg(1));
    if (S->arity() == 1 && Name == "\\+")
      return 1;
  }
  std::optional<Functor> F = literalFunctor(Goal);
  if (!F)
    return std::nullopt;
  if (isBuiltinFunctor(*F, Symbols)) {
    // between/3 enumerates its range; with constant bounds the count is
    // known, otherwise it is unbounded.
    if (F->Arity == 3 && Symbols.text(F->Name) == "between") {
      const StructTerm *S = dynCast<StructTerm>(Goal);
      const IntTerm *Lo = S ? dynCast<IntTerm>(deref(S->arg(0))) : nullptr;
      const IntTerm *Hi = S ? dynCast<IntTerm>(deref(S->arg(1))) : nullptr;
      if (Lo && Hi)
        return std::max<int64_t>(0, Hi->value() - Lo->value() + 1);
      return std::nullopt;
    }
    return 1; // all other builtins in the subset are determinate
  }
  auto It = Cache.find(*F);
  if (It != Cache.end())
    return It->second;
  return std::nullopt;
}

std::optional<int64_t> SolutionsAnalysis::computePredicate(Functor F) {
  auto It = Cache.find(F);
  if (It != Cache.end())
    return It->second;

  const Predicate *Pred = P->lookup(F);
  if (!Pred) {
    Cache[F] = std::nullopt;
    return std::nullopt;
  }
  // Determinate predicates produce at most one solution, recursion or not.
  if (Det->isDeterminate(F)) {
    Cache[F] = 1;
    return 1;
  }
  // Non-determinate recursive predicates: unbounded (the paper's "beyond
  // the scope" case — a size-dependent analysis would be needed).
  if (CG->isRecursive(F)) {
    Cache[F] = std::nullopt;
    return std::nullopt;
  }
  // Break potential re-entry through undefined callees conservatively.
  Cache[F] = std::nullopt;

  // Ensure callees are computed first (the call graph is acyclic here).
  for (Functor Callee : CG->callees(F))
    (void)computePredicate(Callee);

  std::optional<int64_t> Total = 0;
  for (const Clause &C : Pred->clauses())
    Total = saturatingAdd(Total, goalSolutions(C.body()));
  Cache[F] = Total;
  return Total;
}
