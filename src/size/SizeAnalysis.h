//===- size/SizeAnalysis.h - Argument size relations ----------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The argument-size analysis of Section 3.  Processing the call graph in
/// topological order, it derives for every predicate p and every output
/// argument position o a function Psi_p,o mapping the sizes of p's input
/// arguments to an upper bound on the size of that output (or Infinity
/// when no bound can be established).
///
/// Per clause, the analysis propagates size expressions along the data
/// dependency order (the paper's normalization of inter- and intra-literal
/// argument size relations, realized as substitution while walking the
/// body): head input patterns seed an environment mapping variables to
/// symbolic sizes; each body literal consumes input sizes and produces
/// output sizes via its callee's Psi (already in closed form for earlier
/// SCCs, a symbolic Call for the current one); head outputs are then read
/// off.  Recursive clauses yield difference equations, non-recursive
/// clauses boundary conditions; the diffeq solver produces closed forms.
/// Mutually recursive SCCs are reduced by substitution (inlineCalls)
/// before extraction.
///
/// Undefined sizes are represented by Infinity rather than bottom — for an
/// upper-bound analysis "unknown" and "unbounded" are interchangeable, and
/// Infinity propagates naturally through the expression algebra.
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SIZE_SIZEANALYSIS_H
#define GRANLOG_SIZE_SIZEANALYSIS_H

#include "analysis/Determinacy.h"
#include "analysis/Modes.h"
#include "diffeq/Solver.h"
#include "program/CallGraph.h"
#include "size/Measures.h"
#include "support/Budget.h"

#include <atomic>
#include <unordered_map>

namespace granlog {

/// Size-analysis results for one predicate.
struct PredicateSizeInfo {
  std::vector<ArgMode> Modes;
  std::vector<MeasureKind> Measures;
  /// Per argument position: the closed-form output size bounds in the
  /// parameters "n1".."nk" (named by *argument position* of the inputs).
  /// Hi is Infinity if unknown and nullptr for input positions; Lo is
  /// filled only in BoundsMode::Both (failure-free minimal solutions —
  /// min over clauses) and stays null for input positions, in upper-only
  /// mode, and for IntValue outputs with no derivable lower bound (an
  /// integer value has no universal floor).
  std::vector<BoundInterval> OutputSize;
  /// Argument position whose size drives the recursion (-1 if the
  /// predicate is not recursive or no single decreasing argument exists).
  int RecArgPos = -1;
  /// True when every output size was solved without upper-bound
  /// relaxations.
  bool Exact = true;
  /// Provenance, per argument position (empty for input positions):
  /// the diffeq schema that solved the output ("" when nonrecursive), and
  /// for Infinity results the reason the solve failed.
  std::vector<std::string> OutputSchema;
  std::vector<std::string> OutputWhy;
};

/// Facts about one body literal gathered while walking a clause.
struct LiteralFacts {
  const Term *Literal = nullptr;
  std::optional<Functor> F;
  bool IsBuiltin = false;
  /// Size expressions for the literal's *input* argument positions (by
  /// absolute position; output positions are nullptr).  In terms of the
  /// clause head's input parameters.
  std::vector<ExprRef> InputSizes;
};

/// Facts about one clause: literal-by-literal input sizes plus the head
/// output sizes, all in terms of head input parameters.
struct ClauseFacts {
  std::vector<LiteralFacts> Literals;
  /// Per argument position; nullptr for inputs.
  std::vector<ExprRef> HeadOutputSizes;
};

/// Converts a ':- trust_cost'/'trust_size' arithmetic term (over atoms
/// n1..nk, integers, + - * /, min/max, ^, log2, inf) into a symbolic
/// expression.  Returns Infinity for unconvertible terms.
ExprRef trustTermToExpr(const Term *T, const SymbolTable &Symbols);

/// The analysis driver.
class SizeAnalysis {
public:
  SizeAnalysis(const Program &P, const CallGraph &CG, const ModeTable &Modes);

  /// Runs the analysis over all SCCs in topological order.
  void run();

  /// Pre-inserts every table slot the SCC jobs will write so the maps
  /// never rehash during the parallel phase; call once before scheduling
  /// analyzeSCCById jobs.  Concurrent jobs may then only write distinct
  /// pre-existing slots (plus the atomic recursion-arg cells).
  void prepareConcurrent();

  /// Analyzes one SCC; every callee SCC (smaller id) must be complete.
  void analyzeSCCById(unsigned Id) { analyzeSCC(CG->sccMembers(Id)); }

  /// Installs a previously computed result for \p F, as if its SCC had
  /// been analyzed.  The incremental session uses this to replay stored
  /// results for fingerprint-clean SCCs; call before the dirty SCCs run
  /// (their clause walks read callee sizes from this table).
  /// PredicateSizeInfo is arena-independent, so results stored from one
  /// Program revision are valid for any other with equal fingerprints.
  void injectInfo(Functor F, PredicateSizeInfo PI) {
    Info[F] = std::move(PI);
  }

  const PredicateSizeInfo &info(Functor F) const;

  /// Walks one clause of \p Pred with the current solved knowledge,
  /// producing per-literal input sizes and head output sizes.  Used
  /// internally and by the cost analysis.  When \p KeepSCCCalls is true,
  /// calls to predicates in the same SCC as \p Pred appear as symbolic
  /// Call nodes instead of closed forms.  When \p Lower is true the walk
  /// runs in the lower-bound direction: the environment holds lower
  /// bounds, callee Psi is read from OutputSize[..].Lo, and Infinity
  /// means "unknown" (no lower bound derivable) rather than "unbounded".
  ClauseFacts analyzeClause(Functor Pred, const Clause &C,
                            bool KeepSCCCalls, bool Lower = false) const;

  /// The canonical parameter name of argument position \p ArgPos (0-based):
  /// "n1", "n2", ...
  static std::string paramName(unsigned ArgPos) {
    return "n" + std::to_string(ArgPos + 1);
  }

  /// The symbolic name of Psi for output position \p OutPos of \p F.
  std::string psiName(Functor F, unsigned OutPos) const;

  /// Chooses (and caches) the recursion argument position of \p F.
  int recursionArg(Functor F) const;

  const Program &program() const { return *P; }
  const ModeTable &modeTable() const { return *Modes; }
  const DiffEqSolver &solver() const { return Solver; }

  /// Removes a difference-equation schema before run() (ablations).
  void disableSchema(const std::string &Name) {
    Solver.disableSchema(Name);
  }

  /// Selects which bounds to compute; call before run().  The default
  /// (Upper) performs exactly the pre-interval analysis; Both adds a dual
  /// lower-bound pass per SCC after the upper pass.
  void setBounds(BoundsMode B) { Bounds = B; }

  /// Records domain counters ("size.*") and solver counters
  /// ("size.solver.*") into \p Stats; call before run().
  void setStats(StatsRegistry *Stats) {
    this->Stats = Stats;
    Solver.setStats(Stats, "size.solver");
  }

  /// Attaches a recurrence memo table (shared with the cost layer and, in
  /// batch mode, across runs); call before run().
  void setSolverCache(SolverCache *Cache) { Solver.setCache(Cache); }

  /// Attaches the run's resource budget; call before run().  Each SCC is
  /// metered independently (a fresh WorkMeter per analyzeSCC), so meter
  /// exhaustion depends only on that SCC's own deterministic work and the
  /// results are identical under the sequential and parallel drivers.
  void setBudget(Budget *B) { ResourceBudget = B; }

  /// Emits one "size" span per analyzeSCC (tagged with program \p Prog
  /// and the SCC id) plus nested normalize/solve/cache-probe spans into
  /// \p T; call before run().  Null disables tracing (the default);
  /// results are identical either way.
  void setTracer(Tracer *T, uint32_t Prog) {
    Trace = T;
    TraceProg = Prog;
    Solver.setTracer(T);
  }

private:
  friend class ClauseSizeWalker;

  void analyzeSCC(const std::vector<Functor> &Members);

  /// Deadline/terminator fired: fill every member's info with sound
  /// degraded values (outputs unknown => Infinity) without analyzing.
  void degradeSCC(const std::vector<Functor> &Members);

  /// Builds, for output \p OutPos of \p F, the per-clause equations and
  /// solves them; called with all clause facts of the SCC available.
  /// \p Schema and \p Why receive the solve provenance.
  ExprRef solveOutput(Functor F, unsigned OutPos,
                      const std::vector<ClauseFacts> &Facts, bool *Exact,
                      std::string *Schema, std::string *Why);

  /// Dual of solveOutput for the lower bound, from lower-direction clause
  /// facts: min over clauses, min-merged recurrences, SolveResult::Lo.
  /// Any failure degrades to the measure's universal floor (0 for size
  /// measures, null — no bound — for IntValue).
  ExprRef solveOutputLower(Functor F, unsigned OutPos,
                           const std::vector<ClauseFacts> &Facts);

  const Program *P;
  const CallGraph *CG;
  const ModeTable *Modes;
  BoundsMode Bounds = BoundsMode::Upper;
  DiffEqSolver Solver;
  StatsRegistry *Stats = nullptr;
  Budget *ResourceBudget = nullptr;
  Tracer *Trace = nullptr;
  uint32_t TraceProg = 0xffffffffu; ///< Tracer::None
  std::unordered_map<Functor, PredicateSizeInfo> Info;
  /// -2 = not yet computed.  Atomic cells: concurrent SCC jobs may race
  /// to compute the same functor's entry, but both write the same value.
  mutable std::unordered_map<Functor, std::atomic<int>> RecArgCache;
};

} // namespace granlog

#endif // GRANLOG_SIZE_SIZEANALYSIS_H
