//===- size/Measures.h - Term size measures -------------------------------===//
//
// Part of GranLog; see DESIGN.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The size measures of Section 3: list_length, term_size, term_depth and
/// integer value, as (a) ground-term evaluators (the |.|_m functions) and
/// (b) a per-argument measure inference used when no ':- measure'
/// declaration is given ("the measure(s) appropriate in a given situation
/// can generally be determined by examining the operations used in the
/// program").
///
//===----------------------------------------------------------------------===//

#ifndef GRANLOG_SIZE_MEASURES_H
#define GRANLOG_SIZE_MEASURES_H

#include "analysis/Modes.h"
#include "program/Program.h"

#include <optional>

namespace granlog {

/// |T|_m for ground (or sufficiently instantiated) terms.  Returns nullopt
/// for the paper's bottom element (undefined), e.g. the list length of a
/// non-list.
std::optional<int64_t> groundSize(const Term *T, MeasureKind M,
                                  const SymbolTable &Symbols);

/// Infers a measure for every argument position of \p Pred by inspecting
/// head patterns and arithmetic usage across its clauses.  Declared
/// measures are returned unchanged.
std::vector<MeasureKind> inferMeasures(const Predicate &Pred,
                                       const SymbolTable &Symbols);

/// Specificity order used when measures inferred from different evidence
/// disagree: ListLength > IntValue > TermDepth > TermSize > Void.
int measureRank(MeasureKind M);

/// The *minimum* size any instance of the (possibly non-ground) pattern
/// \p T can have under \p M: variables contribute their smallest possible
/// size (0 for list length and depth, 1 for term size).  Used to place
/// boundary conditions for base clauses like flatten(leaf(X), [X]) whose
/// head pattern is not ground.  nullopt when no finite lower bound exists
/// (e.g. an integer-valued variable) or the measure is undefined on \p T.
std::optional<int64_t> minPatternSize(const Term *T, MeasureKind M,
                                      const SymbolTable &Symbols);

} // namespace granlog

#endif // GRANLOG_SIZE_MEASURES_H
