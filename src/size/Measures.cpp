//===- size/Measures.cpp --------------------------------------------------===//

#include "size/Measures.h"

#include <algorithm>

using namespace granlog;

std::optional<int64_t> granlog::groundSize(const Term *T, MeasureKind M,
                                           const SymbolTable &Symbols) {
  T = deref(T);
  switch (M) {
  case MeasureKind::ListLength: {
    int64_t Length = 0;
    while (isCons(T, Symbols)) {
      ++Length;
      T = deref(cast<StructTerm>(T)->arg(1));
    }
    if (!isNil(T, Symbols))
      return std::nullopt;
    return Length;
  }
  case MeasureKind::TermSize: {
    switch (T->kind()) {
    case TermKind::Variable:
      return std::nullopt;
    case TermKind::Atom:
    case TermKind::Int:
    case TermKind::Float:
      return 1;
    case TermKind::Struct: {
      int64_t Size = 1;
      for (const Term *Arg : cast<StructTerm>(T)->args()) {
        std::optional<int64_t> S = groundSize(Arg, M, Symbols);
        if (!S)
          return std::nullopt;
        Size += *S;
      }
      return Size;
    }
    }
    return std::nullopt;
  }
  case MeasureKind::TermDepth: {
    switch (T->kind()) {
    case TermKind::Variable:
      return std::nullopt;
    case TermKind::Atom:
    case TermKind::Int:
    case TermKind::Float:
      return 0;
    case TermKind::Struct: {
      int64_t Depth = 0;
      for (const Term *Arg : cast<StructTerm>(T)->args()) {
        std::optional<int64_t> D = groundSize(Arg, M, Symbols);
        if (!D)
          return std::nullopt;
        Depth = std::max(Depth, *D);
      }
      return Depth + 1;
    }
    }
    return std::nullopt;
  }
  case MeasureKind::IntValue:
    if (const IntTerm *I = dynCast<IntTerm>(T))
      return I->value();
    return std::nullopt;
  case MeasureKind::Void:
    return std::nullopt;
  }
  assert(false && "unknown measure");
  return std::nullopt;
}

namespace {

/// Does \p V occur in \p T?
bool occursIn(const VarTerm *V, const Term *T) {
  std::vector<const VarTerm *> Vars;
  collectVariables(T, Vars);
  return std::find(Vars.begin(), Vars.end(), V) != Vars.end();
}


} // namespace

std::vector<MeasureKind> granlog::inferMeasures(const Predicate &Pred,
                                                const SymbolTable &Symbols) {
  if (Pred.hasDeclaredMeasures())
    return Pred.declaredMeasures();

  unsigned Arity = Pred.arity();
  std::vector<MeasureKind> Result(Arity, MeasureKind::TermSize);
  for (unsigned I = 0; I != Arity; ++I) {
    bool SawList = false;
    bool SawInt = false;
    bool SawArith = false;
    for (const Clause &C : Pred.clauses()) {
      const StructTerm *Head = dynCast<StructTerm>(deref(C.head()));
      if (!Head || I >= Head->arity())
        continue;
      const Term *Arg = deref(Head->arg(I));
      if (isNil(Arg, Symbols) || isCons(Arg, Symbols))
        SawList = true;
      else if (Arg->isInt())
        SawInt = true;
      else if (const VarTerm *V = dynCast<VarTerm>(Arg)) {
        // Variable argument used in arithmetic in the body?
        for (const Term *Lit : C.bodyLiterals()) {
          const StructTerm *S = dynCast<StructTerm>(deref(Lit));
          if (!S)
            continue;
          const std::string &Name = Symbols.text(S->name());
          bool Arith = Name == "is" || Name == "<" || Name == ">" ||
                       Name == "=<" || Name == ">=" || Name == "=:=" ||
                       Name == "=\\=";
          if (Arith && occursIn(V, S))
            SawArith = true;
        }
      }
    }
    if (SawList)
      Result[I] = MeasureKind::ListLength;
    else if (SawInt || SawArith)
      Result[I] = MeasureKind::IntValue;
  }

  // Positions connected by a shared head variable (e.g. the pass-through
  // clause append([], L, L)) must agree on their measure; prefer the more
  // specific one so list lengths flow through pass-through arguments.
  auto Rank = measureRank;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Clause &C : Pred.clauses()) {
      const StructTerm *Head = dynCast<StructTerm>(deref(C.head()));
      if (!Head)
        continue;
      for (unsigned I = 0; I != Arity; ++I) {
        const VarTerm *VI = dynCast<VarTerm>(deref(Head->arg(I)));
        if (!VI)
          continue;
        for (unsigned J = I + 1; J != Arity; ++J) {
          if (deref(Head->arg(J)) != VI)
            continue;
          MeasureKind Best =
              Rank(Result[I]) >= Rank(Result[J]) ? Result[I] : Result[J];
          if (Result[I] != Best || Result[J] != Best) {
            Result[I] = Result[J] = Best;
            Changed = true;
          }
        }
      }
    }
  }
  return Result;
}

std::optional<int64_t> granlog::minPatternSize(const Term *T, MeasureKind M,
                                               const SymbolTable &Symbols) {
  T = deref(T);
  switch (M) {
  case MeasureKind::ListLength: {
    int64_t Length = 0;
    while (isCons(T, Symbols)) {
      ++Length;
      T = deref(cast<StructTerm>(T)->arg(1));
    }
    if (T->isVariable())
      return Length; // an open tail may be []
    if (!isNil(T, Symbols))
      return std::nullopt;
    return Length;
  }
  case MeasureKind::TermSize: {
    switch (T->kind()) {
    case TermKind::Variable:
      return 1; // smallest term is a constant
    case TermKind::Atom:
    case TermKind::Int:
    case TermKind::Float:
      return 1;
    case TermKind::Struct: {
      int64_t Size = 1;
      for (const Term *Arg : cast<StructTerm>(T)->args()) {
        std::optional<int64_t> S = minPatternSize(Arg, M, Symbols);
        if (!S)
          return std::nullopt;
        Size += *S;
      }
      return Size;
    }
    }
    return std::nullopt;
  }
  case MeasureKind::TermDepth: {
    switch (T->kind()) {
    case TermKind::Variable:
      return 0;
    case TermKind::Atom:
    case TermKind::Int:
    case TermKind::Float:
      return 0;
    case TermKind::Struct: {
      int64_t Depth = 0;
      for (const Term *Arg : cast<StructTerm>(T)->args()) {
        std::optional<int64_t> D = minPatternSize(Arg, M, Symbols);
        if (!D)
          return std::nullopt;
        Depth = std::max(Depth, *D);
      }
      return Depth + 1;
    }
    }
    return std::nullopt;
  }
  case MeasureKind::IntValue:
    // Integers are unbounded below: only ground values give a boundary.
    if (const IntTerm *I = dynCast<IntTerm>(T))
      return I->value();
    return std::nullopt;
  case MeasureKind::Void:
    return std::nullopt;
  }
  return std::nullopt;
}

int granlog::measureRank(MeasureKind M) {
  switch (M) {
  case MeasureKind::ListLength:
    return 4;
  case MeasureKind::IntValue:
    return 3;
  case MeasureKind::TermDepth:
    return 2;
  case MeasureKind::TermSize:
    return 1;
  case MeasureKind::Void:
    return 0;
  }
  return 0;
}
